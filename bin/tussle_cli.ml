(* The tussle command-line interface.

   Subcommands:
     experiments [-e ID]   regenerate the paper's experiments
     chaos                 seeded random fault plans vs. the invariants
     sweep                 statistical verdicts across seeds (t-tests + CIs)
     search                adversarial search over fault-plan space
     explain PLAN-FILE     replay a reproducer and narrate every drop
     trends REPORT         append to the benchmark history, diff vs baseline
     report FILE           validate and summarize a battery or sweep report
     perfgate BASE REPORT  fail on wall/alloc regressions vs. a baseline
     scenario              run the actor/mechanism tussle engine
     market                run the access-provider market model
     policy FILE REQUEST   evaluate a policy compliance query *)

open Cmdliner
module Obs_metrics = Tussle_obs.Metrics
module Obs_trace = Tussle_obs.Trace
module Obs_report = Tussle_obs.Report
module Obs_sweep_report = Tussle_obs.Sweep_report
module Obs_search_report = Tussle_obs.Search_report
module Obs_json = Tussle_obs.Json

(* ---------- experiments ---------- *)

let experiments_cmd =
  let id =
    let doc = "Run a single experiment (E1..E30)." in
    Arg.(value & opt (some string) None & info [ "e"; "experiment" ] ~doc)
  in
  let domains =
    (* Taken as a string so garbage is rejected with exit 2 (like
       --domains 0) instead of cmdliner's generic CLI error. *)
    let doc =
      "Number of domains for the parallel experiment runner (default: the \
       recommended domain count).  Output is byte-identical for any value."
    in
    Arg.(value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let seq =
    let doc = "Run strictly sequentially (same as --domains 1); pins \
               determinism for CI." in
    Arg.(value & flag & info [ "seq" ] ~doc)
  in
  let metrics =
    let doc = "Collect telemetry and print the metrics table after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let trace =
    let doc = "Record spans and write Chrome trace-event JSON to $(docv) \
               (open in chrome://tracing or Perfetto)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let report =
    let doc = "Write the machine-readable battery report JSON to $(docv) and \
               print its summary table." in
    Arg.(value & opt (some string) None & info [ "report" ] ~doc ~docv:"FILE")
  in
  let timeout_s =
    (* Taken as a string for the same exit-2 convention as --domains. *)
    let doc =
      "Arm the per-experiment watchdog: an experiment still running after \
       $(docv) seconds becomes a FAILED (timeout) outcome while the rest \
       of the battery carries on.  Off by default."
    in
    Arg.(value & opt (some string) None & info [ "timeout-s" ] ~doc ~docv:"SECONDS")
  in
  let fault_seed =
    let doc =
      "Seed for the fault-injection substrate (experiments that inject \
       faults, e.g. E28, derive their plans from it).  Same seed, same \
       battery output, byte for byte; default 1031."
    in
    Arg.(value & opt (some string) None & info [ "fault-seed" ] ~doc ~docv:"SEED")
  in
  let run id domains seq metrics trace report timeout_s fault_seed =
    let domains_result =
      if seq then Ok (Some 1)
      else
        match domains with
        | None -> Ok None
        | Some s -> Result.map Option.some (Tussle_prelude.Pool.domains_of_string s)
    in
    let timeout_result =
      match timeout_s with
      | None -> Ok None
      | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some t when t > 0.0 && Float.is_finite t -> Ok (Some t)
        | Some _ | None ->
          Error
            (Printf.sprintf "invalid timeout %S (expected a positive number \
                             of seconds)" s))
    in
    let fault_seed_result =
      match fault_seed with
      | None -> Ok None
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Ok (Some n)
        | None ->
          Error (Printf.sprintf "invalid fault seed %S (expected an integer)" s))
    in
    match (domains_result, timeout_result, fault_seed_result) with
    | Error msg, _, _ ->
      prerr_endline ("experiments: --domains: " ^ msg);
      2
    | _, Error msg, _ ->
      prerr_endline ("experiments: --timeout-s: " ^ msg);
      2
    | _, _, Error msg ->
      prerr_endline ("experiments: --fault-seed: " ^ msg);
      2
    | Ok domains, Ok timeout_s, Ok fault_seed -> (
      (match fault_seed with
      | Some s -> Tussle_fault.Seed.set s
      | None -> ());
      if metrics || report <> None then Obs_metrics.enable ();
      if trace <> None then Obs_trace.enable ();
      let emit_report ~wall_s outcomes =
        match report with
        | None -> ()
        | Some file ->
          let domains =
            match domains with
            | Some d -> d
            | None -> Tussle_prelude.Pool.default_domains ()
          in
          let r = Tussle_experiments.Registry.report ~domains ~wall_s outcomes in
          (try Obs_report.write file r
           with Sys_error msg ->
             prerr_endline ("experiments: --report: " ^ msg);
             exit 2);
          print_newline ();
          print_string (Obs_report.summary r)
      in
      let finish code =
        (match trace with Some f -> Obs_trace.write_chrome f | None -> ());
        if metrics then begin
          print_newline ();
          print_string (Obs_metrics.render (Obs_metrics.snapshot ()))
        end;
        code
      in
      match id with
      | None ->
        let ok, outcomes, wall_s =
          Tussle_experiments.Registry.run_battery ?domains ?timeout_s ()
        in
        emit_report ~wall_s outcomes;
        finish (if ok then 0 else 1)
      | Some id -> begin
        match Tussle_experiments.Registry.run_one ?timeout_s id with
        | Ok o ->
          emit_report ~wall_s:o.Tussle_experiments.Experiment.wall_s [ o ];
          finish (if Tussle_experiments.Experiment.held o then 0 else 1)
        | Error msg ->
          prerr_endline msg;
          2
      end)
  in
  let doc = "regenerate the paper's experiments (E1..E30)" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const run $ id $ domains $ seq $ metrics $ trace $ report
          $ timeout_s $ fault_seed)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let seed =
    let doc =
      "Master seed for the chaos sweep.  Same seed, same plans, same \
       output, byte for byte, for any --domains count; default 1031."
    in
    Arg.(value & opt (some string) None & info [ "chaos-seed" ] ~doc ~docv:"SEED")
  in
  let runs =
    let doc = "Number of random fault plans to run (default 200)." in
    Arg.(value & opt (some string) None & info [ "chaos-runs" ] ~doc ~docv:"N")
  in
  let domains =
    let doc = "Number of domains for the sweep (default: the recommended \
               domain count).  Output is byte-identical for any value." in
    Arg.(value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let seq =
    let doc = "Run strictly sequentially (same as --domains 1)." in
    Arg.(value & flag & info [ "seq" ] ~doc)
  in
  let corpus =
    let doc =
      "Persist the shrunk reproducer of every invariant violation under \
       $(docv) (created if missing)."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~doc ~docv:"DIR")
  in
  let replay =
    let doc =
      "Instead of sweeping, replay every *.plan reproducer under $(docv) \
       and re-check all invariants."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~doc ~docv:"DIR")
  in
  let run seed runs domains seq corpus replay =
    let module Sweep = Tussle_chaos.Sweep in
    let module Invariant = Tussle_chaos.Invariant in
    let module Corpus = Tussle_chaos.Corpus in
    let seed_result =
      match seed with
      | None -> Ok Tussle_fault.Seed.default
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Ok n
        | None ->
          Error (Printf.sprintf "invalid chaos seed %S (expected an integer)" s))
    in
    let runs_result =
      match runs with
      | None -> Ok 200
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Ok n
        | Some _ | None ->
          Error
            (Printf.sprintf "invalid run count %S (expected an integer >= 1)" s))
    in
    let domains_result =
      if seq then Ok (Some 1)
      else
        match domains with
        | None -> Ok None
        | Some s -> Result.map Option.some (Tussle_prelude.Pool.domains_of_string s)
    in
    match (seed_result, runs_result, domains_result) with
    | Error msg, _, _ ->
      prerr_endline ("chaos: --chaos-seed: " ^ msg);
      2
    | _, Error msg, _ ->
      prerr_endline ("chaos: --chaos-runs: " ^ msg);
      2
    | _, _, Error msg ->
      prerr_endline ("chaos: --domains: " ^ msg);
      2
    | Ok seed, Ok runs, Ok domains -> (
      match replay with
      | Some dir -> (
        (* reject entries naming a scenario we don't have with a clean
           LOAD ERROR line instead of letting them raise downstream *)
        let known =
          List.map
            (fun (s : Tussle_chaos.Scenario.t) -> s.Tussle_chaos.Scenario.name)
            Tussle_chaos.Scenario.all
        in
        let entries = Corpus.load_dir ~known dir in
        Printf.printf "chaos replay: %d corpus entr%s under %s\n"
          (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          dir;
        let bad = ref 0 in
        List.iter
          (fun (path, entry) ->
            match entry with
            | Error msg ->
              incr bad;
              Printf.printf "  %s: LOAD ERROR %s\n" (Filename.basename path) msg
            | Ok e -> (
              match Sweep.replay e with
              | Error msg ->
                incr bad;
                Printf.printf "  %s: %s\n" (Filename.basename path) msg
              | Ok [] ->
                Printf.printf "  %s: ok (%s, seed %d, %d episode%s)\n"
                  (Filename.basename path) e.Corpus.scenario e.Corpus.seed
                  (List.length e.Corpus.plan)
                  (if List.length e.Corpus.plan = 1 then "" else "s")
              | Ok violations ->
                incr bad;
                Printf.printf "  %s: VIOLATION\n" (Filename.basename path);
                List.iter
                  (fun v ->
                    Printf.printf "    %s\n" (Invariant.violation_string v))
                  violations))
          entries;
        if !bad = 0 then begin
          Printf.printf "chaos replay: all clean\n";
          0
        end
        else begin
          Printf.printf "chaos replay: %d failing entr%s\n" !bad
            (if !bad = 1 then "y" else "ies");
          1
        end)
      | None ->
        let results = Sweep.run_sweep ?domains ~seed ~runs () in
        let failures = Sweep.failures results in
        Printf.printf
          "chaos sweep: %d runs from seed %d over %s; invariants: %s\n" runs
          seed
          (String.concat ", "
             (List.map
                (fun (s : Tussle_chaos.Scenario.t) -> s.Tussle_chaos.Scenario.name)
                Tussle_chaos.Scenario.all))
          (String.concat ", " Invariant.names);
        List.iter
          (fun (r : Sweep.run) ->
            Printf.printf "run %04d %s seed=%d episodes=%d: VIOLATION\n"
              r.Sweep.index r.Sweep.scenario r.Sweep.seed r.Sweep.episodes;
            List.iter
              (fun v -> Printf.printf "  %s\n" (Invariant.violation_string v))
              r.Sweep.violations;
            let minimal = Sweep.shrink_run r in
            Printf.printf "  shrunk %d -> %d episode%s:\n"
              (List.length r.Sweep.plan) (List.length minimal)
              (if List.length minimal = 1 then "" else "s");
            String.split_on_char '\n' (Tussle_fault.Plan.to_string minimal)
            |> List.iter (fun line ->
                   if line <> "" then Printf.printf "    %s\n" line);
            let entry =
              {
                Corpus.scenario = r.Sweep.scenario;
                seed = r.Sweep.seed;
                plan = minimal;
              }
            in
            (* replay the shrunk reproducer with the flight recorder on
               and attach the offending flows' causal records to each
               violation *)
            let attachment =
              match Tussle_chaos.Explain.run entry with
              | Error msg -> Printf.sprintf "  explain: %s\n" msg
              | Ok er ->
                String.concat ""
                  (List.map
                     (fun v ->
                       Tussle_chaos.Explain.narrative_of_violation ~entry
                         ~events:er.Tussle_chaos.Explain.events v)
                     (if er.Tussle_chaos.Explain.violations = [] then
                        r.Sweep.violations
                      else er.Tussle_chaos.Explain.violations))
            in
            String.split_on_char '\n' attachment
            |> List.iter (fun line ->
                   if line <> "" then Printf.printf "  %s\n" line);
            match corpus with
            | None -> ()
            | Some dir ->
              let path = Corpus.save ~dir entry in
              Printf.printf "  saved %s\n" path;
              let explain_path =
                Filename.remove_extension path ^ ".explain.txt"
              in
              let oc = open_out explain_path in
              output_string oc attachment;
              close_out oc;
              Printf.printf "  saved %s\n" explain_path)
          failures;
        let n_fail = List.length failures in
        Printf.printf "chaos sweep: %d/%d runs clean, %d violation%s\n"
          (runs - n_fail) runs n_fail
          (if n_fail = 1 then "" else "s");
        if n_fail = 0 then 0 else 1)
  in
  let doc =
    "run seeded random fault plans against the scenario checkers and \
     validate every simulation invariant (see also --replay)"
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ seed $ runs $ domains $ seq $ corpus $ replay)

(* ---------- explain ---------- *)

let explain_cmd =
  (* Plain string positional for the clean-error/exit-2 convention. *)
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PLAN-FILE"
             ~doc:"Corpus reproducer (scenario/seed header + fault plan) \
                   to replay with the flight recorder on.")
  in
  let json_out =
    let doc = "Also write the tussle.flow-trace/1 JSON artifact to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let domains =
    let doc =
      "Accepted for symmetry with the other subcommands and validated; the \
       replay itself is a single-threaded simulation, so the narrative is \
       byte-identical for any value."
    in
    Arg.(value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let seq =
    let doc = "Same as --domains 1." in
    Arg.(value & flag & info [ "seq" ] ~doc)
  in
  let run file json_out domains seq =
    let module Corpus = Tussle_chaos.Corpus in
    let module Explain = Tussle_chaos.Explain in
    let domains_result =
      if seq then Ok (Some 1)
      else
        match domains with
        | None -> Ok None
        | Some s -> Result.map Option.some (Tussle_prelude.Pool.domains_of_string s)
    in
    match domains_result with
    | Error msg ->
      prerr_endline ("explain: --domains: " ^ msg);
      2
    | Ok _ -> (
      match Corpus.load file with
      | Error msg ->
        Printf.eprintf "explain: %s\n" msg;
        2
      | Ok entry -> (
        match Explain.run entry with
        | Error msg ->
          Printf.eprintf "explain: %s\n" msg;
          2
        | Ok r ->
          print_string r.Explain.narrative;
          (match json_out with
          | None -> ()
          | Some out ->
            (try Obs_json.to_file out (Explain.to_json r)
             with Sys_error msg ->
               Printf.eprintf "explain: --json: %s\n" msg;
               exit 2);
            Printf.printf "flow trace written to %s (%d events)\n" out
              (List.length r.Explain.events));
          if r.Explain.violations = [] then 0 else 1))
  in
  let doc =
    "replay a chaos corpus reproducer with the flow-level flight recorder \
     on and print a causal narrative: every drop attributed to the fault \
     episode that explains it, plus the control-plane timeline"
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ file $ json_out $ domains $ seq)

(* ---------- trends ---------- *)

let trends_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"REPORT"
             ~doc:"Fresh battery report JSON to append to the history.")
  in
  let history =
    let doc = "Benchmark history file, one JSON line per appended report." in
    Arg.(value & opt string "BENCH_history.jsonl"
         & info [ "history" ] ~doc ~docv:"FILE")
  in
  let baseline =
    let doc = "Battery report to diff the fresh report against (wall clock \
               and GC allocation per experiment)." in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~doc ~docv:"FILE")
  in
  let run file history baseline =
    let load file =
      match
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error msg -> Error msg
      | contents -> (
        match Obs_json.parse contents with
        | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
        | Ok json -> (
          match Obs_report.validate json with
          | Error msg ->
            Error (Printf.sprintf "%s: invalid battery report: %s" file msg)
          | Ok () -> Ok json))
    in
    let experiments json =
      match Option.bind (Obs_json.member "experiments" json) Obs_json.to_list with
      | None -> []
      | Some entries ->
        List.filter_map
          (fun e ->
            let str name = Option.bind (Obs_json.member name e) Obs_json.to_str in
            let fl name = Option.bind (Obs_json.member name e) Obs_json.to_float in
            match (str "id", fl "wall_s", fl "allocated_bytes") with
            | Some id, Some w, Some a -> Some (id, w, a)
            | _ -> None)
          entries
    in
    match load file with
    | Error msg ->
      prerr_endline ("trends: " ^ msg);
      2
    | Ok json -> (
      let top name conv = Option.bind (Obs_json.member name json) conv in
      let exps = experiments json in
      let line =
        Obs_json.Obj
          [
            ("schema", Obs_json.Str "tussle.bench-history/1");
            ( "label",
              Obs_json.Str (Option.value ~default:"?" (top "label" Obs_json.to_str)) );
            ( "generated_at",
              Obs_json.Float
                (Option.value ~default:0.0 (top "generated_at" Obs_json.to_float)) );
            ( "domains",
              Obs_json.Int (Option.value ~default:0 (top "domains" Obs_json.to_int)) );
            ( "wall_s",
              Obs_json.Float
                (Option.value ~default:0.0 (top "wall_s" Obs_json.to_float)) );
            ( "experiments",
              Obs_json.List
                (List.map
                   (fun (id, w, a) ->
                     Obs_json.Obj
                       [
                         ("id", Obs_json.Str id);
                         ("wall_s", Obs_json.Float w);
                         ("allocated_bytes", Obs_json.Float a);
                       ])
                   exps) );
          ]
      in
      match
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Obs_json.to_string ~minify:true line);
            output_char oc '\n')
      with
      | exception Sys_error msg ->
        prerr_endline ("trends: --history: " ^ msg);
        2
      | () -> (
        (* round-trip the whole history: every line must still parse *)
        let reread =
          let ic = open_in_bin history in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let lines =
          String.split_on_char '\n' reread
          |> List.filter (fun l -> String.trim l <> "")
        in
        let bad = ref [] in
        List.iteri
          (fun i l ->
            match Obs_json.parse l with
            | Error msg -> bad := (i + 1, msg) :: !bad
            | Ok j ->
              if
                Option.bind (Obs_json.member "schema" j) Obs_json.to_str
                <> Some "tussle.bench-history/1"
              then bad := (i + 1, "missing bench-history schema tag") :: !bad)
          lines;
        match List.rev !bad with
        | (lineno, msg) :: _ ->
          Printf.eprintf "trends: %s:%d: %s\n" history lineno msg;
          2
        | [] ->
          Printf.printf "trends: appended %s to %s (%d entr%s)\n" file history
            (List.length lines)
            (if List.length lines = 1 then "y" else "ies");
          (match baseline with
          | None -> 0
          | Some bfile -> (
            match load bfile with
            | Error msg ->
              prerr_endline ("trends: --baseline: " ^ msg);
              2
            | Ok bjson ->
              let base = experiments bjson in
              let delta b c = if b > 0.0 then 100.0 *. (c -. b) /. b else 0.0 in
              Printf.printf "%-5s %12s %12s %8s %12s %12s %8s\n" "id"
                "wall_base" "wall_now" "d%" "alloc_base" "alloc_now" "d%";
              List.iter
                (fun (id, w, a) ->
                  match
                    List.find_opt (fun (bid, _, _) -> bid = id) base
                  with
                  | None ->
                    Printf.printf "%-5s %12s %12.3f %8s %12s %12.1f %8s\n" id
                      "-" w "new" "-" (a /. 1.048576e6) "new"
                  | Some (_, bw, ba) ->
                    Printf.printf
                      "%-5s %11.3fs %11.3fs %+7.1f%% %10.1fMB %10.1fMB \
                       %+7.1f%%\n"
                      id bw w (delta bw w) (ba /. 1.048576e6)
                      (a /. 1.048576e6) (delta ba a))
                exps;
              0))))
  in
  let doc =
    "append a battery report to the benchmark history (JSONL, validated \
     round-trip) and print per-experiment wall/alloc deltas against a \
     baseline report"
  in
  Cmd.v (Cmd.info "trends" ~doc) Term.(const run $ file $ history $ baseline)

(* ---------- report ---------- *)

let report_cmd =
  (* The positional is a plain string, not [Arg.file]: a missing path
     must produce our clean one-line error and exit 2 (the --domains
     garbage-input convention), not cmdliner's generic CLI error. *)
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"REPORT-FILE" ~doc:"Battery report JSON to check.")
  in
  let run file =
    match
      (* covers both failure surfaces: open (missing / permission) and
         read (e.g. the path is a directory) *)
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg ->
      Printf.eprintf "report: %s\n" msg;
      2
    | contents -> (
    match Obs_json.parse contents with
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      2
    | Ok json -> (
      (* dispatch on the schema tag: the same checker validates
         battery reports and sweep reports *)
      let str name = Option.bind (Obs_json.member name json) Obs_json.to_str in
      let intf path node =
        Option.bind (Obs_json.member path node) Obs_json.to_int
      in
      match str "schema" with
      | Some tag when tag = Obs_search_report.schema_tag -> (
        match Obs_search_report.validate json with
        | Error msg ->
          Printf.eprintf "%s: invalid search report: %s\n" file msg;
          2
        | Ok () ->
          Printf.printf "%s: valid %s\n" file tag;
          (match Obs_json.member "summary" json with
          | Some s ->
            Printf.printf
              "label=%s backend=%s runs=%d frontier=%d violations=%d \
               corpus_added=%d\n"
              (Option.value ~default:"?" (str "label"))
              (Option.value ~default:"?" (str "backend"))
              (Option.value ~default:0 (intf "runs" s))
              (Option.value ~default:0 (intf "frontier" s))
              (Option.value ~default:0 (intf "violations" s))
              (Option.value ~default:0 (intf "corpus_added" s))
          | None -> ());
          0)
      | Some tag when tag = Obs_sweep_report.schema_tag -> (
        match Obs_sweep_report.validate json with
        | Error msg ->
          Printf.eprintf "%s: invalid sweep report: %s\n" file msg;
          2
        | Ok () ->
          Printf.printf "%s: valid %s\n" file tag;
          (match Obs_json.member "summary" json with
          | Some s ->
            Printf.printf "label=%s experiments=%d verdicts=%d passed=%d\n"
              (Option.value ~default:"?" (str "label"))
              (Option.value ~default:0 (intf "experiments" s))
              (Option.value ~default:0 (intf "verdicts" s))
              (Option.value ~default:0 (intf "passed" s))
          | None -> ());
          0)
      | _ -> (
        match Obs_report.validate json with
        | Error msg ->
          Printf.eprintf "%s: invalid battery report: %s\n" file msg;
          2
        | Ok () ->
          let summary = Obs_json.member "summary" json in
          Printf.printf "%s: valid %s\n" file
            (Option.value ~default:"battery report" (str "schema"));
          (match summary with
          | Some s ->
            Printf.printf
              "label=%s experiments=%d held=%d violated=%d failed=%d\n"
              (Option.value ~default:"?" (str "label"))
              (Option.value ~default:0 (intf "total" s))
              (Option.value ~default:0 (intf "held" s))
              (Option.value ~default:0 (intf "violated" s))
              (Option.value ~default:0 (intf "failed" s))
          | None -> ());
          0)))
  in
  let doc = "validate and summarize a battery or sweep report JSON file" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ file)

(* ---------- sweep ---------- *)

let sweep_cmd =
  let ids =
    let doc =
      "Comma-separated experiment ids to sweep (default: every experiment \
       exposing a sweep surface, currently E1, E29 and E30)."
    in
    Arg.(value & opt (some string) None & info [ "e"; "experiments" ] ~doc ~docv:"IDS")
  in
  (* All numeric flags taken as strings so garbage is rejected with our
     clean one-line error and exit 2 — the --domains convention. *)
  let sweep_seed =
    let doc =
      "Master seed for the sweep.  Every run's seed derives from (seed, run \
       index) alone, so the summary and the report are byte-identical across \
       repeats and across any --domains count; default 1031."
    in
    Arg.(value & opt (some string) None & info [ "sweep-seed" ] ~doc ~docv:"SEED")
  in
  let sweep_runs =
    let doc = "Number of seeded replicates per experiment (>= 2; default 100)." in
    Arg.(value & opt (some string) None & info [ "sweep-runs" ] ~doc ~docv:"N")
  in
  let alpha =
    let doc =
      "Significance level: a verdict passes when its p-value is below \
       $(docv) (in (0, 1); default 0.01)."
    in
    Arg.(value & opt (some string) None & info [ "alpha" ] ~doc ~docv:"ALPHA")
  in
  let domains =
    let doc =
      "Number of domains for the probe fan-out (default: the recommended \
       domain count).  Output is byte-identical for any value."
    in
    Arg.(value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let seq =
    let doc = "Run strictly sequentially (same as --domains 1)." in
    Arg.(value & flag & info [ "seq" ] ~doc)
  in
  let timeout_s =
    let doc =
      "Arm the per-run watchdog: a probe replicate still running after \
       $(docv) seconds fails that experiment's sweep while the others carry \
       on.  Off by default."
    in
    Arg.(value & opt (some string) None & info [ "timeout-s" ] ~doc ~docv:"SECONDS")
  in
  let report =
    let doc = "Write the tussle.sweep-report/1 JSON artifact to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~doc ~docv:"FILE")
  in
  let run ids sweep_seed sweep_runs alpha domains seq timeout_s report =
    let fail flag msg =
      prerr_endline (Printf.sprintf "sweep: %s: %s" flag msg);
      2
    in
    let seed_result =
      match sweep_seed with
      | None -> Ok 1031
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "invalid seed %S (expected an integer)" s))
    in
    let runs_result =
      match sweep_runs with
      | None -> Ok 100
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 2 -> Ok n
        | Some _ | None ->
          Error (Printf.sprintf "invalid run count %S (expected an integer >= 2)" s))
    in
    let alpha_result =
      match alpha with
      | None -> Ok 0.01
      | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some a when a > 0.0 && a < 1.0 -> Ok a
        | Some _ | None ->
          Error
            (Printf.sprintf "invalid significance level %S (expected a number \
                             strictly between 0 and 1)" s))
    in
    let domains_result =
      if seq then Ok (Some 1)
      else
        match domains with
        | None -> Ok None
        | Some s -> Result.map Option.some (Tussle_prelude.Pool.domains_of_string s)
    in
    let timeout_result =
      match timeout_s with
      | None -> Ok None
      | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some t when t > 0.0 && Float.is_finite t -> Ok (Some t)
        | Some _ | None ->
          Error
            (Printf.sprintf "invalid timeout %S (expected a positive number \
                             of seconds)" s))
    in
    match (seed_result, runs_result, alpha_result, domains_result, timeout_result) with
    | Error msg, _, _, _, _ -> fail "--sweep-seed" msg
    | _, Error msg, _, _, _ -> fail "--sweep-runs" msg
    | _, _, Error msg, _, _ -> fail "--alpha" msg
    | _, _, _, Error msg, _ -> fail "--domains" msg
    | _, _, _, _, Error msg -> fail "--timeout-s" msg
    | Ok seed, Ok runs, Ok alpha, Ok domains, Ok timeout_s -> (
      let experiments_result =
        match ids with
        | None -> Ok (Tussle_experiments.Registry.sweepables ())
        | Some s ->
          let ids = String.split_on_char ',' s |> List.map String.trim in
          List.fold_left
            (fun acc id ->
              Result.bind acc (fun es ->
                  match Tussle_experiments.Registry.find id with
                  | None -> Error (Printf.sprintf "unknown experiment %S" id)
                  | Some e when e.Tussle_experiments.Experiment.sweep = None ->
                    Error
                      (Printf.sprintf
                         "experiment %s has no sweep surface (no per-run \
                          metrics to test)"
                         e.Tussle_experiments.Experiment.id)
                  | Some e -> Ok (es @ [ e ])))
            (Ok []) ids
      in
      match experiments_result with
      | Error msg -> fail "--experiments" msg
      | Ok experiments ->
        let sweep_report, errors =
          Tussle_sweep.Driver.run_sweep ?domains ?timeout_s ~seed ~runs ~alpha
            experiments
        in
        print_string (Obs_sweep_report.summary sweep_report);
        List.iter
          (fun e ->
            prerr_endline
              ("sweep: " ^ Tussle_sweep.Driver.error_string e))
          errors;
        let violations = Tussle_sweep.Driver.check_report sweep_report in
        List.iter
          (fun v ->
            prerr_endline
              ("sweep: report invariant violated: "
              ^ Tussle_chaos.Invariant.violation_string v))
          violations;
        (match report with
        | None -> ()
        | Some file -> (
          try
            Obs_sweep_report.write file sweep_report;
            Printf.printf "\nreport written to %s\n" file
          with Sys_error msg ->
            prerr_endline ("sweep: --report: " ^ msg);
            exit 2));
        let total, passed = Obs_sweep_report.count_verdicts sweep_report in
        if errors <> [] || violations <> [] || passed < total then 1 else 0)
  in
  let doc =
    "statistical verdicts: sweep experiments across seeds and hypothesis-test \
     the claims"
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ ids $ sweep_seed $ sweep_runs $ alpha $ domains $ seq
          $ timeout_s $ report)

(* ---------- search ---------- *)

let search_cmd =
  let backend =
    let doc =
      "Search backend: $(b,mutate) (coverage-guided mutation seeded from the \
       corpus) or $(b,exhaust) (bounded-exhaustive enumeration of a small \
       quantized plan grammar, certifying the box when it completes clean)."
    in
    Arg.(value & opt string "mutate" & info [ "backend" ] ~doc ~docv:"NAME")
  in
  (* Numeric flags taken as strings so garbage is rejected with our
     clean one-line error and exit 2 — the --domains convention. *)
  let budget =
    let doc = "Total number of fault plans to evaluate (default 200)." in
    Arg.(value & opt (some string) None & info [ "budget" ] ~doc ~docv:"N")
  in
  let sweep_seed =
    let doc =
      "Master seed for the search.  Every candidate derives from (seed, \
       candidate index) alone, so the summary and the report are \
       byte-identical across repeats and across any --domains count; \
       default 1031."
    in
    Arg.(value & opt (some string) None & info [ "sweep-seed" ] ~doc ~docv:"SEED")
  in
  let domains =
    let doc =
      "Number of domains for the candidate fan-out (default: the recommended \
       domain count).  Output is byte-identical for any value."
    in
    Arg.(value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let seq =
    let doc = "Run strictly sequentially (same as --domains 1)." in
    Arg.(value & flag & info [ "seq" ] ~doc)
  in
  let corpus =
    let doc =
      "Corpus directory: seeds the mutate backend and receives every new \
       1-minimal reproducer (default chaos/corpus; pass an empty string to \
       disable seeding and persistence)."
    in
    Arg.(value & opt string "chaos/corpus" & info [ "corpus" ] ~doc ~docv:"DIR")
  in
  let report =
    let doc = "Write the tussle.search-report/1 JSON artifact to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~doc ~docv:"FILE")
  in
  let run backend budget sweep_seed domains seq corpus report =
    let module Driver = Tussle_search.Driver in
    let fail flag msg =
      prerr_endline (Printf.sprintf "search: %s: %s" flag msg);
      2
    in
    let backend_result =
      let b = String.trim backend in
      if List.mem b Driver.backend_names then Ok b
      else
        Error
          (Printf.sprintf "invalid backend %S (expected %s)" backend
             (String.concat " or " Driver.backend_names))
    in
    let budget_result =
      match budget with
      | None -> Ok 200
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Ok n
        | Some _ | None ->
          Error (Printf.sprintf "invalid budget %S (expected an integer >= 1)" s))
    in
    let seed_result =
      match sweep_seed with
      | None -> Ok 1031
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "invalid seed %S (expected an integer)" s))
    in
    let domains_result =
      if seq then Ok (Some 1)
      else
        match domains with
        | None -> Ok None
        | Some s -> Result.map Option.some (Tussle_prelude.Pool.domains_of_string s)
    in
    match (backend_result, budget_result, seed_result, domains_result) with
    | Error msg, _, _, _ -> fail "--backend" msg
    | _, Error msg, _, _ -> fail "--budget" msg
    | _, _, Error msg, _ -> fail "--sweep-seed" msg
    | _, _, _, Error msg -> fail "--domains" msg
    | Ok backend, Ok budget, Ok seed, Ok domains -> (
      let corpus_dir = if String.trim corpus = "" then None else Some corpus in
      match Driver.run ?domains ?corpus_dir ~backend ~seed ~budget () with
      | Error msg -> fail "--backend" msg
      | Ok (search_report, _outcome) ->
        print_string (Obs_search_report.summary search_report);
        let violations =
          Tussle_chaos.Invariant.check_search_report search_report
        in
        List.iter
          (fun v ->
            prerr_endline
              ("search: report invariant violated: "
              ^ Tussle_chaos.Invariant.violation_string v))
          violations;
        (match report with
        | None -> ()
        | Some file -> (
          try
            Obs_search_report.write file search_report;
            Printf.printf "\nreport written to %s\n" file
          with Sys_error msg ->
            prerr_endline ("search: --report: " ^ msg);
            exit 2));
        if violations <> [] || search_report.Obs_search_report.findings <> []
        then 1
        else 0)
  in
  let doc =
    "adversarial search over fault-plan space: coverage-guided mutation or \
     bounded-exhaustive enumeration against the invariant registry"
  in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(const run $ backend $ budget $ sweep_seed $ domains $ seq $ corpus
          $ report)

(* ---------- perfgate ---------- *)

let perfgate_cmd =
  (* Plain strings for the same clean-error/exit-2 convention as
     [report]: missing files and malformed flags are our diagnostics,
     not cmdliner's. *)
  let baseline =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"BASELINE" ~doc:"Committed battery report to gate against.")
  in
  let candidate =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"REPORT" ~doc:"Fresh battery report to check.")
  in
  let ids =
    let doc = "Comma-separated experiment ids to gate (default E1,E3: the \
               market hot path)." in
    Arg.(value & opt string "E1,E3" & info [ "ids" ] ~doc ~docv:"IDS")
  in
  let tolerance =
    let doc = "Allowed fractional regression per metric (default 0.25: fail \
               when a metric exceeds baseline by more than 25%)." in
    Arg.(value & opt (some string) None & info [ "tolerance" ] ~doc ~docv:"FRAC")
  in
  let run baseline candidate ids tolerance =
    let tolerance_result =
      match tolerance with
      | None -> Ok 0.25
      | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some t when t >= 0.0 && Float.is_finite t -> Ok t
        | Some _ | None ->
          Error
            (Printf.sprintf
               "invalid tolerance %S (expected a non-negative number)" s))
    in
    let load file =
      match
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error msg -> Error msg
      | contents -> (
        match Obs_json.parse contents with
        | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
        | Ok json -> (
          match Obs_report.validate json with
          | Error msg ->
            Error (Printf.sprintf "%s: invalid battery report: %s" file msg)
          | Ok () -> Ok json))
    in
    (* experiment id -> (wall_s, allocated_bytes) *)
    let experiment_metrics json id =
      match Option.bind (Obs_json.member "experiments" json) Obs_json.to_list with
      | None -> None
      | Some entries ->
        List.find_map
          (fun e ->
            match Option.bind (Obs_json.member "id" e) Obs_json.to_str with
            | Some i when i = id ->
              let fl name = Option.bind (Obs_json.member name e) Obs_json.to_float in
              Option.bind (fl "wall_s") (fun w ->
                  Option.map (fun a -> (w, a)) (fl "allocated_bytes"))
            | _ -> None)
          entries
    in
    match tolerance_result with
    | Error msg ->
      prerr_endline ("perfgate: --tolerance: " ^ msg);
      2
    | Ok tol -> (
      match (load baseline, load candidate) with
      | Error msg, _ | _, Error msg ->
        prerr_endline ("perfgate: " ^ msg);
        2
      | Ok base_json, Ok cand_json ->
        let ids =
          String.split_on_char ',' ids
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        if ids = [] then begin
          prerr_endline "perfgate: --ids: no experiment ids given";
          2
        end
        else begin
          let missing = ref false in
          let regressed = ref false in
          Printf.printf "perfgate: %s vs %s, tolerance %.0f%%\n" candidate
            baseline (100.0 *. tol);
          List.iter
            (fun id ->
              match (experiment_metrics base_json id, experiment_metrics cand_json id) with
              | None, _ ->
                missing := true;
                Printf.printf "  %-4s MISSING in baseline\n" id
              | _, None ->
                missing := true;
                Printf.printf "  %-4s MISSING in report\n" id
              | Some (bw, ba), Some (cw, ca) ->
                let gate metric base cand fmt =
                  (* a zero baseline gates nothing: any positive value
                     would be an infinite ratio *)
                  let limit = base *. (1.0 +. tol) in
                  let bad = base > 0.0 && cand > limit in
                  if bad then regressed := true;
                  Printf.printf "  %-4s %-15s %s -> %s (limit %s)%s\n" id metric
                    (fmt base) (fmt cand) (fmt limit)
                    (if bad then "  REGRESSION" else "")
                in
                gate "wall_s" bw cw (Printf.sprintf "%.3fs");
                gate "allocated_bytes" ba ca (fun b ->
                    Printf.sprintf "%.1fMB" (b /. 1.048576e6)))
            ids;
          if !missing then begin
            prerr_endline "perfgate: experiment missing from a report";
            2
          end
          else if !regressed then begin
            print_endline "perfgate: FAIL (performance regression)";
            1
          end
          else begin
            print_endline "perfgate: ok";
            0
          end
        end)
  in
  let doc =
    "gate a fresh battery report against a committed baseline: fail when a \
     tracked experiment's wall clock or GC allocation regresses beyond the \
     tolerance"
  in
  Cmd.v (Cmd.info "perfgate" ~doc)
    Term.(const run $ baseline $ candidate $ ids $ tolerance)

(* ---------- scenario ---------- *)

let scenario_cmd =
  let rounds =
    let doc = "Maximum number of rounds." in
    Arg.(value & opt int 30 & info [ "rounds" ] ~doc)
  in
  let kinds =
    let doc =
      "Actors to include (comma-separated): user, isp, government, \
       rights-holder, content-provider, private-network, designer."
    in
    Arg.(value & opt string "isp,user,government" & info [ "actors" ] ~doc)
  in
  let run rounds kinds =
    let parse_kind = function
      | "user" -> Some Tussle_core.Actor.User
      | "isp" -> Some Tussle_core.Actor.Isp
      | "government" -> Some Tussle_core.Actor.Government
      | "rights-holder" -> Some Tussle_core.Actor.Rights_holder
      | "content-provider" -> Some Tussle_core.Actor.Content_provider
      | "private-network" -> Some Tussle_core.Actor.Private_network
      | "designer" -> Some Tussle_core.Actor.Designer
      | _ -> None
    in
    let names = String.split_on_char ',' kinds in
    let actors =
      List.filter_map
        (fun name -> parse_kind (String.trim name))
        names
      |> List.mapi (fun i k ->
             Tussle_core.Actor.make ~id:i
               ~name:(Tussle_core.Actor.kind_to_string k) k)
    in
    if actors = [] then begin
      prerr_endline "no recognizable actors";
      2
    end
    else begin
      let result =
        Tussle_core.Scenario.run ~max_rounds:rounds ~actors
          ~available:Tussle_core.Mechanism.available_to ()
      in
      List.iter
        (fun r ->
          let moves =
            List.filter_map
              (fun (id, m) ->
                match m with
                | Tussle_core.Scenario.Pass -> None
                | m ->
                  Some
                    (Printf.sprintf "%d:%s" id
                       (Tussle_core.Scenario.move_to_string m)))
              r.Tussle_core.Scenario.moves
          in
          if moves <> [] then
            Printf.printf "round %2d | %s\n" r.Tussle_core.Scenario.index
              (String.concat "; " moves))
        result.Tussle_core.Scenario.rounds;
      Printf.printf "ending: %s\n"
        (Tussle_core.Scenario.ending_to_string result.Tussle_core.Scenario.ending);
      Format.printf "outcome: %a@." Tussle_core.Interest.pp
        result.Tussle_core.Scenario.final_outcome;
      0
    end
  in
  let doc = "run the actor/mechanism tussle engine" in
  Cmd.v (Cmd.info "scenario" ~doc) Term.(const run $ rounds $ kinds)

(* ---------- market ---------- *)

let market_cmd =
  let providers =
    Arg.(value & opt int 4 & info [ "providers" ] ~doc:"Number of providers.")
  in
  let switching =
    Arg.(value & opt float 0.0 & info [ "switching-cost" ] ~doc:"Lock-in cost.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let run providers switching seed =
    let cfg =
      {
        Tussle_econ.Market.default_config with
        Tussle_econ.Market.n_providers = providers;
        switching_cost = switching;
      }
    in
    let r = Tussle_econ.Market.run (Tussle_prelude.Rng.create seed) cfg in
    Printf.printf "price      %.3f (salop benchmark %.3f)\n"
      r.Tussle_econ.Market.mean_price
      (Tussle_econ.Market.salop_price cfg);
    Printf.printf "markup     %.3f\n" r.Tussle_econ.Market.mean_markup;
    Printf.printf "churn      %.1f%%\n" (100.0 *. r.Tussle_econ.Market.churn_rate);
    Printf.printf "surplus    %.1f\n" r.Tussle_econ.Market.consumer_surplus;
    Printf.printf "profit     %.1f\n" r.Tussle_econ.Market.provider_profit;
    Printf.printf "HHI        %.3f\n" r.Tussle_econ.Market.hhi;
    0
  in
  let doc = "run the access-provider market model" in
  Cmd.v (Cmd.info "market" ~doc) Term.(const run $ providers $ switching $ seed)

(* ---------- policy ---------- *)

let policy_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"POLICY-FILE" ~doc:"Policy file to load.")
  in
  let request =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"SUBJECT:ACTION:RESOURCE"
             ~doc:"Request as subject:action:resource.")
  in
  let root =
    Arg.(value & opt string "root" & info [ "root" ] ~doc:"Trust root.")
  in
  let attr =
    Arg.(value & opt_all string []
         & info [ "a"; "attr" ] ~doc:"Attribute binding name=value (int or string).")
  in
  let run file request root attrs =
    let read_file path =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    try
      let policy = Tussle_policy.Parser.parse (read_file file) in
      match String.split_on_char ':' request with
      | [ subject; action; resource ] ->
        let attributes =
          List.filter_map
            (fun binding ->
              match String.index_opt binding '=' with
              | None -> None
              | Some i ->
                let name = String.sub binding 0 i in
                let v =
                  String.sub binding (i + 1) (String.length binding - i - 1)
                in
                let value =
                  match int_of_string_opt v with
                  | Some n -> Tussle_policy.Ast.Int n
                  | None -> Tussle_policy.Ast.Str v
                in
                Some (name, value))
            attrs
        in
        let req =
          { Tussle_policy.Eval.subject; action; resource; attributes }
        in
        let d = Tussle_policy.Eval.decide ~root policy req in
        print_endline (Tussle_policy.Eval.decision_to_string d);
        (match d with Tussle_policy.Eval.Allowed -> 0 | _ -> 1)
      | _ ->
        prerr_endline "request must be subject:action:resource";
        2
    with
    | Tussle_policy.Parser.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      2
    | Tussle_policy.Lexer.Lex_error (msg, pos) ->
      Printf.eprintf "lex error at %d: %s\n" pos msg;
      2
  in
  let doc = "evaluate a policy compliance query" in
  Cmd.v (Cmd.info "policy" ~doc) Term.(const run $ file $ request $ root $ attr)

let () =
  Printexc.record_backtrace true;
  let doc = "the Tussle-in-Cyberspace simulation framework" in
  let info = Cmd.info "tussle" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ experiments_cmd; chaos_cmd; sweep_cmd; search_cmd; explain_cmd;
        trends_cmd; report_cmd; perfgate_cmd; scenario_cmd; market_cmd;
        policy_cmd ]
  in
  exit (Cmd.eval' group)
