(* Tests for tussle.gametheory: normal form, zero-sum, Nash, auctions,
   repeated games, replicator, best-response dynamics, linalg. *)

module Rng = Tussle_prelude.Rng
module Linalg = Tussle_gametheory.Linalg
module Normal_form = Tussle_gametheory.Normal_form
module Zerosum = Tussle_gametheory.Zerosum
module Nash = Tussle_gametheory.Nash
module Auction = Tussle_gametheory.Auction
module Repeated = Tussle_gametheory.Repeated
module Replicator = Tussle_gametheory.Replicator
module Bestresponse = Tussle_gametheory.Bestresponse

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

(* ---------- Linalg ---------- *)

let test_linalg_solve () =
  match Linalg.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] with
  | Some x ->
    check_close "x0" 1.0 x.(0);
    check_close "x1" 3.0 x.(1)
  | None -> Alcotest.fail "singular?"

let test_linalg_singular () =
  Alcotest.(check bool) "singular" true
    (Linalg.solve [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] [| 1.0; 2.0 |] = None)

let test_linalg_dot () = check_float "dot" 11.0 (Linalg.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |])

let test_linalg_mat_vec () =
  let r = Linalg.mat_vec [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] [| 1.0; 1.0 |] in
  check_float "r0" 3.0 r.(0);
  check_float "r1" 7.0 r.(1)

(* ---------- Normal form ---------- *)

let test_pd_pure_nash () =
  (* prisoner's dilemma: unique equilibrium (D,D) = (1,1) *)
  Alcotest.(check (list (pair int int))) "dd" [ (1, 1) ]
    (Normal_form.pure_nash Normal_form.prisoners_dilemma)

let test_matching_pennies_no_pure () =
  Alcotest.(check (list (pair int int))) "none" []
    (Normal_form.pure_nash Normal_form.matching_pennies)

let test_coordination_two_pure () =
  Alcotest.(check (list (pair int int))) "both corners" [ (0, 0); (1, 1) ]
    (Normal_form.pure_nash Normal_form.pure_coordination)

let test_battle_of_sexes_two_pure () =
  Alcotest.(check (list (pair int int))) "two equilibria" [ (0, 0); (1, 1) ]
    (Normal_form.pure_nash Normal_form.battle_of_sexes)

let test_chicken_pure () =
  (* chicken: (swerve, dare) and (dare, swerve) *)
  Alcotest.(check (list (pair int int))) "off-diagonal" [ (0, 1); (1, 0) ]
    (Normal_form.pure_nash Normal_form.chicken)

let test_pd_dominance () =
  (* cooperate is strictly dominated by defect for both *)
  Alcotest.(check (list int)) "row" [ 0 ]
    (Normal_form.strictly_dominated_rows Normal_form.prisoners_dilemma);
  Alcotest.(check (list int)) "col" [ 0 ]
    (Normal_form.strictly_dominated_cols Normal_form.prisoners_dilemma)

let test_zero_sum_detect () =
  Alcotest.(check bool) "pennies zero sum" true
    (Normal_form.is_zero_sum Normal_form.matching_pennies);
  Alcotest.(check bool) "pd not" false
    (Normal_form.is_zero_sum Normal_form.prisoners_dilemma)

let test_expected_payoff () =
  let g = Normal_form.prisoners_dilemma in
  let u, v = Normal_form.expected_payoff g [| 1.0; 0.0 |] [| 1.0; 0.0 |] in
  check_float "cc row" 3.0 u;
  check_float "cc col" 3.0 v;
  let u, _ = Normal_form.expected_payoff g [| 0.5; 0.5 |] [| 0.5; 0.5 |] in
  check_float "uniform mix" 2.25 u

let test_symmetric_constructor () =
  let g = Normal_form.symmetric [| [| 1.0; 3.0 |]; [| 0.0; 2.0 |] |] in
  let a, b = Normal_form.payoff g 0 1 in
  check_float "a" 3.0 a;
  check_float "b(transposed)" 0.0 b

let test_make_validates () =
  Alcotest.check_raises "ragged" (Invalid_argument "Normal_form.make: ragged matrix")
    (fun () ->
      ignore (Normal_form.make [| [| 1.0 |]; [| 1.0; 2.0 |] |] [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ---------- Zerosum ---------- *)

let test_zerosum_pennies_value () =
  let s = Zerosum.solve ~iterations:20_000 [| [| 1.0; -1.0 |]; [| -1.0; 1.0 |] |] in
  Alcotest.(check bool) "value near 0" true (Float.abs (Zerosum.value_estimate s) < 0.02);
  Alcotest.(check bool) "gap shrinks" true (Zerosum.gap s < 0.05);
  Alcotest.(check bool) "mixed near half" true
    (Float.abs (s.Zerosum.row_strategy.(0) -. 0.5) < 0.05)

let test_zerosum_saddle () =
  (* dominant strategy game: row 1 dominates; saddle at (1,0) *)
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (option (pair int int))) "saddle" (Some (1, 0))
    (Zerosum.saddle_point a);
  let s = Zerosum.solve ~iterations:2_000 a in
  Alcotest.(check bool) "value ~3" true (Float.abs (Zerosum.value_estimate s -. 3.0) < 0.05)

let test_zerosum_no_saddle () =
  Alcotest.(check (option (pair int int))) "pennies" None
    (Zerosum.saddle_point [| [| 1.0; -1.0 |]; [| -1.0; 1.0 |] |])

let test_zerosum_bracket_invariant () =
  let s = Zerosum.solve ~iterations:5_000 [| [| 2.0; -1.0; 0.5 |]; [| -1.0; 1.0; -0.5 |] |] in
  Alcotest.(check bool) "lower <= upper" true
    (s.Zerosum.value_lower <= s.Zerosum.value_upper +. 1e-9)

(* ---------- Nash ---------- *)

let test_nash_pennies_mixed () =
  match Nash.mixed_2x2 Normal_form.matching_pennies with
  | Some { Nash.p; q } ->
    check_close "p" 0.5 p.(0);
    check_close "q" 0.5 q.(0)
  | None -> Alcotest.fail "pennies has a mixed equilibrium"

let test_nash_pd_no_interior_mix () =
  Alcotest.(check bool) "pd has no interior mix" true
    (Nash.mixed_2x2 Normal_form.prisoners_dilemma = None)

let test_nash_support_enumeration_bos () =
  (* battle of sexes: 2 pure + 1 mixed = 3 equilibria *)
  let eqs = Nash.support_enumeration Normal_form.battle_of_sexes in
  Alcotest.(check int) "three equilibria" 3 (List.length eqs);
  List.iter
    (fun pr ->
      Alcotest.(check bool) "each verifies" true
        (Nash.is_epsilon_nash Normal_form.battle_of_sexes pr ~epsilon:1e-5))
    eqs

let test_nash_support_enumeration_pd () =
  let eqs = Nash.support_enumeration Normal_form.prisoners_dilemma in
  Alcotest.(check int) "unique" 1 (List.length eqs);
  match eqs with
  | [ { Nash.p; q } ] ->
    check_close "row defects" 1.0 p.(1);
    check_close "col defects" 1.0 q.(1)
  | _ -> Alcotest.fail "expected one"

let test_nash_bos_mixed_values () =
  (* BoS mixed: row plays A with 2/3, col plays A with 1/3 *)
  match Nash.mixed_2x2 Normal_form.battle_of_sexes with
  | Some { Nash.p; q } ->
    check_close "p" (2.0 /. 3.0) p.(0);
    check_close "q" (1.0 /. 3.0) q.(0)
  | None -> Alcotest.fail "expected mixed"

let test_nash_epsilon_check_rejects () =
  let bad = { Nash.p = [| 1.0; 0.0 |]; q = [| 1.0; 0.0 |] } in
  Alcotest.(check bool) "CC not nash in PD" false
    (Nash.is_epsilon_nash Normal_form.prisoners_dilemma bad ~epsilon:1e-6)

(* ---------- Auction ---------- *)

let bids l = List.mapi (fun i a -> { Auction.bidder = i; amount = a }) l

let test_auction_first_price () =
  let o = Auction.first_price (bids [ 3.0; 7.0; 5.0 ]) in
  Alcotest.(check (list (pair int (float 1e-9)))) "winner pays own" [ (1, 7.0) ]
    o.Auction.winners;
  check_float "revenue" 7.0 o.Auction.revenue

let test_auction_second_price () =
  let o = Auction.second_price (bids [ 3.0; 7.0; 5.0 ]) in
  Alcotest.(check (list (pair int (float 1e-9)))) "winner pays second" [ (1, 5.0) ]
    o.Auction.winners;
  check_float "revenue" 5.0 o.Auction.revenue

let test_auction_second_price_single () =
  let o = Auction.second_price (bids [ 4.0 ]) in
  Alcotest.(check (list (pair int (float 1e-9)))) "free" [ (0, 0.0) ] o.Auction.winners

let test_auction_tie_lowest_id () =
  let o = Auction.second_price (bids [ 5.0; 5.0 ]) in
  match o.Auction.winners with
  | [ (w, p) ] ->
    Alcotest.(check int) "lowest id" 0 w;
    check_float "pays tie" 5.0 p
  | _ -> Alcotest.fail "one winner"

let test_auction_vcg () =
  let o = Auction.vcg_multiunit ~units:2 (bids [ 9.0; 7.0; 5.0; 3.0 ]) in
  Alcotest.(check int) "two winners" 2 (List.length o.Auction.winners);
  List.iter (fun (_, p) -> check_float "uniform price" 5.0 p) o.Auction.winners;
  check_float "revenue" 10.0 o.Auction.revenue

let test_auction_vcg_excess_supply () =
  let o = Auction.vcg_multiunit ~units:5 (bids [ 2.0; 1.0 ]) in
  List.iter (fun (_, p) -> check_float "free" 0.0 p) o.Auction.winners

let test_vickrey_truthful () =
  let others = bids [ 4.0; 6.0 ] in
  Alcotest.(check bool) "truthful dominant" true
    (Auction.truthful_is_dominant ~auction:Auction.second_price ~valuation:5.0
       ~bidder:99 ~others
       ~deviations:[ 0.0; 1.0; 3.0; 4.5; 5.5; 7.0; 10.0 ])

let test_first_price_not_truthful () =
  (* valuation 5 vs a single rival bidding 1: truthful wins at 5 (utility
     0), shading to 2 wins with utility 3 *)
  let others = [ { Auction.bidder = 0; amount = 1.0 } ] in
  Alcotest.(check bool) "shading beats truth" false
    (Auction.truthful_is_dominant ~auction:Auction.first_price ~valuation:5.0
       ~bidder:1 ~others ~deviations:[ 2.0 ])

let test_auction_validations () =
  Alcotest.check_raises "empty" (Invalid_argument "Auction.second_price: no bids")
    (fun () -> ignore (Auction.second_price []));
  Alcotest.check_raises "negative"
    (Invalid_argument "Auction.first_price: negative bid") (fun () ->
      ignore (Auction.first_price [ { Auction.bidder = 0; amount = -1.0 } ]))

(* ---------- Repeated ---------- *)

let pd = Normal_form.prisoners_dilemma

let test_repeated_allc_vs_alld () =
  let r = Repeated.play ~rounds:10 pd Repeated.all_cooperate Repeated.all_defect in
  check_float "sucker" 0.0 r.Repeated.payoff_a;
  check_float "exploiter" 50.0 r.Repeated.payoff_b

let test_repeated_tft_vs_alld () =
  (* TFT loses only the first round *)
  let r = Repeated.play ~rounds:10 pd Repeated.tit_for_tat Repeated.all_defect in
  check_float "tft" 9.0 r.Repeated.payoff_a;
  check_float "alld" 14.0 r.Repeated.payoff_b

let test_repeated_tft_mutual_cooperation () =
  let r = Repeated.play ~rounds:20 pd Repeated.tit_for_tat Repeated.tit_for_tat in
  check_float "full cooperation" 60.0 r.Repeated.payoff_a;
  check_float "coop rate" 1.0 (Repeated.cooperation_rate r)

let test_repeated_grim_punishes_forever () =
  (* a strategy that defects once at round 2 then cooperates *)
  let one_shot_defector =
    {
      Repeated.name = "sneak";
      first = 0;
      next =
        (fun ~own_history ~opp_history:_ ->
          if List.length own_history = 1 then 1 else 0);
    }
  in
  let r = Repeated.play ~rounds:10 pd Repeated.grim_trigger one_shot_defector in
  (* grim cooperates rounds 0-1, then defects to the end *)
  let grim_moves = List.map fst r.Repeated.moves in
  Alcotest.(check (list int)) "grim never forgives"
    [ 0; 0; 1; 1; 1; 1; 1; 1; 1; 1 ] grim_moves

let test_repeated_discounting () =
  let r =
    Repeated.play ~delta:0.5 ~rounds:3 pd Repeated.all_cooperate
      Repeated.all_cooperate
  in
  (* 3 + 1.5 + 0.75 *)
  check_float "discounted" 5.25 r.Repeated.payoff_a

let test_repeated_tournament_tft_beats_alld_population () =
  let roster =
    [ Repeated.tit_for_tat; Repeated.all_cooperate; Repeated.grim_trigger;
      Repeated.all_defect ]
  in
  let results = Repeated.tournament ~rounds:50 pd roster in
  let score name = List.assoc name results in
  (* in this cooperative-majority population, TFT outscores AllD *)
  Alcotest.(check bool) "tft > alld" true (score "tit-for-tat" > score "all-d")

let test_repeated_pavlov () =
  let r = Repeated.play ~rounds:10 pd Repeated.pavlov Repeated.pavlov in
  check_float "pavlov cooperates with itself" 1.0 (Repeated.cooperation_rate r)

let test_peering_game_one_shot_defects () =
  Alcotest.(check (list (pair int int))) "one-shot refusal" [ (1, 1) ]
    (Normal_form.pure_nash Normal_form.peering_game)

let test_peering_repeated_cooperates () =
  let r =
    Repeated.play ~rounds:100 Normal_form.peering_game Repeated.tit_for_tat
      Repeated.tit_for_tat
  in
  check_float "peering sustained" 1.0 (Repeated.cooperation_rate r)

(* ---------- Replicator ---------- *)

let test_replicator_pd_to_defection () =
  match Replicator.fixed_point pd [| 0.9; 0.1 |] with
  | Some state -> Alcotest.(check bool) "defection takes over" true (state.(1) > 0.99)
  | None -> Alcotest.fail "no convergence"

let test_replicator_preserves_distribution () =
  let s = Replicator.step pd [| 0.6; 0.4 |] in
  check_close "sums to one" 1.0 (s.(0) +. s.(1));
  Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (x >= 0.0)) s

let test_replicator_pure_state_fixed () =
  let s = Replicator.step pd [| 0.0; 1.0 |] in
  check_close "pure stays" 1.0 s.(1)

let test_replicator_ess () =
  (* defect is ESS in PD *)
  Alcotest.(check bool) "defect ESS" true
    (Replicator.is_evolutionarily_stable_pure pd 1 ~invaders:[ 0 ]);
  Alcotest.(check bool) "cooperate not ESS" false
    (Replicator.is_evolutionarily_stable_pure pd 0 ~invaders:[ 1 ])

let test_replicator_mean_fitness () =
  let f = Replicator.mean_fitness pd [| 1.0; 0.0 |] in
  check_float "all-C fitness" 3.0 f

let test_replicator_trajectory_length () =
  let t = Replicator.evolve ~steps:10 pd [| 0.5; 0.5 |] in
  Alcotest.(check int) "initial + 10" 11 (List.length t)

(* ---------- Bestresponse ---------- *)

let test_bestresponse_pd () =
  let g =
    {
      Bestresponse.players = 2;
      strategies = [| 2; 2 |];
      payoff =
        (fun p profile ->
          let own = profile.(p) and other = profile.(1 - p) in
          fst (Normal_form.payoff pd own other));
    }
  in
  (match Bestresponse.converge g ~init:[| 0; 0 |] with
  | Some profile -> Alcotest.(check (array int)) "dd" [| 1; 1 |] profile
  | None -> Alcotest.fail "cycled");
  Alcotest.(check int) "one pure nash" 1 (List.length (Bestresponse.all_pure_nash g));
  check_float "welfare at dd" 2.0 (Bestresponse.social_welfare g [| 1; 1 |])

let test_bestresponse_cycle_detected () =
  (* matching pennies cycles under best response *)
  let mp = Normal_form.matching_pennies in
  let g =
    {
      Bestresponse.players = 2;
      strategies = [| 2; 2 |];
      payoff =
        (fun p profile ->
          let u, v = Normal_form.payoff mp profile.(0) profile.(1) in
          if p = 0 then u else v);
    }
  in
  Alcotest.(check bool) "cycles" true
    (Bestresponse.converge ~max_sweeps:50 g ~init:[| 0; 0 |] = None);
  Alcotest.(check int) "no pure nash" 0 (List.length (Bestresponse.all_pure_nash g))

let test_bestresponse_validation () =
  let bad = { Bestresponse.players = 0; strategies = [||]; payoff = (fun _ _ -> 0.0) } in
  Alcotest.check_raises "no players"
    (Invalid_argument "Bestresponse: non-positive players") (fun () ->
      Bestresponse.validate bad)

(* ---------- qcheck properties ---------- *)

let prop_vickrey_truthful_random =
  QCheck2.Test.make ~name:"vickrey truthfulness (random instances)" ~count:300
    QCheck2.Gen.(
      triple (float_bound_exclusive 10.0)
        (list_size (int_range 1 6) (float_bound_exclusive 10.0))
        (list_size (int_range 1 6) (float_bound_exclusive 10.0)))
    (fun (valuation, other_amounts, deviations) ->
      let others =
        List.mapi (fun i a -> { Auction.bidder = i + 1; amount = a }) other_amounts
      in
      Auction.truthful_is_dominant ~auction:Auction.second_price ~valuation
        ~bidder:0 ~others ~deviations)

let prop_replicator_stays_simplex =
  QCheck2.Test.make ~name:"replicator stays on simplex" ~count:200
    QCheck2.Gen.(pair (float_range 0.01 0.99) (int_range 1 50))
    (fun (x, steps) ->
      let state = ref [| x; 1.0 -. x |] in
      for _ = 1 to steps do
        state := Replicator.step pd !state
      done;
      let s = !state in
      Float.abs (s.(0) +. s.(1) -. 1.0) < 1e-6 && s.(0) >= 0.0 && s.(1) >= 0.0)

let prop_zerosum_bracket =
  QCheck2.Test.make ~name:"fictitious play brackets the value" ~count:50
    QCheck2.Gen.(
      array_size (int_range 2 4)
        (array_size (int_range 2 4) (float_range (-5.0) 5.0)))
    (fun a ->
      (* make rectangular: crop rows to the min length *)
      let m = Array.fold_left (fun acc r -> min acc (Array.length r)) max_int a in
      let a = Array.map (fun r -> Array.sub r 0 m) a in
      let s = Zerosum.solve ~iterations:500 a in
      s.Zerosum.value_lower <= s.Zerosum.value_upper +. 1e-6)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_vickrey_truthful_random; prop_replicator_stays_simplex; prop_zerosum_bracket ]


(* ---------- coverage sweep ---------- *)

let test_repeated_random_strategy () =
  let rng = Rng.create 55 in
  let s = Repeated.random_strategy rng ~p_cooperate:1.0 in
  let r = Repeated.play ~rounds:20 pd s Repeated.all_cooperate in
  check_float "always cooperates at p=1" 1.0 (Repeated.cooperation_rate r);
  let rng = Rng.create 56 in
  let d = Repeated.random_strategy rng ~p_cooperate:0.0 in
  let r = Repeated.play ~rounds:20 pd d d in
  check_float "never cooperates at p=0" 0.0 (Repeated.cooperation_rate r)

let test_repeated_average_payoffs () =
  let r = Repeated.play ~rounds:10 pd Repeated.all_cooperate Repeated.all_cooperate in
  let a, b = Repeated.average_payoffs r ~rounds:10 in
  check_float "avg a" 3.0 a;
  check_float "avg b" 3.0 b

let test_zerosum_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Zerosum.solve: empty matrix")
    (fun () -> ignore (Zerosum.solve [||]));
  Alcotest.check_raises "iters"
    (Invalid_argument "Zerosum.solve: non-positive iterations") (fun () ->
      ignore (Zerosum.solve ~iterations:0 [| [| 1.0 |] |]))

let test_best_responses () =
  Alcotest.(check (list int)) "row br vs C" [ 1 ]
    (Normal_form.best_responses_row pd 0);
  Alcotest.(check (list int)) "col br vs D" [ 1 ]
    (Normal_form.best_responses_col pd 1)

let test_auction_utility () =
  (* losing bidder: zero utility *)
  check_float "loser" 0.0
    (Auction.utility ~auction:Auction.second_price ~valuation:3.0 ~bid:3.0
       ~bidder:0 ~others:[ { Auction.bidder = 1; amount = 9.0 } ]);
  (* winner pays second price *)
  check_float "winner" 4.0
    (Auction.utility ~auction:Auction.second_price ~valuation:9.0 ~bid:9.0
       ~bidder:0 ~others:[ { Auction.bidder = 1; amount = 5.0 } ])

let () =
  Alcotest.run "gametheory"
    [
      ( "linalg",
        [
          Alcotest.test_case "solve" `Quick test_linalg_solve;
          Alcotest.test_case "singular" `Quick test_linalg_singular;
          Alcotest.test_case "dot" `Quick test_linalg_dot;
          Alcotest.test_case "mat_vec" `Quick test_linalg_mat_vec;
        ] );
      ( "normal-form",
        [
          Alcotest.test_case "pd pure nash" `Quick test_pd_pure_nash;
          Alcotest.test_case "pennies no pure" `Quick test_matching_pennies_no_pure;
          Alcotest.test_case "coordination" `Quick test_coordination_two_pure;
          Alcotest.test_case "battle of sexes" `Quick test_battle_of_sexes_two_pure;
          Alcotest.test_case "chicken" `Quick test_chicken_pure;
          Alcotest.test_case "pd dominance" `Quick test_pd_dominance;
          Alcotest.test_case "zero-sum detect" `Quick test_zero_sum_detect;
          Alcotest.test_case "expected payoff" `Quick test_expected_payoff;
          Alcotest.test_case "symmetric" `Quick test_symmetric_constructor;
          Alcotest.test_case "validation" `Quick test_make_validates;
        ] );
      ( "zerosum",
        [
          Alcotest.test_case "pennies value" `Quick test_zerosum_pennies_value;
          Alcotest.test_case "saddle point" `Quick test_zerosum_saddle;
          Alcotest.test_case "no saddle" `Quick test_zerosum_no_saddle;
          Alcotest.test_case "bracket invariant" `Quick test_zerosum_bracket_invariant;
        ] );
      ( "nash",
        [
          Alcotest.test_case "pennies mixed" `Quick test_nash_pennies_mixed;
          Alcotest.test_case "pd no interior" `Quick test_nash_pd_no_interior_mix;
          Alcotest.test_case "support enum bos" `Quick test_nash_support_enumeration_bos;
          Alcotest.test_case "support enum pd" `Quick test_nash_support_enumeration_pd;
          Alcotest.test_case "bos mixed values" `Quick test_nash_bos_mixed_values;
          Alcotest.test_case "epsilon rejects" `Quick test_nash_epsilon_check_rejects;
        ] );
      ( "auction",
        [
          Alcotest.test_case "first price" `Quick test_auction_first_price;
          Alcotest.test_case "second price" `Quick test_auction_second_price;
          Alcotest.test_case "single bidder" `Quick test_auction_second_price_single;
          Alcotest.test_case "tie break" `Quick test_auction_tie_lowest_id;
          Alcotest.test_case "vcg multiunit" `Quick test_auction_vcg;
          Alcotest.test_case "vcg excess supply" `Quick test_auction_vcg_excess_supply;
          Alcotest.test_case "vickrey truthful" `Quick test_vickrey_truthful;
          Alcotest.test_case "first price not truthful" `Quick
            test_first_price_not_truthful;
          Alcotest.test_case "validations" `Quick test_auction_validations;
        ] );
      ( "repeated",
        [
          Alcotest.test_case "allc vs alld" `Quick test_repeated_allc_vs_alld;
          Alcotest.test_case "tft vs alld" `Quick test_repeated_tft_vs_alld;
          Alcotest.test_case "tft mutual" `Quick test_repeated_tft_mutual_cooperation;
          Alcotest.test_case "grim punishes" `Quick test_repeated_grim_punishes_forever;
          Alcotest.test_case "discounting" `Quick test_repeated_discounting;
          Alcotest.test_case "tournament" `Quick
            test_repeated_tournament_tft_beats_alld_population;
          Alcotest.test_case "pavlov" `Quick test_repeated_pavlov;
          Alcotest.test_case "peering one-shot" `Quick test_peering_game_one_shot_defects;
          Alcotest.test_case "peering repeated" `Quick test_peering_repeated_cooperates;
        ] );
      ( "replicator",
        [
          Alcotest.test_case "pd to defection" `Quick test_replicator_pd_to_defection;
          Alcotest.test_case "simplex preserved" `Quick
            test_replicator_preserves_distribution;
          Alcotest.test_case "pure fixed" `Quick test_replicator_pure_state_fixed;
          Alcotest.test_case "ess" `Quick test_replicator_ess;
          Alcotest.test_case "mean fitness" `Quick test_replicator_mean_fitness;
          Alcotest.test_case "trajectory" `Quick test_replicator_trajectory_length;
        ] );
      ( "bestresponse",
        [
          Alcotest.test_case "pd converges" `Quick test_bestresponse_pd;
          Alcotest.test_case "pennies cycles" `Quick test_bestresponse_cycle_detected;
          Alcotest.test_case "validation" `Quick test_bestresponse_validation;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "random strategy" `Quick test_repeated_random_strategy;
          Alcotest.test_case "average payoffs" `Quick test_repeated_average_payoffs;
          Alcotest.test_case "zerosum validation" `Quick test_zerosum_validation;
          Alcotest.test_case "best responses" `Quick test_best_responses;
          Alcotest.test_case "auction utility" `Quick test_auction_utility;
        ] );
      ("properties", qcheck_cases);
    ]
