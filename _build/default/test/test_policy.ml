(* Tests for tussle.policy: lexer, parser, evaluation, delegation,
   ontology. *)

module Rng = Tussle_prelude.Rng
module Ast = Tussle_policy.Ast
module Lexer = Tussle_policy.Lexer
module Parser = Tussle_policy.Parser
module Eval = Tussle_policy.Eval
module Ontology = Tussle_policy.Ontology

let check_float = Alcotest.(check (float 1e-9))

let decision =
  Alcotest.testable
    (fun ppf d -> Format.pp_print_string ppf (Eval.decision_to_string d))
    ( = )

(* ---------- Lexer ---------- *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "alice says allow bob send on mail." in
  Alcotest.(check int) "token count" 9 (List.length toks);
  Alcotest.(check bool) "ends with eof" true
    (List.nth toks 8 = Lexer.EOF);
  Alcotest.(check bool) "ident" true (List.hd toks = Lexer.IDENT "alice")

let test_lexer_operators () =
  let toks = Lexer.tokenize "== != < <= > >=" in
  Alcotest.(check (list string)) "ops"
    [ "=="; "!="; "<"; "<="; ">"; ">="; "<eof>" ]
    (List.map Lexer.token_to_string toks)

let test_lexer_string_and_int () =
  match Lexer.tokenize "\"hello world\" 42" with
  | [ Lexer.STRING s; Lexer.INT n; Lexer.EOF ] ->
    Alcotest.(check string) "string" "hello world" s;
    Alcotest.(check int) "int" 42 n
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_comment () =
  let toks = Lexer.tokenize "# a comment\nalice" in
  Alcotest.(check int) "comment skipped" 2 (List.length toks)

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "@");
     Alcotest.fail "should raise"
   with Lexer.Lex_error (_, 0) -> ());
  try
    ignore (Lexer.tokenize "\"unterminated");
    Alcotest.fail "should raise"
  with Lexer.Lex_error (msg, _) ->
    Alcotest.(check string) "msg" "unterminated string" msg

(* ---------- Parser ---------- *)

let test_parse_simple () =
  let a = Parser.parse_assertion "alice says allow bob send on mail." in
  Alcotest.(check string) "issuer" "alice" a.Ast.issuer;
  Alcotest.(check string) "subject" "bob" a.Ast.subject;
  Alcotest.(check string) "action" "send" a.Ast.action;
  Alcotest.(check string) "resource" "mail" a.Ast.resource;
  Alcotest.(check bool) "allow" true (a.Ast.effect = Ast.Allow);
  Alcotest.(check bool) "not delegable" false a.Ast.delegable;
  Alcotest.(check bool) "no condition" true (a.Ast.condition = None)

let test_parse_deny_wildcards () =
  let a = Parser.parse_assertion "root says deny eve * on *." in
  Alcotest.(check bool) "deny" true (a.Ast.effect = Ast.Deny);
  Alcotest.(check string) "action wild" "*" a.Ast.action;
  Alcotest.(check string) "resource wild" "*" a.Ast.resource

let test_parse_condition () =
  let a =
    Parser.parse_assertion
      "isp says allow user send on backbone where port == 25 and size < 1000."
  in
  match a.Ast.condition with
  | Some (Ast.And (Ast.Cmp (Ast.Eq, Ast.Attr "port", Ast.Const (Ast.Int 25)), _)) -> ()
  | Some e ->
    Alcotest.failf "unexpected condition %a" (fun ppf -> Ast.pp_expr ppf) e
  | None -> Alcotest.fail "missing condition"

let test_parse_delegable () =
  let a = Parser.parse_assertion "root says allow isp1 connect on \"*\" delegable." in
  Alcotest.(check bool) "delegable" true a.Ast.delegable;
  Alcotest.(check string) "quoted resource" "*" a.Ast.resource

let test_parse_precedence () =
  (* and binds tighter than or *)
  match Parser.parse_expr "a == 1 or b == 2 and c == 3" with
  | Ast.Or (_, Ast.And (_, _)) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_not_parens () =
  match Parser.parse_expr "not (a == 1)" with
  | Ast.Not (Ast.Cmp (Ast.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "not/parens wrong"

let test_parse_multiple () =
  let p =
    Parser.parse
      "alice says allow bob send on mail. root says deny eve * on *."
  in
  Alcotest.(check int) "two assertions" 2 (List.length p)

let test_parse_error_cases () =
  (try
     ignore (Parser.parse_assertion "alice allow bob send on mail.");
     Alcotest.fail "missing says"
   with Parser.Parse_error _ -> ());
  (try
     ignore (Parser.parse_assertion "alice says allow bob send on mail");
     Alcotest.fail "missing dot"
   with Parser.Parse_error _ -> ());
  try
    ignore (Parser.parse_expr "a ==");
    Alcotest.fail "dangling op"
  with Parser.Parse_error _ -> ()

let test_parse_roundtrip_pp () =
  let text = "isp says allow user send on backbone where port == 25 delegable." in
  let a = Parser.parse_assertion text in
  let printed = Format.asprintf "%a" Ast.pp_assertion a in
  let a2 = Parser.parse_assertion printed in
  Alcotest.(check bool) "pp parses back equal" true (a = a2)

(* ---------- Eval ---------- *)

let req ?(attributes = []) subject action resource =
  { Eval.subject; action; resource; attributes }

let test_eval_direct_allow () =
  let p = Parser.parse "root says allow bob send on mail." in
  Alcotest.check decision "allowed" Eval.Allowed
    (Eval.decide ~root:"root" p (req "bob" "send" "mail"))

let test_eval_default_deny () =
  let p = Parser.parse "root says allow bob send on mail." in
  Alcotest.check decision "other subject" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "carol" "send" "mail"));
  Alcotest.check decision "other action" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "bob" "read" "mail"))

let test_eval_unrooted_ignored () =
  (* random principal's say-so does not count *)
  let p = Parser.parse "mallory says allow mallory * on *." in
  Alcotest.check decision "not rooted" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "mallory" "send" "mail"))

let test_eval_deny_overrides () =
  let p =
    Parser.parse
      "root says allow * send on mail. root says deny eve send on mail."
  in
  Alcotest.check decision "eve denied" Eval.Denied
    (Eval.decide ~root:"root" p (req "eve" "send" "mail"));
  Alcotest.check decision "others fine" Eval.Allowed
    (Eval.decide ~root:"root" p (req "bob" "send" "mail"))

let test_eval_condition_gate () =
  let p =
    Parser.parse "root says allow bob send on mail where port == 25."
  in
  Alcotest.check decision "matching attr" Eval.Allowed
    (Eval.decide ~root:"root" p
       (req ~attributes:[ ("port", Ast.Int 25) ] "bob" "send" "mail"));
  Alcotest.check decision "wrong attr" Eval.Not_applicable
    (Eval.decide ~root:"root" p
       (req ~attributes:[ ("port", Ast.Int 80) ] "bob" "send" "mail"));
  Alcotest.check decision "missing attr fails closed" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "bob" "send" "mail"))

let test_eval_delegation_chain () =
  let p =
    Parser.parse
      "root says allow isp connect on backbone delegable. \
       isp says allow reseller connect on backbone delegable. \
       reseller says allow customer connect on backbone."
  in
  Alcotest.check decision "two-hop chain" Eval.Allowed
    (Eval.decide ~root:"root" p (req "customer" "connect" "backbone"));
  Alcotest.check decision "isp itself" Eval.Allowed
    (Eval.decide ~root:"root" p (req "isp" "connect" "backbone"))

let test_eval_nondelegable_breaks_chain () =
  let p =
    Parser.parse
      "root says allow isp connect on backbone. \
       isp says allow customer connect on backbone."
  in
  (* isp's grant is not delegable, so isp cannot re-issue *)
  Alcotest.check decision "chain broken" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "customer" "connect" "backbone"))

let test_eval_delegation_scope_limited () =
  let p =
    Parser.parse
      "root says allow isp connect on backbone delegable. \
       isp says allow customer send on mail."
  in
  (* delegation covered connect/backbone, not send/mail *)
  Alcotest.check decision "out of scope" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "customer" "send" "mail"))

let test_eval_delegation_cycle_safe () =
  let p =
    Parser.parse
      "a says allow b x on y delegable. b says allow a x on y delegable. \
       a says allow victim x on y."
  in
  (* a and b vouch for each other but neither is rooted *)
  Alcotest.check decision "cycle not rooted" Eval.Not_applicable
    (Eval.decide ~root:"root" p (req "victim" "x" "y"))

let test_eval_expr_semantics () =
  let env = [ ("x", Ast.Int 5); ("s", Ast.Str "abc"); ("b", Ast.Bool true) ] in
  let t s = Eval.eval_expr env (Parser.parse_expr s) in
  Alcotest.(check bool) "lt" true (t "x < 6");
  Alcotest.(check bool) "ge" true (t "x >= 5");
  Alcotest.(check bool) "str eq" true (t "s == \"abc\"");
  Alcotest.(check bool) "str lt" true (t "s < \"abd\"");
  Alcotest.(check bool) "bool attr" true (t "b == true");
  Alcotest.(check bool) "and" false (t "x < 6 and x > 5");
  Alcotest.(check bool) "or" true (t "x < 6 or x > 100");
  Alcotest.(check bool) "not" true (t "not (x == 6)");
  Alcotest.(check bool) "type mismatch false" false (t "s < 3");
  Alcotest.(check bool) "missing attr false" false (t "missing == 1")

let test_eval_wildcard_subject () =
  let p = Parser.parse "root says allow * send on mail." in
  Alcotest.(check bool) "anyone" true
    (Eval.permitted ~root:"root" p (req "whoever" "send" "mail"))

(* ---------- attributes / ontology ---------- *)

let test_attributes_of_policy () =
  let p =
    Parser.parse
      "root says allow a x on y where port == 1 and qos == 2. \
       root says allow b x on y where size > 3."
  in
  Alcotest.(check (list string)) "attrs" [ "port"; "qos"; "size" ]
    (Ast.attributes_of_policy p)

let test_ontology_coverage () =
  let ont = Ontology.make_ontology [ "port"; "app" ] in
  let c1 = { Ontology.label = "c1"; footprint = [ "port" ] } in
  let c2 = { Ontology.label = "c2"; footprint = [ "port"; "app" ] } in
  let c3 = { Ontology.label = "c3"; footprint = [ "jurisdiction" ] } in
  Alcotest.(check bool) "c1 in" true (Ontology.expressible ont c1);
  Alcotest.(check bool) "c3 out" false (Ontology.expressible ont c3);
  check_float "coverage" (2.0 /. 3.0) (Ontology.coverage ont [ c1; c2; c3 ])

let test_ontology_ceiling () =
  (* even the full standard ontology cannot express unanticipated tussles *)
  let rng = Rng.create 7 in
  let cs = Ontology.random_constraints rng ~n:400 ~anticipated_bias:0.8 in
  let full = Ontology.make_ontology Ontology.standard_attributes in
  let cov = Ontology.coverage full cs in
  Alcotest.(check bool) "ceiling below 1" true (cov < 1.0);
  Alcotest.(check bool) "but substantial" true (cov > 0.3);
  (* a richer ontology strictly helps *)
  let richer =
    Ontology.make_ontology
      (Ontology.standard_attributes @ Ontology.unanticipated_attributes)
  in
  check_float "full coverage" 1.0 (Ontology.coverage richer cs)

let test_ontology_monotone () =
  let rng = Rng.create 9 in
  let cs = Ontology.random_constraints rng ~n:200 ~anticipated_bias:0.7 in
  let prefix n =
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take n Ontology.standard_attributes
  in
  let prev = ref (-1.0) in
  List.iter
    (fun n ->
      let cov = Ontology.coverage (Ontology.make_ontology (prefix n)) cs in
      Alcotest.(check bool) "monotone" true (cov >= !prev);
      prev := cov)
    [ 0; 2; 4; 6; 9 ]

(* ---------- qcheck: generated assertions parse back ---------- *)

let ident_gen =
  QCheck2.Gen.(
    let letters = "abcdefghij" in
    map
      (fun (a, b) ->
        Printf.sprintf "%c%c" letters.[a mod 10] letters.[b mod 10])
      (pair small_int small_int))

let assertion_gen =
  QCheck2.Gen.(
    let* issuer = ident_gen in
    let* subject = ident_gen in
    let* action = ident_gen in
    let* resource = ident_gen in
    let* allow = bool in
    let* delegable = bool in
    let* with_cond = bool in
    let* attr = ident_gen in
    let* v = int_range 0 1000 in
    return
      {
        Ast.issuer;
        effect = (if allow then Ast.Allow else Ast.Deny);
        subject;
        action;
        resource;
        condition =
          (if with_cond then
             Some (Ast.Cmp (Ast.Le, Ast.Attr attr, Ast.Const (Ast.Int v)))
           else None);
        delegable;
      })

let prop_pp_parse_roundtrip =
  QCheck2.Test.make ~name:"pp/parse roundtrip" ~count:300 assertion_gen
    (fun a ->
      let printed = Format.asprintf "%a" Ast.pp_assertion a in
      Parser.parse_assertion printed = a)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_pp_parse_roundtrip ]

let () =
  Alcotest.run "policy"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "string and int" `Quick test_lexer_string_and_int;
          Alcotest.test_case "comment" `Quick test_lexer_comment;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "deny/wildcards" `Quick test_parse_deny_wildcards;
          Alcotest.test_case "condition" `Quick test_parse_condition;
          Alcotest.test_case "delegable" `Quick test_parse_delegable;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "not/parens" `Quick test_parse_not_parens;
          Alcotest.test_case "multiple" `Quick test_parse_multiple;
          Alcotest.test_case "errors" `Quick test_parse_error_cases;
          Alcotest.test_case "pp roundtrip" `Quick test_parse_roundtrip_pp;
        ] );
      ( "eval",
        [
          Alcotest.test_case "direct allow" `Quick test_eval_direct_allow;
          Alcotest.test_case "default deny" `Quick test_eval_default_deny;
          Alcotest.test_case "unrooted ignored" `Quick test_eval_unrooted_ignored;
          Alcotest.test_case "deny overrides" `Quick test_eval_deny_overrides;
          Alcotest.test_case "condition gate" `Quick test_eval_condition_gate;
          Alcotest.test_case "delegation chain" `Quick test_eval_delegation_chain;
          Alcotest.test_case "non-delegable breaks" `Quick
            test_eval_nondelegable_breaks_chain;
          Alcotest.test_case "delegation scope" `Quick
            test_eval_delegation_scope_limited;
          Alcotest.test_case "delegation cycle" `Quick test_eval_delegation_cycle_safe;
          Alcotest.test_case "expr semantics" `Quick test_eval_expr_semantics;
          Alcotest.test_case "wildcard subject" `Quick test_eval_wildcard_subject;
        ] );
      ( "ontology",
        [
          Alcotest.test_case "attributes of policy" `Quick test_attributes_of_policy;
          Alcotest.test_case "coverage" `Quick test_ontology_coverage;
          Alcotest.test_case "ceiling" `Quick test_ontology_ceiling;
          Alcotest.test_case "monotone" `Quick test_ontology_monotone;
        ] );
      ("properties", qcheck_cases);
    ]
