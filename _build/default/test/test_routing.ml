(* Tests for tussle.routing: link-state, path-vector (Gao-Rexford),
   source routing, overlay, visibility. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Topology = Tussle_netsim.Topology
module Packet = Tussle_netsim.Packet
module Middlebox = Tussle_netsim.Middlebox
module Linkstate = Tussle_routing.Linkstate
module Pathvector = Tussle_routing.Pathvector
module Sourceroute = Tussle_routing.Sourceroute
module Overlay = Tussle_routing.Overlay
module Visibility = Tussle_routing.Visibility

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Linkstate ---------- *)

let test_linkstate_line () =
  let ls = Linkstate.compute (Topology.line 4) ~metric:`Hops in
  Alcotest.(check (option int)) "next hop" (Some 1)
    (Linkstate.next_hop ls ~node:0 ~dst:3);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ])
    (Linkstate.path ls ~src:0 ~dst:3);
  Alcotest.(check (option (float 1e-9))) "distance" (Some 3.0)
    (Linkstate.distance ls ~src:0 ~dst:3)

let test_linkstate_latency_metric () =
  let fast = { Topology.latency = 0.001; bandwidth_bps = 1e8 } in
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 { fast with Topology.latency = 0.010 };
  Graph.add_undirected g 0 2 fast;
  Graph.add_undirected g 2 1 fast;
  let ls = Linkstate.compute g ~metric:`Latency in
  Alcotest.(check (option (list int))) "low-latency detour" (Some [ 0; 2; 1 ])
    (Linkstate.path ls ~src:0 ~dst:1)

let test_linkstate_disconnected () =
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 Topology.default_edge;
  let ls = Linkstate.compute g ~metric:`Hops in
  Alcotest.(check (option int)) "no hop" None (Linkstate.next_hop ls ~node:0 ~dst:2);
  Alcotest.(check (option (float 1e-9))) "no distance" None
    (Linkstate.distance ls ~src:0 ~dst:2)

let test_linkstate_exposure () =
  let g = Topology.line 4 in
  let ls = Linkstate.compute g ~metric:`Hops in
  Alcotest.(check int) "all links flooded" (Graph.edge_count g)
    (List.length (Linkstate.visible_link_costs ls));
  check_float "exposure 1.0" 1.0
    (Visibility.linkstate_exposure ls ~total_links:(Graph.edge_count g))

(* ---------- Pathvector ---------- *)

(* helper: a plain graph where every edge is Internal (single domain) *)
let internal_graph base =
  Graph.map_edges base (fun e -> (e, Topology.Internal))

let test_pathvector_internal_reaches_all () =
  let pv = Pathvector.compute (internal_graph (Topology.ring 6)) in
  check_float "full reachability" 1.0 (Pathvector.reachability_ratio pv);
  (* shortest AS path on a 6-ring: 0 to 3 is 3 hops *)
  match Pathvector.as_path pv ~src:0 ~dst:3 with
  | Some path -> Alcotest.(check int) "path length" 3 (List.length path)
  | None -> Alcotest.fail "unreachable"

let two_tier_fixture seed =
  let rng = Rng.create seed in
  Topology.two_tier rng ~transits:3 ~accesses:4 ~hosts_per_access:2
    ~multihoming:2

let test_pathvector_two_tier_reachability () =
  let tt = two_tier_fixture 11 in
  let pv = Pathvector.compute tt.Topology.graph in
  check_float "all pairs reachable" 1.0 (Pathvector.reachability_ratio pv)

(* Gao-Rexford: no valley-free violation — once a path goes down (to a
   customer) it never goes up (to a provider) again, and at most one
   peer edge is crossed. *)
let valley_free g src path =
  let rel u v =
    match Graph.find_edge g u v with
    | Some (_, r) -> r
    | None -> Alcotest.fail "path uses missing edge"
  in
  let rec walk prev state = function
    | [] -> true
    | hop :: rest ->
      let r = rel prev hop in
      let ok, state' =
        match (r, state) with
        | Topology.Customer_of, `Up -> (true, `Up) (* going up to provider *)
        | Topology.Customer_of, (`Peered | `Down) -> (false, `Down)
        | Topology.Peer_with, `Up -> (true, `Peered)
        | Topology.Peer_with, (`Peered | `Down) -> (false, `Down)
        | Topology.Provider_of, _ -> (true, `Down) (* going down to customer *)
        | Topology.Internal, s -> (true, s)
      in
      ok && walk hop state' rest
  in
  walk src `Up path

let test_pathvector_valley_free () =
  let tt = two_tier_fixture 13 in
  let g = tt.Topology.graph in
  let pv = Pathvector.compute g in
  List.iter
    (fun (src, _dst, path) ->
      Alcotest.(check bool) "valley-free" true (valley_free g src path))
    (Pathvector.visible_paths pv)

let test_pathvector_prefers_customer_routes () =
  (* diamond: 0 is provider of 1 and 2; 3 is customer of 1 and 2; also
     0 peers with 3 via nothing... build: dst 3 reachable from 0 via
     customer chain.  Check class at 0 for dst 3 is customer. *)
  let g = Graph.create 4 in
  let e = Topology.default_edge in
  (* 1 and 2 are customers of 0 *)
  Graph.add_edge g 1 0 (e, Topology.Customer_of);
  Graph.add_edge g 0 1 (e, Topology.Provider_of);
  Graph.add_edge g 2 0 (e, Topology.Customer_of);
  Graph.add_edge g 0 2 (e, Topology.Provider_of);
  (* 3 is customer of 1 *)
  Graph.add_edge g 3 1 (e, Topology.Customer_of);
  Graph.add_edge g 1 3 (e, Topology.Provider_of);
  let pv = Pathvector.compute g in
  (match Pathvector.route_at pv ~node:0 ~dst:3 with
  | Some r ->
    Alcotest.(check string) "class" "customer"
      (Pathvector.class_to_string r.Pathvector.cls)
  | None -> Alcotest.fail "no route");
  (* 2 reaches 3 via its provider 0 *)
  match Pathvector.route_at pv ~node:2 ~dst:3 with
  | Some r ->
    Alcotest.(check string) "via provider" "provider"
      (Pathvector.class_to_string r.Pathvector.cls);
    Alcotest.(check (list int)) "path" [ 0; 1; 3 ] r.Pathvector.as_path
  | None -> Alcotest.fail "no provider route"

let test_pathvector_peer_not_transited () =
  (* two peered transits, each with a customer: customer of A reaches
     customer of B through the peer link (customer->provider->peer->
     customer: valley-free).  But peer A must NOT reach peer B's
     *other peer* via B.  Build three mutually unpeered transits:
     A - B peered, B - C peered, A and C not peered.  A must not reach
     C (B does not export peer routes to peers). *)
  let g = Graph.create 3 in
  let e = Topology.default_edge in
  Graph.add_edge g 0 1 (e, Topology.Peer_with);
  Graph.add_edge g 1 0 (e, Topology.Peer_with);
  Graph.add_edge g 1 2 (e, Topology.Peer_with);
  Graph.add_edge g 2 1 (e, Topology.Peer_with);
  let pv = Pathvector.compute g in
  Alcotest.(check bool) "A sees B" true (Pathvector.reachable pv ~src:0 ~dst:1);
  Alcotest.(check bool) "A cannot transit B to C" false
    (Pathvector.reachable pv ~src:0 ~dst:2)

let test_pathvector_export_filter () =
  (* a refusal filter that stops node 1 from exporting anything to 0 *)
  let g = internal_graph (Topology.line 3) in
  let filter u w _r = not (u = 1 && w = 0) in
  let pv = Pathvector.compute ~export_filter:filter g in
  Alcotest.(check bool) "0 cut off from 2" false
    (Pathvector.reachable pv ~src:0 ~dst:2);
  Alcotest.(check bool) "reverse still works" true
    (Pathvector.reachable pv ~src:2 ~dst:0)

let test_pathvector_visibility_less_than_linkstate () =
  let tt = two_tier_fixture 17 in
  let g = tt.Topology.graph in
  let pv = Pathvector.compute g in
  let total = Graph.edge_count g in
  (* from any single vantage point, path-vector reveals only the chosen
     paths; link-state floods everything to everyone *)
  let host = List.hd tt.Topology.hosts in
  let pv_exposure = Visibility.pathvector_exposure_at pv ~node:host ~total_links:total in
  Alcotest.(check bool) "path-vector hides some links" true (pv_exposure < 1.0);
  Alcotest.(check bool) "exposes something" true (pv_exposure > 0.0);
  Alcotest.(check int) "no levers in link-state" 0
    (Visibility.linkstate_policy_levers
       (Linkstate.compute (Topology.line 3) ~metric:`Hops));
  Alcotest.(check int) "one lever per adjacency" total
    (Visibility.pathvector_policy_levers g)

let test_pathvector_converges () =
  let tt = two_tier_fixture 19 in
  let pv = Pathvector.compute tt.Topology.graph in
  Alcotest.(check bool) "few rounds" true (Pathvector.rounds_to_converge pv < 20);
  Alcotest.(check bool) "did work" true (Pathvector.updates_applied pv > 0)

(* ---------- Sourceroute ---------- *)

let test_sourceroute_refusal () =
  let mb = Sourceroute.refusal_middlebox ~paid:false in
  let routed =
    Packet.make ~source_route:[ 5 ] ~id:0 ~src:0 ~dst:9 ~created:0.0 ()
  in
  Alcotest.(check bool) "refuses unpaid" true
    (Middlebox.decide mb routed = Middlebox.Drop);
  let plain = Packet.make ~id:1 ~src:0 ~dst:9 ~created:0.0 () in
  Alcotest.(check bool) "plain passes" true
    (Middlebox.decide mb plain = Middlebox.Forward);
  let paid = Sourceroute.refusal_middlebox ~paid:true in
  Alcotest.(check bool) "paid passes" true
    (Middlebox.decide paid routed = Middlebox.Forward)

let test_sourceroute_pick () =
  Alcotest.(check (option int)) "best score" (Some 2)
    (Sourceroute.pick_transit ~score:(fun t -> float_of_int t) [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "tie lowest id" (Some 0)
    (Sourceroute.pick_transit ~score:(fun _ -> 1.0) [ 2; 0; 1 ]);
  Alcotest.(check (option int)) "empty" None
    (Sourceroute.pick_transit ~score:(fun _ -> 1.0) [])

(* ---------- Overlay ---------- *)

let overlay_fixture () =
  (* triangle with a slow direct edge and a fast two-leg detour; the
     underlay routes by hop count, so it insists on the slow direct
     link — exactly the gap RON exploits *)
  let g = Graph.create 3 in
  let mk l = { Topology.latency = l; bandwidth_bps = 1e8 } in
  Graph.add_undirected g 0 1 (mk 0.100);
  Graph.add_undirected g 0 2 (mk 0.010);
  Graph.add_undirected g 2 1 (mk 0.010);
  let ls = Linkstate.compute g ~metric:`Hops in
  fun src dst -> Overlay.measured_latency ls g ~src ~dst

let test_overlay_best_relay () =
  let latency = overlay_fixture () in
  match Overlay.best_relay ~latency ~candidates:[ 2 ] ~src:0 ~dst:1 with
  | Some (relay, lat) ->
    Alcotest.(check int) "relay" 2 relay;
    check_float "two-leg latency" 0.020 lat
  | None -> Alcotest.fail "no relay"

let test_overlay_improvement () =
  let latency = overlay_fixture () in
  check_float "underlay picks slow hop-shortest path" 0.100
    (Option.get (latency 0 1));
  match Overlay.latency_improvement ~latency ~candidates:[ 2 ] ~src:0 ~dst:1 with
  | Some gain -> check_float "gain" 0.080 gain
  | None -> Alcotest.fail "no improvement computed"

let test_overlay_recovery () =
  (* direct path 0->2 blocked, but 1 relays *)
  let can_reach a b = not (a = 0 && b = 2) in
  Alcotest.(check (option int)) "relay found" (Some 1)
    (Overlay.reachable_via ~can_reach ~candidates:[ 1 ] ~src:0 ~dst:2);
  check_float "full recovery" 1.0
    (Overlay.recovery_ratio ~can_reach ~candidates:[ 1 ]
       ~pairs:[ (0, 2); (1, 2) ]);
  (* no candidates: nothing recovered *)
  check_float "no relay no recovery" 0.0
    (Overlay.recovery_ratio ~can_reach ~candidates:[] ~pairs:[ (0, 2) ])


(* ---------- Multicast ---------- *)

module Multicast = Tussle_routing.Multicast

let test_multicast_tree_on_star () =
  (* star: source at hub; tree edge count = number of receivers *)
  let g = Topology.star 6 in
  let receivers = [ 1; 2; 3; 4; 5 ] in
  let tree = Multicast.shortest_path_tree g ~source:0 ~receivers in
  Alcotest.(check int) "tree edges" 5 (Multicast.multicast_link_load tree);
  Alcotest.(check (list int)) "all covered" receivers (Multicast.covered tree);
  (* unicast also crosses 5 links here: no sharing on a star *)
  Alcotest.(check int) "unicast" 5
    (Multicast.unicast_link_load g ~source:0 ~receivers);
  check_float "no saving on a star" 0.0
    (Multicast.savings_ratio g ~source:0 ~receivers)

let test_multicast_tree_on_line () =
  (* line 0-1-2-3: multicast to [1;2;3] uses 3 links, unicast 1+2+3=6 *)
  let g = Topology.line 4 in
  let receivers = [ 1; 2; 3 ] in
  let tree = Multicast.shortest_path_tree g ~source:0 ~receivers in
  Alcotest.(check int) "shared path" 3 (Multicast.multicast_link_load tree);
  Alcotest.(check int) "unicast" 6
    (Multicast.unicast_link_load g ~source:0 ~receivers);
  check_float "saving" 0.5 (Multicast.savings_ratio g ~source:0 ~receivers);
  (* interior nodes 0,1,2 hold state *)
  Alcotest.(check int) "router state" 3 (Multicast.router_state tree)

let test_multicast_unreachable_receiver () =
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 Topology.default_edge;
  let tree = Multicast.shortest_path_tree g ~source:0 ~receivers:[ 1; 2 ] in
  Alcotest.(check (list int)) "only reachable" [ 1 ] (Multicast.covered tree)

let test_multicast_savings_grow_with_group () =
  let rng = Rng.create 15 in
  let g = Topology.barabasi_albert rng 120 2 in
  let pool = Array.init 119 (fun i -> i + 1) in
  let saving size =
    let receivers = Array.to_list (Rng.sample rng size pool) in
    Multicast.savings_ratio g ~source:0 ~receivers
  in
  let small = saving 5 and large = saving 80 in
  Alcotest.(check bool) "bigger group saves more" true (large > small)

let test_multicast_deployment_ledger () =
  let base =
    { Multicast.groups = 10.0; state_cost = 1.0; bandwidth_value = 3.0;
      payment = false }
  in
  Alcotest.(check bool) "no payment no deploy" false (Multicast.deploys base);
  check_float "pure cost" (-10.0) (Multicast.isp_profit base);
  let paid = { base with Multicast.payment = true } in
  Alcotest.(check bool) "payment deploys" true (Multicast.deploys paid);
  check_float "profit" 20.0 (Multicast.isp_profit paid)

let () =
  Alcotest.run "routing"
    [
      ( "linkstate",
        [
          Alcotest.test_case "line" `Quick test_linkstate_line;
          Alcotest.test_case "latency metric" `Quick test_linkstate_latency_metric;
          Alcotest.test_case "disconnected" `Quick test_linkstate_disconnected;
          Alcotest.test_case "full exposure" `Quick test_linkstate_exposure;
        ] );
      ( "pathvector",
        [
          Alcotest.test_case "internal reaches all" `Quick
            test_pathvector_internal_reaches_all;
          Alcotest.test_case "two-tier reachability" `Quick
            test_pathvector_two_tier_reachability;
          Alcotest.test_case "valley-free" `Quick test_pathvector_valley_free;
          Alcotest.test_case "customer preference" `Quick
            test_pathvector_prefers_customer_routes;
          Alcotest.test_case "peers not transited" `Quick
            test_pathvector_peer_not_transited;
          Alcotest.test_case "export filter" `Quick test_pathvector_export_filter;
          Alcotest.test_case "visibility vs linkstate" `Quick
            test_pathvector_visibility_less_than_linkstate;
          Alcotest.test_case "convergence" `Quick test_pathvector_converges;
        ] );
      ( "sourceroute",
        [
          Alcotest.test_case "refusal middlebox" `Quick test_sourceroute_refusal;
          Alcotest.test_case "pick transit" `Quick test_sourceroute_pick;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "star tree" `Quick test_multicast_tree_on_star;
          Alcotest.test_case "line tree" `Quick test_multicast_tree_on_line;
          Alcotest.test_case "unreachable receiver" `Quick
            test_multicast_unreachable_receiver;
          Alcotest.test_case "savings grow" `Quick
            test_multicast_savings_grow_with_group;
          Alcotest.test_case "deployment ledger" `Quick
            test_multicast_deployment_ledger;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "best relay" `Quick test_overlay_best_relay;
          Alcotest.test_case "improvement" `Quick test_overlay_improvement;
          Alcotest.test_case "recovery" `Quick test_overlay_recovery;
        ] );
    ]
