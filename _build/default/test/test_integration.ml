(* Integration tests: substrates wired together the way the bench
   harness uses them. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Linkstate = Tussle_routing.Linkstate
module Pathvector = Tussle_routing.Pathvector
module Sourceroute = Tussle_routing.Sourceroute
module Trust_graph = Tussle_trust.Trust_graph

(* strip relationships so link-state & Net can use a two-tier graph *)
let plain_edges g = Graph.map_edges g (fun (e, _) -> e)

let two_tier seed =
  let rng = Rng.create seed in
  Topology.two_tier rng ~transits:3 ~accesses:4 ~hosts_per_access:3
    ~multihoming:2

(* ---------- path-vector forwarding drives real packets ---------- *)

let test_pathvector_forwards_packets () =
  let tt = two_tier 101 in
  let pv = Pathvector.compute tt.Topology.graph in
  let links = Topology.to_links (plain_edges tt.Topology.graph) in
  let net = Net.create links (Pathvector.forwarding pv) in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 1) in
  let hosts = Array.of_list tt.Topology.hosts in
  let n = Array.length hosts in
  for i = 0 to n - 1 do
    let src = hosts.(i) and dst = hosts.((i + 1) mod n) in
    Net.inject net engine
      (Traffic.next_packet gen ~src ~dst ~created:0.0 ())
  done;
  Engine.run engine;
  Alcotest.(check int) "all host pairs delivered" n (Net.delivered_count net);
  (* and the paths respect provider hierarchy: every delivered packet's
     path stays inside the graph's edges *)
  List.iter
    (fun (p, _) ->
      let rec edges_ok = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "edge exists" true
            (Option.is_some (Graph.find_edge tt.Topology.graph a b));
          edges_ok rest
        | _ -> ()
      in
      edges_ok (Packet.path p))
    (Net.outcomes net)

(* ---------- trust graph drives a firewall middlebox ---------- *)

let test_trust_mediated_firewall_in_net () =
  let tg = Trust_graph.create 4 in
  (* node 3 (destination) trusts 0 via 1, distrusts 2 *)
  Trust_graph.set_trust tg ~truster:3 ~trustee:1 0.9;
  Trust_graph.set_trust tg ~truster:1 ~trustee:0 0.9;
  let admits ~src ~dst =
    Trust_graph.trusts tg ~threshold:0.5 dst src
  in
  let links = Topology.to_links (Topology.line 4) in
  let forwarding ~node ~target _ =
    if target > node then Some (node + 1)
    else if target < node then Some (node - 1)
    else None
  in
  let net = Net.create links forwarding in
  Net.add_middlebox net 3 (Middlebox.trust_firewall ~admits ());
  let engine = Engine.create () in
  Net.inject net engine (Packet.make ~id:0 ~src:0 ~dst:3 ~created:0.0 ());
  Net.inject net engine (Packet.make ~id:1 ~src:2 ~dst:3 ~created:0.0 ());
  Engine.run engine;
  Alcotest.(check int) "trusted delivered" 1 (Net.delivered_count net);
  Alcotest.(check int) "untrusted filtered" 1 (Net.lost_count net)

(* ---------- source routing with and without payment ---------- *)

let test_source_route_payment_gate () =
  let tt = two_tier 103 in
  let pv = Pathvector.compute tt.Topology.graph in
  let links = Topology.to_links (plain_edges tt.Topology.graph) in
  let hosts = Array.of_list tt.Topology.hosts in
  let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
  let via =
    (* steer through a transit that is NOT on the default path *)
    let default_path =
      Option.value ~default:[] (Pathvector.as_path pv ~src ~dst)
    in
    match
      List.filter (fun t -> not (List.mem t default_path)) tt.Topology.transits
    with
    | t :: _ -> t
    | [] -> List.hd tt.Topology.transits
  in
  let run ~paid =
    let net = Net.create links (Pathvector.forwarding pv) in
    List.iter
      (fun t -> Net.add_middlebox net t (Sourceroute.refusal_middlebox ~paid))
      tt.Topology.transits;
    let engine = Engine.create () in
    Net.inject net engine
      (Packet.make
         ~source_route:(Sourceroute.waypoints_via ~transit:via)
         ~id:0 ~src ~dst ~created:0.0 ());
    Engine.run engine;
    net
  in
  let unpaid = run ~paid:false in
  Alcotest.(check int) "unpaid refused" 1 (Net.lost_count unpaid);
  let paid = run ~paid:true in
  Alcotest.(check int) "paid carried" 1 (Net.delivered_count paid);
  (* the steered packet actually visited the chosen transit *)
  match Net.outcomes paid with
  | [ (p, Net.Delivered _) ] ->
    Alcotest.(check bool) "via waypoint" true (List.mem via (Packet.path p))
  | _ -> Alcotest.fail "expected delivery"

(* ---------- link-state vs path-vector agree on reachability ---------- *)

let test_protocols_agree_on_reachability () =
  let tt = two_tier 107 in
  let plain = plain_edges tt.Topology.graph in
  let ls = Linkstate.compute plain ~metric:`Hops in
  let pv = Pathvector.compute tt.Topology.graph in
  let nodes = Graph.node_count plain in
  for src = 0 to nodes - 1 do
    for dst = 0 to nodes - 1 do
      if src <> dst then begin
        let ls_ok = Option.is_some (Linkstate.distance ls ~src ~dst) in
        let pv_ok = Pathvector.reachable pv ~src ~dst in
        (* Gao-Rexford may forbid some physically-present paths, but on a
           two-tier topology every pair is policy-reachable; link-state
           reachability must therefore match *)
        Alcotest.(check bool)
          (Printf.sprintf "pair %d->%d" src dst)
          ls_ok pv_ok
      end
    done
  done

(* ---------- encryption defeats on-path app filtering, end to end ----- *)

let test_encryption_defeats_dpi_end_to_end () =
  let links = Topology.to_links (Topology.line 3) in
  let forwarding ~node ~target _ =
    if target > node then Some (node + 1)
    else if target < node then Some (node - 1)
    else None
  in
  let net = Net.create links forwarding in
  Net.add_middlebox net 1
    (Middlebox.app_filter ~blocked:[ Packet.File_sharing ] ());
  let engine = Engine.create () in
  Net.inject net engine
    (Packet.make ~app:Packet.File_sharing ~id:0 ~src:0 ~dst:2 ~created:0.0 ());
  Net.inject net engine
    (Packet.make ~app:Packet.File_sharing ~encrypted:true ~id:1 ~src:0 ~dst:2
       ~created:0.0 ());
  Engine.run engine;
  Alcotest.(check int) "plain blocked, encrypted through" 1
    (Net.delivered_count net);
  match
    List.find_map
      (fun (p, o) ->
        match o with Net.Delivered _ -> Some p.Packet.encrypted | _ -> None)
      (Net.outcomes net)
  with
  | Some enc -> Alcotest.(check bool) "the encrypted one survived" true enc
  | None -> Alcotest.fail "nothing delivered"


(* ---------- internet in a bottle ---------- *)

(* The composition showpiece: a two-tier commercial internet running
   path-vector routing, with a NAT'd household, a trust-mediated
   firewall at an access provider, escrowed per-hop payments, and a
   closed-loop transport — all substrates in one simulation. *)

module Nat = Tussle_netsim.Nat
module Transport = Tussle_netsim.Transport
module Payment = Tussle_econ.Payment

let test_internet_in_a_bottle () =
  let tt = two_tier 401 in
  let pv = Pathvector.compute tt.Topology.graph in
  let plain = plain_edges tt.Topology.graph in
  let links = Topology.to_links plain in
  let net = Net.create links (Pathvector.forwarding pv) in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 402) in
  let hosts = Array.of_list tt.Topology.hosts in
  let alice = hosts.(0) and bob = hosts.(Array.length hosts - 1) in
  (* 1: a NAT'd household behind alice's access: private machines can
     reach out through alice's address *)
  let nat = Nat.create ~public:alice ~privates:[ 9001; 9002 ] in
  let out =
    Nat.translate_out nat
      (Packet.make ~id:777_001 ~src:9001 ~dst:bob ~created:0.0 ())
  in
  Alcotest.(check int) "nat rewrites to alice" alice out.Packet.src;
  (* 2: bob's access provider runs a trust firewall admitting only
     parties bob's web of trust can vouch for *)
  let tg = Trust_graph.create (Tussle_prelude.Graph.node_count plain) in
  Trust_graph.add_mutual tg bob alice 0.95;
  let bob_access = tt.Topology.access_of_host bob in
  Net.add_middlebox net bob_access
    (Tussle_netsim.Middlebox.trust_firewall
       ~admits:(fun ~src ~dst:_ -> Trust_graph.trusts tg ~threshold:0.5 bob src)
       ());
  (* 3: alice escrows per-hop carriage payment for the transfer *)
  let ledger =
    Payment.create ~parties:(Tussle_prelude.Graph.node_count plain) ~initial:100.0
  in
  let providers =
    match Pathvector.as_path pv ~src:alice ~dst:bob with
    | Some path -> List.filter (fun h -> h <> bob) path
    | None -> Alcotest.fail "no route alice->bob"
  in
  let escrow =
    match
      Payment.authorize ledger ~payer:alice
        ~hops:(List.map (fun p -> (p, 0.1)) providers)
    with
    | Ok e -> e
    | Error _ -> Alcotest.fail "authorize failed"
  in
  (* 4: a closed-loop transport moves the data *)
  let conn = Transport.start engine net gen ~src:alice ~dst:bob ~total_packets:50 in
  Engine.run ~until:60.0 engine;
  Alcotest.(check bool) "transfer completed" true (Transport.completed conn);
  (* 5: delivery proven -> the escrow is captured to the on-path ISPs *)
  let receipt = Payment.capture ledger escrow in
  Alcotest.(check bool) "value flowed" true (receipt.Payment.total > 0.0);
  List.iter
    (fun p ->
      Alcotest.(check bool) "provider paid" true (Payment.balance ledger p > 100.0))
    providers;
  (* 6: an untrusted stranger's traffic dies at bob's access firewall *)
  let stranger = hosts.(1) in
  Net.clear_outcomes net;
  Net.inject net engine
    (Packet.make ~id:777_100 ~src:stranger ~dst:bob
       ~created:(Engine.now engine) ());
  Engine.run engine;
  Alcotest.(check int) "stranger filtered" 1 (Net.lost_count net)

let () =
  Alcotest.run "integration"
    [
      ( "cross-module",
        [
          Alcotest.test_case "path-vector forwards packets" `Quick
            test_pathvector_forwards_packets;
          Alcotest.test_case "trust-mediated firewall" `Quick
            test_trust_mediated_firewall_in_net;
          Alcotest.test_case "source-route payment gate" `Quick
            test_source_route_payment_gate;
          Alcotest.test_case "protocols agree on reachability" `Quick
            test_protocols_agree_on_reachability;
          Alcotest.test_case "encryption defeats DPI" `Quick
            test_encryption_defeats_dpi_end_to_end;
          Alcotest.test_case "internet in a bottle" `Quick
            test_internet_in_a_bottle;
        ] );
    ]
