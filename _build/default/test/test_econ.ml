(* Tests for tussle.econ: market, value pricing, investment, escalation,
   intermediary. *)

module Rng = Tussle_prelude.Rng
module Market = Tussle_econ.Market
module Value_pricing = Tussle_econ.Value_pricing
module Investment = Tussle_econ.Investment
module Escalation = Tussle_econ.Escalation
module Intermediary = Tussle_econ.Intermediary

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Market ---------- *)

let run_market ?(seed = 42) cfg = Market.run (Rng.create seed) cfg

let test_market_near_salop () =
  let cfg = Market.default_config in
  let r = run_market cfg in
  let benchmark = Market.salop_price cfg in
  Alcotest.(check bool) "price in competitive band" true
    (Float.abs (r.Market.mean_price -. benchmark) < 1.0);
  Alcotest.(check bool) "everyone subscribed" true (r.Market.subscribed_ratio > 0.95)

let test_market_more_providers_cheaper () =
  let duopoly = { Market.default_config with Market.n_providers = 2 } in
  let many = { Market.default_config with Market.n_providers = 8 } in
  let rd = run_market duopoly and rm = run_market many in
  Alcotest.(check bool) "duopoly dearer" true
    (rd.Market.mean_price > rm.Market.mean_price);
  Alcotest.(check bool) "hhi falls" true (rd.Market.hhi > rm.Market.hhi)

let test_market_switching_cost_raises_price () =
  let base = Market.default_config in
  let locked = { base with Market.switching_cost = 2.0 } in
  let r0 = run_market base and r1 = run_market locked in
  Alcotest.(check bool) "lock-in raises markup" true
    (r1.Market.mean_markup > r0.Market.mean_markup);
  Alcotest.(check bool) "lock-in kills churn" true
    (r1.Market.churn_rate <= r0.Market.churn_rate)

let test_market_switching_cost_hurts_consumers () =
  let base = Market.default_config in
  let locked = { base with Market.switching_cost = 3.0 } in
  let r0 = run_market base and r1 = run_market locked in
  Alcotest.(check bool) "surplus falls" true
    (r1.Market.consumer_surplus < r0.Market.consumer_surplus)

let test_market_price_history_length () =
  let r = run_market Market.default_config in
  Alcotest.(check int) "history" Market.default_config.Market.periods
    (Array.length r.Market.price_history)

let test_market_deterministic () =
  let a = run_market ~seed:7 Market.default_config in
  let b = run_market ~seed:7 Market.default_config in
  check_float "same price" a.Market.mean_price b.Market.mean_price;
  check_float "same surplus" a.Market.consumer_surplus b.Market.consumer_surplus

let test_market_validation () =
  Alcotest.check_raises "no providers" (Invalid_argument "Market: no providers")
    (fun () ->
      ignore (run_market { Market.default_config with Market.n_providers = 0 }))

(* ---------- Value pricing ---------- *)

let pop = Value_pricing.default_population
let prm = Value_pricing.default_params

let test_value_pricing_discriminates_when_unmasked () =
  let o = Value_pricing.best_response_pricing pop prm ~tunnel_adoption:0.0 in
  Alcotest.(check bool) "business pays more" true
    (o.Value_pricing.discrimination_gap > 0.5);
  Alcotest.(check bool) "positive profit" true (o.Value_pricing.provider_profit > 0.0)

let test_value_pricing_masking_shifts_surplus () =
  let closed = Value_pricing.best_response_pricing pop prm ~tunnel_adoption:0.0 in
  let open_ = Value_pricing.best_response_pricing pop prm ~tunnel_adoption:1.0 in
  Alcotest.(check bool) "producer revenue falls" true
    (open_.Value_pricing.revenue < closed.Value_pricing.revenue);
  Alcotest.(check bool) "consumer surplus rises" true
    (open_.Value_pricing.consumer_surplus > closed.Value_pricing.consumer_surplus)

let test_value_pricing_sweep_monotonicity () =
  let sweep =
    Value_pricing.sweep pop prm ~adoptions:[ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  let revenues = List.map (fun (_, o) -> o.Value_pricing.revenue) sweep in
  (* revenue never increases as masking spreads *)
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 1e-6 >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "revenue non-increasing" true (non_increasing revenues)

let test_value_pricing_validation () =
  Alcotest.check_raises "bad adoption"
    (Invalid_argument "Value_pricing: adoption not in [0,1]") (fun () ->
      ignore (Value_pricing.best_response_pricing pop prm ~tunnel_adoption:2.0))

(* ---------- Investment (QoS game) ---------- *)

let test_investment_paper_hypothesis () =
  let outcomes = Investment.matrix_22 Investment.default_params in
  let rate regime_vf regime_cc =
    let _, o =
      List.find
        (fun ({ Investment.value_flow; consumer_choice }, _) ->
          value_flow = regime_vf && consumer_choice = regime_cc)
        outcomes
    in
    o.Investment.deployment_rate
  in
  check_float "neither: no deployment" 0.0 (rate false false);
  check_float "greed alone: no deployment" 0.0 (rate true false);
  check_float "fear alone: no deployment" 0.0 (rate false true);
  check_float "both: full deployment" 1.0 (rate true true)

let test_investment_equilibrium_is_nash () =
  let prm = Investment.default_params in
  let regime = { Investment.value_flow = true; consumer_choice = true } in
  let o = Investment.solve prm regime in
  let g = Investment.game prm regime in
  Alcotest.(check bool) "pure nash" true
    (Tussle_gametheory.Bestresponse.is_pure_nash g o.Investment.equilibrium)

let test_investment_cheap_deployment_needs_less () =
  (* if deployment is nearly free, greed alone suffices *)
  let cheap = { Investment.default_params with Investment.deploy_cost = 1.0 } in
  let o =
    Investment.solve cheap
      { Investment.value_flow = true; consumer_choice = false }
  in
  check_float "greed suffices when cheap" 1.0 o.Investment.deployment_rate

(* ---------- Escalation (encryption) ---------- *)

let esc_params competitive =
  {
    Escalation.n_users = 1000.0;
    enc_fraction = 0.3;
    base_price = 5.0;
    service_value = 8.0;
    privacy_value = 2.0;
    inspection_value = 1.0;
    competitive;
  }

let grid = [ 0.5; 1.0; 1.5; 2.0; 3.0 ]

let test_escalation_competition_disciplines () =
  (* competitive: blocking loses customers entirely; carrying wins *)
  let p = esc_params true in
  let policy, _ = Escalation.best_policy p ~surcharge_grid:grid in
  Alcotest.(check bool) "carries" true (policy = Escalation.Carry);
  Alcotest.(check bool) "encryption survives" true
    (Escalation.encryption_survives p ~surcharge_grid:grid)

let test_escalation_monopoly_squeezes () =
  let p = esc_params false in
  let policy, revenue = Escalation.best_policy p ~surcharge_grid:grid in
  (* the monopolist does better than plain carriage *)
  Alcotest.(check bool) "not plain carry" true (policy <> Escalation.Carry);
  Alcotest.(check bool) "more than carry" true
    (revenue > Escalation.revenue p Escalation.Carry)

let test_escalation_monopoly_blocks_when_privacy_cheap () =
  (* if privacy is worth little, the monopolist prefers plaintext users *)
  let p = { (esc_params false) with Escalation.privacy_value = 0.2 } in
  Alcotest.(check bool) "encryption dies" false
    (Escalation.encryption_survives p ~surcharge_grid:grid)

let test_escalation_revenue_accounting () =
  let p = esc_params false in
  (* refuse: encrypting users comply in the clear: all users pay base +
     inspection *)
  check_float "refuse revenue" (1000.0 *. 6.0)
    (Escalation.revenue p Escalation.Refuse)

(* ---------- Intermediary ---------- *)

let servers =
  [
    { Intermediary.id = 0; quality = 10.0; price = 5.0 };
    (* surplus 5 *)
    { Intermediary.id = 1; quality = 6.0; price = 5.0 };
    (* surplus 1 *)
    { Intermediary.id = 2; quality = 4.0; price = 5.0 };
    (* surplus -1 *)
  ]

let cfg adoption =
  {
    Intermediary.servers;
    n_consumers = 4000;
    sophistication = (fun u -> u);
    (* uniform naive..expert *)
    rater_adoption = adoption;
  }

let test_intermediary_naive_pick_badly () =
  let r = Intermediary.run (Rng.create 3) (cfg 0.0) in
  Alcotest.(check bool) "experts beat naive" true
    (r.Intermediary.expert_surplus > r.Intermediary.naive_surplus +. 0.5)

let test_intermediary_rater_recovers () =
  let without = Intermediary.run (Rng.create 3) (cfg 0.0) in
  let with_rater = Intermediary.run (Rng.create 3) (cfg 0.9) in
  Alcotest.(check bool) "naive surplus improves" true
    (with_rater.Intermediary.naive_surplus > without.Intermediary.naive_surplus);
  let recovered = Intermediary.surplus_recovered ~without ~with_rater in
  Alcotest.(check bool) "most of the gap closed" true (recovered > 0.6);
  Alcotest.(check bool) "best server gains share" true
    (with_rater.Intermediary.best_server_share
    > without.Intermediary.best_server_share)

let test_intermediary_validation () =
  Alcotest.check_raises "no servers" (Invalid_argument "Intermediary.run: no servers")
    (fun () ->
      ignore
        (Intermediary.run (Rng.create 1)
           { (cfg 0.0) with Intermediary.servers = [] }))


(* ---------- Payment (value-flow protocol) ---------- *)

module Payment = Tussle_econ.Payment

let test_payment_pay_path () =
  let l = Payment.create ~parties:4 ~initial:10.0 in
  (match Payment.pay_path l ~payer:0 ~hops:[ (1, 2.0); (2, 3.0) ] with
  | Ok r ->
    check_float "total" 5.0 r.Payment.total;
    check_float "payer debited" 5.0 (Payment.balance l 0);
    check_float "hop1 credited" 12.0 (Payment.balance l 1);
    check_float "hop2 credited" 13.0 (Payment.balance l 2)
  | Error _ -> Alcotest.fail "should afford");
  Alcotest.(check int) "two transfers" 2 (List.length (Payment.log l))

let test_payment_atomic_insufficiency () =
  let l = Payment.create ~parties:3 ~initial:1.0 in
  (match Payment.pay_path l ~payer:0 ~hops:[ (1, 0.5); (2, 5.0) ] with
  | Error (`Insufficient bal) -> check_float "reported" 1.0 bal
  | Ok _ -> Alcotest.fail "should refuse");
  (* nothing moved *)
  check_float "untouched 0" 1.0 (Payment.balance l 0);
  check_float "untouched 1" 1.0 (Payment.balance l 1)

let test_payment_escrow_capture () =
  let l = Payment.create ~parties:3 ~initial:10.0 in
  match Payment.authorize l ~payer:0 ~hops:[ (1, 4.0) ] with
  | Error _ -> Alcotest.fail "should authorize"
  | Ok escrow ->
    check_float "reserved" 6.0 (Payment.balance l 0);
    check_float "not yet paid" 10.0 (Payment.balance l 1);
    check_float "supply constant" 30.0 (Payment.total_supply l);
    let r = Payment.capture l escrow in
    check_float "captured" 4.0 r.Payment.total;
    check_float "paid" 14.0 (Payment.balance l 1);
    Alcotest.check_raises "double capture"
      (Invalid_argument "Payment: unknown or settled escrow") (fun () ->
        ignore (Payment.capture l escrow))

let test_payment_escrow_refund () =
  let l = Payment.create ~parties:3 ~initial:10.0 in
  match Payment.authorize l ~payer:0 ~hops:[ (1, 4.0) ] with
  | Error _ -> Alcotest.fail "should authorize"
  | Ok escrow ->
    Payment.refund l escrow;
    check_float "refunded" 10.0 (Payment.balance l 0);
    check_float "provider unpaid" 10.0 (Payment.balance l 1);
    Alcotest.(check int) "no transfers logged" 0 (List.length (Payment.log l))

let test_payment_conservation () =
  let l = Payment.create ~parties:5 ~initial:20.0 in
  ignore (Payment.pay_path l ~payer:0 ~hops:[ (1, 3.0); (2, 1.0) ]);
  (match Payment.authorize l ~payer:3 ~hops:[ (4, 7.0) ] with
  | Ok e -> ignore (Payment.capture l e)
  | Error _ -> Alcotest.fail "authorize");
  (match Payment.authorize l ~payer:1 ~hops:[ (0, 2.0) ] with
  | Ok e -> Payment.refund l e
  | Error _ -> Alcotest.fail "authorize");
  check_float "supply conserved" 100.0 (Payment.total_supply l)

let test_payment_settlement_nets () =
  let l = Payment.create ~parties:3 ~initial:10.0 in
  ignore (Payment.pay_path l ~payer:0 ~hops:[ (1, 5.0) ]);
  ignore (Payment.pay_path l ~payer:1 ~hops:[ (0, 2.0) ]);
  (match Payment.settle_bilateral l with
  | [ (0, 1, v) ] -> check_float "netted" 3.0 v
  | _ -> Alcotest.fail "expected one netted settlement");
  (* a perfectly offsetting pair nets to nothing *)
  ignore (Payment.pay_path l ~payer:1 ~hops:[ (0, 3.0) ]);
  Alcotest.(check int) "fully netted" 0
    (List.length (Payment.settle_bilateral l))

(* ---------- Steganography escalation ---------- *)

let test_stego_cheap_evades () =
  let p = esc_params false in
  let revenue, survives = Escalation.stego_response p ~stego_cost:0.5 in
  Alcotest.(check bool) "privacy survives" true survives;
  (* the refusing ISP now carries unreadable traffic at base price and
     loses the inspection value: worse than its refusal revenue *)
  Alcotest.(check bool) "refusal backfires" true
    (revenue < Escalation.revenue p Escalation.Refuse)

let test_stego_dear_complies () =
  let p = esc_params false in
  let _, survives = Escalation.stego_response p ~stego_cost:5.0 in
  Alcotest.(check bool) "too dear: comply" false survives

let test_stego_validation () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Escalation.stego_response: negative cost") (fun () ->
      ignore (Escalation.stego_response (esc_params false) ~stego_cost:(-1.0)))


(* ---------- Vertical integration ---------- *)

module Vertical = Tussle_econ.Vertical

let vp = Vertical.default_params

let test_vertical_separation_sustains_rival () =
  let o = Vertical.run (Rng.create 31) vp Vertical.Separated in
  Alcotest.(check bool) "rival lives" true o.Vertical.rival_survives;
  Alcotest.(check bool) "rival serves the high end" true
    (o.Vertical.rival_share > 0.2);
  Alcotest.(check bool) "own serves the low end" true (o.Vertical.own_share > 0.05)

let test_vertical_foreclosure_kills_rival () =
  let o = Vertical.run (Rng.create 31) vp Vertical.Integrated in
  Alcotest.(check bool) "rival dies" false o.Vertical.rival_survives;
  check_float "share zero" 0.0 o.Vertical.rival_share

let test_vertical_foreclosure_pays () =
  let sep = Vertical.run (Rng.create 31) vp Vertical.Separated in
  let int_ = Vertical.run (Rng.create 31) vp Vertical.Integrated in
  Alcotest.(check bool) "profit motive" true
    (int_.Vertical.platform_profit > sep.Vertical.platform_profit);
  Alcotest.(check bool) "consumers pay for it" true
    (int_.Vertical.consumer_surplus < sep.Vertical.consumer_surplus)

let test_vertical_rule_separates_tussles () =
  let sep = Vertical.run (Rng.create 31) vp Vertical.Separated in
  let rule =
    Vertical.run (Rng.create 31) vp Vertical.Integrated_nondiscrimination
  in
  Alcotest.(check bool) "rival lives under the rule" true
    rule.Vertical.rival_survives;
  check_float "surplus preserved" sep.Vertical.consumer_surplus
    rule.Vertical.consumer_surplus;
  Alcotest.(check bool) "integration still worth having" true
    (rule.Vertical.platform_profit > sep.Vertical.platform_profit)

let test_vertical_validation () =
  Alcotest.check_raises "no consumers" (Invalid_argument "Vertical.run: no consumers")
    (fun () ->
      ignore
        (Vertical.run (Rng.create 1)
           { vp with Vertical.n_consumers = 0 }
           Vertical.Separated))

let () =
  Alcotest.run "econ"
    [
      ( "market",
        [
          Alcotest.test_case "near salop benchmark" `Quick test_market_near_salop;
          Alcotest.test_case "more providers cheaper" `Quick
            test_market_more_providers_cheaper;
          Alcotest.test_case "lock-in raises price" `Quick
            test_market_switching_cost_raises_price;
          Alcotest.test_case "lock-in hurts consumers" `Quick
            test_market_switching_cost_hurts_consumers;
          Alcotest.test_case "history length" `Quick test_market_price_history_length;
          Alcotest.test_case "deterministic" `Quick test_market_deterministic;
          Alcotest.test_case "validation" `Quick test_market_validation;
        ] );
      ( "value-pricing",
        [
          Alcotest.test_case "discrimination works unmasked" `Quick
            test_value_pricing_discriminates_when_unmasked;
          Alcotest.test_case "masking shifts surplus" `Quick
            test_value_pricing_masking_shifts_surplus;
          Alcotest.test_case "sweep monotone" `Quick test_value_pricing_sweep_monotonicity;
          Alcotest.test_case "validation" `Quick test_value_pricing_validation;
        ] );
      ( "investment",
        [
          Alcotest.test_case "paper 2x2 hypothesis" `Quick test_investment_paper_hypothesis;
          Alcotest.test_case "equilibrium verified" `Quick
            test_investment_equilibrium_is_nash;
          Alcotest.test_case "cheap deployment" `Quick
            test_investment_cheap_deployment_needs_less;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "competition disciplines" `Quick
            test_escalation_competition_disciplines;
          Alcotest.test_case "monopoly squeezes" `Quick test_escalation_monopoly_squeezes;
          Alcotest.test_case "monopoly blocks cheap privacy" `Quick
            test_escalation_monopoly_blocks_when_privacy_cheap;
          Alcotest.test_case "revenue accounting" `Quick test_escalation_revenue_accounting;
        ] );
      ( "vertical",
        [
          Alcotest.test_case "separation sustains rival" `Quick
            test_vertical_separation_sustains_rival;
          Alcotest.test_case "foreclosure kills rival" `Quick
            test_vertical_foreclosure_kills_rival;
          Alcotest.test_case "foreclosure pays" `Quick test_vertical_foreclosure_pays;
          Alcotest.test_case "rule separates tussles" `Quick
            test_vertical_rule_separates_tussles;
          Alcotest.test_case "validation" `Quick test_vertical_validation;
        ] );
      ( "payment",
        [
          Alcotest.test_case "pay path" `Quick test_payment_pay_path;
          Alcotest.test_case "atomic insufficiency" `Quick
            test_payment_atomic_insufficiency;
          Alcotest.test_case "escrow capture" `Quick test_payment_escrow_capture;
          Alcotest.test_case "escrow refund" `Quick test_payment_escrow_refund;
          Alcotest.test_case "conservation" `Quick test_payment_conservation;
          Alcotest.test_case "settlement nets" `Quick test_payment_settlement_nets;
        ] );
      ( "steganography",
        [
          Alcotest.test_case "cheap stego evades" `Quick test_stego_cheap_evades;
          Alcotest.test_case "dear stego complies" `Quick test_stego_dear_complies;
          Alcotest.test_case "validation" `Quick test_stego_validation;
        ] );
      ( "intermediary",
        [
          Alcotest.test_case "naive pick badly" `Quick test_intermediary_naive_pick_badly;
          Alcotest.test_case "rater recovers surplus" `Quick test_intermediary_rater_recovers;
          Alcotest.test_case "validation" `Quick test_intermediary_validation;
        ] );
    ]
