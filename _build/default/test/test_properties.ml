(* Cross-substrate property-based tests: randomized invariants that the
   unit suites cannot cover exhaustively. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Topology = Tussle_netsim.Topology
module Congestion = Tussle_netsim.Congestion
module Pathvector = Tussle_routing.Pathvector
module Payment = Tussle_econ.Payment
module Mechanism = Tussle_core.Mechanism
module Interest = Tussle_core.Interest
module Actor = Tussle_core.Actor
module Trust_graph = Tussle_trust.Trust_graph
module Registry = Tussle_naming.Registry
module Guidelines = Tussle_core.Guidelines

(* ---------- path-vector: Gao-Rexford safety on random topologies ----- *)

let valley_free g src path =
  let rel u v =
    match Graph.find_edge g u v with Some (_, r) -> Some r | None -> None
  in
  let rec walk prev state = function
    | [] -> true
    | hop :: rest -> (
      match rel prev hop with
      | None -> false (* path must follow real edges *)
      | Some r ->
        let ok, state' =
          match (r, state) with
          | Topology.Customer_of, `Up -> (true, `Up)
          | Topology.Customer_of, (`Peered | `Down) -> (false, `Down)
          | Topology.Peer_with, `Up -> (true, `Peered)
          | Topology.Peer_with, (`Peered | `Down) -> (false, `Down)
          | Topology.Provider_of, _ -> (true, `Down)
          | Topology.Internal, s -> (true, s)
        in
        ok && walk hop state' rest)
  in
  walk src `Up path

let prop_pathvector_valley_free =
  QCheck2.Test.make ~name:"path-vector routes are valley-free" ~count:25
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 2 6) (int_range 1 3))
    (fun (transits, accesses, hosts_per_access) ->
      let rng = Rng.create (transits + (17 * accesses) + (289 * hosts_per_access)) in
      let multihoming = min transits 2 in
      let tt =
        Topology.two_tier rng ~transits ~accesses ~hosts_per_access
          ~multihoming
      in
      let pv = Pathvector.compute tt.Topology.graph in
      List.for_all
        (fun (src, _dst, path) -> valley_free tt.Topology.graph src path)
        (Pathvector.visible_paths pv))

let prop_pathvector_two_tier_full_reachability =
  QCheck2.Test.make ~name:"two-tier topologies are policy-reachable" ~count:25
    QCheck2.Gen.(pair (int_range 1 4) (int_range 2 6))
    (fun (transits, accesses) ->
      let rng = Rng.create ((31 * transits) + accesses) in
      let tt =
        Topology.two_tier rng ~transits ~accesses ~hosts_per_access:2
          ~multihoming:(min transits 2)
      in
      let pv = Pathvector.compute tt.Topology.graph in
      Pathvector.reachability_ratio pv = 1.0)

(* ---------- payment: conservation under random operation sequences --- *)

type pay_op = Pay of int * int * float | Auth of int * int * float * bool

let pay_op_gen =
  QCheck2.Gen.(
    let* payer = int_range 0 4 in
    let* payee = int_range 0 4 in
    let* amount = float_range 0.0 5.0 in
    let* escrowed = bool in
    let* capture = bool in
    return
      (if escrowed then Auth (payer, payee, amount, capture)
       else Pay (payer, payee, amount)))

let prop_payment_conservation =
  QCheck2.Test.make ~name:"payment ledger conserves money" ~count:300
    QCheck2.Gen.(list_size (int_range 0 30) pay_op_gen)
    (fun ops ->
      let l = Payment.create ~parties:5 ~initial:50.0 in
      List.iter
        (fun op ->
          match op with
          | Pay (payer, payee, amount) ->
            ignore (Payment.pay_path l ~payer ~hops:[ (payee, amount) ])
          | Auth (payer, payee, amount, capture) -> (
            match Payment.authorize l ~payer ~hops:[ (payee, amount) ] with
            | Error _ -> ()
            | Ok e ->
              if capture then ignore (Payment.capture l e)
              else Payment.refund l e))
        ops;
      Float.abs (Payment.total_supply l -. 250.0) < 1e-6)

let prop_payment_no_overdraft =
  QCheck2.Test.make ~name:"payment never overdraws" ~count:300
    QCheck2.Gen.(list_size (int_range 0 30) pay_op_gen)
    (fun ops ->
      let l = Payment.create ~parties:5 ~initial:10.0 in
      List.iter
        (fun op ->
          match op with
          | Pay (payer, payee, amount) ->
            ignore (Payment.pay_path l ~payer ~hops:[ (payee, amount) ])
          | Auth (payer, payee, amount, capture) -> (
            match Payment.authorize l ~payer ~hops:[ (payee, amount) ] with
            | Error _ -> ()
            | Ok e -> if capture then ignore (Payment.capture l e) else Payment.refund l e))
        ops;
      List.for_all
        (fun p -> Payment.balance l p >= -1e-9)
        [ 0; 1; 2; 3; 4 ])

(* ---------- congestion: max-min allocation invariants ---------- *)

let demands_gen =
  QCheck2.Gen.(array_size (int_range 1 12) (float_range 0.0 50.0))

let prop_max_min_feasible =
  QCheck2.Test.make ~name:"max-min never exceeds capacity or demand" ~count:300
    QCheck2.Gen.(pair demands_gen (float_range 1.0 100.0))
    (fun (demands, capacity) ->
      let alloc = Congestion.max_min_allocation demands capacity in
      let total = Array.fold_left ( +. ) 0.0 alloc in
      total <= capacity +. 1e-6
      && Array.for_all2 (fun a d -> a <= d +. 1e-6) alloc demands)

let prop_max_min_work_conserving =
  QCheck2.Test.make ~name:"max-min is work-conserving" ~count:300
    QCheck2.Gen.(pair demands_gen (float_range 1.0 100.0))
    (fun (demands, capacity) ->
      let alloc = Congestion.max_min_allocation demands capacity in
      let total_alloc = Array.fold_left ( +. ) 0.0 alloc in
      let total_demand = Array.fold_left ( +. ) 0.0 demands in
      (* either all demand is met, or capacity is exhausted *)
      Float.abs (total_alloc -. Float.min total_demand capacity) < 1e-6)

(* ---------- mechanism countering: invariants of the active set ------- *)

let mech_pool =
  Array.of_list Mechanism.catalogue

let prop_active_subset_no_surviving_counter =
  QCheck2.Test.make ~name:"no active mechanism is countered by an active one"
    ~count:300
    QCheck2.Gen.(list_size (int_range 0 8) (int_range 0 (Array.length mech_pool - 1)))
    (fun indices ->
      (* dedupe (keeping first occurrence): deploying the same mechanism
         twice is a no-op in the engine, and duplicates break positional
         reasoning below *)
      let indices =
        List.fold_left
          (fun acc i -> if List.mem i acc then acc else i :: acc)
          [] indices
        |> List.rev
      in
      let deployed = List.map (fun i -> mech_pool.(i)) indices in
      let active = Mechanism.active deployed in
      (* subset *)
      List.for_all (fun m -> List.memq m deployed) active
      (* internally consistent: nothing active counters anything active
         that was deployed later *)
      && List.for_all
           (fun m ->
             List.for_all
               (fun m' ->
                 m == m'
                 || not (List.mem m.Mechanism.name m'.Mechanism.counters)
                 || (* m' counters m: legal only if m came later *)
                 let pos x =
                   let rec go i = function
                     | [] -> -1
                     | y :: rest -> if x == y then i else go (i + 1) rest
                   in
                   go 0 deployed
                 in
                 pos m > pos m')
               active)
           active)

(* ---------- trust graph: derived trust bounds and monotonicity ------- *)

let prop_trust_bounds =
  QCheck2.Test.make ~name:"derived trust stays in [0,1], monotone in depth"
    ~count:100
    QCheck2.Gen.(list_size (int_range 0 30) (triple (int_range 0 7) (int_range 0 7) (float_range 0.0 1.0)))
    (fun edges ->
      let g = Trust_graph.create 8 in
      List.iter
        (fun (a, b, w) ->
          if a <> b then Trust_graph.set_trust g ~truster:a ~trustee:b w)
        edges;
      let ok = ref true in
      for a = 0 to 7 do
        for b = 0 to 7 do
          let d2 = Trust_graph.derived_trust ~max_depth:2 g ~truster:a ~trustee:b in
          let d4 = Trust_graph.derived_trust ~max_depth:4 g ~truster:a ~trustee:b in
          if not (d2 >= 0.0 && d4 <= 1.0 && d2 <= d4 +. 1e-9) then ok := false
        done
      done;
      !ok)

(* ---------- registry: entangled design keeps one owner per label ----- *)

type reg_op = Register of int * int * int | Dispute of int * int

let reg_op_gen =
  QCheck2.Gen.(
    let* label = int_range 0 5 in
    let* owner = int_range 0 5 in
    let* purpose = int_range 0 2 in
    let* disputed = bool in
    return (if disputed then Dispute (label, owner) else Register (label, owner, purpose)))

let purpose_of = function
  | 0 -> Registry.Machine
  | 1 -> Registry.Mailbox
  | _ -> Registry.Brand

let prop_registry_entangled_single_owner =
  QCheck2.Test.make ~name:"entangled registry: one owner per label" ~count:300
    QCheck2.Gen.(list_size (int_range 0 40) reg_op_gen)
    (fun ops ->
      let r = Registry.create Registry.Entangled in
      List.iter
        (fun op ->
          match op with
          | Register (label, owner, purpose) ->
            ignore
              (Registry.register r
                 ~owner:(Printf.sprintf "o%d" owner)
                 ~label:(Printf.sprintf "l%d" label)
                 (purpose_of purpose))
          | Dispute (label, claimant) ->
            ignore
              (Registry.dispute r
                 ~claimant:(Printf.sprintf "c%d" claimant)
                 ~label:(Printf.sprintf "l%d" label)))
        ops;
      (* group bindings by label: each label has exactly one owner *)
      let by_label = Hashtbl.create 8 in
      List.iter
        (fun (label, _, owner) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_label label) in
          Hashtbl.replace by_label label (owner :: cur))
        (Registry.bindings r);
      Hashtbl.fold
        (fun _ owners acc -> acc && List.length (List.sort_uniq compare owners) = 1)
        by_label true)

(* ---------- interest algebra ---------- *)

let stance_gen =
  QCheck2.Gen.(
    list_size (int_range 0 8)
      (map2
         (fun i w ->
           (List.nth Interest.all_issues (i mod List.length Interest.all_issues), w))
         small_int (float_range (-2.0) 2.0)))

let prop_alignment_bounded =
  QCheck2.Test.make ~name:"alignment in [-1,1]; self-alignment 1" ~count:300
    QCheck2.Gen.(pair stance_gen stance_gen)
    (fun (raw_a, raw_b) ->
      let a = Interest.make raw_a and b = Interest.make raw_b in
      let al = Interest.alignment a b in
      al >= -1.0 -. 1e-9 && al <= 1.0 +. 1e-9
      && (a = [] || Float.abs (Interest.alignment a a -. 1.0) < 1e-9))

(* ---------- guidelines score bounds ---------- *)

let design_gen =
  QCheck2.Gen.(
    let* choices = int_range 0 5 in
    let* bits = array_size (return 9) bool in
    return
      {
        Guidelines.app_name = "generated";
        server_choices = choices;
        third_party_mediators_selectable = bits.(0);
        supports_e2e_encryption = bits.(1);
        user_controls_in_network_features = bits.(2);
        interfaces_open = bits.(3);
        value_flow_designed = bits.(4);
        identity_framework = bits.(5);
        contested_functions_separated = bits.(6);
        failure_reporting = bits.(7);
        anonymous_mode_honest = bits.(8);
      })

let prop_guidelines_score_consistent =
  QCheck2.Test.make ~name:"guideline score = 1 - violations/10" ~count:300
    design_gen
    (fun d ->
      let violations = List.length (Guidelines.lint d) in
      Float.abs (Guidelines.score d -. (1.0 -. (float_of_int violations /. 10.0)))
      < 1e-9)

let () =
  Alcotest.run "properties"
    [
      ( "randomized-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pathvector_valley_free;
            prop_pathvector_two_tier_full_reachability;
            prop_payment_conservation;
            prop_payment_no_overdraft;
            prop_max_min_feasible;
            prop_max_min_work_conserving;
            prop_active_subset_no_surviving_counter;
            prop_trust_bounds;
            prop_registry_entangled_single_owner;
            prop_alignment_bounded;
            prop_guidelines_score_consistent;
          ] );
    ]
