test/test_routing.ml: Alcotest Array List Option Tussle_netsim Tussle_prelude Tussle_routing
