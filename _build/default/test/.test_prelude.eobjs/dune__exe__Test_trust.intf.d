test/test_trust.mli:
