test/test_properties.ml: Alcotest Array Float Hashtbl List Option Printf QCheck2 QCheck_alcotest Tussle_core Tussle_econ Tussle_naming Tussle_netsim Tussle_prelude Tussle_routing Tussle_trust
