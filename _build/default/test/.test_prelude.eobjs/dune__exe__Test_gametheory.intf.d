test/test_gametheory.mli:
