test/test_policy.ml: Alcotest Format List Printf QCheck2 QCheck_alcotest String Tussle_policy Tussle_prelude
