test/test_econ.ml: Alcotest Array Float List Tussle_econ Tussle_gametheory Tussle_prelude
