test/test_core.ml: Alcotest Format List String Tussle_core Tussle_prelude
