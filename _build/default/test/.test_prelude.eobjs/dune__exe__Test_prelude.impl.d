test/test_prelude.ml: Alcotest Array Float Fun List QCheck2 QCheck_alcotest String Tussle_prelude
