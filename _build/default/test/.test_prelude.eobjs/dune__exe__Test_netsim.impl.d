test/test_netsim.ml: Alcotest Array Float List Tussle_netsim Tussle_prelude
