test/test_naming.ml: Alcotest Format Tussle_naming
