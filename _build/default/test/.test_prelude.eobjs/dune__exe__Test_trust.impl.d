test/test_trust.ml: Alcotest Float List Printf Tussle_netsim Tussle_prelude Tussle_trust
