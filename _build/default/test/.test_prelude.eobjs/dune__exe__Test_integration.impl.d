test/test_integration.ml: Alcotest Array List Option Printf Tussle_econ Tussle_netsim Tussle_prelude Tussle_routing Tussle_trust
