test/test_experiments.ml: Alcotest List String Tussle_experiments
