test/test_gametheory.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Tussle_gametheory Tussle_prelude
