(* Tests for tussle.trust: identity, trust graph, reputation, mediator. *)

module Identity = Tussle_trust.Identity
module Trust_graph = Tussle_trust.Trust_graph
module Reputation = Tussle_trust.Reputation
module Mediator = Tussle_trust.Mediator

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

(* ---------- Identity ---------- *)

let test_identity_accountability_order () =
  let open Identity in
  Alcotest.(check bool) "real > role" true
    (accountability (Real_name "a") > accountability (Role "r"));
  Alcotest.(check bool) "role > pseudonym" true
    (accountability (Role "r") > accountability (Pseudonym "p"));
  Alcotest.(check bool) "pseudonym > anon" true
    (accountability (Pseudonym "p") > accountability Anonymous);
  check_float "anon zero" 0.0 (accountability Anonymous)

let test_identity_policies () =
  let open Identity in
  Alcotest.(check bool) "open accepts anon" true (accepts open_policy Anonymous);
  Alcotest.(check bool) "strict rejects anon" false
    (accepts accountable_only Anonymous);
  Alcotest.(check bool) "strict rejects pseudonym" false
    (accepts accountable_only (Pseudonym "p"));
  Alcotest.(check bool) "strict accepts role" true
    (accepts accountable_only (Role "admin"));
  Alcotest.(check bool) "strict accepts real" true
    (accepts accountable_only (Real_name "alice"))

let test_identity_disguise () =
  let open Identity in
  Alcotest.(check bool) "disguised" true
    (disguised_anonymity ~claimed:(Real_name "fake") ~actual:Anonymous);
  Alcotest.(check bool) "honest anon" false
    (disguised_anonymity ~claimed:Anonymous ~actual:Anonymous);
  Alcotest.(check bool) "honest real" false
    (disguised_anonymity ~claimed:(Real_name "a") ~actual:(Real_name "a"))

(* ---------- Trust graph ---------- *)

let test_trust_direct () =
  let g = Trust_graph.create 3 in
  Trust_graph.set_trust g ~truster:0 ~trustee:1 0.8;
  check_float "direct" 0.8 (Trust_graph.direct_trust g ~truster:0 ~trustee:1);
  check_float "no edge" 0.0 (Trust_graph.direct_trust g ~truster:1 ~trustee:0);
  check_float "self" 1.0 (Trust_graph.direct_trust g ~truster:2 ~trustee:2)

let test_trust_derived_chain () =
  let g = Trust_graph.create 4 in
  Trust_graph.set_trust g ~truster:0 ~trustee:1 0.9;
  Trust_graph.set_trust g ~truster:1 ~trustee:2 0.8;
  Trust_graph.set_trust g ~truster:2 ~trustee:3 0.5;
  check_close "two hops" 0.72 (Trust_graph.derived_trust g ~truster:0 ~trustee:2);
  check_close "three hops" 0.36 (Trust_graph.derived_trust g ~truster:0 ~trustee:3);
  (* attenuation: derived trust never exceeds the weakest... product *)
  Alcotest.(check bool) "attenuates" true
    (Trust_graph.derived_trust g ~truster:0 ~trustee:3
    < Trust_graph.derived_trust g ~truster:0 ~trustee:1)

let test_trust_best_path () =
  let g = Trust_graph.create 4 in
  (* weak direct vs strong indirect *)
  Trust_graph.set_trust g ~truster:0 ~trustee:3 0.2;
  Trust_graph.set_trust g ~truster:0 ~trustee:1 0.9;
  Trust_graph.set_trust g ~truster:1 ~trustee:3 0.9;
  check_close "picks best path" 0.81
    (Trust_graph.derived_trust g ~truster:0 ~trustee:3)

let test_trust_depth_bound () =
  let g = Trust_graph.create 6 in
  for i = 0 to 4 do
    Trust_graph.set_trust g ~truster:i ~trustee:(i + 1) 1.0
  done;
  check_float "within depth" 1.0
    (Trust_graph.derived_trust ~max_depth:5 g ~truster:0 ~trustee:5);
  check_float "beyond depth" 0.0
    (Trust_graph.derived_trust ~max_depth:4 g ~truster:0 ~trustee:5)

let test_trust_threshold_and_revoke () =
  let g = Trust_graph.create 2 in
  Trust_graph.add_mutual g 0 1 0.7;
  Alcotest.(check bool) "trusts" true (Trust_graph.trusts g ~threshold:0.5 0 1);
  Alcotest.(check bool) "not that much" false
    (Trust_graph.trusts g ~threshold:0.9 0 1);
  Trust_graph.revoke g ~truster:0 ~trustee:1;
  check_float "revoked" 0.0 (Trust_graph.direct_trust g ~truster:0 ~trustee:1);
  check_float "other direction intact" 0.7
    (Trust_graph.direct_trust g ~truster:1 ~trustee:0)

let test_trust_validation () =
  let g = Trust_graph.create 2 in
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Trust_graph.set_trust: weight not in [0,1]") (fun () ->
      Trust_graph.set_trust g ~truster:0 ~trustee:1 1.5)

let test_trust_mean_pairwise () =
  let g = Trust_graph.create 3 in
  Trust_graph.add_mutual g 0 1 1.0;
  Trust_graph.add_mutual g 1 2 1.0;
  Trust_graph.add_mutual g 0 2 1.0;
  check_close "complete trust" 1.0 (Trust_graph.mean_pairwise_trust g);
  let empty = Trust_graph.create 3 in
  check_float "no trust" 0.0 (Trust_graph.mean_pairwise_trust empty)

(* ---------- Reputation ---------- *)

let test_reputation_prior () =
  let r = Reputation.create 2 in
  check_float "uninformed 0.5" 0.5 (Reputation.score r ~subject:0)

let test_reputation_updates () =
  let r = Reputation.create 1 in
  Reputation.rate r ~subject:0 ~good:true;
  check_close "one good" (2.0 /. 3.0) (Reputation.score r ~subject:0);
  Reputation.rate r ~subject:0 ~good:false;
  check_float "balanced" 0.5 (Reputation.score r ~subject:0)

let test_reputation_converges () =
  let r = Reputation.create 1 in
  for _ = 1 to 100 do
    Reputation.rate r ~subject:0 ~good:true
  done;
  Alcotest.(check bool) "high" true (Reputation.score r ~subject:0 > 0.95)

let test_reputation_forgetting () =
  let slow = Reputation.create ~forgetting:0.5 1 in
  for _ = 1 to 50 do
    Reputation.rate slow ~subject:0 ~good:false
  done;
  (* reformed: a few recent good ratings outweigh the discounted past *)
  for _ = 1 to 5 do
    Reputation.rate slow ~subject:0 ~good:true
  done;
  Alcotest.(check bool) "forgiven" true (Reputation.score slow ~subject:0 > 0.6)

let test_reputation_ranking () =
  let r = Reputation.create 3 in
  Reputation.rate r ~subject:2 ~good:true;
  Reputation.rate r ~subject:1 ~good:false;
  match Reputation.ranking r with
  | (first, _) :: _ -> Alcotest.(check int) "best first" 2 first
  | [] -> Alcotest.fail "empty ranking"

(* ---------- Mediator ---------- *)

let tx = { Mediator.gain = 10.0; loss = 100.0; p_honest = 0.9 }

let test_mediator_none () =
  (* 0.9*10 - 0.1*100 = -1: not worth transacting naked *)
  check_float "naked negative" (-1.0) (Mediator.expected_utility tx Mediator.No_mediator);
  Alcotest.(check bool) "declines" false
    (Mediator.should_transact tx Mediator.No_mediator)

let test_mediator_liability_cap () =
  (* the credit card: loss capped at 50 cents equivalent *)
  let m = Mediator.Liability_cap { cap = 5.0; fee = 0.5 } in
  (* 9 - 0.1*5 - 0.5 = 8.0 *)
  check_float "capped" 8.0 (Mediator.expected_utility tx m);
  Alcotest.(check bool) "transacts" true (Mediator.should_transact tx m)

let test_mediator_certifier () =
  let m = Mediator.Certifier { assurance = 0.9; fee = 1.0 } in
  (* p' = 0.9 + 0.9*0.1 = 0.99 -> 9.9 - 1 - 1 = 7.9 *)
  check_close "certified" 7.9 (Mediator.expected_utility tx m)

let test_mediator_escrow () =
  let m = Mediator.Escrow { fee = 2.0 } in
  check_float "escrowed" 7.0 (Mediator.expected_utility tx m)

let test_mediator_choice () =
  let options =
    [
      Mediator.No_mediator;
      Mediator.Liability_cap { cap = 5.0; fee = 0.5 };
      Mediator.Escrow { fee = 2.0 };
    ]
  in
  let best, u = Mediator.best_mediator tx options in
  Alcotest.(check string) "picks cap" "liability-cap(5,fee=0.5)"
    (Mediator.mediator_to_string best);
  check_float "best utility" 8.0 u

let test_mediator_enables_trade () =
  let txs =
    [
      tx;
      { Mediator.gain = 1.0; loss = 1000.0; p_honest = 0.5 };
      (* hopeless *)
      { Mediator.gain = 5.0; loss = 0.0; p_honest = 1.0 };
      (* always fine *)
    ]
  in
  let enabled =
    Mediator.enabled_transactions txs
      [ Mediator.No_mediator; Mediator.Liability_cap { cap = 1.0; fee = 0.1 } ]
  in
  Alcotest.(check int) "two of three enabled" 2 (List.length enabled);
  (* without mediators, only one trade happens *)
  let naked = Mediator.enabled_transactions txs [ Mediator.No_mediator ] in
  Alcotest.(check int) "one naked" 1 (List.length naked)

let test_mediator_validation () =
  Alcotest.check_raises "bad p" (Invalid_argument "Mediator: p_honest not in [0,1]")
    (fun () ->
      ignore
        (Mediator.expected_utility
           { Mediator.gain = 1.0; loss = 1.0; p_honest = 2.0 }
           Mediator.No_mediator))


(* ---------- Traceback ---------- *)

module Traceback = Tussle_trust.Traceback
module Rng = Tussle_prelude.Rng

let attack_path = [ 7; 8; 9; 10; 11 ]

let test_traceback_reconstructs_with_enough_packets () =
  let rng = Rng.create 21 in
  let obs = Traceback.simulate rng ~path:attack_path ~p:0.2 ~packets:50_000 in
  let guess = Traceback.reconstruct obs in
  check_float "perfect" 1.0 (Traceback.accuracy ~truth:attack_path ~guess)

let test_traceback_few_packets_noisy () =
  (* average accuracy over trials with 10 packets is well below 1 *)
  let acc =
    List.init 50 (fun k ->
        let rng = Rng.create (100 + k) in
        let obs = Traceback.simulate rng ~path:attack_path ~p:0.2 ~packets:10 in
        Traceback.accuracy ~truth:attack_path ~guess:(Traceback.reconstruct obs))
  in
  let mean = List.fold_left ( +. ) 0.0 acc /. 50.0 in
  Alcotest.(check bool) "noisy" true (mean < 0.95)

let test_traceback_expected_marks () =
  (* distance 1 from the victim end: router last in path *)
  check_float "nearest" (0.2 *. 1000.0)
    (Traceback.expected_marks ~p:0.2 ~distance:1 ~packets:1000);
  Alcotest.(check bool) "farther is rarer" true
    (Traceback.expected_marks ~p:0.2 ~distance:5 ~packets:1000
    < Traceback.expected_marks ~p:0.2 ~distance:2 ~packets:1000)

let test_traceback_mark_distribution () =
  (* empirical counts roughly follow p(1-p)^(d-1) *)
  let rng = Rng.create 23 in
  let packets = 200_000 in
  let obs = Traceback.simulate rng ~path:attack_path ~p:0.25 ~packets in
  List.iteri
    (fun i router ->
      let distance = List.length attack_path - i in
      let expected = Traceback.expected_marks ~p:0.25 ~distance ~packets in
      let actual = float_of_int (List.assoc router obs) in
      Alcotest.(check bool)
        (Printf.sprintf "router %d within 10%%" router)
        true
        (Float.abs (actual -. expected) < 0.1 *. expected +. 50.0))
    attack_path

let test_traceback_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Traceback.simulate: p not in (0,1)") (fun () ->
      ignore (Traceback.simulate rng ~path:[ 1 ] ~p:1.5 ~packets:10));
  Alcotest.check_raises "empty path"
    (Invalid_argument "Traceback.simulate: empty path") (fun () ->
      ignore (Traceback.simulate rng ~path:[] ~p:0.5 ~packets:10))


(* ---------- Firewall control ---------- *)

module Fc = Tussle_trust.Firewall_control
module Packet = Tussle_netsim.Packet
module Middlebox = Tussle_netsim.Middlebox

let game id src =
  Packet.make ~app:Packet.Game ~id ~src ~dst:50 ~created:0.0 ()

let test_fc_default_allow () =
  let t = Fc.create () in
  Alcotest.(check bool) "default allow" true (Fc.permits t (game 0 1));
  let strict = Fc.create ~default_allow:false () in
  Alcotest.(check bool) "default deny" false (Fc.permits strict (game 0 1))

let test_fc_admin_rule_binds () =
  let t = Fc.create () in
  (match
     Fc.add_rule t Fc.Admin ~allow:false
       { Fc.any with Fc.sel_port = Some (Packet.default_port Packet.Game) }
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "admin may rule anything");
  Alcotest.(check bool) "blocked" false (Fc.permits t (game 0 1))

let test_fc_user_scope () =
  let t = Fc.create ~users_may_override:true () in
  ignore
    (Fc.add_rule t Fc.Admin ~allow:false
       { Fc.any with Fc.sel_port = Some (Packet.default_port Packet.Game) });
  (* user 7 opens a pinhole for itself *)
  (match
     Fc.add_rule t (Fc.End_user 7) ~allow:true
       { Fc.any with Fc.sel_src = Some 7 }
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "own traffic is in scope");
  Alcotest.(check bool) "own traffic flows" true (Fc.permits t (game 0 7));
  Alcotest.(check bool) "others still blocked" false (Fc.permits t (game 1 8));
  (* but cannot legislate for others *)
  Alcotest.(check bool) "overreach refused" true
    (Fc.add_rule t (Fc.End_user 7) ~allow:true
       { Fc.any with Fc.sel_src = Some 8 }
    = Error `Beyond_authority)

let test_fc_admin_precedence () =
  let t = Fc.create ~users_may_override:false () in
  ignore
    (Fc.add_rule t Fc.Admin ~allow:false
       { Fc.any with Fc.sel_port = Some (Packet.default_port Packet.Game) });
  ignore
    (Fc.add_rule t (Fc.End_user 7) ~allow:true
       { Fc.any with Fc.sel_src = Some 7 });
  Alcotest.(check bool) "admin wins" false (Fc.permits t (game 0 7))

let test_fc_remove_rule () =
  let t = Fc.create () in
  let id =
    match
      Fc.add_rule t (Fc.End_user 7) ~allow:false { Fc.any with Fc.sel_src = Some 7 }
    with
    | Ok id -> id
    | Error _ -> Alcotest.fail "add"
  in
  Alcotest.(check bool) "other user may not remove" true
    (Fc.remove_rule t (Fc.End_user 8) id = Error `Not_owner);
  Alcotest.(check bool) "owner removes" true (Fc.remove_rule t (Fc.End_user 7) id = Ok ());
  Alcotest.(check bool) "gone" true (Fc.permits t (game 0 7))

let test_fc_transparency () =
  let t = Fc.create () in
  ignore
    (Fc.add_rule t Fc.Admin ~allow:false ~visible:false
       { Fc.any with Fc.sel_dst = Some 7 });
  ignore
    (Fc.add_rule t Fc.Admin ~allow:false ~visible:true
       { Fc.any with Fc.sel_src = Some 7 });
  check_float "half visible" 0.5 (Fc.rule_transparency t ~user:7);
  Alcotest.(check int) "visible count" 1 (List.length (Fc.visible_rules t ~user:7));
  (* the middlebox is honest only when all rules are visible *)
  Alcotest.(check bool) "covert middlebox" false
    (Middlebox.reveals_presence (Fc.middlebox t));
  let clean = Fc.create () in
  check_float "unconstrained" 1.0 (Fc.rule_transparency clean ~user:7)

let () =
  Alcotest.run "trust"
    [
      ( "identity",
        [
          Alcotest.test_case "accountability order" `Quick
            test_identity_accountability_order;
          Alcotest.test_case "policies" `Quick test_identity_policies;
          Alcotest.test_case "disguise" `Quick test_identity_disguise;
        ] );
      ( "trust-graph",
        [
          Alcotest.test_case "direct" `Quick test_trust_direct;
          Alcotest.test_case "derived chain" `Quick test_trust_derived_chain;
          Alcotest.test_case "best path" `Quick test_trust_best_path;
          Alcotest.test_case "depth bound" `Quick test_trust_depth_bound;
          Alcotest.test_case "threshold/revoke" `Quick test_trust_threshold_and_revoke;
          Alcotest.test_case "validation" `Quick test_trust_validation;
          Alcotest.test_case "mean pairwise" `Quick test_trust_mean_pairwise;
        ] );
      ( "reputation",
        [
          Alcotest.test_case "prior" `Quick test_reputation_prior;
          Alcotest.test_case "updates" `Quick test_reputation_updates;
          Alcotest.test_case "converges" `Quick test_reputation_converges;
          Alcotest.test_case "forgetting" `Quick test_reputation_forgetting;
          Alcotest.test_case "ranking" `Quick test_reputation_ranking;
        ] );
      ( "firewall-control",
        [
          Alcotest.test_case "defaults" `Quick test_fc_default_allow;
          Alcotest.test_case "admin rule binds" `Quick test_fc_admin_rule_binds;
          Alcotest.test_case "user scope" `Quick test_fc_user_scope;
          Alcotest.test_case "admin precedence" `Quick test_fc_admin_precedence;
          Alcotest.test_case "remove rule" `Quick test_fc_remove_rule;
          Alcotest.test_case "transparency" `Quick test_fc_transparency;
        ] );
      ( "traceback",
        [
          Alcotest.test_case "reconstructs" `Quick
            test_traceback_reconstructs_with_enough_packets;
          Alcotest.test_case "few packets noisy" `Quick
            test_traceback_few_packets_noisy;
          Alcotest.test_case "expected marks" `Quick test_traceback_expected_marks;
          Alcotest.test_case "mark distribution" `Quick
            test_traceback_mark_distribution;
          Alcotest.test_case "validation" `Quick test_traceback_validation;
        ] );
      ( "mediator",
        [
          Alcotest.test_case "no mediator" `Quick test_mediator_none;
          Alcotest.test_case "liability cap" `Quick test_mediator_liability_cap;
          Alcotest.test_case "certifier" `Quick test_mediator_certifier;
          Alcotest.test_case "escrow" `Quick test_mediator_escrow;
          Alcotest.test_case "best mediator" `Quick test_mediator_choice;
          Alcotest.test_case "enables trade" `Quick test_mediator_enables_trade;
          Alcotest.test_case "validation" `Quick test_mediator_validation;
        ] );
    ]
