(* Tests for tussle.naming: registry designs and addressing schemes. *)

module Registry = Tussle_naming.Registry
module Address = Tussle_naming.Address

let check_float = Alcotest.(check (float 1e-9))

let purpose =
  Alcotest.testable
    (fun ppf p ->
      Format.pp_print_string ppf
        (match p with
        | Registry.Machine -> "machine"
        | Registry.Mailbox -> "mailbox"
        | Registry.Brand -> "brand"))
    ( = )

(* ---------- Registry ---------- *)

let test_register_lookup () =
  let r = Registry.create Registry.Separated in
  Alcotest.(check bool) "register ok" true
    (Registry.register r ~owner:"acme" ~label:"acme" Registry.Machine = Ok ());
  Alcotest.(check (option string)) "lookup" (Some "acme")
    (Registry.lookup r ~label:"acme" Registry.Machine);
  Alcotest.(check (option string)) "other purpose empty" None
    (Registry.lookup r ~label:"acme" Registry.Brand)

let test_entangled_label_is_one_slot () =
  let r = Registry.create Registry.Entangled in
  ignore (Registry.register r ~owner:"smith" ~label:"acme" Registry.Machine);
  (match Registry.register r ~owner:"acme-corp" ~label:"acme" Registry.Brand with
  | Error (`Taken who) -> Alcotest.(check string) "held by smith" "smith" who
  | Ok () -> Alcotest.fail "entangled design must refuse");
  (* the same owner can add purposes *)
  Alcotest.(check bool) "same owner ok" true
    (Registry.register r ~owner:"smith" ~label:"acme" Registry.Mailbox = Ok ())

let test_separated_label_coexists () =
  let r = Registry.create Registry.Separated in
  ignore (Registry.register r ~owner:"smith" ~label:"acme" Registry.Machine);
  Alcotest.(check bool) "brand coexists" true
    (Registry.register r ~owner:"acme-corp" ~label:"acme" Registry.Brand = Ok ())

let test_dispute_entangled_spillover () =
  let r = Registry.create Registry.Entangled in
  ignore (Registry.register r ~owner:"smith" ~label:"acme" Registry.Machine);
  ignore (Registry.register r ~owner:"smith" ~label:"acme" Registry.Mailbox);
  (match Registry.dispute r ~claimant:"acme-corp" ~label:"acme" with
  | `Transferred disrupted ->
    Alcotest.(check (list purpose)) "machine and mailbox broken"
      [ Registry.Machine; Registry.Mailbox ] disrupted
  | `No_target -> Alcotest.fail "dispute had a target");
  (* smith's services are gone; claimant now holds them *)
  Alcotest.(check (option string)) "machine seized" (Some "acme-corp")
    (Registry.lookup r ~label:"acme" Registry.Machine);
  Alcotest.(check int) "disruptions" 2 (Registry.disruptions r);
  check_float "spillover 2 per dispute" 2.0 (Registry.spillover r)

let test_dispute_separated_no_spillover () =
  let r = Registry.create Registry.Separated in
  ignore (Registry.register r ~owner:"smith" ~label:"acme" Registry.Machine);
  ignore (Registry.register r ~owner:"smith" ~label:"acme" Registry.Brand);
  (match Registry.dispute r ~claimant:"acme-corp" ~label:"acme" with
  | `Transferred disrupted ->
    Alcotest.(check (list purpose)) "nothing broken" [] disrupted
  | `No_target -> Alcotest.fail "dispute had a target");
  Alcotest.(check (option string)) "machine survives" (Some "smith")
    (Registry.lookup r ~label:"acme" Registry.Machine);
  Alcotest.(check (option string)) "brand moved" (Some "acme-corp")
    (Registry.lookup r ~label:"acme" Registry.Brand);
  check_float "no spillover" 0.0 (Registry.spillover r)

let test_dispute_no_target () =
  let r = Registry.create Registry.Entangled in
  Alcotest.(check bool) "nothing to take" true
    (Registry.dispute r ~claimant:"x" ~label:"ghost" = `No_target);
  Alcotest.(check int) "still counted" 1 (Registry.disputes_filed r)

let test_bindings_sorted () =
  let r = Registry.create Registry.Separated in
  ignore (Registry.register r ~owner:"b" ~label:"zeta" Registry.Machine);
  ignore (Registry.register r ~owner:"a" ~label:"alpha" Registry.Machine);
  match Registry.bindings r with
  | [ ("alpha", _, "a"); ("zeta", _, "b") ] -> ()
  | _ -> Alcotest.fail "expected sorted bindings"

(* ---------- Address ---------- *)

let test_address_switching_costs () =
  check_float "provider-based scales with hosts" 40.0
    (Address.switching_cost (Address.Provider_based { static_hosts = 40 }));
  check_float "dynamic is flat" 0.5
    (Address.switching_cost (Address.Dynamic { hosts = 500 }));
  check_float "portable is free" 0.0
    (Address.switching_cost (Address.Portable { prefixes = 4 }))

let test_address_routing_burden () =
  check_float "aggregated free" 0.0
    (Address.routing_table_burden ~core_routers:1000
       (Address.Provider_based { static_hosts = 10 }));
  check_float "portable costs slots" 4000.0
    (Address.routing_table_burden ~core_routers:1000
       (Address.Portable { prefixes = 4 }))

let test_address_dilemma () =
  (* the paper's tension: portable space shifts cost from customer to
     system; with enough core routers the system side dominates *)
  let pb = Address.Provider_based { static_hosts = 40 } in
  let pt = Address.Portable { prefixes = 4 } in
  let cost = Address.total_cost ~core_routers:100_000 in
  Alcotest.(check bool) "portable dearer at scale" true (cost pt > cost pb);
  let small = Address.total_cost ~core_routers:10 in
  Alcotest.(check bool) "portable cheap when core is small" true
    (small pt < small pb)

let test_address_validation () =
  Alcotest.check_raises "negative hosts" (Invalid_argument "Address: negative hosts")
    (fun () ->
      ignore (Address.switching_cost (Address.Provider_based { static_hosts = -1 })))


(* ---------- Resolver ---------- *)

module Resolver = Tussle_naming.Resolver

let zone =
  Resolver.authority
    [
      { Resolver.name = "a.example"; address = 1; ttl = 100.0 };
      { Resolver.name = "b.example"; address = 2; ttl = 10.0 };
    ]

let test_resolver_honest () =
  let r = Resolver.create zone in
  Alcotest.(check bool) "hit" true (Resolver.resolve r ~now:0.0 "a.example" = Resolver.Address 1);
  Alcotest.(check bool) "miss" true (Resolver.resolve r ~now:0.0 "zzz.example" = Resolver.Nxdomain);
  check_float "fully truthful" 1.0
    (Resolver.truthfulness r ~now:0.0 ~names:[ "a.example"; "b.example"; "x" ])

let test_resolver_cache () =
  let r = Resolver.create zone in
  ignore (Resolver.resolve r ~now:0.0 "a.example");
  ignore (Resolver.resolve r ~now:50.0 "a.example");
  Alcotest.(check int) "one upstream" 1 (Resolver.authority_queries r);
  Alcotest.(check int) "one hit" 1 (Resolver.cache_hits r);
  (* ttl expiry forces a refetch *)
  ignore (Resolver.resolve r ~now:150.0 "a.example");
  Alcotest.(check int) "refetched" 2 (Resolver.authority_queries r)

let test_resolver_nxdomain_monetizing () =
  let r = Resolver.create ~policy:(Resolver.Nxdomain_monetizing 99) zone in
  Alcotest.(check bool) "typo monetized" true
    (Resolver.resolve r ~now:0.0 "tpyo.example" = Resolver.Address 99);
  Alcotest.(check bool) "real names honest" true
    (Resolver.resolve r ~now:0.0 "a.example" = Resolver.Address 1);
  Alcotest.(check bool) "lie detected" false
    (Resolver.truthful r ~now:0.0 "tpyo.example")

let test_resolver_blocking () =
  let r = Resolver.create ~policy:(Resolver.Blocking [ "a.example" ]) zone in
  Alcotest.(check bool) "refused" true
    (Resolver.resolve r ~now:0.0 "a.example" = Resolver.Refused);
  Alcotest.(check bool) "others fine" true
    (Resolver.resolve r ~now:0.0 "b.example" = Resolver.Address 2)

let test_resolver_redirecting () =
  let r =
    Resolver.create ~policy:(Resolver.Redirecting [ ("b.example", 77) ]) zone
  in
  Alcotest.(check bool) "redirected" true
    (Resolver.resolve r ~now:0.0 "b.example" = Resolver.Address 77);
  Alcotest.(check bool) "untouched" true
    (Resolver.resolve r ~now:0.0 "a.example" = Resolver.Address 1)

let () =
  Alcotest.run "naming"
    [
      ( "registry",
        [
          Alcotest.test_case "register/lookup" `Quick test_register_lookup;
          Alcotest.test_case "entangled one slot" `Quick test_entangled_label_is_one_slot;
          Alcotest.test_case "separated coexists" `Quick test_separated_label_coexists;
          Alcotest.test_case "entangled spillover" `Quick test_dispute_entangled_spillover;
          Alcotest.test_case "separated isolation" `Quick
            test_dispute_separated_no_spillover;
          Alcotest.test_case "no target" `Quick test_dispute_no_target;
          Alcotest.test_case "bindings sorted" `Quick test_bindings_sorted;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "honest" `Quick test_resolver_honest;
          Alcotest.test_case "cache/ttl" `Quick test_resolver_cache;
          Alcotest.test_case "nxdomain monetizing" `Quick
            test_resolver_nxdomain_monetizing;
          Alcotest.test_case "blocking" `Quick test_resolver_blocking;
          Alcotest.test_case "redirecting" `Quick test_resolver_redirecting;
        ] );
      ( "address",
        [
          Alcotest.test_case "switching costs" `Quick test_address_switching_costs;
          Alcotest.test_case "routing burden" `Quick test_address_routing_burden;
          Alcotest.test_case "the dilemma" `Quick test_address_dilemma;
          Alcotest.test_case "validation" `Quick test_address_validation;
        ] );
    ]
