(* Tests for tussle.core: interests, actors, mechanisms, scenario engine,
   actor-network dynamics, design metrics. *)

module Rng = Tussle_prelude.Rng
module Interest = Tussle_core.Interest
module Actor = Tussle_core.Actor
module Mechanism = Tussle_core.Mechanism
module Scenario = Tussle_core.Scenario
module Actor_network = Tussle_core.Actor_network
module Metrics = Tussle_core.Metrics

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

(* ---------- Interest ---------- *)

let test_interest_clamp_dedupe () =
  let s = Interest.make [ (Interest.Privacy, 5.0); (Interest.Privacy, -1.0) ] in
  check_float "clamped, first wins" 1.0 (Interest.weight s Interest.Privacy)

let test_interest_alignment () =
  let a = Interest.make [ (Interest.Privacy, 1.0) ] in
  let b = Interest.make [ (Interest.Privacy, 1.0) ] in
  let c = Interest.make [ (Interest.Privacy, -1.0) ] in
  let d = Interest.make [ (Interest.Revenue, 1.0) ] in
  check_close "same" 1.0 (Interest.alignment a b);
  check_close "opposed" (-1.0) (Interest.alignment a c);
  check_close "orthogonal" 0.0 (Interest.alignment a d);
  check_float "empty" 0.0 (Interest.alignment a (Interest.make []))

let test_interest_adverse_vs_different () =
  let user = Actor.default_stance Actor.User in
  let gov = Actor.default_stance Actor.Government in
  Alcotest.(check bool) "user vs government adverse" true
    (Interest.adverse user gov);
  let a = Interest.make [ (Interest.Privacy, 1.0) ] in
  let d = Interest.make [ (Interest.Revenue, 1.0) ] in
  Alcotest.(check bool) "orthogonal merely different" true
    (Interest.merely_different a d)

let test_interest_combine () =
  let a = Interest.make [ (Interest.Privacy, 0.8) ] in
  let b = Interest.make [ (Interest.Privacy, 0.8); (Interest.Control, -0.5) ] in
  let c = Interest.combine [ a; b ] in
  check_float "clamped sum" 1.0 (Interest.weight c Interest.Privacy);
  check_float "carried" (-0.5) (Interest.weight c Interest.Control)

let test_interest_scale () =
  let s = Interest.scale 0.5 (Interest.make [ (Interest.Openness, 0.8) ]) in
  check_float "scaled" 0.4 (Interest.weight s Interest.Openness)

(* ---------- Actor ---------- *)

let test_actor_defaults () =
  let u = Actor.make ~id:0 ~name:"alice" Actor.User in
  check_float "power" 1.0 u.Actor.power;
  Alcotest.(check bool) "privacy positive" true
    (Interest.weight u.Actor.stance Interest.Privacy > 0.0)

let test_actor_utility_sign () =
  let user = Actor.make ~id:0 ~name:"u" Actor.User in
  let privacy_up = Interest.make [ (Interest.Privacy, 1.0) ] in
  let control_up = Interest.make [ (Interest.Control, 1.0) ] in
  Alcotest.(check bool) "likes privacy" true (Actor.utility user privacy_up > 0.0);
  Alcotest.(check bool) "dislikes control" true (Actor.utility user control_up < 0.0)

let test_actor_adverse_pairs () =
  let mk k = Actor.make ~id:0 ~name:"x" k in
  Alcotest.(check bool) "user vs rights-holder" true
    (Actor.adverse (mk Actor.User) (mk Actor.Rights_holder));
  Alcotest.(check bool) "designer vs content provider aligned" false
    (Actor.adverse (mk Actor.Designer) (mk Actor.Content_provider))

let test_actor_negative_power () =
  Alcotest.check_raises "power" (Invalid_argument "Actor.make: negative power")
    (fun () -> ignore (Actor.make ~power:(-1.0) ~id:0 ~name:"x" Actor.User))

(* ---------- Mechanism ---------- *)

let test_mechanism_counter_simple () =
  (* port filter deployed, then tunnel counters it *)
  let active = Mechanism.active [ Mechanism.port_filter; Mechanism.tunnel ] in
  let names = List.map (fun m -> m.Mechanism.name) active in
  Alcotest.(check (list string)) "tunnel wins" [ "tunnel" ] names

let test_mechanism_counter_chain () =
  (* escalation: port-filter < tunnel < app-filter < encryption *)
  let deployed =
    [ Mechanism.port_filter; Mechanism.tunnel; Mechanism.app_filter;
      Mechanism.encryption ]
  in
  let names = List.map (fun m -> m.Mechanism.name) (Mechanism.active deployed) in
  (* encryption kills app-filter; app-filter dead so tunnel lives;
     tunnel kills port-filter *)
  Alcotest.(check (list string)) "ladder" [ "tunnel"; "encryption" ] names

let test_mechanism_newest_wins_mutual () =
  let a =
    Mechanism.make ~name:"a" ~deployer:Actor.User ~counters:[ "b" ]
      (Interest.make [])
  in
  let b =
    Mechanism.make ~name:"b" ~deployer:Actor.Isp ~counters:[ "a" ]
      (Interest.make [])
  in
  let names l = List.map (fun m -> m.Mechanism.name) (Mechanism.active l) in
  Alcotest.(check (list string)) "later wins" [ "b" ] (names [ a; b ]);
  Alcotest.(check (list string)) "order matters" [ "a" ] (names [ b; a ])

let test_mechanism_net_effect () =
  let e = Mechanism.net_effect [ Mechanism.port_filter; Mechanism.tunnel ] in
  (* only tunnel active: transparency positive *)
  Alcotest.(check bool) "transparency restored" true
    (Interest.weight e Interest.Transparency > 0.0)

let test_mechanism_available_to () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "deployer matches" true
        (m.Mechanism.deployer = Actor.User))
    (Mechanism.available_to Actor.User);
  Alcotest.(check bool) "users have tools" true
    (List.length (Mechanism.available_to Actor.User) >= 3)

(* ---------- Scenario ---------- *)

let test_scenario_isp_vs_user_escalation () =
  let actors =
    [
      Actor.make ~id:0 ~name:"isp" Actor.Isp;
      Actor.make ~id:1 ~name:"user" Actor.User;
    ]
  in
  let result = Scenario.run ~actors ~available:Mechanism.available_to () in
  (* the tussle must have produced at least some deployment activity *)
  Alcotest.(check bool) "rounds happened" true (List.length result.Scenario.rounds > 0);
  let deploys =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun (_, m) ->
            match m with Scenario.Deploy n -> Some n | _ -> None)
          r.Scenario.moves)
      result.Scenario.rounds
  in
  Alcotest.(check bool) "mechanisms deployed" true (List.length deploys > 0)

let test_scenario_terminates () =
  let actors =
    List.mapi
      (fun i k -> Actor.make ~id:i ~name:(Actor.kind_to_string k) k)
      Actor.all_kinds
  in
  let result = Scenario.run ~max_rounds:60 ~actors ~available:Mechanism.available_to () in
  (* must end via one of the three endings without raising *)
  match result.Scenario.ending with
  | Scenario.Fixpoint _ | Scenario.Cycle _ | Scenario.Horizon -> ()

let test_scenario_no_actors_fixpoint () =
  let result = Scenario.run ~actors:[] ~available:Mechanism.available_to () in
  (match result.Scenario.ending with
  | Scenario.Fixpoint 1 -> ()
  | e -> Alcotest.failf "expected immediate fixpoint, got %s" (Scenario.ending_to_string e));
  Alcotest.(check int) "no outcome shift" 0 (List.length result.Scenario.final_outcome)

let test_scenario_single_user_settles () =
  let actors = [ Actor.make ~id:0 ~name:"u" Actor.User ] in
  let result = Scenario.run ~actors ~available:Mechanism.available_to () in
  match result.Scenario.ending with
  | Scenario.Fixpoint _ -> ()
  | e -> Alcotest.failf "lone actor should settle, got %s" (Scenario.ending_to_string e)

let test_scenario_utilities_reported () =
  let actors =
    [ Actor.make ~id:3 ~name:"isp" Actor.Isp; Actor.make ~id:1 ~name:"u" Actor.User ]
  in
  let result = Scenario.run ~actors ~available:Mechanism.available_to () in
  Alcotest.(check (list int)) "all actors reported" [ 1; 3 ]
    (List.map fst result.Scenario.utilities)

(* ---------- Actor network ---------- *)

let test_actor_network_freezes_without_arrivals () =
  let rng = Rng.create 5 in
  let snaps = Actor_network.run rng Actor_network.default_config in
  let final = Actor_network.final_rigidity snaps in
  Alcotest.(check bool) "frozen" true (final > 0.9)

let test_actor_network_churn_prevents_freezing () =
  let rng = Rng.create 5 in
  let cfg = { Actor_network.default_config with Actor_network.arrival_rate = 1.0 } in
  let snaps = Actor_network.run rng cfg in
  let final = Actor_network.final_rigidity snaps in
  Alcotest.(check bool) "still fluid" true (final < 0.9);
  (* and the population grew *)
  match List.rev snaps with
  | last :: _ ->
    Alcotest.(check bool) "grew" true
      (last.Actor_network.population > Actor_network.default_config.Actor_network.initial_actors)
  | [] -> Alcotest.fail "no snapshots"

let test_actor_network_monotone_contrast () =
  (* rigidity under no churn must exceed rigidity under heavy churn *)
  let frozen =
    Actor_network.final_rigidity
      (Actor_network.run (Rng.create 1) Actor_network.default_config)
  in
  let churning =
    Actor_network.final_rigidity
      (Actor_network.run (Rng.create 1)
         { Actor_network.default_config with Actor_network.arrival_rate = 2.0 })
  in
  Alcotest.(check bool) "churn keeps it plastic" true (churning < frozen)

let test_actor_network_collision_disrupts () =
  let rng = Rng.create 9 in
  let cfg = { Actor_network.default_config with Actor_network.steps = 100 } in
  let snaps =
    Actor_network.collides rng cfg ~incumbent_size:30 ~incumbent_position:0.95
  in
  let at_step k =
    List.find (fun s -> s.Actor_network.step = k) snaps
  in
  let before = (at_step 49).Actor_network.alignment in
  let after = (at_step 51).Actor_network.alignment in
  Alcotest.(check bool) "collision breaks alignment" true
    (after < before -. 0.05)

let test_actor_network_snapshot_count () =
  let snaps =
    Actor_network.run (Rng.create 2)
      { Actor_network.default_config with Actor_network.steps = 10 }
  in
  Alcotest.(check int) "initial + steps" 11 (List.length snaps)

let test_actor_network_validation () =
  Alcotest.check_raises "bad coupling"
    (Invalid_argument "Actor_network: coupling not in (0,1]") (fun () ->
      ignore
        (Actor_network.run (Rng.create 1)
           { Actor_network.default_config with Actor_network.coupling = 0.0 }))

(* ---------- Metrics ---------- *)

let closed_design =
  {
    Metrics.design_name = "closed";
    control_points =
      [
        {
          Metrics.cp_name = "access";
          holder = Actor.Isp;
          alternatives = 1;
          reveals_presence = false;
        };
      ];
    value_flows = [];
    service_flows = [ (Actor.User, Actor.Isp) ];
    module_map =
      {
        Metrics.modules = [ ("dns", [ "machine-naming"; "trademark" ]) ];
        contested = [ "trademark" ];
      };
  }

let open_design =
  {
    Metrics.design_name = "open";
    control_points =
      [
        {
          Metrics.cp_name = "access";
          holder = Actor.Isp;
          alternatives = 5;
          reveals_presence = true;
        };
      ];
    value_flows = [ (Actor.User, Actor.Isp) ];
    service_flows = [ (Actor.User, Actor.Isp) ];
    module_map =
      {
        Metrics.modules =
          [ ("machine-names", [ "machine-naming" ]); ("brands", [ "trademark" ]) ];
        contested = [ "trademark" ];
      };
  }

let test_metrics_closed_vs_open () =
  let c = Metrics.score closed_design and o = Metrics.score open_design in
  check_float "closed choice" 0.0 c.Metrics.choice;
  check_float "open choice" 0.8 o.Metrics.choice;
  check_float "closed visibility" 0.0 c.Metrics.visibility;
  check_float "open visibility" 1.0 o.Metrics.visibility;
  check_float "closed isolation" 0.0 c.Metrics.isolation;
  check_float "open isolation" 1.0 o.Metrics.isolation;
  check_float "closed value flow" 0.0 c.Metrics.value_flow;
  check_float "open value flow" 1.0 o.Metrics.value_flow;
  Alcotest.(check bool) "overall ranks open first" true
    (o.Metrics.overall > c.Metrics.overall)

let test_metrics_empty_design_perfect () =
  let d =
    {
      Metrics.design_name = "empty";
      control_points = [];
      value_flows = [];
      service_flows = [];
      module_map = { Metrics.modules = []; contested = [] };
    }
  in
  let s = Metrics.score d in
  check_float "vacuous" 1.0 s.Metrics.overall


(* ---------- Guidelines ---------- *)

module Guidelines = Tussle_core.Guidelines

let test_guidelines_catalogue () =
  Alcotest.(check int) "ten guidelines" 10 (List.length Guidelines.catalogue);
  let ids = List.map (fun g -> g.Guidelines.g_id) Guidelines.catalogue in
  Alcotest.(check (list string)) "ordered ids"
    [ "G1"; "G2"; "G3"; "G4"; "G5"; "G6"; "G7"; "G8"; "G9"; "G10" ] ids

let test_guidelines_references () =
  check_float "open design perfect" 1.0
    (Guidelines.score Guidelines.open_design_reference);
  Alcotest.(check int) "open: no violations" 0
    (List.length (Guidelines.lint Guidelines.open_design_reference));
  check_float "walled garden near zero" 0.1
    (Guidelines.score Guidelines.walled_garden_reference);
  Alcotest.(check int) "walled garden: nine violations" 9
    (List.length (Guidelines.lint Guidelines.walled_garden_reference))

let test_guidelines_individual_checks () =
  let base = Guidelines.open_design_reference in
  let failing_g1 = { base with Guidelines.server_choices = 1 } in
  (match Guidelines.lint failing_g1 with
  | [ v ] -> Alcotest.(check string) "g1 caught" "G1" v.Guidelines.guideline.Guidelines.g_id
  | _ -> Alcotest.fail "expected exactly G1");
  let failing_g3 = { base with Guidelines.supports_e2e_encryption = false } in
  match Guidelines.lint failing_g3 with
  | [ v ] -> Alcotest.(check string) "g3 caught" "G3" v.Guidelines.guideline.Guidelines.g_id
  | _ -> Alcotest.fail "expected exactly G3"

let test_guidelines_violation_pp () =
  match Guidelines.lint Guidelines.walled_garden_reference with
  | v :: _ ->
    let s = Format.asprintf "%a" Guidelines.pp_violation v in
    Alcotest.(check bool) "mentions design" true
      (String.length s > 20)
  | [] -> Alcotest.fail "expected violations"


(* ---------- scenario withdrawal coverage ---------- *)

let test_scenario_withdraw_move () =
  (* an actor that deployed something it later regrets: force this by
     running the full government/user pair, which historically produces
     withdraw moves in the escalation *)
  let actors =
    [ Actor.make ~id:0 ~name:"isp" Actor.Isp;
      Actor.make ~id:1 ~name:"user" Actor.User;
      Actor.make ~id:2 ~name:"gov" Actor.Government ]
  in
  let result = Scenario.run ~max_rounds:25 ~actors ~available:Mechanism.available_to () in
  let withdrawals =
    List.concat_map
      (fun r ->
        List.filter
          (fun (_, m) -> match m with Scenario.Withdraw _ -> true | _ -> false)
          r.Scenario.moves)
      result.Scenario.rounds
  in
  Alcotest.(check bool) "withdrawals happen in the escalation" true
    (List.length withdrawals > 0)

let test_mechanism_find () =
  let deployed = [ Mechanism.tunnel; Mechanism.encryption ] in
  Alcotest.(check bool) "found" true
    (Mechanism.find deployed "tunnel" <> None);
  Alcotest.(check bool) "absent" true (Mechanism.find deployed "nat" = None)

let () =
  Alcotest.run "core"
    [
      ( "interest",
        [
          Alcotest.test_case "clamp/dedupe" `Quick test_interest_clamp_dedupe;
          Alcotest.test_case "alignment" `Quick test_interest_alignment;
          Alcotest.test_case "adverse vs different" `Quick
            test_interest_adverse_vs_different;
          Alcotest.test_case "combine" `Quick test_interest_combine;
          Alcotest.test_case "scale" `Quick test_interest_scale;
        ] );
      ( "actor",
        [
          Alcotest.test_case "defaults" `Quick test_actor_defaults;
          Alcotest.test_case "utility sign" `Quick test_actor_utility_sign;
          Alcotest.test_case "adverse pairs" `Quick test_actor_adverse_pairs;
          Alcotest.test_case "negative power" `Quick test_actor_negative_power;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "counter simple" `Quick test_mechanism_counter_simple;
          Alcotest.test_case "counter chain" `Quick test_mechanism_counter_chain;
          Alcotest.test_case "newest wins" `Quick test_mechanism_newest_wins_mutual;
          Alcotest.test_case "net effect" `Quick test_mechanism_net_effect;
          Alcotest.test_case "available to" `Quick test_mechanism_available_to;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "isp vs user" `Quick test_scenario_isp_vs_user_escalation;
          Alcotest.test_case "terminates" `Quick test_scenario_terminates;
          Alcotest.test_case "no actors" `Quick test_scenario_no_actors_fixpoint;
          Alcotest.test_case "lone actor settles" `Quick test_scenario_single_user_settles;
          Alcotest.test_case "utilities reported" `Quick test_scenario_utilities_reported;
        ] );
      ( "actor-network",
        [
          Alcotest.test_case "freezes without arrivals" `Quick
            test_actor_network_freezes_without_arrivals;
          Alcotest.test_case "churn prevents freezing" `Quick
            test_actor_network_churn_prevents_freezing;
          Alcotest.test_case "monotone contrast" `Quick
            test_actor_network_monotone_contrast;
          Alcotest.test_case "collision disrupts" `Quick
            test_actor_network_collision_disrupts;
          Alcotest.test_case "snapshot count" `Quick test_actor_network_snapshot_count;
          Alcotest.test_case "validation" `Quick test_actor_network_validation;
        ] );
      ( "scenario-extra",
        [
          Alcotest.test_case "withdraw moves" `Quick test_scenario_withdraw_move;
          Alcotest.test_case "mechanism find" `Quick test_mechanism_find;
        ] );
      ( "guidelines",
        [
          Alcotest.test_case "catalogue" `Quick test_guidelines_catalogue;
          Alcotest.test_case "references" `Quick test_guidelines_references;
          Alcotest.test_case "individual checks" `Quick
            test_guidelines_individual_checks;
          Alcotest.test_case "violation pp" `Quick test_guidelines_violation_pp;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "closed vs open" `Quick test_metrics_closed_vs_open;
          Alcotest.test_case "empty design" `Quick test_metrics_empty_design_perfect;
        ] );
    ]
