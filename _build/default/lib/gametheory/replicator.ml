type state = float array

let check g state =
  let n = Normal_form.rows g in
  if Normal_form.cols g <> n then invalid_arg "Replicator: game must be square";
  if Array.length state <> n then invalid_arg "Replicator: state length";
  n

let fitness g state i =
  let n = Array.length state in
  let acc = ref 0.0 in
  for j = 0 to n - 1 do
    let u, _ = Normal_form.payoff g i j in
    acc := !acc +. (state.(j) *. u)
  done;
  !acc

let mean_fitness g state =
  let n = check g state in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (state.(i) *. fitness g state i)
  done;
  !acc

let step g state =
  let n = check g state in
  (* shift payoffs so that all fitnesses are positive; this preserves
     the discrete replicator's fixed points (ratios of fitnesses change
     monotonically identically for all strategies) *)
  let fits = Array.init n (fun i -> fitness g state i) in
  let low = Array.fold_left Float.min infinity fits in
  let shift = if low <= 0.0 then 1.0 -. low else 0.0 in
  let shifted = Array.map (fun f -> f +. shift) fits in
  let avg = ref 0.0 in
  for i = 0 to n - 1 do
    avg := !avg +. (state.(i) *. shifted.(i))
  done;
  if !avg <= 0.0 then Array.copy state
  else begin
    let next = Array.init n (fun i -> state.(i) *. shifted.(i) /. !avg) in
    let s = Array.fold_left ( +. ) 0.0 next in
    Array.map (fun x -> x /. s) next
  end

let evolve ?(steps = 100) g state =
  let rec go k cur acc =
    if k = 0 then List.rev acc
    else
      let next = step g cur in
      go (k - 1) next (next :: acc)
  in
  go steps state [ state ]

let l1_distance a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc

let fixed_point ?(steps = 100_000) ?(tolerance = 1e-9) g state =
  let rec go k cur =
    if k = 0 then None
    else
      let next = step g cur in
      if l1_distance cur next < tolerance then Some next else go (k - 1) next
  in
  go steps state

let is_evolutionarily_stable_pure g s ~invaders =
  let pay a b = fst (Normal_form.payoff g a b) in
  List.for_all
    (fun i ->
      i = s
      || pay s s > pay i s
      || (pay s s = pay i s && pay s i > pay i i))
    invaders
