let epsilon = 1e-10

let solve a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then invalid_arg "Linalg.solve: shape";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Linalg.solve: shape")
    a;
  (* augmented copy *)
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let ok = ref true in
  (let rec eliminate col =
     if col < n && !ok then begin
       (* partial pivot *)
       let pivot = ref col in
       for r = col + 1 to n - 1 do
         if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
       done;
       if Float.abs m.(!pivot).(col) < epsilon then ok := false
       else begin
         let tmp = m.(col) in
         m.(col) <- m.(!pivot);
         m.(!pivot) <- tmp;
         for r = 0 to n - 1 do
           if r <> col then begin
             let factor = m.(r).(col) /. m.(col).(col) in
             for c = col to n do
               m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
             done
           end
         done;
         eliminate (col + 1)
       end
     end
   in
   eliminate 0);
  if not !ok then None
  else Some (Array.init n (fun i -> m.(i).(n) /. m.(i).(i)))

let mat_vec a x =
  Array.map
    (fun row ->
      if Array.length row <> Array.length x then
        invalid_arg "Linalg.mat_vec: shape";
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Linalg.dot: shape";
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. y.(i))) x;
  !acc
