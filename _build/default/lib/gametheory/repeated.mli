(** Repeated two-player games: tussle "at run time" rather than one-shot.

    The paper observes that many Internet tussles (ISP peering above
    all) are not one-shot: parties meet again, and that is what
    disciplines them.  This module plays a stage game repeatedly between
    strategy automata and reports discounted or average payoffs; the
    peering experiment shows tit-for-tat sustaining the cooperation that
    the one-shot equilibrium destroys. *)

type strategy = {
  name : string;
  first : int;  (** opening move *)
  next : own_history:int list -> opp_history:int list -> int;
  (** next move given full histories, most recent first *)
}

val all_cooperate : strategy
val all_defect : strategy
val tit_for_tat : strategy
val grim_trigger : strategy
val pavlov : strategy
(** Win-stay lose-shift on the PD payoff convention (0 = cooperate). *)

val random_strategy : Tussle_prelude.Rng.t -> p_cooperate:float -> strategy

type match_result = {
  payoff_a : float;  (** total payoff (discounted if delta < 1) *)
  payoff_b : float;
  moves : (int * int) list;  (** chronological *)
}

val play :
  ?delta:float ->
  rounds:int ->
  Normal_form.t ->
  strategy ->
  strategy ->
  match_result
(** [play ~rounds g sa sb].  [delta] is the per-round discount factor
    (default 1.0 = plain sum).  Raises [Invalid_argument] on
    [rounds <= 0] or [delta] outside (0, 1]. *)

val average_payoffs : match_result -> rounds:int -> float * float

val tournament :
  ?delta:float ->
  rounds:int ->
  Normal_form.t ->
  strategy list ->
  (string * float) list
(** Round-robin (including self-play), total payoff per strategy,
    sorted descending — the Axelrod experiment shape. *)

val cooperation_rate : match_result -> float
(** Fraction of moves (both players) that were strategy 0
    ("cooperate"). *)
