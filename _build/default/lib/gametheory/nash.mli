(** Mixed-strategy Nash equilibria for bimatrix games.

    Two computations: the closed-form fully-mixed equilibrium of a 2×2
    game, and support enumeration for small games (the classic
    algorithm: for every pair of equal-size supports, solve the
    indifference system and check feasibility).  Support enumeration is
    exponential and intended for the taxonomy-size games the
    experiments use (≤ 4×4 or so). *)

type profile = { p : float array; q : float array }
(** Row and column mixed strategies. *)

val mixed_2x2 : Normal_form.t -> profile option
(** The fully-mixed equilibrium of a 2×2 game, when one exists with both
    strategies strictly mixed (e.g. matching pennies, chicken).  [None]
    when indifference cannot be achieved with interior probabilities.
    Raises [Invalid_argument] if the game is not 2×2. *)

val support_enumeration : ?max_support:int -> Normal_form.t -> profile list
(** All equilibria found over equal-size supports up to [max_support]
    (default: min(rows, cols)).  Pure equilibria are included (support
    size 1).  Complete for nondegenerate games. *)

val is_epsilon_nash : Normal_form.t -> profile -> epsilon:float -> bool
(** No player can gain more than [epsilon] by a pure deviation. *)

val pp_profile : Format.formatter -> profile -> unit
