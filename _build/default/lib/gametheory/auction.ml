type bid = { bidder : int; amount : float }

type outcome = { winners : (int * float) list; revenue : float }

let validate bids name =
  if bids = [] then invalid_arg (name ^ ": no bids");
  List.iter
    (fun b -> if b.amount < 0.0 then invalid_arg (name ^ ": negative bid"))
    bids

(* sort: highest amount first, ties by lowest bidder id *)
let ranked bids =
  List.sort
    (fun a b ->
      match compare b.amount a.amount with
      | 0 -> compare a.bidder b.bidder
      | c -> c)
    bids

let first_price bids =
  validate bids "Auction.first_price";
  match ranked bids with
  | [] -> assert false
  | top :: _ ->
    { winners = [ (top.bidder, top.amount) ]; revenue = top.amount }

let second_price bids =
  validate bids "Auction.second_price";
  match ranked bids with
  | [] -> assert false
  | [ only ] -> { winners = [ (only.bidder, 0.0) ]; revenue = 0.0 }
  | top :: second :: _ ->
    { winners = [ (top.bidder, second.amount) ]; revenue = second.amount }

let vcg_multiunit ~units bids =
  if units <= 0 then invalid_arg "Auction.vcg_multiunit: non-positive units";
  validate bids "Auction.vcg_multiunit";
  let sorted = ranked bids in
  let rec split k = function
    | rest when k = 0 -> ([], rest)
    | [] -> ([], [])
    | b :: rest ->
      let won, lost = split (k - 1) rest in
      (b :: won, lost)
  in
  let won, lost = split units sorted in
  let price = match lost with [] -> 0.0 | l :: _ -> l.amount in
  let winners = List.map (fun b -> (b.bidder, price)) won in
  { winners; revenue = price *. float_of_int (List.length winners) }

let utility ~auction ~valuation ~bid ~bidder ~others =
  let outcome = auction ({ bidder; amount = bid } :: others) in
  match List.assoc_opt bidder outcome.winners with
  | Some price -> valuation -. price
  | None -> 0.0

let truthful_is_dominant ~auction ~valuation ~bidder ~others ~deviations =
  let truthful = utility ~auction ~valuation ~bid:valuation ~bidder ~others in
  List.for_all
    (fun d -> truthful +. 1e-9 >= utility ~auction ~valuation ~bid:d ~bidder ~others)
    deviations
