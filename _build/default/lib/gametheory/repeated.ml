type strategy = {
  name : string;
  first : int;
  next : own_history:int list -> opp_history:int list -> int;
}

let all_cooperate =
  { name = "all-c"; first = 0; next = (fun ~own_history:_ ~opp_history:_ -> 0) }

let all_defect =
  { name = "all-d"; first = 1; next = (fun ~own_history:_ ~opp_history:_ -> 1) }

let tit_for_tat =
  {
    name = "tit-for-tat";
    first = 0;
    next =
      (fun ~own_history:_ ~opp_history ->
        match opp_history with last :: _ -> last | [] -> 0);
  }

let grim_trigger =
  {
    name = "grim";
    first = 0;
    next =
      (fun ~own_history:_ ~opp_history ->
        if List.exists (fun m -> m = 1) opp_history then 1 else 0);
  }

let pavlov =
  {
    name = "pavlov";
    first = 0;
    next =
      (fun ~own_history ~opp_history ->
        match (own_history, opp_history) with
        | own :: _, opp :: _ ->
          (* win-stay (opp cooperated), lose-shift (opp defected) *)
          if opp = 0 then own else 1 - own
        | _, _ -> 0);
  }

let random_strategy rng ~p_cooperate =
  {
    name = Printf.sprintf "random(%.2f)" p_cooperate;
    first = (if Tussle_prelude.Rng.bernoulli rng p_cooperate then 0 else 1);
    next =
      (fun ~own_history:_ ~opp_history:_ ->
        if Tussle_prelude.Rng.bernoulli rng p_cooperate then 0 else 1);
  }

type match_result = {
  payoff_a : float;
  payoff_b : float;
  moves : (int * int) list;
}

let play ?(delta = 1.0) ~rounds g sa sb =
  if rounds <= 0 then invalid_arg "Repeated.play: non-positive rounds";
  if delta <= 0.0 || delta > 1.0 then invalid_arg "Repeated.play: bad delta";
  if Normal_form.rows g <> 2 || Normal_form.cols g <> 2 then
    invalid_arg "Repeated.play: stage game must be 2x2";
  let rec go round ha hb pa pb disc acc =
    if round >= rounds then
      { payoff_a = pa; payoff_b = pb; moves = List.rev acc }
    else begin
      let ma =
        if round = 0 then sa.first else sa.next ~own_history:ha ~opp_history:hb
      in
      let mb =
        if round = 0 then sb.first else sb.next ~own_history:hb ~opp_history:ha
      in
      let ua, ub = Normal_form.payoff g ma mb in
      go (round + 1) (ma :: ha) (mb :: hb)
        (pa +. (disc *. ua))
        (pb +. (disc *. ub))
        (disc *. delta)
        ((ma, mb) :: acc)
    end
  in
  go 0 [] [] 0.0 0.0 1.0 []

let average_payoffs r ~rounds =
  let n = float_of_int rounds in
  (r.payoff_a /. n, r.payoff_b /. n)

let tournament ?delta ~rounds g strategies =
  let scores = Hashtbl.create 8 in
  let bump name x =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt scores name) in
    Hashtbl.replace scores name (cur +. x)
  in
  List.iter (fun s -> bump s.name 0.0) strategies;
  List.iteri
    (fun i sa ->
      List.iteri
        (fun j sb ->
          if j >= i then begin
            let r = play ?delta ~rounds g sa sb in
            if i = j then bump sa.name r.payoff_a
            else begin
              bump sa.name r.payoff_a;
              bump sb.name r.payoff_b
            end
          end)
        strategies)
    strategies;
  Hashtbl.fold (fun name score acc -> (name, score) :: acc) scores []
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b a with 0 -> compare na nb | c -> c)

let cooperation_rate r =
  match r.moves with
  | [] -> 0.0
  | moves ->
    let coop =
      List.fold_left
        (fun acc (a, b) ->
          acc + (if a = 0 then 1 else 0) + if b = 0 then 1 else 0)
        0 moves
    in
    float_of_int coop /. float_of_int (2 * List.length moves)
