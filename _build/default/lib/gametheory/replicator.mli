(** Replicator dynamics: the paper's "bounded rationality / evolutionary
    game theory" direction (§II-B, Binmore).

    A population of boundedly rational actors — "ill-informed, myopic"
    — shifts toward strategies that currently earn above the population
    average.  Discrete-time replicator update on a symmetric game. *)

type state = float array
(** Population share per strategy; a probability distribution. *)

val step : Normal_form.t -> state -> state
(** One replicator update using the row-player payoffs of a symmetric
    game against the current population mixture.  Payoffs are shifted to
    be positive internally, which leaves the dynamics' fixed points and
    orbits unchanged.  Raises [Invalid_argument] if the game is not
    square or the state has the wrong length. *)

val evolve : ?steps:int -> Normal_form.t -> state -> state list
(** Trajectory (including the initial state), default 100 steps. *)

val fixed_point :
  ?steps:int -> ?tolerance:float -> Normal_form.t -> state -> state option
(** Run until successive states differ by less than [tolerance] in L1
    (default 1e-9), or [None] after [steps] (default 100_000). *)

val mean_fitness : Normal_form.t -> state -> float
(** Average payoff in the population. *)

val is_evolutionarily_stable_pure :
  Normal_form.t -> int -> invaders:int list -> bool
(** Crude ESS check for a pure strategy against a list of pure invaders:
    E(s,s) > E(i,s), or E(s,s) = E(i,s) and E(s,i) > E(i,i). *)
