(** Minimal dense linear algebra: just enough to solve the small systems
    that support-enumeration Nash computation needs. *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [None] when [a] is (numerically) singular.  [a] and [b]
    are not mutated.  Raises [Invalid_argument] on shape mismatch. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val dot : float array -> float array -> float
(** Inner product.  Raises on length mismatch. *)
