lib/gametheory/replicator.mli: Normal_form
