lib/gametheory/bestresponse.mli:
