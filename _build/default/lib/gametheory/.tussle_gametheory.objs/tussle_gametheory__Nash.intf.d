lib/gametheory/nash.mli: Format Normal_form
