lib/gametheory/nash.ml: Array Float Format Linalg List Normal_form Option
