lib/gametheory/auction.mli:
