lib/gametheory/repeated.ml: Hashtbl List Normal_form Option Printf Tussle_prelude
