lib/gametheory/zerosum.mli:
