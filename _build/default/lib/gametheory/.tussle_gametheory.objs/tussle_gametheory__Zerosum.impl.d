lib/gametheory/zerosum.ml: Array Float
