lib/gametheory/normal_form.ml: Array Float Format Fun List
