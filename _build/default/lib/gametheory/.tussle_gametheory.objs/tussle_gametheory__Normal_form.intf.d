lib/gametheory/normal_form.mli: Format
