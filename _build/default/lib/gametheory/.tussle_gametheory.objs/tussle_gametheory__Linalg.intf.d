lib/gametheory/linalg.mli:
