lib/gametheory/replicator.ml: Array Float List Normal_form
