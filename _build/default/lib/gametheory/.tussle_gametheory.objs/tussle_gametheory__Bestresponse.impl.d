lib/gametheory/bestresponse.ml: Array List
