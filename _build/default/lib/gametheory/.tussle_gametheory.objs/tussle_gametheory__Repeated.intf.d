lib/gametheory/repeated.mli: Normal_form Tussle_prelude
