lib/gametheory/linalg.ml: Array Float
