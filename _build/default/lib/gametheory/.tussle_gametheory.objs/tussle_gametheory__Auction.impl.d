lib/gametheory/auction.ml: List
