(** Best-response dynamics for finite n-player games given by a payoff
    oracle.

    This is the workhorse behind the investment experiments (the QoS
    deployment game of §VII): each player in turn switches to a best
    response against the others' current choices until no one wants to
    move — a pure Nash equilibrium — or a cycle is detected. *)

type game = {
  players : int;
  strategies : int array;  (** per-player strategy count *)
  payoff : int -> int array -> float;
      (** [payoff p profile] = player [p]'s payoff *)
}

val validate : game -> unit
(** Raises [Invalid_argument] on non-positive counts or length
    mismatch. *)

val best_response : game -> int -> int array -> int
(** Player's best pure strategy against a fixed profile (own entry
    ignored); ties to the lowest index. *)

val is_pure_nash : game -> int array -> bool

val converge :
  ?max_sweeps:int -> game -> init:int array -> int array option
(** Round-robin best-response sweeps from [init].  [Some profile] when a
    full sweep produces no change (pure Nash); [None] if [max_sweeps]
    (default 1000) elapse — the dynamics cycle. *)

val all_pure_nash : game -> int array list
(** Exhaustive enumeration; exponential, for small games only. *)

val social_welfare : game -> int array -> float
(** Sum of payoffs at a profile. *)
