type game = {
  players : int;
  strategies : int array;
  payoff : int -> int array -> float;
}

let validate g =
  if g.players <= 0 then invalid_arg "Bestresponse: non-positive players";
  if Array.length g.strategies <> g.players then
    invalid_arg "Bestresponse: strategies length mismatch";
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Bestresponse: empty strategy set")
    g.strategies

let best_response g p profile =
  let scratch = Array.copy profile in
  let best = ref 0 and best_u = ref neg_infinity in
  for s = 0 to g.strategies.(p) - 1 do
    scratch.(p) <- s;
    let u = g.payoff p scratch in
    if u > !best_u +. 1e-12 then begin
      best := s;
      best_u := u
    end
  done;
  !best

let is_pure_nash g profile =
  let ok = ref true in
  for p = 0 to g.players - 1 do
    let current = g.payoff p profile in
    let scratch = Array.copy profile in
    for s = 0 to g.strategies.(p) - 1 do
      scratch.(p) <- s;
      if g.payoff p scratch > current +. 1e-9 then ok := false
    done
  done;
  !ok

let converge ?(max_sweeps = 1000) g ~init =
  validate g;
  if Array.length init <> g.players then invalid_arg "Bestresponse.converge";
  let profile = Array.copy init in
  let rec sweep k =
    if k = 0 then None
    else begin
      let changed = ref false in
      for p = 0 to g.players - 1 do
        let br = best_response g p profile in
        if br <> profile.(p) then begin
          profile.(p) <- br;
          changed := true
        end
      done;
      if !changed then sweep (k - 1) else Some (Array.copy profile)
    end
  in
  sweep max_sweeps

let all_pure_nash g =
  validate g;
  let profile = Array.make g.players 0 in
  let acc = ref [] in
  let rec enumerate p =
    if p = g.players then begin
      if is_pure_nash g profile then acc := Array.copy profile :: !acc
    end
    else
      for s = 0 to g.strategies.(p) - 1 do
        profile.(p) <- s;
        enumerate (p + 1)
      done
  in
  enumerate 0;
  List.rev !acc

let social_welfare g profile =
  let acc = ref 0.0 in
  for p = 0 to g.players - 1 do
    acc := !acc +. g.payoff p profile
  done;
  !acc
