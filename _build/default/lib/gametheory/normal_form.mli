(** Two-player normal-form (bimatrix) games.

    The paper (§II-B) frames tussle environments as games "rang\[ing\]
    from purely conflicting games (so called zero-sum games) ... to
    coordination games where actors have a common goal but fail to
    coordinate."  This module provides the representation, the standard
    taxonomy instances used by the experiments, and pure-strategy
    analysis; mixed equilibria live in {!Nash} and {!Zerosum}. *)

type t
(** A bimatrix game: row player payoffs [a], column player payoffs [b]. *)

val make : float array array -> float array array -> t
(** [make a b].  Both matrices must be non-empty and of identical,
    rectangular shape; raises [Invalid_argument] otherwise. *)

val zero_sum : float array array -> t
(** [zero_sum a] builds the game where the column player's payoff is
    [-a]. *)

val symmetric : float array array -> t
(** [symmetric a] gives the column player the transposed payoffs: both
    players face the same strategic situation. *)

val rows : t -> int
val cols : t -> int

val payoff : t -> int -> int -> float * float
(** [payoff g i j] = (row payoff, column payoff) at pure profile (i,j). *)

val row_matrix : t -> float array array
val col_matrix : t -> float array array

val is_zero_sum : t -> bool

val best_responses_row : t -> int -> int list
(** Row strategies maximizing row payoff against column's pure [j]. *)

val best_responses_col : t -> int -> int list

val pure_nash : t -> (int * int) list
(** All pure-strategy Nash equilibria, lexicographic order. *)

val strictly_dominated_rows : t -> int list
(** Rows strictly dominated by another pure row. *)

val strictly_dominated_cols : t -> int list

val expected_payoff : t -> float array -> float array -> float * float
(** Expected payoffs under mixed strategies (must be distributions of the
    right length; raises otherwise). *)

(** {2 The taxonomy instances used throughout the experiments} *)

val prisoners_dilemma : t
(** C/D with temptation 5, reward 3, punishment 1, sucker 0 — the
    one-shot peering/congestion tussle. *)

val matching_pennies : t
(** Purely conflicting (zero-sum), no pure equilibrium. *)

val pure_coordination : t
(** Two equilibria, same payoff: actors merely need to agree (standards
    choice). *)

val battle_of_sexes : t
(** Coordination with conflicting preferences — the "different but not
    adverse" interests of §V-D. *)

val chicken : t
(** Escalation game: encryption-vs-blocking brinkmanship of §VI-A. *)

val peering_game : t
(** Symmetric ISP peering: Peer/Refuse, where mutual peering saves
    transit cost but unilateral refusal free-rides (a PD variant with
    the paper's economic framing). *)

val pp : Format.formatter -> t -> unit
