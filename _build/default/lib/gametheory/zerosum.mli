(** Zero-sum game solving: the "purely conflicting" pole of the paper's
    game taxonomy, solved to the von Neumann minimax value.

    Solver: fictitious play (Brown 1951; Robinson 1951 proved
    convergence for zero-sum games).  Deterministic — ties are broken
    toward the lowest index, and the empirical mixtures converge to
    optimal strategies with the game value bracketed at every step. *)

type solution = {
  value_lower : float;  (** best guaranteed row payoff so far *)
  value_upper : float;  (** best column cap so far *)
  row_strategy : float array;  (** empirical mixture *)
  col_strategy : float array;
  iterations : int;
}

val solve : ?iterations:int -> float array array -> solution
(** [solve a] runs fictitious play on the row-payoff matrix [a]
    (default 10_000 iterations).  [value_lower <= v* <= value_upper]. *)

val value_estimate : solution -> float
(** Midpoint of the bracket. *)

val gap : solution -> float
(** [value_upper -. value_lower]; convergence diagnostic. *)

val saddle_point : float array array -> (int * int) option
(** Pure saddle point (maximin = minimax in pure strategies), if any. *)
