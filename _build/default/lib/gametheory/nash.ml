type profile = { p : float array; q : float array }

let tol = 1e-9

let mixed_2x2 g =
  if Normal_form.rows g <> 2 || Normal_form.cols g <> 2 then
    invalid_arg "Nash.mixed_2x2: game must be 2x2";
  let a = Normal_form.row_matrix g and b = Normal_form.col_matrix g in
  (* Column mixes q to make row indifferent:
     q a00 + (1-q) a01 = q a10 + (1-q) a11. *)
  let denom_q = a.(0).(0) -. a.(0).(1) -. a.(1).(0) +. a.(1).(1) in
  let denom_p = b.(0).(0) -. b.(1).(0) -. b.(0).(1) +. b.(1).(1) in
  if Float.abs denom_q < tol || Float.abs denom_p < tol then None
  else begin
    let q = (a.(1).(1) -. a.(0).(1)) /. denom_q in
    let p = (b.(1).(1) -. b.(1).(0)) /. denom_p in
    if p > tol && p < 1.0 -. tol && q > tol && q < 1.0 -. tol then
      Some { p = [| p; 1.0 -. p |]; q = [| q; 1.0 -. q |] }
    else None
  end

(* enumerate k-subsets of [0..n-1] *)
let subsets n k =
  let rec go start k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun first ->
          List.map (fun rest -> first :: rest) (go (first + 1) (k - 1)))
        (List.init (n - start - k + 1) (fun i -> start + i))
  in
  go 0 k

(* Given row support sr and col support sc (equal size k), solve for the
   column mixture q on sc that makes every row in sr indifferent, plus
   the common value v.  Unknowns: q_(sc) (k of them) and v. *)
let solve_indifference payoff_matrix support other_support =
  let k = List.length support in
  let sr = Array.of_list support and sc = Array.of_list other_support in
  (* equations: for each i in sr: sum_j A[i][sc_j] q_j - v = 0
     plus: sum_j q_j = 1 *)
  let dim = k + 1 in
  let mat = Array.make_matrix dim dim 0.0 in
  let rhs = Array.make dim 0.0 in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      mat.(r).(c) <- payoff_matrix.(sr.(r)).(sc.(c))
    done;
    mat.(r).(k) <- -1.0
  done;
  for c = 0 to k - 1 do
    mat.(k).(c) <- 1.0
  done;
  rhs.(k) <- 1.0;
  match Linalg.solve mat rhs with
  | None -> None
  | Some sol ->
    let q = Array.sub sol 0 k and v = sol.(k) in
    if Array.for_all (fun x -> x >= -.tol) q then Some (q, v) else None

let expand n support weights =
  let full = Array.make n 0.0 in
  List.iteri (fun idx i -> full.(i) <- Float.max 0.0 weights.(idx)) support;
  (* renormalize tiny numeric drift *)
  let s = Array.fold_left ( +. ) 0.0 full in
  if s > 0.0 then Array.map (fun x -> x /. s) full else full

let no_profitable_deviation payoff_matrix mixed_other v ~n =
  (* every pure strategy payoff <= v + tol against the other's mixture *)
  let ok = ref true in
  for i = 0 to n - 1 do
    let u = ref 0.0 in
    Array.iteri
      (fun j w -> u := !u +. (w *. payoff_matrix.(i).(j)))
      mixed_other;
    if !u > v +. 1e-6 then ok := false
  done;
  !ok

let support_enumeration ?max_support g =
  let n = Normal_form.rows g and m = Normal_form.cols g in
  let kmax = Option.value ~default:(min n m) max_support in
  let a = Normal_form.row_matrix g and b = Normal_form.col_matrix g in
  let results = ref [] in
  for k = 1 to kmax do
    let row_supports = subsets n k and col_supports = subsets m k in
    List.iter
      (fun sr ->
        List.iter
          (fun sc ->
            (* q makes rows in sr indifferent (using A);
               p makes cols in sc indifferent (using B^T). *)
            let bt = Array.init m (fun j -> Array.init n (fun i -> b.(i).(j))) in
            match (solve_indifference a sr sc, solve_indifference bt sc sr) with
            | Some (q_s, va), Some (p_s, vb) ->
              let q = expand m sc q_s and p = expand n sr p_s in
              if
                no_profitable_deviation a q va ~n
                && no_profitable_deviation bt p vb ~n:m
              then results := { p; q } :: !results
            | _, _ -> ())
          col_supports)
      row_supports
  done;
  (* dedupe near-identical profiles *)
  let close x y =
    Array.length x = Array.length y
    && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) x y
  in
  List.fold_left
    (fun acc pr ->
      if List.exists (fun pr' -> close pr.p pr'.p && close pr.q pr'.q) acc then acc
      else pr :: acc)
    [] (List.rev !results)
  |> List.rev

let is_epsilon_nash g { p; q } ~epsilon =
  let up, uq = Normal_form.expected_payoff g p q in
  let n = Normal_form.rows g and m = Normal_form.cols g in
  let pure k len = Array.init len (fun i -> if i = k then 1.0 else 0.0) in
  let row_ok = ref true in
  for i = 0 to n - 1 do
    let u, _ = Normal_form.expected_payoff g (pure i n) q in
    if u > up +. epsilon then row_ok := false
  done;
  let col_ok = ref true in
  for j = 0 to m - 1 do
    let _, u = Normal_form.expected_payoff g p (pure j m) in
    if u > uq +. epsilon then col_ok := false
  done;
  !row_ok && !col_ok

let pp_profile ppf { p; q } =
  let pp_arr ppf a =
    Array.iteri
      (fun i x -> Format.fprintf ppf "%s%.3f" (if i > 0 then " " else "") x)
      a
  in
  Format.fprintf ppf "p=[%a] q=[%a]" pp_arr p pp_arr q
