type t = { a : float array array; b : float array array }

let validate m name =
  let r = Array.length m in
  if r = 0 then invalid_arg (name ^ ": empty matrix");
  let c = Array.length m.(0) in
  if c = 0 then invalid_arg (name ^ ": empty row");
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg (name ^ ": ragged matrix"))
    m;
  (r, c)

let make a b =
  let ra, ca = validate a "Normal_form.make" in
  let rb, cb = validate b "Normal_form.make" in
  if ra <> rb || ca <> cb then invalid_arg "Normal_form.make: shape mismatch";
  { a = Array.map Array.copy a; b = Array.map Array.copy b }

let zero_sum a = make a (Array.map (Array.map Float.neg) a)

let symmetric a =
  let r, c = validate a "Normal_form.symmetric" in
  if r <> c then invalid_arg "Normal_form.symmetric: must be square";
  let b = Array.init r (fun i -> Array.init c (fun j -> a.(j).(i))) in
  make a b

let rows g = Array.length g.a

let cols g = Array.length g.a.(0)

let payoff g i j =
  if i < 0 || i >= rows g || j < 0 || j >= cols g then
    invalid_arg "Normal_form.payoff: out of range";
  (g.a.(i).(j), g.b.(i).(j))

let row_matrix g = Array.map Array.copy g.a

let col_matrix g = Array.map Array.copy g.b

let is_zero_sum g =
  let ok = ref true in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> if Float.abs (v +. g.b.(i).(j)) > 1e-9 then ok := false)
        row)
    g.a;
  !ok

let argmaxes f n =
  let best = ref neg_infinity and acc = ref [] in
  for i = 0 to n - 1 do
    let v = f i in
    if v > !best +. 1e-12 then begin
      best := v;
      acc := [ i ]
    end
    else if Float.abs (v -. !best) <= 1e-12 then acc := i :: !acc
  done;
  List.rev !acc

let best_responses_row g j =
  if j < 0 || j >= cols g then invalid_arg "Normal_form.best_responses_row";
  argmaxes (fun i -> g.a.(i).(j)) (rows g)

let best_responses_col g i =
  if i < 0 || i >= rows g then invalid_arg "Normal_form.best_responses_col";
  argmaxes (fun j -> g.b.(i).(j)) (cols g)

let pure_nash g =
  let acc = ref [] in
  for i = rows g - 1 downto 0 do
    for j = cols g - 1 downto 0 do
      if List.mem i (best_responses_row g j) && List.mem j (best_responses_col g i)
      then acc := (i, j) :: !acc
    done
  done;
  !acc

let strictly_dominated_rows g =
  let n = rows g and m = cols g in
  let dominated i =
    let dominates k =
      k <> i
      &&
      let strict = ref true in
      for j = 0 to m - 1 do
        if g.a.(k).(j) <= g.a.(i).(j) then strict := false
      done;
      !strict
    in
    List.exists dominates (List.init n Fun.id)
  in
  List.filter dominated (List.init n Fun.id)

let strictly_dominated_cols g =
  let n = rows g and m = cols g in
  let dominated j =
    let dominates k =
      k <> j
      &&
      let strict = ref true in
      for i = 0 to n - 1 do
        if g.b.(i).(k) <= g.b.(i).(j) then strict := false
      done;
      !strict
    in
    List.exists dominates (List.init m Fun.id)
  in
  List.filter dominated (List.init m Fun.id)

let check_dist name p n =
  if Array.length p <> n then invalid_arg (name ^ ": wrong length");
  let s = Array.fold_left ( +. ) 0.0 p in
  Array.iter (fun x -> if x < -1e-9 then invalid_arg (name ^ ": negative")) p;
  if Float.abs (s -. 1.0) > 1e-6 then invalid_arg (name ^ ": not a distribution")

let expected_payoff g p q =
  check_dist "Normal_form.expected_payoff(row)" p (rows g);
  check_dist "Normal_form.expected_payoff(col)" q (cols g);
  let ea = ref 0.0 and eb = ref 0.0 in
  for i = 0 to rows g - 1 do
    for j = 0 to cols g - 1 do
      let w = p.(i) *. q.(j) in
      ea := !ea +. (w *. g.a.(i).(j));
      eb := !eb +. (w *. g.b.(i).(j))
    done
  done;
  (!ea, !eb)

(* 0 = Cooperate, 1 = Defect *)
let prisoners_dilemma =
  make [| [| 3.0; 0.0 |]; [| 5.0; 1.0 |] |] [| [| 3.0; 5.0 |]; [| 0.0; 1.0 |] |]

let matching_pennies = zero_sum [| [| 1.0; -1.0 |]; [| -1.0; 1.0 |] |]

let pure_coordination =
  make [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |]

let battle_of_sexes =
  make [| [| 2.0; 0.0 |]; [| 0.0; 1.0 |] |] [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |]

let chicken =
  make [| [| 0.0; -1.0 |]; [| 1.0; -10.0 |] |]
    [| [| 0.0; 1.0 |]; [| -1.0; -10.0 |] |]

(* 0 = Peer, 1 = Refuse.  Mutual peering saves transit cost (payoff 4);
   refusing against a peering rival free-rides on their openness (5 vs 0);
   mutual refusal forces both onto paid transit (1). *)
let peering_game =
  make [| [| 4.0; 0.0 |]; [| 5.0; 1.0 |] |] [| [| 4.0; 5.0 |]; [| 0.0; 1.0 |] |]

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  for i = 0 to rows g - 1 do
    for j = 0 to cols g - 1 do
      Format.fprintf ppf "(%g,%g) " g.a.(i).(j) g.b.(i).(j)
    done;
    if i < rows g - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
