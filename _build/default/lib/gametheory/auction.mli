(** Sealed-bid auctions and VCG: the paper's "prescriptive mechanism
    design" thread (§II-B, Vickrey 1961).

    A Vickrey (second-price) auction is the canonical tussle-free
    mechanism: truthful bidding is dominant, so the information sub-game
    has no tussle left in it.  First-price is the contrast case — bid
    shading reintroduces strategic play.  The multi-unit VCG allocates
    [k] identical items and charges each winner the externality they
    impose. *)

type bid = { bidder : int; amount : float }

type outcome = {
  winners : (int * float) list;  (** (bidder, price paid) *)
  revenue : float;
}

val first_price : bid list -> outcome
(** Highest bid wins and pays its own bid.  Ties go to the lowest bidder
    id.  Raises [Invalid_argument] on an empty list or negative bids. *)

val second_price : bid list -> outcome
(** Vickrey: highest bid wins, pays the second-highest bid (0 with a
    single bidder). *)

val vcg_multiunit : units:int -> bid list -> outcome
(** [units] identical items, unit demand per bidder: the top [units]
    bidders win; each pays the highest losing bid (the externality under
    unit demand).  With fewer bidders than units, winners pay 0. *)

val truthful_is_dominant :
  auction:(bid list -> outcome) ->
  valuation:float ->
  bidder:int ->
  others:bid list ->
  deviations:float list ->
  bool
(** Utility check used by tests and the bench: does bidding [valuation]
    do at least as well as every bid in [deviations], for this bidder,
    against fixed [others]?  (True for [second_price], false in general
    for [first_price].) *)

val utility :
  auction:(bid list -> outcome) ->
  valuation:float ->
  bid:float ->
  bidder:int ->
  others:bid list ->
  float
(** The bidder's quasilinear utility (valuation - price if they win, 0
    otherwise). *)
