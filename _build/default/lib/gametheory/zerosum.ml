type solution = {
  value_lower : float;
  value_upper : float;
  row_strategy : float array;
  col_strategy : float array;
  iterations : int;
}

let argmax xs =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > xs.(!best) then best := i) xs;
  !best

let argmin xs =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < xs.(!best) then best := i) xs;
  !best

let solve ?(iterations = 10_000) a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Zerosum.solve: empty matrix";
  let m = Array.length a.(0) in
  if m = 0 then invalid_arg "Zerosum.solve: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Zerosum.solve: ragged matrix")
    a;
  if iterations <= 0 then invalid_arg "Zerosum.solve: non-positive iterations";
  let row_counts = Array.make n 0.0 and col_counts = Array.make m 0.0 in
  (* cumulative payoff to row of each row strategy against column's
     empirical play, and symmetric for column *)
  let row_cum = Array.make n 0.0 and col_cum = Array.make m 0.0 in
  let lower = ref neg_infinity and upper = ref infinity in
  (* round 1: row plays 0 *)
  let current_row = ref 0 in
  for it = 1 to iterations do
    let i = !current_row in
    row_counts.(i) <- row_counts.(i) +. 1.0;
    for j = 0 to m - 1 do
      col_cum.(j) <- col_cum.(j) +. a.(i).(j)
    done;
    (* column best-responds (minimizes row payoff) to row's empirical play *)
    let j = argmin col_cum in
    col_counts.(j) <- col_counts.(j) +. 1.0;
    for i' = 0 to n - 1 do
      row_cum.(i') <- row_cum.(i') +. a.(i').(j)
    done;
    let t = float_of_int it in
    (* row's guaranteed value against col's empirical mixture, and vice versa *)
    upper := Float.min !upper (Array.fold_left Float.max neg_infinity row_cum /. t);
    lower := Float.max !lower (Array.fold_left Float.min infinity col_cum /. t);
    current_row := argmax row_cum
  done;
  let t = float_of_int iterations in
  {
    value_lower = !lower;
    value_upper = !upper;
    row_strategy = Array.map (fun c -> c /. t) row_counts;
    col_strategy = Array.map (fun c -> c /. t) col_counts;
    iterations;
  }

let value_estimate s = (s.value_lower +. s.value_upper) /. 2.0

let gap s = s.value_upper -. s.value_lower

let saddle_point a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Zerosum.saddle_point: empty matrix";
  let m = Array.length a.(0) in
  let row_min i = Array.fold_left Float.min infinity a.(i) in
  let col_max j =
    let best = ref neg_infinity in
    for i = 0 to n - 1 do
      best := Float.max !best a.(i).(j)
    done;
    !best
  in
  let found = ref None in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      if a.(i).(j) = row_min i && a.(i).(j) = col_max j then found := Some (i, j)
    done
  done;
  !found
