type probe_result =
  | Reached
  | Reported_block of string * int
  | Lost

type verdict =
  | Clean
  | Blocked_at of string * int
  | Blocked_between of int * int
  | Unreachable_at_start

type report = { verdict : verdict; probes_used : int }

let localize ~probe ~path =
  if List.length path < 2 then invalid_arg "Diagnosis.localize: path too short";
  let nodes = Array.of_list path in
  let n = Array.length nodes in
  let probes = ref 0 in
  let run target =
    incr probes;
    probe target
  in
  match run nodes.(n - 1) with
  | Reached -> { verdict = Clean; probes_used = !probes }
  | Reported_block (name, node) ->
    { verdict = Blocked_at (name, node); probes_used = !probes }
  | Lost ->
    (* silent failure: scan forward for the last answering node
       (linear scan: paths are short, and filters may be node-specific
       so reachability need not be monotone along the path) *)
    let bracket last_ok =
      if last_ok < 0 then
        if n = 2 then Blocked_between (nodes.(0), nodes.(1))
        else Unreachable_at_start
      else Blocked_between (nodes.(last_ok), nodes.(last_ok + 1))
    in
    let rec scan i last_ok =
      if i > n - 2 then
        (* every intermediate node answered: the failure sits on the
           last hop *)
        Blocked_between (nodes.(n - 2), nodes.(n - 1))
      else begin
        match run nodes.(i) with
        | Reached -> scan (i + 1) i
        | Reported_block (name, node) -> Blocked_at (name, node)
        | Lost -> bracket last_ok
      end
    in
    let verdict = scan 1 (-1) in
    { verdict; probes_used = !probes }

let net_probe net engine ~make target =
  let p = make ~target in
  Net.inject net engine p;
  Engine.run engine;
  let outcome =
    List.find_opt
      (fun ((q : Packet.t), _) -> q.Packet.id = p.Packet.id)
      (Net.outcomes net)
  in
  match outcome with
  | Some (_, Net.Delivered _) -> Reached
  | Some (_, Net.Lost (Net.Filtered (name, node))) ->
    let revealing =
      List.exists
        (fun mb -> Middlebox.name mb = name && Middlebox.reveals_presence mb)
        (Net.middleboxes_at net node)
    in
    if revealing then Reported_block (name, node) else Lost
  | Some (_, Net.Lost _) -> Lost
  | None -> Lost
