(** Discrete-event simulation engine.

    Events are closures scheduled at absolute simulation times.  The
    engine guarantees deterministic execution order: events fire in
    non-decreasing time, FIFO among events scheduled for the same time.
    Scheduling in the past raises [Invalid_argument].

    An event may schedule further events and may cancel pending ones by
    id.  [run] drives the simulation to quiescence or to a time horizon. *)

type t

type event_id
(** Handle for cancellation. *)

val create : unit -> t
(** Fresh engine at time [0.0]. *)

val now : t -> float
(** Current simulation time. *)

val schedule : t -> float -> (t -> unit) -> event_id
(** [schedule t at f] fires [f] at absolute time [at].  Raises
    [Invalid_argument] if [at < now t] or [at] is not finite. *)

val schedule_after : t -> float -> (t -> unit) -> event_id
(** [schedule_after t delay f] is [schedule t (now t +. delay) f].
    Raises [Invalid_argument] on negative [delay]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling an already-fired or unknown id is a
    no-op. *)

val pending : t -> int
(** Number of events still queued (cancelled events may be counted until
    they are reaped). *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty or the next event lies beyond
    [until].  On return with [until] set, [now] equals [min until
    last-event-time] advanced to [until] if the horizon was hit. *)

val step : t -> bool
(** Execute exactly one event; [false] when the queue was empty. *)

val events_executed : t -> int
(** Count of events fired so far (diagnostics and benchmarks). *)
