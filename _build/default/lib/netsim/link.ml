type t = {
  latency : float;
  bandwidth_bps : float;
  queue_capacity : int;
  mutable busy_until : float;
  (* departure times of packets still queued or in service, oldest first *)
  mutable departures : float list;
  mutable busy_time : float;
  mutable sent : int;
  mutable dropped : int;
}

let make ?(queue_capacity = 64) ~latency ~bandwidth_bps () =
  if latency <= 0.0 then invalid_arg "Link.make: non-positive latency";
  if bandwidth_bps <= 0.0 then invalid_arg "Link.make: non-positive bandwidth";
  if queue_capacity <= 0 then invalid_arg "Link.make: non-positive capacity";
  {
    latency;
    bandwidth_bps;
    queue_capacity;
    busy_until = 0.0;
    departures = [];
    busy_time = 0.0;
    sent = 0;
    dropped = 0;
  }

let latency l = l.latency

let bandwidth_bps l = l.bandwidth_bps

let transmission_delay l bytes =
  float_of_int (bytes * 8) /. l.bandwidth_bps

let reap l now =
  l.departures <- List.filter (fun d -> d > now) l.departures

let queued l ~now =
  reap l now;
  List.length l.departures

let try_enqueue l ~now bytes =
  reap l now;
  if List.length l.departures >= l.queue_capacity then begin
    l.dropped <- l.dropped + 1;
    `Dropped
  end
  else begin
    let start = Float.max now l.busy_until in
    let tx = transmission_delay l bytes in
    let departure = start +. tx in
    l.busy_until <- departure;
    l.busy_time <- l.busy_time +. tx;
    l.departures <- l.departures @ [ departure ];
    l.sent <- l.sent + 1;
    `Sent (departure +. l.latency)
  end

let utilization l ~now =
  if now <= 0.0 then 0.0 else Float.min 1.0 (l.busy_time /. now)

let packets_sent l = l.sent

let packets_dropped l = l.dropped

let reset_counters l =
  l.sent <- 0;
  l.dropped <- 0;
  l.busy_time <- 0.0
