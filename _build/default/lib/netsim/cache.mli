(** In-network content caching: enhancing the mature application
    (§VI-A).

    "The desire to improve important applications (e.g., the Web),
    leads to the deployment of caches, mirror sites, kludges to the DNS
    and so on ... and an increasing focus on improving existing
    applications at the expense of new ones."

    A cache sits at a node and serves known application content
    locally.  Crucially, it only understands the {e mature} protocol it
    was built for: requests from a new application pass through
    untouched, so the optimization widens the performance gap between
    incumbent and newcomer — the innovation-barrier effect E20
    measures.  Encrypted content cannot be cached either (the same
    §VI-A tension: the ISP's enhancement needs to peek). *)

type t

val create : ?capacity:int -> app:Packet.app -> unit -> t
(** A cache for one application's content, holding up to [capacity]
    distinct objects (default 128, LRU eviction). *)

val lookup : t -> key:int -> bool
(** Is the object present?  Updates recency and hit/miss counters. *)

val insert : t -> key:int -> unit
(** Add an object (evicting the least recently used if full). *)

val app : t -> Packet.app

val hits : t -> int

val misses : t -> int

val hit_ratio : t -> float
(** hits / lookups; 0 before any lookup. *)

val size : t -> int

val serves : t -> Packet.t -> bool
(** Can this cache serve this packet's request?  True only when the
    packet's application matches, the payload is not end-to-end
    encrypted, and the object (keyed by the packet's destination and
    port) is cached.  A miss inserts the object, modelling
    fetch-and-store. *)
