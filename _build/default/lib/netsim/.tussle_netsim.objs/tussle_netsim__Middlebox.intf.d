lib/netsim/middlebox.mli: Packet
