lib/netsim/topology.mli: Link Tussle_prelude
