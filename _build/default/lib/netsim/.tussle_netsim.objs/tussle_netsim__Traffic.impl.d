lib/netsim/traffic.ml: Engine Net Packet Tussle_prelude
