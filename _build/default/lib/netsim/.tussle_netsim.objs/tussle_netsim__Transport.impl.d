lib/netsim/transport.ml: Engine Float Hashtbl Net Option Packet Traffic
