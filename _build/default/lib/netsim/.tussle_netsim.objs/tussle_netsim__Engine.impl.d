lib/netsim/engine.ml: Float Hashtbl Option Tussle_prelude
