lib/netsim/link.mli:
