lib/netsim/nat.ml: Hashtbl List Packet
