lib/netsim/net.mli: Engine Link Middlebox Packet Tussle_prelude
