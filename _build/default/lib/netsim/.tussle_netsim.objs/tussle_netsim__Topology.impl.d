lib/netsim/topology.ml: Array Hashtbl Link List Tussle_prelude
