lib/netsim/congestion.ml: Array Float List
