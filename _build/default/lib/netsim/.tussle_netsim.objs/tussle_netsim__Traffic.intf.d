lib/netsim/traffic.mli: Engine Net Packet Tussle_prelude
