lib/netsim/middlebox.ml: List Packet
