lib/netsim/cache.ml: Hashtbl List Packet
