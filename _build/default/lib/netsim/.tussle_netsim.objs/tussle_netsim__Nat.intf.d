lib/netsim/nat.mli: Packet
