lib/netsim/diagnosis.ml: Array Engine List Middlebox Net Packet
