lib/netsim/diagnosis.mli: Engine Net Packet
