lib/netsim/net.ml: Array Engine Hashtbl Link List Middlebox Option Packet Tussle_prelude
