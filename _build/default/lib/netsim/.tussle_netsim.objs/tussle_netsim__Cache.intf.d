lib/netsim/cache.mli: Packet
