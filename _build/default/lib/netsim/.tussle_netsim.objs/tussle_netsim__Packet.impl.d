lib/netsim/packet.ml: Format List Option
