lib/netsim/transport.mli: Engine Net Traffic
