lib/netsim/link.ml: Float List
