lib/netsim/engine.mli:
