lib/netsim/congestion.mli:
