module Rng = Tussle_prelude.Rng

type t = { rng : Rng.t; mutable next_id : int }

let create rng = { rng; next_id = 0 }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let next_packet t ?port ?app ?qos ?encrypted ?tunneled ?source_route
    ?size_bytes ~src ~dst ~created () =
  Packet.make ?port ?app ?qos ?encrypted ?tunneled ?source_route ?size_bytes
    ~id:(fresh_id t) ~src ~dst ~created ()

let poisson_flow t engine net ~rate ~count ~make =
  if rate <= 0.0 then invalid_arg "Traffic.poisson_flow: non-positive rate";
  let rec emit remaining at =
    if remaining > 0 then
      ignore
        (Engine.schedule engine at (fun engine ->
             let p = make t ~created:(Engine.now engine) in
             Net.inject net engine p;
             let gap = Rng.exponential t.rng ~rate in
             emit (remaining - 1) (Engine.now engine +. gap)))
  in
  emit count (Engine.now engine)

let constant_flow t engine net ~interval ~count ~make =
  if interval < 0.0 then invalid_arg "Traffic.constant_flow: negative interval";
  let start = Engine.now engine in
  for i = 0 to count - 1 do
    let at = start +. (float_of_int i *. interval) in
    ignore
      (Engine.schedule engine at (fun engine ->
           let p = make t ~created:(Engine.now engine) in
           Net.inject net engine p))
  done
