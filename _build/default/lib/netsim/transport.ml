type behaviour = Compliant | Aggressive

type t = {
  behaviour : behaviour;
  engine : Engine.t;
  net : Net.t;
  gen : Traffic.t;
  src : int;
  dst : int;
  total : int;
  increase : float;
  ack_delay : float;
  loss_timeout : float;
  mutable cwnd : float;
  mutable next_seq : int; (* next data sequence number to send fresh *)
  mutable outstanding : int; (* seqs sent at least once and not yet acked *)
  (* packet id -> sequence number, for packets currently in the net *)
  seq_of_packet : (int, int) Hashtbl.t;
  acked_seqs : (int, unit) Hashtbl.t;
  mutable pending_retransmit : int list;
  mutable retransmissions : int;
  mutable losses : int;
  mutable started : float;
  mutable finish_time : float option;
}

(* the window bounds unacknowledged sequences (TCP's flight size), not
   packets momentarily in the network: otherwise a sender whose packets
   die quickly could pump fresh data without limit *)
let window_room t =
  t.outstanding < int_of_float (Float.max 1.0 t.cwnd)

let send_seq t seq =
  let p =
    Traffic.next_packet t.gen ~src:t.src ~dst:t.dst
      ~created:(Engine.now t.engine) ()
  in
  Hashtbl.replace t.seq_of_packet p.Packet.id seq;
  Net.inject t.net t.engine p

let rec fill_window t =
  (* retransmissions first: they do not change the outstanding count *)
  match t.pending_retransmit with
  | seq :: rest ->
    t.pending_retransmit <- rest;
    t.retransmissions <- t.retransmissions + 1;
    send_seq t seq;
    fill_window t
  | [] ->
    if window_room t && t.next_seq < t.total then begin
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.outstanding <- t.outstanding + 1;
      send_seq t seq;
      fill_window t
    end

let on_ack t seq =
  if not (Hashtbl.mem t.acked_seqs seq) then begin
    Hashtbl.replace t.acked_seqs seq ();
    t.outstanding <- t.outstanding - 1
  end;
  (match t.behaviour with
  | Compliant -> t.cwnd <- t.cwnd +. (t.increase /. Float.max 1.0 t.cwnd)
  | Aggressive -> t.cwnd <- t.cwnd +. (t.increase /. Float.max 1.0 t.cwnd));
  if Hashtbl.length t.acked_seqs >= t.total && t.finish_time = None then
    t.finish_time <- Some (Engine.now t.engine)
  else fill_window t

let on_loss t seq =
  t.losses <- t.losses + 1;
  (match t.behaviour with
  | Compliant -> t.cwnd <- Float.max 1.0 (t.cwnd /. 2.0)
  | Aggressive -> ());
  if not (Hashtbl.mem t.acked_seqs seq) then
    t.pending_retransmit <- t.pending_retransmit @ [ seq ];
  fill_window t

let observer t (p : Packet.t) outcome =
  match Hashtbl.find_opt t.seq_of_packet p.Packet.id with
  | None -> () (* someone else's packet *)
  | Some seq ->
    Hashtbl.remove t.seq_of_packet p.Packet.id;
    (match outcome with
    | Net.Delivered _ ->
      (* the ACK rides back on an uncongested reverse channel *)
      ignore
        (Engine.schedule_after t.engine t.ack_delay (fun _ -> on_ack t seq))
    | Net.Lost _ ->
      (* loss detected only after the retransmission timer *)
      ignore
        (Engine.schedule_after t.engine t.loss_timeout (fun _ ->
             on_loss t seq)))

let start ?(behaviour = Compliant) ?(initial_window = 1.0) ?(increase = 1.0)
    ?(ack_delay = 0.002) ?loss_timeout engine net gen ~src ~dst ~total_packets =
  if total_packets <= 0 then invalid_arg "Transport.start: nothing to send";
  if initial_window < 1.0 then invalid_arg "Transport.start: window < 1";
  if ack_delay <= 0.0 then invalid_arg "Transport.start: non-positive ack delay";
  let loss_timeout = Option.value ~default:(10.0 *. ack_delay) loss_timeout in
  if loss_timeout <= 0.0 then invalid_arg "Transport.start: non-positive timeout";
  let t =
    {
      behaviour;
      engine;
      net;
      gen;
      src;
      dst;
      total = total_packets;
      increase;
      ack_delay;
      loss_timeout;
      cwnd = initial_window;
      next_seq = 0;
      outstanding = 0;
      seq_of_packet = Hashtbl.create 64;
      acked_seqs = Hashtbl.create 64;
      pending_retransmit = [];
      retransmissions = 0;
      losses = 0;
      started = Engine.now engine;
      finish_time = None;
    }
  in
  Net.on_complete net (observer t);
  fill_window t;
  t

let completed t = t.finish_time <> None

let acked t = Hashtbl.length t.acked_seqs

let retransmissions t = t.retransmissions

let losses t = t.losses

let cwnd t = t.cwnd

let finish_time t = t.finish_time

let goodput t ~now =
  let stop = match t.finish_time with Some f -> f | None -> now in
  let elapsed = stop -. t.started in
  if elapsed <= 0.0 then 0.0 else float_of_int (acked t) /. elapsed
