(** Network address translation: the household's counter-move (§I).

    "ISPs give their users a single IP address, and users attach a
    network of computers using address translation."  The NAT wins the
    addressing tussle for the user — n machines ride one subscription —
    and pays for it in transparency: unsolicited inbound traffic has no
    mapping and dies, which is exactly the erosion of "what goes in
    comes out" that §VI-A laments, felt hardest by new peer-to-peer
    applications that need to {e receive}.

    Model: private hosts share one public node id.  Outbound packets
    are rewritten to the public source with a fresh public port, and
    the (private host, private port) binding is remembered; inbound
    packets to the public address are translated back only when a
    binding (or an explicit port-forward) exists. *)

type t

val create : public:int -> privates:int list -> t
(** [create ~public ~privates]: the public node id the ISP sees, and
    the private hosts behind it.  Raises [Invalid_argument] on an empty
    household or a public id listed among the privates. *)

val public_address : t -> int

val is_private : t -> int -> bool

val translate_out : t -> Packet.t -> Packet.t
(** Rewrite an outbound packet (source must be one of the privates;
    raises otherwise): source becomes the public address, the source
    port is replaced by an allocated public port, and the binding is
    remembered.  The same (host, port) flow reuses its binding. *)

val translate_in : t -> Packet.t -> Packet.t option
(** Rewrite an inbound packet addressed to the public address: [Some]
    packet redirected to the mapped private host when the destination
    port matches a binding or a forward; [None] — dropped — otherwise.
    Raises if the packet is not addressed to the public address. *)

val add_port_forward : t -> public_port:int -> host:int -> port:int -> unit
(** The user's counter-counter-move: statically expose a private
    service.  Raises [Invalid_argument] if [host] is not private. *)

val active_bindings : t -> int

val visible_hosts : t -> int
(** What the ISP can count from the outside: always 1 — the point of
    the tussle. *)

val inbound_drops : t -> int
(** Unsolicited inbound packets refused so far: the transparency
    cost. *)
