(** Traffic generation: reproducible synthetic workloads.

    Allocates globally unique packet ids per generator and schedules
    injections on the engine.  Arrival processes are Poisson (the usual
    open-loop model) or constant-rate. *)

type t
(** A packet-id allocator bound to an RNG stream. *)

val create : Tussle_prelude.Rng.t -> t

val fresh_id : t -> int

val next_packet :
  t ->
  ?port:int ->
  ?app:Packet.app ->
  ?qos:Packet.qos ->
  ?encrypted:bool ->
  ?tunneled:bool ->
  ?source_route:int list ->
  ?size_bytes:int ->
  src:int ->
  dst:int ->
  created:float ->
  unit ->
  Packet.t
(** Fresh packet with the next id. *)

val poisson_flow :
  t ->
  Engine.t ->
  Net.t ->
  rate:float ->
  count:int ->
  make:(t -> created:float -> Packet.t) ->
  unit
(** Schedule [count] packets from a Poisson process of intensity [rate]
    (packets/second) starting at the engine's current time.  [make]
    builds each packet (so callers control src/dst/app/qos/encryption per
    packet). *)

val constant_flow :
  t ->
  Engine.t ->
  Net.t ->
  interval:float ->
  count:int ->
  make:(t -> created:float -> Packet.t) ->
  unit
(** Schedule [count] packets at fixed spacing [interval]. *)
