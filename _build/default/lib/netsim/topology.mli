(** Topology generators.

    Each generator returns a graph whose edges are labelled with link
    parameters ([edge] below), ready to be turned into live links by
    {!Net}.  The two-tier generator models the commercial Internet the
    paper reasons about: competing transit providers, local access
    providers, and customer hosts, with business relationships on each
    edge. *)

type edge = { latency : float; bandwidth_bps : float }

type relationship = Customer_of | Provider_of | Peer_with | Internal
(** Business relationship of the edge tail toward the head, used by the
    path-vector protocol's export policies. *)

val default_edge : edge
(** 1 ms, 100 Mb/s. *)

val line : ?edge:edge -> int -> edge Tussle_prelude.Graph.t
(** Path graph on [n] nodes (undirected links). *)

val ring : ?edge:edge -> int -> edge Tussle_prelude.Graph.t

val star : ?edge:edge -> int -> edge Tussle_prelude.Graph.t
(** Node 0 is the hub. *)

val grid : ?edge:edge -> int -> int -> edge Tussle_prelude.Graph.t
(** [grid rows cols]; node [(r,c)] is [r*cols + c]. *)

val tree :
  ?edge:edge -> arity:int -> depth:int -> unit -> edge Tussle_prelude.Graph.t
(** Complete [arity]-ary tree; root is node 0. *)

val erdos_renyi :
  ?edge:edge -> Tussle_prelude.Rng.t -> int -> float -> edge Tussle_prelude.Graph.t
(** [erdos_renyi rng n p]: each unordered pair linked with probability
    [p].  Not guaranteed connected. *)

val barabasi_albert :
  ?edge:edge -> Tussle_prelude.Rng.t -> int -> int -> edge Tussle_prelude.Graph.t
(** [barabasi_albert rng n m]: preferential attachment, [m] links per new
    node.  Connected by construction; heavy-tailed degrees like AS
    graphs.  Requires [n > m >= 1]. *)

type two_tier = {
  graph : (edge * relationship) Tussle_prelude.Graph.t;
  transits : int list;  (** tier-1 backbone ASes, fully meshed peers *)
  accesses : int list;  (** local access providers *)
  hosts : int list;  (** customer end hosts *)
  access_of_host : int -> int;  (** host's current access provider *)
  transit_of_access : int -> int list;  (** upstream transits of an access *)
}

val two_tier :
  ?edge:edge ->
  Tussle_prelude.Rng.t ->
  transits:int ->
  accesses:int ->
  hosts_per_access:int ->
  multihoming:int ->
  two_tier
(** Commercial-Internet topology: [transits] tier-1 providers peered in a
    full mesh; each access provider buys transit from [multihoming]
    distinct tier-1s; each host attaches to one access provider.
    Requires [transits >= 1], [multihoming] in [1..transits]. *)

val to_links : edge Tussle_prelude.Graph.t -> Link.t Tussle_prelude.Graph.t
(** Instantiate live links from edge parameters (distinct link state per
    direction/edge). *)
