(** Fault isolation when transparency fails (§VI-A).

    "Failures of transparency will occur — design what happens then ...
    Tools for fault isolation and error reporting would help ... Of
    course, some devices that impair transparency may intentionally
    give no error information or even reveal their presence, and that
    must be taken into account in design of diagnostic tools."

    The diagnostic walks the path with probes (traceroute-style).  A
    {e revealing} middlebox that drops the probe names itself — exact
    localization in one probe.  A {e covert} one just eats packets, and
    the best the tool can do is bracket the failure between the last
    node that answered and the first that did not. *)

type probe_result =
  | Reached  (** probe delivered to its target *)
  | Reported_block of string * int  (** a revealing device named itself *)
  | Lost  (** silent loss: covert filter, or genuine outage *)

type verdict =
  | Clean  (** destination reachable; nothing to isolate *)
  | Blocked_at of string * int  (** exact: a device confessed *)
  | Blocked_between of int * int
      (** covert: bracketed between these consecutive path nodes *)
  | Unreachable_at_start  (** even the first hop is silent *)

type report = { verdict : verdict; probes_used : int }

val localize : probe:(int -> probe_result) -> path:int list -> report
(** [localize ~probe ~path]: [path] is the node sequence the traffic
    should take, source first, destination last.  [probe n] tests
    reachability of node [n] with a packet of the affected kind.  The
    tool first probes the destination (cheap happy path / confession),
    then scans for the silent boundary.  Raises [Invalid_argument] on a
    path shorter than 2 nodes. *)

val net_probe :
  Net.t -> Engine.t -> make:(target:int -> Packet.t) -> int -> probe_result
(** Probe adapter for the simulator: injects [make ~target], runs the
    engine to quiescence, and classifies the outcome of that packet.
    Middlebox drops map to [Reported_block] when the device reveals its
    presence (per {!Middlebox.reveals_presence} of the deployed
    middleboxes at the drop node), [Lost] otherwise. *)
