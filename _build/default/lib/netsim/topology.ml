module Graph = Tussle_prelude.Graph
module Rng = Tussle_prelude.Rng

type edge = { latency : float; bandwidth_bps : float }

type relationship = Customer_of | Provider_of | Peer_with | Internal

let default_edge = { latency = 0.001; bandwidth_bps = 100e6 }

let line ?(edge = default_edge) n =
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_undirected g i (i + 1) edge
  done;
  g

let ring ?(edge = default_edge) n =
  let g = line ~edge n in
  if n > 2 then Graph.add_undirected g (n - 1) 0 edge;
  g

let star ?(edge = default_edge) n =
  let g = Graph.create n in
  for i = 1 to n - 1 do
    Graph.add_undirected g 0 i edge
  done;
  g

let grid ?(edge = default_edge) rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.grid: non-positive dims";
  let g = Graph.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let u = (r * cols) + c in
      if c + 1 < cols then Graph.add_undirected g u (u + 1) edge;
      if r + 1 < rows then Graph.add_undirected g u (u + cols) edge
    done
  done;
  g

let tree ?(edge = default_edge) ~arity ~depth () =
  if arity < 1 || depth < 0 then invalid_arg "Topology.tree: bad parameters";
  (* count nodes: (arity^(depth+1) - 1) / (arity - 1), or depth+1 if arity=1 *)
  let count =
    if arity = 1 then depth + 1
    else
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      (pow arity (depth + 1) - 1) / (arity - 1)
  in
  let g = Graph.create count in
  let next = ref 1 in
  let rec attach parent level =
    if level < depth then
      for _ = 1 to arity do
        let child = !next in
        incr next;
        Graph.add_undirected g parent child edge;
        attach child (level + 1)
      done
  in
  attach 0 0;
  g

let erdos_renyi ?(edge = default_edge) rng n p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then Graph.add_undirected g u v edge
    done
  done;
  g

let barabasi_albert ?(edge = default_edge) rng n m =
  if m < 1 || n <= m then invalid_arg "Topology.barabasi_albert: need n > m >= 1";
  let g = Graph.create n in
  (* endpoint multiset for preferential attachment *)
  let endpoints = ref [] in
  (* seed: clique on the first m+1 nodes *)
  for u = 0 to m do
    for v = u + 1 to m do
      Graph.add_undirected g u v edge;
      endpoints := u :: v :: !endpoints
    done
  done;
  let eps = ref (Array.of_list !endpoints) in
  for u = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let v = Rng.choice rng !eps in
      if v <> u then Hashtbl.replace chosen v ()
    done;
    let added = Hashtbl.fold (fun v () acc -> v :: acc) chosen [] in
    List.iter
      (fun v ->
        Graph.add_undirected g u v edge;
        eps := Array.append !eps [| u; v |])
      added
  done;
  g

type two_tier = {
  graph : (edge * relationship) Tussle_prelude.Graph.t;
  transits : int list;
  accesses : int list;
  hosts : int list;
  access_of_host : int -> int;
  transit_of_access : int -> int list;
}

let two_tier ?(edge = default_edge) rng ~transits ~accesses ~hosts_per_access
    ~multihoming =
  if transits < 1 then invalid_arg "Topology.two_tier: need >= 1 transit";
  if multihoming < 1 || multihoming > transits then
    invalid_arg "Topology.two_tier: multihoming out of range";
  if accesses < 1 || hosts_per_access < 0 then
    invalid_arg "Topology.two_tier: bad parameters";
  let n = transits + accesses + (accesses * hosts_per_access) in
  let g = Graph.create n in
  let transit_ids = List.init transits (fun i -> i) in
  let access_ids = List.init accesses (fun i -> transits + i) in
  (* transit backbone: full peer mesh, fat low-latency pipes *)
  let backbone = { latency = edge.latency; bandwidth_bps = edge.bandwidth_bps *. 10.0 } in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v then begin
            Graph.add_edge g u v (backbone, Peer_with);
            Graph.add_edge g v u (backbone, Peer_with)
          end)
        transit_ids)
    transit_ids;
  (* access providers buy transit from [multihoming] distinct tier-1s *)
  let upstream = Hashtbl.create accesses in
  List.iter
    (fun a ->
      let ups =
        Array.to_list (Rng.sample rng multihoming (Array.of_list transit_ids))
      in
      Hashtbl.replace upstream a ups;
      List.iter
        (fun tpr ->
          Graph.add_edge g a tpr (edge, Customer_of);
          Graph.add_edge g tpr a (edge, Provider_of))
        ups)
    access_ids;
  (* hosts attach to their access provider *)
  let host_base = transits + accesses in
  let host_access = Hashtbl.create (accesses * hosts_per_access) in
  let hosts = ref [] in
  List.iteri
    (fun ai a ->
      for k = 0 to hosts_per_access - 1 do
        let h = host_base + (ai * hosts_per_access) + k in
        hosts := h :: !hosts;
        Hashtbl.replace host_access h a;
        Graph.add_edge g h a (edge, Customer_of);
        Graph.add_edge g a h (edge, Provider_of)
      done)
    access_ids;
  {
    graph = g;
    transits = transit_ids;
    accesses = access_ids;
    hosts = List.rev !hosts;
    access_of_host =
      (fun h ->
        match Hashtbl.find_opt host_access h with
        | Some a -> a
        | None -> invalid_arg "two_tier.access_of_host: not a host");
    transit_of_access =
      (fun a ->
        match Hashtbl.find_opt upstream a with
        | Some ups -> ups
        | None -> invalid_arg "two_tier.transit_of_access: not an access");
  }

let to_links g =
  Graph.map_edges g (fun e ->
    Link.make ~latency:e.latency ~bandwidth_bps:e.bandwidth_bps ())
