type t = {
  capacity : int;
  app : Packet.app;
  (* recency list, most recent first, plus membership set *)
  mutable order : int list;
  members : (int, unit) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 128) ~app () =
  if capacity <= 0 then invalid_arg "Cache.create: non-positive capacity";
  {
    capacity;
    app;
    order = [];
    members = Hashtbl.create capacity;
    hits = 0;
    misses = 0;
  }

let touch t key =
  t.order <- key :: List.filter (fun k -> k <> key) t.order

let lookup t ~key =
  if Hashtbl.mem t.members key then begin
    t.hits <- t.hits + 1;
    touch t key;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let insert t ~key =
  if not (Hashtbl.mem t.members key) then begin
    if Hashtbl.length t.members >= t.capacity then begin
      (* evict least recently used *)
      match List.rev t.order with
      | victim :: _ ->
        Hashtbl.remove t.members victim;
        t.order <- List.filter (fun k -> k <> victim) t.order
      | [] -> ()
    end;
    Hashtbl.replace t.members key ()
  end;
  touch t key

let app t = t.app

let hits t = t.hits

let misses t = t.misses

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let size t = Hashtbl.length t.members

let content_key (p : Packet.t) = (p.Packet.dst * 65536) + p.Packet.port

let serves t p =
  if p.Packet.app <> t.app || p.Packet.encrypted then false
  else begin
    let key = content_key p in
    if lookup t ~key then true
    else begin
      insert t ~key;
      false
    end
  end
