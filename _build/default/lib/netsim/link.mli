(** Point-to-point links: latency, bandwidth and a drop-tail queue.

    The serialization + propagation model is standard:
    departure = arrival + queueing + size/bandwidth, arrival at the far
    end after [latency].  The queue bounds the number of packets in
    flight on the link; arrivals beyond capacity are dropped (drop-tail). *)

type t

val make :
  ?queue_capacity:int -> latency:float -> bandwidth_bps:float -> unit -> t
(** [make ~latency ~bandwidth_bps ()].  Latency in seconds, bandwidth in
    bits per second, queue capacity in packets (default 64).  Raises
    [Invalid_argument] on non-positive latency/bandwidth. *)

val latency : t -> float

val bandwidth_bps : t -> float

val transmission_delay : t -> int -> float
(** [transmission_delay l bytes] = serialization time of [bytes]. *)

val try_enqueue : t -> now:float -> int -> [ `Sent of float | `Dropped ]
(** [try_enqueue l ~now bytes] models a packet offered to the link at
    [now].  [`Sent arrival] gives the time the packet reaches the far
    end; [`Dropped] means the queue was full.  The link keeps internal
    state (busy-until time and queue occupancy), so calls must be made in
    non-decreasing [now] order. *)

val queued : t -> now:float -> int
(** Packets currently occupying the queue at time [now]. *)

val utilization : t -> now:float -> float
(** Fraction of elapsed time the link spent transmitting, in [0,1]. *)

val packets_sent : t -> int

val packets_dropped : t -> int

val reset_counters : t -> unit
