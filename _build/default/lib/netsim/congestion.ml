type flow_kind = Compliant | Aggressive

type regime = Fifo | Fair_queueing

type config = {
  capacity : float;
  rounds : int;
  flows : flow_kind array;
  increase : float;
}

let default_config ~kinds =
  { capacity = 100.0; rounds = 400; flows = kinds; increase = 1.0 }

type result = {
  throughput : float array;
  mean_compliant : float;
  mean_aggressive : float;
  jain : float;
  utilization : float;
  loss_rate : float;
}

let jain_index xs =
  if Array.length xs = 0 then invalid_arg "Congestion.jain_index: empty";
  let s = Array.fold_left ( +. ) 0.0 xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if s2 = 0.0 then 0.0
  else s *. s /. (float_of_int (Array.length xs) *. s2)

let max_min_allocation demands capacity =
  let n = Array.length demands in
  let alloc = Array.make n 0.0 in
  let satisfied = Array.make n false in
  let rec fill remaining_capacity unsatisfied =
    if unsatisfied > 0 && remaining_capacity > 1e-12 then begin
      let share = remaining_capacity /. float_of_int unsatisfied in
      (* flows whose demand is below the fair share get their demand *)
      let newly = ref 0 and used = ref 0.0 in
      Array.iteri
        (fun i d ->
          if (not satisfied.(i)) && d <= share +. 1e-12 then begin
            alloc.(i) <- d;
            satisfied.(i) <- true;
            incr newly;
            used := !used +. d
          end)
        demands;
      if !newly > 0 then
        fill (remaining_capacity -. !used) (unsatisfied - !newly)
      else
        (* everyone left wants more than the share: split evenly *)
        Array.iteri
          (fun i _ ->
            if not satisfied.(i) then begin
              alloc.(i) <- share;
              satisfied.(i) <- true
            end)
          demands
    end
  in
  fill capacity n;
  alloc

let validate cfg =
  if Array.length cfg.flows = 0 then invalid_arg "Congestion.run: no flows";
  if cfg.capacity <= 0.0 then invalid_arg "Congestion.run: non-positive capacity";
  if cfg.rounds <= 0 then invalid_arg "Congestion.run: non-positive rounds";
  if cfg.increase <= 0.0 then invalid_arg "Congestion.run: non-positive increase"

let run cfg regime =
  validate cfg;
  let n = Array.length cfg.flows in
  let window = Array.make n 1.0 in
  let measure_from = cfg.rounds / 2 in
  let delivered_acc = Array.make n 0.0 in
  let measured_rounds = cfg.rounds - measure_from in
  let offered_total = ref 0.0 and delivered_total = ref 0.0 in
  for round = 0 to cfg.rounds - 1 do
    let demand = Array.copy window in
    let total = Array.fold_left ( +. ) 0.0 demand in
    let delivered =
      match regime with
      | Fifo ->
        if total <= cfg.capacity then demand
        else Array.map (fun d -> d /. total *. cfg.capacity) demand
      | Fair_queueing -> max_min_allocation demand cfg.capacity
    in
    if round >= measure_from then begin
      Array.iteri
        (fun i d -> delivered_acc.(i) <- delivered_acc.(i) +. d)
        delivered;
      offered_total := !offered_total +. total;
      delivered_total :=
        !delivered_total +. Array.fold_left ( +. ) 0.0 delivered
    end;
    (* congestion signal *)
    let congested =
      match regime with
      | Fifo -> total > cfg.capacity
      | Fair_queueing -> false (* handled per-flow below *)
    in
    Array.iteri
      (fun i kind ->
        let saw_loss =
          match regime with
          | Fifo -> congested
          | Fair_queueing ->
            (* a flow only sees loss when it pushed beyond its allocation *)
            demand.(i) > delivered.(i) +. 1e-9
        in
        match kind with
        | Compliant ->
          if saw_loss then window.(i) <- Float.max 1.0 (window.(i) /. 2.0)
          else window.(i) <- window.(i) +. cfg.increase
        | Aggressive ->
          (* ignores congestion entirely *)
          window.(i) <- window.(i) +. cfg.increase)
      cfg.flows
  done;
  let throughput =
    Array.map (fun acc -> acc /. float_of_int measured_rounds) delivered_acc
  in
  let mean_of kind =
    let xs =
      Array.to_list throughput
      |> List.filteri (fun i _ -> cfg.flows.(i) = kind)
    in
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  {
    throughput;
    mean_compliant = mean_of Compliant;
    mean_aggressive = mean_of Aggressive;
    jain = jain_index throughput;
    utilization =
      !delivered_total /. (cfg.capacity *. float_of_int measured_rounds);
    loss_rate =
      (if !offered_total = 0.0 then 0.0
       else (!offered_total -. !delivered_total) /. !offered_total);
  }
