type qos = Best_effort | Assured | Premium

type app = Web | Mail | Voip | File_sharing | Game | Attack

type t = {
  id : int;
  src : int;
  dst : int;
  size_bytes : int;
  port : int;
  app : app;
  qos : qos;
  encrypted : bool;
  tunneled : bool;
  source_route : int list;
  created : float;
  mutable hops : int list;
}

let default_port = function
  | Web -> 80
  | Mail -> 25
  | Voip -> 5060
  | File_sharing -> 6881
  | Game -> 27015
  | Attack -> 445

let make ?port ?(app = Web) ?(qos = Best_effort) ?(encrypted = false)
    ?(tunneled = false) ?(source_route = []) ?(size_bytes = 1500) ~id ~src
    ~dst ~created () =
  let port = Option.value ~default:(default_port app) port in
  if size_bytes <= 0 then invalid_arg "Packet.make: non-positive size";
  {
    id;
    src;
    dst;
    size_bytes;
    port;
    app;
    qos;
    encrypted;
    tunneled;
    source_route;
    created;
    hops = [];
  }

let visible_port p = if p.tunneled then 443 else p.port

let visible_app p = if p.encrypted || p.tunneled then None else Some p.app

let record_hop p node = p.hops <- node :: p.hops

let path p = List.rev p.hops

let app_to_string = function
  | Web -> "web"
  | Mail -> "mail"
  | Voip -> "voip"
  | File_sharing -> "file-sharing"
  | Game -> "game"
  | Attack -> "attack"

let qos_to_string = function
  | Best_effort -> "best-effort"
  | Assured -> "assured"
  | Premium -> "premium"

let pp ppf p =
  Format.fprintf ppf "#%d %d->%d %s/%d qos=%s%s%s" p.id p.src p.dst
    (app_to_string p.app) p.port (qos_to_string p.qos)
    (if p.encrypted then " enc" else "")
    (if p.tunneled then " tun" else "")
