(** Closed-loop transport: window-based, ACK-clocked, AIMD — and its
    misbehaving variant.

    This is the packet-level companion of {!Congestion}'s fluid model,
    for experiments that need real queues and real drops.  A connection
    transfers [total_packets] data packets from [src] to [dst] over a
    {!Net}:

    {ul
    {- up to [cwnd] packets are kept in flight;}
    {- a delivery is acknowledged after one ACK delay (the reverse path
       is modelled as a fixed-latency, uncongested channel — ACKs are
       small and rarely the bottleneck; this keeps the forward queues
       the only contention point);}
    {- on an ACK, a compliant connection grows [cwnd] by
       [increase / cwnd] (additive increase per RTT);}
    {- on a loss, a compliant connection halves [cwnd] and retransmits;
       an {e aggressive} one just retransmits — Savage's endpoint that
       ignores congestion.}} *)

type behaviour = Compliant | Aggressive

type t

val start :
  ?behaviour:behaviour ->
  ?initial_window:float ->
  ?increase:float ->
  ?ack_delay:float ->
  ?loss_timeout:float ->
  Engine.t ->
  Net.t ->
  Traffic.t ->
  src:int ->
  dst:int ->
  total_packets:int ->
  t
(** Open the connection and send the first window.  The connection
    registers a {!Net.on_complete} observer; create all connections
    before running the engine.  Defaults: compliant, initial window 1,
    additive increase 1 per RTT, ACK delay 2 ms, loss timeout 10x the
    ACK delay (a retransmission timer well above the RTT, as real
    stacks use — it also keeps a misbehaving sender's packet storm
    paced rather than instantaneous). *)

val completed : t -> bool
(** All data packets delivered and acknowledged. *)

val acked : t -> int
(** Distinct data packets acknowledged so far. *)

val retransmissions : t -> int

val losses : t -> int

val cwnd : t -> float

val finish_time : t -> float option
(** Engine time at which the transfer completed. *)

val goodput : t -> now:float -> float
(** Acknowledged packets per second, up to [now] (or the finish time if
    earlier).  0 before anything is acknowledged. *)
