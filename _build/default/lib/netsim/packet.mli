(** Packets: the unit of carriage, carrying exactly the attributes the
    paper's tussles act on.

    A packet records who is speaking to whom ([src]/[dst]), what
    application it belongs to ([port] and [app] tag — the thing ISPs
    filter on), the QoS class requested (the paper's explicit-ToS-bits
    argument), whether the payload is end-to-end encrypted (the ultimate
    defence of transparency, §VI-A), and an optional loose source route
    (user-controlled provider selection, §V-A4). *)

type qos = Best_effort | Assured | Premium

type app =
  | Web
  | Mail
  | Voip
  | File_sharing
  | Game  (** an unproven "new application": the innovation canary *)
  | Attack  (** malicious traffic for the trust experiments *)

type t = {
  id : int;
  src : int;
  dst : int;
  size_bytes : int;
  port : int;
  app : app;
  qos : qos;
  encrypted : bool;
  tunneled : bool;  (** masked inside an innocuous envelope (port 443) *)
  source_route : int list;  (** user-selected waypoints; [] = provider routing *)
  created : float;
  mutable hops : int list;  (** trace, most recent first *)
}

val make :
  ?port:int ->
  ?app:app ->
  ?qos:qos ->
  ?encrypted:bool ->
  ?tunneled:bool ->
  ?source_route:int list ->
  ?size_bytes:int ->
  id:int ->
  src:int ->
  dst:int ->
  created:float ->
  unit ->
  t
(** Build a packet.  Defaults: [app = Web], [qos = Best_effort], 1500
    bytes, plain (not encrypted, not tunneled), no source route, port
    chosen from the default port of [app]. *)

val default_port : app -> int
(** Well-known port for an application: the information a port-based
    filter keys on. *)

val visible_port : t -> int
(** The port an on-path observer sees: the real port for plain packets,
    443 for tunneled ones (§V-A2 tunneling disguises port numbers). *)

val visible_app : t -> app option
(** What an on-path observer can infer: [None] when the packet is
    encrypted or tunneled (peeking defeated), [Some app] otherwise. *)

val record_hop : t -> int -> unit

val path : t -> int list
(** Hops in forward order (oldest first). *)

val app_to_string : app -> string

val qos_to_string : qos -> string

val pp : Format.formatter -> t -> unit
