type binding = { host : int; port : int }

type t = {
  public : int;
  privates : (int, unit) Hashtbl.t;
  (* public port -> private binding *)
  inbound : (int, binding) Hashtbl.t;
  (* (private host, private port) -> public port *)
  outbound : (int * int, int) Hashtbl.t;
  mutable next_port : int;
  mutable drops : int;
}

let create ~public ~privates =
  if privates = [] then invalid_arg "Nat.create: empty household";
  if List.mem public privates then
    invalid_arg "Nat.create: public id among privates";
  let tbl = Hashtbl.create 8 in
  List.iter (fun h -> Hashtbl.replace tbl h ()) privates;
  {
    public;
    privates = tbl;
    inbound = Hashtbl.create 32;
    outbound = Hashtbl.create 32;
    next_port = 49152;
    drops = 0;
  }

let public_address t = t.public

let is_private t h = Hashtbl.mem t.privates h

let fresh_port t =
  let p = t.next_port in
  t.next_port <- p + 1;
  p

let translate_out t (p : Packet.t) =
  if not (is_private t p.Packet.src) then
    invalid_arg "Nat.translate_out: source not behind this NAT";
  let key = (p.Packet.src, p.Packet.port) in
  let public_port =
    match Hashtbl.find_opt t.outbound key with
    | Some port -> port
    | None ->
      let port = fresh_port t in
      Hashtbl.replace t.outbound key port;
      Hashtbl.replace t.inbound port { host = p.Packet.src; port = p.Packet.port };
      port
  in
  Packet.make ~port:public_port ~app:p.Packet.app ~qos:p.Packet.qos
    ~encrypted:p.Packet.encrypted ~tunneled:p.Packet.tunneled
    ~source_route:p.Packet.source_route ~size_bytes:p.Packet.size_bytes
    ~id:p.Packet.id ~src:t.public ~dst:p.Packet.dst ~created:p.Packet.created ()

let translate_in t (p : Packet.t) =
  if p.Packet.dst <> t.public then
    invalid_arg "Nat.translate_in: not addressed to this NAT";
  match Hashtbl.find_opt t.inbound p.Packet.port with
  | Some { host; port } ->
    Some
      (Packet.make ~port ~app:p.Packet.app ~qos:p.Packet.qos
         ~encrypted:p.Packet.encrypted ~tunneled:p.Packet.tunneled
         ~size_bytes:p.Packet.size_bytes ~id:p.Packet.id ~src:p.Packet.src
         ~dst:host ~created:p.Packet.created ())
  | None ->
    t.drops <- t.drops + 1;
    None

let add_port_forward t ~public_port ~host ~port =
  if not (is_private t host) then
    invalid_arg "Nat.add_port_forward: host not behind this NAT";
  Hashtbl.replace t.inbound public_port { host; port }

let active_bindings t = Hashtbl.length t.inbound

let visible_hosts _t = 1

let inbound_drops t = t.drops
