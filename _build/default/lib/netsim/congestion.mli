(** The congestion-control tussle (§II-B).

    "TCP congestion control 'works' when and only when the majority of
    end-systems both participate and follow a common set of rules ...
    Should this balance change, the technical design of the system will
    do nothing to bound or guide the resulting shift."

    A synchronized fluid model of AIMD flows sharing one bottleneck.
    Compliant flows halve their window on congestion; aggressive flows
    (Savage's misbehaving endpoints) ignore the signal.  Two bottleneck
    disciplines:

    {ul
    {- [Fifo]: the deployed design — capacity is shared in proportion
       to demand, and nothing bounds an aggressive flow;}
    {- [Fair_queueing]: a design that {e does} bound the shift — max-min
       allocation caps every flow at its fair share regardless of how
       hard it pushes.}} *)

type flow_kind = Compliant | Aggressive

type regime = Fifo | Fair_queueing

type config = {
  capacity : float;  (** bottleneck capacity per round *)
  rounds : int;
  flows : flow_kind array;
  increase : float;  (** additive increase per round (AIMD "a") *)
}

val default_config : kinds:flow_kind array -> config
(** capacity 100, 400 rounds, additive increase 1. *)

type result = {
  throughput : float array;  (** mean per-flow goodput over the last half *)
  mean_compliant : float;  (** 0 when there are no compliant flows *)
  mean_aggressive : float;
  jain : float;  (** Jain fairness index of [throughput] *)
  utilization : float;  (** mean delivered / capacity *)
  loss_rate : float;  (** offered - delivered, as a share of offered *)
}

val run : config -> regime -> result
(** Deterministic synchronized simulation.  Raises [Invalid_argument]
    on an empty flow set or non-positive capacity/rounds. *)

val jain_index : float array -> float
(** (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair.  Raises on empty
    input; 0 when all-zero. *)

val max_min_allocation : float array -> float -> float array
(** [max_min_allocation demands capacity] is the classic water-filling
    allocation: every flow gets [min demand fair_share] with the spare
    capacity redistributed.  Exposed for tests. *)
