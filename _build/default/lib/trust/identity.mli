(** Identity framework (§V-B1): "a framework for talking about identity,
    not a single identity scheme."

    Principals present themselves under one of several schemes; each
    scheme carries a different accountability level, and counterparties
    apply their own acceptance policies.  The anonymity tussle is
    explicit: one may act anonymously, but "many people will choose not
    to communicate with you if you do" — and a compromise outcome is
    that disguising the {e fact} of anonymity should be hard. *)

type scheme =
  | Real_name of string  (** legally bound identity *)
  | Role of string  (** e.g. "admin-of:mit.edu"; accountable via the role *)
  | Pseudonym of string  (** stable but unlinked to a person *)
  | Anonymous

type principal = { id : int; presented : scheme }

val accountability : scheme -> float
(** How strongly actions can be tied back to a responsible party:
    real name 1.0, role 0.8, pseudonym 0.4, anonymous 0.0. *)

val is_anonymous : scheme -> bool

val disguised_anonymity : claimed:scheme -> actual:scheme -> bool
(** True when the presentation hides the fact of anonymity (claims a
    binding scheme while actually anonymous) — the behaviour the paper
    says a good design makes hard. *)

type acceptance_policy = {
  min_accountability : float;
  accept_pseudonyms : bool;
}

val open_policy : acceptance_policy
(** Accept anyone (the early-Internet default). *)

val accountable_only : acceptance_policy
(** Require accountability >= 0.8: the "many will choose not to
    communicate with you" stance. *)

val accepts : acceptance_policy -> scheme -> bool

val scheme_to_string : scheme -> string
