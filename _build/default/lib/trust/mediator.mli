(** Third-party mediation of untrusted interactions (§V-B).

    "We depend on third parties to mediate and enhance the assurance
    that things are going to go right": liability caps (credit cards),
    certification (PKI), escrow.  A transaction has a gain if honest and
    a loss if the counterparty cheats; a mediator transforms that
    lottery.  The paper's engineering principle — parties must be able
    to {e choose} their mediators — is exercised by experiment E13. *)

type transaction = {
  gain : float;  (** value if the counterparty is honest *)
  loss : float;  (** amount at risk if cheated (positive number) *)
  p_honest : float;  (** the truster's belief the counterparty is honest *)
}

type mediator =
  | No_mediator
  | Liability_cap of { cap : float; fee : float }
      (** cheat loss capped at [cap] (e.g. the credit card $50) *)
  | Certifier of { assurance : float; fee : float }
      (** certificate raises effective honesty belief:
          p' = p + assurance * (1 - p) *)
  | Escrow of { fee : float }
      (** escrow eliminates cheat loss entirely *)

val expected_utility : transaction -> mediator -> float
(** Expected value of transacting under the mediator (fees always
    paid). *)

val should_transact : transaction -> mediator -> bool
(** [expected_utility > 0]. *)

val best_mediator : transaction -> mediator list -> mediator * float
(** The choice the paper demands users be able to make: the mediator
    (from the offered list, which should include [No_mediator]) with the
    highest expected utility.  Raises [Invalid_argument] on an empty
    list. *)

val enabled_transactions :
  transaction list -> mediator list -> (transaction * mediator) list
(** Transactions whose best mediator makes them worth doing — the trade
    volume mediation unlocks. *)

val mediator_to_string : mediator -> string
