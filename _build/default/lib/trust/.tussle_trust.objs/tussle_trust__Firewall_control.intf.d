lib/trust/firewall_control.mli: Tussle_netsim
