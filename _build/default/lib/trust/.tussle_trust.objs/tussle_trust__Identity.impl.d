lib/trust/identity.ml:
