lib/trust/reputation.ml: Array List
