lib/trust/trust_graph.ml: Array Hashtbl List Option
