lib/trust/reputation.mli:
