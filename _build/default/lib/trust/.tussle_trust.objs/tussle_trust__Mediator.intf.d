lib/trust/mediator.mli:
