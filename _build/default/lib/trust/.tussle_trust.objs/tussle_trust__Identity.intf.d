lib/trust/identity.mli:
