lib/trust/firewall_control.ml: List Tussle_netsim
