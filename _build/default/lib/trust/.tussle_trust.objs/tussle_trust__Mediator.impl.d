lib/trust/mediator.ml: Float List Printf
