lib/trust/traceback.mli: Tussle_prelude
