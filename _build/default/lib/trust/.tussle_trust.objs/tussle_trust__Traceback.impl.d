lib/trust/traceback.ml: Hashtbl List Option Tussle_prelude
