lib/trust/trust_graph.mli:
