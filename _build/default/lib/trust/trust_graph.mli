(** Pairwise trust with transitive derivation.

    Direct trust is a weight in [0,1] on a directed edge.  Derived trust
    between non-adjacent parties is the best multiplicative path product
    (computed as a shortest path in [-log] space), capped by a maximum
    delegation depth — trust attenuates with distance, as it should.

    This is the substrate for trust-mediated transparency (§V-B): a
    firewall admits a flow iff the destination's derived trust in the
    source clears a threshold. *)

type t

val create : int -> t
(** [create n]: parties [0 .. n-1], no trust edges. *)

val parties : t -> int

val set_trust : t -> truster:int -> trustee:int -> float -> unit
(** Assert direct trust; weight outside [0,1] raises
    [Invalid_argument].  Re-setting overwrites. *)

val direct_trust : t -> truster:int -> trustee:int -> float
(** 0.0 when no edge (self-trust is 1.0). *)

val derived_trust : ?max_depth:int -> t -> truster:int -> trustee:int -> float
(** Best path product using at most [max_depth] edges (default 4).
    [1.0] for self; [0.0] when unreachable within the depth bound. *)

val trusts : ?max_depth:int -> t -> threshold:float -> int -> int -> bool
(** [trusts g ~threshold a b]: does [a]'s derived trust in [b] reach the
    threshold? *)

val add_mutual : t -> int -> int -> float -> unit
(** Symmetric trust in one call. *)

val revoke : t -> truster:int -> trustee:int -> unit

val mean_pairwise_trust : ?max_depth:int -> t -> float
(** Average derived trust over all ordered pairs (excluding self);
    the "community of shared trust" health metric.  0 on a single
    party. *)
