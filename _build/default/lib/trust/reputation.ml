type t = {
  forgetting : float;
  pos : float array;
  neg : float array;
}

let create ?(forgetting = 1.0) n =
  if n < 0 then invalid_arg "Reputation.create: negative size";
  if forgetting <= 0.0 || forgetting > 1.0 then
    invalid_arg "Reputation.create: forgetting must be in (0,1]";
  { forgetting; pos = Array.make n 0.0; neg = Array.make n 0.0 }

let check t subject =
  if subject < 0 || subject >= Array.length t.pos then
    invalid_arg "Reputation: subject out of range"

let rate t ~subject ~good =
  check t subject;
  t.pos.(subject) <- t.pos.(subject) *. t.forgetting;
  t.neg.(subject) <- t.neg.(subject) *. t.forgetting;
  if good then t.pos.(subject) <- t.pos.(subject) +. 1.0
  else t.neg.(subject) <- t.neg.(subject) +. 1.0

let score t ~subject =
  check t subject;
  (t.pos.(subject) +. 1.0) /. (t.pos.(subject) +. t.neg.(subject) +. 2.0)

let observations t ~subject =
  check t subject;
  (t.pos.(subject), t.neg.(subject))

let ranking t =
  let n = Array.length t.pos in
  List.init n (fun i -> (i, score t ~subject:i))
  |> List.sort (fun (ia, sa) (ib, sb) ->
         match compare sb sa with 0 -> compare ia ib | c -> c)
