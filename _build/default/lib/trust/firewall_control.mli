(** A firewall control protocol: who sets the rules, and can you read
    them?  (§V-B.)

    "Who gets to set the policy in the firewall?  The end user may
    certainly have opinions, but a network administrator may as well.
    Who is 'in charge'?  There is no single answer, and we better not
    think we are going to design it.  All we can design is the space
    for the tussle."  And on visibility: "should that end user be able
    to download and examine these rules?  One way to help preserve the
    end-to-end character of the Internet is to require that devices
    reveal if they impose limitations on it."

    This module is that designed space: a rule table with two
    authorities.  Admins rule the whole selector space; an end node may
    request rules only over its {e own} traffic (MIDCOM-style
    pinholes).  Whether user rules can override admin rules, and
    whether admin rules are visible to the users they constrain, are
    configuration — the tussle knobs — not hard-coded outcomes. *)

type authority = Admin | End_user of int  (** the node the user owns *)

type selector = {
  sel_src : int option;  (** [None] = any *)
  sel_dst : int option;
  sel_port : int option;
}

type rule = {
  rule_id : int;
  issued_by : authority;
  allow : bool;
  selector : selector;
  visible_to_subjects : bool;
      (** may constrained users enumerate this rule? *)
}

type t

val create :
  ?default_allow:bool -> ?users_may_override:bool -> unit -> t
(** Empty table.  [default_allow] (default true: a transparent network
    until someone constrains it); [users_may_override] (default false:
    the admin wins conflicts). *)

val any : selector
(** Matches everything. *)

val add_rule :
  t -> authority -> allow:bool -> ?visible:bool -> selector ->
  (int, [ `Beyond_authority ]) result
(** Install a rule; returns its id.  An [End_user u] may only install
    rules whose selector pins [sel_src] or [sel_dst] to [u] —
    requesting control over other people's traffic is
    [`Beyond_authority].  [visible] defaults to [true]. *)

val remove_rule : t -> authority -> int -> (unit, [ `Not_owner ]) result
(** Only the issuing authority (or Admin) may remove a rule. *)

val permits : t -> Tussle_netsim.Packet.t -> bool
(** Decision: among matching rules, the winning authority's most
    recent rule applies (admin over user unless [users_may_override]);
    with no matching rule, [default_allow]. *)

val middlebox : t -> Tussle_netsim.Middlebox.t
(** Enforcement point dropping what {!permits} denies.  The middlebox
    reveals its presence iff every currently installed rule is
    visible. *)

val rules_constraining : t -> user:int -> rule list
(** All deny rules that match some traffic of [user] (as source or
    destination). *)

val visible_rules : t -> user:int -> rule list
(** The subset of {!rules_constraining} the user is allowed to read. *)

val rule_transparency : t -> user:int -> float
(** |visible| / |constraining|; 1.0 when nothing constrains the user.
    The paper's courtesy metric: "it becomes a courtesy, not a real
    requirement." *)
