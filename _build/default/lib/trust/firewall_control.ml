module Packet = Tussle_netsim.Packet
module Middlebox = Tussle_netsim.Middlebox

type authority = Admin | End_user of int

type selector = {
  sel_src : int option;
  sel_dst : int option;
  sel_port : int option;
}

type rule = {
  rule_id : int;
  issued_by : authority;
  allow : bool;
  selector : selector;
  visible_to_subjects : bool;
}

type t = {
  default_allow : bool;
  users_may_override : bool;
  mutable rules : rule list; (* newest first *)
  mutable next_id : int;
}

let create ?(default_allow = true) ?(users_may_override = false) () =
  { default_allow; users_may_override; rules = []; next_id = 0 }

let any = { sel_src = None; sel_dst = None; sel_port = None }

let within_authority authority selector =
  match authority with
  | Admin -> true
  | End_user u -> selector.sel_src = Some u || selector.sel_dst = Some u

let add_rule t authority ~allow ?(visible = true) selector =
  if not (within_authority authority selector) then Error `Beyond_authority
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    t.rules <-
      {
        rule_id = id;
        issued_by = authority;
        allow;
        selector;
        visible_to_subjects = visible;
      }
      :: t.rules;
    Ok id
  end

let remove_rule t authority id =
  match List.find_opt (fun r -> r.rule_id = id) t.rules with
  | None -> Error `Not_owner
  | Some r ->
    let may_remove =
      match (authority, r.issued_by) with
      | Admin, _ -> true
      | End_user u, End_user v -> u = v
      | End_user _, Admin -> false
    in
    if not may_remove then Error `Not_owner
    else begin
      t.rules <- List.filter (fun r' -> r'.rule_id <> id) t.rules;
      Ok ()
    end

let sel_matches sel (p : Packet.t) =
  let ok field value =
    match field with None -> true | Some v -> v = value
  in
  ok sel.sel_src p.Packet.src
  && ok sel.sel_dst p.Packet.dst
  && ok sel.sel_port (Packet.visible_port p)

let permits t p =
  let matching = List.filter (fun r -> sel_matches r.selector p) t.rules in
  let admin = List.find_opt (fun r -> r.issued_by = Admin) matching in
  let user =
    List.find_opt
      (fun r -> match r.issued_by with End_user _ -> true | Admin -> false)
      matching
  in
  (* rules lists are newest-first, so find_opt picks the most recent of
     each authority *)
  match (admin, user, t.users_may_override) with
  | _, Some u, true -> u.allow
  | Some a, _, _ -> a.allow
  | None, Some u, false -> u.allow
  | None, None, _ -> t.default_allow

let middlebox t =
  let all_visible () =
    List.for_all (fun r -> r.visible_to_subjects) t.rules
  in
  Middlebox.make ~reveals_presence:(all_visible ()) ~name:"controlled-firewall"
    (fun p -> if permits t p then Middlebox.Forward else Middlebox.Drop)

let concerns_user rule ~user =
  (* the rule can match some traffic of the user: either endpoint is
     pinned to the user, or is a wildcard *)
  match (rule.selector.sel_src, rule.selector.sel_dst) with
  | Some s, _ when s = user -> true
  | _, Some d when d = user -> true
  | None, _ | _, None -> true
  | Some _, Some _ -> false

let rules_constraining t ~user =
  List.filter (fun r -> (not r.allow) && concerns_user r ~user) t.rules

let visible_rules t ~user =
  List.filter (fun r -> r.visible_to_subjects) (rules_constraining t ~user)

let rule_transparency t ~user =
  let constraining = rules_constraining t ~user in
  match constraining with
  | [] -> 1.0
  | _ ->
    float_of_int (List.length (visible_rules t ~user))
    /. float_of_int (List.length constraining)
