(** Probabilistic packet marking for IP traceback (§II-B).

    Savage's design premise, quoted by the paper: current solutions
    "are dependent on a model of cooperation that no longer exists
    universally in the network", and traceback is the canonical
    mechanism that works {e without} the attacker's cooperation — the
    victim reconstructs the attack path from marks that routers stamp
    into packets with some probability.

    This is the node-sampling variant: each router on the path
    overwrites the mark with probability [p].  A mark from the router
    [d] hops upstream of the victim survives with probability
    [p * (1-p)^(d-1)], so closer routers dominate the sample and the
    path order can be recovered by sorting mark counts. *)

type observation = (int * int) list
(** (router, marks received) pairs. *)

val simulate :
  Tussle_prelude.Rng.t -> path:int list -> p:float -> packets:int ->
  observation
(** [simulate rng ~path ~p ~packets]: [path] lists routers from the
    attacker side to the victim side (the victim is not included).
    Returns mark counts per router (routers with zero marks are
    included with count 0).  Raises [Invalid_argument] on [p] outside
    (0, 1) or a non-positive packet count. *)

val reconstruct : observation -> int list
(** Order routers by descending mark count (ties by router id): the
    inferred attacker-to-victim path is the reverse ordering —
    fewest-marked router first. *)

val accuracy : truth:int list -> guess:int list -> float
(** Fraction of positions where the inferred path names the right
    router; 1.0 on a perfect reconstruction.  0 when lengths differ. *)

val expected_marks : p:float -> distance:int -> packets:int -> float
(** The analytic expectation [packets * p * (1-p)^(distance-1)] for a
    router [distance] hops upstream of the victim — used to validate
    the simulation in tests. *)
