type t = {
  n : int;
  edges : (int, (int * float) list) Hashtbl.t; (* truster -> [(trustee, w)] *)
}

let create n =
  if n < 0 then invalid_arg "Trust_graph.create: negative size";
  { n; edges = Hashtbl.create (max 16 n) }

let parties t = t.n

let check t i name =
  if i < 0 || i >= t.n then invalid_arg (name ^ ": party out of range")

let set_trust t ~truster ~trustee w =
  check t truster "Trust_graph.set_trust";
  check t trustee "Trust_graph.set_trust";
  if w < 0.0 || w > 1.0 then invalid_arg "Trust_graph.set_trust: weight not in [0,1]";
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.edges truster) in
  let cur = List.remove_assoc trustee cur in
  Hashtbl.replace t.edges truster ((trustee, w) :: cur)

let direct_trust t ~truster ~trustee =
  check t truster "Trust_graph.direct_trust";
  check t trustee "Trust_graph.direct_trust";
  if truster = trustee then 1.0
  else
    match Hashtbl.find_opt t.edges truster with
    | None -> 0.0
    | Some l -> Option.value ~default:0.0 (List.assoc_opt trustee l)

let derived_trust ?(max_depth = 4) t ~truster ~trustee =
  check t truster "Trust_graph.derived_trust";
  check t trustee "Trust_graph.derived_trust";
  if max_depth < 1 then invalid_arg "Trust_graph.derived_trust: depth < 1";
  if truster = trustee then 1.0
  else begin
    (* best.(v).(d) = best product reaching v in exactly <= d hops; simple
       depth-bounded Bellman-Ford since max_depth is small *)
    let best = Array.make t.n 0.0 in
    best.(truster) <- 1.0;
    let result = ref 0.0 in
    for _ = 1 to max_depth do
      let next = Array.copy best in
      Hashtbl.iter
        (fun u succs ->
          if best.(u) > 0.0 then
            List.iter
              (fun (v, w) ->
                let candidate = best.(u) *. w in
                if candidate > next.(v) then next.(v) <- candidate)
              succs)
        t.edges;
      Array.blit next 0 best 0 t.n;
      best.(truster) <- 1.0;
      if best.(trustee) > !result then result := best.(trustee)
    done;
    !result
  end

let trusts ?max_depth t ~threshold a b =
  derived_trust ?max_depth t ~truster:a ~trustee:b >= threshold

let add_mutual t a b w =
  set_trust t ~truster:a ~trustee:b w;
  set_trust t ~truster:b ~trustee:a w

let revoke t ~truster ~trustee =
  check t truster "Trust_graph.revoke";
  check t trustee "Trust_graph.revoke";
  match Hashtbl.find_opt t.edges truster with
  | None -> ()
  | Some l -> Hashtbl.replace t.edges truster (List.remove_assoc trustee l)

let mean_pairwise_trust ?max_depth t =
  if t.n <= 1 then 0.0
  else begin
    let acc = ref 0.0 in
    for a = 0 to t.n - 1 do
      for b = 0 to t.n - 1 do
        if a <> b then
          acc := !acc +. derived_trust ?max_depth t ~truster:a ~trustee:b
      done
    done;
    !acc /. float_of_int (t.n * (t.n - 1))
  end
