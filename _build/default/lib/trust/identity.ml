type scheme =
  | Real_name of string
  | Role of string
  | Pseudonym of string
  | Anonymous

type principal = { id : int; presented : scheme }

let accountability = function
  | Real_name _ -> 1.0
  | Role _ -> 0.8
  | Pseudonym _ -> 0.4
  | Anonymous -> 0.0

let is_anonymous = function
  | Anonymous -> true
  | Real_name _ | Role _ | Pseudonym _ -> false

let disguised_anonymity ~claimed ~actual =
  is_anonymous actual && not (is_anonymous claimed)

type acceptance_policy = {
  min_accountability : float;
  accept_pseudonyms : bool;
}

let open_policy = { min_accountability = 0.0; accept_pseudonyms = true }

let accountable_only = { min_accountability = 0.8; accept_pseudonyms = false }

let accepts policy scheme =
  accountability scheme >= policy.min_accountability
  &&
  match scheme with
  | Pseudonym _ -> policy.accept_pseudonyms
  | Real_name _ | Role _ | Anonymous -> true

let scheme_to_string = function
  | Real_name s -> "real:" ^ s
  | Role s -> "role:" ^ s
  | Pseudonym s -> "pseudonym:" ^ s
  | Anonymous -> "anonymous"
