module Rng = Tussle_prelude.Rng

type observation = (int * int) list

let simulate rng ~path ~p ~packets =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Traceback.simulate: p not in (0,1)";
  if packets <= 0 then invalid_arg "Traceback.simulate: no packets";
  if path = [] then invalid_arg "Traceback.simulate: empty path";
  let counts = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace counts r 0) path;
  for _ = 1 to packets do
    (* the packet travels attacker -> victim; each router overwrites the
       mark with probability p *)
    let mark = ref None in
    List.iter (fun r -> if Rng.bernoulli rng p then mark := Some r) path;
    match !mark with
    | Some r ->
      Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
    | None -> ()
  done;
  List.map (fun r -> (r, Option.value ~default:0 (Hashtbl.find_opt counts r))) path
  |> List.sort compare

let reconstruct obs =
  (* victim-closest routers are marked most; the attacker-to-victim
     order is ascending mark count *)
  List.sort
    (fun (ra, ca) (rb, cb) ->
      match compare ca cb with 0 -> compare ra rb | c -> c)
    obs
  |> List.map fst

let accuracy ~truth ~guess =
  if List.length truth <> List.length guess then 0.0
  else if truth = [] then 1.0
  else begin
    let hits =
      List.fold_left2
        (fun acc a b -> if a = b then acc + 1 else acc)
        0 truth guess
    in
    float_of_int hits /. float_of_int (List.length truth)
  end

let expected_marks ~p ~distance ~packets =
  if distance < 1 then invalid_arg "Traceback.expected_marks: distance < 1";
  float_of_int packets *. p *. ((1.0 -. p) ** float_of_int (distance - 1))
