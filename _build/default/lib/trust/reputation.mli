(** Reputation as a third-party trust signal (§V-B): "Web sites assess
    and report the reputation of other sites."

    Beta-reputation model (Jøsang & Ismail): each rating is a positive
    or negative observation; the score is the posterior mean
    [(pos + 1) / (pos + neg + 2)] of a Beta(pos+1, neg+1) — starting at
    an uninformed 0.5.  A forgetting factor discounts old evidence so
    reformed (or decayed) behaviour shows through. *)

type t

val create : ?forgetting:float -> int -> t
(** [create n]: reputation records for subjects [0 .. n-1].
    [forgetting] in (0, 1] scales existing evidence before each new
    rating (default 1.0 = never forget). *)

val rate : t -> subject:int -> good:bool -> unit

val score : t -> subject:int -> float
(** Posterior mean in (0, 1); 0.5 with no evidence. *)

val observations : t -> subject:int -> float * float
(** Current (positive, negative) evidence mass. *)

val ranking : t -> (int * float) list
(** Subjects sorted by descending score (ties by id). *)
