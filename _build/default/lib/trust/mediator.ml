type transaction = { gain : float; loss : float; p_honest : float }

type mediator =
  | No_mediator
  | Liability_cap of { cap : float; fee : float }
  | Certifier of { assurance : float; fee : float }
  | Escrow of { fee : float }

let validate tx =
  if tx.loss < 0.0 then invalid_arg "Mediator: negative loss";
  if tx.p_honest < 0.0 || tx.p_honest > 1.0 then
    invalid_arg "Mediator: p_honest not in [0,1]"

let expected_utility tx m =
  validate tx;
  match m with
  | No_mediator ->
    (tx.p_honest *. tx.gain) -. ((1.0 -. tx.p_honest) *. tx.loss)
  | Liability_cap { cap; fee } ->
    if cap < 0.0 || fee < 0.0 then invalid_arg "Mediator: negative cap/fee";
    (tx.p_honest *. tx.gain)
    -. ((1.0 -. tx.p_honest) *. Float.min tx.loss cap)
    -. fee
  | Certifier { assurance; fee } ->
    if assurance < 0.0 || assurance > 1.0 || fee < 0.0 then
      invalid_arg "Mediator: bad certifier parameters";
    let p' = tx.p_honest +. (assurance *. (1.0 -. tx.p_honest)) in
    (p' *. tx.gain) -. ((1.0 -. p') *. tx.loss) -. fee
  | Escrow { fee } ->
    if fee < 0.0 then invalid_arg "Mediator: negative fee";
    (tx.p_honest *. tx.gain) -. fee

let should_transact tx m = expected_utility tx m > 0.0

let best_mediator tx = function
  | [] -> invalid_arg "Mediator.best_mediator: empty list"
  | first :: rest ->
    List.fold_left
      (fun (bm, bu) m ->
        let u = expected_utility tx m in
        if u > bu then (m, u) else (bm, bu))
      (first, expected_utility tx first)
      rest

let enabled_transactions txs mediators =
  List.filter_map
    (fun tx ->
      match mediators with
      | [] -> None
      | _ ->
        let m, u = best_mediator tx mediators in
        if u > 0.0 then Some (tx, m) else None)
    txs

let mediator_to_string = function
  | No_mediator -> "none"
  | Liability_cap { cap; fee } -> Printf.sprintf "liability-cap(%g,fee=%g)" cap fee
  | Certifier { assurance; fee } ->
    Printf.sprintf "certifier(%g,fee=%g)" assurance fee
  | Escrow { fee } -> Printf.sprintf "escrow(fee=%g)" fee
