(** Hand-written lexer for the policy language. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW_SAYS
  | KW_ALLOW
  | KW_DENY
  | KW_ON
  | KW_WHERE
  | KW_DELEGABLE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | OP_EQ  (** [==] *)
  | OP_NEQ
  | OP_LT
  | OP_LE
  | OP_GT
  | OP_GE
  | LPAREN
  | RPAREN
  | DOT
  | STAR
  | EOF

exception Lex_error of string * int
(** Message and character offset. *)

val tokenize : string -> token list
(** Whole-input tokenization, ending with [EOF].  Comments run from ['#']
    to end of line.  Raises {!Lex_error} on an illegal character or an
    unterminated string. *)

val token_to_string : token -> string
