(** Abstract syntax of the tussle policy language.

    The language is a small KeyNote/PolicyMaker-style trust-management
    assertion language (§II-B): principals issue signed-by-construction
    assertions that allow or deny other principals actions on resources,
    optionally under attribute conditions, optionally delegable.

    Concrete syntax (one assertion per statement):
    {v
      alice says allow bob send on mailserver where port == 25 and size < 1000.
      root says allow isp1 connect on "*" delegable.
      root says deny eve "*" on "*".
    v} *)

type value = Int of int | Str of string | Bool of bool

type binop = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Attr of string  (** attribute looked up in the request environment *)
  | Const of value
  | Cmp of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type effect = Allow | Deny

type assertion = {
  issuer : string;
  effect : effect;
  subject : string;  (** ["*"] matches any principal *)
  action : string;  (** ["*"] matches any action *)
  resource : string;  (** ["*"] matches any resource *)
  condition : expr option;
  delegable : bool;
}

type policy = assertion list

val value_equal : value -> value -> bool

val pp_value : Format.formatter -> value -> unit

val pp_expr : Format.formatter -> expr -> unit

val pp_assertion : Format.formatter -> assertion -> unit

val attributes_of_expr : expr -> string list
(** All attribute names mentioned, each once, sorted — the expression's
    footprint in the language ontology. *)

val attributes_of_policy : policy -> string list
