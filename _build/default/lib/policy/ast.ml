type value = Int of int | Str of string | Bool of bool

type binop = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Attr of string
  | Const of value
  | Cmp of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type effect = Allow | Deny

type assertion = {
  issuer : string;
  effect : effect;
  subject : string;
  action : string;
  resource : string;
  condition : expr option;
  delegable : bool;
}

type policy = assertion list

let value_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Str _ | Bool _), _ -> false

let pp_value ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.fprintf ppf "%b" b

let binop_to_string = function
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Attr a -> Format.fprintf ppf "%s" a
  | Const v -> pp_value ppf v
  | Cmp (op, l, r) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr l (binop_to_string op) pp_expr r
  | And (l, r) -> Format.fprintf ppf "(%a and %a)" pp_expr l pp_expr r
  | Or (l, r) -> Format.fprintf ppf "(%a or %a)" pp_expr l pp_expr r
  | Not e -> Format.fprintf ppf "(not %a)" pp_expr e

let pp_assertion ppf a =
  Format.fprintf ppf "%s says %s %s %s on %s" a.issuer
    (match a.effect with Allow -> "allow" | Deny -> "deny")
    a.subject a.action a.resource;
  (match a.condition with
  | Some c -> Format.fprintf ppf " where %a" pp_expr c
  | None -> ());
  if a.delegable then Format.fprintf ppf " delegable";
  Format.fprintf ppf "."

let rec attrs_acc acc = function
  | Attr a -> a :: acc
  | Const _ -> acc
  | Cmp (_, l, r) | And (l, r) | Or (l, r) -> attrs_acc (attrs_acc acc l) r
  | Not e -> attrs_acc acc e

let attributes_of_expr e = List.sort_uniq compare (attrs_acc [] e)

let attributes_of_policy p =
  let collect acc a =
    match a.condition with None -> acc | Some e -> attrs_acc acc e
  in
  List.sort_uniq compare (List.fold_left collect [] p)
