type decision = Allowed | Denied | Not_applicable

type request = {
  subject : string;
  action : string;
  resource : string;
  attributes : (string * Ast.value) list;
}

let lookup env a = List.assoc_opt a env

let rec eval_value env = function
  | Ast.Attr a -> lookup env a
  | Ast.Const v -> Some v
  | Ast.Cmp _ | Ast.And _ | Ast.Or _ | Ast.Not _ as e ->
    Some (Ast.Bool (eval_bool env e))

and eval_bool env = function
  | Ast.Const (Ast.Bool b) -> b
  | Ast.Const (Ast.Int _ | Ast.Str _) -> false
  | Ast.Attr a -> begin
    match lookup env a with Some (Ast.Bool b) -> b | Some _ | None -> false
  end
  | Ast.And (l, r) -> eval_bool env l && eval_bool env r
  | Ast.Or (l, r) -> eval_bool env l || eval_bool env r
  | Ast.Not e -> not (eval_bool env e)
  | Ast.Cmp (op, l, r) -> begin
    match (eval_value env l, eval_value env r) with
    | Some lv, Some rv -> compare_values op lv rv
    | _, _ -> false
  end

and compare_values op lv rv =
  match (op, lv, rv) with
  | Ast.Eq, _, _ -> Ast.value_equal lv rv
  | Ast.Neq, _, _ -> not (Ast.value_equal lv rv)
  | Ast.Lt, Ast.Int a, Ast.Int b -> a < b
  | Ast.Le, Ast.Int a, Ast.Int b -> a <= b
  | Ast.Gt, Ast.Int a, Ast.Int b -> a > b
  | Ast.Ge, Ast.Int a, Ast.Int b -> a >= b
  | Ast.Lt, Ast.Str a, Ast.Str b -> String.compare a b < 0
  | Ast.Le, Ast.Str a, Ast.Str b -> String.compare a b <= 0
  | Ast.Gt, Ast.Str a, Ast.Str b -> String.compare a b > 0
  | Ast.Ge, Ast.Str a, Ast.Str b -> String.compare a b >= 0
  | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _ -> false

let eval_expr env e = eval_bool env e

let name_matches pattern name = String.equal pattern "*" || String.equal pattern name

let scope_matches (a : Ast.assertion) ~action ~resource =
  name_matches a.Ast.action action && name_matches a.Ast.resource resource

let matches (a : Ast.assertion) req =
  name_matches a.Ast.subject req.subject
  && scope_matches a ~action:req.action ~resource:req.resource
  &&
  match a.Ast.condition with
  | None -> true
  | Some c -> eval_expr req.attributes c

(* Is [principal] empowered (directly or by delegation chain from the
   root) to issue assertions covering this action/resource?  Conditions
   on delegation assertions are evaluated in the request environment. *)
let rooted_issuer ~root policy ~action ~resource ~attributes principal =
  let rec reach seen p =
    if String.equal p root then true
    else if List.mem p seen then false
    else
      List.exists
        (fun (a : Ast.assertion) ->
          a.Ast.effect = Ast.Allow && a.Ast.delegable
          && name_matches a.Ast.subject p
          && scope_matches a ~action ~resource
          && (match a.Ast.condition with
             | None -> true
             | Some c -> eval_expr attributes c)
          && reach (p :: seen) a.Ast.issuer)
        policy
  in
  reach [] principal

let decide ~root policy req =
  let rooted (a : Ast.assertion) =
    rooted_issuer ~root policy ~action:req.action ~resource:req.resource
      ~attributes:req.attributes a.Ast.issuer
  in
  let applicable = List.filter (fun a -> matches a req && rooted a) policy in
  if List.exists (fun (a : Ast.assertion) -> a.Ast.effect = Ast.Deny) applicable
  then Denied
  else if
    List.exists (fun (a : Ast.assertion) -> a.Ast.effect = Ast.Allow) applicable
  then Allowed
  else Not_applicable

let decision_to_string = function
  | Allowed -> "allowed"
  | Denied -> "denied"
  | Not_applicable -> "not-applicable"

let permitted ~root policy req = decide ~root policy req = Allowed
