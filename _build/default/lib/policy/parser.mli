(** Recursive-descent parser for the policy language.

    Grammar:
    {v
      policy     := assertion*
      assertion  := name "says" ("allow" | "deny") name name "on" name
                    [ "where" orexpr ] [ "delegable" ] "."
      name       := IDENT | STRING | "*"
      orexpr     := andexpr { "or" andexpr }
      andexpr    := notexpr { "and" notexpr }
      notexpr    := "not" notexpr | atom
      atom       := "(" orexpr ")" | "true" | "false" | term RELOP term
      term       := IDENT | INT | STRING
    v}

    An IDENT term in a condition denotes an attribute lookup; INT and
    STRING are constants. *)

exception Parse_error of string

val parse : string -> Ast.policy
(** Parse a whole policy text.  Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)

val parse_assertion : string -> Ast.assertion
(** Parse exactly one assertion. *)

val parse_expr : string -> Ast.expr
(** Parse a bare condition expression (for tests and interactive use). *)
