module Rng = Tussle_prelude.Rng

type ontology = string list

type constraint_demand = { label : string; footprint : string list }

let make_ontology attrs = List.sort_uniq compare attrs

let expressible ont c = List.for_all (fun a -> List.mem a ont) c.footprint

let coverage ont cs =
  match cs with
  | [] -> 1.0
  | _ ->
    let ok = List.length (List.filter (expressible ont) cs) in
    float_of_int ok /. float_of_int (List.length cs)

let standard_attributes =
  [
    "port"; "app"; "qos"; "size"; "encrypted"; "tunneled"; "src-trust";
    "time-of-day"; "payment";
  ]

let unanticipated_attributes =
  [
    "jurisdiction"; "copyright-status"; "carbon-intensity"; "ai-generated";
    "age-attestation"; "exclusive-deal";
  ]

let random_constraints rng ~n ~anticipated_bias =
  if n < 0 then invalid_arg "Ontology.random_constraints: negative n";
  let std = Array.of_list standard_attributes in
  let unant = Array.of_list unanticipated_attributes in
  List.init n (fun i ->
      let k = 1 + Rng.int rng 3 in
      let pick () =
        if Rng.bernoulli rng anticipated_bias then Rng.choice rng std
        else Rng.choice rng unant
      in
      let footprint = List.sort_uniq compare (List.init k (fun _ -> pick ())) in
      { label = Printf.sprintf "constraint-%d" i; footprint })
