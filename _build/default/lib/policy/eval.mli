(** Policy evaluation: compliance checking with delegation chains.

    A request asks: may [subject] perform [action] on [resource], given
    attribute bindings?  The decision procedure is KeyNote-flavoured:

    {ol
    {- An assertion is {e rooted} when its issuer is the trust root, or
       the issuer was itself granted a matching, {e delegable}, rooted
       [Allow] for that action/resource (chains of any depth; cycles are
       handled).}
    {- If any rooted [Deny] matches the request, the answer is
       [Denied] (deny overrides).}
    {- Otherwise, if any rooted [Allow] matches, the answer is
       [Allowed].}
    {- Otherwise [Not_applicable] — the default-deny posture of a
       "that which is not permitted is forbidden" network, distinguishable
       from an explicit denial so callers can tell silence from refusal.}}

    Conditions evaluate in a request environment; a missing attribute
    makes the condition false (fail-closed), never an error. *)

type decision = Allowed | Denied | Not_applicable

type request = {
  subject : string;
  action : string;
  resource : string;
  attributes : (string * Ast.value) list;
}

val eval_expr : (string * Ast.value) list -> Ast.expr -> bool
(** Evaluate a condition in an environment.  Comparisons between
    incompatible types and lookups of absent attributes are false. *)

val matches : Ast.assertion -> request -> bool
(** Does the assertion's subject/action/resource (with ["*"] wildcards)
    and condition cover the request? *)

val decide : root:string -> Ast.policy -> request -> decision

val decision_to_string : decision -> string

val permitted : root:string -> Ast.policy -> request -> bool
(** [decide = Allowed]. *)
