type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW_SAYS
  | KW_ALLOW
  | KW_DENY
  | KW_ON
  | KW_WHERE
  | KW_DELEGABLE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | OP_EQ
  | OP_NEQ
  | OP_LT
  | OP_LE
  | OP_GT
  | OP_GE
  | LPAREN
  | RPAREN
  | DOT
  | STAR
  | EOF

exception Lex_error of string * int

let keyword_of = function
  | "says" -> Some KW_SAYS
  | "allow" -> Some KW_ALLOW
  | "deny" -> Some KW_DENY
  | "on" -> Some KW_ON
  | "where" -> Some KW_WHERE
  | "delegable" -> Some KW_DELEGABLE
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '#' -> go (skip_line i) acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | '.' -> go (i + 1) (DOT :: acc)
      | '*' -> go (i + 1) (STAR :: acc)
      | '=' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (OP_EQ :: acc)
        else raise (Lex_error ("expected '=='", i))
      | '!' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (OP_NEQ :: acc)
        else raise (Lex_error ("expected '!='", i))
      | '<' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (OP_LE :: acc)
        else go (i + 1) (OP_LT :: acc)
      | '>' ->
        if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (OP_GE :: acc)
        else go (i + 1) (OP_GT :: acc)
      | '"' ->
        let rec scan j =
          if j >= n then raise (Lex_error ("unterminated string", i))
          else if input.[j] = '"' then j
          else scan (j + 1)
        in
        let close = scan (i + 1) in
        let s = String.sub input (i + 1) (close - i - 1) in
        go (close + 1) (STRING s :: acc)
      | c when is_digit c ->
        let rec scan j = if j < n && is_digit input.[j] then scan (j + 1) else j in
        let stop = scan i in
        go stop (INT (int_of_string (String.sub input i (stop - i))) :: acc)
      | c when is_ident_start c ->
        let rec scan j =
          if j < n && is_ident_char input.[j] then scan (j + 1) else j
        in
        let stop = scan i in
        let word = String.sub input i (stop - i) in
        let tok =
          match keyword_of word with Some kw -> kw | None -> IDENT word
        in
        go stop (tok :: acc)
      | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, i))
  in
  go 0 []

let token_to_string = function
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | INT n -> Printf.sprintf "INT(%d)" n
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | KW_SAYS -> "says"
  | KW_ALLOW -> "allow"
  | KW_DENY -> "deny"
  | KW_ON -> "on"
  | KW_WHERE -> "where"
  | KW_DELEGABLE -> "delegable"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | OP_EQ -> "=="
  | OP_NEQ -> "!="
  | OP_LT -> "<"
  | OP_LE -> "<="
  | OP_GT -> ">"
  | OP_GE -> ">="
  | LPAREN -> "("
  | RPAREN -> ")"
  | DOT -> "."
  | STAR -> "*"
  | EOF -> "<eof>"
