exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok what =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s, found %s" what
            (Lexer.token_to_string (peek st))))

let parse_name st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | Lexer.STRING s ->
    advance st;
    s
  | Lexer.STAR ->
    advance st;
    "*"
  | t ->
    raise
      (Parse_error
         (Printf.sprintf "expected a name, found %s" (Lexer.token_to_string t)))

let binop_of_token = function
  | Lexer.OP_EQ -> Some Ast.Eq
  | Lexer.OP_NEQ -> Some Ast.Neq
  | Lexer.OP_LT -> Some Ast.Lt
  | Lexer.OP_LE -> Some Ast.Le
  | Lexer.OP_GT -> Some Ast.Gt
  | Lexer.OP_GE -> Some Ast.Ge
  | _ -> None

let parse_term st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    Ast.Attr s
  | Lexer.INT n ->
    advance st;
    Ast.Const (Ast.Int n)
  | Lexer.STRING s ->
    advance st;
    Ast.Const (Ast.Str s)
  | Lexer.KW_TRUE ->
    advance st;
    Ast.Const (Ast.Bool true)
  | Lexer.KW_FALSE ->
    advance st;
    Ast.Const (Ast.Bool false)
  | t ->
    raise
      (Parse_error
         (Printf.sprintf "expected a term, found %s" (Lexer.token_to_string t)))

let rec parse_or st =
  let left = parse_and st in
  if peek st = Lexer.KW_OR then begin
    advance st;
    Ast.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = Lexer.KW_AND then begin
    advance st;
    Ast.And (left, parse_and st)
  end
  else left

and parse_not st =
  if peek st = Lexer.KW_NOT then begin
    advance st;
    Ast.Not (parse_not st)
  end
  else parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN "')'";
    e
  | Lexer.KW_TRUE ->
    advance st;
    Ast.Const (Ast.Bool true)
  | Lexer.KW_FALSE ->
    advance st;
    Ast.Const (Ast.Bool false)
  | _ -> begin
    let left = parse_term st in
    match binop_of_token (peek st) with
    | Some op ->
      advance st;
      let right = parse_term st in
      Ast.Cmp (op, left, right)
    | None ->
      raise
        (Parse_error
           (Printf.sprintf "expected a comparison operator, found %s"
              (Lexer.token_to_string (peek st))))
  end

let parse_assertion_body st =
  let issuer = parse_name st in
  expect st Lexer.KW_SAYS "'says'";
  let effect =
    match peek st with
    | Lexer.KW_ALLOW ->
      advance st;
      Ast.Allow
    | Lexer.KW_DENY ->
      advance st;
      Ast.Deny
    | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected 'allow' or 'deny', found %s"
              (Lexer.token_to_string t)))
  in
  let subject = parse_name st in
  let action = parse_name st in
  expect st Lexer.KW_ON "'on'";
  let resource = parse_name st in
  let condition =
    if peek st = Lexer.KW_WHERE then begin
      advance st;
      Some (parse_or st)
    end
    else None
  in
  let delegable =
    if peek st = Lexer.KW_DELEGABLE then begin
      advance st;
      true
    end
    else false
  in
  expect st Lexer.DOT "'.'";
  { Ast.issuer; effect; subject; action; resource; condition; delegable }

let parse text =
  let st = { tokens = Lexer.tokenize text } in
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc
    else go (parse_assertion_body st :: acc)
  in
  go []

let parse_assertion text =
  match parse text with
  | [ a ] -> a
  | l ->
    raise
      (Parse_error
         (Printf.sprintf "expected exactly one assertion, found %d"
            (List.length l)))

let parse_expr text =
  let st = { tokens = Lexer.tokenize text } in
  let e = parse_or st in
  if peek st <> Lexer.EOF then raise (Parse_error "trailing input after expression");
  e
