lib/policy/ontology.ml: Array List Printf Tussle_prelude
