lib/policy/ast.mli: Format
