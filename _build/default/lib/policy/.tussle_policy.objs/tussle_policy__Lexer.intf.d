lib/policy/lexer.mli:
