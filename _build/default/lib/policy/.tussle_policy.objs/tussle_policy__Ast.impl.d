lib/policy/ast.ml: Format List String
