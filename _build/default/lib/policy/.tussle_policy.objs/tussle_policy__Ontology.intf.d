lib/policy/ontology.mli: Tussle_prelude
