lib/policy/parser.ml: Ast Lexer List Printf
