lib/policy/lexer.ml: List Printf String
