lib/policy/eval.ml: Ast List String
