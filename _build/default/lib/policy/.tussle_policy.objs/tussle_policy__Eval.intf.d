lib/policy/eval.mli: Ast
