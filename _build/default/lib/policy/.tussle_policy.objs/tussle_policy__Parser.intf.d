lib/policy/parser.mli: Ast
