(** Ontology bounding: what a policy language can and cannot say.

    §II-B: "by imposing an ontology on what can be expressed, \[policy
    languages\] bound the tussle that can be expressed within defined
    limits ... It can also be defeating, if it prevents the system from
    capturing and acting on tussles that were not anticipated."

    We make that measurable.  An ontology is the set of attributes the
    language's deployment exposes.  A {e tussle constraint} is a demand
    some stakeholder wants enforced, with a footprint of attributes it
    needs.  A constraint is expressible iff its footprint is contained
    in the ontology.  Experiment E10 sweeps ontology size against a
    constraint population that includes "unanticipated" attributes and
    shows the expressiveness ceiling. *)

type ontology = string list
(** Attribute vocabulary (deduplicated on construction). *)

type constraint_demand = {
  label : string;
  footprint : string list;  (** attributes the constraint needs *)
}

val make_ontology : string list -> ontology

val expressible : ontology -> constraint_demand -> bool

val coverage : ontology -> constraint_demand list -> float
(** Fraction of constraints expressible.  1.0 on an empty list. *)

val standard_attributes : string list
(** The vocabulary an anticipated-tussles designer would ship: port,
    app, qos, size, encrypted, tunneled, src-trust, time-of-day, payment. *)

val unanticipated_attributes : string list
(** Attributes of tussles the designers did not foresee (the paper's
    warning): jurisdiction, copyright-status, carbon-intensity,
    ai-generated, age-attestation, exclusive-deal. *)

val random_constraints :
  Tussle_prelude.Rng.t ->
  n:int ->
  anticipated_bias:float ->
  constraint_demand list
(** Synthesize [n] constraints with 1–3 attributes each; each attribute
    is drawn from {!standard_attributes} with probability
    [anticipated_bias], otherwise from {!unanticipated_attributes}. *)
