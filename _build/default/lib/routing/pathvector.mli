(** Path-vector inter-domain routing (BGP-like) with business policies.

    This is the paper's canonical "interface designed for tussle"
    (§IV-C): ISPs interconnect but are competitors, so the protocol lets
    each node choose and re-advertise routes according to private
    policy, and reveals only the chosen paths — "a path vector protocol
    makes it harder to see what the internal choices are."

    Policies follow Gao–Rexford:
    {ul
    {- {b Preference}: customer-learned routes over peer-learned over
       provider-learned; then shorter AS path; then lower next-hop id.}
    {- {b Export}: own and customer-learned routes go to every
       neighbour; peer- and provider-learned routes go to customers
       only.}}

    Edges labelled {!Tussle_netsim.Topology.Internal} belong to a single
    trust domain: they are treated as customer edges in both directions
    (always exported, maximally preferred), which reduces to shortest
    AS-path routing on policy-free graphs. *)

type route_class = Own | Via_customer | Via_peer | Via_provider

type route = {
  dst : int;
  as_path : int list;  (** next hop first, destination last *)
  cls : route_class;
}

type t

val compute :
  ?max_rounds:int ->
  ?export_filter:(int -> int -> route -> bool) ->
  (Tussle_netsim.Topology.edge * Tussle_netsim.Topology.relationship)
  Tussle_prelude.Graph.t ->
  t
(** Run synchronous path-vector rounds to a fixpoint.  [export_filter u w
    r] may additionally veto exporting [r] from [u] to [w] (modelling
    unilateral business refusals).  [max_rounds] defaults to
    [4 * node_count + 8]; non-convergence by then raises [Failure]
    (policy dispute wheel). *)

val next_hop : t -> node:int -> dst:int -> int option

val as_path : t -> src:int -> dst:int -> int list option
(** Chosen AS path from [src] (exclusive) to [dst] (inclusive). *)

val route_at : t -> node:int -> dst:int -> route option

val reachable : t -> src:int -> dst:int -> bool

val reachability_ratio : t -> float
(** Fraction of ordered node pairs (src <> dst) with a route. *)

val forwarding : t -> Tussle_netsim.Net.forwarding

val rounds_to_converge : t -> int

val updates_applied : t -> int
(** Total number of best-route changes during convergence (message-load
    proxy). *)

val visible_paths : t -> (int * int * int list) list
(** What an outside observer of the routing system sees: the {e chosen}
    (src, dst, path) triples — and nothing about internal costs or
    rejected alternatives. *)

val class_to_string : route_class -> string
