lib/routing/linkstate.ml: Array List Tussle_netsim Tussle_prelude
