lib/routing/overlay.ml: Linkstate List Option Tussle_netsim Tussle_prelude
