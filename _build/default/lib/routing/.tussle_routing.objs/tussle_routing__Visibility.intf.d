lib/routing/visibility.mli: Linkstate Pathvector Tussle_netsim Tussle_prelude
