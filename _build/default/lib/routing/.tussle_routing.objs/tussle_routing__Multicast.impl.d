lib/routing/multicast.ml: Array Hashtbl List Tussle_prelude
