lib/routing/sourceroute.ml: List Tussle_netsim
