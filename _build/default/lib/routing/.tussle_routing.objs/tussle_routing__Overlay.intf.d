lib/routing/overlay.mli: Linkstate Tussle_netsim Tussle_prelude
