lib/routing/pathvector.ml: Array Hashtbl List Option Tussle_netsim Tussle_prelude
