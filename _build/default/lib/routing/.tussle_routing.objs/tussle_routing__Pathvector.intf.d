lib/routing/pathvector.mli: Tussle_netsim Tussle_prelude
