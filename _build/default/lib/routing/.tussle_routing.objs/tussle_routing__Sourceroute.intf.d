lib/routing/sourceroute.mli: Tussle_netsim
