lib/routing/visibility.ml: Hashtbl Linkstate List Pathvector Tussle_prelude
