lib/routing/multicast.mli: Tussle_netsim Tussle_prelude
