lib/routing/linkstate.mli: Tussle_netsim Tussle_prelude
