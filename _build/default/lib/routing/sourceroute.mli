(** Provider-level source routing: the user controls the wide-area path.

    §V-A4: "The Internet should support a mechanism for choice such as
    source routing that would permit a customer to control the path of
    his packets at the level of providers", and "the design ... must
    incorporate a recognition of the need for payment" — ISPs refuse
    source-routed traffic they are not compensated for.

    Routes are expressed as loose waypoint lists (a transit AS to steer
    through) riding on the existing forwarding tables; refusal is a
    middlebox at the transit that drops uncompensated source-routed
    packets. *)

val waypoints_via : transit:int -> int list
(** Waypoint list steering a packet through the given transit AS. *)

val refusal_middlebox : paid:bool -> Tussle_netsim.Middlebox.t
(** Middlebox for a transit AS: when [paid] is false, drops any packet
    carrying a (non-empty) source route — "why should they be
    enthusiastic about this?".  When [paid], forwards everything. *)

val transit_choices : Tussle_netsim.Topology.two_tier -> int list
(** The transits a customer may steer through (the competitive wide-area
    market of §V-A4). *)

val pick_transit :
  score:(int -> float) -> int list -> int option
(** The user's choice mechanism: pick the transit with the highest
    score (ties to the lowest id).  [None] on an empty list. *)
