module Graph = Tussle_prelude.Graph
module Topology = Tussle_netsim.Topology

type route_class = Own | Via_customer | Via_peer | Via_provider

type route = { dst : int; as_path : int list; cls : route_class }

type t = {
  n : int;
  (* rib.(node) : dst -> best route *)
  rib : (int, route) Hashtbl.t array;
  rounds : int;
  updates : int;
}

let class_rank = function
  | Own -> 0
  | Via_customer -> 1
  | Via_peer -> 2
  | Via_provider -> 3

let class_to_string = function
  | Own -> "own"
  | Via_customer -> "customer"
  | Via_peer -> "peer"
  | Via_provider -> "provider"

(* Classification of a route at [u] learned from neighbour [v], given
   u's relationship toward v.  Internal edges behave like customer
   edges (single trust domain). *)
let classify rel =
  match rel with
  | Topology.Customer_of -> Via_provider (* v is u's provider *)
  | Topology.Provider_of -> Via_customer (* v is u's customer *)
  | Topology.Peer_with -> Via_peer
  | Topology.Internal -> Via_customer

(* Gao-Rexford export rule: own/customer routes to everyone; peer and
   provider routes only to customers (and over internal edges). *)
let exportable route rel_to_neighbor =
  match route.cls with
  | Own | Via_customer -> true
  | Via_peer | Via_provider -> begin
    match rel_to_neighbor with
    | Topology.Provider_of | Topology.Internal -> true
    | Topology.Customer_of | Topology.Peer_with -> false
  end

let better a b =
  let ra = class_rank a.cls and rb = class_rank b.cls in
  if ra <> rb then ra < rb
  else
    let la = List.length a.as_path and lb = List.length b.as_path in
    if la <> lb then la < lb
    else begin
      match (a.as_path, b.as_path) with
      | ha :: _, hb :: _ -> ha < hb
      | _, _ -> false
    end

let compute ?max_rounds ?(export_filter = fun _ _ _ -> true) g =
  let n = Graph.node_count g in
  let max_rounds = Option.value ~default:((4 * n) + 8) max_rounds in
  let rib = Array.init n (fun _ -> Hashtbl.create 16) in
  for u = 0 to n - 1 do
    Hashtbl.replace rib.(u) u { dst = u; as_path = []; cls = Own }
  done;
  let updates = ref 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    (* snapshot of the previous round's RIBs for synchronous update *)
    let snapshot = Array.map Hashtbl.copy rib in
    for u = 0 to n - 1 do
      let import (v, (_, rel_uv)) =
        (* u learns from neighbour v what v exports toward u.  v's
           relationship toward u is the label on edge (v, u). *)
        let rel_vu =
          match Graph.find_edge g v u with
          | Some (_, r) -> r
          | None -> rel_uv (* asymmetric graph: assume declared symmetry *)
        in
        let consider _dst (r : route) =
          if (not (List.mem u r.as_path)) && r.dst <> u then
            if exportable r rel_vu && export_filter v u r then begin
              let candidate =
                { dst = r.dst; as_path = v :: r.as_path; cls = classify rel_uv }
              in
              match Hashtbl.find_opt rib.(u) r.dst with
              | Some cur when not (better candidate cur) -> ()
              | Some _ | None ->
                Hashtbl.replace rib.(u) r.dst candidate;
                incr updates;
                changed := true
            end
        in
        Hashtbl.iter consider snapshot.(v)
      in
      List.iter import (Graph.succ g u)
    done
  done;
  if !changed then failwith "Pathvector.compute: no convergence (policy dispute)";
  { n; rib; rounds = !rounds; updates = !updates }

let check t node name =
  if node < 0 || node >= t.n then invalid_arg (name ^ ": node out of range")

let route_at t ~node ~dst =
  check t node "Pathvector.route_at";
  check t dst "Pathvector.route_at";
  Hashtbl.find_opt t.rib.(node) dst

let next_hop t ~node ~dst =
  match route_at t ~node ~dst with
  | Some { as_path = hop :: _; _ } -> Some hop
  | Some { as_path = []; _ } | None -> None

let as_path t ~src ~dst =
  match route_at t ~node:src ~dst with
  | Some r when r.dst = dst && (r.as_path <> [] || src = dst) ->
    Some r.as_path
  | Some _ | None -> if src = dst then Some [] else None

let reachable t ~src ~dst =
  src = dst || Option.is_some (next_hop t ~node:src ~dst)

let reachability_ratio t =
  if t.n <= 1 then 1.0
  else begin
    let ok = ref 0 in
    for src = 0 to t.n - 1 do
      for dst = 0 to t.n - 1 do
        if src <> dst && reachable t ~src ~dst then incr ok
      done
    done;
    float_of_int !ok /. float_of_int (t.n * (t.n - 1))
  end

let forwarding t ~node ~target packet =
  ignore packet;
  if node = target then None else next_hop t ~node ~dst:target

let rounds_to_converge t = t.rounds

let updates_applied t = t.updates

let visible_paths t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    let add dst r = if dst <> src then acc := (src, dst, r.as_path) :: !acc in
    Hashtbl.iter add t.rib.(src)
  done;
  List.sort compare !acc
