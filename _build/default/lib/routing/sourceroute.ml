module Middlebox = Tussle_netsim.Middlebox
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology

let waypoints_via ~transit = [ transit ]

let refusal_middlebox ~paid =
  let policy (p : Packet.t) =
    if (not paid) && p.Packet.source_route <> [] then Middlebox.Drop
    else Middlebox.Forward
  in
  Middlebox.make ~reveals_presence:false ~name:"source-route-refusal" policy

let transit_choices (tt : Topology.two_tier) = tt.Topology.transits

let pick_transit ~score = function
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun best t ->
          let s = score t and sb = score best in
          if s > sb || (s = sb && t < best) then t else best)
        first rest
    in
    Some best
