module Graph = Tussle_prelude.Graph

type tree = {
  source : int;
  receivers : int list;
  edges : (int * int) list;
}

let shortest_path_tree g ~source ~receivers =
  let _, pred = Graph.dijkstra g ~weight:(fun _ -> 1.0) ~source in
  let edge_set = Hashtbl.create 64 in
  let add_path r =
    (* walk predecessors back to the source, collecting edges *)
    let rec walk node =
      let p = pred.(node) in
      if p >= 0 then begin
        if not (Hashtbl.mem edge_set (p, node)) then begin
          Hashtbl.replace edge_set (p, node) ();
          walk p
        end
        (* already joined the tree: the rest of the path is present *)
      end
    in
    if r <> source && pred.(r) >= 0 then walk r
  in
  List.iter add_path receivers;
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] in
  { source; receivers; edges = List.sort compare edges }

let covered t =
  let reachable = Hashtbl.create 16 in
  Hashtbl.replace reachable t.source ();
  (* tree edges are parent->child along shortest paths; propagate *)
  let rec saturate () =
    let changed = ref false in
    List.iter
      (fun (u, v) ->
        if Hashtbl.mem reachable u && not (Hashtbl.mem reachable v) then begin
          Hashtbl.replace reachable v ();
          changed := true
        end)
      t.edges;
    if !changed then saturate ()
  in
  saturate ();
  List.filter (fun r -> Hashtbl.mem reachable r) t.receivers

let multicast_link_load t = List.length t.edges

let unicast_link_load g ~source ~receivers =
  let dist, _ = Graph.dijkstra g ~weight:(fun _ -> 1.0) ~source in
  List.fold_left
    (fun acc r ->
      if r = source || dist.(r) = infinity then acc
      else acc + int_of_float dist.(r))
    0 receivers

let savings_ratio g ~source ~receivers =
  let uni = unicast_link_load g ~source ~receivers in
  if uni = 0 then 0.0
  else
    let t = shortest_path_tree g ~source ~receivers in
    1.0 -. (float_of_int (multicast_link_load t) /. float_of_int uni)

let router_state t =
  (* nodes with tree children hold forwarding state for the group *)
  let parents = Hashtbl.create 16 in
  List.iter (fun (u, _) -> Hashtbl.replace parents u ()) t.edges;
  Hashtbl.length parents

type deployment_params = {
  groups : float;
  state_cost : float;
  bandwidth_value : float;
  payment : bool;
}

let isp_profit p =
  if p.groups < 0.0 || p.state_cost < 0.0 || p.bandwidth_value < 0.0 then
    invalid_arg "Multicast.isp_profit: negative parameter";
  let revenue = if p.payment then p.groups *. p.bandwidth_value else 0.0 in
  revenue -. (p.groups *. p.state_cost)

let deploys p = isp_profit p > 0.0
