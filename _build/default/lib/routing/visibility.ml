module Graph = Tussle_prelude.Graph

let linkstate_exposure ls ~total_links =
  if total_links <= 0 then invalid_arg "Visibility.linkstate_exposure";
  float_of_int (List.length (Linkstate.visible_link_costs ls))
  /. float_of_int total_links

let record_path seen (src, _dst, path) =
  let rec walk prev = function
    | [] -> ()
    | hop :: rest ->
      Hashtbl.replace seen (prev, hop) ();
      walk hop rest
  in
  walk src path

let pathvector_exposure pv ~total_links =
  if total_links <= 0 then invalid_arg "Visibility.pathvector_exposure";
  let seen = Hashtbl.create 64 in
  List.iter (record_path seen) (Pathvector.visible_paths pv);
  float_of_int (Hashtbl.length seen) /. float_of_int total_links

let pathvector_exposure_at pv ~node ~total_links =
  if total_links <= 0 then invalid_arg "Visibility.pathvector_exposure_at";
  let seen = Hashtbl.create 64 in
  List.iter
    (fun ((src, _, _) as entry) -> if src = node then record_path seen entry)
    (Pathvector.visible_paths pv);
  float_of_int (Hashtbl.length seen) /. float_of_int total_links

let linkstate_policy_levers _ls = 0

let pathvector_policy_levers g = Graph.edge_count g
