(** Information-exposure and policy-expressiveness metrics for routing
    protocols.

    §IV-C: "In the context of tussle, it matters if choices and the
    consequence of choices are visible."  These metrics quantify the
    BGP-vs-OSPF contrast the paper draws: a link-state protocol exports
    every internal cost; a path-vector protocol reveals only chosen
    paths, and offers a per-neighbour export veto that link-state cannot
    express. *)

val linkstate_exposure : Linkstate.t -> total_links:int -> float
(** Fraction of the topology's links whose cost is readable from the
    flooded database (1.0 whenever flooding succeeded). *)

val pathvector_exposure : Pathvector.t -> total_links:int -> float
(** Fraction of directed links that appear on some {e chosen, visible}
    path, over all vantage points — everything else about the network
    stays private. *)

val pathvector_exposure_at : Pathvector.t -> node:int -> total_links:int -> float
(** Exposure from a single vantage point: the links an observer sitting
    at [node] learns from the announcements it receives.  This is the
    honest comparison with link-state, where {e every} node sees the
    whole map. *)

val linkstate_policy_levers : Linkstate.t -> int
(** Number of per-neighbour export decisions a node can make in
    link-state routing: 0 — the protocol requires full export. *)

val pathvector_policy_levers :
  (Tussle_netsim.Topology.edge * Tussle_netsim.Topology.relationship)
  Tussle_prelude.Graph.t ->
  int
(** Number of independent export decisions available under path-vector:
    one veto per directed adjacency. *)
