module Graph = Tussle_prelude.Graph
module Topology = Tussle_netsim.Topology

type t = {
  n : int;
  dist : float array array; (* dist.(src).(dst) *)
  pred : int array array; (* pred.(src).(dst) = predecessor on path from src *)
  costs : (int * int * float) list;
}

let compute g ~metric =
  let weight (e : Topology.edge) =
    match metric with `Latency -> e.Topology.latency | `Hops -> 1.0
  in
  let n = Graph.node_count g in
  let dist = Array.make n [||] and pred = Array.make n [||] in
  for src = 0 to n - 1 do
    let d, p = Graph.dijkstra g ~weight ~source:src in
    dist.(src) <- d;
    pred.(src) <- p
  done;
  let costs =
    Graph.fold_edges g ~init:[] ~f:(fun acc u v e -> (u, v, weight e) :: acc)
    |> List.rev
  in
  { n; dist; pred; costs }

let check t node name =
  if node < 0 || node >= t.n then invalid_arg (name ^ ": node out of range")

let path t ~src ~dst =
  check t src "Linkstate.path";
  check t dst "Linkstate.path";
  if t.dist.(src).(dst) = infinity then None
  else begin
    let rec build node acc =
      if node = src then src :: acc else build t.pred.(src).(node) (node :: acc)
    in
    Some (build dst [])
  end

let next_hop t ~node ~dst =
  check t node "Linkstate.next_hop";
  check t dst "Linkstate.next_hop";
  if node = dst then None
  else
    match path t ~src:node ~dst with
    | Some (_ :: hop :: _) -> Some hop
    | Some _ | None -> None

let distance t ~src ~dst =
  check t src "Linkstate.distance";
  check t dst "Linkstate.distance";
  let d = t.dist.(src).(dst) in
  if d = infinity then None else Some d

let forwarding t ~node ~target packet =
  ignore packet;
  next_hop t ~node ~dst:target

let visible_link_costs t = t.costs

let node_count t = t.n
