(** Multicast: the other failed open end-to-end service (§VII).

    "This follows on the failure of multicast to emerge as an open
    end-to-end service ... The case study of the failure to deploy
    multicast is left as an exercise for the reader."  We do the
    exercise: source-rooted shortest-path trees quantify the bandwidth
    multicast saves, and the deployment game shows why savings alone
    never deployed it — the routers holding per-group state are not the
    parties reaping the savings.

    Trees are shortest-path trees (DVMRP/PIM-style), built from the
    link-state map. *)

type tree = {
  source : int;
  receivers : int list;
  edges : (int * int) list;  (** directed tree edges, parent -> child *)
}

val shortest_path_tree :
  Tussle_netsim.Topology.edge Tussle_prelude.Graph.t ->
  source:int -> receivers:int list -> tree
(** Union of shortest paths (hop metric) from [source] to each
    reachable receiver.  Unreachable receivers are silently absent from
    the tree (check {!covered}).  Raises [Invalid_argument] on
    out-of-range nodes. *)

val covered : tree -> int list
(** Receivers actually reachable through the tree. *)

val multicast_link_load : tree -> int
(** Links a single multicast transmission crosses: the tree edges. *)

val unicast_link_load :
  Tussle_netsim.Topology.edge Tussle_prelude.Graph.t ->
  source:int -> receivers:int list -> int
(** Links crossed when the source unicasts a copy to every reachable
    receiver: the sum of shortest-path lengths. *)

val savings_ratio :
  Tussle_netsim.Topology.edge Tussle_prelude.Graph.t ->
  source:int -> receivers:int list -> float
(** [1 - multicast/unicast]; 0 when there is nothing to send. *)

val router_state : tree -> int
(** Interior nodes holding per-group forwarding state: the cost side of
    the deployment ledger, borne by ISPs. *)

type deployment_params = {
  groups : float;  (** concurrent multicast groups *)
  state_cost : float;  (** ISP cost per group of router state + ops *)
  bandwidth_value : float;
      (** value of the bandwidth saved per group — accrues to content
          providers, NOT to the ISP, unless a payment mechanism exists *)
  payment : bool;  (** can content providers pay ISPs for multicast? *)
}

val isp_profit : deployment_params -> float
(** The deploying ISP's per-period profit: [- groups * state_cost],
    plus [groups * bandwidth_value] only when [payment].  The paper's
    diagnosis in one expression. *)

val deploys : deployment_params -> bool
(** [isp_profit > 0]. *)
