type design = Entangled | Separated

type purpose = Machine | Mailbox | Brand

type t = {
  design : design;
  (* (label, purpose) -> owner *)
  table : (string * purpose, string) Hashtbl.t;
  mutable disruptions : int;
  mutable disputes : int;
}

let create design =
  { design; table = Hashtbl.create 64; disruptions = 0; disputes = 0 }

let design t = t.design

let holder_of_label t label =
  (* in the entangled design, any purpose binding claims the label *)
  let purposes = [ Machine; Mailbox; Brand ] in
  List.find_map
    (fun p -> Hashtbl.find_opt t.table (label, p) |> Option.map (fun o -> (p, o)))
    purposes

let register t ~owner ~label purpose =
  match t.design with
  | Separated -> begin
    match Hashtbl.find_opt t.table (label, purpose) with
    | Some existing when not (String.equal existing owner) -> Error (`Taken existing)
    | Some _ | None ->
      Hashtbl.replace t.table (label, purpose) owner;
      Ok ()
  end
  | Entangled -> begin
    match holder_of_label t label with
    | Some (_, existing) when not (String.equal existing owner) ->
      Error (`Taken existing)
    | Some _ | None ->
      Hashtbl.replace t.table (label, purpose) owner;
      Ok ()
  end

let lookup t ~label purpose = Hashtbl.find_opt t.table (label, purpose)

let dispute t ~claimant ~label =
  t.disputes <- t.disputes + 1;
  match t.design with
  | Separated -> begin
    (* only the brand directory entry is contested *)
    match Hashtbl.find_opt t.table (label, Brand) with
    | None -> `No_target
    | Some _ ->
      Hashtbl.replace t.table (label, Brand) claimant;
      `Transferred []
  end
  | Entangled -> begin
    match holder_of_label t label with
    | None -> `No_target
    | Some (_, previous_owner) ->
      (* the whole label moves; service bindings of the loser break *)
      let disrupted =
        List.filter
          (fun p ->
            match Hashtbl.find_opt t.table (label, p) with
            | Some o when String.equal o previous_owner ->
              Hashtbl.replace t.table (label, p) claimant;
              true
            | Some _ -> false
            | None -> false)
          [ Machine; Mailbox ]
      in
      (match Hashtbl.find_opt t.table (label, Brand) with
      | Some _ | None -> Hashtbl.replace t.table (label, Brand) claimant);
      t.disruptions <- t.disruptions + List.length disrupted;
      `Transferred disrupted
  end

let bindings t =
  Hashtbl.fold (fun (label, p) owner acc -> (label, p, owner) :: acc) t.table []
  |> List.sort compare

let disruptions t = t.disruptions

let disputes_filed t = t.disputes

let spillover t =
  if t.disputes = 0 then 0.0
  else float_of_int t.disruptions /. float_of_int t.disputes
