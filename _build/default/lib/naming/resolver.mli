(** Name resolution, honest and otherwise (§IV-D, §VI-A).

    The paper lists "intentional perversion of DNS information" among
    the mechanisms parties use in tussle, and "kludges to the DNS"
    among the enhancements that erode transparency.  This module
    provides authoritative records, a caching resolver, and the
    resolver-operator policies actually seen in the wild:

    {ul
    {- [Honest]: answer from the authority, cache by TTL;}
    {- [Nxdomain_monetizing]: rewrite failures to the operator's ad
       server — lying about absence;}
    {- [Blocking of names]: deny resolution of the listed names —
       lying about presence;}
    {- [Redirecting of mapping]: steer listed names to an operator-
       chosen address (the "kludge" that CDNs and captive portals
       ride).}}

    The user's counter-mechanism is the paper's favourite: {e choice}
    of resolver. *)

type record = { name : string; address : int; ttl : float }

type authority

val authority : record list -> authority
(** Authoritative zone data.  Later records shadow earlier ones with
    the same name. *)

type policy =
  | Honest
  | Nxdomain_monetizing of int  (** the ad server's address *)
  | Blocking of string list
  | Redirecting of (string * int) list

type t

val create : ?policy:policy -> authority -> t
(** A resolver over the authority (default [Honest]). *)

type answer =
  | Address of int
  | Nxdomain
  | Refused

val resolve : t -> now:float -> string -> answer
(** Resolve a name at time [now] (drives cache expiry; calls must be
    made with non-decreasing [now]). *)

val truthful : t -> now:float -> string -> bool
(** Does this resolver's answer agree with the authority (including
    agreeing about absence)? *)

val cache_hits : t -> int

val authority_queries : t -> int

val truthfulness :
  t -> now:float -> names:string list -> float
(** Fraction of the given names answered truthfully. *)
