lib/naming/resolver.ml: Hashtbl List
