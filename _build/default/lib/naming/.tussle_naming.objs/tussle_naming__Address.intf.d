lib/naming/address.mli:
