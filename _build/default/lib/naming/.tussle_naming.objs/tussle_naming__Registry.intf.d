lib/naming/registry.mli:
