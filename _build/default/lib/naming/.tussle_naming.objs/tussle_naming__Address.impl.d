lib/naming/address.ml: Printf
