lib/naming/resolver.mli:
