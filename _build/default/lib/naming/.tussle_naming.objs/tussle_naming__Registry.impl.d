lib/naming/registry.ml: Hashtbl List Option String
