(** Addressing schemes and the cost of changing providers (§V-A1).

    "Either a customer is locked into his provider by the
    provider-based addresses, or he obtains a separate block of
    addresses that is not topologically significant and therefore adds
    to the size of the forwarding tables in the core."

    Three schemes, two costs.  [switching_cost] is the customer-side
    renumbering pain (the lock-in the provider enjoys); [routing_table
    _burden] is the system-side price of making addresses portable —
    the two horns of the paper's dilemma.  Experiment E1 feeds
    [switching_cost] into the market model and watches churn and
    surplus respond. *)

type scheme =
  | Provider_based of { static_hosts : int }
      (** addresses embed the provider; every statically configured host
          must be renumbered by hand on a switch *)
  | Dynamic of { hosts : int }
      (** DHCP + dynamic DNS: renumbering is automated; residual cost is
          a small per-site reconfiguration *)
  | Portable of { prefixes : int }
      (** provider-independent space: zero renumbering, but each prefix
          occupies a slot in every core routing table *)

val switching_cost :
  ?per_static_host:float -> ?site_overhead:float -> scheme -> float
(** Customer-side cost of changing providers.  Defaults: 1.0 per
    statically configured host, 0.5 site overhead for dynamic sites,
    0 for portable space. *)

val routing_table_burden : core_routers:int -> scheme -> float
(** System-side cost: portable prefixes cost one slot in each core
    router; provider-based and dynamic aggregation cost none. *)

val total_cost :
  ?per_static_host:float ->
  ?site_overhead:float ->
  ?slot_cost:float ->
  core_routers:int ->
  scheme ->
  float
(** [switching_cost + slot_cost * routing_table_burden]: the combined
    dilemma, for comparing schemes end to end. *)

val scheme_to_string : scheme -> string
