type scheme =
  | Provider_based of { static_hosts : int }
  | Dynamic of { hosts : int }
  | Portable of { prefixes : int }

let switching_cost ?(per_static_host = 1.0) ?(site_overhead = 0.5) = function
  | Provider_based { static_hosts } ->
    if static_hosts < 0 then invalid_arg "Address: negative hosts";
    float_of_int static_hosts *. per_static_host
  | Dynamic { hosts } ->
    if hosts < 0 then invalid_arg "Address: negative hosts";
    site_overhead
  | Portable _ -> 0.0

let routing_table_burden ~core_routers = function
  | Provider_based _ | Dynamic _ -> 0.0
  | Portable { prefixes } ->
    if prefixes < 0 then invalid_arg "Address: negative prefixes";
    float_of_int (prefixes * core_routers)

let total_cost ?per_static_host ?site_overhead ?(slot_cost = 0.01)
    ~core_routers scheme =
  switching_cost ?per_static_host ?site_overhead scheme
  +. (slot_cost *. routing_table_burden ~core_routers scheme)

let scheme_to_string = function
  | Provider_based { static_hosts } ->
    Printf.sprintf "provider-based(%d static hosts)" static_hosts
  | Dynamic { hosts } -> Printf.sprintf "dynamic(%d hosts)" hosts
  | Portable { prefixes } -> Printf.sprintf "portable(%d prefixes)" prefixes
