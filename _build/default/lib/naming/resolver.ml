type record = { name : string; address : int; ttl : float }

type authority = (string, record) Hashtbl.t

let authority records =
  let tbl = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace tbl r.name r) records;
  tbl

type policy =
  | Honest
  | Nxdomain_monetizing of int
  | Blocking of string list
  | Redirecting of (string * int) list

type answer = Address of int | Nxdomain | Refused

type cache_entry = { answer : answer; expires : float }

type t = {
  auth : authority;
  policy : policy;
  cache : (string, cache_entry) Hashtbl.t;
  mutable hits : int;
  mutable upstream : int;
}

let create ?(policy = Honest) auth =
  { auth; policy; cache = Hashtbl.create 32; hits = 0; upstream = 0 }

let authoritative_answer t name =
  t.upstream <- t.upstream + 1;
  match Hashtbl.find_opt t.auth name with
  | Some r -> (Address r.address, r.ttl)
  | None -> (Nxdomain, 60.0)

let apply_policy t name (answer, ttl) =
  match t.policy with
  | Honest -> (answer, ttl)
  | Nxdomain_monetizing ad -> begin
    match answer with
    | Nxdomain -> (Address ad, ttl)
    | Address _ | Refused -> (answer, ttl)
  end
  | Blocking names ->
    if List.mem name names then (Refused, ttl) else (answer, ttl)
  | Redirecting mapping -> begin
    match List.assoc_opt name mapping with
    | Some addr -> (Address addr, ttl)
    | None -> (answer, ttl)
  end

let resolve t ~now name =
  match Hashtbl.find_opt t.cache name with
  | Some entry when entry.expires > now ->
    t.hits <- t.hits + 1;
    entry.answer
  | Some _ | None ->
    let answer, ttl = apply_policy t name (authoritative_answer t name) in
    Hashtbl.replace t.cache name { answer; expires = now +. ttl };
    answer

let truthful t ~now name =
  let truth =
    match Hashtbl.find_opt t.auth name with
    | Some r -> Address r.address
    | None -> Nxdomain
  in
  resolve t ~now name = truth

let cache_hits t = t.hits

let authority_queries t = t.upstream

let truthfulness t ~now ~names =
  match names with
  | [] -> 1.0
  | _ ->
    let ok = List.length (List.filter (truthful t ~now) names) in
    float_of_int ok /. float_of_int (List.length names)
