(** Name registry with trademark contention: the DNS design lesson
    (§IV-A).

    "The current design is entangled in debate because DNS names are
    used both to name machines and to express trademark ... names that
    express trademarks should be used for as little else as possible."

    Two registry designs are offered:

    {ul
    {- {b Entangled}: one namespace serves machine naming, mailbox
       naming and brand expression (the deployed DNS).  A trademark
       dispute over a label seizes the label — and with it every
       machine and mailbox bound under it: the dispute {e spills over}
       into unrelated function.}
    {- {b Separated}: brand expression lives in its own directory;
       machines and mailboxes hang off stable, dispute-proof
       identifiers.  The same dispute seizes only the brand entry.}}

    Spillover — service bindings broken per dispute — is the isolation
    metric of experiment E7. *)

type design = Entangled | Separated

type purpose = Machine | Mailbox | Brand

type t

val create : design -> t

val design : t -> design

val register :
  t -> owner:string -> label:string -> purpose ->
  (unit, [ `Taken of string ]) result
(** Register a binding.  In the [Entangled] design, one label is one
    slot regardless of purpose (first owner takes all purposes); in
    [Separated], the brand directory and the service namespace are
    independent, and distinct owners may hold [label] as a brand and as
    a machine name. *)

val lookup : t -> label:string -> purpose -> string option
(** Owner of the binding, if live (not seized). *)

val dispute :
  t -> claimant:string -> label:string ->
  [ `Transferred of purpose list | `No_target ]
(** A trademark holder wins a dispute over [label]: the brand binding
    transfers to the claimant.  In [Entangled], every purpose bound to
    the label transfers with it (machines and mailboxes break for their
    former owner); in [Separated], only the brand entry moves.  Returns
    the purposes whose service was disrupted for the previous owner
    (excluding [Brand] itself). *)

val bindings : t -> (string * purpose * string) list
(** All live (label, purpose, owner) triples, sorted. *)

val disruptions : t -> int
(** Total service bindings (machines + mailboxes) broken by disputes so
    far. *)

val disputes_filed : t -> int

val spillover : t -> float
(** [disruptions / disputes_filed]; 0 before any dispute.  The paper
    predicts ≈ 0 for [Separated] and > 0 for [Entangled]. *)
