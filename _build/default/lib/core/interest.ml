type issue =
  | Transparency
  | Privacy
  | Control
  | Revenue
  | Openness
  | Security
  | Innovation
  | Accountability

let all_issues =
  [
    Transparency; Privacy; Control; Revenue; Openness; Security; Innovation;
    Accountability;
  ]

let issue_to_string = function
  | Transparency -> "transparency"
  | Privacy -> "privacy"
  | Control -> "control"
  | Revenue -> "revenue"
  | Openness -> "openness"
  | Security -> "security"
  | Innovation -> "innovation"
  | Accountability -> "accountability"

type stance = (issue * float) list

let clamp x = Float.max (-1.0) (Float.min 1.0 x)

let make bindings =
  let rec dedupe seen = function
    | [] -> []
    | (i, w) :: rest ->
      if List.mem i seen then dedupe seen rest
      else (i, clamp w) :: dedupe (i :: seen) rest
  in
  dedupe [] bindings

let weight stance issue =
  Option.value ~default:0.0 (List.assoc_opt issue stance)

let dot a b =
  List.fold_left
    (fun acc issue -> acc +. (weight a issue *. weight b issue))
    0.0 all_issues

let norm a = sqrt (dot a a)

let alignment a b =
  let na = norm a and nb = norm b in
  if na = 0.0 || nb = 0.0 then 0.0 else dot a b /. (na *. nb)

let adverse ?(threshold = 0.25) a b = alignment a b < -.threshold

let merely_different ?(threshold = 0.25) a b =
  let al = alignment a b in
  al >= -.threshold && al <= threshold

let scale k stance = List.map (fun (i, w) -> (i, clamp (k *. w))) stance

let combine stances =
  List.filter_map
    (fun issue ->
      let w =
        List.fold_left (fun acc s -> acc +. weight s issue) 0.0 stances
      in
      if w = 0.0 then None else Some (issue, clamp w))
    all_issues

let pp ppf stance =
  Format.fprintf ppf "{";
  List.iteri
    (fun k (i, w) ->
      Format.fprintf ppf "%s%s=%.2f"
        (if k > 0 then ", " else "")
        (issue_to_string i) w)
    stance;
  Format.fprintf ppf "}"
