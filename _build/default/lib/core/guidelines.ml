type app_design = {
  app_name : string;
  server_choices : int;
  third_party_mediators_selectable : bool;
  supports_e2e_encryption : bool;
  user_controls_in_network_features : bool;
  interfaces_open : bool;
  value_flow_designed : bool;
  identity_framework : bool;
  contested_functions_separated : bool;
  failure_reporting : bool;
  anonymous_mode_honest : bool;
}

type guideline = {
  g_id : string;
  principle : string;
  check : app_design -> bool;
  recommendation : string;
}

let catalogue =
  [
    {
      g_id = "G1";
      principle = "Protocols must permit all the parties to express choice";
      check = (fun d -> d.server_choices >= 2);
      recommendation =
        "let users select among at least two interchangeable providers of \
         every serving role (as mail lets users pick SMTP/POP servers)";
    };
    {
      g_id = "G2";
      principle =
        "Explicit ability to select what third parties mediate an interaction";
      check = (fun d -> d.third_party_mediators_selectable);
      recommendation =
        "make certifiers, raters and escrow agents pluggable, chosen by the \
         endpoints, not hard-wired by the application";
    };
    {
      g_id = "G3";
      principle = "The ultimate defense of the end-to-end mode is encryption";
      check = (fun d -> d.supports_e2e_encryption);
      recommendation = "support end-to-end encryption of the payload";
    };
    {
      g_id = "G4";
      principle =
        "If the user controls whether in-network features are invoked, the \
         designer has done as much as they can";
      check = (fun d -> d.user_controls_in_network_features);
      recommendation =
        "gate caches, transcoders and other enhancements on user consent";
    };
    {
      g_id = "G5";
      principle = "Open interfaces allow competition and run-time choice";
      check = (fun d -> d.interfaces_open);
      recommendation =
        "publish the protocol so independent implementations can interoperate";
    };
    {
      g_id = "G6";
      principle = "Whatever the compensation, it must flow, as data must flow";
      check = (fun d -> d.value_flow_designed);
      recommendation =
        "design the payment/compensation path for every party whose service \
         the application consumes";
    };
    {
      g_id = "G7";
      principle = "A framework for identity, not a single identity scheme";
      check = (fun d -> d.identity_framework);
      recommendation =
        "support role, pseudonymous and real-name presentation rather than \
         one global namespace";
    };
    {
      g_id = "G8";
      principle = "Modularize along tussle boundaries";
      check = (fun d -> d.contested_functions_separated);
      recommendation =
        "keep contested functions (billing, moderation, branding) out of the \
         modules that carry stable function";
    };
    {
      g_id = "G9";
      principle =
        "Failures of transparency will occur - design what happens then";
      check = (fun d -> d.failure_reporting);
      recommendation =
        "report failures to the party who can act, in their language";
    };
    {
      g_id = "G10";
      principle =
        "If you are trying to act anonymously, it should be hard to disguise \
         this fact";
      check = (fun d -> d.anonymous_mode_honest);
      recommendation =
        "make anonymous participation distinguishable from identified \
         participation";
    };
  ]

type violation = { guideline : guideline; design : string }

let lint d =
  List.filter_map
    (fun g ->
      if g.check d then None else Some { guideline = g; design = d.app_name })
    catalogue

let score d =
  let total = List.length catalogue in
  let passed = total - List.length (lint d) in
  float_of_int passed /. float_of_int total

let open_design_reference =
  {
    app_name = "federated-mail";
    server_choices = 5;
    third_party_mediators_selectable = true;
    supports_e2e_encryption = true;
    user_controls_in_network_features = true;
    interfaces_open = true;
    value_flow_designed = true;
    identity_framework = true;
    contested_functions_separated = true;
    failure_reporting = true;
    anonymous_mode_honest = true;
  }

let walled_garden_reference =
  {
    app_name = "walled-garden-messenger";
    server_choices = 1;
    third_party_mediators_selectable = false;
    supports_e2e_encryption = false;
    user_controls_in_network_features = false;
    interfaces_open = false;
    value_flow_designed = true;
    (* the one thing walled gardens do design is the payment path *)
    identity_framework = false;
    contested_functions_separated = false;
    failure_reporting = false;
    anonymous_mode_honest = false;
  }

let pp_violation ppf v =
  Format.fprintf ppf "%s violates %s (%s): %s" v.design v.guideline.g_id
    v.guideline.principle v.guideline.recommendation
