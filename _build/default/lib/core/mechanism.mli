(** Mechanisms: the technical artifacts with which tussle is fought.

    "Different parties adapt a mix of mechanisms to try to achieve
    their conflicting goals, and others respond by adapting the
    mechanisms to push back" (§I).  A mechanism shifts the outcome
    stance of the system when active, can be deployed by particular
    stakeholder kinds, and may {e counter} other mechanisms (a tunnel
    neutralizes a port filter; encryption neutralizes inspection).

    Counter-resolution matters: a countered mechanism contributes no
    effect, and countering is itself counterable (DPI counters the
    plain tunnel, encryption counters DPI) — the escalation ladders of
    §V-A2 and §VI-A. *)

type t = {
  name : string;
  deployer : Actor.kind;
  effects : Interest.stance;  (** outcome shift while active *)
  counters : string list;  (** mechanisms this one neutralizes *)
  cost : float;  (** per-round cost to its deployer *)
}

val make :
  ?counters:string list ->
  ?cost:float ->
  name:string ->
  deployer:Actor.kind ->
  Interest.stance ->
  t

val active : t list -> t list
(** Resolve countering among deployed mechanisms to a fixpoint: a
    mechanism is inactive iff some {e active} mechanism counters it.
    Resolution processes counter-chains deterministically; mutual
    countering resolves in favour of the later deployment (the most
    recent move in the escalation wins). *)

val net_effect : t list -> Interest.stance
(** Combined outcome shift of the active subset. *)

val find : t list -> string -> t option

(** {2 Catalogue}

    The mechanisms named in the paper, with effects on the issue axes
    and the counter-relations the text describes. *)

val firewall : t
val port_filter : t

val app_filter : t
(** DPI: sees through plain tunnels, not encryption. *)

val tunnel : t
val encryption : t
val wiretap : t
val nat : t
val value_pricing : t
val qos_closed : t
val qos_open : t
val source_routing : t
val overlay : t
val open_access_mandate : t
val reputation_service : t

val catalogue : t list

val available_to : Actor.kind -> t list
(** Catalogue mechanisms this kind of actor can deploy. *)
