module Rng = Tussle_prelude.Rng
module Stats = Tussle_prelude.Stats

type config = {
  initial_actors : int;
  arrival_rate : float;
  coupling : float;
  commitment_halflife : float;
  steps : int;
}

let default_config =
  {
    initial_actors = 20;
    arrival_rate = 0.0;
    coupling = 0.3;
    commitment_halflife = 20.0;
    steps = 200;
  }

type snapshot = {
  step : int;
  population : int;
  alignment : float;
  mean_commitment : float;
  rigidity : float;
}

type member = { mutable position : float; mutable age : float; pinned : bool }

let commitment cfg m =
  if m.pinned then 1.0
  else 1.0 -. (0.5 ** (m.age /. cfg.commitment_halflife))

let validate cfg =
  if cfg.initial_actors <= 0 then invalid_arg "Actor_network: no actors";
  if cfg.arrival_rate < 0.0 then invalid_arg "Actor_network: negative rate";
  if cfg.coupling <= 0.0 || cfg.coupling > 1.0 then
    invalid_arg "Actor_network: coupling not in (0,1]";
  if cfg.commitment_halflife <= 0.0 then
    invalid_arg "Actor_network: non-positive halflife";
  if cfg.steps <= 0 then invalid_arg "Actor_network: no steps"

let snapshot_of cfg step members =
  let positions = Array.of_list (List.map (fun m -> m.position) members) in
  let commits = Array.of_list (List.map (commitment cfg) members) in
  let dispersion = if Array.length positions < 2 then 0.0 else Stats.stddev positions in
  (* max stddev of values in [0,1] is 0.5 (half at 0, half at 1) *)
  let alignment = Float.max 0.0 (1.0 -. (dispersion /. 0.5)) in
  let mean_commitment = Stats.mean commits in
  {
    step;
    population = List.length members;
    alignment;
    mean_commitment;
    rigidity = alignment *. mean_commitment;
  }

let step_members rng cfg members =
  let positions = List.map (fun m -> m.position) members in
  let mean =
    List.fold_left ( +. ) 0.0 positions /. float_of_int (List.length positions)
  in
  List.iter
    (fun m ->
      if not m.pinned then begin
        let free = 1.0 -. commitment cfg m in
        m.position <- m.position +. (cfg.coupling *. free *. (mean -. m.position))
      end;
      m.age <- m.age +. 1.0)
    members;
  (* Poisson arrivals of fresh, uncommitted actors *)
  let arrivals =
    if cfg.arrival_rate <= 0.0 then 0
    else begin
      (* inverse-transform Poisson sampling, adequate for small rates *)
      let l = exp (-.cfg.arrival_rate) in
      let rec draw k p =
        let p = p *. Rng.float rng 1.0 in
        if p < l then k else draw (k + 1) p
      in
      draw 0 1.0
    end
  in
  members
  @ List.init arrivals (fun _ ->
        { position = Rng.float rng 1.0; age = 0.0; pinned = false })

let run_with rng cfg ~inject =
  validate cfg;
  let members =
    ref
      (List.init cfg.initial_actors (fun _ ->
           { position = Rng.float rng 1.0; age = 0.0; pinned = false }))
  in
  let snaps = ref [ snapshot_of cfg 0 !members ] in
  for step = 1 to cfg.steps do
    members := step_members rng cfg !members;
    (match inject step with
    | [] -> ()
    | extra -> members := !members @ extra);
    snaps := snapshot_of cfg step !members :: !snaps
  done;
  List.rev !snaps

let run rng cfg = run_with rng cfg ~inject:(fun _ -> [])

let final_rigidity snaps =
  match List.rev snaps with
  | [] -> invalid_arg "Actor_network.final_rigidity: empty history"
  | last :: _ -> last.rigidity

let collides rng cfg ~incumbent_size ~incumbent_position =
  if incumbent_size < 0 then invalid_arg "Actor_network.collides: negative size";
  if incumbent_position < 0.0 || incumbent_position > 1.0 then
    invalid_arg "Actor_network.collides: position not in [0,1]";
  let at = cfg.steps / 2 in
  run_with rng cfg ~inject:(fun step ->
      if step = at then
        List.init incumbent_size (fun _ ->
            { position = incumbent_position; age = 0.0; pinned = true })
      else [])
