(** Design-principle scorecard (§IV): does a design accommodate tussle?

    A design is described by its {e control points} (places where some
    stakeholder exercises power), its {e value flows} (who compensates
    whom), and its {e module map} (which functions share a module, and
    which functions are contested).  From these the four properties the
    paper asks of tussle interfaces are scored:

    {ul
    {- {b choice}: can each party select among alternatives?}
    {- {b visibility}: do control points reveal that they constrain?}
    {- {b isolation}: are contested functions modularized apart from
       uncontested ones?}
    {- {b value flow}: does compensation flow wherever service does?}} *)

type control_point = {
  cp_name : string;
  holder : Actor.kind;
  alternatives : int;  (** options the {e subject} of the control can pick among *)
  reveals_presence : bool;
}

type module_map = {
  modules : (string * string list) list;  (** module -> functions *)
  contested : string list;  (** functions inside some tussle space *)
}

type design = {
  design_name : string;
  control_points : control_point list;
  value_flows : (Actor.kind * Actor.kind) list;
      (** (payer, payee): value moves along this edge *)
  service_flows : (Actor.kind * Actor.kind) list;
      (** (consumer, provider): service moves along this edge *)
  module_map : module_map;
}

val choice_score : design -> float
(** Mean over control points of [1 - 1/alternatives]; 0 when a party
    has exactly one option everywhere, approaching 1 with rich choice.
    1.0 for a design with no control points (nothing constrains). *)

val visibility_score : design -> float
(** Fraction of control points that reveal their presence.  1.0 with no
    control points. *)

val isolation_score : design -> float
(** Fraction of {e uncontested} functions that do not share a module
    with a contested function.  1.0 when tussle is fully modularized
    away (or nothing is contested). *)

val value_flow_score : design -> float
(** Fraction of service flows with a matching compensation flow in the
    opposite direction — "whatever the compensation, recognize that it
    must flow, just as much as data must flow."  1.0 with no service
    flows. *)

type scorecard = {
  choice : float;
  visibility : float;
  isolation : float;
  value_flow : float;
  overall : float;  (** unweighted mean *)
}

val score : design -> scorecard

val pp_scorecard : Format.formatter -> scorecard -> unit
