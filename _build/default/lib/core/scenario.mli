(** The run-time tussle engine: mechanisms deployed, countered, and
    withdrawn, round after round.

    "There is no 'final outcome' of these interactions, no stable
    point" (§I).  Each round, actors move in id order: an actor deploys
    the available mechanism that most improves its utility (outcome
    alignment minus deployment cost), or withdraws one of its
    mechanisms if that helps, or passes.  The engine detects both
    fixpoints (the tussle settles) and cycles (the escalation never
    ends) — and the paper predicts, and the examples show, that some
    tussles genuinely cycle. *)

type move =
  | Deploy of string  (** mechanism name *)
  | Withdraw of string
  | Pass

type round = {
  index : int;
  moves : (int * move) list;  (** (actor id, move) in play order *)
  deployed_after : Mechanism.t list;  (** deployment order, oldest first *)
  outcome : Interest.stance;  (** net effect of the active set *)
}

type ending =
  | Fixpoint of int  (** settled after this many rounds *)
  | Cycle of { start : int; period : int }
      (** deployment state repeats: run-time tussle without end *)
  | Horizon  (** max rounds elapsed without fixpoint or detected cycle *)

type result = {
  rounds : round list;
  ending : ending;
  final_outcome : Interest.stance;
  utilities : (int * float) list;  (** final utility per actor id *)
}

val run :
  ?max_rounds:int ->
  actors:Actor.t list ->
  available:(Actor.kind -> Mechanism.t list) ->
  unit ->
  result
(** Run the tussle from an empty deployment (default horizon 50
    rounds).  Determinism: actors move in ascending id, and tie-breaks
    prefer earlier catalogue order. *)

val move_to_string : move -> string

val ending_to_string : ending -> string
