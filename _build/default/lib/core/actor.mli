(** Stakeholders of the Internet milieu (§I).

    "At a minimum these players include users ... commercial ISPs ...
    private sector network providers; governments ...; intellectual
    property rights holders ...; and providers of content and higher
    level services."  Each actor carries a stance over the issues and a
    power weight (its ability to move outcomes). *)

type kind =
  | User
  | Isp
  | Private_network
  | Government
  | Rights_holder
  | Content_provider
  | Designer

val all_kinds : kind list

val kind_to_string : kind -> string

type t = {
  id : int;
  name : string;
  kind : kind;
  stance : Interest.stance;
  power : float;  (** non-negative influence weight *)
}

val make :
  ?power:float -> ?stance:Interest.stance -> id:int -> name:string -> kind -> t
(** Defaults: power 1.0, stance {!default_stance} for the kind. *)

val default_stance : kind -> Interest.stance
(** The paper's sketch of each player's interests, as a stance vector
    (users value privacy/transparency/openness; ISPs revenue and
    control; governments control and accountability; rights holders
    control; content providers openness and revenue; designers
    innovation and openness). *)

val utility : t -> Interest.stance -> float
(** [dot (stance actor) outcome]: how much the actor likes an
    outcome. *)

val adverse : t -> t -> bool

val pp : Format.formatter -> t -> unit
