type t = {
  name : string;
  deployer : Actor.kind;
  effects : Interest.stance;
  counters : string list;
  cost : float;
}

let make ?(counters = []) ?(cost = 0.1) ~name ~deployer effects =
  if cost < 0.0 then invalid_arg "Mechanism.make: negative cost";
  { name; deployer; effects; counters; cost }

(* Newest-wins counter resolution: scan from the most recent deployment
   backwards; a mechanism is active iff nothing already active (i.e.
   deployed later) counters it. *)
let active deployed =
  let rec scan actives = function
    | [] -> actives
    | m :: older ->
      let countered =
        List.exists (fun a -> List.mem m.name a.counters) actives
      in
      scan (if countered then actives else m :: actives) older
  in
  scan [] (List.rev deployed)

let net_effect deployed =
  Interest.combine (List.map (fun m -> m.effects) (active deployed))

let find deployed name =
  List.find_opt (fun m -> String.equal m.name name) deployed

let mech = make

open Interest

let firewall =
  mech ~name:"firewall" ~deployer:Actor.Private_network ~cost:0.2
    (make [ (Security, 0.7); (Transparency, -0.6); (Openness, -0.3) ])

let port_filter =
  mech ~name:"port-filter" ~deployer:Actor.Isp ~cost:0.1
    (make [ (Control, 0.5); (Transparency, -0.5); (Revenue, 0.3) ])

let tunnel =
  mech ~name:"tunnel" ~deployer:Actor.User ~cost:0.1
    ~counters:[ "port-filter"; "firewall" ]
    (make [ (Transparency, 0.4); (Privacy, 0.3); (Control, -0.4) ])

let app_filter =
  mech ~name:"app-filter" ~deployer:Actor.Isp ~cost:0.3
    ~counters:[ "tunnel" ]
    (make [ (Control, 0.6); (Transparency, -0.6); (Privacy, -0.4) ])

let encryption =
  mech ~name:"encryption" ~deployer:Actor.User ~cost:0.1
    ~counters:[ "app-filter"; "wiretap" ]
    (make [ (Privacy, 0.8); (Control, -0.5); (Transparency, 0.2) ])

let wiretap =
  mech ~name:"wiretap" ~deployer:Actor.Government ~cost:0.3
    (make [ (Accountability, 0.4); (Control, 0.5); (Privacy, -0.8) ])

let nat =
  mech ~name:"nat" ~deployer:Actor.User ~cost:0.05
    (make [ (Control, -0.3); (Transparency, -0.2); (Openness, 0.2) ])

let value_pricing =
  mech ~name:"value-pricing" ~deployer:Actor.Isp ~cost:0.1
    (make [ (Revenue, 0.7); (Openness, -0.3) ])

let qos_closed =
  mech ~name:"qos-closed" ~deployer:Actor.Isp ~cost:0.4
    (make [ (Revenue, 0.8); (Openness, -0.6); (Innovation, -0.4) ])

let qos_open =
  mech ~name:"qos-open" ~deployer:Actor.Isp ~cost:0.4
    (make [ (Revenue, 0.4); (Openness, 0.4); (Innovation, 0.3) ])

let source_routing =
  mech ~name:"source-routing" ~deployer:Actor.User ~cost:0.2
    (make [ (Openness, 0.5); (Control, -0.5); (Innovation, 0.3) ])

let overlay =
  mech ~name:"overlay" ~deployer:Actor.User ~cost:0.2
    ~counters:[ "source-route-refusal" ]
    (make [ (Openness, 0.4); (Control, -0.4); (Transparency, 0.3) ])

let open_access_mandate =
  mech ~name:"open-access-mandate" ~deployer:Actor.Government ~cost:0.3
    (make [ (Openness, 0.7); (Revenue, -0.4); (Innovation, 0.4) ])

let reputation_service =
  mech ~name:"reputation-service" ~deployer:Actor.Content_provider ~cost:0.1
    (make [ (Accountability, 0.6); (Security, 0.4); (Openness, 0.2) ])

let catalogue =
  [
    firewall; port_filter; app_filter; tunnel; encryption; wiretap; nat;
    value_pricing; qos_closed; qos_open; source_routing; overlay;
    open_access_mandate; reputation_service;
  ]

let available_to kind = List.filter (fun m -> m.deployer = kind) catalogue
