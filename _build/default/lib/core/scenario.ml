type move = Deploy of string | Withdraw of string | Pass

type round = {
  index : int;
  moves : (int * move) list;
  deployed_after : Mechanism.t list;
  outcome : Interest.stance;
}

type ending =
  | Fixpoint of int
  | Cycle of { start : int; period : int }
  | Horizon

type result = {
  rounds : round list;
  ending : ending;
  final_outcome : Interest.stance;
  utilities : (int * float) list;
}

(* actor's utility of a deployment state: alignment with the net outcome
   minus the cost of its own still-deployed mechanisms *)
let state_utility (actor : Actor.t) deployed =
  let outcome = Mechanism.net_effect deployed in
  let own_cost =
    List.fold_left
      (fun acc (m : Mechanism.t) ->
        if m.Mechanism.deployer = actor.Actor.kind then
          acc +. m.Mechanism.cost
        else acc)
      0.0 deployed
  in
  Actor.utility actor outcome -. own_cost

let deployed_names deployed =
  List.map (fun (m : Mechanism.t) -> m.Mechanism.name) deployed

let best_move (actor : Actor.t) available deployed =
  let current = state_utility actor deployed in
  let options = available actor.Actor.kind in
  let deploy_candidates =
    List.filter_map
      (fun (m : Mechanism.t) ->
        if List.mem m.Mechanism.name (deployed_names deployed) then None
        else
          let u = state_utility actor (deployed @ [ m ]) in
          if u > current +. 1e-9 then Some (Deploy m.Mechanism.name, u)
          else None)
      options
  in
  let withdraw_candidates =
    List.filter_map
      (fun (m : Mechanism.t) ->
        if m.Mechanism.deployer <> actor.Actor.kind then None
        else
          let without =
            List.filter
              (fun (d : Mechanism.t) ->
                not (String.equal d.Mechanism.name m.Mechanism.name))
              deployed
          in
          if List.length without = List.length deployed then None
          else
            let u = state_utility actor without in
            if u > current +. 1e-9 then Some (Withdraw m.Mechanism.name, u)
            else None)
      options
  in
  (* first (catalogue-order) candidate with the maximal gain *)
  let candidates = deploy_candidates @ withdraw_candidates in
  match candidates with
  | [] -> Pass
  | first :: rest ->
    let best =
      List.fold_left
        (fun (bm, bu) (m, u) -> if u > bu +. 1e-9 then (m, u) else (bm, bu))
        first rest
    in
    fst best

let apply_move ~options deployed = function
  | Pass -> deployed
  | Deploy name -> begin
    match
      List.find_opt
        (fun (m : Mechanism.t) -> String.equal m.Mechanism.name name)
        (options @ Mechanism.catalogue)
    with
    | Some m -> deployed @ [ m ]
    | None -> deployed
  end
  | Withdraw name ->
    List.filter (fun (m : Mechanism.t) -> m.Mechanism.name <> name) deployed

let run ?(max_rounds = 50) ~actors ~available () =
  if max_rounds <= 0 then invalid_arg "Scenario.run: non-positive horizon";
  let ordered =
    List.sort (fun (a : Actor.t) b -> compare a.Actor.id b.Actor.id) actors
  in
  let seen = Hashtbl.create 16 in
  let rec go index deployed rounds_acc =
    let key = String.concat "|" (deployed_names deployed) in
    let repeat = Hashtbl.find_opt seen key in
    if index >= max_rounds then finish deployed rounds_acc Horizon
    else begin
      match repeat with
      | Some start when rounds_acc <> [] ->
        finish deployed rounds_acc (Cycle { start; period = index - start })
      | Some _ | None ->
        Hashtbl.replace seen key index;
        let moves = ref [] in
        let deployed' =
          List.fold_left
            (fun dep (actor : Actor.t) ->
              let mv = best_move actor available dep in
              moves := (actor.Actor.id, mv) :: !moves;
              let options = available actor.Actor.kind in
              (* a deploy move redeploys: apply after removing stale copy *)
              match mv with
              | Deploy name ->
                apply_move ~options
                  (List.filter
                     (fun (m : Mechanism.t) -> m.Mechanism.name <> name)
                     dep)
                  mv
              | Withdraw _ | Pass -> apply_move ~options dep mv)
            deployed ordered
        in
        let all_pass =
          List.for_all (fun (_, m) -> m = Pass) !moves
        in
        let round =
          {
            index;
            moves = List.rev !moves;
            deployed_after = deployed';
            outcome = Mechanism.net_effect deployed';
          }
        in
        if all_pass then finish deployed' (round :: rounds_acc) (Fixpoint (index + 1))
        else go (index + 1) deployed' (round :: rounds_acc)
    end
  and finish deployed rounds_acc ending =
    let final_outcome = Mechanism.net_effect deployed in
    {
      rounds = List.rev rounds_acc;
      ending;
      final_outcome;
      utilities =
        List.map
          (fun (a : Actor.t) -> (a.Actor.id, state_utility a deployed))
          ordered;
    }
  in
  go 0 [] []

let move_to_string = function
  | Deploy name -> "deploy " ^ name
  | Withdraw name -> "withdraw " ^ name
  | Pass -> "pass"

let ending_to_string = function
  | Fixpoint n -> Printf.sprintf "fixpoint after %d rounds" n
  | Cycle { start; period } ->
    Printf.sprintf "cycle (start=%d, period=%d)" start period
  | Horizon -> "horizon reached"
