(** Issues and stances: the axes along which stakeholders contend.

    A {e stance} assigns each issue a weight in [-1, 1]: +1 means the
    actor wants the issue maximized (e.g. a user on [Privacy]), -1
    minimized (e.g. a wiretapping government on the same axis).  The
    alignment of two stances measures whether their interests are
    "adverse" or merely "different" (§V-D) — the paper's distinction
    that decides whether mechanism choice can be mutual. *)

type issue =
  | Transparency  (** packets go in, packets come out *)
  | Privacy
  | Control  (** operator/state ability to constrain use *)
  | Revenue
  | Openness  (** low barriers to new applications and providers *)
  | Security
  | Innovation
  | Accountability

val all_issues : issue list

val issue_to_string : issue -> string

type stance = (issue * float) list
(** Missing issues weigh 0.  Construction clamps weights to [-1, 1]. *)

val make : (issue * float) list -> stance
(** Clamp weights and drop duplicate issues (first binding wins). *)

val weight : stance -> issue -> float

val dot : stance -> stance -> float
(** Raw inner product over all issues. *)

val alignment : stance -> stance -> float
(** Cosine similarity in [-1, 1]; 0 when either stance is empty.
    Positive = shared interests, negative = adverse. *)

val adverse : ?threshold:float -> stance -> stance -> bool
(** [alignment < -threshold] (default 0.25): "interests are simply
    adverse, and there is no win-win way to balance them." *)

val merely_different : ?threshold:float -> stance -> stance -> bool
(** Neither aligned nor adverse beyond the threshold: the case where
    "the choice of mechanism must itself be mutual." *)

val scale : float -> stance -> stance

val combine : stance list -> stance
(** Issue-wise sum, clamped to [-1, 1]. *)

val pp : Format.formatter -> stance -> unit
