type control_point = {
  cp_name : string;
  holder : Actor.kind;
  alternatives : int;
  reveals_presence : bool;
}

type module_map = {
  modules : (string * string list) list;
  contested : string list;
}

type design = {
  design_name : string;
  control_points : control_point list;
  value_flows : (Actor.kind * Actor.kind) list;
  service_flows : (Actor.kind * Actor.kind) list;
  module_map : module_map;
}

let mean_over xs f =
  match xs with
  | [] -> 1.0
  | _ ->
    List.fold_left (fun acc x -> acc +. f x) 0.0 xs
    /. float_of_int (List.length xs)

let choice_score d =
  mean_over d.control_points (fun cp ->
      if cp.alternatives <= 0 then 0.0
      else 1.0 -. (1.0 /. float_of_int cp.alternatives))

let visibility_score d =
  mean_over d.control_points (fun cp -> if cp.reveals_presence then 1.0 else 0.0)

let isolation_score d =
  let mm = d.module_map in
  let contested_function f = List.mem f mm.contested in
  let uncontested =
    List.concat_map (fun (_, fns) -> List.filter (fun f -> not (contested_function f)) fns)
      mm.modules
  in
  match uncontested with
  | [] -> 1.0
  | _ ->
    let exposed f =
      List.exists
        (fun (_, fns) -> List.mem f fns && List.exists contested_function fns)
        mm.modules
    in
    let clean = List.filter (fun f -> not (exposed f)) uncontested in
    float_of_int (List.length clean) /. float_of_int (List.length uncontested)

let value_flow_score d =
  mean_over d.service_flows (fun (consumer, provider) ->
      if List.mem (consumer, provider) d.value_flows then 1.0 else 0.0)

type scorecard = {
  choice : float;
  visibility : float;
  isolation : float;
  value_flow : float;
  overall : float;
}

let score d =
  let choice = choice_score d in
  let visibility = visibility_score d in
  let isolation = isolation_score d in
  let value_flow = value_flow_score d in
  {
    choice;
    visibility;
    isolation;
    value_flow;
    overall = (choice +. visibility +. isolation +. value_flow) /. 4.0;
  }

let pp_scorecard ppf s =
  Format.fprintf ppf
    "choice=%.2f visibility=%.2f isolation=%.2f value-flow=%.2f overall=%.2f"
    s.choice s.visibility s.isolation s.value_flow s.overall
