(** Application design guidelines: the linter the paper asks for
    (§VI-A).

    "If application designers want to preserve choice and end user
    empowerment, they should be given advice about how to design
    applications to achieve this goal.  This observation suggests that
    we should generate 'application design guidelines' that would help
    designers avoid pitfalls, and deal with the tussles of success."

    An application design is described declaratively; {!lint} checks it
    against the guidelines distilled from the paper and returns the
    violations, each carrying the principle it came from and a
    recommendation.  {!score} is the fraction of guidelines passed. *)

type app_design = {
  app_name : string;
  server_choices : int;
      (** how many interchangeable providers of each serving role the
          user can pick among (mail: SMTP/POP servers...) *)
  third_party_mediators_selectable : bool;
      (** can endpoints choose which mediators (certifiers, raters,
          escrow) they rely on? *)
  supports_e2e_encryption : bool;
  user_controls_in_network_features : bool;
      (** caches/enhancers are invoked only when the user asks *)
  interfaces_open : bool;  (** protocol specified so rivals can implement *)
  value_flow_designed : bool;
      (** compensation path exists wherever service is consumed *)
  identity_framework : bool;
      (** supports multiple identity schemes rather than one namespace *)
  contested_functions_separated : bool;
      (** tussle-prone functions modularized away from stable ones *)
  failure_reporting : bool;
      (** failures produce reports aimed at the party who can act *)
  anonymous_mode_honest : bool;
      (** if anonymity is offered, it is not disguisable as identification *)
}

type guideline = {
  g_id : string;  (** "G1".."G10" *)
  principle : string;  (** the paper's phrase *)
  check : app_design -> bool;
  recommendation : string;
}

val catalogue : guideline list
(** The ten guidelines, in order. *)

type violation = { guideline : guideline; design : string }

val lint : app_design -> violation list
(** Violated guidelines, in catalogue order. *)

val score : app_design -> float
(** Fraction of guidelines passed, in [0, 1]. *)

val open_design_reference : app_design
(** A design that passes everything — the paper's advice followed to
    the letter (think: federated mail done right). *)

val walled_garden_reference : app_design
(** A design that fails nearly everything — the closed, vertically
    integrated messenger. *)

val pp_violation : Format.formatter -> violation -> unit
