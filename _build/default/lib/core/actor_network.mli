(** Actor-network dynamics: durability, churn and freezing (§II-A,
    §II-C).

    Latour/Callon, operationalized: each actor holds a position in
    architecture-preference space [0,1] and a commitment that grows
    with age ("the network gets harder to change as it grows up").
    Each step, actors drift toward the population mean with a step
    proportional to how {e uncommitted} they still are; new actors
    arrive by a Poisson process with fresh, uncommitted positions.

    Rigidity = mean commitment × alignment (1 - normalized dispersion).
    The paper's prediction, reproduced by experiment E12: "when new
    applications and user groups cease to come to the Internet ... we
    can assume that the tensions ... will begin to be resolved, and
    this will imply a freezing" — rigidity climbs to 1 when the arrival
    rate is 0 and stays bounded away from 1 while churn continues. *)

type config = {
  initial_actors : int;
  arrival_rate : float;  (** expected new actors per step *)
  coupling : float;  (** drift step toward consensus, in (0, 1] *)
  commitment_halflife : float;  (** steps for commitment to reach 0.5 *)
  steps : int;
}

val default_config : config
(** 20 actors, coupling 0.3, halflife 20 steps, 200 steps. *)

type snapshot = {
  step : int;
  population : int;
  alignment : float;  (** 1 - dispersion/max_dispersion, in [0,1] *)
  mean_commitment : float;
  rigidity : float;  (** alignment × mean commitment *)
}

val run : Tussle_prelude.Rng.t -> config -> snapshot list
(** One snapshot per step (plus the initial state). *)

val final_rigidity : snapshot list -> float

val collides :
  Tussle_prelude.Rng.t -> config -> incumbent_size:int -> incumbent_position:float ->
  snapshot list
(** Variant of {!run} where a solidified incumbent actor-network (e.g.
    "the telephone system" meeting VoIP, §II-C) is injected at step
    [steps / 2]: [incumbent_size] fully committed actors at
    [incumbent_position].  The collision knocks alignment down — "the
    key issue is not a collision of technologies, but a collision
    between large, heterogeneous actor networks." *)
