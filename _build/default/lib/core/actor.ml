type kind =
  | User
  | Isp
  | Private_network
  | Government
  | Rights_holder
  | Content_provider
  | Designer

let all_kinds =
  [ User; Isp; Private_network; Government; Rights_holder; Content_provider;
    Designer ]

let kind_to_string = function
  | User -> "user"
  | Isp -> "isp"
  | Private_network -> "private-network"
  | Government -> "government"
  | Rights_holder -> "rights-holder"
  | Content_provider -> "content-provider"
  | Designer -> "designer"

type t = {
  id : int;
  name : string;
  kind : kind;
  stance : Interest.stance;
  power : float;
}

let default_stance kind =
  let open Interest in
  match kind with
  | User ->
    make
      [ (Privacy, 0.8); (Transparency, 0.7); (Openness, 0.6); (Control, -0.6);
        (Revenue, -0.3) ]
  | Isp ->
    make
      [ (Revenue, 0.9); (Control, 0.6); (Transparency, -0.3); (Openness, -0.2);
        (Security, 0.2) ]
  | Private_network ->
    make [ (Security, 0.8); (Control, 0.7); (Transparency, -0.4) ]
  | Government ->
    make
      [ (Control, 0.8); (Accountability, 0.8); (Security, 0.5); (Privacy, -0.6) ]
  | Rights_holder ->
    make [ (Control, 0.9); (Revenue, 0.8); (Openness, -0.5); (Privacy, -0.4) ]
  | Content_provider ->
    make [ (Openness, 0.7); (Revenue, 0.7); (Innovation, 0.5); (Control, -0.3) ]
  | Designer ->
    make
      [ (Innovation, 0.9); (Openness, 0.8); (Transparency, 0.6); (Control, -0.4) ]

let make ?(power = 1.0) ?stance ~id ~name kind =
  if power < 0.0 then invalid_arg "Actor.make: negative power";
  let stance = Option.value ~default:(default_stance kind) stance in
  { id; name; kind; stance; power }

let utility t outcome = Interest.dot t.stance outcome

let adverse a b = Interest.adverse a.stance b.stance

let pp ppf t =
  Format.fprintf ppf "%s(%s, power=%.1f) %a" t.name (kind_to_string t.kind)
    t.power Interest.pp t.stance
