lib/core/guidelines.ml: Format List
