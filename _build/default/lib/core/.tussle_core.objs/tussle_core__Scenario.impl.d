lib/core/scenario.ml: Actor Hashtbl Interest List Mechanism Printf String
