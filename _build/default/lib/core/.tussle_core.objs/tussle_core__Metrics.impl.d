lib/core/metrics.ml: Actor Format List
