lib/core/actor_network.mli: Tussle_prelude
