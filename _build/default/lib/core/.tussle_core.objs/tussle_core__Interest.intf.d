lib/core/interest.mli: Format
