lib/core/actor.mli: Format Interest
