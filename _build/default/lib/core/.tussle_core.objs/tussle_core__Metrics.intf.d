lib/core/metrics.mli: Actor Format
