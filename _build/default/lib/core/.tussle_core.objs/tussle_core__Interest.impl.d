lib/core/interest.ml: Float Format List Option
