lib/core/scenario.mli: Actor Interest Mechanism
