lib/core/guidelines.mli: Format
