lib/core/mechanism.mli: Actor Interest
