lib/core/actor.ml: Format Interest Option
