lib/core/mechanism.ml: Actor Interest List String
