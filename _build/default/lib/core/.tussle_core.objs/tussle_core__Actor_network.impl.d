lib/core/actor_network.ml: Array Float List Tussle_prelude
