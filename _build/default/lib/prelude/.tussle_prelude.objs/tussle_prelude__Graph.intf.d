lib/prelude/graph.mli:
