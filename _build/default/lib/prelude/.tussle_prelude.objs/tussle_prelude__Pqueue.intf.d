lib/prelude/pqueue.mli:
