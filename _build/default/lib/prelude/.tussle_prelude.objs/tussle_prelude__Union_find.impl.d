lib/prelude/union_find.ml: Array Hashtbl List Option
