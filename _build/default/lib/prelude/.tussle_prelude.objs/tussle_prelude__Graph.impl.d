lib/prelude/graph.ml: Array Hashtbl List Option Pqueue Queue
