lib/prelude/table.mli:
