lib/prelude/rng.mli:
