type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) headers
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns length mismatch";
      a
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- row :: t.rows

let fmt_float x = Printf.sprintf "%.4g" x

let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let add_float_row ?(fmt = fmt_float) t label xs =
  add_row t (label :: List.map fmt xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let pad align width cell =
    let fill = width - String.length cell in
    match align with
    | Left -> cell ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ cell
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row t.headers :: rule :: body)) ^ "\n"

let print t = print_string (render t)
