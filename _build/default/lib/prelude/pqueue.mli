(** Mutable binary-heap priority queue (min-heap by a user-supplied key).

    Used as the event queue of the discrete-event simulator and as the
    frontier of shortest-path searches.  Ties are broken by insertion
    order (FIFO among equal keys), which discrete-event simulation
    requires for determinism. *)

type 'a t

val create : unit -> 'a t
(** Empty queue with float keys. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, FIFO among ties. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-key element without removal. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive drain: all elements in pop order. *)
