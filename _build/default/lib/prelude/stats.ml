let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  total xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  check_nonempty "Stats.median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else
      let frac = rank -. float_of_int lo in
      ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let gini xs =
  check_nonempty "Stats.gini" xs;
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Stats.gini: negative value") xs;
  let s = total xs in
  if s <= 0.0 then invalid_arg "Stats.gini: zero total";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  (* Gini = (2 * sum_i i*y_i) / (n * sum y) - (n+1)/n  with 1-based i. *)
  let weighted = ref 0.0 in
  for i = 0 to n - 1 do
    weighted := !weighted +. (float_of_int (i + 1) *. ys.(i))
  done;
  let nf = float_of_int n in
  ((2.0 *. !weighted) /. (nf *. s)) -. ((nf +. 1.0) /. nf)

let hhi xs =
  check_nonempty "Stats.hhi" xs;
  let s = total xs in
  if s <= 0.0 then invalid_arg "Stats.hhi: zero total";
  Array.fold_left (fun acc x -> acc +. ((x /. s) ** 2.0)) 0.0 xs

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need at least 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then
    invalid_arg "Stats.correlation: zero variance";
  !sxy /. sqrt (!sxx *. !syy)

let histogram ?(bins = 10) xs =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = minimum xs and hi = maximum xs in
  let width =
    if hi > lo then (hi -. lo) /. float_of_int bins else 1.0
  in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
    counts

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  max : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p25 = percentile xs 25.0;
    p50 = percentile xs 50.0;
    p75 = percentile xs 75.0;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p25=%.4g p50=%.4g p75=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.p25 s.p50 s.p75 s.max
