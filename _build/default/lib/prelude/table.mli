(** Plain-text table rendering for experiment output.

    The bench harness prints one table per experiment; this module keeps
    the formatting uniform (aligned columns, a rule under the header). *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Right] for
    every column.  Raises [Invalid_argument] when [aligns] is given with a
    different length than [headers]. *)

val add_row : t -> string list -> unit
(** Append a row.  Raises [Invalid_argument] on column-count mismatch. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> unit
(** [add_float_row t label xs] appends a row whose first cell is [label]
    and remaining cells are formatted floats (default ["%.4g"]). *)

val render : t -> string
(** The finished table, ending with a newline. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : float -> string
(** Default float formatter, ["%.4g"]. *)

val fmt_pct : float -> string
(** Format a ratio as a percentage with one decimal, e.g. [0.125] ->
    ["12.5%"]. *)
