type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable sets : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    sets = n;
  }

let check t i =
  if i < 0 || i >= Array.length t.parent then
    invalid_arg "Union_find: element out of range"

let rec find t i =
  check t i;
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb)
    in
    t.parent.(rb) <- ra;
    t.size.(ra) <- t.size.(ra) + t.size.(rb);
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.sets <- t.sets - 1;
    true
  end

let same t a b = find t a = find t b

let count t = t.sets

let set_size t i = t.size.(find t i)

let groups t =
  let tbl = Hashtbl.create 16 in
  let n = Array.length t.parent in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = Option.value ~default:[] (Hashtbl.find_opt tbl r) in
    Hashtbl.replace tbl r (i :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort compare
