(** Directed graphs with integer nodes and labelled edges.

    Nodes are dense integers [0 .. node_count - 1].  Edge labels carry
    whatever the client needs (link metadata, business relationships).
    Shortest paths are computed against a client-supplied non-negative
    weight function, so the same graph serves latency, cost, and hop
    metrics. *)

type 'e t
(** A graph whose edges are labelled with ['e]. *)

val create : int -> 'e t
(** [create n] makes a graph with nodes [0 .. n-1] and no edges. *)

val node_count : 'e t -> int

val edge_count : 'e t -> int

val add_edge : 'e t -> int -> int -> 'e -> unit
(** [add_edge g u v label] adds a directed edge.  Multiple edges between the
    same pair are permitted.  Raises [Invalid_argument] on out-of-range
    nodes. *)

val add_undirected : 'e t -> int -> int -> 'e -> unit
(** Adds both [u -> v] and [v -> u] with the same label. *)

val succ : 'e t -> int -> (int * 'e) list
(** Out-neighbours with edge labels, in insertion order. *)

val find_edge : 'e t -> int -> int -> 'e option
(** First edge label from [u] to [v], if any. *)

val iter_edges : 'e t -> (int -> int -> 'e -> unit) -> unit

val fold_edges : 'e t -> init:'a -> f:('a -> int -> int -> 'e -> 'a) -> 'a

val map_edges : 'e t -> ('e -> 'f) -> 'f t

val dijkstra :
  'e t -> weight:('e -> float) -> source:int -> float array * int array
(** [dijkstra g ~weight ~source] returns [(dist, pred)]: distance from
    [source] to every node ([infinity] if unreachable) and predecessor node
    ([-1] for the source and unreachable nodes).  [weight] must be
    non-negative; a negative weight raises [Invalid_argument]. *)

val shortest_path :
  'e t -> weight:('e -> float) -> int -> int -> (float * int list) option
(** [shortest_path g ~weight u v] is [Some (dist, path)] where [path] is the
    node sequence [u; ...; v], or [None] if unreachable. *)

val bfs_order : 'e t -> int -> int list
(** Nodes reachable from a source in breadth-first order. *)

val is_connected : 'e t -> bool
(** True when every node is reachable from node 0 in the underlying
    directed sense.  Vacuously true for the empty graph. *)

val transpose : 'e t -> 'e t
(** Reverse every edge. *)

val degree_histogram : 'e t -> (int * int) list
(** [(out_degree, how_many_nodes)] pairs, ascending by degree. *)
