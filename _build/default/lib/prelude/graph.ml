type 'e t = {
  n : int;
  adj : (int * 'e) list array; (* reversed insertion order internally *)
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make (max n 1) []; edges = 0 }

let node_count g = g.n

let edge_count g = g.edges

let check_node g u name =
  if u < 0 || u >= g.n then invalid_arg (name ^ ": node out of range")

let add_edge g u v label =
  check_node g u "Graph.add_edge";
  check_node g v "Graph.add_edge";
  g.adj.(u) <- (v, label) :: g.adj.(u);
  g.edges <- g.edges + 1

let add_undirected g u v label =
  add_edge g u v label;
  add_edge g v u label

let succ g u =
  check_node g u "Graph.succ";
  List.rev g.adj.(u)

let find_edge g u v =
  check_node g u "Graph.find_edge";
  check_node g v "Graph.find_edge";
  let rec last_match acc = function
    | [] -> acc
    | (w, e) :: rest -> last_match (if w = v then Some e else acc) rest
  in
  (* adj is reversed, so the last match in it is the first inserted. *)
  last_match None g.adj.(u)

let iter_edges g f =
  for u = 0 to g.n - 1 do
    List.iter (fun (v, e) -> f u v e) (List.rev g.adj.(u))
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v e -> acc := f !acc u v e);
  !acc

let map_edges g fn =
  let h = create g.n in
  iter_edges g (fun u v e -> add_edge h u v (fn e));
  h

let dijkstra g ~weight ~source =
  check_node g source "Graph.dijkstra";
  let dist = Array.make g.n infinity in
  let pred = Array.make g.n (-1) in
  let visited = Array.make g.n false in
  let frontier = Pqueue.create () in
  dist.(source) <- 0.0;
  Pqueue.push frontier 0.0 source;
  let rec loop () =
    match Pqueue.pop frontier with
    | None -> ()
    | Some (d, u) ->
      if not visited.(u) then begin
        visited.(u) <- true;
        let relax (v, e) =
          let w = weight e in
          if w < 0.0 then invalid_arg "Graph.dijkstra: negative weight";
          let nd = d +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            pred.(v) <- u;
            Pqueue.push frontier nd v
          end
        in
        List.iter relax g.adj.(u)
      end;
      loop ()
  in
  loop ();
  (dist, pred)

let shortest_path g ~weight u v =
  let dist, pred = dijkstra g ~weight ~source:u in
  if dist.(v) = infinity then None
  else begin
    let rec build node acc =
      if node = u then u :: acc else build pred.(node) (node :: acc)
    in
    Some (dist.(v), build v [])
  end

let bfs_order g source =
  check_node g source "Graph.bfs_order";
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.add source queue;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    order := u :: !order;
    let visit (v, _) =
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v queue
      end
    in
    List.iter visit (List.rev g.adj.(u))
  done;
  List.rev !order

let is_connected g =
  g.n = 0 || List.length (bfs_order g 0) = g.n

let transpose g =
  let h = create g.n in
  iter_edges g (fun u v e -> add_edge h v u e);
  h

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for u = 0 to g.n - 1 do
    let d = List.length g.adj.(u) in
    let cur = Option.value ~default:0 (Hashtbl.find_opt tbl d) in
    Hashtbl.replace tbl d (cur + 1)
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare
