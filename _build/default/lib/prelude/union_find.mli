(** Disjoint-set forest with path compression and union by rank.

    Used to track coalition / alignment structure in the actor-network
    model and connectivity in topology generators. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [false] when already joined. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct sets. *)

val set_size : t -> int -> int
(** Size of the set containing the given element. *)

val groups : t -> int list list
(** All sets as lists of members, each sorted ascending; groups ordered by
    their smallest member. *)
