(** Descriptive statistics used by the experiment harness.

    All functions take plain [float array]s (or lists where noted) and are
    total over non-empty input; empty input raises [Invalid_argument] except
    where a neutral value exists. *)

val mean : float array -> float
(** Arithmetic mean.  Raises on empty input. *)

val variance : float array -> float
(** Population variance (biased, divides by [n]).  Raises on empty input. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (average of middle two for even length).  Does not mutate its
    argument.  Raises on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  Raises on empty input or out-of-range [p]. *)

val minimum : float array -> float
val maximum : float array -> float

val total : float array -> float
(** Sum; [0.] on empty input. *)

val gini : float array -> float
(** Gini coefficient of a non-negative distribution: 0 = perfectly equal,
    approaching 1 = concentrated.  Raises if any value is negative or the
    sum is zero. *)

val hhi : float array -> float
(** Herfindahl–Hirschman index of market shares computed from raw sizes:
    sum of squared shares, in (0, 1].  1 = monopoly.  Raises on zero
    total. *)

val correlation : float array -> float array -> float
(** Pearson correlation.  Raises on length mismatch, length < 2, or zero
    variance. *)

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per bin over the data
    range.  Default 10 bins.  Raises on empty input. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
(** Five-number-plus summary.  Raises on empty input. *)

val pp_summary : Format.formatter -> summary -> unit
