(** Vertical integration and openness (§V-C).

    "Vertical integration — the bundling together of infrastructure and
    higher-level services — requires the removal of certain forms of
    openness.  The user may be constrained to use only certain
    providers of content ... However, vertical integration has nothing
    to do with a desire to block innovation ... So it would be wise to
    separate the tussle of vertical integration, about which many feel
    great passion, from the desire to sustain innovation."

    One infrastructure owner; two services ride it — the owner's own
    and a higher-quality rival.  Three regimes:

    {ul
    {- [Separated]: structural separation — the owner carries both
       services neutrally (and only earns infrastructure revenue);}
    {- [Integrated]: the owner sells its own service {e and} degrades
       the rival's delivered quality (foreclosure);}
    {- [Integrated_nondiscrimination]: the owner keeps its service but
       a rule forbids degradation — the paper's "separate the two
       tussles" outcome.}} *)

type regime = Separated | Integrated | Integrated_nondiscrimination

type params = {
  n_consumers : int;
  infra_price : float;  (** paid by every subscriber, any service *)
  infra_cost : float;
  own_quality : float;
  own_price : float;  (** the incumbent: cheaper, lower quality *)
  rival_quality : float;  (** the innovator: better, dearer *)
  rival_price : float;
  service_cost : float;
  degradation : float;  (** quality knocked off the rival when foreclosing *)
  survival_share : float;  (** rival exits below this share *)
}

val default_params : params

type outcome = {
  own_share : float;
  rival_share : float;
  rival_survives : bool;
  platform_profit : float;
  consumer_surplus : float;
}

val run : Tussle_prelude.Rng.t -> params -> regime -> outcome
(** Consumers draw a quality taste uniformly in [0, 2] and pick the
    service maximizing [taste * quality - service price - infra price]
    (outside option 0).  If the rival's
    share falls below [survival_share] it exits and its customers
    re-choose — the innovation loss shows up in surplus. *)
