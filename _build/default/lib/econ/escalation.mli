(** The encryption escalation tussle (§VI-A).

    "Encrypting the stream might just be the first step in an escalating
    tussle ... the response of the provider is to refuse to carry
    encrypted data.  In the U.S., competition would probably discipline
    a provider that tried to block encryption.  But a conservative
    government with a state-run monopoly ISP might."

    A provider facing a user base where a fraction encrypts chooses to
    carry, surcharge, or refuse encrypted traffic.  Users value basic
    service at [service_value] and encryption at [privacy_value] extra;
    under competition a blocked or surcharged user can defect to a rival
    that carries (keeping both values); under monopoly the alternatives
    are complying in the clear or leaving the network. *)

type isp_policy = Carry | Surcharge of float | Refuse

type params = {
  n_users : float;
  enc_fraction : float;  (** fraction of users who want encryption *)
  base_price : float;
  service_value : float;  (** user value of connectivity (>= base_price) *)
  privacy_value : float;  (** extra value of encrypted operation *)
  inspection_value : float;
      (** what the ISP gains per plaintext user (ad profiling, control) *)
  competitive : bool;
}

val revenue : params -> isp_policy -> float
(** ISP profit under a policy, after users respond optimally. *)

val best_policy : params -> surcharge_grid:float list -> isp_policy * float
(** Profit-maximizing policy over {!Carry}, {!Refuse}, and the surcharge
    grid. *)

val encryption_survives : params -> surcharge_grid:float list -> bool
(** Do encrypting users still run encrypted under the ISP's best policy?
    (They may pay a surcharge and keep encrypting.) *)

val stego_response : params -> stego_cost:float -> float * bool
(** The next rung of the ladder (§VI-A footnote: "the next step in this
    sort of escalation is steganography").  Under a {!Refuse} policy
    with steganography available at per-user cost [stego_cost], each
    encrypting user picks the best of: hide the encryption inside
    innocuous-looking traffic (keeps privacy, pays the stego overhead,
    and the ISP — unable to tell — carries it and collects no
    inspection value), comply in the clear, defect (competitive only),
    or leave.  Returns (ISP revenue, does encryption survive).  With
    cheap steganography the refusal is unenforceable. *)
