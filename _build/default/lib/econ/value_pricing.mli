(** Value pricing versus masking (§V-A2).

    The provider divides customers by willingness to pay — a cheap
    "home" tier whose acceptable-use policy forbids running servers, and
    an expensive "business" tier that permits them (the Internet version
    of the Saturday-night-stay).  Customers who want servers on the
    cheap tier can tunnel to disguise their port numbers; detection only
    catches unmasked violators.

    The experiment sweeps tunneling adoption: as masking spreads, the
    price-discrimination scheme stops extracting the business users'
    surplus, the provider's best response converges toward a single
    price, and surplus shifts from producer to consumer — "the design
    and deployment of tunnels ... shifts the balance of power from the
    producer to the consumer." *)

type population = {
  n_home : int;  (** value service at [v_home], never run servers *)
  n_business : int;  (** value service at [v_home +. v_server] *)
  v_home : float;
  v_server : float;  (** extra value of being allowed to run a server *)
}

type params = {
  detection_prob : float;  (** chance an unmasked home-tier server is caught *)
  caught_penalty : float;  (** forced upgrade hassle, added to business price *)
  provider_cost : float;  (** cost per subscriber, either tier *)
  price_step : float;  (** optimization grid resolution *)
}

val default_population : population
val default_params : params

type outcome = {
  price_home : float;
  price_business : float;
  revenue : float;
  provider_profit : float;
  consumer_surplus : float;
  business_on_home_tier : float;  (** fraction of business users masking down *)
  discrimination_gap : float;  (** price_business -. price_home *)
}

val best_response_pricing :
  population -> params -> tunnel_adoption:float -> outcome
(** The provider's profit-maximizing two-tier prices (grid search over
    both) given that a [tunnel_adoption] fraction of business users can
    mask, followed by consumer tier choice.  [tunnel_adoption] outside
    [0,1] raises [Invalid_argument]. *)

val sweep :
  population -> params -> adoptions:float list -> (float * outcome) list
(** [best_response_pricing] at each adoption level. *)
