module Rng = Tussle_prelude.Rng

type regime = Separated | Integrated | Integrated_nondiscrimination

type params = {
  n_consumers : int;
  infra_price : float;
  infra_cost : float;
  own_quality : float;
  own_price : float;
  rival_quality : float;
  rival_price : float;
  service_cost : float;
  degradation : float;
  survival_share : float;
}

let default_params =
  {
    n_consumers = 1000;
    infra_price = 2.0;
    infra_cost = 1.0;
    own_quality = 4.0;
    own_price = 1.5;
    rival_quality = 6.0;
    rival_price = 4.0;
    service_cost = 1.0;
    degradation = 3.5;
    survival_share = 0.15;
  }

type outcome = {
  own_share : float;
  rival_share : float;
  rival_survives : bool;
  platform_profit : float;
  consumer_surplus : float;
}

type choice = Own | Rival | Neither

let validate p =
  if p.n_consumers <= 0 then invalid_arg "Vertical.run: no consumers";
  if p.degradation < 0.0 then invalid_arg "Vertical.run: negative degradation";
  if p.survival_share < 0.0 || p.survival_share > 1.0 then
    invalid_arg "Vertical.run: survival share not in [0,1]"

let pick p ~taste ~rival_available ~rival_quality =
  let u_own = (taste *. p.own_quality) -. p.own_price -. p.infra_price in
  let u_rival =
    if rival_available then
      (taste *. rival_quality) -. p.rival_price -. p.infra_price
    else neg_infinity
  in
  if u_own <= 0.0 && u_rival <= 0.0 then (Neither, 0.0)
  else if u_rival > u_own then (Rival, u_rival)
  else (Own, u_own)

let tally p tastes ~rival_available ~rival_quality =
  let own = ref 0 and rival = ref 0 and surplus = ref 0.0 in
  Array.iter
    (fun taste ->
      match pick p ~taste ~rival_available ~rival_quality with
      | Own, u ->
        incr own;
        surplus := !surplus +. u
      | Rival, u ->
        incr rival;
        surplus := !surplus +. u
      | Neither, _ -> ())
    tastes;
  (!own, !rival, !surplus)

let run rng p regime =
  validate p;
  let tastes = Array.init p.n_consumers (fun _ -> Rng.float rng 2.0) in
  let effective_rival_quality =
    match regime with
    | Integrated -> Float.max 0.0 (p.rival_quality -. p.degradation)
    | Separated | Integrated_nondiscrimination -> p.rival_quality
  in
  let own, rival, surplus =
    tally p tastes ~rival_available:true ~rival_quality:effective_rival_quality
  in
  let n = float_of_int p.n_consumers in
  let rival_share0 = float_of_int rival /. n in
  let rival_survives = rival_share0 >= p.survival_share in
  (* if the rival exits, its customers re-choose without it *)
  let own, rival, surplus =
    if rival_survives then (own, rival, surplus)
    else tally p tastes ~rival_available:false ~rival_quality:0.0
  in
  let subscribers = own + rival in
  let infra_profit =
    float_of_int subscribers *. (p.infra_price -. p.infra_cost)
  in
  let own_service_profit =
    match regime with
    | Separated -> 0.0 (* structurally separated: the service arm is a
                          different firm *)
    | Integrated | Integrated_nondiscrimination ->
      float_of_int own *. (p.own_price -. p.service_cost)
  in
  {
    own_share = float_of_int own /. n;
    rival_share = float_of_int rival /. n;
    rival_survives;
    platform_profit = infra_profit +. own_service_profit;
    consumer_surplus = surplus;
  }
