module Bestresponse = Tussle_gametheory.Bestresponse

type regime = { value_flow : bool; consumer_choice : bool }

type params = {
  n_isps : int;
  subscribers_per_isp : float;
  base_margin : float;
  qos_fee : float;
  qos_take_rate : float;
  deploy_cost : float;
  share_shift : float;
}

let default_params =
  {
    n_isps = 4;
    subscribers_per_isp = 100.0;
    base_margin = 1.0;
    qos_fee = 0.5;
    qos_take_rate = 0.5;
    deploy_cost = 30.0;
    share_shift = 0.09;
  }

(* Subscriber base of ISP [p] given the deployment profile. *)
let subscribers prm regime profile p =
  let deployers =
    Array.fold_left (fun acc s -> acc + s) 0 profile
  in
  let n_deploy = float_of_int deployers in
  if (not regime.consumer_choice) || deployers = 0
     || deployers = Array.length profile
  then prm.subscribers_per_isp
  else begin
    let leaving = prm.subscribers_per_isp *. prm.share_shift in
    if profile.(p) = 1 then begin
      (* gains an equal split of everyone who leaves non-deployers *)
      let non_deployers = float_of_int (Array.length profile - deployers) in
      prm.subscribers_per_isp +. (non_deployers *. leaving /. n_deploy)
    end
    else prm.subscribers_per_isp -. leaving
  end

let payoff prm regime p profile =
  let subs = subscribers prm regime profile p in
  let base = subs *. prm.base_margin in
  if profile.(p) = 0 then base
  else begin
    let qos_revenue =
      if regime.value_flow then subs *. prm.qos_take_rate *. prm.qos_fee
      else 0.0
    in
    base +. qos_revenue -. prm.deploy_cost
  end

let game prm regime =
  if prm.n_isps <= 0 then invalid_arg "Investment.game: no ISPs";
  {
    Bestresponse.players = prm.n_isps;
    strategies = Array.make prm.n_isps 2;
    payoff = (fun p profile -> payoff prm regime p profile);
  }

type outcome = {
  equilibrium : int array;
  deployers : int;
  deployment_rate : float;
  total_welfare : float;
}

let outcome_of prm regime profile =
  let g = game prm regime in
  let deployers = Array.fold_left ( + ) 0 profile in
  {
    equilibrium = profile;
    deployers;
    deployment_rate = float_of_int deployers /. float_of_int prm.n_isps;
    total_welfare = Bestresponse.social_welfare g profile;
  }

let solve prm regime =
  let g = game prm regime in
  match Bestresponse.converge g ~init:(Array.make prm.n_isps 0) with
  | Some profile -> outcome_of prm regime profile
  | None -> begin
    (* dynamics cycled: report the welfare-best pure Nash, or all-zero *)
    match Bestresponse.all_pure_nash g with
    | [] -> outcome_of prm regime (Array.make prm.n_isps 0)
    | first :: rest ->
      let best =
        List.fold_left
          (fun acc p ->
            if
              Bestresponse.social_welfare g p > Bestresponse.social_welfare g acc
            then p
            else acc)
          first rest
      in
      outcome_of prm regime best
  end

let matrix_22 prm =
  List.map
    (fun regime -> (regime, solve prm regime))
    [
      { value_flow = false; consumer_choice = false };
      { value_flow = true; consumer_choice = false };
      { value_flow = false; consumer_choice = true };
      { value_flow = true; consumer_choice = true };
    ]
