(** The value-flow protocol (§IV-C).

    "In certain forms of tussle and run-time choice there is often an
    exchange of value for service ...  Whatever the compensation,
    recognize that it must flow, just as much as data must flow.
    Sometimes this happens outside the system, sometimes within a
    protocol.  If this 'value flow' requires a protocol, design it."

    A double-entry ledger with two payment shapes:

    {ul
    {- {b direct path payment}: the sender pays each provider on the
       chosen path its declared carriage price — the compensation that
       makes provider-level source routing acceptable to ISPs (E4);}
    {- {b escrowed payment}: two-phase — authorize up front, capture on
       proof of delivery, refund on failure — so payment risk does not
       have to be resolved by trust alone.}}

    Every movement is recorded; the visible log is the paper's "visible
    exchange of value". *)

type t

type receipt = {
  payer : int;
  legs : (int * float) list;  (** (provider, amount) per hop *)
  total : float;
}

val create : parties:int -> initial:float -> t
(** [parties] accounts, each opened with [initial] balance.  Raises on
    negative counts/initial. *)

val balance : t -> int -> float

val total_supply : t -> float
(** Sum of balances plus funds held in open escrows — conserved by
    every operation. *)

val pay_path :
  t -> payer:int -> hops:(int * float) list ->
  (receipt, [ `Insufficient of float ]) result
(** Pay each provider on the path its price, atomically: either the
    payer can afford the whole path or nothing moves.  Raises
    [Invalid_argument] on negative prices or unknown parties. *)

type escrow_id

val authorize :
  t -> payer:int -> hops:(int * float) list ->
  (escrow_id, [ `Insufficient of float ]) result
(** Reserve the path total from the payer's balance. *)

val capture : t -> escrow_id -> receipt
(** Delivery proven: release the reserved funds to the providers.
    Raises [Invalid_argument] on an unknown or settled escrow. *)

val refund : t -> escrow_id -> unit
(** Delivery failed: return the reserved funds to the payer.  Raises
    [Invalid_argument] on an unknown or settled escrow. *)

val log : t -> (int * int * float) list
(** All completed transfers (from, to, amount), oldest first. *)

val settle_bilateral : t -> (int * int * float) list
(** Net the completed transfer log into minimal bilateral settlements:
    one entry per ordered pair with positive net flow.  Pure
    reporting — balances are unchanged. *)
