module Rng = Tussle_prelude.Rng

type server = { id : int; quality : float; price : float }

type config = {
  servers : server list;
  n_consumers : int;
  sophistication : float -> float;
  rater_adoption : float;
}

type result = {
  mean_surplus : float;
  naive_surplus : float;
  expert_surplus : float;
  best_server_share : float;
}

let surplus_of s = s.quality -. s.price

let run rng cfg =
  if cfg.servers = [] then invalid_arg "Intermediary.run: no servers";
  if cfg.n_consumers <= 0 then invalid_arg "Intermediary.run: no consumers";
  if cfg.rater_adoption < 0.0 || cfg.rater_adoption > 1.0 then
    invalid_arg "Intermediary.run: adoption not in [0,1]";
  let servers = Array.of_list cfg.servers in
  let best =
    Array.fold_left
      (fun acc s -> if surplus_of s > surplus_of acc then s else acc)
      servers.(0) servers
  in
  let total = ref 0.0 and n_naive = ref 0 and naive = ref 0.0 in
  let n_expert = ref 0 and expert = ref 0.0 in
  let best_picks = ref 0 in
  for _ = 1 to cfg.n_consumers do
    let s = cfg.sophistication (Rng.float rng 1.0) in
    let informed =
      Rng.bernoulli rng s || Rng.bernoulli rng cfg.rater_adoption
    in
    let choice = if informed then best else Rng.choice rng servers in
    let u = surplus_of choice in
    total := !total +. u;
    if choice.id = best.id then incr best_picks;
    if s < 0.5 then begin
      incr n_naive;
      naive := !naive +. u
    end
    else begin
      incr n_expert;
      expert := !expert +. u
    end
  done;
  let safe_div a b = if b = 0 then 0.0 else a /. float_of_int b in
  {
    mean_surplus = !total /. float_of_int cfg.n_consumers;
    naive_surplus = safe_div !naive !n_naive;
    expert_surplus = safe_div !expert !n_expert;
    best_server_share = float_of_int !best_picks /. float_of_int cfg.n_consumers;
  }

let surplus_recovered ~without ~with_rater =
  let gap = without.expert_surplus -. without.naive_surplus in
  if Float.abs gap < 1e-12 then 0.0
  else (with_rater.naive_surplus -. without.naive_surplus) /. gap
