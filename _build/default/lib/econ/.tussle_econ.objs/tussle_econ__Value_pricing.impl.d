lib/econ/value_pricing.ml: Array Float List
