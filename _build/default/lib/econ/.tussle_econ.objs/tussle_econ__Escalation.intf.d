lib/econ/escalation.mli:
