lib/econ/intermediary.ml: Array Float Tussle_prelude
