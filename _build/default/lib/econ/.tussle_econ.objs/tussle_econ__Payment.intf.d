lib/econ/payment.mli:
