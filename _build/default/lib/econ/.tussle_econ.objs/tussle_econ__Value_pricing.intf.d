lib/econ/value_pricing.mli:
