lib/econ/market.mli: Tussle_prelude
