lib/econ/investment.mli: Tussle_gametheory
