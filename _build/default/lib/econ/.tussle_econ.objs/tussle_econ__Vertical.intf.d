lib/econ/vertical.mli: Tussle_prelude
