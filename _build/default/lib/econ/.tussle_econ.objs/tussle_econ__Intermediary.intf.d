lib/econ/intermediary.mli: Tussle_prelude
