lib/econ/investment.ml: Array List Tussle_gametheory
