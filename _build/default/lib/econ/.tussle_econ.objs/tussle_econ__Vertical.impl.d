lib/econ/vertical.ml: Array Float Tussle_prelude
