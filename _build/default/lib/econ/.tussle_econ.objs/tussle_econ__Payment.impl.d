lib/econ/payment.ml: Array Hashtbl List Option
