lib/econ/escalation.ml: List
