lib/econ/market.ml: Array Float List Tussle_prelude
