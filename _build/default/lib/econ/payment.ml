type receipt = {
  payer : int;
  legs : (int * float) list;
  total : float;
}

type escrow = { e_payer : int; e_hops : (int * float) list; e_total : float }

type t = {
  balances : float array;
  mutable transfers : (int * int * float) list; (* reversed *)
  escrows : (int, escrow) Hashtbl.t;
  mutable next_escrow : int;
  mutable held : float;
}

type escrow_id = int

let create ~parties ~initial =
  if parties <= 0 then invalid_arg "Payment.create: no parties";
  if initial < 0.0 then invalid_arg "Payment.create: negative initial";
  {
    balances = Array.make parties initial;
    transfers = [];
    escrows = Hashtbl.create 16;
    next_escrow = 0;
    held = 0.0;
  }

let check t p =
  if p < 0 || p >= Array.length t.balances then
    invalid_arg "Payment: unknown party"

let balance t p =
  check t p;
  t.balances.(p)

let total_supply t = Array.fold_left ( +. ) 0.0 t.balances +. t.held

let path_total hops =
  List.fold_left
    (fun acc (_, price) ->
      if price < 0.0 then invalid_arg "Payment: negative price"
      else acc +. price)
    0.0 hops

let pay_path t ~payer ~hops =
  check t payer;
  List.iter (fun (p, _) -> check t p) hops;
  let total = path_total hops in
  if t.balances.(payer) < total then Error (`Insufficient t.balances.(payer))
  else begin
    t.balances.(payer) <- t.balances.(payer) -. total;
    List.iter
      (fun (provider, price) ->
        t.balances.(provider) <- t.balances.(provider) +. price;
        if price > 0.0 then
          t.transfers <- (payer, provider, price) :: t.transfers)
      hops;
    Ok { payer; legs = hops; total }
  end

let authorize t ~payer ~hops =
  check t payer;
  List.iter (fun (p, _) -> check t p) hops;
  let total = path_total hops in
  if t.balances.(payer) < total then Error (`Insufficient t.balances.(payer))
  else begin
    t.balances.(payer) <- t.balances.(payer) -. total;
    t.held <- t.held +. total;
    let id = t.next_escrow in
    t.next_escrow <- id + 1;
    Hashtbl.replace t.escrows id { e_payer = payer; e_hops = hops; e_total = total };
    Ok id
  end

let take_escrow t id =
  match Hashtbl.find_opt t.escrows id with
  | None -> invalid_arg "Payment: unknown or settled escrow"
  | Some e ->
    Hashtbl.remove t.escrows id;
    t.held <- t.held -. e.e_total;
    e

let capture t id =
  let e = take_escrow t id in
  List.iter
    (fun (provider, price) ->
      t.balances.(provider) <- t.balances.(provider) +. price;
      if price > 0.0 then
        t.transfers <- (e.e_payer, provider, price) :: t.transfers)
    e.e_hops;
  { payer = e.e_payer; legs = e.e_hops; total = e.e_total }

let refund t id =
  let e = take_escrow t id in
  t.balances.(e.e_payer) <- t.balances.(e.e_payer) +. e.e_total

let log t = List.rev t.transfers

let settle_bilateral t =
  let net = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, amount) ->
      let key = if src < dst then (src, dst) else (dst, src) in
      let signed = if src < dst then amount else -.amount in
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt net key) in
      Hashtbl.replace net key (cur +. signed))
    (log t);
  Hashtbl.fold
    (fun (a, b) v acc ->
      if v > 1e-12 then (a, b, v) :: acc
      else if v < -1e-12 then (b, a, -.v) :: acc
      else acc)
    net []
  |> List.sort compare
