type isp_policy = Carry | Surcharge of float | Refuse

type params = {
  n_users : float;
  enc_fraction : float;
  base_price : float;
  service_value : float;
  privacy_value : float;
  inspection_value : float;
  competitive : bool;
}

let validate p =
  if p.enc_fraction < 0.0 || p.enc_fraction > 1.0 then
    invalid_arg "Escalation: enc_fraction not in [0,1]";
  if p.n_users <= 0.0 then invalid_arg "Escalation: no users"

(* Per encrypting user, what does the ISP earn under a policy?  The user
   picks the best of: comply (drop encryption), pay up, defect (only if
   competitive), or leave. *)
let enc_user_value p policy =
  let stay_clear = p.service_value -. p.base_price in
  let u_isp_clear = p.base_price +. p.inspection_value in
  let options =
    match policy with
    | Carry ->
      [ (p.service_value +. p.privacy_value -. p.base_price, p.base_price) ]
    | Surcharge s ->
      [
        (* keep encrypting, pay the surcharge *)
        (p.service_value +. p.privacy_value -. p.base_price -. s,
         p.base_price +. s);
        (* drop encryption instead *)
        (stay_clear, u_isp_clear);
      ]
    | Refuse -> [ (stay_clear, u_isp_clear) ]
  in
  let options =
    if p.competitive then
      (* defect to a rival that carries encrypted traffic: ISP gets 0.
         Listed last so an indifferent user stays put. *)
      options @ [ (p.service_value +. p.privacy_value -. p.base_price, 0.0) ]
    else options
  in
  (* leaving the network entirely *)
  let options = options @ [ (0.0, 0.0) ] in
  let best =
    List.fold_left
      (fun (bu, bi) (u, i) -> if u > bu +. 1e-12 then (u, i) else (bu, bi))
      (neg_infinity, 0.0) options
  in
  snd best

(* Does the encrypting user end up still encrypting? *)
let enc_user_encrypts p policy =
  let stay_clear = p.service_value -. p.base_price in
  let options =
    match policy with
    | Carry ->
      [ (p.service_value +. p.privacy_value -. p.base_price, true) ]
    | Surcharge s ->
      [
        (p.service_value +. p.privacy_value -. p.base_price -. s, true);
        (stay_clear, false);
      ]
    | Refuse -> [ (stay_clear, false) ]
  in
  let options =
    if p.competitive then
      options @ [ (p.service_value +. p.privacy_value -. p.base_price, true) ]
    else options
  in
  let options = options @ [ (0.0, false) ] in
  let best =
    List.fold_left
      (fun (bu, be) (u, e) -> if u > bu +. 1e-12 then (u, e) else (bu, be))
      (neg_infinity, false) options
  in
  snd best

let revenue p policy =
  validate p;
  let n_enc = p.n_users *. p.enc_fraction in
  let n_clear = p.n_users -. n_enc in
  (* clear users always stay and are inspectable *)
  (n_clear *. (p.base_price +. p.inspection_value))
  +. (n_enc *. enc_user_value p policy)

let best_policy p ~surcharge_grid =
  validate p;
  let candidates =
    Carry :: Refuse :: List.map (fun s -> Surcharge s) surcharge_grid
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun (bp, br) c ->
        let r = revenue p c in
        if r > br +. 1e-9 then (c, r) else (bp, br))
      (first, revenue p first)
      rest

let encryption_survives p ~surcharge_grid =
  let policy, _ = best_policy p ~surcharge_grid in
  enc_user_encrypts p policy

let stego_response p ~stego_cost =
  validate p;
  if stego_cost < 0.0 then invalid_arg "Escalation.stego_response: negative cost";
  let stay_clear = p.service_value -. p.base_price in
  (* user utility, ISP take, still-encrypted *)
  let options =
    [
      (* steganography: looks like plaintext, is not readable *)
      (p.service_value +. p.privacy_value -. p.base_price -. stego_cost,
       p.base_price, true);
      (stay_clear, p.base_price +. p.inspection_value, false);
    ]
  in
  let options =
    if p.competitive then
      options
      @ [ (p.service_value +. p.privacy_value -. p.base_price, 0.0, true) ]
    else options
  in
  let options = options @ [ (0.0, 0.0, false) ] in
  let _, isp_take, encrypts =
    List.fold_left
      (fun ((bu, _, _) as best) ((u, _, _) as o) ->
        if u > bu +. 1e-12 then o else best)
      (neg_infinity, 0.0, false)
      options
  in
  let n_enc = p.n_users *. p.enc_fraction in
  let n_clear = p.n_users -. n_enc in
  let revenue =
    (n_clear *. (p.base_price +. p.inspection_value)) +. (n_enc *. isp_take)
  in
  (revenue, encrypts)
