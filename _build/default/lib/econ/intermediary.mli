(** Choice under bounded sophistication, and rating intermediaries
    (§IV-B).

    "For naïve users, choice may be a burden, not a blessing.  To
    compensate ... we may see the emergence of third parties that rate
    services (the on-line analog of Consumers Reports)."

    Consumers pick one of several servers.  A consumer of sophistication
    [s] identifies the best (quality - price) server with probability
    [s], otherwise picks uniformly at random.  A rating intermediary
    publishes the true ranking; consumers who consult it (with the given
    adoption rate) choose as if fully sophisticated. *)

type server = { id : int; quality : float; price : float }

type config = {
  servers : server list;
  n_consumers : int;
  sophistication : float -> float;
      (** maps a uniform draw in [0,1) to a sophistication level, so
          populations can be skewed naive or expert *)
  rater_adoption : float;  (** 0.0 = no intermediary *)
}

type result = {
  mean_surplus : float;
  naive_surplus : float;  (** consumers with sophistication < 0.5 *)
  expert_surplus : float;
  best_server_share : float;  (** traffic share of the true best server *)
}

val run : Tussle_prelude.Rng.t -> config -> result
(** Raises [Invalid_argument] on an empty server list or non-positive
    population. *)

val surplus_recovered : without:result -> with_rater:result -> float
(** Fraction of the naive users' surplus gap (vs experts, without a
    rater) that the intermediary closes.  0 when there was no gap. *)
