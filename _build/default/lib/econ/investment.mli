(** The QoS deployment game: the paper's §VII post-mortem, as a game.

    "One can see the failure of QoS deployment as a failure first to
    design any value-transfer mechanism to give the providers the
    possibility of being rewarded for making the investment (greed),
    and second, a failure to couple the design to a mechanism whereby
    the user can exercise choice to select the provider who offered the
    service (competitive fear)."

    N symmetric ISPs each decide whether to deploy QoS at capital cost
    [deploy_cost].  Revenues depend on two architectural switches:

    {ul
    {- [value_flow]: a payment mechanism exists, so a deployer earns
       [qos_fee] per subscriber who uses QoS;}
    {- [consumer_choice]: users can steer to QoS-honoring providers, so
       subscribers shift from non-deployers to deployers.}}

    Each regime is solved by best-response dynamics to a pure Nash
    equilibrium.  The paper's hypothesis, which the experiment
    reproduces: deployment only happens when {e both} switches are on. *)

type regime = { value_flow : bool; consumer_choice : bool }

type params = {
  n_isps : int;
  subscribers_per_isp : float;  (** symmetric initial base *)
  base_margin : float;  (** profit per subscriber from basic service *)
  qos_fee : float;  (** per-subscriber QoS revenue, if chargeable *)
  qos_take_rate : float;  (** fraction of subscribers buying QoS when offered *)
  deploy_cost : float;  (** per-period capital+ops cost of deploying *)
  share_shift : float;
      (** fraction of each non-deployer's base that defects to deployers
          when consumers can choose *)
}

val default_params : params
(** Calibrated so that neither lever alone covers [deploy_cost], but
    both together do. *)

val game : params -> regime -> Tussle_gametheory.Bestresponse.game
(** Strategy 0 = don't deploy, 1 = deploy. *)

type outcome = {
  equilibrium : int array;  (** per-ISP deployment decision *)
  deployers : int;
  deployment_rate : float;
  total_welfare : float;
}

val solve : params -> regime -> outcome
(** Best-response dynamics from all-zero; falls back to exhaustive
    search if the dynamics cycle. *)

val matrix_22 : params -> (regime * outcome) list
(** The four regimes of the paper's diagnosis, in the order
    (F,F), (T,F), (F,T), (T,T). *)
