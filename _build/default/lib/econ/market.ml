module Rng = Tussle_prelude.Rng
module Stats = Tussle_prelude.Stats

type config = {
  n_consumers : int;
  n_providers : int;
  wtp : float;
  transport_cost : float;
  switching_cost : float;
  provider_cost : float;
  periods : int;
  price_floor : float;
  price_ceiling : float;
  price_step : float;
}

let default_config =
  {
    n_consumers = 600;
    n_providers = 4;
    wtp = 10.0;
    transport_cost = 2.0;
    switching_cost = 0.0;
    provider_cost = 1.0;
    periods = 30;
    price_floor = 0.0;
    price_ceiling = 10.0;
    price_step = 0.1;
  }

type result = {
  mean_price : float;
  mean_markup : float;
  churn_rate : float;
  consumer_surplus : float;
  provider_profit : float;
  hhi : float;
  subscribed_ratio : float;
  price_history : float array;
}

let validate cfg =
  if cfg.n_consumers <= 0 then invalid_arg "Market: no consumers";
  if cfg.n_providers <= 0 then invalid_arg "Market: no providers";
  if cfg.periods <= 0 then invalid_arg "Market: no periods";
  if cfg.price_step <= 0.0 then invalid_arg "Market: non-positive price step";
  if cfg.price_ceiling < cfg.price_floor then invalid_arg "Market: empty grid";
  if cfg.provider_cost < 0.0 || cfg.transport_cost < 0.0
     || cfg.switching_cost < 0.0
  then invalid_arg "Market: negative cost"

let circle_distance a b =
  let d = Float.abs (a -. b) in
  Float.min d (1.0 -. d)

(* consumer's utility buying from provider j at price p *)
let utility cfg ~consumer_pos ~current ~j ~provider_pos ~price =
  let switch_pain =
    match current with
    | Some c when c = j -> 0.0
    | Some _ -> cfg.switching_cost
    | None -> 0.0
  in
  cfg.wtp -. price
  -. (cfg.transport_cost *. circle_distance consumer_pos provider_pos)
  -. switch_pain

(* best provider for a consumer given all prices; None = outside option *)
let choose cfg positions prices ~consumer_pos ~current =
  let best = ref None in
  Array.iteri
    (fun j p ->
      let u =
        utility cfg ~consumer_pos ~current ~j ~provider_pos:positions.(j)
          ~price:p
      in
      match !best with
      | Some (_, bu) when bu >= u -> ()
      | _ -> if u > 0.0 then best := Some (j, u))
    prices;
  !best

let salop_price cfg =
  cfg.provider_cost +. (cfg.transport_cost /. float_of_int cfg.n_providers)

let run rng cfg =
  validate cfg;
  let n = cfg.n_consumers and m = cfg.n_providers in
  let consumer_pos = Array.init n (fun _ -> Rng.float rng 1.0) in
  let provider_pos =
    Array.init m (fun j -> float_of_int j /. float_of_int m)
  in
  let prices = Array.make m (salop_price cfg) in
  let current : int option array = Array.make n None in
  let grid =
    let count =
      int_of_float ((cfg.price_ceiling -. cfg.price_floor) /. cfg.price_step)
    in
    Array.init (count + 1) (fun i ->
        cfg.price_floor +. (float_of_int i *. cfg.price_step))
  in
  (* demand and profit for provider j if it posted price p *)
  let profit_if j p =
    let saved = prices.(j) in
    prices.(j) <- p;
    let subs = ref 0 in
    for c = 0 to n - 1 do
      match
        choose cfg provider_pos prices ~consumer_pos:consumer_pos.(c)
          ~current:current.(c)
      with
      | Some (k, _) when k = j -> incr subs
      | Some _ | None -> ()
    done;
    prices.(j) <- saved;
    float_of_int !subs *. (p -. cfg.provider_cost)
  in
  let warmup = cfg.periods / 3 in
  let switches = ref 0 and choice_periods = ref 0 in
  let price_history = Array.make cfg.periods 0.0 in
  let last_surplus = ref 0.0 and last_profit = ref 0.0 in
  let last_subs = Array.make m 0 in
  for period = 0 to cfg.periods - 1 do
    (* providers best-respond in turn *)
    for j = 0 to m - 1 do
      let best_p = ref prices.(j) and best_profit = ref (profit_if j prices.(j)) in
      Array.iter
        (fun p ->
          let pr = profit_if j p in
          if pr > !best_profit +. 1e-9 then begin
            best_profit := pr;
            best_p := p
          end)
        grid;
      prices.(j) <- !best_p
    done;
    (* consumers choose *)
    Array.fill last_subs 0 m 0;
    let surplus = ref 0.0 and profit = ref 0.0 in
    if period >= warmup then incr choice_periods;
    for c = 0 to n - 1 do
      match
        choose cfg provider_pos prices ~consumer_pos:consumer_pos.(c)
          ~current:current.(c)
      with
      | Some (j, u) ->
        (match current.(c) with
        | Some old when old <> j -> if period >= warmup then incr switches
        | Some _ -> ()
        | None -> ());
        current.(c) <- Some j;
        last_subs.(j) <- last_subs.(j) + 1;
        surplus := !surplus +. u;
        profit := !profit +. (prices.(j) -. cfg.provider_cost)
      | None -> current.(c) <- None
    done;
    last_surplus := !surplus;
    last_profit := !profit;
    price_history.(period) <- Stats.mean prices
  done;
  let subscribed =
    Array.fold_left
      (fun acc c -> match c with Some _ -> acc + 1 | None -> acc)
      0 current
  in
  let share_sizes =
    Array.of_list
      (List.filter (fun x -> x > 0.0)
         (Array.to_list (Array.map float_of_int last_subs)))
  in
  {
    mean_price = Stats.mean prices;
    mean_markup = Stats.mean prices -. cfg.provider_cost;
    churn_rate =
      (if !choice_periods = 0 then 0.0
       else float_of_int !switches /. float_of_int (n * !choice_periods));
    consumer_surplus = !last_surplus;
    provider_profit = !last_profit;
    hhi = (if Array.length share_sizes = 0 then 0.0 else Stats.hhi share_sizes);
    subscribed_ratio = float_of_int subscribed /. float_of_int n;
    price_history;
  }
