type population = {
  n_home : int;
  n_business : int;
  v_home : float;
  v_server : float;
}

type params = {
  detection_prob : float;
  caught_penalty : float;
  provider_cost : float;
  price_step : float;
}

let default_population =
  { n_home = 700; n_business = 300; v_home = 5.0; v_server = 5.0 }

let default_params =
  {
    detection_prob = 0.9;
    caught_penalty = 2.0;
    provider_cost = 1.0;
    price_step = 0.25;
  }

type outcome = {
  price_home : float;
  price_business : float;
  revenue : float;
  provider_profit : float;
  consumer_surplus : float;
  business_on_home_tier : float;
  discrimination_gap : float;
}

(* What a business user does, by masking capability.  Returns
   (expected payment to provider, surplus, on_home_tier). *)
type business_choice = {
  pays : float;
  surplus : float;
  on_home : float; (* 1.0 when the server runs on the home tier *)
  subscribes : bool;
}

let business_best pop prm ~p_h ~p_b ~masked =
  let v_full = pop.v_home +. pop.v_server in
  let candidates =
    (* business tier, legal *)
    [ { pays = p_b; surplus = v_full -. p_b; on_home = 0.0; subscribes = true } ]
    @ (if masked then
         (* home tier, server masked by the tunnel: undetectable *)
         [ { pays = p_h; surplus = v_full -. p_h; on_home = 1.0; subscribes = true } ]
       else
         (* home tier, server in the open: expected detection *)
         let d = prm.detection_prob in
         let expected_pay = (d *. p_b) +. ((1.0 -. d) *. p_h) in
         [
           {
             pays = expected_pay;
             surplus = v_full -. expected_pay -. (d *. prm.caught_penalty);
             on_home = 1.0 -. d;
             subscribes = true;
           };
         ])
    @ [
        (* home tier, forgo the server *)
        { pays = p_h; surplus = pop.v_home -. p_h; on_home = 0.0; subscribes = true };
        (* outside option *)
        { pays = 0.0; surplus = 0.0; on_home = 0.0; subscribes = false };
      ]
  in
  List.fold_left
    (fun best c -> if c.surplus > best.surplus +. 1e-9 then c else best)
    (List.hd candidates) (List.tl candidates)

let evaluate pop prm ~p_h ~p_b ~tunnel_adoption =
  let nh = float_of_int pop.n_home and nb = float_of_int pop.n_business in
  (* home users *)
  let home_surplus_each = pop.v_home -. p_h in
  let home_subscribers = if home_surplus_each >= 0.0 then nh else 0.0 in
  let home_revenue = home_subscribers *. p_h in
  let home_surplus = home_subscribers *. home_surplus_each in
  (* business users: a fraction has tunnels *)
  let masked_n = nb *. tunnel_adoption in
  let open_n = nb -. masked_n in
  let masked_choice = business_best pop prm ~p_h ~p_b ~masked:true in
  let open_choice = business_best pop prm ~p_h ~p_b ~masked:false in
  let biz_revenue =
    (masked_n *. if masked_choice.subscribes then masked_choice.pays else 0.0)
    +. (open_n *. if open_choice.subscribes then open_choice.pays else 0.0)
  in
  let biz_surplus =
    (masked_n *. Float.max 0.0 masked_choice.surplus)
    +. (open_n *. Float.max 0.0 open_choice.surplus)
  in
  let subscribers =
    home_subscribers
    +. (masked_n *. if masked_choice.subscribes then 1.0 else 0.0)
    +. (open_n *. if open_choice.subscribes then 1.0 else 0.0)
  in
  let revenue = home_revenue +. biz_revenue in
  let profit = revenue -. (subscribers *. prm.provider_cost) in
  let on_home =
    if nb = 0.0 then 0.0
    else
      ((masked_n *. masked_choice.on_home) +. (open_n *. open_choice.on_home))
      /. nb
  in
  (profit, revenue, home_surplus +. biz_surplus, on_home)

let best_response_pricing pop prm ~tunnel_adoption =
  if tunnel_adoption < 0.0 || tunnel_adoption > 1.0 then
    invalid_arg "Value_pricing: adoption not in [0,1]";
  if prm.price_step <= 0.0 then invalid_arg "Value_pricing: bad price step";
  let hi = pop.v_home +. pop.v_server +. 1.0 in
  let steps = int_of_float (hi /. prm.price_step) in
  let grid = Array.init (steps + 1) (fun i -> float_of_int i *. prm.price_step) in
  let best = ref None in
  Array.iter
    (fun p_h ->
      Array.iter
        (fun p_b ->
          if p_b >= p_h then begin
            let profit, _, _, _ = evaluate pop prm ~p_h ~p_b ~tunnel_adoption in
            match !best with
            | Some (_, _, bp) when bp >= profit -. 1e-9 -> ()
            | _ -> best := Some (p_h, p_b, profit)
          end)
        grid)
    grid;
  match !best with
  | None -> invalid_arg "Value_pricing: empty grid"
  | Some (p_h, p_b, _) ->
    let profit, revenue, surplus, on_home =
      evaluate pop prm ~p_h ~p_b ~tunnel_adoption
    in
    {
      price_home = p_h;
      price_business = p_b;
      revenue;
      provider_profit = profit;
      consumer_surplus = surplus;
      business_on_home_tier = on_home;
      discrimination_gap = p_b -. p_h;
    }

let sweep pop prm ~adoptions =
  List.map
    (fun a -> (a, best_response_pricing pop prm ~tunnel_adoption:a))
    adoptions
