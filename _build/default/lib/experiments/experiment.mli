(** Common shape of a reproduction experiment.

    Every experiment renders one table (the paper has no numbered
    tables or figures; each experiment operationalizes one qualitative
    claim from the text — see DESIGN.md's experiment index) and checks
    its own expected shape, so the harness can report
    paper-claim-holds / does-not-hold mechanically. *)

type t = {
  id : string;  (** "E1" ... "E13" *)
  title : string;
  paper_claim : string;  (** the sentence from the paper being tested *)
  run : unit -> string * bool;
      (** rendered table(s) and whether the expected shape held *)
}

val render : t -> string * bool
(** Run and wrap with a header/footer.  The bool is the shape check. *)
