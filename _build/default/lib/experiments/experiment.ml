type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> string * bool;
}

let render t =
  let body, ok = t.run () in
  let header =
    Printf.sprintf "## %s — %s\n\nPaper claim: %s\n\n" t.id t.title
      t.paper_claim
  in
  let footer =
    Printf.sprintf "\nshape check: %s\n"
      (if ok then "HOLDS (matches the paper's qualitative claim)"
       else "DOES NOT HOLD")
  in
  (header ^ body ^ footer, ok)
