(** The experiment registry: every paper claim the harness regenerates. *)

val all : Experiment.t list
(** E1 through E27 in order. *)

val find : string -> Experiment.t option
(** Lookup by id (case-insensitive, e.g. "e4" or "E4"). *)

val run_all : unit -> bool
(** Print every experiment to stdout; [true] iff every shape check
    held. *)

val run_one : string -> (bool, string) result
(** Print one experiment by id. *)
