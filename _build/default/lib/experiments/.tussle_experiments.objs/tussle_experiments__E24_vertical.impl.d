lib/experiments/e24_vertical.ml: Experiment Float List Printf Tussle_econ Tussle_prelude
