lib/experiments/e03_broadband.ml: Experiment List Printf Tussle_econ Tussle_prelude
