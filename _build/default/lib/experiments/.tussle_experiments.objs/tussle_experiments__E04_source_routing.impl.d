lib/experiments/e04_source_routing.ml: Array Experiment List Tussle_netsim Tussle_prelude Tussle_routing
