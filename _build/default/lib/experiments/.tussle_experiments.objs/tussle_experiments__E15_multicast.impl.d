lib/experiments/e15_multicast.ml: Array Experiment List Printf Tussle_netsim Tussle_prelude Tussle_routing
