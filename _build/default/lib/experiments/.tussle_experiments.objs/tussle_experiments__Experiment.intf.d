lib/experiments/experiment.mli:
