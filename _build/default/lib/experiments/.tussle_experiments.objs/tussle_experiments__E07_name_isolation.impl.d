lib/experiments/e07_name_isolation.ml: Experiment List Printf Tussle_naming Tussle_prelude
