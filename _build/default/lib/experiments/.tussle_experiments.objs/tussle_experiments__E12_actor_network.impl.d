lib/experiments/e12_actor_network.ml: Experiment List Printf Tussle_core Tussle_prelude
