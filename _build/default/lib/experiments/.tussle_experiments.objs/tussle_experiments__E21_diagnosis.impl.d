lib/experiments/e21_diagnosis.ml: Experiment List Printf Tussle_netsim Tussle_prelude
