lib/experiments/experiment.ml: Printf
