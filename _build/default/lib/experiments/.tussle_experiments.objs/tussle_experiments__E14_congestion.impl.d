lib/experiments/e14_congestion.ml: Array Experiment List Printf Tussle_netsim Tussle_prelude
