lib/experiments/e26_dns_perversion.ml: Experiment List Tussle_naming Tussle_prelude
