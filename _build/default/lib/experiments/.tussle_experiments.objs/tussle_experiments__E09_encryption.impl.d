lib/experiments/e09_encryption.ml: Experiment List Printf Tussle_econ Tussle_netsim Tussle_prelude Tussle_routing
