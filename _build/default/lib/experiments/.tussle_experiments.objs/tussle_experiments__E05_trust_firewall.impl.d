lib/experiments/e05_trust_firewall.ml: Array Experiment List Tussle_netsim Tussle_prelude Tussle_routing Tussle_trust
