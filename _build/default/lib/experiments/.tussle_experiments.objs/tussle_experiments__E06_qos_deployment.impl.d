lib/experiments/e06_qos_deployment.ml: Experiment List Printf Tussle_econ Tussle_prelude
