lib/experiments/e08_visibility.ml: Experiment List Tussle_netsim Tussle_prelude Tussle_routing
