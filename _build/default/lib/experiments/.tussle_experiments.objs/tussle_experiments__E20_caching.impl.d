lib/experiments/e20_caching.ml: Array Experiment Float Printf Tussle_netsim Tussle_prelude
