lib/experiments/e19_scorecard.ml: Experiment List Printf Tussle_core Tussle_prelude
