lib/experiments/e25_nat.ml: Experiment List Printf Tussle_netsim Tussle_prelude
