lib/experiments/e02_value_pricing.ml: Experiment List Printf Tussle_econ Tussle_prelude
