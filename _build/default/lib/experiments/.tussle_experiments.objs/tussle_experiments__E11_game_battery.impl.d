lib/experiments/e11_game_battery.ml: Experiment Float List Printf Tussle_gametheory Tussle_prelude
