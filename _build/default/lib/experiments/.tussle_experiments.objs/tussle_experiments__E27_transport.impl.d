lib/experiments/e27_transport.ml: Experiment Float Printf Tussle_netsim Tussle_prelude
