lib/experiments/e10_ontology.ml: Experiment List Tussle_policy Tussle_prelude
