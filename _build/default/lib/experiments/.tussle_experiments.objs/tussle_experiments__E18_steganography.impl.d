lib/experiments/e18_steganography.ml: Experiment List Printf Tussle_econ Tussle_prelude
