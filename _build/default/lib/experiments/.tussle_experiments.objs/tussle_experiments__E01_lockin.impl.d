lib/experiments/e01_lockin.ml: Experiment List Printf Tussle_econ Tussle_naming Tussle_prelude
