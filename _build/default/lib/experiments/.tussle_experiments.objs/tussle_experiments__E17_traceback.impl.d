lib/experiments/e17_traceback.ml: Experiment List Tussle_prelude Tussle_trust
