lib/experiments/e13_intermediary.ml: Experiment List Printf Tussle_econ Tussle_prelude
