lib/experiments/e16_value_flow.ml: Array Experiment Float Hashtbl List Printf Tussle_econ Tussle_netsim Tussle_prelude Tussle_routing
