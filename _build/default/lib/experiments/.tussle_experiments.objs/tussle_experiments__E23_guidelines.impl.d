lib/experiments/e23_guidelines.ml: Experiment Format List Printf String Tussle_core Tussle_prelude
