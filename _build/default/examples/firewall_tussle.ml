(* The trust tussle (paper §V-B): people who want to be left alone vs
   people who want to bother them.

   A population of hosts exchanges traffic over a two-tier network; a
   fraction of hosts are attackers.  Three protection regimes at the
   destination access providers:

     - open network     : transparent carriage, every attack lands
     - port filtering   : blocks the attack port, but also collateral-
                          damages a new application that happens to use
                          unusual ports — and tunneled attacks get through
     - trust-mediated   : admits flows by WHO is talking (derived trust),
                          not what port they use

   Run with: dune exec examples/firewall_tussle.exe *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Linkstate = Tussle_routing.Linkstate
module Trust_graph = Tussle_trust.Trust_graph

type regime = Open | Port_filter | Trust_mediated

let regime_name = function
  | Open -> "open network"
  | Port_filter -> "port filter"
  | Trust_mediated -> "trust-mediated"

type tally = {
  mutable attacks_landed : int;
  mutable legit_delivered : int;
  mutable legit_total : int;
  mutable attacks_total : int;
}

let run_regime ~seed ~attacker_fraction regime =
  let rng = Rng.create seed in
  let tt =
    Topology.two_tier rng ~transits:2 ~accesses:4 ~hosts_per_access:5
      ~multihoming:1
  in
  let plain = Graph.map_edges tt.Topology.graph (fun (e, _) -> e) in
  let ls = Linkstate.compute plain ~metric:`Hops in
  let links = Topology.to_links plain in
  let net = Net.create links (Linkstate.forwarding ls) in
  let hosts = Array.of_list tt.Topology.hosts in
  let n = Array.length hosts in
  (* who is an attacker *)
  let attacker = Array.map (fun _ -> Rng.bernoulli rng attacker_fraction) hosts in
  (* trust: all good hosts share a web of trust via their access provider;
     attackers have no trust edges *)
  let tg = Trust_graph.create (Graph.node_count plain) in
  Array.iteri
    (fun i h ->
      if not attacker.(i) then begin
        let a = tt.Topology.access_of_host h in
        Trust_graph.add_mutual tg h a 0.95;
        List.iter
          (fun t -> Trust_graph.add_mutual tg a t 0.95)
          (tt.Topology.transit_of_access a)
      end)
    hosts;
  (* peered transits vouch for each other *)
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 -> if t1 < t2 then Trust_graph.add_mutual tg t1 t2 0.95)
        tt.Topology.transits)
    tt.Topology.transits;
  let admits ~src ~dst =
    Trust_graph.trusts ~max_depth:6 tg ~threshold:0.5 dst src
  in
  (* protection at every access provider *)
  List.iter
    (fun a ->
      match regime with
      | Open -> ()
      | Port_filter ->
        Net.add_middlebox net a
          (Middlebox.port_filter ~blocked:[ Packet.default_port Packet.Attack ] ())
      | Trust_mediated ->
        Net.add_middlebox net a (Middlebox.trust_firewall ~admits ()))
    tt.Topology.accesses;
  (* traffic: legit web + a new app on an odd port + attacks (half of
     which are tunneled to dodge port filters) *)
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.split rng) in
  let tally =
    { attacks_landed = 0; legit_delivered = 0; legit_total = 0; attacks_total = 0 }
  in
  let good_hosts =
    Array.of_list
      (List.filteri (fun i _ -> not attacker.(i)) (Array.to_list hosts))
  in
  for i = 0 to n - 1 do
    for _ = 1 to 4 do
      let src = hosts.(i) in
      (* legitimate users exercise choice over whom they talk to
         (paper: "users should be able to choose with whom they
         interact"); attackers spray everyone *)
      let dst =
        if attacker.(i) then hosts.(Rng.int rng n)
        else Rng.choice rng good_hosts
      in
      if dst <> src then
        if attacker.(i) then begin
          tally.attacks_total <- tally.attacks_total + 1;
          let tunneled = Rng.bernoulli rng 0.5 in
          Net.inject net engine
            (Traffic.next_packet gen ~app:Packet.Attack ~tunneled ~src ~dst
               ~created:(Engine.now engine) ())
        end
        else begin
          tally.legit_total <- tally.legit_total + 1;
          let app = if Rng.bernoulli rng 0.3 then Packet.Game else Packet.Web in
          (* the unproven new application lives on the attack port's
             neighbourhood: unlucky, and exactly the collateral-damage
             case the paper worries about *)
          let port =
            if app = Packet.Game then Packet.default_port Packet.Attack + 0
            else Packet.default_port app
          in
          Net.inject net engine
            (Traffic.next_packet gen ~app ~port ~src ~dst
               ~created:(Engine.now engine) ())
        end
    done
  done;
  Engine.run engine;
  List.iter
    (fun ((p : Packet.t), outcome) ->
      match outcome with
      | Net.Delivered _ ->
        if p.Packet.app = Packet.Attack then
          tally.attacks_landed <- tally.attacks_landed + 1
        else tally.legit_delivered <- tally.legit_delivered + 1
      | Net.Lost _ -> ())
    (Net.outcomes net);
  tally

let () =
  Printf.printf "=== Firewall tussle: protection vs transparency ===\n\n";
  let attacker_fraction = 0.2 in
  Printf.printf "population: 20 hosts, %.0f%% attackers; half of attacks tunneled\n\n"
    (100.0 *. attacker_fraction);
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "regime"; "attacks landed"; "legit traffic delivered" ]
  in
  List.iter
    (fun regime ->
      let tally = run_regime ~seed:77 ~attacker_fraction regime in
      Table.add_row t
        [
          regime_name regime;
          Printf.sprintf "%d/%d" tally.attacks_landed tally.attacks_total;
          Printf.sprintf "%d/%d" tally.legit_delivered tally.legit_total;
        ])
    [ Open; Port_filter; Trust_mediated ];
  Table.print t;
  Printf.printf
    "\n-> the open network delivers everything, attacks included.  The\n\
    \   port filter stops only unmasked attacks and collateral-damages\n\
    \   the new application squatting on the filtered port.  The trust-\n\
    \   mediated firewall blocks by WHO is talking: tunneling does not\n\
    \   help attackers, and the new app is untouched (\"constraints based\n\
    \   on who is communicating, not what protocols are being run\").\n"
