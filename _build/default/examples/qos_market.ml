(* The QoS deployment post-mortem (paper §VII) and the market mechanics
   behind it.

   Part 1 — the investment game: four architectural regimes, crossing
   {value flow} x {consumer choice}.  The paper's diagnosis: QoS failed
   because neither the greed lever (payment) nor the fear lever
   (competitive choice) was wired up.

   Part 2 — the access market that generates the "fear" lever: more
   providers means lower prices; switching costs (provider lock-in)
   mean higher markups and dead churn.

   Run with: dune exec examples/qos_market.exe *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Market = Tussle_econ.Market
module Investment = Tussle_econ.Investment

let part1 () =
  Printf.printf "=== Part 1: the QoS investment game ===\n\n";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "value flow (greed)"; "consumer choice (fear)"; "ISPs deploying"; "welfare" ]
  in
  List.iter
    (fun ({ Investment.value_flow; consumer_choice }, o) ->
      Table.add_row t
        [
          (if value_flow then "yes" else "no");
          (if consumer_choice then "yes" else "no");
          Printf.sprintf "%d/%d" o.Investment.deployers
            Investment.default_params.Investment.n_isps;
          Printf.sprintf "%.0f" o.Investment.total_welfare;
        ])
    (Investment.matrix_22 Investment.default_params);
  Table.print t;
  Printf.printf
    "\n-> deployment appears only in the bottom row: \"a failure first to\n\
    \   design any value-transfer mechanism (greed), and second, a failure\n\
    \   to couple the design to a mechanism whereby the user can exercise\n\
    \   choice (competitive fear).\"\n\n"

let part2 () =
  Printf.printf "=== Part 2: competition and lock-in in the access market ===\n\n";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "market"; "price"; "markup"; "churn"; "consumer surplus" ]
  in
  let run name cfg =
    let r = Market.run (Rng.create 11) cfg in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.2f" r.Market.mean_price;
        Printf.sprintf "%.2f" r.Market.mean_markup;
        Table.fmt_pct r.Market.churn_rate;
        Printf.sprintf "%.0f" r.Market.consumer_surplus;
      ]
  in
  let base = Market.default_config in
  run "duopoly (the broadband fear)" { base with Market.n_providers = 2 };
  run "4 providers" base;
  run "8 providers (open access)" { base with Market.n_providers = 8 };
  run "4 providers + heavy lock-in"
    { base with Market.switching_cost = 3.0 };
  Table.print t;
  Printf.printf
    "\n-> more providers squeeze the markup toward cost + t/n (Salop);\n\
    \   lock-in does the opposite — providers price up to the switching\n\
    \   cost and churn dies.  Portable addresses and DHCP+dynamic-DNS are\n\
    \   exactly the mechanisms that delete that switching cost (paper\n\
    \   \"addresses should reflect connectivity, not identity\").\n"

let () =
  part1 ();
  part2 ()
