(* Policy lab: the policy-language substrate end to end (paper §II-B,
   §V-B).

   1. Parse a small trust-management policy (KeyNote-style) and answer
      compliance queries, including a delegation chain and a deny
      override.
   2. Show the ontology bound: a tussle the language's vocabulary
      cannot express.
   3. Drive the MIDCOM-style firewall control table: admin rules, a
      user pinhole, and the rule-visibility question.

   Run with: dune exec examples/policy_lab.exe *)

module Parser = Tussle_policy.Parser
module Eval = Tussle_policy.Eval
module Ast = Tussle_policy.Ast
module Ontology = Tussle_policy.Ontology
module Fc = Tussle_trust.Firewall_control
module Packet = Tussle_netsim.Packet

let policy_text =
  "root says allow campus-isp connect on backbone delegable.\n\
   campus-isp says allow dorm-net connect on backbone delegable.\n\
   dorm-net says allow alice connect on backbone where port == 443 or port == 80.\n\
   root says deny eve * on *.\n"

let part1 () =
  Printf.printf "=== Part 1: compliance checking with delegation ===\n\n";
  Printf.printf "%s\n" policy_text;
  let policy = Parser.parse policy_text in
  let ask ?(attributes = []) subject action resource =
    let d =
      Eval.decide ~root:"root" policy { Eval.subject; action; resource; attributes }
    in
    Printf.printf "  %-40s -> %s\n"
      (Printf.sprintf "%s %s on %s%s" subject action resource
         (match attributes with
         | [] -> ""
         | (k, Ast.Int v) :: _ -> Printf.sprintf " (%s=%d)" k v
         | (k, _) :: _ -> Printf.sprintf " (%s=...)" k))
      (Eval.decision_to_string d)
  in
  ask ~attributes:[ ("port", Ast.Int 443) ] "alice" "connect" "backbone";
  ask ~attributes:[ ("port", Ast.Int 25) ] "alice" "connect" "backbone";
  ask "alice" "connect" "backbone";
  ask ~attributes:[ ("port", Ast.Int 443) ] "eve" "connect" "backbone";
  ask "campus-isp" "connect" "backbone";
  ask "mallory" "connect" "backbone";
  Printf.printf
    "\n-> alice's right flows root -> campus-isp -> dorm-net (delegable\n\
    \   links), gated by the port condition; eve is denied by a rooted\n\
    \   deny that overrides; mallory has no chain at all.\n\n"

let part2 () =
  Printf.printf "=== Part 2: the ontology bounds the expressible tussle ===\n\n";
  let ont = Ontology.make_ontology Ontology.standard_attributes in
  let wanted =
    [
      { Ontology.label = "block bulk mail at night";
        footprint = [ "port"; "time-of-day" ] };
      { Ontology.label = "surcharge premium gaming";
        footprint = [ "app"; "qos"; "payment" ] };
      { Ontology.label = "require age attestation for uploads";
        footprint = [ "age-attestation" ] };
      { Ontology.label = "carbon-aware routing";
        footprint = [ "carbon-intensity" ] };
    ]
  in
  List.iter
    (fun c ->
      Printf.printf "  %-42s %s\n" c.Ontology.label
        (if Ontology.expressible ont c then "expressible"
         else "NOT expressible (outside the ontology)"))
    wanted;
  Printf.printf
    "\n-> \"by imposing an ontology on what can be expressed, they bound\n\
    \   the tussle that can be expressed\" — the last two tussles were\n\
    \   not anticipated by the language designers.\n\n"

let part3 () =
  Printf.printf "=== Part 3: who sets the firewall rules? ===\n\n";
  let table = Fc.create ~users_may_override:true () in
  ignore
    (Fc.add_rule table Fc.Admin ~allow:false
       { Fc.any with Fc.sel_port = Some (Packet.default_port Packet.Game) });
  Printf.printf "admin installs: deny port %d (the new app) for everyone\n"
    (Packet.default_port Packet.Game);
  let alice = 7 in
  (match
     Fc.add_rule table (Fc.End_user alice) ~allow:true
       { Fc.any with Fc.sel_src = Some alice }
   with
  | Ok id -> Printf.printf "alice's pinhole request over her own traffic: granted (rule %d)\n" id
  | Error `Beyond_authority -> Printf.printf "pinhole refused\n");
  (match
     Fc.add_rule table (Fc.End_user alice) ~allow:true
       { Fc.any with Fc.sel_src = Some 8 }
   with
  | Ok _ -> Printf.printf "alice legislating for bob: GRANTED (bug!)\n"
  | Error `Beyond_authority ->
    Printf.printf "alice legislating for bob's traffic: refused (beyond authority)\n");
  let game src id = Packet.make ~app:Packet.Game ~id ~src ~dst:50 ~created:0.0 () in
  Printf.printf "alice's game traffic permitted: %b\n" (Fc.permits table (game alice 0));
  Printf.printf "bob's game traffic permitted:   %b\n" (Fc.permits table (game 8 1));
  Printf.printf "rules alice can examine: %d of %d constraining her\n"
    (List.length (Fc.visible_rules table ~user:alice))
    (List.length (Fc.rules_constraining table ~user:alice));
  Printf.printf
    "\n-> \"all we can design is the space for the tussle\": authority is\n\
    \   scoped, precedence is a knob, and rule visibility is measurable.\n"

let () =
  part1 ();
  part2 ();
  part3 ()
