(* ISP peering: competitors who must interconnect (paper §I, §IV-C).

   Part 1 — the peering game: one-shot play destroys peering, repeated
   play with reciprocal strategies sustains it.

   Part 2 — the interface designed for tussle: path-vector routing over
   a commercial two-tier topology.  Routes are valley-free (business
   relationships respected) and an observer at a stub network sees only
   its own chosen paths, while link-state floods everything.

   Run with: dune exec examples/isp_peering.exe *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Topology = Tussle_netsim.Topology
module Normal_form = Tussle_gametheory.Normal_form
module Repeated = Tussle_gametheory.Repeated
module Pathvector = Tussle_routing.Pathvector
module Linkstate = Tussle_routing.Linkstate
module Visibility = Tussle_routing.Visibility

let part1 () =
  Printf.printf "=== Part 1: the peering game ===\n\n";
  let g = Normal_form.peering_game in
  Printf.printf "one-shot pure Nash equilibria (0=peer, 1=refuse): ";
  List.iter
    (fun (i, j) -> Printf.printf "(%d,%d) " i j)
    (Normal_form.pure_nash g);
  Printf.printf "\n-> one-shot rationality refuses to peer.\n\n";
  let rounds = 200 in
  let t = Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "matchup"; "total payoff A"; "coop rate" ]
  in
  let play name a b =
    let r = Repeated.play ~rounds g a b in
    Table.add_row t
      [ name; Printf.sprintf "%.0f" r.Repeated.payoff_a;
        Printf.sprintf "%.2f" (Repeated.cooperation_rate r) ]
  in
  play "tit-for-tat vs tit-for-tat" Repeated.tit_for_tat Repeated.tit_for_tat;
  play "tit-for-tat vs all-refuse" Repeated.tit_for_tat Repeated.all_defect;
  play "all-peer    vs all-refuse" Repeated.all_cooperate Repeated.all_defect;
  play "grim        vs tit-for-tat" Repeated.grim_trigger Repeated.tit_for_tat;
  Table.print t;
  Printf.printf
    "-> repetition is the mechanism that sustains peering: reciprocity\n\
    \   turns the one-shot defection into stable cooperation.\n\n"

let part2 () =
  Printf.printf "=== Part 2: path-vector — an interface crafted for tussle ===\n\n";
  let rng = Rng.create 2002 in
  let tt =
    Topology.two_tier rng ~transits:3 ~accesses:5 ~hosts_per_access:2
      ~multihoming:2
  in
  let pv = Pathvector.compute tt.Topology.graph in
  Printf.printf "two-tier topology: %d transits, %d accesses, %d hosts\n"
    (List.length tt.Topology.transits)
    (List.length tt.Topology.accesses)
    (List.length tt.Topology.hosts);
  Printf.printf "path-vector converged in %d rounds (%d route updates)\n"
    (Pathvector.rounds_to_converge pv)
    (Pathvector.updates_applied pv);
  Printf.printf "reachability: %.0f%%\n\n"
    (100.0 *. Pathvector.reachability_ratio pv);
  (* what does a host see? *)
  let host = List.hd tt.Topology.hosts in
  let total = Graph.edge_count tt.Topology.graph in
  let plain = Graph.map_edges tt.Topology.graph (fun (e, _) -> e) in
  let ls = Linkstate.compute plain ~metric:`Hops in
  let t = Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "protocol"; "links exposed to a stub"; "per-neighbor policy levers" ]
  in
  Table.add_row t
    [ "link-state (OSPF-like)";
      Table.fmt_pct (Visibility.linkstate_exposure ls ~total_links:total);
      string_of_int (Visibility.linkstate_policy_levers ls) ];
  Table.add_row t
    [ "path-vector (BGP-like)";
      Table.fmt_pct (Visibility.pathvector_exposure_at pv ~node:host ~total_links:total);
      string_of_int (Visibility.pathvector_policy_levers tt.Topology.graph) ];
  Table.print t;
  Printf.printf
    "-> \"a path vector protocol makes it harder to see what the internal\n\
    \   choices are\" — and gives every AS an export veto that link-state\n\
    \   cannot express.  That is why BGP, not OSPF, sits at the tussle\n\
    \   boundary between competing ISPs.\n";
  (* show one business-looking path *)
  match tt.Topology.hosts with
  | h1 :: _ :: rest ->
    let h2 = match List.rev rest with last :: _ -> last | [] -> h1 in
    (match Pathvector.as_path pv ~src:h1 ~dst:h2 with
    | Some path ->
      Printf.printf "\nexample chosen path %d -> %d: %s\n" h1 h2
        (String.concat " -> "
           (List.map string_of_int (h1 :: path)))
    | None -> ())
  | _ -> ()

let () =
  part1 ();
  part2 ()
