examples/quickstart.mli:
