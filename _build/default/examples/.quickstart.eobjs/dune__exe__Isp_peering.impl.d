examples/isp_peering.ml: List Printf String Tussle_gametheory Tussle_netsim Tussle_prelude Tussle_routing
