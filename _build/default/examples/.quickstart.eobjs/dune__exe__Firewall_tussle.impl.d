examples/firewall_tussle.ml: Array List Printf Tussle_netsim Tussle_prelude Tussle_routing Tussle_trust
