examples/isp_peering.mli:
