examples/policy_lab.ml: List Printf Tussle_netsim Tussle_policy Tussle_trust
