examples/quickstart.ml: Format List Printf String Tussle_core
