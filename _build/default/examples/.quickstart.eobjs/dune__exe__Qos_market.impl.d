examples/qos_market.ml: List Printf Tussle_econ Tussle_prelude
