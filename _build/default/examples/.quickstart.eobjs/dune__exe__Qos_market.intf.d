examples/qos_market.mli:
