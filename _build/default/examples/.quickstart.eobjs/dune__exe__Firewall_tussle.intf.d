examples/firewall_tussle.mli:
