(* Quickstart: the run-time tussle engine in one page.

   An ISP, a user, and a government contend over a network.  Each round
   every actor deploys (or withdraws) the mechanism that best serves its
   interests; mechanisms counter each other (tunnels defeat port
   filters, encryption defeats DPI and wiretaps).  The paper's claim is
   that such tussles need not settle — watch for a cycle.

   Run with: dune exec examples/quickstart.exe *)

module Actor = Tussle_core.Actor
module Interest = Tussle_core.Interest
module Mechanism = Tussle_core.Mechanism
module Scenario = Tussle_core.Scenario

let () =
  let actors =
    [
      Actor.make ~id:0 ~name:"broadband-isp" Actor.Isp;
      Actor.make ~id:1 ~name:"alice" Actor.User;
      Actor.make ~id:2 ~name:"state" Actor.Government;
    ]
  in
  Printf.printf "=== Tussle quickstart: ISP vs user vs government ===\n\n";
  List.iter
    (fun a -> Format.printf "  actor %a@." Actor.pp a)
    actors;
  let result = Scenario.run ~max_rounds:20 ~actors ~available:Mechanism.available_to () in
  Printf.printf "\n--- rounds ---\n";
  List.iter
    (fun r ->
      let moves =
        List.filter_map
          (fun (id, m) ->
            match m with
            | Scenario.Pass -> None
            | m -> Some (Printf.sprintf "actor %d: %s" id (Scenario.move_to_string m)))
          r.Scenario.moves
      in
      if moves <> [] then
        Printf.printf "round %2d | %s\n" r.Scenario.index (String.concat "; " moves))
    result.Scenario.rounds;
  Printf.printf "\nending: %s\n" (Scenario.ending_to_string result.Scenario.ending);
  Format.printf "final outcome: %a@." Interest.pp result.Scenario.final_outcome;
  Printf.printf "\nfinal utilities:\n";
  List.iter
    (fun (id, u) -> Printf.printf "  actor %d: %+.3f\n" id u)
    result.Scenario.utilities;
  Printf.printf
    "\nThe deployment ladder above is the paper's escalation story:\n\
     filters beget tunnels beget DPI begets encryption — \"there is no\n\
     final outcome, no stable point\" unless someone runs out of moves.\n"
