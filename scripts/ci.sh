#!/usr/bin/env bash
# Tier-1 verification plus the observability battery smoke:
#   - dune build && dune runtest
#   - battery run with --report/--trace, schema validation of both
#   - telemetry must not perturb battery stdout
#   - --domains / --timeout-s / --fault-seed garbage must exit 2 on
#     both entry points
#   - fault battery smoke: E28 is deterministic per fault seed and
#     differs across seeds
#   - watchdog: a hung experiment becomes FAILED (timeout), exit 1
#   - tussle report on a missing/unreadable file exits 2 cleanly
#   - chaos smoke: a fixed-seed sweep over the extended fault grammar
#     (gray loss, unidirectional, flap, blackhole included) is clean
#     and byte-identical across --domains 1/2/4; the committed corpus
#     (including the covert-fault reproducers) replays clean;
#     --chaos-seed / --chaos-runs garbage exits 2
#   - flight recorder off (the default): battery stdout byte-identical
#     across --domains 1/2/4
#   - tussle explain: every committed corpus reproducer yields a
#     deterministic causal narrative (byte-identical across
#     --domains 1/2/4) plus a flow-trace artifact; parse/schema errors
#     and garbage flags exit 2
#   - tussle trends: history lines round-trip; parse errors exit 2;
#     the battery-smoke report is appended to the committed
#     BENCH_history.jsonl with deltas vs BENCH_baseline.json
#   - sweep smoke: tussle sweep at a small N passes every statistical
#     verdict, the tussle.sweep-report/1 artifact validates via
#     tussle report and is byte-identical across --domains 1/2/4 and
#     across repeats; --sweep-seed / --sweep-runs / --alpha garbage
#     exits 2 on both entry points
#   - search smoke: tussle search (mutate + exhaust backends) is clean
#     on the real scenarios, with stdout and the
#     tussle.search-report/1 artifact byte-identical across
#     --domains 1/2/4; garbage search flags exit 2 on both entry
#     points
#   - perf gate: E1/E3 wall clock and GC allocation within 25% of the
#     committed BENCH_baseline.json (tussle perfgate)
# Regenerates BENCH_baseline.json and appends one line to
# BENCH_history.jsonl at the repo root as side effects.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== unit tests =="
dune runtest

BENCH=_build/default/bench/main.exe
CLI=_build/default/bin/tussle_cli.exe
TMP="${TMPDIR:-/tmp}"
report="$TMP/tussle-report.json"
trace="$TMP/tussle-trace.json"

echo "== battery smoke (report + trace) =="
"$BENCH" --experiments-only --seq --report "$report" --trace "$trace" \
  > "$TMP/tussle-battery-obs.out"
"$CLI" report "$report"
# structural JSON validation of the trace is covered by test_obs; here
# just check the file materialized with the expected envelope
grep -q '"traceEvents"' "$trace"
echo "trace written: $(wc -c < "$trace") bytes"

echo "== telemetry does not perturb stdout =="
"$BENCH" --experiments-only --seq > "$TMP/tussle-battery-plain.out"
"$BENCH" --experiments-only --seq --trace "$trace" > "$TMP/tussle-battery-traced.out"
cmp "$TMP/tussle-battery-plain.out" "$TMP/tussle-battery-traced.out"
echo "battery stdout byte-identical with tracing enabled"

echo "== --domains rejects garbage with exit 2 =="
for cmd in "$BENCH --experiments-only" "$CLI experiments"; do
  for bad in nope 0 -3; do
    set +e
    # --domains=X form: cmdliner would otherwise read a bare "-3" as an
    # unknown option; bench/main parses both forms the same way
    $cmd --domains="$bad" >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 2 ]; then
      echo "FAIL: '$cmd --domains=$bad' exited $code, expected 2" >&2
      exit 1
    fi
  done
done
echo "both entry points exit 2 on bad --domains"

echo "== --timeout-s / --fault-seed reject garbage with exit 2 =="
for cmd in "$BENCH --experiments-only" "$CLI experiments"; do
  for flag in "--timeout-s=nope" "--timeout-s=0" "--timeout-s=-1" \
              "--fault-seed=nope" "--fault-seed=1.5"; do
    set +e
    $cmd "$flag" >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 2 ]; then
      echo "FAIL: '$cmd $flag' exited $code, expected 2" >&2
      exit 1
    fi
  done
done
echo "both entry points exit 2 on bad --timeout-s / --fault-seed"

echo "== fault battery smoke (E28, seeded) =="
"$CLI" experiments -e E28 --fault-seed 7 > "$TMP/tussle-e28-seed7a.out"
"$CLI" experiments -e E28 --fault-seed 7 > "$TMP/tussle-e28-seed7b.out"
"$CLI" experiments -e E28 --fault-seed 8 > "$TMP/tussle-e28-seed8.out"
cmp "$TMP/tussle-e28-seed7a.out" "$TMP/tussle-e28-seed7b.out"
if cmp -s "$TMP/tussle-e28-seed7a.out" "$TMP/tussle-e28-seed8.out"; then
  echo "FAIL: E28 output identical across different fault seeds" >&2
  exit 1
fi
echo "E28 deterministic per fault seed, differs across seeds"

echo "== watchdog converts a hung experiment into FAILED (timeout) =="
set +e
timeout 30 "$CLI" experiments -e E99 --timeout-s 1 > "$TMP/tussle-e99.out" 2>&1
code=$?
set -e
if [ "$code" -ne 1 ]; then
  echo "FAIL: hung E99 under --timeout-s exited $code, expected 1" >&2
  exit 1
fi
grep -q 'FAILED (timeout' "$TMP/tussle-e99.out"
echo "hung experiment reported as FAILED (timeout) without hanging the run"

echo "== tussle report error paths exit 2 =="
set +e
"$CLI" report "$TMP/definitely-missing-report.json" >/dev/null 2>&1
missing=$?
"$CLI" report / >/dev/null 2>&1
unreadable=$?
set -e
if [ "$missing" -ne 2 ] || [ "$unreadable" -ne 2 ]; then
  echo "FAIL: report error paths exited $missing/$unreadable, expected 2/2" >&2
  exit 1
fi
echo "report prints a clean error and exits 2 on missing/unreadable files"

echo "== chaos smoke (fixed seed, domain-invariant, zero violations) =="
"$CLI" chaos --chaos-seed 42 --chaos-runs 60 --domains 1 > "$TMP/tussle-chaos-d1.out"
"$CLI" chaos --chaos-seed 42 --chaos-runs 60 --domains 2 > "$TMP/tussle-chaos-d2.out"
"$CLI" chaos --chaos-seed 42 --chaos-runs 60 --domains 4 > "$TMP/tussle-chaos-d4.out"
cmp "$TMP/tussle-chaos-d1.out" "$TMP/tussle-chaos-d2.out"
cmp "$TMP/tussle-chaos-d1.out" "$TMP/tussle-chaos-d4.out"
grep -q '60/60 runs clean, 0 violation' "$TMP/tussle-chaos-d1.out"
echo "chaos sweep clean and byte-identical across --domains 1/2/4"

echo "== chaos corpus replay =="
"$CLI" chaos --replay chaos/corpus
echo "committed reproducers all replay clean"

echo "== flight recorder off: battery byte-identical across domains =="
"$BENCH" --experiments-only --domains 1 > "$TMP/tussle-battery-dom1.out"
"$BENCH" --experiments-only --domains 2 > "$TMP/tussle-battery-dom2.out"
"$BENCH" --experiments-only --domains 4 > "$TMP/tussle-battery-dom4.out"
cmp "$TMP/tussle-battery-dom1.out" "$TMP/tussle-battery-dom2.out"
cmp "$TMP/tussle-battery-dom1.out" "$TMP/tussle-battery-dom4.out"
echo "battery stdout byte-identical with the recorder disabled"

echo "== tussle explain on every committed reproducer =="
for plan in chaos/corpus/*.plan; do
  "$CLI" explain "$plan" --domains 1 > "$TMP/tussle-explain-d1.out"
  "$CLI" explain "$plan" --domains 2 > "$TMP/tussle-explain-d2.out"
  "$CLI" explain "$plan" --domains 4 > "$TMP/tussle-explain-d4.out"
  cmp "$TMP/tussle-explain-d1.out" "$TMP/tussle-explain-d2.out"
  cmp "$TMP/tussle-explain-d1.out" "$TMP/tussle-explain-d4.out"
  grep -q 'DROPPED at\|flows of interest: none' "$TMP/tussle-explain-d1.out"
  "$CLI" explain "$plan" --json "$TMP/tussle-flowtrace.json" > /dev/null
  grep -q '"schema": "tussle.flow-trace/1"' "$TMP/tussle-flowtrace.json"
  echo "explain ok: $(basename "$plan")"
done
echo "== tussle explain error paths exit 2 =="
for args in "$TMP/definitely-missing.plan" "README.md" \
            "chaos/corpus --domains=0"; do
  set +e
  # shellcheck disable=SC2086
  "$CLI" explain $args >/dev/null 2>&1
  code=$?
  set -e
  if [ "$code" -ne 2 ]; then
    echo "FAIL: 'tussle explain $args' exited $code, expected 2" >&2
    exit 1
  fi
done
echo "explain exits 2 on missing/unparseable plans and bad --domains"

echo "== tussle trends round-trips its history =="
hist="$TMP/tussle-history.jsonl"
rm -f "$hist"
"$CLI" trends "$report" --history "$hist" | grep -q '(1 entry)'
"$CLI" trends "$report" --history "$hist" --baseline "$report" \
  > "$TMP/tussle-trends.out"
grep -q '(2 entries)' "$TMP/tussle-trends.out"
grep -q 'E1' "$TMP/tussle-trends.out"
set +e
"$CLI" trends "$TMP/definitely-missing-report.json" --history "$hist" \
  >/dev/null 2>&1
missing=$?
echo "not json" > "$TMP/tussle-bad-history.jsonl"
"$CLI" trends "$report" --history "$TMP/tussle-bad-history.jsonl" \
  >/dev/null 2>&1
corrupt=$?
set -e
if [ "$missing" -ne 2 ] || [ "$corrupt" -ne 2 ]; then
  echo "FAIL: trends error paths exited $missing/$corrupt, expected 2/2" >&2
  exit 1
fi
echo "trends appends, round-trips, and exits 2 on parse errors"

echo "== --chaos-seed / --chaos-runs reject garbage with exit 2 =="
for flag in "--chaos-seed=nope" "--chaos-seed=1.5" \
            "--chaos-runs=nope" "--chaos-runs=0" "--chaos-runs=-3"; do
  set +e
  "$CLI" chaos "$flag" >/dev/null 2>&1
  code=$?
  set -e
  if [ "$code" -ne 2 ]; then
    echo "FAIL: 'tussle chaos $flag' exited $code, expected 2" >&2
    exit 1
  fi
done
echo "tussle chaos exits 2 on bad --chaos-seed / --chaos-runs"

echo "== sweep smoke (statistical verdicts, domain-invariant) =="
sweep_report="$TMP/tussle-sweep-report.json"
"$CLI" sweep --sweep-seed 42 --sweep-runs 12 --domains 1 \
  --report "$sweep_report" > "$TMP/tussle-sweep-d1.out"
"$CLI" sweep --sweep-seed 42 --sweep-runs 12 --domains 2 \
  --report "$sweep_report.d2" > "$TMP/tussle-sweep-d2.out"
"$CLI" sweep --sweep-seed 42 --sweep-runs 12 --domains 4 \
  --report "$sweep_report.d4" > "$TMP/tussle-sweep-d4.out"
cmp "$sweep_report" "$sweep_report.d2"
cmp "$sweep_report" "$sweep_report.d4"
# repeat at the same seed and the same --report path (the path is
# echoed on stdout): summary and artifact must be byte-identical
"$CLI" sweep --sweep-seed 42 --sweep-runs 12 --domains 4 \
  --report "$sweep_report.d4" > "$TMP/tussle-sweep-again.out"
cmp "$sweep_report" "$sweep_report.d4"
cmp "$TMP/tussle-sweep-d4.out" "$TMP/tussle-sweep-again.out"
grep -q 'PASS availability(heal) > availability(static)' "$TMP/tussle-sweep-d1.out"
grep -q 'PASS availability(verified) > availability(hello-only)' "$TMP/tussle-sweep-d1.out"
grep -q 'PASS covert drops shrink under verification' "$TMP/tussle-sweep-d1.out"
grep -q 'PASS markup(pb6) > markup(portable)' "$TMP/tussle-sweep-d1.out"
grep -q 'PASS price(duo) > price(open8)' "$TMP/tussle-sweep-d1.out"
if grep -q ' FAIL ' "$TMP/tussle-sweep-d1.out"; then
  echo "FAIL: sweep smoke has failing verdicts" >&2
  exit 1
fi
"$CLI" report "$sweep_report" | grep -q 'valid tussle.sweep-report/1'
echo "sweep verdicts pass; artifact schema-valid and byte-identical across --domains 1/2/4"

echo "== sweep flags reject garbage with exit 2 on both entry points =="
for cmd in "$BENCH" "$CLI sweep"; do
  for flag in "--sweep-seed=nope" "--sweep-seed=1.5" \
              "--sweep-runs=nope" "--sweep-runs=1" "--sweep-runs=-3" \
              "--alpha=nope" "--alpha=0" "--alpha=1" "--alpha=2"; do
    set +e
    # shellcheck disable=SC2086
    $cmd "$flag" >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 2 ]; then
      echo "FAIL: '$cmd $flag' exited $code, expected 2" >&2
      exit 1
    fi
  done
done
set +e
"$CLI" sweep -e E2 >/dev/null 2>&1
no_surface=$?
"$CLI" sweep -e EZZ >/dev/null 2>&1
unknown=$?
set -e
if [ "$no_surface" -ne 2 ] || [ "$unknown" -ne 2 ]; then
  echo "FAIL: sweep -e error paths exited $no_surface/$unknown, expected 2/2" >&2
  exit 1
fi
echo "both entry points exit 2 on bad sweep flags; -e rejects unsweepable ids"

echo "== search smoke (both backends, domain-invariant) =="
# the corpus replay step above already re-runs every committed
# reproducer, including any the adversarial search persisted; here the
# search itself must be clean on the real scenarios and byte-identical
# (stdout AND artifact) across --domains 1/2/4 and across repeats
search_report="$TMP/tussle-search-report.json"
for backend in mutate exhaust; do
  "$CLI" search --backend "$backend" --budget 48 --sweep-seed 42 \
    --domains 1 --report "$search_report" > "$TMP/tussle-search-d1.out"
  cp "$search_report" "$search_report.d1"
  for d in 2 4; do
    "$CLI" search --backend "$backend" --budget 48 --sweep-seed 42 \
      --domains "$d" --report "$search_report" > "$TMP/tussle-search-d$d.out"
    cmp "$TMP/tussle-search-d1.out" "$TMP/tussle-search-d$d.out"
    cmp "$search_report.d1" "$search_report"
  done
  if grep -q 'VIOLATION' "$TMP/tussle-search-d1.out"; then
    echo "FAIL: $backend search found violations in the real scenarios" >&2
    exit 1
  fi
  # the exhaustive box must enumerate the extended grammar (gray loss,
  # unidirectional, flap, blackhole) — pin the space size so a grammar
  # regression is caught here, not in a missed bug later
  if [ "$backend" = exhaust ]; then
    grep -q 'box: 85710 plans' "$TMP/tussle-search-d1.out"
  fi
  "$CLI" report "$search_report" | grep -q 'valid tussle.search-report/1'
  echo "search[$backend] clean; artifact schema-valid and byte-identical across --domains 1/2/4"
done
"$BENCH" --search --backend exhaust --budget 48 --sweep-seed 42 --seq \
  > "$TMP/tussle-bench-search.out"
grep -q 'Search report' "$TMP/tussle-bench-search.out"
echo "bench --search runs the same engine"

echo "== search flags reject garbage with exit 2 on both entry points =="
for flag in "--backend=bogus" "--budget=nope" "--budget=0" "--budget=-3" \
            "--sweep-seed=nope" "--sweep-seed=1.5" "--domains=0"; do
  set +e
  "$CLI" search "$flag" >/dev/null 2>&1
  code=$?
  set -e
  if [ "$code" -ne 2 ]; then
    echo "FAIL: 'tussle search $flag' exited $code, expected 2" >&2
    exit 1
  fi
done
for flag in "--backend=bogus" "--budget=nope" "--budget=0"; do
  set +e
  "$BENCH" --search "$flag" >/dev/null 2>&1
  code=$?
  set -e
  if [ "$code" -ne 2 ]; then
    echo "FAIL: 'bench --search $flag' exited $code, expected 2" >&2
    exit 1
  fi
done
echo "both entry points exit 2 on bad search flags"

echo "== perf gate: E1/E3 vs committed baseline =="
# gate the battery-smoke report (same binary, same run) against the
# committed baseline before overwriting it below: a market hot-path
# regression beyond 25% on wall clock or GC allocation fails CI
"$CLI" perfgate BENCH_baseline.json "$report" --ids E1,E3 --tolerance 0.25
set +e
"$CLI" perfgate BENCH_baseline.json "$report" --tolerance=nope >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
  echo "FAIL: 'tussle perfgate --tolerance=nope' exited $code, expected 2" >&2
  exit 1
fi
echo "perf gate passed; garbage --tolerance exits 2"

echo "== append battery smoke to the committed benchmark history =="
# deltas vs the committed baseline, before it is overwritten below
"$CLI" trends "$report" --history BENCH_history.jsonl \
  --baseline BENCH_baseline.json

echo "== regenerate BENCH_baseline.json =="
"$BENCH" --experiments-only --seq --report BENCH_baseline.json > /dev/null
"$CLI" report BENCH_baseline.json

echo "CI OK"
