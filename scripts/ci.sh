#!/usr/bin/env bash
# Tier-1 verification plus the observability battery smoke:
#   - dune build && dune runtest
#   - battery run with --report/--trace, schema validation of both
#   - telemetry must not perturb battery stdout
#   - --domains garbage must exit 2 on both entry points
# Regenerates BENCH_baseline.json at the repo root as a side effect.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== unit tests =="
dune runtest

BENCH=_build/default/bench/main.exe
CLI=_build/default/bin/tussle_cli.exe
TMP="${TMPDIR:-/tmp}"
report="$TMP/tussle-report.json"
trace="$TMP/tussle-trace.json"

echo "== battery smoke (report + trace) =="
"$BENCH" --experiments-only --seq --report "$report" --trace "$trace" \
  > "$TMP/tussle-battery-obs.out"
"$CLI" report "$report"
# structural JSON validation of the trace is covered by test_obs; here
# just check the file materialized with the expected envelope
grep -q '"traceEvents"' "$trace"
echo "trace written: $(wc -c < "$trace") bytes"

echo "== telemetry does not perturb stdout =="
"$BENCH" --experiments-only --seq > "$TMP/tussle-battery-plain.out"
"$BENCH" --experiments-only --seq --trace "$trace" > "$TMP/tussle-battery-traced.out"
cmp "$TMP/tussle-battery-plain.out" "$TMP/tussle-battery-traced.out"
echo "battery stdout byte-identical with tracing enabled"

echo "== --domains rejects garbage with exit 2 =="
for cmd in "$BENCH --experiments-only" "$CLI experiments"; do
  for bad in nope 0 -3; do
    set +e
    # --domains=X form: cmdliner would otherwise read a bare "-3" as an
    # unknown option; bench/main parses both forms the same way
    $cmd --domains="$bad" >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 2 ]; then
      echo "FAIL: '$cmd --domains=$bad' exited $code, expected 2" >&2
      exit 1
    fi
  done
done
echo "both entry points exit 2 on bad --domains"

echo "== regenerate BENCH_baseline.json =="
"$BENCH" --experiments-only --seq --report BENCH_baseline.json > /dev/null
"$CLI" report BENCH_baseline.json

echo "CI OK"
