(* Tests for tussle.obs: JSON round-trips, histogram bucket pins,
   counter/gauge merging across domains, span nesting and ring
   overwrite, Chrome trace / battery report well-formedness, and the
   guard that telemetry never perturbs battery output. *)

module Json = Tussle_obs.Json
module Metrics = Tussle_obs.Metrics
module Trace = Tussle_obs.Trace
module Flight = Tussle_obs.Flight
module Report = Tussle_obs.Report
module Experiment = Tussle_experiments.Experiment
module Registry = Tussle_experiments.Registry
module Pool = Tussle_prelude.Pool

let obs_off () =
  Metrics.disable ();
  Trace.disable ();
  Metrics.reset ();
  Trace.reset ()

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.List [] ]);
        ("o", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  List.iter
    (fun minify ->
      match Json.parse (Json.to_string ~minify v) with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error msg -> Alcotest.fail msg)
    [ true; false ]

let test_json_parse_basics () =
  (match Json.parse "{\"a\": [1, 2.5, \"\\u0041\", null]}" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "A"; Json.Null ]) ])
    -> ()
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Json.to_string other)
  | Error msg -> Alcotest.fail msg);
  (match Json.parse "[1] garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Json.parse "{\"a\":}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad object accepted");
  (* non-finite floats serialize as null, keeping output valid JSON *)
  match Json.parse (Json.to_string (Json.Float infinity)) with
  | Ok Json.Null -> ()
  | Ok other -> Alcotest.failf "inf became %s" (Json.to_string other)
  | Error msg -> Alcotest.fail msg

(* ---------- histogram buckets ---------- *)

let test_bucket_boundaries () =
  let check v expected =
    Alcotest.(check int)
      (Printf.sprintf "bucket_index %g" v)
      expected (Metrics.bucket_index v)
  in
  (* bucket 0 is [0, 1e-9); bucket i >= 1 is [1e-9*2^(i-1), 1e-9*2^i) *)
  check 0.0 0;
  check (-1.0) 0;
  check Float.nan 0;
  check 0.5e-9 0;
  check 1e-9 1;
  check 1.5e-9 1;
  check 2e-9 2;
  check (2e-9 -. 1e-22) 1;
  check 4e-9 3;
  check 1.0 30;
  check 1e30 (Metrics.bucket_count - 1);
  Alcotest.(check (float 1e-24)) "upper 0" 1e-9 (Metrics.bucket_upper 0);
  Alcotest.(check (float 1e-24)) "upper 1" 2e-9 (Metrics.bucket_upper 1);
  Alcotest.(check (float 1e-15)) "upper 30"
    (1e-9 *. 1073741824.0)
    (Metrics.bucket_upper 30);
  (* every sample lands strictly below its bucket's upper bound and at
     or above the previous bucket's *)
  List.iter
    (fun v ->
      let b = Metrics.bucket_index v in
      Alcotest.(check bool) "below upper" true (v < Metrics.bucket_upper b);
      if b > 0 then
        Alcotest.(check bool) "at or above lower" true
          (v >= Metrics.bucket_upper (b - 1)))
    [ 1e-10; 1e-9; 3.7e-9; 1e-6; 0.25; 17.0 ]

(* ---------- counters and gauges across domains ---------- *)

let test_counter_merge () =
  obs_off ();
  Metrics.enable ();
  let c = Metrics.counter "test.merge_counter" in
  let n_domains = 4 and m = 1000 in
  let spawned =
    Array.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to m do
              Metrics.incr c
            done))
  in
  for _ = 1 to m do
    Metrics.incr c
  done;
  Array.iter Domain.join spawned;
  (match List.assoc_opt "test.merge_counter" (Metrics.snapshot ()) with
  | Some (Metrics.Count total) ->
    Alcotest.(check int) "all increments merged" ((n_domains + 1) * m) total
  | _ -> Alcotest.fail "counter missing from snapshot");
  (* local_count sees only the calling domain's share *)
  Alcotest.(check int) "local share" m (Metrics.local_count c);
  obs_off ()

let test_gauge_merge_and_reset () =
  obs_off ();
  Metrics.enable ();
  let g = Metrics.gauge "test.merge_gauge" in
  Metrics.set g 3.0;
  let d = Domain.spawn (fun () -> Metrics.set g 7.0; Metrics.set g 5.0) in
  Domain.join d;
  (match List.assoc_opt "test.merge_gauge" (Metrics.snapshot ()) with
  | Some (Metrics.Level { max_; sets; _ }) ->
    Alcotest.(check (float 0.0)) "max across domains" 7.0 max_;
    Alcotest.(check int) "sets summed" 3 sets
  | _ -> Alcotest.fail "gauge missing from snapshot");
  Metrics.reset ();
  (match List.assoc_opt "test.merge_gauge" (Metrics.snapshot ()) with
  | Some (Metrics.Level { sets; _ }) -> Alcotest.(check int) "reset" 0 sets
  | _ -> Alcotest.fail "gauge missing after reset");
  obs_off ()

let test_disabled_is_inert () =
  obs_off ();
  let c = Metrics.counter "test.disabled_counter" in
  Metrics.incr c;
  Metrics.add c 100;
  (match List.assoc_opt "test.disabled_counter" (Metrics.snapshot ()) with
  | Some (Metrics.Count n) -> Alcotest.(check int) "no increments recorded" 0 n
  | _ -> Alcotest.fail "counter missing");
  Trace.with_span "test.disabled_span" (fun () -> ());
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.events ()))

let test_histogram_observe () =
  obs_off ();
  Metrics.enable ();
  let h = Metrics.histogram "test.hist" in
  Metrics.observe h 1e-9;
  Metrics.observe h 1.5e-9;
  Metrics.observe h 0.25;
  (match List.assoc_opt "test.hist" (Metrics.snapshot ()) with
  | Some (Metrics.Dist { count; sum; buckets; p50; p90; p99 }) ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-12)) "sum" (0.25 +. 2.5e-9) sum;
    Alcotest.(check (list (pair int int)))
      "buckets" [ (1, 2); (Metrics.bucket_index 0.25, 1) ] buckets;
    (* 3 samples: p50 falls in the first bucket (2 of 3 samples),
       p90/p99 in the bucket holding the 0.25 sample *)
    Alcotest.(check (float 1e-24)) "p50" (Metrics.bucket_upper 1) p50;
    Alcotest.(check (float 1e-12)) "p90"
      (Metrics.bucket_upper (Metrics.bucket_index 0.25)) p90;
    Alcotest.(check (float 1e-12)) "p99"
      (Metrics.bucket_upper (Metrics.bucket_index 0.25)) p99
  | _ -> Alcotest.fail "histogram missing");
  obs_off ()

(* ---------- spans ---------- *)

let test_span_nesting () =
  obs_off ();
  Trace.enable ();
  Trace.with_span ~cat:"t" "outer" (fun () ->
      Trace.with_span ~cat:"t" "inner" (fun () -> ignore (Sys.opaque_identity 1)));
  (match Trace.events () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer first" "outer" outer.Trace.name;
    Alcotest.(check string) "inner second" "inner" inner.Trace.name;
    Alcotest.(check bool) "inner starts after outer" true
      (inner.Trace.ts_ns >= outer.Trace.ts_ns);
    Alcotest.(check bool) "inner ends before outer" true
      (Int64.add inner.Trace.ts_ns inner.Trace.dur_ns
       <= Int64.add outer.Trace.ts_ns outer.Trace.dur_ns)
  | evs -> Alcotest.failf "expected 2 spans, got %d" (List.length evs));
  obs_off ()

let test_span_ring_overwrite () =
  obs_off ();
  Trace.enable ~capacity:4 ();
  (* a fresh domain gets a fresh ring at the current capacity *)
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 10 do
          Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
        done)
  in
  Domain.join d;
  Alcotest.(check int) "ring keeps newest 4" 4 (List.length (Trace.events ()));
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped ());
  obs_off ()

let test_chrome_trace_json () =
  obs_off ();
  Trace.enable ();
  Trace.with_span ~cat:"c" ~args:[ ("k", "v") ] "spanned" (fun () -> ());
  let rendered = Json.to_string (Trace.to_chrome ()) in
  (match Json.parse rendered with
  | Error msg -> Alcotest.fail msg
  | Ok json -> (
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some [ ev ] ->
      let field name = Option.bind (Json.member name ev) Json.to_str in
      Alcotest.(check (option string)) "name" (Some "spanned") (field "name");
      Alcotest.(check (option string)) "ph" (Some "X") (field "ph");
      Alcotest.(check bool) "has ts" true
        (Option.is_some (Option.bind (Json.member "ts" ev) Json.to_float));
      Alcotest.(check bool) "has dur" true
        (Option.is_some (Option.bind (Json.member "dur" ev) Json.to_float));
      Alcotest.(check (option string)) "args kept" (Some "v")
        (Option.bind (Json.member "args" ev) (Json.member "k")
        |> Fun.flip Option.bind Json.to_str)
    | Some evs -> Alcotest.failf "expected 1 trace event, got %d" (List.length evs)
    | None -> Alcotest.fail "traceEvents missing"));
  obs_off ()

(* ---------- flight recorder ---------- *)

let flight_off () =
  Flight.disable ();
  Flight.reset ()

let test_flight_disabled_inert () =
  flight_off ();
  Alcotest.(check bool) "off by default here" false (Flight.enabled ());
  Flight.emit ~sim_t:1.0 ~flow:0 ~node:0 ~peer:1 ~detail:"x" ~value:2.0 "hop";
  Alcotest.(check int) "nothing retained" 0 (List.length (Flight.events ()));
  Alcotest.(check int) "nothing overwritten" 0 (Flight.dropped ())

let test_flight_ring_overwrite () =
  flight_off ();
  Flight.enable ~capacity:4 ();
  Flight.reset ();
  (* a fresh domain gets a fresh ring at the just-set capacity (the
     calling domain's ring, if any, was registered at its old size) *)
  let d =
    Domain.spawn (fun () ->
        for i = 0 to 9 do
          Flight.emit ~sim_t:(float_of_int i) ~flow:i ~node:i ~peer:(-1)
            ~detail:"" ~value:0.0 "e"
        done)
  in
  Domain.join d;
  let evs = Flight.events () in
  Alcotest.(check int) "capacity retained" 4 (List.length evs);
  Alcotest.(check (list int))
    "newest events win" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Flight.flow) evs);
  Alcotest.(check int) "overwritten counted" 6 (Flight.dropped ());
  flight_off ()

let test_flight_flow_ids () =
  flight_off ();
  Flight.enable ();
  Flight.reset ();
  Alcotest.(check int) "control flow is -1" (-1) Flight.control_flow;
  Alcotest.(check int) "first transfer id" (-2) (Flight.new_flow ());
  Alcotest.(check int) "second transfer id" (-3) (Flight.new_flow ());
  Flight.reset ();
  Alcotest.(check int) "reset restarts ids" (-2) (Flight.new_flow ());
  flight_off ()

(* ---------- battery report ---------- *)

let sample_report () =
  let exp id status =
    {
      Report.id;
      title = "title of " ^ id;
      status;
      detail = (if status = "failed" then "kaboom" else "");
      wall_s = 0.25;
      events_executed = 1000;
      allocated_bytes = 4096.0;
    }
  in
  Report.make ~label:"test-battery"
    ~pool:
      {
        Report.workers = 2;
        tasks = [| 2; 1 |];
        busy_s = [| 0.5; 0.25 |];
        pool_wall_s = 0.6;
      }
    ~metrics:[ ("x.count", Metrics.Count 3) ]
    ~domains:2 ~wall_s:0.75
    [ exp "E1" "held"; exp "E2" "violated"; exp "E3" "failed" ]

let test_report_json_valid () =
  let r = sample_report () in
  let rendered = Json.to_string (Report.to_json r) in
  match Json.parse rendered with
  | Error msg -> Alcotest.fail msg
  | Ok json -> (
    (match Report.validate json with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "emitted report fails validation: %s" msg);
    match Option.bind (Json.member "summary" json) (Json.member "held") with
    | Some (Json.Int 1) -> ()
    | _ -> Alcotest.fail "summary.held wrong")

let test_report_validate_rejects () =
  let r = sample_report () in
  let json = Report.to_json r in
  (* break it in representative ways *)
  let drop name =
    match json with
    | Json.Obj fields -> Json.Obj (List.remove_assoc name fields)
    | _ -> assert false
  in
  List.iter
    (fun (label, bad) ->
      match Report.validate bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "validate accepted %s" label)
    [
      ("missing schema", drop "schema");
      ("missing experiments", drop "experiments");
      ("missing summary", drop "summary");
      ("not an object", Json.List []);
      ( "wrong schema tag",
        match json with
        | Json.Obj fields ->
          Json.Obj (("schema", Json.Str "other/9") :: List.remove_assoc "schema" fields)
        | _ -> assert false );
    ]

let test_report_summary_and_imbalance () =
  let r = sample_report () in
  let s = Report.summary r in
  let contains haystack needle =
    let n = String.length haystack and m = String.length needle in
    let rec search i =
      i + m <= n && (String.sub haystack i m = needle || search (i + 1))
    in
    search 0
  in
  Alcotest.(check bool) "lists experiments" true (contains s "E2");
  Alcotest.(check bool) "totals line" true
    (contains s "3 experiments: 1 held, 1 violated, 1 failed");
  Alcotest.(check bool) "pool line" true (contains s "imbalance");
  Alcotest.(check (float 1e-9)) "imbalance" 0.5
    (Report.imbalance
       { Report.workers = 2; tasks = [| 1; 1 |]; busy_s = [| 0.5; 0.25 |];
         pool_wall_s = 1.0 })

(* ---------- determinism guard ---------- *)

let fast id =
  match Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "missing %s" id

let test_telemetry_does_not_perturb () =
  obs_off ();
  let batch =
    List.map fast [ "E4"; "E6"; "E7"; "E8"; "E19"; "E23"; "E25"; "E26" ]
  in
  let render outcomes =
    String.concat "\n" (List.map (fun o -> o.Experiment.output) outcomes)
  in
  let baseline = render (Registry.run_list ~domains:1 batch) in
  Metrics.enable ();
  Trace.enable ();
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "instrumented output identical (%d domains)" domains)
        baseline
        (render (Registry.run_list ~domains batch)))
    [ 1; 2; 4 ];
  (* and the instrumented run did actually record telemetry *)
  (match List.assoc_opt "experiments.run" (Metrics.snapshot ()) with
  | Some (Metrics.Count n) ->
    Alcotest.(check int) "experiments counted" (3 * List.length batch) n
  | _ -> Alcotest.fail "experiments.run counter missing");
  Alcotest.(check bool) "spans recorded" true (Trace.events () <> []);
  (match Pool.last_stats () with
  | Some s ->
    Alcotest.(check int) "pool tasks accounted" (List.length batch)
      (Array.fold_left ( + ) 0 s.Pool.tasks)
  | None -> Alcotest.fail "pool stats missing");
  obs_off ()

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "counter merge across domains" `Quick
            test_counter_merge;
          Alcotest.test_case "gauge merge and reset" `Quick
            test_gauge_merge_and_reset;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring overwrite" `Quick test_span_ring_overwrite;
          Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
        ] );
      ( "flight",
        [
          Alcotest.test_case "disabled is inert" `Quick
            test_flight_disabled_inert;
          Alcotest.test_case "ring overwrite keeps newest" `Quick
            test_flight_ring_overwrite;
          Alcotest.test_case "flow ids and reset" `Quick test_flight_flow_ids;
        ] );
      ( "report",
        [
          Alcotest.test_case "emitted json validates" `Quick
            test_report_json_valid;
          Alcotest.test_case "validate rejects corruption" `Quick
            test_report_validate_rejects;
          Alcotest.test_case "summary and imbalance" `Quick
            test_report_summary_and_imbalance;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "telemetry never perturbs battery" `Slow
            test_telemetry_does_not_perturb;
        ] );
    ]
