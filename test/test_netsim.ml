(* Tests for tussle.netsim: engine, packet, link, topology, middlebox,
   net, traffic. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Link = Tussle_netsim.Link
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Engine ---------- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e 2.0 (fun _ -> log := 2 :: !log));
  ignore (Engine.schedule e 1.0 (fun _ -> log := 1 :: !log));
  ignore (Engine.schedule e 3.0 (fun _ -> log := 3 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last" 3.0 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e 1.0 (fun _ -> log := "a" :: !log));
  ignore (Engine.schedule e 1.0 (fun _ -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "fifo" [ "a"; "b" ] (List.rev !log)

let test_engine_cascade () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 5 then ignore (Engine.schedule_after engine 1.0 tick)
  in
  ignore (Engine.schedule e 0.0 tick);
  Engine.run e;
  Alcotest.(check int) "cascaded" 5 !count;
  check_float "final time" 4.0 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e 1.0 (fun _ -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule e 5.0 (fun _ -> ()));
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time in the past")
    (fun () -> ignore (Engine.schedule e 1.0 (fun _ -> ())))

let test_engine_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e 1.0 (fun _ -> log := 1 :: !log));
  ignore (Engine.schedule e 10.0 (fun _ -> log := 10 :: !log));
  Engine.run ~until:5.0 e;
  Alcotest.(check (list int)) "only early" [ 1 ] (List.rev !log);
  check_float "clock at horizon" 5.0 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e)

let test_engine_until_drained () =
  (* Regression: when the queue emptied before the horizon, the clock
     used to stay at the last event time instead of advancing to
     [until], inconsistently with the beyond-horizon branch. *)
  let e = Engine.create () in
  ignore (Engine.schedule e 1.0 (fun _ -> ()));
  Engine.run ~until:5.0 e;
  check_float "clock at horizon after drain" 5.0 (Engine.now e);
  let e2 = Engine.create () in
  Engine.run ~until:3.0 e2;
  check_float "clock at horizon on empty queue" 3.0 (Engine.now e2)

let test_engine_until_never_backwards () =
  let e = Engine.create () in
  ignore (Engine.schedule e 4.0 (fun _ -> ()));
  Engine.run e;
  Engine.run ~until:2.0 e;
  check_float "earlier horizon is a no-op" 4.0 (Engine.now e)

let test_engine_cancel_reaped () =
  (* Regression: ids cancelled for events that never pop used to stay in
     the cancellation table forever. *)
  let e = Engine.create () in
  ignore (Engine.schedule e 1.0 (fun _ -> ()));
  let far = Engine.schedule e 10.0 (fun _ -> Alcotest.fail "cancelled event fired") in
  Engine.cancel e far;
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "still pending beyond horizon" 1 (Engine.pending e);
  Alcotest.(check int) "cancellation outstanding" 1 (Engine.cancelled_backlog e);
  Engine.run e;
  Alcotest.(check int) "queue drained" 0 (Engine.pending e);
  Alcotest.(check int) "table reaped on drain" 0 (Engine.cancelled_backlog e);
  (* stale cancel of an already-fired id is reaped too *)
  let id = Engine.schedule e 20.0 (fun _ -> ()) in
  Engine.run e;
  Engine.cancel e id;
  Alcotest.(check bool) "empty step reaps" false (Engine.step e);
  Alcotest.(check int) "stale id reaped" 0 (Engine.cancelled_backlog e)

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  ignore (Engine.schedule e 1.0 (fun _ -> ()));
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check int) "executed" 1 (Engine.events_executed e)

let test_engine_queue_high_water () =
  let e = Engine.create () in
  Alcotest.(check int) "fresh engine" 0 (Engine.queue_depth_high_water e);
  ignore (Engine.schedule e 1.0 (fun _ -> ()));
  ignore (Engine.schedule e 2.0 (fun _ -> ()));
  ignore (Engine.schedule e 3.0 (fun _ -> ()));
  Alcotest.(check int) "peak is queue depth" 3 (Engine.queue_depth_high_water e);
  Engine.run e;
  Alcotest.(check int) "draining keeps the peak" 3
    (Engine.queue_depth_high_water e);
  (* events scheduled from inside events raise the mark only when the
     live depth actually exceeds it *)
  ignore
    (Engine.schedule e 10.0 (fun engine ->
         for i = 1 to 5 do
           ignore (Engine.schedule_after engine (float_of_int i) (fun _ -> ()))
         done));
  Engine.run e;
  Alcotest.(check int) "cascade sets new peak" 5
    (Engine.queue_depth_high_water e)

let test_engine_cancellations_reaped_counter () =
  let e = Engine.create () in
  Alcotest.(check int) "fresh engine" 0 (Engine.cancellations_reaped e);
  (* reaped at pop time: the cancelled event is skipped *)
  let skipped = Engine.schedule e 1.0 (fun _ -> Alcotest.fail "fired") in
  ignore (Engine.schedule e 2.0 (fun _ -> ()));
  Engine.cancel e skipped;
  Engine.run e;
  Alcotest.(check int) "skip counted" 1 (Engine.cancellations_reaped e);
  Alcotest.(check int) "one event ran" 1 (Engine.events_executed e);
  (* reaped at drain time: a stale id for an already-fired event *)
  let id = Engine.schedule e 10.0 (fun _ -> ()) in
  Engine.run e;
  Engine.cancel e id;
  Engine.run e;
  Alcotest.(check int) "stale id counted" 2 (Engine.cancellations_reaped e);
  Alcotest.(check int) "backlog empty" 0 (Engine.cancelled_backlog e);
  (* the counter is monotone: reaping never decrements it *)
  Alcotest.(check bool) "monotone" true
    (Engine.cancellations_reaped e >= 2)

(* ---------- Packet ---------- *)

let test_packet_defaults () =
  let p = Packet.make ~id:0 ~src:1 ~dst:2 ~created:0.0 () in
  Alcotest.(check int) "web port" 80 p.Packet.port;
  Alcotest.(check int) "visible port" 80 (Packet.visible_port p);
  Alcotest.(check bool) "app visible" true (Packet.visible_app p = Some Packet.Web)

let test_packet_tunneled_hides () =
  let p =
    Packet.make ~app:Packet.File_sharing ~tunneled:true ~id:0 ~src:1 ~dst:2
      ~created:0.0 ()
  in
  Alcotest.(check int) "masked port" 443 (Packet.visible_port p);
  Alcotest.(check bool) "app hidden" true (Packet.visible_app p = None)

let test_packet_encrypted_hides_app () =
  let p =
    Packet.make ~app:Packet.Voip ~encrypted:true ~id:0 ~src:1 ~dst:2
      ~created:0.0 ()
  in
  Alcotest.(check bool) "app hidden" true (Packet.visible_app p = None);
  Alcotest.(check int) "port still visible" 5060 (Packet.visible_port p)

let test_packet_path () =
  let p = Packet.make ~id:0 ~src:0 ~dst:3 ~created:0.0 () in
  Packet.record_hop p 0;
  Packet.record_hop p 1;
  Packet.record_hop p 3;
  Alcotest.(check (list int)) "path order" [ 0; 1; 3 ] (Packet.path p)

let test_packet_bad_size () =
  Alcotest.check_raises "size" (Invalid_argument "Packet.make: non-positive size")
    (fun () ->
      ignore (Packet.make ~size_bytes:0 ~id:0 ~src:0 ~dst:1 ~created:0.0 ()))

(* ---------- Link ---------- *)

let test_link_delay () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  (* 1000 bytes = 8000 bits = 1 second at 8 kb/s *)
  check_float "tx delay" 1.0 (Link.transmission_delay l 1000);
  match Link.try_enqueue l ~now:0.0 1000 with
  | `Sent arrival -> check_float "arrival" 1.01 arrival
  | `Dropped | `Faulted _ -> Alcotest.fail "dropped"

let test_link_queueing () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  ignore (Link.try_enqueue l ~now:0.0 1000);
  (* second packet waits for the first to serialize *)
  match Link.try_enqueue l ~now:0.0 1000 with
  | `Sent arrival -> check_float "queued arrival" 2.01 arrival
  | `Dropped | `Faulted _ -> Alcotest.fail "dropped"

let test_link_drop_when_full () =
  let l = Link.make ~queue_capacity:2 ~latency:0.01 ~bandwidth_bps:8000.0 () in
  ignore (Link.try_enqueue l ~now:0.0 1000);
  ignore (Link.try_enqueue l ~now:0.0 1000);
  (match Link.try_enqueue l ~now:0.0 1000 with
  | `Dropped -> ()
  | `Sent _ | `Faulted _ -> Alcotest.fail "should drop");
  Alcotest.(check int) "dropped count" 1 (Link.packets_dropped l);
  Alcotest.(check int) "sent count" 2 (Link.packets_sent l)

let test_link_drains () =
  let l = Link.make ~queue_capacity:2 ~latency:0.01 ~bandwidth_bps:8000.0 () in
  ignore (Link.try_enqueue l ~now:0.0 1000);
  ignore (Link.try_enqueue l ~now:0.0 1000);
  Alcotest.(check int) "queued now" 2 (Link.queued l ~now:0.5);
  (* after both serialize (2s), the queue is empty again *)
  Alcotest.(check int) "drained" 0 (Link.queued l ~now:2.5);
  match Link.try_enqueue l ~now:2.5 1000 with
  | `Sent _ -> ()
  | `Dropped | `Faulted _ -> Alcotest.fail "should accept after drain"

let test_link_utilization () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  ignore (Link.try_enqueue l ~now:0.0 1000);
  let u = Link.utilization l ~now:2.0 in
  check_float "half busy" 0.5 u

let test_link_decreasing_now_raises () =
  (* regression: a decreasing [now] used to silently corrupt the
     busy-until accounting; the contract is now enforced *)
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  ignore (Link.try_enqueue l ~now:1.0 1000);
  Alcotest.check_raises "decreasing now"
    (Invalid_argument
       "Link.try_enqueue: decreasing now (calls must be in non-decreasing \
        time order)") (fun () -> ignore (Link.try_enqueue l ~now:0.5 1000));
  (* equal time is still fine (FIFO ties are legitimate) *)
  match Link.try_enqueue l ~now:1.0 1000 with
  | `Sent _ -> ()
  | `Dropped | `Faulted _ -> Alcotest.fail "equal now must be accepted"

let test_link_down_up () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  Alcotest.(check bool) "starts up" true (Link.is_up l);
  Link.set_up l false;
  (match Link.try_enqueue l ~now:0.0 1000 with
  | `Faulted Link.Down -> ()
  | `Sent _ | `Dropped | `Faulted _ -> Alcotest.fail "down link must fault");
  Alcotest.(check int) "fault drop counted" 1 (Link.fault_drops l);
  Alcotest.(check int) "not a queue drop" 0 (Link.packets_dropped l);
  Link.set_up l true;
  match Link.try_enqueue l ~now:1.0 1000 with
  | `Sent _ -> ()
  | `Dropped | `Faulted _ -> Alcotest.fail "restored link must send"

let test_link_loss_and_corrupt () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  Link.set_fault_rng l (Rng.create 7);
  Link.set_loss_prob l 1.0;
  (match Link.try_enqueue l ~now:0.0 1000 with
  | `Faulted Link.Loss -> ()
  | `Sent _ | `Dropped | `Faulted _ -> Alcotest.fail "p=1 loss must fault");
  Alcotest.(check int) "loss counted" 1 (Link.fault_drops l);
  (* loss does not consume wire capacity *)
  Alcotest.(check int) "nothing queued" 0 (Link.queued l ~now:0.0);
  Link.set_loss_prob l 0.0;
  Link.set_corrupt_prob l 1.0;
  (match Link.try_enqueue l ~now:0.0 1000 with
  | `Faulted Link.Corrupt -> ()
  | `Sent _ | `Dropped | `Faulted _ -> Alcotest.fail "p=1 corrupt must fault");
  Alcotest.(check int) "corruption counted" 1 (Link.corrupted_count l);
  (* corruption happens after transmission: capacity was consumed *)
  Alcotest.(check int) "wire occupied" 1 (Link.queued l ~now:0.0)

let test_link_latency_spike () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  Link.set_extra_latency l 0.25;
  (match Link.try_enqueue l ~now:0.0 1000 with
  | `Sent arrival -> check_float "spiked arrival" 1.26 arrival
  | `Dropped | `Faulted _ -> Alcotest.fail "should send");
  Link.set_extra_latency l 0.0;
  match Link.try_enqueue l ~now:0.0 1000 with
  | `Sent arrival -> check_float "restored arrival" 2.01 arrival
  | `Dropped | `Faulted _ -> Alcotest.fail "should send"

let test_link_fault_validation () =
  let l = Link.make ~latency:0.01 ~bandwidth_bps:8000.0 () in
  Alcotest.check_raises "prob without rng"
    (Invalid_argument "Link.set_loss_prob: set_fault_rng first") (fun () ->
      Link.set_loss_prob l 0.5);
  Link.set_fault_rng l (Rng.create 1);
  Alcotest.check_raises "prob out of range"
    (Invalid_argument "Link.set_loss_prob: probability outside [0,1]")
    (fun () -> Link.set_loss_prob l 1.5);
  Alcotest.check_raises "negative spike"
    (Invalid_argument "Link.set_extra_latency: negative") (fun () ->
      Link.set_extra_latency l (-0.1))

(* ---------- Topology ---------- *)

let test_topology_line () =
  let g = Topology.line 5 in
  Alcotest.(check int) "nodes" 5 (Graph.node_count g);
  Alcotest.(check int) "edges" 8 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_topology_ring () =
  let g = Topology.ring 5 in
  Alcotest.(check int) "edges" 10 (Graph.edge_count g)

let test_topology_star () =
  let g = Topology.star 6 in
  Alcotest.(check int) "hub degree" 5 (List.length (Graph.succ g 0));
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_topology_grid () =
  let g = Topology.grid 3 4 in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  (* 3*3 horizontal + 2*4 vertical = 17 undirected = 34 directed *)
  Alcotest.(check int) "edges" 34 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_topology_tree () =
  let g = Topology.tree ~arity:2 ~depth:3 () in
  Alcotest.(check int) "nodes" 15 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_topology_barabasi_albert () =
  let rng = Rng.create 4 in
  let g = Topology.barabasi_albert rng 50 2 in
  Alcotest.(check int) "nodes" 50 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_topology_erdos_renyi_dense () =
  let rng = Rng.create 5 in
  let g = Topology.erdos_renyi rng 20 1.0 in
  (* p=1: complete graph *)
  Alcotest.(check int) "edges" (20 * 19) (Graph.edge_count g)

let test_topology_two_tier () =
  let rng = Rng.create 6 in
  let tt =
    Topology.two_tier rng ~transits:3 ~accesses:4 ~hosts_per_access:2
      ~multihoming:2
  in
  Alcotest.(check int) "transits" 3 (List.length tt.Topology.transits);
  Alcotest.(check int) "accesses" 4 (List.length tt.Topology.accesses);
  Alcotest.(check int) "hosts" 8 (List.length tt.Topology.hosts);
  Alcotest.(check bool) "connected" true (Graph.is_connected tt.Topology.graph);
  List.iter
    (fun h ->
      let a = tt.Topology.access_of_host h in
      Alcotest.(check bool) "access valid" true (List.mem a tt.Topology.accesses))
    tt.Topology.hosts;
  List.iter
    (fun a ->
      Alcotest.(check int) "multihomed" 2
        (List.length (tt.Topology.transit_of_access a)))
    tt.Topology.accesses

let test_topology_two_tier_relationships () =
  let rng = Rng.create 7 in
  let tt =
    Topology.two_tier rng ~transits:2 ~accesses:2 ~hosts_per_access:1
      ~multihoming:1
  in
  (* transit-transit edges are peer *)
  (match Graph.find_edge tt.Topology.graph 0 1 with
  | Some (_, Topology.Peer_with) -> ()
  | Some _ -> Alcotest.fail "expected peer edge"
  | None -> Alcotest.fail "missing backbone edge");
  (* access -> transit is customer_of *)
  let a = List.hd tt.Topology.accesses in
  let t = List.hd (tt.Topology.transit_of_access a) in
  match Graph.find_edge tt.Topology.graph a t with
  | Some (_, Topology.Customer_of) -> ()
  | Some _ -> Alcotest.fail "expected customer edge"
  | None -> Alcotest.fail "missing access-transit edge"

(* ---------- Middlebox ---------- *)

let mk_packet ?(app = Packet.Web) ?(encrypted = false) ?(tunneled = false)
    ?(qos = Packet.Best_effort) ?source_route id =
  Packet.make ~app ~encrypted ~tunneled ~qos ?source_route ~id ~src:0 ~dst:9
    ~created:0.0 ()

let test_middlebox_port_filter () =
  let mb = Middlebox.port_filter ~blocked:[ 6881 ] () in
  let p = mk_packet ~app:Packet.File_sharing 0 in
  Alcotest.(check bool) "drops" true (Middlebox.decide mb p = Middlebox.Drop);
  let masked = mk_packet ~app:Packet.File_sharing ~tunneled:true 1 in
  Alcotest.(check bool) "tunnel defeats" true
    (Middlebox.decide mb masked = Middlebox.Forward);
  Alcotest.(check int) "counters" 1 (Middlebox.dropped mb);
  Alcotest.(check int) "inspected" 2 (Middlebox.inspected mb)

let test_middlebox_app_filter () =
  let mb = Middlebox.app_filter ~blocked:[ Packet.File_sharing ] () in
  let plain = mk_packet ~app:Packet.File_sharing 0 in
  Alcotest.(check bool) "drops plain" true (Middlebox.decide mb plain = Middlebox.Drop);
  (* DPI sees through a plain tunnel?  No: visible_app is None when
     tunneled, so the app filter cannot match. *)
  let tunneled = mk_packet ~app:Packet.File_sharing ~tunneled:true 1 in
  Alcotest.(check bool) "tunnel hides app" true
    (Middlebox.decide mb tunneled = Middlebox.Forward);
  let enc = mk_packet ~app:Packet.File_sharing ~encrypted:true 2 in
  Alcotest.(check bool) "encryption hides app" true
    (Middlebox.decide mb enc = Middlebox.Forward)

let test_middlebox_trust_firewall () =
  let mb = Middlebox.trust_firewall ~admits:(fun ~src ~dst:_ -> src <> 0) () in
  Alcotest.(check bool) "blocks untrusted" true
    (Middlebox.decide mb (mk_packet 0) = Middlebox.Drop);
  let p = Packet.make ~id:1 ~src:5 ~dst:9 ~created:0.0 () in
  Alcotest.(check bool) "admits trusted" true
    (Middlebox.decide mb p = Middlebox.Forward)

let test_middlebox_wiretap () =
  let mb = Middlebox.wiretap () in
  Alcotest.(check bool) "taps" true (Middlebox.decide mb (mk_packet 0) = Middlebox.Tap);
  Alcotest.(check bool) "covert" false (Middlebox.reveals_presence mb);
  Alcotest.(check int) "tap count" 1 (Middlebox.tapped mb)

let test_middlebox_qos_stripper () =
  let mb = Middlebox.qos_stripper ~honor:(fun _ -> false) () in
  let premium = mk_packet ~qos:Packet.Premium 0 in
  Alcotest.(check bool) "degrades" true
    (Middlebox.decide mb premium = Middlebox.Degrade);
  let be = mk_packet 1 in
  Alcotest.(check bool) "best effort untouched" true
    (Middlebox.decide mb be = Middlebox.Forward)

(* ---------- Net ---------- *)

(* static forwarding along a line 0-1-2-3 *)
let line_links n = Topology.to_links (Topology.line n)

let line_forwarding ~node ~target _p =
  if target > node then Some (node + 1)
  else if target < node then Some (node - 1)
  else None

let run_line_packet ?(middlebox : (int * Middlebox.t) option) ?source_route () =
  let net = Net.create (line_links 4) line_forwarding in
  (match middlebox with
  | Some (node, mb) -> Net.add_middlebox net node mb
  | None -> ());
  let engine = Engine.create () in
  let p = Packet.make ?source_route ~id:0 ~src:0 ~dst:3 ~created:0.0 () in
  Net.inject net engine p;
  Engine.run engine;
  (net, p)

let test_net_delivery () =
  let net, p = run_line_packet () in
  Alcotest.(check int) "delivered" 1 (Net.delivered_count net);
  Alcotest.(check (list int)) "route" [ 0; 1; 2; 3 ] (Packet.path p);
  match Net.outcomes net with
  | [ (_, Net.Delivered d) ] ->
    Alcotest.(check bool) "latency positive" true (d.latency > 0.0)
  | _ -> Alcotest.fail "expected one delivery"

let test_net_filter_drop () =
  let mb = Middlebox.port_filter ~blocked:[ 80 ] () in
  let net, _ = run_line_packet ~middlebox:(1, mb) () in
  Alcotest.(check int) "lost" 1 (Net.lost_count net);
  match Net.outcomes net with
  | [ (_, Net.Lost (Net.Filtered (name, node))) ] ->
    Alcotest.(check string) "who" "port-filter" name;
    Alcotest.(check int) "where" 1 node
  | _ -> Alcotest.fail "expected filtered loss"

let test_net_no_route () =
  let links = line_links 4 in
  let net = Net.create links (fun ~node:_ ~target:_ _ -> None) in
  let engine = Engine.create () in
  let p = Packet.make ~id:0 ~src:0 ~dst:3 ~created:0.0 () in
  Net.inject net engine p;
  Engine.run engine;
  match Net.outcomes net with
  | [ (_, Net.Lost Net.No_route) ] -> ()
  | _ -> Alcotest.fail "expected no-route loss"

let test_net_source_route_waypoint () =
  (* waypoint forces the packet out to node 2 then back to 1?  On a line
     from 0 to 3 a waypoint at 2 is on the path; use waypoint 3 with dst 1
     to force an overshoot instead. *)
  let net = Net.create (line_links 4) line_forwarding in
  let engine = Engine.create () in
  let p =
    Packet.make ~source_route:[ 3 ] ~id:0 ~src:0 ~dst:1 ~created:0.0 ()
  in
  Net.inject net engine p;
  Engine.run engine;
  Alcotest.(check int) "delivered" 1 (Net.delivered_count net);
  Alcotest.(check (list int)) "went via 3" [ 0; 1; 2; 3; 2; 1 ] (Packet.path p)

let test_net_ttl () =
  (* forwarding loop between 0 and 1 *)
  let g = Graph.create 2 in
  Graph.add_undirected g 0 1
    (Link.make ~latency:0.001 ~bandwidth_bps:1e9 ());
  let net =
    Net.create ~ttl:8 g (fun ~node ~target:_ _ -> Some (1 - node))
  in
  let engine = Engine.create () in
  (* dst 5 is never reached; TTL must kill it.  Use dst outside graph is
     invalid; use dst 1 but forwarding bounces: node 1 forwards to 0... *)
  let p = Packet.make ~id:0 ~src:0 ~dst:1 ~created:0.0 () in
  (* make node 1 bounce by source_route forcing an unreachable waypoint *)
  let p = { p with Packet.source_route = [ 0; 1; 0; 1; 0; 1; 0; 1; 0 ] } in
  Net.inject net engine p;
  Engine.run engine;
  match Net.outcomes net with
  | [ (_, Net.Lost Net.Ttl_exceeded) ] -> ()
  | [ (_, Net.Delivered _) ] -> Alcotest.fail "should not deliver"
  | _ -> Alcotest.fail "expected ttl loss"

let test_net_queue_loss () =
  (* one slow link, many simultaneous packets: some must drop *)
  let g = Graph.create 2 in
  Graph.add_edge g 0 1
    (Link.make ~queue_capacity:4 ~latency:0.001 ~bandwidth_bps:8000.0 ());
  let net = Net.create g (fun ~node ~target _ -> if node = 0 && target = 1 then Some 1 else None) in
  let engine = Engine.create () in
  for i = 0 to 9 do
    Net.inject net engine (Packet.make ~id:i ~src:0 ~dst:1 ~created:0.0 ())
  done;
  Engine.run engine;
  Alcotest.(check int) "completed" 10
    (Net.delivered_count net + Net.lost_count net);
  Alcotest.(check bool) "some dropped" true (Net.lost_count net > 0);
  Alcotest.(check bool) "some delivered" true (Net.delivered_count net >= 4);
  match Net.losses_by_reason net with
  | [ ("queue-full", n) ] -> Alcotest.(check bool) "reason count" true (n > 0)
  | _ -> Alcotest.fail "expected queue-full losses"

let test_net_degraded_flag () =
  let mb = Middlebox.qos_stripper ~honor:(fun _ -> false) () in
  let net = Net.create (line_links 4) line_forwarding in
  Net.add_middlebox net 1 mb;
  let engine = Engine.create () in
  let p =
    Packet.make ~qos:Packet.Premium ~id:0 ~src:0 ~dst:3 ~created:0.0 ()
  in
  Net.inject net engine p;
  Engine.run engine;
  match Net.outcomes net with
  | [ (_, Net.Delivered d) ] -> Alcotest.(check bool) "degraded" true d.degraded
  | _ -> Alcotest.fail "expected delivery"

let test_net_duplicate_id_rejected () =
  let net = Net.create (line_links 4) line_forwarding in
  let engine = Engine.create () in
  let p = Packet.make ~id:7 ~src:0 ~dst:3 ~created:0.0 () in
  Net.inject net engine p;
  Alcotest.check_raises "dup" (Invalid_argument "Net.inject: duplicate packet id in flight")
    (fun () ->
      Net.inject net engine (Packet.make ~id:7 ~src:0 ~dst:3 ~created:0.0 ()))

(* ---------- Traffic ---------- *)

let test_traffic_poisson_count () =
  let rng = Rng.create 8 in
  let gen = Traffic.create rng in
  let net = Net.create (line_links 4) line_forwarding in
  let engine = Engine.create () in
  Traffic.poisson_flow gen engine net ~rate:100.0 ~count:50
    ~make:(fun g ~created ->
      Traffic.next_packet g ~src:0 ~dst:3 ~created ());
  Engine.run engine;
  Alcotest.(check int) "all delivered" 50 (Net.delivered_count net)

let test_traffic_constant_spacing () =
  let rng = Rng.create 9 in
  let gen = Traffic.create rng in
  let net = Net.create (line_links 2) line_forwarding in
  let engine = Engine.create () in
  Traffic.constant_flow gen engine net ~interval:1.0 ~count:3
    ~make:(fun g ~created -> Traffic.next_packet g ~src:0 ~dst:1 ~created ());
  Engine.run engine;
  let created =
    List.map (fun (p, _) -> p.Packet.created) (Net.outcomes net)
  in
  Alcotest.(check (list (float 1e-9))) "spaced" [ 0.0; 1.0; 2.0 ]
    (List.sort compare created)

let test_traffic_fresh_ids () =
  let gen = Traffic.create (Rng.create 1) in
  Alcotest.(check int) "id0" 0 (Traffic.fresh_id gen);
  Alcotest.(check int) "id1" 1 (Traffic.fresh_id gen)


(* ---------- Congestion ---------- *)

module Congestion = Tussle_netsim.Congestion

let test_congestion_jain () =
  check_float "equal is fair" 1.0 (Congestion.jain_index [| 2.0; 2.0; 2.0 |]);
  Alcotest.(check bool) "skew unfair" true
    (Congestion.jain_index [| 10.0; 0.1; 0.1 |] < 0.5);
  check_float "all zero" 0.0 (Congestion.jain_index [| 0.0; 0.0 |])

let test_congestion_max_min () =
  let a = Congestion.max_min_allocation [| 5.0; 50.0; 50.0 |] 60.0 in
  check_float "small demand met" 5.0 a.(0);
  check_float "rest split" 27.5 a.(1);
  check_float "rest split 2" 27.5 a.(2);
  (* under-loaded: everyone gets their demand *)
  let b = Congestion.max_min_allocation [| 1.0; 2.0 |] 60.0 in
  check_float "demand met 1" 1.0 b.(0);
  check_float "demand met 2" 2.0 b.(1)

let test_congestion_all_honest () =
  let cfg = Congestion.default_config ~kinds:(Array.make 8 Congestion.Compliant) in
  let r = Congestion.run cfg Congestion.Fifo in
  Alcotest.(check bool) "fair" true (r.Congestion.jain > 0.95);
  Alcotest.(check bool) "utilized" true (r.Congestion.utilization > 0.6);
  Alcotest.(check bool) "not overdriven" true (r.Congestion.utilization <= 1.0 +. 1e-9)

let test_congestion_cheater_starves_fifo () =
  let kinds = Array.make 8 Congestion.Compliant in
  kinds.(0) <- Congestion.Aggressive;
  let cfg = Congestion.default_config ~kinds in
  let r = Congestion.run cfg Congestion.Fifo in
  Alcotest.(check bool) "cheater dominates" true
    (r.Congestion.mean_aggressive > 10.0 *. r.Congestion.mean_compliant)

let test_congestion_fq_protects () =
  let kinds = Array.make 8 Congestion.Compliant in
  kinds.(0) <- Congestion.Aggressive;
  let cfg = Congestion.default_config ~kinds in
  let fifo = Congestion.run cfg Congestion.Fifo in
  let fq = Congestion.run cfg Congestion.Fair_queueing in
  Alcotest.(check bool) "honest do better under fq" true
    (fq.Congestion.mean_compliant > 5.0 *. fifo.Congestion.mean_compliant);
  Alcotest.(check bool) "cheater capped vs fifo" true
    (fq.Congestion.mean_aggressive < fifo.Congestion.mean_aggressive)

let test_congestion_validation () =
  Alcotest.check_raises "no flows" (Invalid_argument "Congestion.run: no flows")
    (fun () ->
      ignore
        (Congestion.run (Congestion.default_config ~kinds:[||]) Congestion.Fifo))


(* ---------- Cache ---------- *)

module Cache = Tussle_netsim.Cache

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:2 ~app:Packet.Web () in
  Alcotest.(check bool) "cold miss" false (Cache.lookup c ~key:1);
  Cache.insert c ~key:1;
  Alcotest.(check bool) "warm hit" true (Cache.lookup c ~key:1);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  check_float "ratio" 0.5 (Cache.hit_ratio c)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 ~app:Packet.Web () in
  Cache.insert c ~key:1;
  Cache.insert c ~key:2;
  ignore (Cache.lookup c ~key:1);
  (* 2 is now least recently used *)
  Cache.insert c ~key:3;
  Alcotest.(check int) "size bounded" 2 (Cache.size c);
  Alcotest.(check bool) "1 kept" true (Cache.lookup c ~key:1);
  Alcotest.(check bool) "2 evicted" false (Cache.lookup c ~key:2)

let test_cache_serves_semantics () =
  let c = Cache.create ~app:Packet.Web () in
  let web id = Packet.make ~app:Packet.Web ~port:8001 ~id ~src:0 ~dst:9 ~created:0.0 () in
  Alcotest.(check bool) "first fetch misses" false (Cache.serves c (web 0));
  Alcotest.(check bool) "second fetch hits" true (Cache.serves c (web 1));
  (* wrong application: never served *)
  let game =
    Packet.make ~app:Packet.Game ~port:8001 ~id:2 ~src:0 ~dst:9 ~created:0.0 ()
  in
  Alcotest.(check bool) "new app ignored" false (Cache.serves c game);
  Alcotest.(check bool) "still ignored" false (Cache.serves c game);
  (* encrypted: cannot serve *)
  let enc =
    Packet.make ~app:Packet.Web ~encrypted:true ~port:8001 ~id:3 ~src:0 ~dst:9
      ~created:0.0 ()
  in
  Alcotest.(check bool) "encrypted unserved" false (Cache.serves c enc)

(* ---------- Diagnosis ---------- *)

module Diagnosis = Tussle_netsim.Diagnosis

let diag_path = [ 0; 1; 2; 3; 4 ]

let test_diagnosis_clean () =
  let probe _ = Diagnosis.Reached in
  let r = Diagnosis.localize ~probe ~path:diag_path in
  Alcotest.(check bool) "clean" true (r.Diagnosis.verdict = Diagnosis.Clean);
  Alcotest.(check int) "one probe" 1 r.Diagnosis.probes_used

let test_diagnosis_confession () =
  let probe target =
    if target >= 2 then Diagnosis.Reported_block ("filter", 2)
    else Diagnosis.Reached
  in
  let r = Diagnosis.localize ~probe ~path:diag_path in
  Alcotest.(check bool) "exact" true
    (r.Diagnosis.verdict = Diagnosis.Blocked_at ("filter", 2));
  Alcotest.(check int) "one probe" 1 r.Diagnosis.probes_used

let test_diagnosis_covert_bracket () =
  let probe target = if target >= 3 then Diagnosis.Lost else Diagnosis.Reached in
  let r = Diagnosis.localize ~probe ~path:diag_path in
  Alcotest.(check bool) "bracketed" true
    (r.Diagnosis.verdict = Diagnosis.Blocked_between (2, 3));
  Alcotest.(check bool) "cost more probes" true (r.Diagnosis.probes_used > 1)

let test_diagnosis_dead_first_hop () =
  let probe target = if target = 0 then Diagnosis.Reached else Diagnosis.Lost in
  let r = Diagnosis.localize ~probe ~path:diag_path in
  Alcotest.(check bool) "dead at start" true
    (r.Diagnosis.verdict = Diagnosis.Unreachable_at_start)

let test_diagnosis_last_hop () =
  (* only the destination is silent: failure on the last hop *)
  let probe target = if target = 4 then Diagnosis.Lost else Diagnosis.Reached in
  let r = Diagnosis.localize ~probe ~path:diag_path in
  Alcotest.(check bool) "last hop" true
    (r.Diagnosis.verdict = Diagnosis.Blocked_between (3, 4))

let test_diagnosis_short_path () =
  Alcotest.check_raises "short" (Invalid_argument "Diagnosis.localize: path too short")
    (fun () ->
      ignore (Diagnosis.localize ~probe:(fun _ -> Diagnosis.Reached) ~path:[ 1 ]))

let test_diagnosis_two_node_path () =
  (* the minimal path: source and destination only.  A silent failure
     can only sit on the single hop — and must not read as
     Unreachable_at_start, because there are no intermediate nodes to
     have heard from *)
  let probe _ = Diagnosis.Lost in
  let r = Diagnosis.localize ~probe ~path:[ 7; 9 ] in
  Alcotest.(check bool) "single hop bracketed" true
    (r.Diagnosis.verdict = Diagnosis.Blocked_between (7, 9));
  Alcotest.(check int) "one probe suffices" 1 r.Diagnosis.probes_used

let test_diagnosis_first_hop_vs_destination () =
  (* failure at the first hop: nothing past the source answers *)
  let first_hop target = if target = 0 then Diagnosis.Reached else Diagnosis.Lost in
  let r = Diagnosis.localize ~probe:first_hop ~path:diag_path in
  Alcotest.(check bool) "first hop" true
    (r.Diagnosis.verdict = Diagnosis.Unreachable_at_start);
  (* failure at the destination: every intermediate node answers *)
  let dest_only target = if target = 4 then Diagnosis.Lost else Diagnosis.Reached in
  let r = Diagnosis.localize ~probe:dest_only ~path:diag_path in
  Alcotest.(check bool) "destination hop" true
    (r.Diagnosis.verdict = Diagnosis.Blocked_between (3, 4));
  (* the destination sweep probed every intermediate node *)
  Alcotest.(check int) "probe cost" 4 r.Diagnosis.probes_used

let test_diagnosis_revealing_at_bracket_boundary () =
  (* the destination probe dies silently (a covert fault further down),
     but the forward scan hits a revealing device exactly where a
     bracket would have been placed: the confession must win *)
  let probe target =
    if target = 4 then Diagnosis.Lost
    else if target >= 2 then Diagnosis.Reported_block ("edge-filter", 2)
    else Diagnosis.Reached
  in
  let r = Diagnosis.localize ~probe ~path:diag_path in
  Alcotest.(check bool) "confession wins over bracket" true
    (r.Diagnosis.verdict = Diagnosis.Blocked_at ("edge-filter", 2));
  (* dest + node 1 + node 2 *)
  Alcotest.(check int) "three probes" 3 r.Diagnosis.probes_used


(* ---------- NAT ---------- *)

module Nat = Tussle_netsim.Nat

let nat_fixture () = Nat.create ~public:1 ~privates:[ 10; 11; 12 ]

let test_nat_outbound_rewrite () =
  let nat = nat_fixture () in
  let p = Packet.make ~id:0 ~src:10 ~dst:50 ~created:0.0 () in
  let q = Nat.translate_out nat p in
  Alcotest.(check int) "public src" 1 q.Packet.src;
  Alcotest.(check bool) "port remapped" true (q.Packet.port <> p.Packet.port);
  Alcotest.(check int) "dst untouched" 50 q.Packet.dst;
  (* same flow reuses the binding *)
  let q2 = Nat.translate_out nat (Packet.make ~id:1 ~src:10 ~dst:51 ~created:0.0 ()) in
  Alcotest.(check int) "stable binding" q.Packet.port q2.Packet.port

let test_nat_reply_comes_back () =
  let nat = nat_fixture () in
  let out = Nat.translate_out nat (Packet.make ~id:0 ~src:11 ~dst:50 ~created:0.0 ()) in
  let reply =
    Packet.make ~port:out.Packet.port ~id:1 ~src:50 ~dst:1 ~created:0.0 ()
  in
  (match Nat.translate_in nat reply with
  | Some r ->
    Alcotest.(check int) "back to the host" 11 r.Packet.dst;
    Alcotest.(check int) "original port" 80 r.Packet.port
  | None -> Alcotest.fail "reply should map");
  Alcotest.(check int) "no drops" 0 (Nat.inbound_drops nat)

let test_nat_unsolicited_dies () =
  let nat = nat_fixture () in
  let call = Packet.make ~port:5555 ~id:0 ~src:60 ~dst:1 ~created:0.0 () in
  Alcotest.(check bool) "dropped" true (Nat.translate_in nat call = None);
  Alcotest.(check int) "counted" 1 (Nat.inbound_drops nat)

let test_nat_port_forward () =
  let nat = nat_fixture () in
  Nat.add_port_forward nat ~public_port:8080 ~host:12 ~port:80;
  let call = Packet.make ~port:8080 ~id:0 ~src:60 ~dst:1 ~created:0.0 () in
  match Nat.translate_in nat call with
  | Some r ->
    Alcotest.(check int) "forwarded" 12 r.Packet.dst;
    Alcotest.(check int) "service port" 80 r.Packet.port
  | None -> Alcotest.fail "forward should map"

let test_nat_validation () =
  let nat = nat_fixture () in
  Alcotest.check_raises "outsider"
    (Invalid_argument "Nat.translate_out: source not behind this NAT")
    (fun () ->
      ignore (Nat.translate_out nat (Packet.make ~id:0 ~src:99 ~dst:1 ~created:0.0 ())));
  Alcotest.check_raises "household"
    (Invalid_argument "Nat.create: empty household") (fun () ->
      ignore (Nat.create ~public:1 ~privates:[]))


(* ---------- Transport ---------- *)

module Transport = Tussle_netsim.Transport

let direct_forwarding ~node ~target _ = if target <> node then Some target else None

let single_link_net () =
  let g = Graph.create 2 in
  Graph.add_undirected g 0 1
    (Link.make ~queue_capacity:16 ~latency:0.005 ~bandwidth_bps:2e6 ());
  Net.create g direct_forwarding

(* two senders (0, 1) into a shared bottleneck 2 -> 3 *)
let shared_bottleneck_net () =
  let g = Graph.create 4 in
  let fast () = Link.make ~queue_capacity:64 ~latency:0.001 ~bandwidth_bps:1e8 () in
  Graph.add_undirected g 0 2 (fast ());
  Graph.add_undirected g 1 2 (fast ());
  Graph.add_undirected g 2 3
    (Link.make ~queue_capacity:8 ~latency:0.005 ~bandwidth_bps:2e6 ());
  let forwarding ~node ~target _ =
    if node = target then None
    else if node = 3 || target = node then None
    else if node = 2 then Some target
    else if target = node then None
    else if target = 3 || target = 2 then Some 2
    else Some target
  in
  Net.create g forwarding

let test_transport_completes () =
  let net = single_link_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 1) in
  let c = Transport.start engine net gen ~src:0 ~dst:1 ~total_packets:200 in
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "completed" true (Transport.completed c);
  Alcotest.(check int) "all acked" 200 (Transport.acked c)

let test_transport_losses_recovered () =
  (* tiny queue forces drops; every drop must be retransmitted and the
     transfer must still complete *)
  let g = Graph.create 2 in
  Graph.add_undirected g 0 1
    (Link.make ~queue_capacity:4 ~latency:0.005 ~bandwidth_bps:1e6 ());
  let net = Net.create g direct_forwarding in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 2) in
  let c = Transport.start ~initial_window:32.0 engine net gen ~src:0 ~dst:1
      ~total_packets:100
  in
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "losses occurred" true (Transport.losses c > 0);
  Alcotest.(check bool) "retransmitted" true (Transport.retransmissions c > 0);
  Alcotest.(check bool) "still completed" true (Transport.completed c)

let test_transport_two_compliant_share () =
  let net = shared_bottleneck_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 3) in
  let a = Transport.start engine net gen ~src:0 ~dst:3 ~total_packets:100_000 in
  let b = Transport.start engine net gen ~src:1 ~dst:3 ~total_packets:100_000 in
  Engine.run ~until:30.0 engine;
  let ga = Transport.goodput a ~now:30.0 and gb = Transport.goodput b ~now:30.0 in
  Alcotest.(check bool) "both progress" true (ga > 0.0 && gb > 0.0);
  let ratio = Float.max ga gb /. Float.min ga gb in
  Alcotest.(check bool) "roughly fair" true (ratio < 3.0)

let test_transport_aggressive_starves () =
  let net = shared_bottleneck_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 4) in
  let honest = Transport.start engine net gen ~src:0 ~dst:3 ~total_packets:100_000 in
  let cheat =
    Transport.start ~behaviour:Transport.Aggressive engine net gen ~src:1
      ~dst:3 ~total_packets:100_000
  in
  Engine.run ~until:30.0 engine;
  let gh = Transport.goodput honest ~now:30.0
  and gc = Transport.goodput cheat ~now:30.0 in
  Alcotest.(check bool) "cheater dominates" true (gc > 2.0 *. gh)

let test_transport_validation () =
  let net = single_link_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 5) in
  Alcotest.check_raises "empty transfer"
    (Invalid_argument "Transport.start: nothing to send") (fun () ->
      ignore (Transport.start engine net gen ~src:0 ~dst:1 ~total_packets:0))

(* ---------- Transport resilience (faulted links) ---------- *)

(* single 0-1 link whose object we keep, so tests can flip its state *)
let faultable_net () =
  let g = Graph.create 2 in
  let l = Link.make ~queue_capacity:16 ~latency:0.005 ~bandwidth_bps:2e6 () in
  Graph.add_undirected g 0 1 l;
  (Net.create g direct_forwarding, l)

let test_transport_survives_down_window () =
  (* the link dies mid-flight and comes back: the transfer must finish
     after the restore, paced by backoff retransmissions *)
  let net, link = faultable_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 11) in
  ignore (Engine.schedule engine 0.1 (fun _ -> Link.set_up link false));
  ignore (Engine.schedule engine 0.8 (fun _ -> Link.set_up link true));
  let c =
    Transport.start ~rto_backoff:2.0 ~rto_max:1.0 ~max_retries:20 engine net
      gen ~src:0 ~dst:1 ~total_packets:100
  in
  Engine.run ~until:120.0 engine;
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine);
  Alcotest.(check bool) "completed after restore" true (Transport.completed c);
  Alcotest.(check bool) "status agrees" true
    (Transport.status c = Transport.Completed);
  Alcotest.(check bool) "retransmissions counted" true
    (Transport.retransmissions c > 0);
  Alcotest.(check bool) "timeouts counted" true (Transport.timeouts c > 0)

let test_transport_abandons_dead_path () =
  (* the link never comes back: the connection must give up after
     max_retries and let the engine drain — never hang it *)
  let net, link = faultable_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 12) in
  Link.set_up link false;
  let c =
    Transport.start ~rto_backoff:2.0 ~rto_max:0.5 ~max_retries:3 engine net
      gen ~src:0 ~dst:1 ~total_packets:50
  in
  Engine.run ~until:120.0 engine;
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine);
  Alcotest.(check bool) "abandoned" true (Transport.abandoned c);
  Alcotest.(check bool) "status agrees" true
    (Transport.status c = Transport.Abandoned);
  Alcotest.(check bool) "gave up at a recorded time" true
    (Transport.abandon_time c <> None);
  Alcotest.(check bool) "not completed" false (Transport.completed c);
  (* goodput freezes at the abandon time instead of decaying with now *)
  check_float "goodput at abandonment"
    (Transport.goodput c ~now:(Engine.now engine))
    (Transport.goodput c ~now:1e9)

let test_transport_stalled_probe () =
  let net, link = faultable_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 13) in
  Link.set_up link false;
  let c =
    Transport.start ~rto_backoff:2.0 ~rto_max:2.0 ~max_retries:50 engine net
      gen ~src:0 ~dst:1 ~total_packets:10
  in
  Engine.run ~until:5.0 engine;
  (* no ack ever arrived: the connection is alive but stalled *)
  Alcotest.(check bool) "still active" true (Transport.status c = Transport.Active);
  Alcotest.(check bool) "stalled" true (Transport.stalled c ~now:5.0 ~idle:1.0);
  Link.set_up link true;
  Engine.run ~until:120.0 engine;
  Alcotest.(check bool) "recovers" true (Transport.completed c);
  Alcotest.(check bool) "no longer stalled" true
    (not (Transport.stalled c ~now:(Engine.now engine) ~idle:1.0))

let test_transport_resilience_validation () =
  let net, _ = faultable_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 14) in
  Alcotest.check_raises "backoff < 1"
    (Invalid_argument "Transport.start: backoff < 1") (fun () ->
      ignore
        (Transport.start ~rto_backoff:0.5 engine net gen ~src:0 ~dst:1
           ~total_packets:1));
  Alcotest.check_raises "jitter without rng"
    (Invalid_argument "Transport.start: jitter needs jitter_rng") (fun () ->
      ignore
        (Transport.start ~rto_jitter:0.2 engine net gen ~src:0 ~dst:1
           ~total_packets:1));
  Alcotest.check_raises "max_retries < 1"
    (Invalid_argument "Transport.start: max_retries < 1") (fun () ->
      ignore
        (Transport.start ~max_retries:0 engine net gen ~src:0 ~dst:1
           ~total_packets:1))

let () =
  Alcotest.run "netsim"
    [
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "cascade" `Quick test_engine_cascade;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past raises" `Quick test_engine_past_raises;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "until after drain" `Quick
            test_engine_until_drained;
          Alcotest.test_case "until never backwards" `Quick
            test_engine_until_never_backwards;
          Alcotest.test_case "cancel table reaped" `Quick
            test_engine_cancel_reaped;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "queue-depth high water" `Quick
            test_engine_queue_high_water;
          Alcotest.test_case "cancellations reaped counter" `Quick
            test_engine_cancellations_reaped_counter;
        ] );
      ( "packet",
        [
          Alcotest.test_case "defaults" `Quick test_packet_defaults;
          Alcotest.test_case "tunneled hides" `Quick test_packet_tunneled_hides;
          Alcotest.test_case "encrypted hides app" `Quick test_packet_encrypted_hides_app;
          Alcotest.test_case "path trace" `Quick test_packet_path;
          Alcotest.test_case "bad size" `Quick test_packet_bad_size;
        ] );
      ( "link",
        [
          Alcotest.test_case "delay model" `Quick test_link_delay;
          Alcotest.test_case "queueing" `Quick test_link_queueing;
          Alcotest.test_case "drop when full" `Quick test_link_drop_when_full;
          Alcotest.test_case "drains" `Quick test_link_drains;
          Alcotest.test_case "utilization" `Quick test_link_utilization;
          Alcotest.test_case "decreasing now raises" `Quick
            test_link_decreasing_now_raises;
          Alcotest.test_case "down/up fault" `Quick test_link_down_up;
          Alcotest.test_case "loss and corrupt faults" `Quick
            test_link_loss_and_corrupt;
          Alcotest.test_case "latency spike" `Quick test_link_latency_spike;
          Alcotest.test_case "fault validation" `Quick
            test_link_fault_validation;
        ] );
      ( "topology",
        [
          Alcotest.test_case "line" `Quick test_topology_line;
          Alcotest.test_case "ring" `Quick test_topology_ring;
          Alcotest.test_case "star" `Quick test_topology_star;
          Alcotest.test_case "grid" `Quick test_topology_grid;
          Alcotest.test_case "tree" `Quick test_topology_tree;
          Alcotest.test_case "barabasi-albert" `Quick test_topology_barabasi_albert;
          Alcotest.test_case "erdos-renyi dense" `Quick test_topology_erdos_renyi_dense;
          Alcotest.test_case "two-tier" `Quick test_topology_two_tier;
          Alcotest.test_case "two-tier relationships" `Quick
            test_topology_two_tier_relationships;
        ] );
      ( "middlebox",
        [
          Alcotest.test_case "port filter" `Quick test_middlebox_port_filter;
          Alcotest.test_case "app filter" `Quick test_middlebox_app_filter;
          Alcotest.test_case "trust firewall" `Quick test_middlebox_trust_firewall;
          Alcotest.test_case "wiretap" `Quick test_middlebox_wiretap;
          Alcotest.test_case "qos stripper" `Quick test_middlebox_qos_stripper;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "filter drop" `Quick test_net_filter_drop;
          Alcotest.test_case "no route" `Quick test_net_no_route;
          Alcotest.test_case "source route waypoint" `Quick
            test_net_source_route_waypoint;
          Alcotest.test_case "ttl" `Quick test_net_ttl;
          Alcotest.test_case "queue loss" `Quick test_net_queue_loss;
          Alcotest.test_case "degraded flag" `Quick test_net_degraded_flag;
          Alcotest.test_case "duplicate id" `Quick test_net_duplicate_id_rejected;
        ] );
      ( "transport",
        [
          Alcotest.test_case "completes" `Quick test_transport_completes;
          Alcotest.test_case "loss recovery" `Quick test_transport_losses_recovered;
          Alcotest.test_case "two compliant share" `Quick
            test_transport_two_compliant_share;
          Alcotest.test_case "aggressive starves" `Quick
            test_transport_aggressive_starves;
          Alcotest.test_case "validation" `Quick test_transport_validation;
          Alcotest.test_case "survives down window" `Quick
            test_transport_survives_down_window;
          Alcotest.test_case "abandons dead path" `Quick
            test_transport_abandons_dead_path;
          Alcotest.test_case "stalled probe" `Quick test_transport_stalled_probe;
          Alcotest.test_case "resilience validation" `Quick
            test_transport_resilience_validation;
        ] );
      ( "nat",
        [
          Alcotest.test_case "outbound rewrite" `Quick test_nat_outbound_rewrite;
          Alcotest.test_case "reply comes back" `Quick test_nat_reply_comes_back;
          Alcotest.test_case "unsolicited dies" `Quick test_nat_unsolicited_dies;
          Alcotest.test_case "port forward" `Quick test_nat_port_forward;
          Alcotest.test_case "validation" `Quick test_nat_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "serves semantics" `Quick test_cache_serves_semantics;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "clean" `Quick test_diagnosis_clean;
          Alcotest.test_case "confession" `Quick test_diagnosis_confession;
          Alcotest.test_case "covert bracket" `Quick test_diagnosis_covert_bracket;
          Alcotest.test_case "dead first hop" `Quick test_diagnosis_dead_first_hop;
          Alcotest.test_case "last hop" `Quick test_diagnosis_last_hop;
          Alcotest.test_case "short path" `Quick test_diagnosis_short_path;
          Alcotest.test_case "two-node path" `Quick test_diagnosis_two_node_path;
          Alcotest.test_case "first hop vs destination" `Quick
            test_diagnosis_first_hop_vs_destination;
          Alcotest.test_case "revealing at bracket boundary" `Quick
            test_diagnosis_revealing_at_bracket_boundary;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "jain index" `Quick test_congestion_jain;
          Alcotest.test_case "max-min allocation" `Quick test_congestion_max_min;
          Alcotest.test_case "all honest" `Quick test_congestion_all_honest;
          Alcotest.test_case "cheater starves fifo" `Quick
            test_congestion_cheater_starves_fifo;
          Alcotest.test_case "fq protects" `Quick test_congestion_fq_protects;
          Alcotest.test_case "validation" `Quick test_congestion_validation;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "poisson count" `Quick test_traffic_poisson_count;
          Alcotest.test_case "constant spacing" `Quick test_traffic_constant_spacing;
          Alcotest.test_case "fresh ids" `Quick test_traffic_fresh_ids;
        ] );
    ]
