(* Tests for tussle.search: mutation-operator validity (qcheck), the
   planted violation that a same-budget random sweep misses but the
   coverage-guided mutator finds (and shrinks, and persists), the
   bounded-exhaustive backend's completeness + certification on a toy
   grammar, byte-determinism across --domains and repeats, the
   search-report JSON round-trip with tamper detection, and corpus
   hygiene (dedup on persist, unknown-scenario rejection). *)

module Rng = Tussle_prelude.Rng
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Topology = Tussle_netsim.Topology
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject
module Invariant = Tussle_chaos.Invariant
module Scenario = Tussle_chaos.Scenario
module Sweep = Tussle_chaos.Sweep
module Corpus = Tussle_chaos.Corpus
module Signature = Tussle_chaos.Signature
module Backend = Tussle_search.Backend
module Mutate = Tussle_search.Mutate
module Exhaust = Tussle_search.Exhaust
module Driver = Tussle_search.Driver
module Search_report = Tussle_obs.Search_report
module Json = Tussle_obs.Json

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let fresh_corpus_dir () =
  let stamp = Filename.temp_file "tussle-search" "" in
  Sys.remove stamp;
  stamp ^ ".corpus"

(* ---------- mutation-operator validity (property) ---------- *)

let links = [ (0, 1); (1, 2); (2, 3) ]
let horizon = 10.0

let mutation_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* episodes = int_range 0 12 in
    let* mutations = int_range 1 10 in
    return (seed, episodes, mutations))

let prop_mutants_valid =
  QCheck2.Test.make ~name:"every mutant passes Plan.validate" ~count:200
    mutation_gen (fun (seed, episodes, mutations) ->
      let rng = Rng.create seed in
      let plan = ref (Plan.random rng ~links ~horizon ~episodes) in
      let cap = Plan.mutation_horizon_factor *. horizon in
      for _ = 1 to mutations do
        plan := Plan.mutate rng ~links ~horizon !plan;
        (* must never raise, however many operators compound *)
        Plan.validate !plan
      done;
      (* windows never creep past the mutation cap, so searches cannot
         drift toward the chaos guard horizon *)
      List.for_all
        (fun spec ->
          match spec with
          | Plan.Link_down { w; _ }
          | Plan.Link_loss { w; _ }
          | Plan.Link_corrupt { w; _ }
          | Plan.Latency_spike { w; _ }
          | Plan.Node_crash { w; _ }
          | Plan.Middlebox_break { w; _ }
          | Plan.Gray_loss { w; _ }
          | Plan.Unidirectional_down { w; _ }
          | Plan.Link_flap { w; _ }
          | Plan.Blackhole { w; _ } ->
            w.Plan.from_s >= 0.0 && w.Plan.until_s <= cap)
        !plan)

let prop_mutate_deterministic =
  QCheck2.Test.make ~name:"mutation is a pure function of the rng" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let mutate_once s =
        let rng = Rng.create s in
        let plan = Plan.random rng ~links ~horizon ~episodes:3 in
        Plan.to_string (Plan.mutate rng ~links ~horizon plan)
      in
      mutate_once seed = mutate_once seed)

(* ---------- the planted violation ---------- *)

(* A deliberately buggy scenario: the engine stops exactly at the
   nominal horizon.  [Plan.random] windows always close strictly
   before the horizon, so every random plan drains cleanly — but a
   mutated window widened or shifted past the horizon leaves its
   restore event queued, a genuine engine-drained violation that only
   the adversarial search can reach. *)
let planted : Scenario.t =
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.line 2))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    Inject.install ~seed ~plan engine net;
    Engine.run ~until:4.0 engine;
    Invariant.observe ~clock_start engine net
  in
  { Scenario.name = "planted-horizon-stop"; links = [ (0, 1) ];
    horizon = 4.0; run }

(* Same scenario, but the engine runs far past every window the
   exhaust grammar (or the mutation cap) can produce: nothing in the
   box violates, so the box is certifiable. *)
let planted_clean : Scenario.t =
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.line 2))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    Inject.install ~seed ~plan engine net;
    Engine.run ~until:24.0 engine;
    Invariant.observe ~clock_start engine net
  in
  { Scenario.name = "planted-clean"; links = [ (0, 1) ]; horizon = 4.0; run }

let test_random_sweep_misses_planted () =
  (* a 200-plan random sweep, derived exactly like the chaos sweep
     derives its candidates, never trips the planted bug *)
  for i = 0 to 199 do
    let rng = Rng.create (42 + (7919 * (i + 1))) in
    let episodes = 1 + Rng.int rng 4 in
    let plan =
      Plan.random rng ~links:planted.Scenario.links
        ~horizon:planted.Scenario.horizon ~episodes
    in
    let seed = Rng.int rng 1_000_000 in
    let violations = Invariant.check (planted.Scenario.run ~seed ~plan) in
    if violations <> [] then
      Alcotest.failf "random plan %d tripped the planted bug: %s" i
        (String.concat "; " (List.map Invariant.violation_string violations))
  done

let test_mutate_finds_planted () =
  let dir = fresh_corpus_dir () in
  let o =
    Mutate.search ~corpus_dir:dir ~scenarios:[ planted ] ~seed:42 ~budget:200 ()
  in
  Alcotest.(check string) "backend name" "mutate" o.Backend.backend;
  Alcotest.(check int) "whole budget spent" 200 o.Backend.runs;
  Alcotest.(check bool) "found the planted violation" true
    (o.Backend.found <> []);
  Alcotest.(check bool) "open-ended searches never certify" false
    o.Backend.certified;
  List.iter
    (fun (f : Backend.found) ->
      let fails = Sweep.still_fails planted ~seed:f.Backend.seed in
      Alcotest.(check bool) "minimal reproducer still fails" true
        (fails f.Backend.minimal);
      (* 1-minimal: dropping any single episode makes it pass *)
      List.iteri
        (fun i _ ->
          let without =
            List.filteri (fun j _ -> j <> i) f.Backend.minimal
          in
          Alcotest.(check bool) "dropping any episode passes" false
            (fails without))
        f.Backend.minimal;
      match f.Backend.file with
      | None -> Alcotest.fail "finding was not persisted"
      | Some path -> (
        Alcotest.(check bool) "corpus file exists" true (Sys.file_exists path);
        match Corpus.load path with
        | Error e -> Alcotest.fail e
        | Ok e ->
          Alcotest.(check string) "corpus names the scenario"
            planted.Scenario.name e.Corpus.scenario;
          Alcotest.(check bool) "corpus holds the minimal plan" true
            (Plan.to_string e.Corpus.plan = Plan.to_string f.Backend.minimal)))
    o.Backend.found;
  (* the corpus-bookkeeping invariants hold on the assembled report *)
  let report =
    Search_report.make ~label:"planted" ~corpus_dir:dir
      ~backend:o.Backend.backend ~search_seed:42 ~budget:200
      ~runs:o.Backend.runs ~seeded:o.Backend.seeded ~space:o.Backend.space
      ~certified:o.Backend.certified ~frontier:o.Backend.frontier
      ~corpus_added:
        (List.length (List.filter (fun f -> f.Backend.fresh) o.Backend.found))
      (List.map Driver.finding_of_found o.Backend.found)
  in
  Alcotest.(check (list string)) "report invariants clean" []
    (List.map Invariant.violation_string
       (Invariant.check_search_report report))

(* ---------- gray failure vs hello-only healing ---------- *)

(* The chaos gray-blind setup as a search target: a ring healed by
   hello-only detection, claiming a covert-drop budget.  Legacy faults
   are overt, so only the extended grammar — a Gray_loss episode
   parked on the primary path — can bust the budget.  The mutate
   backend must find it, shrink it to the gray episode alone, and
   persist the reproducer. *)
let gray_blind : Scenario.t =
  let module Traffic = Tussle_netsim.Traffic in
  let module Selfheal = Tussle_routing.Selfheal in
  let edge = { Tussle_netsim.Topology.latency = 0.005; bandwidth_bps = 1e7 } in
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.ring ~edge 6))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    let heal = Selfheal.attach ~until:12.0 engine net in
    Inject.install ~seed ~plan engine net;
    let gen = Traffic.create (Rng.create (seed + 1)) in
    for k = 0 to 79 do
      let at = 0.2 +. (0.1 *. float_of_int k) in
      ignore
        (Engine.schedule engine at (fun engine ->
             Net.inject net engine
               (Traffic.next_packet gen ~src:0 ~dst:2
                  ~created:(Engine.now engine) ())))
    done;
    Engine.run ~until:600.0 engine;
    Invariant.observe ~reconvergences:(Selfheal.reconvergences heal)
      ~covert_budget:16
      ~fault_transitions:(Plan.transitions plan) ~clock_start engine net
  in
  { Scenario.name = "gray-blind-search";
    links = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ];
    horizon = 10.0; run }

let test_mutate_finds_gray_failure () =
  let dir = fresh_corpus_dir () in
  let o =
    Mutate.search ~corpus_dir:dir ~scenarios:[ gray_blind ] ~seed:7
      ~budget:300 ()
  in
  let gray_findings =
    List.filter
      (fun (f : Backend.found) ->
        List.exists
          (fun v -> v.Invariant.invariant = "no-silent-blackhole")
          f.Backend.violations)
      o.Backend.found
  in
  Alcotest.(check bool) "found a covert-budget violation" true
    (gray_findings <> []);
  List.iter
    (fun (f : Backend.found) ->
      (* the 1-minimal reproducer needs covert grammar: an overt
         episode may ride along (steering traffic onto the grayed
         path), but no legacy-only plan can bust the budget *)
      Alcotest.(check bool) "minimal plan needs covert grammar" true
        (List.exists
           (function
             | Plan.Gray_loss _ | Plan.Blackhole _ -> true
             | _ -> false)
           f.Backend.minimal);
      Alcotest.(check bool) "minimal reproducer still fails" true
        (Sweep.still_fails gray_blind ~seed:f.Backend.seed f.Backend.minimal);
      match f.Backend.file with
      | None -> Alcotest.fail "gray finding was not persisted"
      | Some path -> (
        match Corpus.load path with
        | Error e -> Alcotest.fail e
        | Ok e ->
          Alcotest.(check bool) "corpus holds the minimal plan" true
            (e.Corpus.plan = f.Backend.minimal)))
    gray_findings

(* ---------- bounded-exhaustive completeness ---------- *)

let test_exhaust_complete_on_toy_box () =
  (* 1 link x {down, loss, gray, flap, uni x2} x 4 windows = 24 link
     atoms, plus 2 nodes x blackhole x 4 windows = 8 node atoms; plans
     = empty + singles + unordered pairs = 1 + 32 + 528 = 561 *)
  let o = Exhaust.search ~scenarios:[ planted ] ~seed:5 ~budget:600 () in
  Alcotest.(check int) "box fully enumerated" 561 o.Backend.runs;
  Alcotest.(check int) "space matches" 561 o.Backend.space;
  Alcotest.(check bool) "violations forbid certification" false
    o.Backend.certified;
  (* exactly the atoms whose window [h/2, 1.5h) outlives the run:
     every kind over [2, 6) *)
  let minimals =
    List.sort_uniq compare
      (List.map (fun f -> Plan.to_string f.Backend.minimal) o.Backend.found)
  in
  Alcotest.(check (list string)) "exactly the planted reproducers"
    [
      "link 0-1 down [2, 6)";
      "link 0-1 flap period=1s duty=0.5 [2, 6)";
      "link 0-1 gray p=0.5 [2, 6)";
      "link 0-1 loss p=0.2 [2, 6)";
      "link 0->1 down [2, 6)";
      "link 1->0 down [2, 6)";
      "node 0 blackhole [2, 6)";
      "node 1 blackhole [2, 6)";
    ]
    minimals

let test_exhaust_certifies_clean_box () =
  let o = Exhaust.search ~scenarios:[ planted_clean ] ~seed:5 ~budget:600 () in
  Alcotest.(check int) "box fully enumerated" 561 o.Backend.runs;
  Alcotest.(check bool) "no findings" true (o.Backend.found = []);
  Alcotest.(check bool) "clean exhausted box certifies" true
    o.Backend.certified;
  (* an under-budget enumeration must not certify *)
  let partial =
    Exhaust.search ~scenarios:[ planted_clean ] ~seed:5 ~budget:10 ()
  in
  Alcotest.(check int) "budget caps the enumeration" 10 partial.Backend.runs;
  Alcotest.(check bool) "partial box never certifies" false
    partial.Backend.certified

(* ---------- byte-determinism across --domains and repeats ---------- *)

let report_string (r : Search_report.t) =
  Json.to_string (Search_report.to_json r) ^ "\n" ^ Search_report.summary r

let run_driver ?domains backend =
  match Driver.run ?domains ~backend ~seed:11 ~budget:48 () with
  | Error e -> Alcotest.fail e
  | Ok (report, _) -> report

let test_search_deterministic () =
  List.iter
    (fun backend ->
      let base = report_string (run_driver ~domains:1 backend) in
      List.iter
        (fun domains ->
          Alcotest.(check string)
            (Printf.sprintf "%s identical at --domains %d" backend domains)
            base
            (report_string (run_driver ~domains backend)))
        [ 2; 4 ];
      Alcotest.(check string)
        (Printf.sprintf "%s identical on repeat" backend)
        base
        (report_string (run_driver ~domains:1 backend));
      (* the real scenarios run to a guard horizon far past the
         mutation cap, so neither backend finds violations in them *)
      let r = run_driver ~domains:2 backend in
      Alcotest.(check int)
        (Printf.sprintf "%s clean on real scenarios" backend)
        0
        (List.length r.Search_report.findings);
      (match Search_report.validate (Search_report.to_json r) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s report invalid: %s" backend e);
      Alcotest.(check (list string))
        (Printf.sprintf "%s report invariants clean" backend)
        []
        (List.map Invariant.violation_string
           (Invariant.check_search_report r)))
    Driver.backend_names;
  match Driver.run ~backend:"bogus" ~seed:11 ~budget:48 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend must be an error"

(* ---------- report round-trip + tampering ---------- *)

let violated report =
  List.map
    (fun v -> v.Invariant.invariant)
    (Invariant.check_search_report report)

let test_report_roundtrip_and_tampering () =
  let r = run_driver "mutate" in
  (match Search_report.of_json (Search_report.to_json r) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok r' ->
    Alcotest.(check bool) "of_json (to_json r) = r" true (r = r'));
  (* structural tampering is caught by validate *)
  let tamper name value =
    match Search_report.to_json r with
    | Json.Obj fields ->
      Json.Obj
        (List.map (fun (k, v) -> if k = name then (k, value) else (k, v)) fields)
    | _ -> Alcotest.fail "report must serialize as an object"
  in
  (match Search_report.validate (tamper "schema" (Json.Str "bogus/9")) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong schema tag must not validate");
  (match Search_report.validate (tamper "runs" (Json.Str "many")) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mistyped field must not validate");
  (match Search_report.validate (tamper "summary" (Json.Obj [])) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "gutted summary must not validate");
  (* semantic tampering is caught by the search-report invariants *)
  Alcotest.(check (list string)) "honest report passes" [] (violated r);
  Alcotest.(check bool) "short-changed budget flagged" true
    (List.mem "search-budget-accounting"
       (violated { r with Search_report.runs = r.Search_report.runs - 1 }));
  Alcotest.(check bool) "shrinking frontier flagged" true
    (List.mem "search-coverage-monotone"
       (violated { r with Search_report.frontier = [ 5; 3 ] }));
  Alcotest.(check bool) "phantom corpus additions flagged" true
    (List.mem "search-corpus-additions-counted"
       (violated
          { r with Search_report.corpus_added = r.Search_report.corpus_added + 1 }));
  (* a finding whose corpus file does not match its plan is flagged *)
  let forged =
    {
      Search_report.scenario = planted.Scenario.name;
      seed = 7;
      found_episodes = 3;
      minimal_plan = "link 0-1 down [2, 6)";
      invariants = [ "engine-drained" ];
      corpus_file = "chaos/corpus/planted-horizon-stop-7-00000000.plan";
    }
  in
  Alcotest.(check bool) "forged corpus hash flagged" true
    (List.mem "search-corpus-hashes"
       (violated { r with Search_report.findings = [ forged ] }))

(* ---------- corpus hygiene ---------- *)

let test_corpus_dedupe () =
  let dir = fresh_corpus_dir () in
  let plan = [ Plan.Link_down { u = 0; v = 1; w = Plan.window 0.2 2.5 } ] in
  let entry = { Corpus.scenario = "planted-horizon-stop"; seed = 7; plan } in
  let path = Corpus.save ~dir entry in
  Alcotest.(check (option string)) "duplicate detected" (Some path)
    (Corpus.find_duplicate ~dir entry);
  (* same plan under a different seed is still the same reproducer *)
  let path2 = Corpus.save ~dir { entry with Corpus.seed = 99 } in
  Alcotest.(check string) "seed does not defeat dedup" path path2;
  Alcotest.(check int) "still one file" 1 (List.length (Corpus.load_dir dir));
  (* a genuinely different plan gets its own file *)
  let other =
    { entry with Corpus.plan = [ Plan.Link_down { u = 0; v = 1; w = Plan.window 0.1 1.0 } ] }
  in
  Alcotest.(check (option string)) "distinct plan is no duplicate" None
    (Corpus.find_duplicate ~dir other);
  let path3 = Corpus.save ~dir other in
  Alcotest.(check bool) "distinct plan, distinct file" true (path3 <> path);
  Alcotest.(check int) "two files" 2 (List.length (Corpus.load_dir dir))

let test_corpus_unknown_scenario_rejected () =
  let dir = fresh_corpus_dir () in
  let entry =
    {
      Corpus.scenario = "no-such-scenario";
      seed = 3;
      plan = [ Plan.Link_down { u = 0; v = 1; w = Plan.window 0.1 1.0 } ];
    }
  in
  let path = Corpus.save ~dir entry in
  (* permissive by default: tests persist plans for private scenarios *)
  (match Corpus.load path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* with a known-scenario registry the entry is cleanly rejected *)
  let known = List.map (fun s -> s.Scenario.name) Scenario.all in
  (match Corpus.load ~known path with
  | Error e ->
    Alcotest.(check bool) "error names the bad scenario" true
      (contains e "no-such-scenario")
  | Ok _ -> Alcotest.fail "unknown scenario must be rejected");
  match Corpus.load_dir ~known dir with
  | [ (_, Error _) ] -> ()
  | _ -> Alcotest.fail "load_dir must surface the rejection"

let () =
  Alcotest.run "search"
    [
      ( "mutation-operators",
        [
          QCheck_alcotest.to_alcotest prop_mutants_valid;
          QCheck_alcotest.to_alcotest prop_mutate_deterministic;
        ] );
      ( "planted-violation",
        [
          Alcotest.test_case "random sweep misses it" `Quick
            test_random_sweep_misses_planted;
          Alcotest.test_case "mutate backend finds + shrinks + persists"
            `Quick test_mutate_finds_planted;
          Alcotest.test_case "mutate finds the gray failure" `Slow
            test_mutate_finds_gray_failure;
        ] );
      ( "bounded-exhaustive",
        [
          Alcotest.test_case "complete on the toy box" `Quick
            test_exhaust_complete_on_toy_box;
          Alcotest.test_case "certifies a clean box" `Quick
            test_exhaust_certifies_clean_box;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical across domains + repeats" `Slow
            test_search_deterministic;
        ] );
      ( "report",
        [
          Alcotest.test_case "round-trip + tampering" `Quick
            test_report_roundtrip_and_tampering;
        ] );
      ( "corpus-hygiene",
        [
          Alcotest.test_case "dedup on persist" `Quick test_corpus_dedupe;
          Alcotest.test_case "unknown scenario rejected" `Quick
            test_corpus_unknown_scenario_rejected;
        ] );
    ]
