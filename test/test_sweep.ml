(* The statistical sweep layer: driver determinism across domain
   counts, sweep-report JSON round-trip + schema validation, the
   report-consistency invariants on hand-built inconsistent reports,
   and the driver's fault isolation (a raising probe fails its own
   experiment, not the sweep). *)

module Driver = Tussle_sweep.Driver
module Sweep_report = Tussle_obs.Sweep_report
module Json = Tussle_obs.Json
module Invariant = Tussle_chaos.Invariant
module Experiment = Tussle_experiments.Experiment
module Registry = Tussle_experiments.Registry
module T = Tussle_prelude.Stats.Test

(* a cheap, fully deterministic synthetic experiment: metric values
   derive from the seed arithmetically, so expected samples are
   computable in the test *)
let synthetic ?(id = "SYN") ?(probe_exn = false) ?(judge_metric = "x") () =
  let probe ~seed =
    if probe_exn && seed mod 2 = 0 then failwith "synthetic probe boom";
    let x = float_of_int (seed mod 97) in
    [ ("x", x); ("y", (2.0 *. x) +. 1.0) ]
  in
  let judge sample =
    [
      {
        Experiment.claim = "y > x";
        test = "paired t, greater";
        result = T.paired ~alternative:T.Greater (sample "y") (sample judge_metric);
      };
    ]
  in
  {
    Experiment.id;
    title = "synthetic sweep fixture";
    paper_claim = "";
    run = (fun () -> ("", true));
    sweep = Some { Experiment.probe; judge };
  }

let run_synthetic ?domains ?(runs = 8) () =
  Driver.run_sweep ?domains ~seed:1031 ~runs ~alpha:0.01 [ synthetic () ]

(* ---------- determinism ---------- *)

let test_seed_derivation () =
  Alcotest.(check int) "stride" (1031 + 7919) (Driver.run_seed ~seed:1031 0);
  Alcotest.(check int) "index 4" (1031 + (7919 * 5)) (Driver.run_seed ~seed:1031 4)

let test_driver_deterministic_across_domains () =
  let render (r, errs) =
    Alcotest.(check int) "no errors" 0 (List.length errs);
    Json.to_string (Sweep_report.to_json r) ^ Sweep_report.summary r
  in
  let d1 = render (run_synthetic ~domains:1 ()) in
  let d2 = render (run_synthetic ~domains:2 ()) in
  let d4 = render (run_synthetic ~domains:4 ()) in
  Alcotest.(check string) "1 = 2 domains" d1 d2;
  Alcotest.(check string) "2 = 4 domains" d2 d4;
  let again = render (run_synthetic ~domains:2 ()) in
  Alcotest.(check string) "repeat run identical" d1 again

let test_real_experiments_deterministic () =
  (* the real E29 surface, tiny N: byte-identical artifact across
     domain counts *)
  let e29 =
    match Registry.find "E29" with Some e -> e | None -> Alcotest.fail "no E29"
  in
  let run domains =
    let r, errs = Driver.run_sweep ~domains ~seed:7 ~runs:3 ~alpha:0.05 [ e29 ] in
    Alcotest.(check int) "no errors" 0 (List.length errs);
    Json.to_string (Sweep_report.to_json r)
  in
  Alcotest.(check string) "E29 sweep identical across domains" (run 1) (run 4)

let test_samples_are_seed_derived () =
  let r, _ = run_synthetic ~domains:1 ~runs:5 () in
  match r.Sweep_report.experiments with
  | [ e ] ->
    let x = List.find (fun m -> m.Sweep_report.name = "x") e.Sweep_report.metrics in
    let expected =
      Array.init 5 (fun i -> float_of_int (Driver.run_seed ~seed:1031 i mod 97))
    in
    Alcotest.(check (array (float 0.0))) "samples in run order" expected
      x.Sweep_report.samples
  | l -> Alcotest.failf "expected 1 experiment, got %d" (List.length l)

(* ---------- report round-trip and validation ---------- *)

let test_report_roundtrip () =
  let r, _ = run_synthetic ~runs:6 () in
  let json = Sweep_report.to_json r in
  (match Sweep_report.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fresh report invalid: %s" msg);
  let reparsed =
    match Json.parse (Json.to_string json) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "reparse failed: %s" msg
  in
  (match Sweep_report.validate reparsed with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "reparsed report invalid: %s" msg);
  match Sweep_report.of_json reparsed with
  | Error msg -> Alcotest.failf "of_json failed: %s" msg
  | Ok r2 ->
    Alcotest.(check string) "summary survives round-trip"
      (Sweep_report.summary r) (Sweep_report.summary r2);
    Alcotest.(check int) "runs" r.Sweep_report.runs r2.Sweep_report.runs

let test_report_infinite_statistic_roundtrip () =
  (* a constant paired difference yields t = +inf; the artifact must
     carry it through JSON (which renders bare non-finite floats as
     null) *)
  let r, errs =
    Driver.run_sweep ~domains:1 ~seed:3 ~runs:4 ~alpha:0.01
      [
        {
          (synthetic ()) with
          Experiment.sweep =
            Some
              {
                Experiment.probe = (fun ~seed -> [ ("a", float_of_int (seed mod 7)); ("b", float_of_int (seed mod 7) +. 1.0) ]);
                judge =
                  (fun sample ->
                    [
                      {
                        Experiment.claim = "b > a (constant gap)";
                        test = "paired t, greater";
                        result =
                          T.paired ~alternative:T.Greater (sample "b") (sample "a");
                      };
                    ]);
              };
        };
      ]
  in
  Alcotest.(check int) "no errors" 0 (List.length errs);
  let v =
    match r.Sweep_report.experiments with
    | [ e ] -> List.hd e.Sweep_report.verdicts
    | _ -> Alcotest.fail "expected 1 experiment"
  in
  Alcotest.(check bool) "statistic is +inf" true
    (v.Sweep_report.statistic = infinity);
  Alcotest.(check bool) "passes" true v.Sweep_report.pass;
  let reparsed =
    match Json.parse (Json.to_string (Sweep_report.to_json r)) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "reparse failed: %s" msg
  in
  match Sweep_report.of_json reparsed with
  | Error msg -> Alcotest.failf "of_json failed: %s" msg
  | Ok r2 -> (
    match r2.Sweep_report.experiments with
    | [ e ] ->
      let v2 = List.hd e.Sweep_report.verdicts in
      Alcotest.(check bool) "inf survives round-trip" true
        (v2.Sweep_report.statistic = infinity)
    | _ -> Alcotest.fail "round-trip lost the experiment")

let test_validate_rejects () =
  let r, _ = run_synthetic ~runs:4 () in
  let base = Sweep_report.to_json r in
  let tamper f =
    match base with
    | Json.Obj fields -> Json.Obj (f fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  (match Sweep_report.validate (tamper (fun fs -> List.remove_assoc "schema" fs)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing schema accepted");
  (match
     Sweep_report.validate
       (tamper (fun fs -> ("schema", Json.Str "bogus/9") :: List.remove_assoc "schema" fs))
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong schema accepted");
  (match
     Sweep_report.validate
       (tamper (fun fs -> ("runs", Json.Int 1) :: List.remove_assoc "runs" fs))
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "runs=1 accepted")

(* ---------- report-consistency invariants ---------- *)

let metric name samples =
  let open Tussle_prelude.Stats in
  {
    Sweep_report.name;
    samples;
    mean = mean samples;
    stddev = sample_stddev samples;
    ci_lo = fst (Test.mean_ci samples);
    ci_hi = snd (Test.mean_ci samples);
  }

let consistent_report () =
  let m = metric "m" [| 1.0; 2.0; 3.0; 4.0 |] in
  Sweep_report.make ~sweep_seed:1 ~runs:4
    [
      {
        Sweep_report.id = "E1";
        title = "t";
        runs = 4;
        metrics = [ m ];
        verdicts = [];
      };
    ]

let names_of vs = List.map (fun v -> v.Invariant.invariant) vs

let test_invariants_clean () =
  Alcotest.(check (list string)) "consistent report is clean" []
    (names_of (Invariant.check_report (consistent_report ())));
  (* and the real driver's artifact is too *)
  let r, _ = run_synthetic ~runs:6 () in
  Alcotest.(check (list string)) "driver report is clean" []
    (names_of (Invariant.check_report r))

let with_metric f =
  let r = consistent_report () in
  match r.Sweep_report.experiments with
  | [ e ] ->
    {
      r with
      Sweep_report.experiments =
        [ { e with Sweep_report.metrics = List.map f e.Sweep_report.metrics } ];
    }
  | _ -> assert false

let test_invariant_n_mismatch () =
  let bad = with_metric (fun m -> { m with Sweep_report.samples = [| 1.0; 2.0 |] }) in
  Alcotest.(check bool) "samples/runs mismatch flagged" true
    (List.mem "sweep-samples-match-runs" (names_of (Invariant.check_report bad)))

let test_invariant_ci_brackets () =
  let bad = with_metric (fun m -> { m with Sweep_report.ci_hi = m.Sweep_report.mean -. 1.0 }) in
  Alcotest.(check bool) "CI not bracketing flagged" true
    (List.mem "sweep-ci-brackets-mean" (names_of (Invariant.check_report bad)))

let test_invariant_mean_mismatch () =
  let bad =
    with_metric (fun m ->
        { m with Sweep_report.mean = m.Sweep_report.mean +. 0.5;
                 ci_hi = m.Sweep_report.ci_hi +. 1.0 })
  in
  Alcotest.(check bool) "recorded mean vs samples flagged" true
    (List.mem "sweep-mean-matches-samples" (names_of (Invariant.check_report bad)))

let test_invariant_non_finite () =
  let bad =
    with_metric (fun m ->
        let s = Array.copy m.Sweep_report.samples in
        s.(0) <- Float.nan;
        { m with Sweep_report.samples = s })
  in
  Alcotest.(check bool) "non-finite sample flagged" true
    (List.mem "sweep-stats-well-formed" (names_of (Invariant.check_report bad)));
  let bad2 = with_metric (fun m -> { m with Sweep_report.stddev = -1.0 }) in
  Alcotest.(check bool) "negative stddev flagged" true
    (List.mem "sweep-stats-well-formed" (names_of (Invariant.check_report bad2)))

let test_invariant_registry_names () =
  Alcotest.(check (list string)) "registry order"
    [
      "sweep-samples-match-runs"; "sweep-ci-brackets-mean";
      "sweep-mean-matches-samples"; "sweep-stats-well-formed";
    ]
    Invariant.report_names

(* ---------- fault isolation ---------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_probe_failure_isolated () =
  let bad = synthetic ~id:"BAD" ~probe_exn:true () in
  let good = synthetic ~id:"GOOD" () in
  let r, errors =
    Driver.run_sweep ~domains:1 ~seed:1031 ~runs:4 ~alpha:0.01 [ bad; good ]
  in
  Alcotest.(check bool) "errors reported" true (errors <> []);
  List.iter
    (fun e -> Alcotest.(check string) "error names the experiment" "BAD" e.Driver.exp_id)
    errors;
  (match r.Sweep_report.experiments with
  | [ e ] -> Alcotest.(check string) "good experiment survives" "GOOD" e.Sweep_report.id
  | l -> Alcotest.failf "expected 1 surviving experiment, got %d" (List.length l));
  Alcotest.(check bool) "error message mentions the exception" true
    (List.exists (fun e -> contains (Driver.error_string e) "boom") errors)

let test_judge_unknown_metric () =
  let e = synthetic ~id:"JUDGE" ~judge_metric:"zz" () in
  let r, errors = Driver.run_sweep ~domains:1 ~seed:1031 ~runs:4 ~alpha:0.01 [ e ] in
  Alcotest.(check int) "experiment dropped" 0 (List.length r.Sweep_report.experiments);
  match errors with
  | [ err ] -> Alcotest.(check string) "error owner" "JUDGE" err.Driver.exp_id
  | l -> Alcotest.failf "expected 1 error, got %d" (List.length l)

let test_bad_args () =
  Alcotest.check_raises "runs < 2"
    (Invalid_argument "Driver.run_sweep: runs must be >= 2") (fun () ->
      ignore (Driver.run_sweep ~seed:1 ~runs:1 ~alpha:0.01 []));
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Driver.run_sweep: alpha must be in (0, 1)") (fun () ->
      ignore (Driver.run_sweep ~seed:1 ~runs:2 ~alpha:1.0 []))

let test_alpha_controls_pass () =
  (* borderline p: make a weak effect, then check the pass flag tracks
     alpha rather than a hardcoded threshold *)
  let e = synthetic () in
  let strict, _ = Driver.run_sweep ~domains:1 ~seed:1031 ~runs:4 ~alpha:1e-12 [ e ] in
  let lax, _ = Driver.run_sweep ~domains:1 ~seed:1031 ~runs:4 ~alpha:0.5 [ e ] in
  let verdict r =
    match r.Sweep_report.experiments with
    | [ e ] -> List.hd e.Sweep_report.verdicts
    | _ -> Alcotest.fail "expected 1 experiment"
  in
  let vs = verdict strict and vl = verdict lax in
  Alcotest.(check (float 1e-12)) "same p-value" vs.Sweep_report.pvalue vl.Sweep_report.pvalue;
  Alcotest.(check bool) "pass = p < alpha (strict)"
    (vs.Sweep_report.pvalue < 1e-12) vs.Sweep_report.pass;
  Alcotest.(check bool) "pass = p < alpha (lax)"
    (vl.Sweep_report.pvalue < 0.5) vl.Sweep_report.pass

let () =
  Alcotest.run "sweep"
    [
      ( "determinism",
        [
          Alcotest.test_case "seed derivation" `Quick test_seed_derivation;
          Alcotest.test_case "driver identical across domains" `Quick
            test_driver_deterministic_across_domains;
          Alcotest.test_case "E29 sweep identical across domains" `Quick
            test_real_experiments_deterministic;
          Alcotest.test_case "samples seed-derived in run order" `Quick
            test_samples_are_seed_derived;
        ] );
      ( "report",
        [
          Alcotest.test_case "round-trip + validate" `Quick test_report_roundtrip;
          Alcotest.test_case "infinite statistic round-trip" `Quick
            test_report_infinite_statistic_roundtrip;
          Alcotest.test_case "validate rejects tampering" `Quick
            test_validate_rejects;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean reports pass" `Quick test_invariants_clean;
          Alcotest.test_case "n mismatch" `Quick test_invariant_n_mismatch;
          Alcotest.test_case "CI must bracket mean" `Quick test_invariant_ci_brackets;
          Alcotest.test_case "mean must match samples" `Quick
            test_invariant_mean_mismatch;
          Alcotest.test_case "non-finite flagged" `Quick test_invariant_non_finite;
          Alcotest.test_case "registry names" `Quick test_invariant_registry_names;
        ] );
      ( "fault isolation",
        [
          Alcotest.test_case "probe failure isolated" `Quick
            test_probe_failure_isolated;
          Alcotest.test_case "judge unknown metric" `Quick test_judge_unknown_metric;
          Alcotest.test_case "bad arguments" `Quick test_bad_args;
          Alcotest.test_case "alpha controls pass flag" `Quick
            test_alpha_controls_pass;
        ] );
    ]
