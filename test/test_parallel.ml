(* Tests for the domain-pool experiment runner: Pool.map ordering and
   fault behaviour, registry fault isolation, and byte-identical
   sequential vs. parallel batteries. *)

module Pool = Tussle_prelude.Pool
module Experiment = Tussle_experiments.Experiment
module Registry = Tussle_experiments.Registry

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec search i =
    i + m <= n && (String.sub haystack i m = needle || search (i + 1))
  in
  search 0

(* ---------- Pool ---------- *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved with %d domains" domains)
        expected
        (Pool.map ~domains (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_pool_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map ~domains:4 succ [ 1 ]);
  Alcotest.(check (list int)) "more domains than items" [ 2; 3 ]
    (Pool.map ~domains:16 succ [ 1; 2 ]);
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Pool.map ~domains:0 succ [ 1 ]))

let test_pool_default_domains () =
  let d = Pool.default_domains () in
  Alcotest.(check bool) "within [1,8]" true (d >= 1 && d <= 8)

let test_domains_of_string () =
  (* Shared by bench/main.ml and the CLI's --domains flag: garbage must
     produce an error (the entry points exit 2), never a silent
     fall-through to the default domain count. *)
  let ok s expected =
    match Pool.domains_of_string s with
    | Ok d -> Alcotest.(check int) (Printf.sprintf "parse %S" s) expected d
    | Error msg -> Alcotest.failf "rejected %S: %s" s msg
  in
  let rejected s =
    match Pool.domains_of_string s with
    | Error _ -> ()
    | Ok d -> Alcotest.failf "accepted %S as %d" s d
  in
  ok "1" 1;
  ok "4" 4;
  ok " 8 " 8;
  List.iter rejected [ "nope"; ""; "0"; "-3"; "4.5"; "2x"; "⑂" ]

let test_pool_exception_first () =
  (* all items still run; the earliest failing input's exception wins *)
  let f x = if x mod 10 = 0 then failwith (string_of_int x) else x in
  Alcotest.check_raises "earliest failure wins" (Failure "10") (fun () ->
      ignore (Pool.map ~domains:4 f (List.init 35 (fun i -> i + 1))))

(* ---------- registry fault isolation ---------- *)

let boom =
  {
    Experiment.id = "EX";
    title = "deliberately raising (fault-isolation test)";
    paper_claim = "a broken experiment must not abort the battery";
    run = (fun () -> failwith "kaboom");
    sweep = None;
  }

let fast id =
  match Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "missing %s" id

let test_failed_isolated () =
  let batch = [ fast "E4"; boom; fast "E23" ] in
  List.iter
    (fun domains ->
      match Registry.run_list ~domains batch with
      | [ a; b; c ] ->
        Alcotest.(check bool) "first held" true (Experiment.held a);
        Alcotest.(check bool) "third held" true (Experiment.held c);
        (match b.Experiment.status with
        | Experiment.Failed msg ->
          Alcotest.(check bool) "exception message kept" true
            (contains msg "kaboom")
        | Experiment.Held | Experiment.Violated ->
          Alcotest.fail "expected Failed status");
        Alcotest.(check bool) "failure rendered" true
          (contains b.Experiment.output "FAILED (uncaught:")
      | _ -> Alcotest.fail "expected three outcomes")
    [ 1; 3 ]

(* ---------- determinism across domain counts ---------- *)

let test_parallel_battery_identical () =
  (* cheap subset of the battery; bench/main.ml exercises all 28 *)
  let batch =
    List.map fast [ "E4"; "E6"; "E7"; "E8"; "E19"; "E23"; "E25"; "E26" ]
  in
  let render outcomes =
    String.concat "\n" (List.map (fun o -> o.Experiment.output) outcomes)
  in
  let sequential = render (Registry.run_list ~domains:1 batch) in
  let parallel = render (Registry.run_list ~domains:4 batch) in
  Alcotest.(check string) "byte-identical output" sequential parallel

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "default domains" `Quick test_pool_default_domains;
          Alcotest.test_case "domains flag parsing" `Quick
            test_domains_of_string;
          Alcotest.test_case "first exception wins" `Quick
            test_pool_exception_first;
        ] );
      ( "registry",
        [
          Alcotest.test_case "failed experiment isolated" `Slow
            test_failed_isolated;
          Alcotest.test_case "seq/parallel byte-identical" `Slow
            test_parallel_battery_identical;
        ] );
    ]
