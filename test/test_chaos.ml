(* Tests for tussle.chaos: the invariant registry, the seeded sweep
   (clean, domain-invariant, seed-sensitive), the delta-debugging
   shrinker on a deliberately planted violation, the replayable corpus,
   and the guard that no enumeration path ever picks up the watchdog
   hang probe. *)

module Rng = Tussle_prelude.Rng
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Topology = Tussle_netsim.Topology
module Traffic = Tussle_netsim.Traffic
module Selfheal = Tussle_routing.Selfheal
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject
module Invariant = Tussle_chaos.Invariant
module Scenario = Tussle_chaos.Scenario
module Sweep = Tussle_chaos.Sweep
module Shrink = Tussle_chaos.Shrink
module Corpus = Tussle_chaos.Corpus
module Explain = Tussle_chaos.Explain
module Flight = Tussle_obs.Flight
module Obs_json = Tussle_obs.Json
module Experiment = Tussle_experiments.Experiment
module Registry = Tussle_experiments.Registry

(* ---------- the invariant registry on hand-built ledgers ---------- *)

let clean_obs =
  {
    Invariant.injected = 10;
    delivered = 7;
    dropped = 3;
    in_flight = 0;
    engine_pending = 0;
    clock_start = 0.0;
    clock_end = 5.0;
    drops_by_reason = [ ("link-down", 2); ("no-route", 1) ];
    link_fault_drops = 2;
    link_corrupted = 0;
    transfers = [ Invariant.Completed; Invariant.Abandoned ];
    link_gray_drops = 0;
    engine_high_water = 4;
    reconvergences = 1;
    covert_budget = None;
    fault_transitions = None;
  }

let violated_names obs =
  List.map (fun v -> v.Invariant.invariant) (Invariant.check obs)

let test_invariants_on_ledgers () =
  Alcotest.(check (list string)) "clean ledger passes" [] (violated_names clean_obs);
  Alcotest.(check (list string)) "lost packet" [ "packet-conservation" ]
    (violated_names { clean_obs with Invariant.delivered = 6 });
  Alcotest.(check (list string)) "wedged engine" [ "engine-drained" ]
    (violated_names { clean_obs with Invariant.engine_pending = 3 });
  Alcotest.(check (list string)) "clock ran backwards" [ "monotone-clock" ]
    (violated_names { clean_obs with Invariant.clock_end = -1.0 });
  Alcotest.(check (list string)) "unattributed drop" [ "drop-accounting" ]
    (violated_names { clean_obs with Invariant.link_fault_drops = 5 });
  Alcotest.(check (list string)) "hung transfer" [ "no-hung-transfer" ]
    (violated_names
       { clean_obs with Invariant.transfers = [ Invariant.Active ] });
  (* the covert-drop ledger: link-counted gray drops must surface as
     attributed gray-loss outcomes ... *)
  Alcotest.(check (list string)) "unattributed gray drop"
    [ "no-silent-blackhole" ]
    (violated_names { clean_obs with Invariant.link_gray_drops = 2 });
  (* ... and a declared covert budget caps gray + blackholed damage *)
  let covert_obs =
    { clean_obs with
      Invariant.drops_by_reason = [ ("gray-loss", 2); ("blackholed", 1) ];
      link_gray_drops = 2;
      link_fault_drops = 0;
      covert_budget = Some 2 }
  in
  Alcotest.(check (list string)) "covert budget busted"
    [ "no-silent-blackhole" ]
    (violated_names covert_obs);
  Alcotest.(check (list string)) "covert budget honored" []
    (violated_names { covert_obs with Invariant.covert_budget = Some 3 });
  Alcotest.(check (list string)) "no claim, no check" []
    (violated_names { covert_obs with Invariant.covert_budget = None });
  (* a ttl death without any reconvergence means static tables looped *)
  let loop_obs =
    { clean_obs with
      Invariant.drops_by_reason = [ ("ttl-exceeded", 3) ];
      link_fault_drops = 0;
      reconvergences = 0 }
  in
  Alcotest.(check (list string)) "static forwarding loop"
    [ "no-forwarding-loop" ]
    (violated_names loop_obs);
  Alcotest.(check (list string)) "transient loop during healing is fine" []
    (violated_names { loop_obs with Invariant.reconvergences = 1 });
  (* reconvergence churn is bounded by the plan's transition count *)
  Alcotest.(check (list string)) "reconvergence churn"
    [ "damping-bounds-reconvergence" ]
    (violated_names
       { clean_obs with
         Invariant.reconvergences = 9;
         fault_transitions = Some 1 });
  Alcotest.(check (list string)) "churn within bound" []
    (violated_names
       { clean_obs with
         Invariant.reconvergences = 8;
         fault_transitions = Some 1 });
  Alcotest.(check int) "registry has eight invariants" 8
    (List.length Invariant.names)

let test_invariants_on_real_run () =
  (* a real scenario under a nasty plan: every invariant holds *)
  let s = Scenario.line_transfer in
  let plan =
    [
      Plan.Link_down { u = 1; v = 2; w = Plan.window 0.1 2.0 };
      Plan.Link_loss { u = 0; v = 1; w = Plan.window 0.5 4.0; prob = 0.3 };
      Plan.Link_corrupt { u = 2; v = 3; w = Plan.window 1.0 6.0; prob = 0.2 };
    ]
  in
  let obs = s.Scenario.run ~seed:11 ~plan in
  Alcotest.(check (list string)) "no violations" [] (violated_names obs);
  Alcotest.(check bool) "faults actually bit" true
    (obs.Invariant.dropped > 0)

(* ---------- the sweep: clean, domain-invariant, seed-sensitive ---------- *)

let render_runs runs =
  String.concat "\n"
    (List.map
       (fun (r : Sweep.run) ->
         Printf.sprintf "%d|%s|%d|%d|%s|%s" r.Sweep.index r.Sweep.scenario
           r.Sweep.seed r.Sweep.episodes
           (Plan.to_string r.Sweep.plan)
           (String.concat ";"
              (List.map Invariant.violation_string r.Sweep.violations)))
       runs)

let test_sweep_clean_and_deterministic () =
  let a = Sweep.run_sweep ~domains:1 ~seed:42 ~runs:60 () in
  Alcotest.(check int) "60 runs" 60 (List.length a);
  Alcotest.(check int) "zero violations" 0 (List.length (Sweep.failures a));
  Alcotest.(check bool) "every scenario exercised" true
    (List.for_all
       (fun (s : Scenario.t) ->
         List.exists (fun r -> r.Sweep.scenario = s.Scenario.name) a)
       Scenario.all);
  let b = Sweep.run_sweep ~domains:2 ~seed:42 ~runs:60 () in
  Alcotest.(check string) "identical across domain counts" (render_runs a)
    (render_runs b);
  let c = Sweep.run_sweep ~domains:1 ~seed:43 ~runs:60 () in
  Alcotest.(check bool) "different seed, different sweep" true
    (render_runs a <> render_runs c)

(* ---------- planted violation -> shrink -> corpus -> replay ---------- *)

(* A deliberately broken scenario: it stops its engine at t = 1.0, so
   any episode whose window reaches past that leaves its restore event
   queued — a genuine engine-drained violation, planted on purpose.
   The real scenarios run to a far guard horizon precisely so this
   cannot happen to them. *)
let planted : Scenario.t =
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.line 2))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    Inject.install ~seed ~plan engine net;
    Engine.run ~until:1.0 engine;
    Invariant.observe ~clock_start engine net
  in
  { Scenario.name = "planted-truncated-run"; links = [ (0, 1) ];
    horizon = 4.0; run }

let culprit = Plan.Link_down { u = 0; v = 1; w = Plan.window 0.2 2.5 }

let planted_plan =
  [
    Plan.Link_loss { u = 0; v = 1; w = Plan.window 0.1 0.5; prob = 0.2 };
    culprit;
    Plan.Latency_spike { u = 0; v = 1; w = Plan.window 0.3 0.8; extra_s = 0.01 };
    Plan.Link_down { u = 0; v = 1; w = Plan.window 0.05 0.9 };
  ]

let test_shrink_planted_violation () =
  let fails = Sweep.still_fails planted ~seed:7 in
  Alcotest.(check bool) "planted plan fails" true (fails planted_plan);
  Alcotest.(check bool) "empty plan passes" false (fails []);
  let minimal = Shrink.shrink ~still_fails:fails planted_plan in
  Alcotest.(check bool) "strictly fewer episodes" true
    (List.length minimal < List.length planted_plan);
  Alcotest.(check int) "in fact 1-minimal" 1 (List.length minimal);
  Alcotest.(check bool) "kept exactly the culprit" true (minimal = [ culprit ]);
  Alcotest.(check bool) "minimal plan still fails" true (fails minimal)

let fresh_corpus_dir () =
  let stamp = Filename.temp_file "tussle-chaos" "" in
  Sys.remove stamp;
  stamp ^ ".corpus"

let test_corpus_roundtrip_and_replay () =
  let dir = fresh_corpus_dir () in
  let fails = Sweep.still_fails planted ~seed:7 in
  let minimal = Shrink.shrink ~still_fails:fails planted_plan in
  let entry =
    { Corpus.scenario = planted.Scenario.name; seed = 7; plan = minimal }
  in
  let path = Corpus.save ~dir entry in
  (match Corpus.load path with
  | Error e -> Alcotest.fail e
  | Ok e ->
    Alcotest.(check string) "scenario round-trips" entry.Corpus.scenario
      e.Corpus.scenario;
    Alcotest.(check int) "seed round-trips" entry.Corpus.seed e.Corpus.seed;
    Alcotest.(check bool) "plan round-trips" true (e.Corpus.plan = minimal);
    (* the persisted reproducer, replayed from disk, still fails *)
    Alcotest.(check bool) "replayed reproducer still fails" true
      (Invariant.check
         (planted.Scenario.run ~seed:e.Corpus.seed ~plan:e.Corpus.plan)
      <> []));
  (match Corpus.load_dir dir with
  | [ (p, Ok _) ] -> Alcotest.(check string) "listed" path p
  | other -> Alcotest.failf "expected 1 loadable entry, got %d" (List.length other));
  (* saving the same reproducer again is idempotent (same filename) *)
  let path2 = Corpus.save ~dir entry in
  Alcotest.(check string) "idempotent save" path path2;
  Alcotest.(check int) "still one file" 1 (List.length (Corpus.load_dir dir));
  (* a registered-scenario entry replays through Sweep.replay *)
  let real =
    {
      Corpus.scenario = "line-transfer";
      seed = 5;
      plan = [ Plan.Link_down { u = 1; v = 2; w = Plan.window 0.2 0.9 } ];
    }
  in
  (match Sweep.replay real with
  | Ok [] -> ()
  | Ok vs ->
    Alcotest.failf "unexpected violations: %s"
      (String.concat "; " (List.map Invariant.violation_string vs))
  | Error e -> Alcotest.fail e);
  match Sweep.replay { real with Corpus.scenario = "no-such-scenario" } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scenario must be an error"

let test_corpus_load_errors () =
  let dir = fresh_corpus_dir () in
  let write name contents =
    (match Sys.is_directory dir with
    | (exception Sys_error _) | false -> Sys.mkdir dir 0o755
    | true -> ());
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "no-header.plan" "link 0-1 down [0, 1)\n";
  write "bad-plan.plan" "scenario: line-transfer\nseed: 3\nwibble\n";
  write "invalid-plan.plan" "scenario: line-transfer\nseed: 3\nlink 2-2 down [0, 1)\n";
  let results = Corpus.load_dir dir in
  Alcotest.(check int) "three entries" 3 (List.length results);
  List.iter
    (fun (path, r) ->
      match r with
      | Ok _ -> Alcotest.failf "%s should not load" path
      | Error _ -> ())
    results

(* ---------- planted gray failure: legacy grammar is blind ---------- *)

(* A ring healed by hello-only detection, with a covert-drop budget
   declared.  Every legacy-grammar fault is overt — down / loss /
   corrupt / latency all announce themselves to the control plane or
   the ledgers — so 200 random legacy plans sail through.  One
   Gray_loss episode on the primary path violates the budget: hellos
   keep passing, the route never moves, and the link silently eats the
   flow.  The data-plane-verified config on the identical run reroutes
   within the budget.  This is the registry catching a failure class
   the old grammar could not even express. *)
let gray_blind config : Scenario.t =
  let edge = { Topology.latency = 0.005; bandwidth_bps = 1e7 } in
  let run ~seed ~plan =
    let net =
      Net.create
        (Topology.to_links (Topology.ring ~edge 6))
        (fun ~node:_ ~target:_ _ -> None)
    in
    let engine = Engine.create () in
    let clock_start = Engine.now engine in
    let heal = Selfheal.attach ~config ~until:12.0 engine net in
    Inject.install ~seed ~plan engine net;
    let gen = Traffic.create (Rng.create (seed + 1)) in
    for k = 0 to 79 do
      let at = 0.2 +. (0.1 *. float_of_int k) in
      ignore
        (Engine.schedule engine at (fun engine ->
             Net.inject net engine
               (Traffic.next_packet gen ~src:0 ~dst:2
                  ~created:(Engine.now engine) ())))
    done;
    Engine.run ~until:600.0 engine;
    Invariant.observe ~reconvergences:(Selfheal.reconvergences heal)
      ~covert_budget:16
      ~fault_transitions:(Plan.transitions plan) ~clock_start engine net
  in
  { Scenario.name = "gray-blind";
    links = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ];
    horizon = 10.0; run }

let gray_culprit_plan =
  [ Plan.Gray_loss { u = 1; v = 2; w = Plan.window 0.5 9.5; prob = 0.95 } ]

let test_planted_gray_failure () =
  let hello_only = gray_blind Selfheal.default_config in
  (* the pre-gray grammar cannot trip the covert budget: 200 random
     legacy plans, all clean *)
  for seed = 1 to 200 do
    let rng = Rng.create seed in
    let plan =
      Plan.random ~extended:false rng ~links:hello_only.Scenario.links
        ~horizon:hello_only.Scenario.horizon ~episodes:3
    in
    let vs = Invariant.check (hello_only.Scenario.run ~seed ~plan) in
    if vs <> [] then
      Alcotest.failf "legacy plan (seed %d) violated: %s" seed
        (String.concat "; " (List.map Invariant.violation_string vs))
  done;
  (* one gray episode on the primary path busts it under hello-only
     healing... *)
  let vs =
    Invariant.check (hello_only.Scenario.run ~seed:3 ~plan:gray_culprit_plan)
  in
  Alcotest.(check (list string)) "gray plan busts hello-only healing"
    [ "no-silent-blackhole" ]
    (List.map (fun v -> v.Invariant.invariant) vs);
  (* ... and the data-plane-verified control plane heals the same run
     back inside the budget *)
  let verified = gray_blind Selfheal.verified_config in
  let obs = verified.Scenario.run ~seed:3 ~plan:gray_culprit_plan in
  Alcotest.(check (list string)) "verified healing stays in budget" []
    (List.map (fun v -> v.Invariant.invariant) (Invariant.check obs));
  Alcotest.(check bool) "the detector actually rerouted" true
    (obs.Invariant.reconvergences > 0)

(* ---------- no enumeration path reaches the hang probe ---------- *)

let test_hang_probe_not_swept () =
  let ids = List.map (fun e -> e.Experiment.id) Registry.all in
  Alcotest.(check bool) "E99 not in Registry.all" false (List.mem "E99" ids);
  Alcotest.(check bool) "chaos scenarios don't know it" true
    (Scenario.find "E99" = None);
  Alcotest.(check bool) "no scenario is the probe" true
    (List.for_all
       (fun (s : Scenario.t) ->
         s.Scenario.name <> "E99"
         && not (List.mem s.Scenario.name ids))
       Scenario.all);
  (* a whole sweep never touches an experiment id at all *)
  let runs = Sweep.run_sweep ~domains:1 ~seed:1 ~runs:9 () in
  Alcotest.(check bool) "sweep targets are scenarios only" true
    (List.for_all
       (fun r -> Scenario.find r.Sweep.scenario <> None)
       runs);
  (* the probe stays findable for the watchdog tests — just never enumerated *)
  match Registry.find "E99" with
  | Some e -> Alcotest.(check string) "still findable" "E99" e.Experiment.id
  | None -> Alcotest.fail "hang probe must stay findable by id"

(* ---------- explain ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let line_entry =
  {
    Corpus.scenario = "line-transfer";
    seed = 5;
    plan = [ Plan.Link_down { u = 1; v = 2; w = Plan.window 0.2 0.9 } ];
  }

let test_explain_deterministic_and_causal () =
  match (Explain.run line_entry, Explain.run line_entry) with
  | Error e, _ | _, Error e -> Alcotest.fail e
  | Ok a, Ok b ->
    Alcotest.(check string) "byte-identical narrative" a.Explain.narrative
      b.Explain.narrative;
    Alcotest.(check bool) "recorder left disabled" false (Flight.enabled ());
    Alcotest.(check bool) "names the faulted link" true
      (contains a.Explain.narrative "link 1-2");
    Alcotest.(check bool) "names the drop reason" true
      (contains a.Explain.narrative "link-down");
    Alcotest.(check bool) "attributes drops to the episode" true
      (contains a.Explain.narrative "during episode [0]");
    Alcotest.(check bool) "clean verdict on a fixed regression" true
      (a.Explain.violations = []);
    (* the flow-trace artifact validates, and survives a serializer
       round-trip *)
    let artifact = Explain.to_json a in
    (match Explain.validate_json artifact with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    (match Obs_json.parse (Obs_json.to_string artifact) with
    | Error e -> Alcotest.fail e
    | Ok j -> (
      match Explain.validate_json j with
      | Ok () -> ()
      | Error e -> Alcotest.fail e));
    (match
       Explain.validate_json (Obs_json.Obj [ ("schema", Obs_json.Str "nope") ])
     with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "bad schema tag accepted")

let test_violation_narrative () =
  (* the attachment the sweep prints for each violation: pure, so it
     can be pinned against a hand-built causal stream *)
  let ev ~seq ~sim_t ~flow ~kind ~node ~peer ~detail ~value =
    { Flight.seq; sim_t; flow; kind; node; peer; detail; value }
  in
  let events =
    [
      ev ~seq:0 ~sim_t:0.19 ~flow:3 ~kind:"inject" ~node:0 ~peer:3
        ~detail:"web" ~value:1500.0;
      ev ~seq:1 ~sim_t:0.25 ~flow:3 ~kind:"drop" ~node:1 ~peer:2
        ~detail:"link-down" ~value:0.0;
    ]
  in
  let v =
    { Invariant.invariant = "packet-conservation"; detail = "one lost" }
  in
  let s = Explain.narrative_of_violation ~entry:line_entry ~events v in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "attachment mentions %S" needle)
        true (contains s needle))
    [ "violation: packet-conservation"; "packet 3"; "DROPPED at link 1-2";
      "during episode [0]" ]

let test_explain_unknown_scenario () =
  match Explain.run { Corpus.scenario = "no-such"; seed = 1; plan = [] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scenario accepted"

let test_recorder_zero_perturbation () =
  (* the flight recorder observes the simulation; it must not change
     what the simulation does *)
  let sc =
    match Scenario.find "line-transfer" with
    | Some s -> s
    | None -> Alcotest.fail "line-transfer scenario missing"
  in
  let plan = line_entry.Corpus.plan in
  Flight.disable ();
  Flight.reset ();
  let off = sc.Scenario.run ~seed:5 ~plan in
  Flight.enable ();
  Flight.reset ();
  let on_ = sc.Scenario.run ~seed:5 ~plan in
  Flight.disable ();
  Flight.reset ();
  Alcotest.(check bool) "identical observation on vs off" true (off = on_)

let () =
  Alcotest.run "chaos"
    [
      ( "invariants",
        [
          Alcotest.test_case "hand-built ledgers" `Quick
            test_invariants_on_ledgers;
          Alcotest.test_case "real faulted run" `Quick
            test_invariants_on_real_run;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "clean + deterministic" `Slow
            test_sweep_clean_and_deterministic;
        ] );
      ( "shrink-and-corpus",
        [
          Alcotest.test_case "planted violation shrinks" `Quick
            test_shrink_planted_violation;
          Alcotest.test_case "corpus round-trip + replay" `Quick
            test_corpus_roundtrip_and_replay;
          Alcotest.test_case "planted gray failure" `Slow
            test_planted_gray_failure;
          Alcotest.test_case "corpus load errors" `Quick
            test_corpus_load_errors;
        ] );
      ( "explain",
        [
          Alcotest.test_case "deterministic causal narrative" `Quick
            test_explain_deterministic_and_causal;
          Alcotest.test_case "violation attachment" `Quick
            test_violation_narrative;
          Alcotest.test_case "unknown scenario rejected" `Quick
            test_explain_unknown_scenario;
          Alcotest.test_case "recorder never perturbs a run" `Quick
            test_recorder_zero_perturbation;
        ] );
      ( "hang-probe-guard",
        [
          Alcotest.test_case "never enumerated" `Quick
            test_hang_probe_not_swept;
        ] );
    ]
