(* Tests for tussle.routing: link-state, path-vector (Gao-Rexford),
   source routing, overlay, visibility, and the self-healing control
   plane's failover edge cases. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Topology = Tussle_netsim.Topology
module Packet = Tussle_netsim.Packet
module Traffic = Tussle_netsim.Traffic
module Middlebox = Tussle_netsim.Middlebox
module Linkstate = Tussle_routing.Linkstate
module Pathvector = Tussle_routing.Pathvector
module Sourceroute = Tussle_routing.Sourceroute
module Overlay = Tussle_routing.Overlay
module Selfheal = Tussle_routing.Selfheal
module Visibility = Tussle_routing.Visibility
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Linkstate ---------- *)

let test_linkstate_line () =
  let ls = Linkstate.compute (Topology.line 4) ~metric:`Hops in
  Alcotest.(check (option int)) "next hop" (Some 1)
    (Linkstate.next_hop ls ~node:0 ~dst:3);
  Alcotest.(check (option (list int))) "path" (Some [ 0; 1; 2; 3 ])
    (Linkstate.path ls ~src:0 ~dst:3);
  Alcotest.(check (option (float 1e-9))) "distance" (Some 3.0)
    (Linkstate.distance ls ~src:0 ~dst:3)

let test_linkstate_latency_metric () =
  let fast = { Topology.latency = 0.001; bandwidth_bps = 1e8 } in
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 { fast with Topology.latency = 0.010 };
  Graph.add_undirected g 0 2 fast;
  Graph.add_undirected g 2 1 fast;
  let ls = Linkstate.compute g ~metric:`Latency in
  Alcotest.(check (option (list int))) "low-latency detour" (Some [ 0; 2; 1 ])
    (Linkstate.path ls ~src:0 ~dst:1)

let test_linkstate_disconnected () =
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 Topology.default_edge;
  let ls = Linkstate.compute g ~metric:`Hops in
  Alcotest.(check (option int)) "no hop" None (Linkstate.next_hop ls ~node:0 ~dst:2);
  Alcotest.(check (option (float 1e-9))) "no distance" None
    (Linkstate.distance ls ~src:0 ~dst:2)

let test_linkstate_exposure () =
  let g = Topology.line 4 in
  let ls = Linkstate.compute g ~metric:`Hops in
  Alcotest.(check int) "all links flooded" (Graph.edge_count g)
    (List.length (Linkstate.visible_link_costs ls));
  check_float "exposure 1.0" 1.0
    (Visibility.linkstate_exposure ls ~total_links:(Graph.edge_count g))

(* ---------- Pathvector ---------- *)

(* helper: a plain graph where every edge is Internal (single domain) *)
let internal_graph base =
  Graph.map_edges base (fun e -> (e, Topology.Internal))

let test_pathvector_internal_reaches_all () =
  let pv = Pathvector.compute (internal_graph (Topology.ring 6)) in
  check_float "full reachability" 1.0 (Pathvector.reachability_ratio pv);
  (* shortest AS path on a 6-ring: 0 to 3 is 3 hops *)
  match Pathvector.as_path pv ~src:0 ~dst:3 with
  | Some path -> Alcotest.(check int) "path length" 3 (List.length path)
  | None -> Alcotest.fail "unreachable"

let two_tier_fixture seed =
  let rng = Rng.create seed in
  Topology.two_tier rng ~transits:3 ~accesses:4 ~hosts_per_access:2
    ~multihoming:2

let test_pathvector_two_tier_reachability () =
  let tt = two_tier_fixture 11 in
  let pv = Pathvector.compute tt.Topology.graph in
  check_float "all pairs reachable" 1.0 (Pathvector.reachability_ratio pv)

(* Gao-Rexford: no valley-free violation — once a path goes down (to a
   customer) it never goes up (to a provider) again, and at most one
   peer edge is crossed. *)
let valley_free g src path =
  let rel u v =
    match Graph.find_edge g u v with
    | Some (_, r) -> r
    | None -> Alcotest.fail "path uses missing edge"
  in
  let rec walk prev state = function
    | [] -> true
    | hop :: rest ->
      let r = rel prev hop in
      let ok, state' =
        match (r, state) with
        | Topology.Customer_of, `Up -> (true, `Up) (* going up to provider *)
        | Topology.Customer_of, (`Peered | `Down) -> (false, `Down)
        | Topology.Peer_with, `Up -> (true, `Peered)
        | Topology.Peer_with, (`Peered | `Down) -> (false, `Down)
        | Topology.Provider_of, _ -> (true, `Down) (* going down to customer *)
        | Topology.Internal, s -> (true, s)
      in
      ok && walk hop state' rest
  in
  walk src `Up path

let test_pathvector_valley_free () =
  let tt = two_tier_fixture 13 in
  let g = tt.Topology.graph in
  let pv = Pathvector.compute g in
  List.iter
    (fun (src, _dst, path) ->
      Alcotest.(check bool) "valley-free" true (valley_free g src path))
    (Pathvector.visible_paths pv)

let test_pathvector_prefers_customer_routes () =
  (* diamond: 0 is provider of 1 and 2; 3 is customer of 1 and 2; also
     0 peers with 3 via nothing... build: dst 3 reachable from 0 via
     customer chain.  Check class at 0 for dst 3 is customer. *)
  let g = Graph.create 4 in
  let e = Topology.default_edge in
  (* 1 and 2 are customers of 0 *)
  Graph.add_edge g 1 0 (e, Topology.Customer_of);
  Graph.add_edge g 0 1 (e, Topology.Provider_of);
  Graph.add_edge g 2 0 (e, Topology.Customer_of);
  Graph.add_edge g 0 2 (e, Topology.Provider_of);
  (* 3 is customer of 1 *)
  Graph.add_edge g 3 1 (e, Topology.Customer_of);
  Graph.add_edge g 1 3 (e, Topology.Provider_of);
  let pv = Pathvector.compute g in
  (match Pathvector.route_at pv ~node:0 ~dst:3 with
  | Some r ->
    Alcotest.(check string) "class" "customer"
      (Pathvector.class_to_string r.Pathvector.cls)
  | None -> Alcotest.fail "no route");
  (* 2 reaches 3 via its provider 0 *)
  match Pathvector.route_at pv ~node:2 ~dst:3 with
  | Some r ->
    Alcotest.(check string) "via provider" "provider"
      (Pathvector.class_to_string r.Pathvector.cls);
    Alcotest.(check (list int)) "path" [ 0; 1; 3 ] r.Pathvector.as_path
  | None -> Alcotest.fail "no provider route"

let test_pathvector_peer_not_transited () =
  (* two peered transits, each with a customer: customer of A reaches
     customer of B through the peer link (customer->provider->peer->
     customer: valley-free).  But peer A must NOT reach peer B's
     *other peer* via B.  Build three mutually unpeered transits:
     A - B peered, B - C peered, A and C not peered.  A must not reach
     C (B does not export peer routes to peers). *)
  let g = Graph.create 3 in
  let e = Topology.default_edge in
  Graph.add_edge g 0 1 (e, Topology.Peer_with);
  Graph.add_edge g 1 0 (e, Topology.Peer_with);
  Graph.add_edge g 1 2 (e, Topology.Peer_with);
  Graph.add_edge g 2 1 (e, Topology.Peer_with);
  let pv = Pathvector.compute g in
  Alcotest.(check bool) "A sees B" true (Pathvector.reachable pv ~src:0 ~dst:1);
  Alcotest.(check bool) "A cannot transit B to C" false
    (Pathvector.reachable pv ~src:0 ~dst:2)

let test_pathvector_export_filter () =
  (* a refusal filter that stops node 1 from exporting anything to 0 *)
  let g = internal_graph (Topology.line 3) in
  let filter u w _r = not (u = 1 && w = 0) in
  let pv = Pathvector.compute ~export_filter:filter g in
  Alcotest.(check bool) "0 cut off from 2" false
    (Pathvector.reachable pv ~src:0 ~dst:2);
  Alcotest.(check bool) "reverse still works" true
    (Pathvector.reachable pv ~src:2 ~dst:0)

let test_pathvector_visibility_less_than_linkstate () =
  let tt = two_tier_fixture 17 in
  let g = tt.Topology.graph in
  let pv = Pathvector.compute g in
  let total = Graph.edge_count g in
  (* from any single vantage point, path-vector reveals only the chosen
     paths; link-state floods everything to everyone *)
  let host = List.hd tt.Topology.hosts in
  let pv_exposure = Visibility.pathvector_exposure_at pv ~node:host ~total_links:total in
  Alcotest.(check bool) "path-vector hides some links" true (pv_exposure < 1.0);
  Alcotest.(check bool) "exposes something" true (pv_exposure > 0.0);
  Alcotest.(check int) "no levers in link-state" 0
    (Visibility.linkstate_policy_levers
       (Linkstate.compute (Topology.line 3) ~metric:`Hops));
  Alcotest.(check int) "one lever per adjacency" total
    (Visibility.pathvector_policy_levers g)

let test_pathvector_converges () =
  let tt = two_tier_fixture 19 in
  let pv = Pathvector.compute tt.Topology.graph in
  Alcotest.(check bool) "few rounds" true (Pathvector.rounds_to_converge pv < 20);
  Alcotest.(check bool) "did work" true (Pathvector.updates_applied pv > 0)

(* ---------- Sourceroute ---------- *)

let test_sourceroute_refusal () =
  let mb = Sourceroute.refusal_middlebox ~paid:false in
  let routed =
    Packet.make ~source_route:[ 5 ] ~id:0 ~src:0 ~dst:9 ~created:0.0 ()
  in
  Alcotest.(check bool) "refuses unpaid" true
    (Middlebox.decide mb routed = Middlebox.Drop);
  let plain = Packet.make ~id:1 ~src:0 ~dst:9 ~created:0.0 () in
  Alcotest.(check bool) "plain passes" true
    (Middlebox.decide mb plain = Middlebox.Forward);
  let paid = Sourceroute.refusal_middlebox ~paid:true in
  Alcotest.(check bool) "paid passes" true
    (Middlebox.decide paid routed = Middlebox.Forward)

let test_sourceroute_pick () =
  Alcotest.(check (option int)) "best score" (Some 2)
    (Sourceroute.pick_transit ~score:(fun t -> float_of_int t) [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "tie lowest id" (Some 0)
    (Sourceroute.pick_transit ~score:(fun _ -> 1.0) [ 2; 0; 1 ]);
  Alcotest.(check (option int)) "empty" None
    (Sourceroute.pick_transit ~score:(fun _ -> 1.0) [])

(* ---------- Overlay ---------- *)

let overlay_fixture () =
  (* triangle with a slow direct edge and a fast two-leg detour; the
     underlay routes by hop count, so it insists on the slow direct
     link — exactly the gap RON exploits *)
  let g = Graph.create 3 in
  let mk l = { Topology.latency = l; bandwidth_bps = 1e8 } in
  Graph.add_undirected g 0 1 (mk 0.100);
  Graph.add_undirected g 0 2 (mk 0.010);
  Graph.add_undirected g 2 1 (mk 0.010);
  let ls = Linkstate.compute g ~metric:`Hops in
  fun src dst -> Overlay.measured_latency ls g ~src ~dst

let test_overlay_best_relay () =
  let latency = overlay_fixture () in
  match Overlay.best_relay ~latency ~candidates:[ 2 ] ~src:0 ~dst:1 with
  | Some (relay, lat) ->
    Alcotest.(check int) "relay" 2 relay;
    check_float "two-leg latency" 0.020 lat
  | None -> Alcotest.fail "no relay"

let test_overlay_improvement () =
  let latency = overlay_fixture () in
  check_float "underlay picks slow hop-shortest path" 0.100
    (Option.get (latency 0 1));
  match Overlay.latency_improvement ~latency ~candidates:[ 2 ] ~src:0 ~dst:1 with
  | Some gain -> check_float "gain" 0.080 gain
  | None -> Alcotest.fail "no improvement computed"

let test_overlay_recovery () =
  (* direct path 0->2 blocked, but 1 relays *)
  let can_reach a b = not (a = 0 && b = 2) in
  Alcotest.(check (option int)) "relay found" (Some 1)
    (Overlay.reachable_via ~can_reach ~candidates:[ 1 ] ~src:0 ~dst:2);
  check_float "full recovery" 1.0
    (Overlay.recovery_ratio ~can_reach ~candidates:[ 1 ]
       ~pairs:[ (0, 2); (1, 2) ]);
  (* no candidates: nothing recovered *)
  check_float "no relay no recovery" 0.0
    (Overlay.recovery_ratio ~can_reach ~candidates:[] ~pairs:[ (0, 2) ])


(* ---------- Multicast ---------- *)

module Multicast = Tussle_routing.Multicast

let test_multicast_tree_on_star () =
  (* star: source at hub; tree edge count = number of receivers *)
  let g = Topology.star 6 in
  let receivers = [ 1; 2; 3; 4; 5 ] in
  let tree = Multicast.shortest_path_tree g ~source:0 ~receivers in
  Alcotest.(check int) "tree edges" 5 (Multicast.multicast_link_load tree);
  Alcotest.(check (list int)) "all covered" receivers (Multicast.covered tree);
  (* unicast also crosses 5 links here: no sharing on a star *)
  Alcotest.(check int) "unicast" 5
    (Multicast.unicast_link_load g ~source:0 ~receivers);
  check_float "no saving on a star" 0.0
    (Multicast.savings_ratio g ~source:0 ~receivers)

let test_multicast_tree_on_line () =
  (* line 0-1-2-3: multicast to [1;2;3] uses 3 links, unicast 1+2+3=6 *)
  let g = Topology.line 4 in
  let receivers = [ 1; 2; 3 ] in
  let tree = Multicast.shortest_path_tree g ~source:0 ~receivers in
  Alcotest.(check int) "shared path" 3 (Multicast.multicast_link_load tree);
  Alcotest.(check int) "unicast" 6
    (Multicast.unicast_link_load g ~source:0 ~receivers);
  check_float "saving" 0.5 (Multicast.savings_ratio g ~source:0 ~receivers);
  (* interior nodes 0,1,2 hold state *)
  Alcotest.(check int) "router state" 3 (Multicast.router_state tree)

let test_multicast_unreachable_receiver () =
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 Topology.default_edge;
  let tree = Multicast.shortest_path_tree g ~source:0 ~receivers:[ 1; 2 ] in
  Alcotest.(check (list int)) "only reachable" [ 1 ] (Multicast.covered tree)

let test_multicast_savings_grow_with_group () =
  let rng = Rng.create 15 in
  let g = Topology.barabasi_albert rng 120 2 in
  let pool = Array.init 119 (fun i -> i + 1) in
  let saving size =
    let receivers = Array.to_list (Rng.sample rng size pool) in
    Multicast.savings_ratio g ~source:0 ~receivers
  in
  let small = saving 5 and large = saving 80 in
  Alcotest.(check bool) "bigger group saves more" true (large > small)

let test_multicast_deployment_ledger () =
  let base =
    { Multicast.groups = 10.0; state_cost = 1.0; bandwidth_value = 3.0;
      payment = false }
  in
  Alcotest.(check bool) "no payment no deploy" false (Multicast.deploys base);
  check_float "pure cost" (-10.0) (Multicast.isp_profit base);
  let paid = { base with Multicast.payment = true } in
  Alcotest.(check bool) "payment deploys" true (Multicast.deploys paid);
  check_float "profit" 20.0 (Multicast.isp_profit paid)

(* ---------- Selfheal: failover edge cases ---------- *)

(* hello 50 ms, 2 missed, 100 ms recompute throughout: detection +
   installation lands roughly 150-200 ms after a fault opens *)

let no_forwarding ~node:_ ~target:_ _ = None

let schedule_flow engine net gen ~src ~dst ~start ~interval ~count =
  for k = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         (start +. (interval *. float_of_int k))
         (fun engine ->
           Net.inject net engine
             (Traffic.next_packet gen ~src ~dst ~created:(Engine.now engine) ())))
  done

let reason_count net label =
  Option.value ~default:0 (List.assoc_opt label (Net.losses_by_reason net))

let test_selfheal_reroutes_around_outage () =
  let links = Topology.to_links (Topology.ring 6) in
  let net = Net.create links no_forwarding in
  let engine = Engine.create () in
  let heal = Selfheal.attach ~until:3.0 engine net in
  (* kill the first hop of the table's own chosen path 0 -> 3 *)
  let u, v =
    match Linkstate.path (Selfheal.table heal) ~src:0 ~dst:3 with
    | Some (a :: b :: _) -> (a, b)
    | _ -> Alcotest.fail "no initial path 0 -> 3"
  in
  Inject.install ~seed:5
    ~plan:[ Plan.Link_down { u; v; w = Plan.window 0.52 2.02 } ]
    engine net;
  let gen = Traffic.create (Rng.create 6) in
  schedule_flow engine net gen ~src:0 ~dst:3 ~start:0.1 ~interval:0.05
    ~count:40;
  (* sample the installed table mid-outage, after convergence *)
  let mid_hop = ref None in
  ignore
    (Engine.schedule engine 1.5 (fun _ ->
         mid_hop := Linkstate.next_hop (Selfheal.table heal) ~node:u ~dst:3));
  Engine.run ~until:600.0 engine;
  Alcotest.(check int) "down then up = two reconvergences" 2
    (Selfheal.reconvergences heal);
  (match Selfheal.detections heal with
  | [ (p1, `Down, t1); (p2, `Up, t2) ] ->
    Alcotest.(check bool) "watched pair detected" true (p1 = (min u v, max u v) || p1 = (u, v) || p1 = (v, u));
    Alcotest.(check bool) "same pair restored" true (p1 = p2);
    Alcotest.(check bool) "detection inside the outage" true
      (t1 > 0.52 && t1 < 0.75);
    Alcotest.(check bool) "restore detected after the window" true (t2 >= 2.02)
  | ds -> Alcotest.failf "expected down+up, got %d detections" (List.length ds));
  (match !mid_hop with
  | Some hop -> Alcotest.(check bool) "mid-outage table avoids dead link" true (hop <> v && hop <> u)
  | None -> Alcotest.fail "mid-outage table has no route from the detour node");
  Alcotest.(check bool) "most packets survive the outage" true
    (Net.delivered_count net >= 34);
  Alcotest.(check int) "every drop is attributed to the dead link"
    (Net.lost_count net)
    (reason_count net "link-down");
  Alcotest.(check int) "conservation" 40
    (Net.delivered_count net + Net.lost_count net);
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine)

let test_selfheal_midflight_packets_survive () =
  (* slow ring: a packet already on the wire when its link dies still
     arrives; the next packet fails over via the recomputed table *)
  let edge = { Topology.latency = 0.2; bandwidth_bps = 1e8 } in
  let links = Topology.to_links (Topology.ring ~edge 6) in
  let net = Net.create links no_forwarding in
  let engine = Engine.create () in
  let heal = Selfheal.attach ~until:2.5 engine net in
  let u, v =
    match Linkstate.path (Selfheal.table heal) ~src:0 ~dst:3 with
    | Some (a :: b :: _) -> (a, b)
    | _ -> Alcotest.fail "no initial path 0 -> 3"
  in
  Inject.install ~seed:5
    ~plan:[ Plan.Link_down { u; v; w = Plan.window 0.52 100.0 } ]
    engine net;
  let gen = Traffic.create (Rng.create 6) in
  (* packet A is in flight on (u, v) when the window opens at 0.52 *)
  schedule_flow engine net gen ~src:0 ~dst:3 ~start:0.45 ~interval:1.05
    ~count:2;
  Engine.run ~until:600.0 engine;
  Alcotest.(check int) "both packets delivered" 2 (Net.delivered_count net);
  Alcotest.(check int) "nothing lost" 0 (Net.lost_count net);
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine)

let test_selfheal_partition_is_clean_no_route () =
  (* a line has no alternate path: after detection the recomputed table
     must say no-route — packets drop cleanly, nothing hangs *)
  let links = Topology.to_links (Topology.line 3) in
  let net = Net.create links no_forwarding in
  let engine = Engine.create () in
  let heal = Selfheal.attach ~until:2.0 engine net in
  Inject.install ~seed:5
    ~plan:[ Plan.Link_down { u = 1; v = 2; w = Plan.window 0.52 infinity } ]
    engine net;
  let gen = Traffic.create (Rng.create 6) in
  schedule_flow engine net gen ~src:0 ~dst:2 ~start:0.1 ~interval:0.05
    ~count:36;
  Engine.run ~until:600.0 engine;
  Alcotest.(check int) "one reconvergence (never restored)" 1
    (Selfheal.reconvergences heal);
  Alcotest.(check (list (pair int int))) "believes the link down" [ (1, 2) ]
    (Selfheal.believed_down heal);
  Alcotest.(check bool) "recomputed table has no route" true
    (Linkstate.next_hop (Selfheal.table heal) ~node:0 ~dst:2 = None);
  Alcotest.(check bool) "pre-outage traffic delivered" true
    (Net.delivered_count net > 0);
  Alcotest.(check bool) "post-detection drops are clean no-route" true
    (reason_count net "no-route" > 0);
  Alcotest.(check bool) "detection-window drops hit the dead link" true
    (reason_count net "link-down" > 0);
  Alcotest.(check int) "conservation, nothing in flight" 36
    (Net.delivered_count net + Net.lost_count net);
  Alcotest.(check int) "engine drained despite infinite window" 0
    (Engine.pending engine)

let test_selfheal_flap_within_detection_window_coalesces () =
  (* two sub-detection-threshold flaps (each covers only one 50 ms
     hello, threshold is two) must not trigger any reconvergence *)
  let links = Topology.to_links (Topology.ring 6) in
  let net = Net.create links no_forwarding in
  let engine = Engine.create () in
  let heal = Selfheal.attach ~until:2.0 engine net in
  Inject.install ~seed:5
    ~plan:
      [
        Plan.Link_down { u = 0; v = 1; w = Plan.window 0.52 0.58 };
        Plan.Link_down { u = 0; v = 1; w = Plan.window 0.62 0.68 };
      ]
    engine net;
  let gen = Traffic.create (Rng.create 6) in
  schedule_flow engine net gen ~src:0 ~dst:3 ~start:0.1 ~interval:0.05
    ~count:30;
  Engine.run ~until:600.0 engine;
  Alcotest.(check int) "no reconvergence" 0 (Selfheal.reconvergences heal);
  Alcotest.(check (list (pair int int))) "nothing believed down" []
    (Selfheal.believed_down heal);
  Alcotest.(check int) "conservation" 30
    (Net.delivered_count net + Net.lost_count net);
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine)

let test_selfheal_damping_suppresses_flap_churn () =
  (* a fast flap (0.2 s phases, well above the detection threshold)
     flips the believed state on every phase edge.  Undamped, each flip
     recomputes; with damping the penalty crosses the suppress
     threshold after a few flips and the adjacency is held down until
     the flapping stops and the penalty decays *)
  let flap =
    Plan.Link_flap
      { u = 0; v = 1; w = Plan.window 0.5 4.5; period_s = 0.4; duty = 0.5 }
  in
  let run config =
    let links = Topology.to_links (Topology.ring 6) in
    let net = Net.create links no_forwarding in
    let engine = Engine.create () in
    let heal = Selfheal.attach ~config ~until:12.0 engine net in
    Inject.install ~seed:5 ~plan:[ flap ] engine net;
    Engine.run ~until:600.0 engine;
    Alcotest.(check int) "engine drained" 0 (Engine.pending engine);
    heal
  in
  let damped = run Selfheal.verified_config in
  let undamped =
    run { Selfheal.verified_config with Selfheal.damping = None }
  in
  Alcotest.(check bool) "hold-down engaged" true
    (Selfheal.suppressions damped >= 1);
  Alcotest.(check bool) "damping cuts the recompute churn" true
    (Selfheal.reconvergences damped < Selfheal.reconvergences undamped);
  Alcotest.(check (list (pair int int)))
    "released once the flapping stopped" []
    (Selfheal.believed_down damped)

let test_selfheal_slow_flap_still_reconverges () =
  (* phase edges 4 s apart: the penalty decays well below the suppress
     threshold between flips, so damping never engages and the table
     keeps tracking the link through every phase *)
  let links = Topology.to_links (Topology.ring 6) in
  let net = Net.create links no_forwarding in
  let engine = Engine.create () in
  let heal =
    Selfheal.attach ~config:Selfheal.verified_config ~until:14.0 engine net
  in
  Inject.install ~seed:5
    ~plan:
      [ Plan.Link_flap
          { u = 0; v = 1; w = Plan.window 0.5 12.5; period_s = 8.0; duty = 0.5 } ]
    engine net;
  let gen = Traffic.create (Rng.create 6) in
  schedule_flow engine net gen ~src:0 ~dst:3 ~start:0.2 ~interval:0.1 ~count:60;
  Engine.run ~until:600.0 engine;
  Alcotest.(check int) "damping never engaged" 0
    (Selfheal.suppressions heal);
  Alcotest.(check bool) "every phase edge reconverged" true
    (Selfheal.reconvergences heal >= 3);
  Alcotest.(check (list (pair int int))) "ends with the link restored" []
    (Selfheal.believed_down heal);
  Alcotest.(check bool) "healing kept the flow alive" true
    (Net.delivered_count net >= 50);
  Alcotest.(check int) "engine drained" 0 (Engine.pending engine)

let () =
  Alcotest.run "routing"
    [
      ( "linkstate",
        [
          Alcotest.test_case "line" `Quick test_linkstate_line;
          Alcotest.test_case "latency metric" `Quick test_linkstate_latency_metric;
          Alcotest.test_case "disconnected" `Quick test_linkstate_disconnected;
          Alcotest.test_case "full exposure" `Quick test_linkstate_exposure;
        ] );
      ( "pathvector",
        [
          Alcotest.test_case "internal reaches all" `Quick
            test_pathvector_internal_reaches_all;
          Alcotest.test_case "two-tier reachability" `Quick
            test_pathvector_two_tier_reachability;
          Alcotest.test_case "valley-free" `Quick test_pathvector_valley_free;
          Alcotest.test_case "customer preference" `Quick
            test_pathvector_prefers_customer_routes;
          Alcotest.test_case "peers not transited" `Quick
            test_pathvector_peer_not_transited;
          Alcotest.test_case "export filter" `Quick test_pathvector_export_filter;
          Alcotest.test_case "visibility vs linkstate" `Quick
            test_pathvector_visibility_less_than_linkstate;
          Alcotest.test_case "convergence" `Quick test_pathvector_converges;
        ] );
      ( "sourceroute",
        [
          Alcotest.test_case "refusal middlebox" `Quick test_sourceroute_refusal;
          Alcotest.test_case "pick transit" `Quick test_sourceroute_pick;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "star tree" `Quick test_multicast_tree_on_star;
          Alcotest.test_case "line tree" `Quick test_multicast_tree_on_line;
          Alcotest.test_case "unreachable receiver" `Quick
            test_multicast_unreachable_receiver;
          Alcotest.test_case "savings grow" `Quick
            test_multicast_savings_grow_with_group;
          Alcotest.test_case "deployment ledger" `Quick
            test_multicast_deployment_ledger;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "best relay" `Quick test_overlay_best_relay;
          Alcotest.test_case "improvement" `Quick test_overlay_improvement;
          Alcotest.test_case "recovery" `Quick test_overlay_recovery;
        ] );
      ( "selfheal",
        [
          Alcotest.test_case "reroutes around an outage" `Quick
            test_selfheal_reroutes_around_outage;
          Alcotest.test_case "mid-flight packets survive" `Quick
            test_selfheal_midflight_packets_survive;
          Alcotest.test_case "partition is clean no-route" `Quick
            test_selfheal_partition_is_clean_no_route;
          Alcotest.test_case "flap inside detection window" `Quick
            test_selfheal_flap_within_detection_window_coalesces;
          Alcotest.test_case "damping suppresses flap churn" `Quick
            test_selfheal_damping_suppresses_flap_churn;
          Alcotest.test_case "slow flap still reconverges" `Quick
            test_selfheal_slow_flap_still_reconverges;
        ] );
    ]
