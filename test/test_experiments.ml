(* Tests for the experiment registry: ids, lookup, and the shape checks
   of the cheap experiments (the full battery runs in the bench
   harness). *)

module Experiment = Tussle_experiments.Experiment
module Registry = Tussle_experiments.Registry

let test_registry_complete () =
  Alcotest.(check int) "thirty experiments" 30 (List.length Registry.all);
  let ids = List.map (fun e -> e.Experiment.id) Registry.all in
  Alcotest.(check (list string)) "ids in order"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11";
      "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E18"; "E19"; "E20"; "E21";
      "E22"; "E23"; "E24"; "E25"; "E26"; "E27"; "E28"; "E29"; "E30" ]
    ids

let test_registry_find () =
  (match Registry.find "e4" with
  | Some e -> Alcotest.(check string) "case-insensitive" "E4" e.Experiment.id
  | None -> Alcotest.fail "lookup failed");
  (* E99 is the watchdog hang probe: findable so the CLI can run it,
     but deliberately kept out of [Registry.all] *)
  (match Registry.find "E99" with
  | Some e ->
    Alcotest.(check string) "hang probe" "E99" e.Experiment.id;
    Alcotest.(check bool) "not in the battery" false
      (List.exists (fun e -> e.Experiment.id = "E99") Registry.all)
  | None -> Alcotest.fail "hang probe must resolve");
  Alcotest.(check bool) "unknown" true (Registry.find "E0" = None)

let test_metadata_nonempty () =
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.Experiment.id ^ " title") true
        (String.length e.Experiment.title > 10);
      Alcotest.(check bool) (e.Experiment.id ^ " claim") true
        (String.length e.Experiment.paper_claim > 40))
    Registry.all

(* shape checks of the fast experiments (sub-second each) *)
let shape_test id () =
  match Registry.find id with
  | None -> Alcotest.failf "missing %s" id
  | Some e ->
    let _body, held = e.Experiment.run () in
    Alcotest.(check bool) (id ^ " shape holds") true held

let fast_ids =
  [ "E4"; "E6"; "E7"; "E8"; "E11"; "E14"; "E15"; "E16"; "E18"; "E19"; "E20";
    "E21"; "E22"; "E23"; "E24"; "E25"; "E26"; "E27"; "E28"; "E29"; "E30" ]

let test_render_wraps () =
  match Registry.find "E6" with
  | None -> Alcotest.fail "missing E6"
  | Some e ->
    let body, _ = Experiment.render e in
    Alcotest.(check bool) "has header" true
      (String.length body > 0
      && String.sub body 0 5 = "## E6");
    Alcotest.(check bool) "has shape line" true
      (let needle = "shape check:" in
       let n = String.length body and m = String.length needle in
       let rec search i =
         i + m <= n && (String.sub body i m = needle || search (i + 1))
       in
       search 0)

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "metadata" `Quick test_metadata_nonempty;
          Alcotest.test_case "render wraps" `Quick test_render_wraps;
        ] );
      ( "shape-checks",
        List.map
          (fun id -> Alcotest.test_case (id ^ " holds") `Slow (shape_test id))
          fast_ids );
    ]
