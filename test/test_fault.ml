(* Tests for tussle.fault: plan validation, seeded plan generation,
   injection compiled to engine events, determinism guards (same seed =
   byte-identical output, like PR 2's telemetry guard), and the
   per-experiment watchdog. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Engine = Tussle_netsim.Engine
module Link = Tussle_netsim.Link
module Net = Tussle_netsim.Net
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Traffic = Tussle_netsim.Traffic
module Diagnosis = Tussle_netsim.Diagnosis
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject
module Seed = Tussle_fault.Seed
module Experiment = Tussle_experiments.Experiment
module Registry = Tussle_experiments.Registry

(* ---------- Plan ---------- *)

let test_plan_validation () =
  let w = Plan.window 1.0 2.0 in
  Plan.validate [ Plan.Link_down { u = 0; v = 1; w } ];
  Alcotest.check_raises "reversed window"
    (Invalid_argument "Fault plan: window must end after it starts")
    (fun () ->
      Plan.validate [ Plan.Link_down { u = 0; v = 1; w = Plan.window 2.0 1.0 } ]);
  Alcotest.check_raises "negative start"
    (Invalid_argument "Fault plan: window start must be finite and >= 0")
    (fun () ->
      Plan.validate
        [ Plan.Link_down { u = 0; v = 1; w = Plan.window (-1.0) 1.0 } ]);
  Alcotest.check_raises "probability out of range"
    (Invalid_argument "Fault plan: probability outside [0,1]") (fun () ->
      Plan.validate [ Plan.Link_loss { u = 0; v = 1; w; prob = 1.5 } ]);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Fault plan: link endpoints must differ") (fun () ->
      Plan.validate [ Plan.Link_down { u = 3; v = 3; w } ]);
  Alcotest.check_raises "negative spike"
    (Invalid_argument "Fault plan: negative latency spike") (fun () ->
      Plan.validate
        [ Plan.Latency_spike { u = 0; v = 1; w; extra_s = -0.1 } ]);
  (* an infinite window is legal: the fault never clears *)
  Plan.validate [ Plan.Node_crash { node = 2; w = Plan.always } ];
  (* the extended grammar validates too, with its own guards *)
  Plan.validate
    [
      Plan.Gray_loss { u = 0; v = 1; w; prob = 0.5 };
      Plan.Unidirectional_down { u = 1; v = 0; w };
      Plan.Link_flap { u = 0; v = 1; w; period_s = 0.25; duty = 0.5 };
      Plan.Blackhole { node = 2; w = Plan.always };
    ];
  Alcotest.check_raises "gray probability out of range"
    (Invalid_argument "Fault plan: probability outside [0,1]") (fun () ->
      Plan.validate [ Plan.Gray_loss { u = 0; v = 1; w; prob = -0.1 } ]);
  Alcotest.check_raises "uni self loop"
    (Invalid_argument "Fault plan: link endpoints must differ") (fun () ->
      Plan.validate [ Plan.Unidirectional_down { u = 2; v = 2; w } ]);
  Alcotest.check_raises "flap must have a finite window"
    (Invalid_argument "Fault plan: flap window must be finite") (fun () ->
      Plan.validate
        [ Plan.Link_flap
            { u = 0; v = 1; w = Plan.always; period_s = 0.25; duty = 0.5 } ]);
  Alcotest.check_raises "flap period must be positive"
    (Invalid_argument "Fault plan: flap period must be finite and positive")
    (fun () ->
      Plan.validate
        [ Plan.Link_flap { u = 0; v = 1; w; period_s = 0.0; duty = 0.5 } ]);
  Alcotest.check_raises "flap duty must be interior"
    (Invalid_argument "Fault plan: flap duty outside (0,1)") (fun () ->
      Plan.validate
        [ Plan.Link_flap { u = 0; v = 1; w; period_s = 0.25; duty = 1.0 } ])

let test_plan_random_deterministic () =
  let links = [ (0, 1); (1, 2) ] in
  let draw seed =
    Plan.to_string
      (Plan.random (Rng.create seed) ~links ~horizon:10.0 ~episodes:5)
  in
  Alcotest.(check string) "same seed, same plan" (draw 42) (draw 42);
  Alcotest.(check bool) "different seed, different plan" true
    (draw 42 <> draw 43);
  (* drawn plans are always well-formed *)
  Plan.validate (Plan.random (Rng.create 42) ~links ~horizon:10.0 ~episodes:50);
  Alcotest.check_raises "no links"
    (Invalid_argument "Plan.random: no links") (fun () ->
      ignore (Plan.random (Rng.create 1) ~links:[] ~horizon:1.0 ~episodes:1))

(* ---------- Plan serialization (the chaos corpus wire format) ---------- *)

let every_constructor_plan =
  [
    Plan.Link_down { u = 0; v = 1; w = Plan.window 0.0 1.0 };
    Plan.Link_loss { u = 1; v = 2; w = Plan.window 0.1 0.5; prob = 0.2 };
    Plan.Link_corrupt { u = 2; v = 3; w = Plan.window 1.0 6.0; prob = 1.0 };
    Plan.Latency_spike
      { u = 0; v = 3; w = Plan.window 0.3 0.8; extra_s = 0.0123456789 };
    Plan.Node_crash { node = 4; w = Plan.always };
    Plan.Middlebox_break { node = 5; w = Plan.window 2.0 infinity; covert = true };
    Plan.Middlebox_break
      { node = 6; w = Plan.window 0.25 0.75; covert = false };
    Plan.Gray_loss { u = 1; v = 2; w = Plan.window 0.5 2.5; prob = 0.75 };
    Plan.Unidirectional_down { u = 2; v = 1; w = Plan.window 0.0 4.0 };
    Plan.Link_flap
      { u = 0; v = 1; w = Plan.window 1.0 3.0; period_s = 0.5; duty = 0.25 };
    Plan.Blackhole { node = 3; w = Plan.window 0.5 infinity };
  ]

let test_plan_string_roundtrip_by_hand () =
  (match Plan.of_string (Plan.to_string every_constructor_plan) with
  | Ok p ->
    Alcotest.(check bool) "all constructors round-trip" true
      (p = every_constructor_plan)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* awkward floats survive the trip losslessly *)
  let nasty =
    [
      Plan.Link_loss
        { u = 0; v = 1; w = Plan.window 0.1 (0.1 +. 0.2); prob = 1.0 /. 3.0 };
      Plan.Latency_spike
        { u = 0; v = 1; w = Plan.window epsilon_float 1e17; extra_s = 1e-9 };
    ]
  in
  (match Plan.of_string (Plan.to_string nasty) with
  | Ok p -> Alcotest.(check bool) "nasty floats exact" true (p = nasty)
  | Error e -> Alcotest.failf "nasty round-trip failed: %s" e);
  (* the empty plan is one of the fixed points too *)
  (match Plan.of_string (Plan.to_string []) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty plan grew episodes"
  | Error e -> Alcotest.failf "empty round-trip failed: %s" e);
  (* blank lines and # comments are skipped: corpus headers ride along *)
  match
    Plan.of_string
      ("# corpus header\n\n" ^ Plan.to_string every_constructor_plan ^ "\n\n")
  with
  | Ok p ->
    Alcotest.(check bool) "comments + blanks skipped" true
      (p = every_constructor_plan)
  | Error e -> Alcotest.failf "commented round-trip failed: %s" e

let test_plan_of_string_errors () =
  let expect_error_naming line s =
    match Plan.of_string s with
    | Ok _ -> Alcotest.failf "parsed garbage: %S" s
    | Error e ->
      let prefix = Printf.sprintf "line %d:" line in
      Alcotest.(check bool)
        (Printf.sprintf "error names %s in %S" prefix e)
        true
        (String.length e >= String.length prefix
        && String.sub e 0 (String.length prefix) = prefix)
  in
  expect_error_naming 1 "wibble";
  expect_error_naming 2 "link 0-1 down [0, 1)\nlink one-2 down [0, 1)";
  expect_error_naming 3 "# ok\nlink 0-1 down [0, 1)\nlink 0-1 loss p=x [0, 1)"

let plan_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let* episodes = int_range 0 12 in
    return (seed, episodes))

let prop_random_plans_roundtrip =
  QCheck2.Test.make ~name:"of_string (to_string p) = Ok p on random plans"
    ~count:200 plan_gen (fun (seed, episodes) ->
      let links = [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
      let p =
        Plan.random (Rng.create seed) ~links ~horizon:25.0 ~episodes
      in
      Plan.of_string (Plan.to_string p) = Ok p)

let prop_random_plans_validate =
  QCheck2.Test.make ~name:"random plans always pass validate" ~count:200
    plan_gen (fun (seed, episodes) ->
      let links = [ (0, 1); (1, 2) ] in
      Plan.validate
        (Plan.random (Rng.create seed) ~links ~horizon:50.0 ~episodes);
      true)

(* ---------- Inject ---------- *)

let line_forwarding ~node ~target _ =
  if target > node then Some (node + 1)
  else if target < node then Some (node - 1)
  else None

let two_node_net () =
  Net.create (Topology.to_links (Topology.line 2)) line_forwarding

(* inject one packet id [id] from 0 to [dst] at engine time [at] *)
let send_at net engine ~id ~dst at =
  ignore
    (Engine.schedule engine at (fun engine ->
         Net.inject net engine
           (Packet.make ~id ~src:0 ~dst ~created:at ())))

let outcome_of net id =
  List.find_map
    (fun ((p : Packet.t), o) -> if p.Packet.id = id then Some o else None)
    (Net.outcomes net)

let test_inject_down_window () =
  let net = two_node_net () in
  let engine = Engine.create () in
  Inject.install ~seed:1
    ~plan:[ Plan.Link_down { u = 0; v = 1; w = Plan.window 1.0 2.0 } ]
    engine net;
  send_at net engine ~id:0 ~dst:1 0.5;
  send_at net engine ~id:1 ~dst:1 1.5;
  send_at net engine ~id:2 ~dst:1 2.5;
  Engine.run engine;
  (match outcome_of net 0 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "before the window: delivered");
  (match outcome_of net 1 with
  | Some (Net.Lost (Net.Link_down (0, 1))) -> ()
  | _ -> Alcotest.fail "inside the window: lost to link-down");
  (match outcome_of net 2 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "after the window: delivered");
  Alcotest.(check (list (pair string int))) "attributed"
    [ ("link-down", 1) ]
    (Net.losses_by_reason net)

let test_inject_loss_deterministic () =
  let run () =
    let net = two_node_net () in
    let engine = Engine.create () in
    Inject.install ~seed:9
      ~plan:
        [ Plan.Link_loss { u = 0; v = 1; w = Plan.window 0.0 5.0; prob = 0.5 } ]
      engine net;
    for i = 0 to 19 do
      send_at net engine ~id:i ~dst:1 (0.1 +. (0.2 *. float_of_int i))
    done;
    Engine.run engine;
    List.map
      (fun ((p : Packet.t), o) ->
        (p.Packet.id, match o with Net.Delivered _ -> "ok" | Net.Lost _ -> "lost"))
      (Net.outcomes net)
  in
  let a = run () and b = run () in
  Alcotest.(check (list (pair int string))) "same seed, same fates" a b;
  Alcotest.(check bool) "some lost, some delivered" true
    (List.exists (fun (_, f) -> f = "lost") a
    && List.exists (fun (_, f) -> f = "ok") a)

let test_inject_latency_spike () =
  let net = two_node_net () in
  let engine = Engine.create () in
  Inject.install ~seed:1
    ~plan:
      [ Plan.Latency_spike
          { u = 0; v = 1; w = Plan.window 1.0 2.0; extra_s = 0.5 } ]
    engine net;
  send_at net engine ~id:0 ~dst:1 0.5;
  send_at net engine ~id:1 ~dst:1 1.5;
  Engine.run engine;
  let latency id =
    match outcome_of net id with
    | Some (Net.Delivered { latency; _ }) -> latency
    | _ -> Alcotest.fail "expected delivery"
  in
  Alcotest.(check bool) "spike adds latency" true
    (latency 1 -. latency 0 > 0.49)

let test_inject_unknown_link () =
  let net = two_node_net () in
  let engine = Engine.create () in
  Alcotest.check_raises "no such link"
    (Invalid_argument "Inject.install: no link between 0 and 5") (fun () ->
      Inject.install ~seed:1
        ~plan:[ Plan.Link_down { u = 0; v = 5; w = Plan.always } ]
        engine net)

let test_inject_gray_window () =
  (* gray loss: the link stays administratively up — hellos and the
     routing layer see nothing — while data in the window dies *)
  let net = two_node_net () in
  let engine = Engine.create () in
  Inject.install ~seed:4
    ~plan:
      [ Plan.Gray_loss { u = 0; v = 1; w = Plan.window 1.0 2.0; prob = 1.0 } ]
    engine net;
  send_at net engine ~id:0 ~dst:1 0.5;
  send_at net engine ~id:1 ~dst:1 1.5;
  send_at net engine ~id:2 ~dst:1 2.5;
  Engine.run engine;
  (match outcome_of net 0 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "before the window: delivered");
  (match outcome_of net 1 with
  | Some (Net.Lost (Net.Gray_loss (0, 1))) -> ()
  | _ -> Alcotest.fail "inside the window: grayed out");
  (match outcome_of net 2 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "after the window: delivered");
  Alcotest.(check (list (pair string int))) "attributed as gray-loss"
    [ ("gray-loss", 1) ]
    (Net.losses_by_reason net);
  (* the links' own covert counter agrees with the attribution, and
     the link never went down: liveness looks clean throughout *)
  let distinct_links =
    let seen = ref [] in
    Graph.iter_edges (Net.links net) (fun _ _ l ->
        if not (List.memq l !seen) then seen := l :: !seen);
    !seen
  in
  Alcotest.(check int) "link counted the gray drop" 1
    (List.fold_left (fun acc l -> acc + Link.gray_drops l) 0 distinct_links);
  Alcotest.(check bool) "link stayed up" true
    (List.for_all Link.is_up distinct_links)

let send_from net engine ~id ~src ~dst at =
  ignore
    (Engine.schedule engine at (fun engine ->
         Net.inject net engine (Packet.make ~id ~src ~dst ~created:at ())))

let test_inject_unidirectional () =
  let net = two_node_net () in
  let engine = Engine.create () in
  Inject.install ~seed:1
    ~plan:[ Plan.Unidirectional_down { u = 0; v = 1; w = Plan.window 1.0 2.0 } ]
    engine net;
  send_from net engine ~id:0 ~src:0 ~dst:1 1.5;
  send_from net engine ~id:1 ~src:1 ~dst:0 1.5;
  send_from net engine ~id:2 ~src:0 ~dst:1 2.5;
  Engine.run engine;
  (match outcome_of net 0 with
  | Some (Net.Lost (Net.Link_down (0, 1))) -> ()
  | _ -> Alcotest.fail "faulted direction: lost");
  (match outcome_of net 1 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "reverse direction: delivered");
  match outcome_of net 2 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "after the window: delivered"

let test_inject_flap () =
  (* period 1s, duty 0.5 over [0, 2): down [0,0.5) up [0.5,1) down
     [1,1.5) up [1.5,2), restored at 2 *)
  let flap =
    Plan.Link_flap
      { u = 0; v = 1; w = Plan.window 0.0 2.0; period_s = 1.0; duty = 0.5 }
  in
  Alcotest.(check int) "transitions counts every toggle + restore" 5
    (Plan.transitions [ flap ]);
  let net = two_node_net () in
  let engine = Engine.create () in
  Inject.install ~seed:1 ~plan:[ flap ] engine net;
  List.iteri
    (fun id at -> send_at net engine ~id ~dst:1 at)
    [ 0.25; 0.75; 1.25; 1.75; 2.25 ];
  Engine.run engine;
  let fate id =
    match outcome_of net id with
    | Some (Net.Delivered _) -> "ok"
    | Some (Net.Lost _) -> "lost"
    | None -> "?"
  in
  Alcotest.(check (list string)) "fates follow the duty cycle"
    [ "lost"; "ok"; "lost"; "ok"; "ok" ]
    (List.map fate [ 0; 1; 2; 3; 4 ])

let test_inject_blackhole_vs_middlebox () =
  (* satellite: a Byzantine blackhole and a broken middlebox are
     different failures and must stay distinguishable in the ledger *)
  let line4 () =
    Net.create (Topology.to_links (Topology.line 4)) line_forwarding
  in
  let blackhole = line4 () in
  let engine = Engine.create () in
  Inject.install ~seed:2
    ~plan:[ Plan.Blackhole { node = 2; w = Plan.window 0.0 3.0 } ]
    engine blackhole;
  send_at blackhole engine ~id:0 ~dst:3 0.5;
  (* traffic *addressed to* the blackhole is answered: it only eats
     transit — that is what makes it covert to hello-style liveness *)
  send_at blackhole engine ~id:1 ~dst:2 0.5;
  send_at blackhole engine ~id:2 ~dst:3 3.5;
  Engine.run engine;
  (match outcome_of blackhole 0 with
  | Some (Net.Lost (Net.Blackholed 2)) -> ()
  | _ -> Alcotest.fail "transit traffic: silently discarded");
  (match outcome_of blackhole 1 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "traffic to the blackhole: answered");
  (match outcome_of blackhole 2 with
  | Some (Net.Delivered _) -> ()
  | _ -> Alcotest.fail "after the window: delivered");
  Alcotest.(check (list (pair string int))) "attributed as blackholed"
    [ ("blackholed", 1) ]
    (Net.losses_by_reason blackhole);
  let filtered = line4 () in
  let engine = Engine.create () in
  Inject.install ~seed:2
    ~plan:[ Plan.Middlebox_break { node = 2; w = Plan.always; covert = true } ]
    engine filtered;
  send_at filtered engine ~id:0 ~dst:3 0.5;
  Engine.run engine;
  Alcotest.(check (list (pair string int)))
    "a broken device confesses differently"
    [ ("filtered:" ^ Plan.broken_device_name, 1) ]
    (Net.losses_by_reason filtered)

let test_net_probe_against_covert_injection () =
  (* E28's substrate: Diagnosis.net_probe must bracket a covert
     injected middlebox failure and localize a revealing one exactly *)
  let diagnose covert =
    let net = Net.create (Topology.to_links (Topology.line 4)) line_forwarding in
    let engine = Engine.create () in
    Inject.install ~seed:5
      ~plan:[ Plan.Middlebox_break { node = 2; w = Plan.always; covert } ]
      engine net;
    let gen = Traffic.create (Rng.create 6) in
    let make ~target =
      Traffic.next_packet gen ~src:0 ~dst:target
        ~created:(Engine.now engine) ()
    in
    Diagnosis.localize ~probe:(Diagnosis.net_probe net engine ~make)
      ~path:[ 0; 1; 2; 3 ]
  in
  let covert = diagnose true and revealing = diagnose false in
  (match revealing.Diagnosis.verdict with
  | Diagnosis.Blocked_at (name, 2) ->
    Alcotest.(check string) "confessed name" Plan.broken_device_name name
  | _ -> Alcotest.fail "revealing break must be localized exactly");
  Alcotest.(check int) "one probe" 1 revealing.Diagnosis.probes_used;
  (match covert.Diagnosis.verdict with
  | Diagnosis.Blocked_between (1, 2) -> ()
  | _ -> Alcotest.fail "covert break must be bracketed");
  Alcotest.(check bool) "covert costs more probes" true
    (covert.Diagnosis.probes_used > revealing.Diagnosis.probes_used)

(* ---------- determinism guard (PR 2 style) ---------- *)

let with_fault_seed seed f =
  let saved = Seed.get () in
  Seed.set seed;
  Fun.protect ~finally:(fun () -> Seed.set saved) f

let e28 () =
  match Registry.find "E28" with
  | Some e -> e
  | None -> Alcotest.fail "E28 missing from the registry"

let test_e28_deterministic_per_seed () =
  let run () = (Experiment.run (e28 ())).Experiment.output in
  let a = with_fault_seed 2027 run in
  let b = with_fault_seed 2027 run in
  Alcotest.(check string) "same fault seed, byte-identical output" a b;
  let c = with_fault_seed 2028 run in
  Alcotest.(check bool) "different fault seed, different output" true (a <> c)

(* ---------- watchdog ---------- *)

let quick_experiment =
  {
    Experiment.id = "T1";
    title = "watchdog companion (terminates immediately)";
    paper_claim = "none - test fixture";
    run = (fun () -> ("ran fine\n", true));
    sweep = None;
  }

let output_mentions_timeout o =
  let needle = "FAILED (timeout" and hay = o.Experiment.output in
  let n = String.length hay and m = String.length needle in
  let rec search i =
    i + m <= n && (String.sub hay i m = needle || search (i + 1))
  in
  search 0

let test_watchdog_times_out_hung_experiment () =
  match
    Registry.run_list ~domains:1 ~timeout_s:0.2
      [ Registry.hang_probe; quick_experiment ]
  with
  | [ hung; fine ] ->
    (match hung.Experiment.status with
    | Experiment.Failed _ -> ()
    | _ -> Alcotest.fail "hang probe must fail");
    Alcotest.(check bool) "FAILED (timeout ...) in the body" true
      (output_mentions_timeout hung);
    Alcotest.(check bool) "partial telemetry: wall clock recorded" true
      (hung.Experiment.wall_s >= 0.2);
    (* the battery carried on past the hung experiment *)
    Alcotest.(check bool) "companion still ran" true (Experiment.held fine)
  | _ -> Alcotest.fail "expected two outcomes"

let test_watchdog_passes_fast_experiment_through () =
  let watched = Experiment.run ~timeout_s:30.0 quick_experiment in
  let plain = Experiment.run quick_experiment in
  Alcotest.(check bool) "held" true (Experiment.held watched);
  Alcotest.(check string) "identical output" plain.Experiment.output
    watched.Experiment.output

let test_watchdog_validation () =
  Alcotest.check_raises "non-positive timeout"
    (Invalid_argument "Experiment.run: timeout_s must be positive and finite")
    (fun () -> ignore (Experiment.run ~timeout_s:0.0 quick_experiment))

let test_seed_roundtrip () =
  let saved = Seed.get () in
  Alcotest.(check int) "default" 1031 Seed.default;
  Seed.set 7;
  Alcotest.(check int) "set/get" 7 (Seed.get ());
  Seed.set saved

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "random deterministic" `Quick
            test_plan_random_deterministic;
        ] );
      ( "plan-serialization",
        [
          Alcotest.test_case "hand-built round-trips" `Quick
            test_plan_string_roundtrip_by_hand;
          Alcotest.test_case "of_string names bad lines" `Quick
            test_plan_of_string_errors;
          QCheck_alcotest.to_alcotest prop_random_plans_roundtrip;
          QCheck_alcotest.to_alcotest prop_random_plans_validate;
        ] );
      ( "inject",
        [
          Alcotest.test_case "down window" `Quick test_inject_down_window;
          Alcotest.test_case "loss deterministic" `Quick
            test_inject_loss_deterministic;
          Alcotest.test_case "latency spike" `Quick test_inject_latency_spike;
          Alcotest.test_case "unknown link" `Quick test_inject_unknown_link;
          Alcotest.test_case "gray window" `Quick test_inject_gray_window;
          Alcotest.test_case "unidirectional down" `Quick
            test_inject_unidirectional;
          Alcotest.test_case "flap duty cycle" `Quick test_inject_flap;
          Alcotest.test_case "blackhole vs broken middlebox" `Quick
            test_inject_blackhole_vs_middlebox;
          Alcotest.test_case "net_probe vs covert injection" `Quick
            test_net_probe_against_covert_injection;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "E28 byte-identical per fault seed" `Slow
            test_e28_deterministic_per_seed;
          Alcotest.test_case "seed roundtrip" `Quick test_seed_roundtrip;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "hung experiment times out" `Quick
            test_watchdog_times_out_hung_experiment;
          Alcotest.test_case "fast experiment unchanged" `Quick
            test_watchdog_passes_fast_experiment_through;
          Alcotest.test_case "validation" `Quick test_watchdog_validation;
        ] );
    ]
