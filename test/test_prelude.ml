(* Tests for tussle.prelude: rng, stats, pqueue, graph, union_find, table. *)

module Rng = Tussle_prelude.Rng
module Stats = Tussle_prelude.Stats
module Pqueue = Tussle_prelude.Pqueue
module Graph = Tussle_prelude.Graph
module Union_find = Tussle_prelude.Union_find
module Table = Tussle_prelude.Table

let check_float = Alcotest.(check (float 1e-9))
let check_floatish = Alcotest.(check (float 1e-6))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 5 in
  let xs = Array.init 20_000 (fun _ -> Rng.uniform rng 2.0 4.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.05)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "p=0 false" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1 true" true (Rng.bernoulli rng 1.0)

let test_rng_bernoulli_rate () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_rng_gaussian_moments () =
  let rng = Rng.create 17 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian rng ~mu:1.0 ~sigma:2.0) in
  Alcotest.(check bool) "mean" true (Float.abs (Stats.mean xs -. 1.0) < 0.06);
  Alcotest.(check bool) "sd" true (Float.abs (Stats.stddev xs -. 2.0) < 0.06)

let test_rng_exponential_mean () =
  let rng = Rng.create 19 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential rng ~rate:2.0) in
  Alcotest.(check bool) "mean near 0.5" true
    (Float.abs (Stats.mean xs -. 0.5) < 0.02);
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x >= 0.0)) xs

let test_rng_pareto_min () =
  let rng = Rng.create 23 in
  for _ = 1 to 1000 do
    let v = Rng.pareto rng ~alpha:2.0 ~x_min:3.0 in
    Alcotest.(check bool) ">= x_min" true (v >= 3.0)
  done

let test_rng_choice () =
  let rng = Rng.create 29 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let c = Rng.choice rng arr in
    Alcotest.(check bool) "member" true (Array.exists (String.equal c) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice rng [||]))

let test_rng_weighted_index () =
  let rng = Rng.create 31 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Rng.weighted_index rng [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  Alcotest.(check bool) "3:1 ratio approx" true
    (float_of_int counts.(2) /. float_of_int counts.(0) > 2.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 37 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 41 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample rng 10 arr in
  Alcotest.(check int) "size" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length uniq)

let test_rng_split_independent () =
  let a = Rng.create 43 in
  let b = Rng.split a in
  (* drawing from b must not change a's future relative to a clone *)
  let a' = Rng.copy a in
  ignore (Rng.int64 b);
  Alcotest.(check int64) "split independent" (Rng.int64 a') (Rng.int64 a)

(* Regression pins: exact draw sequences for fixed seeds.  These fail if
   the number or order of uniform draws inside a sampler ever changes
   again (gaussian once depended on unspecified evaluation order). *)

let test_rng_gaussian_pinned () =
  let rng = Rng.create 123 in
  List.iter
    (fun expected ->
      Alcotest.(check (float 0.0)) "pinned gaussian" expected
        (Rng.gaussian rng ~mu:0.0 ~sigma:1.0))
    [ -0.82820331445494455; -0.37134836789444403; 1.2841706573433365;
      -0.43465361761377846 ]

let test_rng_gaussian_interleaved_pinned () =
  (* u1 must be drawn before u2: interleaving with [float] exposes any
     order flip as a different third value *)
  let rng = Rng.create 42 in
  Alcotest.(check (float 0.0)) "g1" 2.0861053027384839
    (Rng.gaussian rng ~mu:1.0 ~sigma:2.0);
  Alcotest.(check (float 0.0)) "f" 0.16639780398145976 (Rng.float rng 1.0);
  Alcotest.(check (float 0.0)) "g2" 5.8925335848567046
    (Rng.gaussian rng ~mu:1.0 ~sigma:2.0)

let test_rng_weighted_index_pinned () =
  let rng = Rng.create 7 in
  let w = [| 1.0; 2.0; 3.0 |] in
  let drawn = List.init 12 (fun _ -> Rng.weighted_index rng w) in
  Alcotest.(check (list int)) "pinned indices"
    [ 2; 1; 2; 2; 2; 1; 1; 2; 2; 0; 2; 1 ] drawn

let test_rng_weighted_zero_tail () =
  let rng = Rng.create 57 in
  for _ = 1 to 10_000 do
    let i = Rng.weighted_index rng [| 2.0; 1.0; 0.0 |] in
    Alcotest.(check bool) "trailing zero weight never drawn" true (i < 2)
  done;
  for _ = 1 to 100 do
    Alcotest.(check int) "only positive index" 1
      (Rng.weighted_index rng [| 0.0; 5.0; 0.0 |])
  done

(* ---------- Stats ---------- *)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_variance () =
  check_float "variance" 2.0 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_stats_median_odd () =
  check_float "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_stats_median_even () =
  check_float "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_gini_equal () =
  check_floatish "gini equal" 0.0 (Stats.gini [| 5.0; 5.0; 5.0; 5.0 |])

let test_stats_gini_concentrated () =
  let g = Stats.gini [| 0.0; 0.0; 0.0; 100.0 |] in
  Alcotest.(check bool) "gini high" true (g > 0.7)

let test_stats_hhi () =
  check_float "hhi monopoly" 1.0 (Stats.hhi [| 10.0 |]);
  check_float "hhi duopoly" 0.5 (Stats.hhi [| 5.0; 5.0 |]);
  check_float "hhi 4-way" 0.25 (Stats.hhi [| 1.0; 1.0; 1.0; 1.0 |])

let test_stats_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_floatish "perfect" 1.0 (Stats.correlation xs xs);
  check_floatish "anti" (-1.0)
    (Stats.correlation xs (Array.map (fun x -> 10.0 -. x) xs))

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  check_float "p50" 3.0 s.Stats.p50;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max

let test_stats_empty_raises () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

(* ---------- Pqueue ---------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q 3.0 "c";
  Pqueue.push q 1.0 "a";
  Pqueue.push q 2.0 "b";
  Alcotest.(check (option (pair (float 0.0) string))) "a" (Some (1.0, "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "b" (Some (2.0, "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "c" (Some (3.0, "c")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "empty" None (Pqueue.pop q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "first";
  Pqueue.push q 1.0 "second";
  Pqueue.push q 1.0 "third";
  let order = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "fifo among ties" [ "first"; "second"; "third" ] order

let test_pqueue_stress_sorted () =
  let rng = Rng.create 99 in
  let q = Pqueue.create () in
  for _ = 1 to 1000 do
    Pqueue.push q (Rng.float rng 100.0) ()
  done;
  let keys = List.map fst (Pqueue.to_sorted_list q) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "drain sorted" true (sorted keys);
  Alcotest.(check int) "nondestructive" 1000 (Pqueue.length q)

let test_pqueue_pop_releases () =
  (* Regression: a popped entry used to stay reachable from the vacated
     array slot, retaining its payload until the slot was overwritten. *)
  let q = Pqueue.create () in
  let w = Weak.create 4 in
  for i = 0 to 3 do
    let payload = Bytes.make 64 'x' in
    Weak.set w i (Some payload);
    Pqueue.push q (float_of_int i) payload
  done;
  for _ = 0 to 3 do
    ignore (Pqueue.pop q)
  done;
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d collected" i)
      false (Weak.check w i)
  done

let test_pqueue_drain_after_leak_fix () =
  (* Slot clearing must not change observable behaviour: same length
     accounting, same drain order, and the queue stays reusable. *)
  let rng = Rng.create 4242 in
  let q = Pqueue.create () in
  for i = 0 to 199 do
    Pqueue.push q (Rng.float rng 10.0) i
  done;
  Alcotest.(check int) "length" 200 (Pqueue.length q);
  let rec drain last n =
    match Pqueue.pop q with
    | None -> n
    | Some (k, _) ->
      Alcotest.(check bool) "sorted" true (k >= last);
      Alcotest.(check int) "length tracks" (199 - n) (Pqueue.length q);
      drain k (n + 1)
  in
  let n = drain neg_infinity 0 in
  Alcotest.(check int) "drained all" 200 n;
  Pqueue.push q 1.0 7;
  Alcotest.(check (option (pair (float 0.0) int)))
    "reusable after drain" (Some (1.0, 7)) (Pqueue.pop q)

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 5.0 "x";
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (5.0, "x"))
    (Pqueue.peek q);
  Alcotest.(check int) "peek keeps" 1 (Pqueue.length q)

(* ---------- Graph ---------- *)

let test_graph_basic () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 2.0;
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "edges" 2 (Graph.edge_count g);
  Alcotest.(check (list (pair int (float 0.0)))) "succ 0" [ (1, 1.0) ] (Graph.succ g 0);
  Alcotest.(check (option (float 0.0))) "find" (Some 2.0) (Graph.find_edge g 1 2);
  Alcotest.(check (option (float 0.0))) "absent" None (Graph.find_edge g 0 2)

let test_graph_out_of_range () =
  let g = Graph.create 2 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Graph.add_edge: node out of range") (fun () ->
      Graph.add_edge g 0 5 ())

let test_graph_dijkstra_line () =
  let g = Graph.create 4 in
  Graph.add_undirected g 0 1 1.0;
  Graph.add_undirected g 1 2 1.0;
  Graph.add_undirected g 2 3 1.0;
  let dist, _ = Graph.dijkstra g ~weight:Fun.id ~source:0 in
  check_float "d3" 3.0 dist.(3);
  check_float "d0" 0.0 dist.(0)

let test_graph_dijkstra_shortcut () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 10.0;
  Graph.add_edge g 0 2 1.0;
  Graph.add_edge g 2 1 1.0;
  match Graph.shortest_path g ~weight:Fun.id 0 1 with
  | Some (d, path) ->
    check_float "dist" 2.0 d;
    Alcotest.(check (list int)) "path" [ 0; 2; 1 ] path
  | None -> Alcotest.fail "unreachable"

let test_graph_unreachable () =
  let g = Graph.create 2 in
  Alcotest.(check (option (pair (float 0.0) (list int)))) "none" None
    (Graph.shortest_path g ~weight:Fun.id 0 1)

let test_graph_negative_weight () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 (-1.0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.dijkstra: negative weight") (fun () ->
      ignore (Graph.dijkstra g ~weight:Fun.id ~source:0))

let test_graph_bfs_connected () =
  let g = Graph.create 4 in
  Graph.add_undirected g 0 1 ();
  Graph.add_undirected g 1 2 ();
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  Graph.add_undirected g 2 3 ();
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_graph_transpose () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 "e";
  let t = Graph.transpose g in
  Alcotest.(check (option string)) "reversed" (Some "e") (Graph.find_edge t 1 0);
  Alcotest.(check (option string)) "gone" None (Graph.find_edge t 0 1)

let test_graph_map_edges () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 2;
  let h = Graph.map_edges g (fun x -> x * 10) in
  Alcotest.(check (option int)) "mapped" (Some 20) (Graph.find_edge h 0 1)

let test_graph_degree_histogram () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ();
  Graph.add_edge g 0 2 ();
  Alcotest.(check (list (pair int int))) "hist" [ (0, 2); (2, 1) ]
    (Graph.degree_histogram g)

(* ---------- Union_find ---------- *)

let test_union_find_basic () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "re-union" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "sets after" 4 (Union_find.count uf);
  Alcotest.(check int) "size" 2 (Union_find.set_size uf 0)

let test_union_find_groups () =
  let uf = Union_find.create 4 in
  ignore (Union_find.union uf 0 2);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check (list (list int))) "groups" [ [ 0; 2 ]; [ 1; 3 ] ]
    (Union_find.groups uf)

(* ---------- Table ---------- *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  Alcotest.(check bool) "row count" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 4)

let test_table_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row: column count mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_fmt () =
  Alcotest.(check string) "pct" "12.5%" (Table.fmt_pct 0.125);
  Alcotest.(check string) "float" "3.142" (Table.fmt_float 3.14159)

(* ---------- qcheck properties ---------- *)

let prop_rng_int_bounds =
  QCheck2.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck2.Gen.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck2.Gen.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_pqueue_pop_sorted =
  QCheck2.Test.make ~name:"pqueue pops in key order" ~count:200
    QCheck2.Gen.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun items ->
      let q = Pqueue.create () in
      List.iter (fun (k, v) -> Pqueue.push q k v) items;
      let rec drain prev =
        match Pqueue.pop q with
        | None -> true
        | Some (k, _) -> k >= prev && drain k
      in
      drain neg_infinity)

let prop_gini_bounds =
  QCheck2.Test.make ~name:"gini in [0,1)" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 100.0))
    (fun l ->
      let xs = Array.of_list (List.map (fun x -> x +. 0.001) l) in
      let g = Stats.gini xs in
      g >= -1e-9 && g < 1.0)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck2.Gen.(list_size (int_range 2 50) (float_bound_exclusive 100.0))
    (fun l ->
      let xs = Array.of_list l in
      let p25 = Stats.percentile xs 25.0
      and p75 = Stats.percentile xs 75.0 in
      p25 <= p75 +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rng_int_bounds; prop_shuffle_preserves_multiset;
      prop_pqueue_pop_sorted; prop_gini_bounds; prop_percentile_monotone;
    ]


(* ---------- coverage sweep ---------- *)

let test_graph_fold_and_iter () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 2.0;
  Graph.add_edge g 1 2 3.0;
  let total = Graph.fold_edges g ~init:0.0 ~f:(fun acc _ _ w -> acc +. w) in
  check_float "fold sums" 5.0 total;
  let count = ref 0 in
  Graph.iter_edges g (fun _ _ _ -> incr count);
  Alcotest.(check int) "iter visits" 2 !count

let test_stats_total_empty () = check_float "empty total" 0.0 (Stats.total [||])

let test_rng_choice_list () =
  let rng = Rng.create 71 in
  let v = Rng.choice_list rng [ 5 ] in
  Alcotest.(check int) "singleton" 5 v

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "x";
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let test_table_default_alignment () =
  let t = Table.create [ "a" ] in
  Table.add_float_row t "a" [];
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_min;
          Alcotest.test_case "choice" `Quick test_rng_choice;
          Alcotest.test_case "weighted index" `Quick test_rng_weighted_index;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian pinned" `Quick test_rng_gaussian_pinned;
          Alcotest.test_case "gaussian interleaved pinned" `Quick
            test_rng_gaussian_interleaved_pinned;
          Alcotest.test_case "weighted index pinned" `Quick
            test_rng_weighted_index_pinned;
          Alcotest.test_case "weighted zero tail" `Quick
            test_rng_weighted_zero_tail;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "gini equal" `Quick test_stats_gini_equal;
          Alcotest.test_case "gini concentrated" `Quick test_stats_gini_concentrated;
          Alcotest.test_case "hhi" `Quick test_stats_hhi;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "stress sorted" `Quick test_pqueue_stress_sorted;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          Alcotest.test_case "pop releases payload" `Quick
            test_pqueue_pop_releases;
          Alcotest.test_case "drain after leak fix" `Quick
            test_pqueue_drain_after_leak_fix;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "dijkstra line" `Quick test_graph_dijkstra_line;
          Alcotest.test_case "dijkstra shortcut" `Quick test_graph_dijkstra_shortcut;
          Alcotest.test_case "unreachable" `Quick test_graph_unreachable;
          Alcotest.test_case "negative weight" `Quick test_graph_negative_weight;
          Alcotest.test_case "bfs/connected" `Quick test_graph_bfs_connected;
          Alcotest.test_case "transpose" `Quick test_graph_transpose;
          Alcotest.test_case "map edges" `Quick test_graph_map_edges;
          Alcotest.test_case "degree histogram" `Quick test_graph_degree_histogram;
        ] );
      ( "union-find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "groups" `Quick test_union_find_groups;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
          Alcotest.test_case "formatters" `Quick test_table_fmt;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "graph fold/iter" `Quick test_graph_fold_and_iter;
          Alcotest.test_case "stats total empty" `Quick test_stats_total_empty;
          Alcotest.test_case "rng choice list" `Quick test_rng_choice_list;
          Alcotest.test_case "pqueue clear" `Quick test_pqueue_clear;
          Alcotest.test_case "table defaults" `Quick test_table_default_alignment;
        ] );
      ("properties", qcheck_cases);
    ]
