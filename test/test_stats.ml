(* Pinned-value and property tests for Tussle_prelude.Stats.Test, in
   the style of pareto's tests_test.ml: known t statistics and
   p-values against reference values (computed with R/scipy and
   cross-checked against pareto's own pins), the alternatives
   consistency harness, and the degenerate zero-spread cases.  Plus
   qcheck properties for the descriptive Stats primitives the sweep
   layer leans on. *)

module Stats = Tussle_prelude.Stats
module Test = Tussle_prelude.Stats.Test

let check_close ?(epsilon = 1e-4) msg expected actual =
  Alcotest.(check (float epsilon)) msg expected actual

let alternative_name = function
  | Test.TwoSided -> "two-sided"
  | Test.Less -> "less"
  | Test.Greater -> "greater"

(* pareto's assert_equal_test_results: one expected (statistic,
   p-value) pair per alternative, in [TwoSided; Less; Greater]
   order. *)
let check_test_results ?(msg = "") f expected =
  List.iter2
    (fun (statistic, pvalue) alternative ->
      let r = f ~alternative in
      let tag suffix =
        if msg = "" then Printf.sprintf "%s %s" (alternative_name alternative) suffix
        else Printf.sprintf "%s, %s %s" msg (alternative_name alternative) suffix
      in
      check_close (tag "statistic") statistic r.Test.statistic;
      check_close (tag "p-value") pvalue r.Test.pvalue)
    expected
    [ Test.TwoSided; Test.Less; Test.Greater ]

(* ---------- special functions ---------- *)

let test_log_gamma () =
  (* lgamma(1) = lgamma(2) = 0, lgamma(5) = log 24, lgamma(0.5) =
     log sqrt(pi) *)
  check_close ~epsilon:1e-10 "lgamma 1" 0.0 (Test.log_gamma 1.0);
  check_close ~epsilon:1e-10 "lgamma 2" 0.0 (Test.log_gamma 2.0);
  check_close ~epsilon:1e-9 "lgamma 5" (log 24.0) (Test.log_gamma 5.0);
  check_close ~epsilon:1e-9 "lgamma 0.5"
    (0.5 *. log Float.pi)
    (Test.log_gamma 0.5)

let test_incomplete_beta () =
  (* I_x(1,1) = x; I_x(a,b) endpoints; symmetry I_x(a,b) = 1 - I_(1-x)(b,a) *)
  check_close ~epsilon:1e-10 "I_x(1,1)=x" 0.37 (Test.incomplete_beta 1.0 1.0 0.37);
  check_close ~epsilon:1e-10 "x=0" 0.0 (Test.incomplete_beta 2.5 0.5 0.0);
  check_close ~epsilon:1e-10 "x=1" 1.0 (Test.incomplete_beta 2.5 0.5 1.0);
  let a = 3.0 and b = 1.7 and x = 0.42 in
  check_close ~epsilon:1e-10 "symmetry"
    (1.0 -. Test.incomplete_beta b a (1.0 -. x))
    (Test.incomplete_beta a b x)

let test_student_cdf () =
  (* reference values: R pt(t, df) *)
  check_close ~epsilon:1e-6 "cdf 0" 0.5 (Test.student_cdf ~df:7.0 0.0);
  check_close "pt(1, 1) = 0.75" 0.75 (Test.student_cdf ~df:1.0 1.0);
  check_close "pt(2.5, 10)" 0.984277 (Test.student_cdf ~df:10.0 2.5);
  check_close "pt(-1.8, 4)" 0.073119 (Test.student_cdf ~df:4.0 (-1.8));
  check_close ~epsilon:1e-6 "+inf" 1.0 (Test.student_cdf ~df:3.0 infinity);
  check_close ~epsilon:1e-6 "-inf" 0.0 (Test.student_cdf ~df:3.0 neg_infinity)

let test_t_quantile () =
  (* R qt(0.975, 4) = 2.776445, qt(0.995, 9) = 3.249836 *)
  check_close "qt(0.975, 4)" 2.776445 (Test.t_quantile ~df:4.0 0.975);
  check_close "qt(0.995, 9)" 3.249836 (Test.t_quantile ~df:9.0 0.995);
  check_close "qt(0.025, 4)" (-2.776445) (Test.t_quantile ~df:4.0 0.025);
  check_close ~epsilon:1e-9 "qt(0.5)" 0.0 (Test.t_quantile ~df:4.0 0.5);
  (* round-trip through the CDF *)
  check_close ~epsilon:1e-6 "cdf (qt p) = p" 0.91
    (Test.student_cdf ~df:6.0 (Test.t_quantile ~df:6.0 0.91))

(* ---------- one-sample ---------- *)

(* the pareto reference vector (R: t.test(vs, mu = 0)) *)
let vs =
  [|
    0.88456; 0.43590; 0.95778; -1.05039; -0.38589; -0.06342; -0.18712;
    1.58856; 0.86964; 1.22192;
  |]

let test_one_sample_pinned () =
  check_test_results
    (fun ~alternative -> Test.one_sample ~alternative ~mean:0.0 vs)
    [
      (1.636803, 0.136096); (1.636803, 0.931951); (1.636803, 0.068048);
    ]

let test_one_sample_df () =
  let r = Test.one_sample ~mean:0.0 vs in
  check_close ~epsilon:1e-9 "df = n - 1" 9.0 r.Test.df

(* ---------- two-sample: Welch and Student ---------- *)

let v1 =
  [|
    -0.86349; 0.36688; -0.48266; 0.53237; -0.87635; -1.28357; -1.46325;
    0.21937; -0.38159; -0.22752;
  |]

let v2 =
  [|
    -0.20951; 1.27388; 0.27331; 1.85599; -1.09702; -0.20033; -0.45065;
    0.06710; -0.18932; 1.60007;
  |]

let test_two_sample_welch_pinned () =
  check_test_results ~msg:"welch"
    (fun ~alternative ->
      Test.two_sample ~alternative ~shift:0.42 ~equal_variance:false v1 v2)
    [
      (-3.0972, 0.006832); (-3.0972, 0.003416); (-3.0972, 0.996583);
    ]

let test_two_sample_student_pinned () =
  check_test_results ~msg:"student"
    (fun ~alternative ->
      Test.two_sample ~alternative ~shift:0.24 ~equal_variance:true v1 v2)
    [
      (-2.6159, 0.017503); (-2.6159, 0.008751); (-2.6159, 0.991248);
    ]

let test_two_sample_student_df () =
  let r = Test.two_sample ~equal_variance:true v1 v2 in
  check_close ~epsilon:1e-9 "pooled df" 18.0 r.Test.df;
  (* Welch df for these samples (R reports 16.172) *)
  let w = Test.two_sample v1 v2 in
  check_close ~epsilon:1e-2 "welch df" 16.221 w.Test.df

(* ---------- paired ---------- *)

let test_paired_pinned () =
  (* paired = one-sample on differences: mean diff -0.738333, sample
     sd 0.647229 (hand-computed), so t = -3.607402 on df 9; p-values
     cross-checked against the t-table (t_{0.995,9} = 3.2498,
     t_{0.9975,9} = 3.6897 bracket the statistic). *)
  check_test_results ~msg:"paired"
    (fun ~alternative -> Test.paired ~alternative v1 v2)
    [
      (-3.607402, 0.005682); (-3.607402, 0.002841); (-3.607402, 0.997159);
    ];
  let p = Test.paired v1 v2 in
  let d = Array.init 10 (fun i -> v1.(i) -. v2.(i)) in
  let o = Test.one_sample ~mean:0.0 d in
  check_close ~epsilon:1e-12 "paired = one-sample on diffs"
    o.Test.statistic p.Test.statistic

(* ---------- alternatives consistency harness ---------- *)

(* For any data: Less + Greater p-values sum to 1, TwoSided =
   2 * min(Less, Greater), and swapping the samples flips the
   direction (statistic negates, Less and Greater exchange). *)
let check_alternatives_consistent msg (f : alternative:Test.alternative -> Test.result) =
  let two = f ~alternative:Test.TwoSided in
  let less = f ~alternative:Test.Less in
  let greater = f ~alternative:Test.Greater in
  check_close ~epsilon:1e-9 (msg ^ ": same statistic (less)")
    two.Test.statistic less.Test.statistic;
  check_close ~epsilon:1e-9 (msg ^ ": same statistic (greater)")
    two.Test.statistic greater.Test.statistic;
  check_close ~epsilon:1e-9 (msg ^ ": less + greater = 1") 1.0
    (less.Test.pvalue +. greater.Test.pvalue);
  check_close ~epsilon:1e-9 (msg ^ ": two-sided = 2 min(l, g)")
    (min 1.0 (2.0 *. min less.Test.pvalue greater.Test.pvalue))
    two.Test.pvalue;
  (* direction: the one-sided p-value in the statistic's direction is
     the small one *)
  if two.Test.statistic > 0.0 then
    Alcotest.(check bool) (msg ^ ": greater side smaller") true
      (greater.Test.pvalue <= less.Test.pvalue)
  else if two.Test.statistic < 0.0 then
    Alcotest.(check bool) (msg ^ ": less side smaller") true
      (less.Test.pvalue <= greater.Test.pvalue)

let test_alternatives_one_sample () =
  check_alternatives_consistent "one-sample" (fun ~alternative ->
      Test.one_sample ~alternative ~mean:0.1 vs)

let test_alternatives_two_sample () =
  check_alternatives_consistent "welch" (fun ~alternative ->
      Test.two_sample ~alternative v1 v2);
  check_alternatives_consistent "student" (fun ~alternative ->
      Test.two_sample ~alternative ~equal_variance:true v1 v2);
  check_alternatives_consistent "paired" (fun ~alternative ->
      Test.paired ~alternative v1 v2)

let test_sample_swap_flips () =
  let ab = Test.two_sample ~alternative:Test.Greater v1 v2 in
  let ba = Test.two_sample ~alternative:Test.Less v2 v1 in
  check_close ~epsilon:1e-12 "statistic negates" (-.ab.Test.statistic)
    ba.Test.statistic;
  check_close ~epsilon:1e-12 "p-value carried by direction"
    ab.Test.pvalue ba.Test.pvalue;
  let pab = Test.paired ~alternative:Test.Greater v1 v2 in
  let pba = Test.paired ~alternative:Test.Less v2 v1 in
  check_close ~epsilon:1e-12 "paired swap" pab.Test.pvalue pba.Test.pvalue

(* ---------- degenerate inputs ---------- *)

let test_degenerate_all_zeros () =
  (* pareto returns NaN/NaN here; we promise a usable verdict *)
  let r = Test.one_sample ~mean:0.0 [| 0.0; 0.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "statistic not NaN" false (Float.is_nan r.Test.statistic);
  Alcotest.(check bool) "p-value not NaN" false (Float.is_nan r.Test.pvalue);
  check_close ~epsilon:1e-12 "no difference, t = 0" 0.0 r.Test.statistic;
  check_close ~epsilon:1e-12 "no difference, p = 1" 1.0 r.Test.pvalue

let test_degenerate_shifted () =
  (* constant data away from the hypothesized mean: infinitely
     significant in its direction, never NaN *)
  let xs = [| 1.0; 1.0; 1.0 |] in
  let g = Test.one_sample ~alternative:Test.Greater ~mean:0.0 xs in
  Alcotest.(check bool) "t = +inf" true (g.Test.statistic = infinity);
  check_close ~epsilon:1e-12 "greater p = 0" 0.0 g.Test.pvalue;
  let l = Test.one_sample ~alternative:Test.Less ~mean:0.0 xs in
  check_close ~epsilon:1e-12 "less p = 1" 1.0 l.Test.pvalue;
  let t = Test.one_sample ~mean:0.0 xs in
  check_close ~epsilon:1e-12 "two-sided p = 0" 0.0 t.Test.pvalue;
  let p = Test.paired [| 2.0; 2.0 |] [| 2.0; 2.0 |] in
  check_close ~epsilon:1e-12 "degenerate paired p = 1" 1.0 p.Test.pvalue

let test_too_few_points () =
  Alcotest.check_raises "one-sample n=1"
    (Invalid_argument "Stats.Test.one_sample: need at least 2 points")
    (fun () -> ignore (Test.one_sample ~mean:0.0 [| 1.0 |]));
  Alcotest.check_raises "sample_variance n=1"
    (Invalid_argument "Stats.sample_variance: need at least 2 points")
    (fun () -> ignore (Stats.sample_variance [| 1.0 |]))

(* ---------- confidence intervals ---------- *)

let test_mean_ci_pinned () =
  (* R t.test(c(1,2,3,4,5)): mean 3, 95% CI (1.036757, 4.963243) *)
  let lo, hi = Test.mean_ci [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_close "ci lo" 1.036757 lo;
  check_close "ci hi" 4.963243 hi

let test_mean_ci_brackets () =
  let xs = vs in
  let lo, hi = Test.mean_ci xs in
  let m = Stats.mean xs in
  Alcotest.(check bool) "lo <= mean <= hi" true (lo <= m && m <= hi);
  let lo99, hi99 = Test.mean_ci ~confidence:0.99 xs in
  Alcotest.(check bool) "wider at 99%" true (lo99 <= lo && hi >= hi && hi99 >= hi)

let test_bootstrap_ci () =
  let xs = vs in
  let a = Test.bootstrap_mean_ci ~seed:7 xs in
  let b = Test.bootstrap_mean_ci ~seed:7 xs in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "deterministic per seed" a b;
  let lo, hi = a in
  let m = Stats.mean xs in
  Alcotest.(check bool) "brackets the sample mean" true (lo <= m && m <= hi);
  let t_lo, t_hi = Test.mean_ci xs in
  (* same ballpark as the t interval on well-behaved data *)
  Alcotest.(check bool) "comparable to t interval" true
    (Float.abs (lo -. t_lo) < 0.5 && Float.abs (hi -. t_hi) < 0.5);
  let c = Test.bootstrap_mean_ci ~seed:8 xs in
  Alcotest.(check bool) "seed-sensitive" true (a <> c)

(* ---------- qcheck properties for the Stats primitives ---------- *)

let nonempty_floats =
  QCheck2.Gen.(list_size (int_range 1 60) (float_bound_exclusive 100.0))

let prop_percentile_50_is_median =
  QCheck2.Test.make ~name:"percentile 50 = median" ~count:300 nonempty_floats
    (fun l ->
      let xs = Array.of_list l in
      Float.abs (Stats.percentile xs 50.0 -. Stats.median xs) < 1e-9)

let prop_summary_ordered =
  QCheck2.Test.make ~name:"summary fields ordered" ~count:300 nonempty_floats
    (fun l ->
      let s = Stats.summarize (Array.of_list l) in
      s.Stats.min <= s.Stats.p25 +. 1e-9
      && s.Stats.p25 <= s.Stats.p50 +. 1e-9
      && s.Stats.p50 <= s.Stats.p75 +. 1e-9
      && s.Stats.p75 <= s.Stats.max +. 1e-9)

let correlatable =
  (* at least 2 points and nonzero variance on both coordinates *)
  QCheck2.Gen.(
    list_size (int_range 2 40)
      (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))

let prop_correlation_symmetric_bounded =
  QCheck2.Test.make ~name:"correlation symmetric and in [-1,1]" ~count:300
    correlatable (fun l ->
      let xs = Array.of_list (List.map fst l)
      and ys = Array.of_list (List.map snd l) in
      match Stats.correlation xs ys with
      | r ->
        Float.abs r <= 1.0 +. 1e-9
        && Float.abs (r -. Stats.correlation ys xs) < 1e-9
      | exception Invalid_argument _ ->
        (* zero variance draw: nothing to check *)
        true)

let prop_histogram_counts_sum =
  QCheck2.Test.make ~name:"histogram counts sum to n" ~count:300
    QCheck2.Gen.(pair (int_range 1 20) nonempty_floats)
    (fun (bins, l) ->
      let xs = Array.of_list l in
      let h = Stats.histogram ~bins xs in
      Array.length h = bins
      && Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h = Array.length xs)

let prop_sample_variance_vs_population =
  QCheck2.Test.make ~name:"sample variance = n/(n-1) * population" ~count:300
    QCheck2.Gen.(list_size (int_range 2 50) (float_bound_exclusive 100.0))
    (fun l ->
      let xs = Array.of_list l in
      let n = float_of_int (Array.length xs) in
      Float.abs
        (Stats.sample_variance xs -. (Stats.variance xs *. (n /. (n -. 1.0))))
      < 1e-6)

let prop_t_cdf_monotone =
  QCheck2.Test.make ~name:"student cdf monotone in t" ~count:200
    QCheck2.Gen.(
      triple (int_range 1 60)
        (float_bound_exclusive 10.0)
        (float_bound_exclusive 10.0))
    (fun (df, a, b) ->
      let df = float_of_int df in
      let lo = min a b -. 5.0 and hi = max a b in
      Test.student_cdf ~df lo <= Test.student_cdf ~df hi +. 1e-12)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_percentile_50_is_median; prop_summary_ordered;
      prop_correlation_symmetric_bounded; prop_histogram_counts_sum;
      prop_sample_variance_vs_population; prop_t_cdf_monotone;
    ]

let () =
  Alcotest.run "stats"
    [
      ( "special functions",
        [
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
          Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
          Alcotest.test_case "student cdf" `Quick test_student_cdf;
          Alcotest.test_case "t quantile" `Quick test_t_quantile;
        ] );
      ( "t-tests (pinned)",
        [
          Alcotest.test_case "one-sample" `Quick test_one_sample_pinned;
          Alcotest.test_case "one-sample df" `Quick test_one_sample_df;
          Alcotest.test_case "welch" `Quick test_two_sample_welch_pinned;
          Alcotest.test_case "student pooled" `Quick test_two_sample_student_pinned;
          Alcotest.test_case "two-sample df" `Quick test_two_sample_student_df;
          Alcotest.test_case "paired" `Quick test_paired_pinned;
        ] );
      ( "alternatives",
        [
          Alcotest.test_case "one-sample consistent" `Quick
            test_alternatives_one_sample;
          Alcotest.test_case "two-sample consistent" `Quick
            test_alternatives_two_sample;
          Alcotest.test_case "sample swap flips" `Quick test_sample_swap_flips;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "all zeros" `Quick test_degenerate_all_zeros;
          Alcotest.test_case "constant shifted" `Quick test_degenerate_shifted;
          Alcotest.test_case "too few points" `Quick test_too_few_points;
        ] );
      ( "confidence intervals",
        [
          Alcotest.test_case "t interval pinned" `Quick test_mean_ci_pinned;
          Alcotest.test_case "t interval brackets" `Quick test_mean_ci_brackets;
          Alcotest.test_case "bootstrap" `Quick test_bootstrap_ci;
        ] );
      ("properties", qcheck_cases);
    ]
