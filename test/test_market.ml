(* Dedicated market battery: grid regression cases for the price-grid
   off-by-one, determinism over every result field, structural
   invariants, and a population-scale stability property.

   (test_econ.ml keeps the economic-shape tests — Salop benchmark,
   lock-in raises markup, etc.; this file owns the mechanics.) *)

module Rng = Tussle_prelude.Rng
module Market = Tussle_econ.Market

let check_float = Alcotest.(check (float 1e-9))

let run ?(seed = 42) cfg = Market.run (Rng.create seed) cfg

(* ---------- price grid ---------- *)

(* Regression: (ceiling - floor) / step truncated to 99 for the default
   10.0 / 0.1 span, so the ceiling was never on the grid and a
   monopolist could not post it. *)
let test_grid_reaches_ceiling_step_01 () =
  let grid = Market.price_grid Market.default_config in
  Alcotest.(check int) "101 points" 101 (Array.length grid);
  check_float "first is floor" Market.default_config.Market.price_floor grid.(0);
  check_float "last is ceiling exactly"
    Market.default_config.Market.price_ceiling
    grid.(Array.length grid - 1)

let test_grid_reaches_ceiling_step_03 () =
  (* 0.3 does not divide 10: the final interval is shorter than the
     step, but the ceiling must still be the last point *)
  let cfg = { Market.default_config with Market.price_step = 0.3 } in
  let grid = Market.price_grid cfg in
  let g = Array.length grid in
  check_float "last is ceiling exactly" cfg.Market.price_ceiling grid.(g - 1);
  Alcotest.(check bool) "penultimate below ceiling" true
    (grid.(g - 2) < cfg.Market.price_ceiling)

let test_grid_sorted_and_bounded () =
  List.iter
    (fun step ->
      let cfg = { Market.default_config with Market.price_step = step } in
      let grid = Market.price_grid cfg in
      Array.iteri
        (fun i p ->
          Alcotest.(check bool) "within bounds" true
            (p >= cfg.Market.price_floor && p <= cfg.Market.price_ceiling);
          if i > 0 then
            Alcotest.(check bool) "strictly increasing" true (p > grid.(i - 1)))
        grid)
    [ 0.1; 0.3; 0.25; 1.0; 3.0 ]

let test_degenerate_grid () =
  (* floor = ceiling is a legal one-point grid *)
  let cfg =
    { Market.default_config with Market.price_floor = 2.0; price_ceiling = 2.0 }
  in
  let grid = Market.price_grid cfg in
  Alcotest.(check int) "one point" 1 (Array.length grid);
  check_float "the point" 2.0 grid.(0)

(* Regression: with the ceiling off-grid, a monopolist facing slack WTP
   capped out one step below the ceiling. *)
let test_monopoly_reaches_ceiling () =
  let cfg =
    {
      Market.default_config with
      Market.n_providers = 1;
      Market.wtp = 20.0 (* slack: ceiling-priced service still worth it *);
    }
  in
  let r = run cfg in
  check_float "monopoly posts the ceiling" cfg.Market.price_ceiling
    r.Market.mean_price;
  Alcotest.(check bool) "everyone still subscribes" true
    (r.Market.subscribed_ratio > 0.99)

let test_monopoly_price_on_grid () =
  (* with one provider, mean_price is that provider's posted price and
     must be a grid member (the snapped-anchor / best-response
     invariant observed from outside) *)
  let cfg = { Market.default_config with Market.n_providers = 1 } in
  let grid = Market.price_grid cfg in
  let r = run cfg in
  Alcotest.(check bool) "posted price is a grid member" true
    (Array.exists (fun p -> p = r.Market.mean_price) grid)

(* ---------- determinism ---------- *)

let test_deterministic_all_fields () =
  let cfg = { Market.default_config with Market.switching_cost = 1.0 } in
  let a = run ~seed:7 cfg and b = run ~seed:7 cfg in
  check_float "mean_price" a.Market.mean_price b.Market.mean_price;
  check_float "mean_markup" a.Market.mean_markup b.Market.mean_markup;
  check_float "churn_rate" a.Market.churn_rate b.Market.churn_rate;
  check_float "consumer_surplus" a.Market.consumer_surplus
    b.Market.consumer_surplus;
  check_float "provider_profit" a.Market.provider_profit b.Market.provider_profit;
  check_float "hhi" a.Market.hhi b.Market.hhi;
  check_float "subscribed_ratio" a.Market.subscribed_ratio
    b.Market.subscribed_ratio;
  Alcotest.(check (array (float 1e-9)))
    "price_history" a.Market.price_history b.Market.price_history

(* ---------- invariants ---------- *)

let check_invariants cfg r =
  Alcotest.(check bool) "subscribed_ratio in [0,1]" true
    (r.Market.subscribed_ratio >= 0.0 && r.Market.subscribed_ratio <= 1.0);
  Alcotest.(check bool) "hhi in [0,1]" true
    (r.Market.hhi >= 0.0 && r.Market.hhi <= 1.0);
  Alcotest.(check bool) "churn_rate in [0,1]" true
    (r.Market.churn_rate >= 0.0 && r.Market.churn_rate <= 1.0);
  Alcotest.(check bool) "mean price within grid bounds" true
    (r.Market.mean_price >= cfg.Market.price_floor
    && r.Market.mean_price <= cfg.Market.price_ceiling);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "history within grid bounds" true
        (p >= cfg.Market.price_floor && p <= cfg.Market.price_ceiling))
    r.Market.price_history;
  Alcotest.(check int) "history length" cfg.Market.periods
    (Array.length r.Market.price_history)

let test_invariants_across_configs () =
  List.iter
    (fun cfg -> check_invariants cfg (run cfg))
    [
      Market.default_config;
      { Market.default_config with Market.n_providers = 1 };
      { Market.default_config with Market.n_providers = 16 };
      { Market.default_config with Market.switching_cost = 3.0 };
      { Market.default_config with Market.wtp = 0.5 (* most stay out *) };
      { Market.default_config with Market.price_step = 0.3 };
    ]

let test_prohibitive_switching_cost_freezes_churn () =
  (* switching can never pay when it costs more than the whole utility
     on offer: churn must be exactly zero *)
  let cfg =
    { Market.default_config with Market.switching_cost = 100.0 }
  in
  let r = run cfg in
  check_float "zero churn" 0.0 r.Market.churn_rate

(* ---------- population-scale stability (qcheck) ---------- *)

(* The SoA rewrite exists to run the same economics at 100x the
   population: the equilibrium price must be a property of the
   configuration, not of the sample size.  10x the consumers, same
   seed family: the time-averaged price over the last third moves by at
   most a few grid steps (finite-sample demand noise).  The comparison
   averages the tail of [price_history] rather than the final-period
   snapshot because moderate switching costs produce Edgeworth price
   cycles whose *phase* at the horizon depends on the sample — the
   cycle's level is population-stable, the snapshot is not.  Large
   switching costs (around the transport cost and up) change the
   economics itself with population (lock-in territory width), so the
   property quantifies over the competitive-to-moderate range. *)
let prop_population_scale_stable =
  QCheck2.Test.make ~count:15 ~name:"10x consumers: mean price stable"
    QCheck2.Gen.(
      pair (int_range 1 1000) (int_range 0 3 (* switching cost in tenths *)))
    (fun (seed, sc10) ->
      let sc = float_of_int sc10 /. 10.0 in
      let cfg n =
        {
          Market.default_config with
          Market.n_consumers = n;
          Market.switching_cost = sc;
        }
      in
      let tail_mean r =
        let h = r.Market.price_history in
        let n = Array.length h in
        let k = 10 in
        let s = ref 0.0 in
        for i = n - k to n - 1 do
          s := !s +. h.(i)
        done;
        !s /. float_of_int k
      in
      let small = Market.run (Rng.create seed) (cfg 400) in
      let large = Market.run (Rng.create seed) (cfg 4000) in
      Float.abs (tail_mean small -. tail_mean large) <= 0.5)

let () =
  Alcotest.run "market"
    [
      ( "grid",
        [
          Alcotest.test_case "ceiling on grid, step 0.1" `Quick
            test_grid_reaches_ceiling_step_01;
          Alcotest.test_case "ceiling on grid, step 0.3" `Quick
            test_grid_reaches_ceiling_step_03;
          Alcotest.test_case "sorted and bounded" `Quick
            test_grid_sorted_and_bounded;
          Alcotest.test_case "degenerate one-point grid" `Quick
            test_degenerate_grid;
          Alcotest.test_case "monopoly reaches ceiling" `Quick
            test_monopoly_reaches_ceiling;
          Alcotest.test_case "monopoly price on grid" `Quick
            test_monopoly_price_on_grid;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "all result fields" `Quick
            test_deterministic_all_fields;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "across configs" `Quick test_invariants_across_configs;
          Alcotest.test_case "prohibitive switching cost: zero churn" `Quick
            test_prohibitive_switching_cost_freezes_churn;
        ] );
      ( "scale",
        [ QCheck_alcotest.to_alcotest prop_population_scale_stable ] );
    ]
