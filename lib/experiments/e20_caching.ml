(* E20 — Enhancing the mature application at the newcomer's expense
   (§VI-A).

   A client fetches content across the wide area.  An access-provider
   cache understands the mature application's protocol and serves its
   popular objects locally; the unproven new application gets no such
   help.  The enhancement is real — and so is the widening gap it opens
   between incumbent and newcomer. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Stats = Tussle_prelude.Stats
module Packet = Tussle_netsim.Packet
module Cache = Tussle_netsim.Cache

(* latency model: cache at the access provider (1 hop, 2 ms RTT);
   origin servers across the wide area (5 hops, 40 ms RTT) *)
let rtt_cache = 0.002
let rtt_origin = 0.040

let zipf_weights n =
  Array.init n (fun i -> 1.0 /. float_of_int (i + 1))

let mean_latency rng ~app ~cache ~requests ~objects =
  let weights = zipf_weights objects in
  let latencies =
    Array.init requests (fun i ->
        let obj = Rng.weighted_index rng weights in
        let p =
          Packet.make ~app
            ~port:(8000 + obj) (* object id rides in the port *)
            ~id:i ~src:0 ~dst:99 ~created:0.0 ()
        in
        let served_locally =
          match cache with Some c -> Cache.serves c p | None -> false
        in
        if served_locally then rtt_cache else rtt_origin)
  in
  Stats.mean latencies

let run () =
  let requests = 5_000 and objects = 50 in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "deployment"; "web latency (ms)"; "new-app latency (ms)";
        "incumbent advantage" ]
  in
  let row name ~with_cache =
    let rng = Rng.create 1020 in
    let cache =
      if with_cache then Some (Cache.create ~capacity:25 ~app:Packet.Web ())
      else None
    in
    let web = mean_latency rng ~app:Packet.Web ~cache ~requests ~objects in
    let game = mean_latency rng ~app:Packet.Game ~cache ~requests ~objects in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.1f" (1000.0 *. web);
        Printf.sprintf "%.1f" (1000.0 *. game);
        Printf.sprintf "%.1fx" (game /. web);
      ];
    (web, game)
  in
  let web0, game0 = row "no caches (transparent net)" ~with_cache:false in
  let web1, game1 = row "web caches at the access ISP" ~with_cache:true in
  (* and the cache is useless against encrypted content *)
  let rng = Rng.create 1020 in
  let cache = Cache.create ~capacity:25 ~app:Packet.Web () in
  let enc_latencies =
    Array.init 500 (fun i ->
        let p =
          Packet.make ~app:Packet.Web ~encrypted:true
            ~port:(8000 + Rng.int rng 5) ~id:i ~src:0 ~dst:99 ~created:0.0 ()
        in
        if Cache.serves cache p then rtt_cache else rtt_origin)
  in
  let enc_mean = Stats.mean enc_latencies in
  let footer =
    Printf.sprintf
      "\nencrypted web traffic sees %.1f ms: the enhancement requires peeking\n"
      (1000.0 *. enc_mean)
  in
  let ok =
    (* baseline: no advantage either way *)
    Float.abs (game0 -. web0) < 1e-9
    (* the cache speeds the incumbent up a lot... *)
    && web1 < 0.6 *. web0
    (* ...does nothing for the new application... *)
    && Float.abs (game1 -. game0) < 1e-9
    (* ...so the incumbent advantage opens up *)
    && game1 /. web1 > 1.5
    (* and encryption forfeits the enhancement entirely *)
    && Float.abs (enc_mean -. rtt_origin) < 1e-9
  in
  (Table.render t ^ footer, ok)

let experiment =
  {
    Experiment.id = "E20";
    title = "Caches enhance the mature application, not the new one";
    paper_claim =
      "\"The desire to improve important applications (e.g., the Web), \
       leads to the deployment of caches, mirror sites, kludges to the \
       DNS and so on ... an increasing focus on improving existing \
       applications at the expense of new ones\" — the web gets faster, \
       the unproven application does not, and the gap is itself a \
       barrier to innovation.  (And the cache must peek: end-to-end \
       encryption forfeits the enhancement, the user's choice from E9.)";
    run;
    sweep = None;
  }
