(* E26 — Intentional perversion of DNS information, and choice as the
   counter (§IV-D). *)

module Table = Tussle_prelude.Table
module Resolver = Tussle_naming.Resolver

let zone =
  Resolver.authority
    [
      { Resolver.name = "news.example"; address = 10; ttl = 300.0 };
      { Resolver.name = "mail.example"; address = 11; ttl = 300.0 };
      { Resolver.name = "p2p.example"; address = 12; ttl = 300.0 };
      { Resolver.name = "rival-video.example"; address = 13; ttl = 300.0 };
    ]

let probe_names =
  [ "news.example"; "mail.example"; "p2p.example"; "rival-video.example";
    "tpyo.example"; "another-tpyo.example" ]

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Left ]
      [ "resolver the user is handed"; "truthful answers"; "what the lies are" ]
  in
  let resolvers =
    [
      ("honest", Resolver.Honest, "-");
      ( "NXDOMAIN-monetizing ISP resolver", Resolver.Nxdomain_monetizing 99,
        "typos resolve to the ad server" );
      ( "blocking resolver", Resolver.Blocking [ "p2p.example" ],
        "the disfavored application is unresolvable" );
      ( "redirecting resolver",
        Resolver.Redirecting [ ("rival-video.example", 99) ],
        "the rival's name points at the operator" );
    ]
  in
  let scores =
    List.map
      (fun (name, policy, lies) ->
        let r = Resolver.create ~policy zone in
        let score = Resolver.truthfulness r ~now:0.0 ~names:probe_names in
        Table.add_row t [ name; Table.fmt_pct score; lies ];
        (name, score))
      resolvers
  in
  (* the user's counter-move: switch to a third-party honest resolver *)
  let switched = Resolver.create ~policy:Resolver.Honest zone in
  let restored = Resolver.truthfulness switched ~now:0.0 ~names:probe_names in
  Table.add_row t
    [ "user switches to a third-party resolver"; Table.fmt_pct restored;
      "choice restores truth" ];
  let get name = List.assoc name scores in
  let ok =
    get "honest" = 1.0
    && get "NXDOMAIN-monetizing ISP resolver" < 1.0
    && get "blocking resolver" < 1.0
    && get "redirecting resolver" < 1.0
    && restored = 1.0
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E26";
    title = "DNS perversion, and resolver choice as the counter-move";
    paper_claim =
      "\"the different parties to the tussle use different mechanisms \
       ... such as restrictions on routing, tunnels and overlays, or \
       intentional perversion of DNS information\" (§IV-D) — \
       monetizing, blocking and redirecting resolvers each lie about a \
       different part of the namespace; the user's remedy is the \
       paper's own principle, the choice of which resolver to use \
       (\"users can select what servers they use\").";
    run;
    sweep = None;
  }
