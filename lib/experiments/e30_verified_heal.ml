(* E30 — Data-plane-verified healing: gray failures, flaps and
   blackholes vs hello-only detection.

   E29 showed a hello-timeout control plane healing an honest outage:
   the link goes administratively down, hellos stop, the table moves.
   This experiment injects the faults hello-based liveness is
   structurally blind to — gray loss (data dies while the link answers
   hellos), a flapping link whose phases fit inside the detection
   window, and a Byzantine node that keeps answering hellos while
   silently discarding transit traffic — and contrasts the same
   hello-only control plane against {!Tussle_routing.Selfheal}'s
   data-plane-verified mode: windowed delivered/offered probing of
   each adjacency, end-to-end transit probes with quarantine, and flap
   damping.  Part B sweeps seeded covert faults; the statistical
   surface pairs hello-only and verified availability per seed. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Pool = Tussle_prelude.Pool
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Traffic = Tussle_netsim.Traffic
module Linkstate = Tussle_routing.Linkstate
module Selfheal = Tussle_routing.Selfheal
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject
module Seed = Tussle_fault.Seed

let nodes = 6
let src = 0
let dst = 3
let edge = { Topology.latency = 0.005; bandwidth_bps = 1e7 }
let packets = 120
let send_interval = 0.025
let first_send = 0.05
let heal_until = 4.0
let guard_horizon = 600.0

(* both control planes use `Hops so path choice (and therefore which
   links the faults target) is identical; only detection differs *)
let hello_config = { Selfheal.default_config with Selfheal.metric = `Hops }
let verified_config = { Selfheal.verified_config with Selfheal.metric = `Hops }

type mode = Hello_only | Verified

let mode_name = function
  | Hello_only -> "hello-only"
  | Verified -> "data-plane-verified"

let config_of = function
  | Hello_only -> hello_config
  | Verified -> verified_config

type run_stats = {
  delivered : int;
  offered : int;
  covert_drops : int;  (* gray-loss + blackholed, flow packets only *)
  reconvergences : int;
  suppressions : int;
  convergence_s : float option;
  drained : bool;
}

let fresh_links () = Topology.to_links (Topology.ring ~edge nodes)

let primary_path () =
  let static = Linkstate.compute_live (fresh_links ()) ~metric:`Hops in
  match Linkstate.path static ~src ~dst with
  | Some p -> p
  | None -> failwith "E30: ring must connect src and dst"

let rec adjacent_pairs = function
  | a :: (b :: _ as rest) -> (a, b) :: adjacent_pairs rest
  | _ -> []

(* The verified control plane injects its own transit-probe packets
   (ids in the reserved range), so flow accounting must filter the
   outcome ledger rather than read the net totals. *)
let flow_outcomes net =
  List.filter
    (fun ((p : Packet.t), _) -> p.Packet.id < Selfheal.probe_id_base)
    (Net.outcomes net)

let run_mode ~seed ~plan ~fault_at mode =
  let links = fresh_links () in
  let static = Linkstate.compute_live links ~metric:`Hops in
  let net = Net.create links (Linkstate.forwarding static) in
  let engine = Engine.create () in
  let heal =
    Selfheal.attach ~config:(config_of mode) ~until:heal_until engine net
  in
  if plan <> [] then Inject.install ~seed ~plan engine net;
  let gen = Traffic.create (Rng.create (seed + 1)) in
  for k = 0 to packets - 1 do
    ignore
      (Engine.schedule engine
         (first_send +. (send_interval *. float_of_int k))
         (fun engine ->
           Net.inject net engine
             (Traffic.next_packet gen ~src ~dst ~created:(Engine.now engine) ())))
  done;
  Engine.run ~until:guard_horizon engine;
  let outcomes = flow_outcomes net in
  let count f = List.length (List.filter f outcomes) in
  {
    delivered = count (fun (_, o) -> match o with Net.Delivered _ -> true | _ -> false);
    offered = List.length outcomes;
    covert_drops =
      count (fun (_, o) ->
          match o with
          | Net.Lost (Net.Gray_loss _) | Net.Lost (Net.Blackholed _) -> true
          | _ -> false);
    reconvergences = Selfheal.reconvergences heal;
    suppressions = Selfheal.suppressions heal;
    convergence_s =
      (match
         List.filter (fun t -> t >= fault_at) (Selfheal.reconvergence_times heal)
       with
      | t :: _ -> Some (t -. fault_at)
      | [] -> None);
    drained = Engine.pending engine = 0;
  }

let pct_of r = 100.0 *. float_of_int r.delivered /. float_of_int packets
let pct = Printf.sprintf "%.1f"

(* ---------- the covert fault grammar, drawn per seed ---------- *)

type covert_kind = Gray | Flap | Blackhole

let kind_name = function
  | Gray -> "gray-loss"
  | Flap -> "flap"
  | Blackhole -> "blackhole"

(* One covert episode aimed at the primary path: a gray link, a
   fast flap (phases near the hello detection threshold), or a
   Byzantine interior node.  Same derivation for part B and the
   statistical surface. *)
let draw_covert rng path_pairs =
  let u, v = Rng.choice_list rng path_pairs in
  let from_s = Rng.uniform rng 0.3 0.9 in
  let until_s = from_s +. Rng.uniform rng 0.8 1.6 in
  let w = Plan.window from_s until_s in
  match Rng.int rng 3 with
  | 0 -> (Gray, Plan.Gray_loss { u; v; w; prob = Rng.uniform rng 0.7 0.95 }, w)
  | 1 ->
    ( Flap,
      Plan.Link_flap
        { u; v; w;
          period_s = Rng.uniform rng 0.15 0.3;
          duty = Rng.uniform rng 0.4 0.6 },
      w )
  | _ ->
    (* the interior endpoint: blackholing src or dst would just stop
       the flow at its ends rather than eat it in transit *)
    let node = if u <> src && u <> dst then u else v in
    (Blackhole, Plan.Blackhole { node; w }, w)

(* ---------- part B: seeded covert sweep, hello-only vs verified ---------- *)

type sweep_item = {
  index : int;
  item_seed : int;
  kind : covert_kind;
  spec : Plan.spec;
  w : Plan.window;
}

type sweep_result = {
  item : sweep_item;
  hello_r : run_stats;
  verified_r : run_stats;
}

let draw_items ~fault_seed ~count path_pairs =
  List.init count (fun k ->
      let item_seed = fault_seed + (1013 * (k + 1)) in
      let kind, spec, w = draw_covert (Rng.create item_seed) path_pairs in
      { index = k; item_seed; kind; spec; w })

let run_item item =
  let fault_at = item.w.Plan.from_s in
  let plan = [ item.spec ] in
  {
    item;
    hello_r = run_mode ~seed:item.item_seed ~plan ~fault_at Hello_only;
    verified_r = run_mode ~seed:item.item_seed ~plan ~fault_at Verified;
  }

let run () =
  let fault_seed = Seed.get () in
  let path = primary_path () in
  let path_pairs = adjacent_pairs path in
  let au, av = List.hd path_pairs in
  let bu, bv = List.nth path_pairs 1 in
  let bh_node = if bv <> src && bv <> dst then bv else bu in
  (* part A: one composite plan walking all three covert fault classes
     down the primary path, in disjoint windows off the hello grid *)
  let plan =
    [
      Plan.Gray_loss { u = au; v = av; w = Plan.window 0.33 1.22; prob = 0.9 };
      Plan.Link_flap
        { u = bu; v = bv; w = Plan.window 1.33 2.12; period_s = 0.21;
          duty = 0.5 };
      Plan.Blackhole { node = bh_node; w = Plan.window 2.23 3.02 };
    ]
  in
  let fault_at = 0.33 in
  let healthy = run_mode ~seed:(fault_seed + 7) ~plan:[] ~fault_at Hello_only in
  let hello_r = run_mode ~seed:(fault_seed + 7) ~plan ~fault_at Hello_only in
  let verified_r = run_mode ~seed:(fault_seed + 7) ~plan ~fault_at Verified in
  let ta =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Left ]
      [ "control plane"; "delivered"; "% offered"; "covert drops"; "reconv";
        "suppress"; "first move" ]
  in
  List.iter
    (fun (name, r) ->
      Table.add_row ta
        [ name;
          Printf.sprintf "%d/%d" r.delivered r.offered;
          pct (pct_of r);
          string_of_int r.covert_drops;
          string_of_int r.reconvergences;
          string_of_int r.suppressions;
          (match r.convergence_s with
          | Some c -> Printf.sprintf "%.3f s" c
          | None -> "-") ])
    [ ("healthy (no fault)", healthy); (mode_name Hello_only, hello_r);
      (mode_name Verified, verified_r) ];
  (* part B *)
  let items = draw_items ~fault_seed ~count:6 path_pairs in
  let sweep = Pool.map run_item items in
  let tb =
    Table.create
      ~aligns:
        [ Table.Right; Table.Left; Table.Left; Table.Right; Table.Right;
          Table.Right ]
      [ "fault"; "kind"; "window"; "hello-only %"; "verified %";
        "first move" ]
  in
  List.iter
    (fun s ->
      Table.add_row tb
        [ string_of_int s.item.index;
          kind_name s.item.kind;
          Printf.sprintf "[%.2f, %.2f)" s.item.w.Plan.from_s
            s.item.w.Plan.until_s;
          pct (pct_of s.hello_r);
          pct (pct_of s.verified_r);
          (match s.verified_r.convergence_s with
          | Some c -> Printf.sprintf "%.3f s" c
          | None -> "-") ])
    sweep;
  let mean f =
    List.fold_left (fun acc s -> acc +. f s) 0.0 sweep
    /. float_of_int (List.length sweep)
  in
  let mean_hello = mean (fun s -> pct_of s.hello_r) in
  let mean_verified = mean (fun s -> pct_of s.verified_r) in
  let body =
    Printf.sprintf
      "A %d-packet flow %d -> %d on a %d-ring; the primary path %s is hit \
       by a gray\nlink %d-%d, a flapping link %d-%d, then a blackholed \
       node %d — all while every\nhello passes (fault seed %d):\n\n\
       %s\n\
       Sweep of 6 seeded covert faults on the primary path, hello-only vs \
       verified\n(data-plane probes %.0f ms, transit probes + quarantine, \
       flap damping):\n\n\
       %s\n\
       mean availability: hello-only %.1f%%, verified %.1f%% of offered\n"
      packets src dst nodes
      (String.concat "-" (List.map string_of_int path))
      au av bu bv bh_node fault_seed (Table.render ta)
      (Selfheal.default_data_plane.Selfheal.probe_interval *. 1000.0)
      (Table.render tb) mean_hello mean_verified
  in
  let ok =
    (* clean baseline, every run drains, flow accounting closed *)
    healthy.delivered = packets
    && healthy.covert_drops = 0
    && List.for_all
         (fun r -> r.drained && r.offered = packets)
         [ healthy; hello_r; verified_r ]
    (* hello-only is structurally blind: the covert plan eats over a
       quarter of the flow and the ledger says so *)
    && pct_of hello_r < 75.0
    && hello_r.covert_drops > 0
    (* the verified control plane detects what hellos cannot: it
       delivers >= 85% of offered, moves within a second of the first
       fault, and strictly shrinks the covert damage *)
    && pct_of verified_r >= 85.0
    && verified_r.reconvergences >= 2
    && verified_r.covert_drops < hello_r.covert_drops
    && (match verified_r.convergence_s with
       | Some c -> c >= 0.0 && c < 1.0
       | None -> false)
    (* and the seeded sweep generalizes the gap *)
    && List.for_all
         (fun s ->
           s.hello_r.drained && s.verified_r.drained
           && pct_of s.verified_r >= pct_of s.hello_r)
         sweep
    && mean_verified > mean_hello
    && mean_verified >= 85.0
  in
  (body, ok)

(* ---------- statistical sweep surface ----------

   One replicate draws one covert fault on the primary path (same
   derivation as part B, from the sweep's per-run seed) and runs the
   {e same} fault under hello-only and data-plane-verified healing, so
   the availability metrics are paired per seed. *)

let probe ~seed =
  let path_pairs = adjacent_pairs (primary_path ()) in
  let _, spec, w = draw_covert (Rng.create seed) path_pairs in
  let fault_at = w.Plan.from_s in
  let hello_r = run_mode ~seed ~plan:[ spec ] ~fault_at Hello_only in
  let verified_r = run_mode ~seed ~plan:[ spec ] ~fault_at Verified in
  [
    ("availability_hello", pct_of hello_r);
    ("availability_verified", pct_of verified_r);
    ("availability_gap", pct_of verified_r -. pct_of hello_r);
    ("covert_hello", float_of_int hello_r.covert_drops);
    ("covert_verified", float_of_int verified_r.covert_drops);
    ( "verified_convergence_s",
      Option.value ~default:0.0 verified_r.convergence_s );
  ]

let judge sample =
  let module T = Tussle_prelude.Stats.Test in
  [
    {
      Experiment.claim = "availability(verified) > availability(hello-only)";
      test = "paired t, greater";
      result =
        T.paired ~alternative:T.Greater
          (sample "availability_verified")
          (sample "availability_hello");
    };
    {
      Experiment.claim =
        "availability(verified) > availability(hello-only), unpaired";
      test = "welch t, greater";
      result =
        T.two_sample ~alternative:T.Greater
          (sample "availability_verified")
          (sample "availability_hello");
    };
    {
      Experiment.claim = "covert drops shrink under verification";
      test = "paired t, less";
      result =
        T.paired ~alternative:T.Less
          (sample "covert_verified")
          (sample "covert_hello");
    };
    {
      Experiment.claim = "mean verified availability > 80% of offered";
      test = "one-sample t, greater";
      result =
        T.one_sample ~alternative:T.Greater ~mean:80.0
          (sample "availability_verified");
    };
  ]

let experiment =
  {
    Experiment.id = "E30";
    title = "Verified healing: gray failure, flap and blackhole";
    paper_claim =
      "\"The fundamental tussle is between those who want to deliver and \
       those who want to block or subvert\" (§V) and \"failures of \
       transparency will occur — design what happens then\" (§VI-A): a \
       control plane that trusts liveness signals (hellos) is blind to \
       adversaries and gray failures that answer the signal while \
       discarding the traffic; verifying the data plane itself — probing \
       what is actually delivered, not what is claimed — restores the \
       ability to route around silent subversion.";
    run;
    sweep = Some { Experiment.probe; judge };
  }
