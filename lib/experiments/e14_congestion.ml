(* E14 — The congestion-control tussle (§II-B): social pressure vs
   mechanism. *)

module Table = Tussle_prelude.Table
module Congestion = Tussle_netsim.Congestion

let mk_flows ~total ~aggressive =
  Array.init total (fun i ->
      if i < aggressive then Congestion.Aggressive else Congestion.Compliant)

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "cheaters"; "bottleneck"; "honest goodput"; "cheater goodput"; "fairness" ]
  in
  let total = 10 in
  let cells = ref [] in
  List.iter
    (fun aggressive ->
      List.iter
        (fun (rname, regime) ->
          let cfg =
            Congestion.default_config ~kinds:(mk_flows ~total ~aggressive)
          in
          let r = Congestion.run cfg regime in
          cells := ((aggressive, regime), r) :: !cells;
          Table.add_row t
            [
              Printf.sprintf "%d/%d" aggressive total;
              rname;
              Printf.sprintf "%.1f" r.Congestion.mean_compliant;
              Printf.sprintf "%.1f" r.Congestion.mean_aggressive;
              Printf.sprintf "%.3f" r.Congestion.jain;
            ])
        [ ("FIFO (deployed)", Congestion.Fifo);
          ("fair queueing", Congestion.Fair_queueing) ])
    [ 0; 1; 3; 5 ];
  let get a r = List.assoc (a, r) !cells in
  let fifo_all_honest = get 0 Congestion.Fifo in
  let fifo_cheaters = get 3 Congestion.Fifo in
  let fq_cheaters = get 3 Congestion.Fair_queueing in
  let fair_share = 100.0 /. float_of_int total in
  let ok =
    (* all honest: FIFO works acceptably well (the paper: "it has worked
       acceptably well to date") *)
    fifo_all_honest.Congestion.jain > 0.95
    && fifo_all_honest.Congestion.utilization > 0.7
    (* cheaters under FIFO: nothing bounds the shift — honest flows are
       starved to a sliver of their fair share *)
    && fifo_cheaters.Congestion.mean_compliant < 0.05 *. fair_share
    && fifo_cheaters.Congestion.jain < 0.7
    (* fair queueing bounds the shift: honest flows keep the share AIMD
       earns them (unchanged from the all-honest world), and cheaters
       pick up only the slack honest flows leave, far below their FIFO
       haul *)
    && fq_cheaters.Congestion.mean_compliant
       > 0.9 *. fifo_all_honest.Congestion.mean_compliant
    && fq_cheaters.Congestion.mean_aggressive
       < 0.6 *. fifo_cheaters.Congestion.mean_aggressive
    && fq_cheaters.Congestion.jain > 0.85
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E14";
    title = "Congestion control: social pressure vs bounding mechanism";
    paper_claim =
      "\"TCP congestion control 'works' when and only when the majority \
       of end-systems both participate and follow a common set of rules \
       ... Should this balance change, the technical design of the \
       system will do nothing to bound or guide the resulting shift\" — \
       under FIFO, aggressive endpoints take what they want; a \
       fair-queueing bottleneck is a design that does bound the shift \
       (the Savage-style answer for an uncooperative network).";
    run;
    sweep = None;
  }
