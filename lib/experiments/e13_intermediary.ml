(* E13 — Choice as burden; rating intermediaries emerge (§IV-B). *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Intermediary = Tussle_econ.Intermediary

let servers =
  [
    { Intermediary.id = 0; quality = 10.0; price = 5.0 };
    { Intermediary.id = 1; quality = 8.0; price = 5.0 };
    { Intermediary.id = 2; quality = 6.0; price = 5.0 };
    { Intermediary.id = 3; quality = 5.0; price = 5.0 };
    { Intermediary.id = 4; quality = 4.0; price = 5.0 };
  ]

let cfg adoption =
  {
    Intermediary.servers;
    n_consumers = 20_000;
    sophistication = (fun u -> u);
    rater_adoption = adoption;
  }

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "rater adoption"; "naive surplus"; "expert surplus"; "best server share" ]
  in
  let results =
    List.map
      (fun adoption ->
        let r = Intermediary.run (Rng.create 1013) (cfg adoption) in
        Table.add_row t
          [
            Table.fmt_pct adoption;
            Printf.sprintf "%.2f" r.Intermediary.naive_surplus;
            Printf.sprintf "%.2f" r.Intermediary.expert_surplus;
            Table.fmt_pct r.Intermediary.best_server_share;
          ];
        (adoption, r))
      [ 0.0; 0.3; 0.6; 0.9 ]
  in
  let without = List.assoc 0.0 results in
  let with_rater = List.assoc 0.9 results in
  let recovered = Intermediary.surplus_recovered ~without ~with_rater in
  let footer =
    Printf.sprintf
      "\nthe intermediary closes %.0f%% of the naive users' surplus gap\n"
      (100.0 *. recovered)
  in
  let ok =
    without.Intermediary.expert_surplus
    > without.Intermediary.naive_surplus +. 0.5
    && recovered > 0.6
    && with_rater.Intermediary.best_server_share
       > without.Intermediary.best_server_share
  in
  (Table.render t ^ footer, ok)

let experiment =
  {
    Experiment.id = "E13";
    title = "Choice burdens the naive; rating intermediaries repair it";
    paper_claim =
      "\"For naive users, choice may be a burden, not a blessing.  To \
       compensate for this complexity, we may see the emergence of third \
       parties that rate services (the on-line analog of Consumers \
       Reports)\" — without a rater, unsophisticated users capture far \
       less surplus than experts; a trusted rater closes most of the \
       gap.";
    run;
    sweep = None;
  }
