(* E25 — NAT: winning the addressing tussle, paying in transparency
   (§I, §VI-A). *)

module Table = Tussle_prelude.Table
module Packet = Tussle_netsim.Packet
module Nat = Tussle_netsim.Nat

let household = [ 100; 101; 102; 103; 104 ]

let run () =
  let nat = Nat.create ~public:1 ~privates:household in
  (* every host opens an outbound web flow: all succeed, and the ISP
     still sees a single address *)
  let outbound_ok = ref 0 in
  List.iteri
    (fun i h ->
      let p = Packet.make ~app:Packet.Web ~id:i ~src:h ~dst:50 ~created:0.0 () in
      let q = Nat.translate_out nat p in
      if q.Packet.src = Nat.public_address nat then incr outbound_ok)
    household;
  (* replies to those flows come back in *)
  let replies_ok = ref 0 in
  for port = 49152 to 49156 do
    let reply =
      Packet.make ~app:Packet.Web ~port ~id:(100 + port) ~src:50 ~dst:1
        ~created:0.0 ()
    in
    match Nat.translate_in nat reply with
    | Some _ -> incr replies_ok
    | None -> ()
  done;
  (* a new peer-to-peer application tries to call IN to each host *)
  let unsolicited_ok = ref 0 in
  List.iteri
    (fun i _ ->
      let call =
        Packet.make ~app:Packet.Game ~port:(27015 + i) ~id:(200 + i) ~src:60
          ~dst:1 ~created:0.0 ()
      in
      match Nat.translate_in nat call with
      | Some _ -> incr unsolicited_ok
      | None -> ())
    household;
  let p2p_before = !unsolicited_ok in
  let drops_before = Nat.inbound_drops nat in
  (* the user's counter-counter-move: port forwards *)
  List.iteri
    (fun i h ->
      Nat.add_port_forward nat ~public_port:(27015 + i) ~host:h ~port:27015)
    household;
  let forwarded_ok = ref 0 in
  List.iteri
    (fun i _ ->
      let call =
        Packet.make ~app:Packet.Game ~port:(27015 + i) ~id:(300 + i) ~src:60
          ~dst:1 ~created:0.0 ()
      in
      match Nat.translate_in nat call with
      | Some _ -> incr forwarded_ok
      | None -> ())
    household;
  let n = List.length household in
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right ] [ "NAT ledger"; "" ]
  in
  Table.add_row t [ "hosts in the household"; string_of_int n ];
  Table.add_row t
    [ "addresses the ISP can count"; string_of_int (Nat.visible_hosts nat) ];
  Table.add_row t [ "outbound flows carried"; Printf.sprintf "%d/%d" !outbound_ok n ];
  Table.add_row t [ "replies translated back"; Printf.sprintf "%d/%d" !replies_ok n ];
  Table.add_row t
    [ "unsolicited p2p calls delivered"; Printf.sprintf "%d/%d" p2p_before n ];
  Table.add_row t
    [ "after manual port-forwards"; Printf.sprintf "%d/%d" !forwarded_ok n ];
  let ok =
    !outbound_ok = n
    && Nat.visible_hosts nat = 1 (* the user wins the pricing tussle *)
    && !replies_ok = n (* established flows work: the web is fine *)
    && p2p_before = 0 (* the new receive-oriented app is dead by default *)
    && drops_before = n
    && !forwarded_ok = n (* restored only by manual configuration *)
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E25";
    title = "NAT: the user wins on addressing and pays in transparency";
    paper_claim =
      "\"ISPs give their users a single IP address, and users attach a \
       network of computers using address translation\" (§I) — five \
       hosts ride one subscription and the ISP cannot count them; but \
       the transparent 'what goes in comes out' network is gone (§VI-A): \
       unsolicited inbound traffic, the lifeblood of a new peer-to-peer \
       application, dies at the NAT unless the user hand-configures \
       forwards.";
    run;
    sweep = None;
  }
