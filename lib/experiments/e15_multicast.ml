(* E15 — The multicast post-mortem (§VII, footnote 19): the exercise,
   done.  Multicast saves real bandwidth, and still nobody deploys it,
   because the routers holding the state are not the parties pocketing
   the savings. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Topology = Tussle_netsim.Topology
module Multicast = Tussle_routing.Multicast

let run () =
  let rng = Rng.create 1015 in
  let g = Topology.barabasi_albert rng 200 2 in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "group size"; "unicast links"; "multicast links"; "saving"; "router state" ]
  in
  let source = 0 in
  let savings =
    List.map
      (fun size ->
        let receivers =
          Array.to_list
            (Rng.sample rng size (Array.init 199 (fun i -> i + 1)))
        in
        let tree = Multicast.shortest_path_tree g ~source ~receivers in
        let uni = Multicast.unicast_link_load g ~source ~receivers in
        let multi = Multicast.multicast_link_load tree in
        let saving = Multicast.savings_ratio g ~source ~receivers in
        Table.add_row t
          [
            string_of_int size;
            string_of_int uni;
            string_of_int multi;
            Table.fmt_pct saving;
            string_of_int (Multicast.router_state tree);
          ];
        (size, saving))
      [ 5; 20; 50; 100; 150 ]
  in
  (* the incentive ledger *)
  let t2 =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Left ]
      [ "regime"; "ISP profit per period"; "deploys?" ]
  in
  let mk payment =
    {
      Multicast.groups = 100.0;
      state_cost = 0.5;
      bandwidth_value = 2.0;
      payment;
    }
  in
  let verdicts =
    List.map
      (fun (name, payment) ->
        let p = mk payment in
        let profit = Multicast.isp_profit p in
        let d = Multicast.deploys p in
        Table.add_row t2
          [ name; Printf.sprintf "%.0f" profit; (if d then "yes" else "no") ];
        d)
      [
        ("savings accrue to content providers only", false);
        ("value-flow protocol: providers paid per group", true);
      ]
  in
  let monotone =
    let rec increasing = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && increasing rest
      | _ -> true
    in
    increasing savings
  in
  let big_saving = List.exists (fun (_, s) -> s > 0.4) savings in
  let ok =
    monotone && big_saving
    && verdicts = [ false; true ] (* no payment: no deployment *)
  in
  (Table.render t ^ "\n" ^ Table.render t2, ok)

let experiment =
  {
    Experiment.id = "E15";
    title = "Multicast: real savings, no deployment (the reader's exercise)";
    paper_claim =
      "\"This follows on the failure of multicast to emerge as an open \
       end-to-end service ... The case study of the failure to deploy \
       multicast is left as an exercise for the reader\" — tree delivery \
       saves most of the unicast bandwidth, and savings grow with group \
       size, yet the ISPs who must hold per-group router state capture \
       none of that value: without a value-flow mechanism the \
       deployment ledger is negative.";
    run;
    sweep = None;
  }
