(* E18 — The next rung of the encryption ladder: steganography (§VI-A,
   footnote 17). *)

module Table = Tussle_prelude.Table
module Escalation = Tussle_econ.Escalation

let params =
  {
    Escalation.n_users = 1000.0;
    enc_fraction = 0.3;
    base_price = 5.0;
    service_value = 8.0;
    privacy_value = 2.0;
    inspection_value = 1.0;
    competitive = false;
  }

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Left ]
      [ "monopolist refuses encrypted traffic..."; "ISP revenue";
        "privacy survives?" ]
  in
  (* without a counter-move, a monopolist's refusal forces users into
     the clear (see E9): privacy is gone *)
  let refusal_revenue = Escalation.revenue params Escalation.Refuse in
  Table.add_row t
    [ "no counter-move available"; Printf.sprintf "%.0f" refusal_revenue; "no" ];
  let rows =
    List.map
      (fun cost ->
        let revenue, survives = Escalation.stego_response params ~stego_cost:cost in
        Table.add_row t
          [ Printf.sprintf "steganography at cost %.1f" cost;
            Printf.sprintf "%.0f" revenue;
            (if survives then "yes" else "no") ];
        (cost, revenue, survives))
      [ 0.5; 1.5; 2.5 ]
  in
  let survives_at c =
    let _, _, s = List.find (fun (x, _, _) -> x = c) rows in
    s
  in
  let revenue_at c =
    let _, r, _ = List.find (fun (x, _, _) -> x = c) rows in
    r
  in
  let ok =
    (* cheap stego: refusal unenforceable, privacy survives, and the ISP
       additionally loses the inspection value it refused for *)
    survives_at 0.5
    && revenue_at 0.5 < refusal_revenue
    (* stego dearer than the privacy it buys: users comply instead *)
    && not (survives_at 2.5)
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E18";
    title = "Steganography: the escalation after encryption is refused";
    paper_claim =
      "\"The next step in this sort of escalation is steganography — the \
       hiding of information inside some other form of data.  It is a \
       signal of a coming tussle that this topic is receiving attention \
       right now\" — when hiding is cheap, refusing encrypted traffic is \
       unenforceable and costs the ISP the very inspection value it \
       refused for; when hiding is dear, the refusal bites.";
    run;
    sweep = None;
  }
