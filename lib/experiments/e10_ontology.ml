(* E10 — Policy languages bound the expressible tussle (§II-B). *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Ontology = Tussle_policy.Ontology

let run () =
  let rng = Rng.create 1010 in
  let constraints =
    Ontology.random_constraints rng ~n:2000 ~anticipated_bias:0.85
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "ontology shipped"; "attributes"; "tussles expressible" ]
  in
  let std = Ontology.standard_attributes in
  let take n =
    let rec go k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: go (k - 1) rest
    in
    go n std
  in
  let coverage_of attrs =
    Ontology.coverage (Ontology.make_ontology attrs) constraints
  in
  let covers =
    List.map
      (fun (name, attrs) ->
        let c = coverage_of attrs in
        Table.add_row t
          [ name; string_of_int (List.length attrs); Table.fmt_pct c ];
        c)
      [
        ("ports only", take 1);
        ("ports + apps + qos", take 3);
        ("half the anticipated set", take 5);
        ("every anticipated attribute", std);
        ("anticipated + the unforeseen", std @ Ontology.unanticipated_attributes);
      ]
  in
  let full_std = List.nth covers 3 in
  let with_unforeseen = List.nth covers 4 in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  let ok =
    non_decreasing covers
    (* the designers' full vocabulary still cannot express the
       unanticipated tussles: a hard ceiling below 100% *)
    && full_std < 0.95
    && full_std > 0.5
    && with_unforeseen = 1.0
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E10";
    title = "Ontology bounding: what a policy language cannot say";
    paper_claim =
      "\"Implicitly, by imposing an ontology on what can be expressed, \
       they bound the tussle that can be expressed within defined limits \
       ... It can also be defeating, if it prevents the system from \
       capturing and acting on tussles that were not anticipated or seen \
       as important by the language designers.\"";
    run;
    sweep = None;
  }
