(* E7 — Modularize along tussle boundaries: the DNS/trademark case
   (§IV-A), measured as dispute spillover under the entangled and the
   separated registry designs. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Registry = Tussle_naming.Registry

let populate rng registry ~labels ~trademarked_share =
  (* each label gets a machine binding and a mailbox binding from a small
     site owner; a share of labels are also famous trademarks *)
  let contested = ref [] in
  for i = 0 to labels - 1 do
    let label = Printf.sprintf "name%03d" i in
    let owner = Printf.sprintf "site%03d" i in
    ignore (Registry.register registry ~owner ~label Registry.Machine);
    ignore (Registry.register registry ~owner ~label Registry.Mailbox);
    if Rng.bernoulli rng trademarked_share then
      contested := label :: !contested
  done;
  List.rev !contested

let run_design design =
  let rng = Rng.create 1007 in
  let registry = Registry.create design in
  let contested =
    populate rng registry ~labels:200 ~trademarked_share:0.15
  in
  List.iter
    (fun label ->
      ignore (Registry.dispute registry ~claimant:("brand-" ^ label) ~label))
    contested;
  let disputes = Registry.disputes_filed registry in
  let broken = Registry.disruptions registry in
  (disputes, broken, Registry.spillover registry)

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "registry design"; "disputes"; "service bindings broken"; "spillover" ]
  in
  let results =
    List.map
      (fun (name, design) ->
        let disputes, broken, spill = run_design design in
        Table.add_row t
          [ name; string_of_int disputes; string_of_int broken;
            Printf.sprintf "%.2f" spill ];
        (design, spill))
      [ ("entangled (deployed DNS)", Registry.Entangled);
        ("separated (trademark directory)", Registry.Separated) ]
  in
  let spill d = List.assoc d results in
  let ok = spill Registry.Entangled > 1.0 && spill Registry.Separated = 0.0 in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E7";
    title = "Tussle isolation in naming (DNS vs separated trademark directory)";
    paper_claim =
      "\"Since it was (or should have been) obvious that fights over \
       trademarks would be a tussle space, names that express trademarks \
       should be used for as little else as possible\" — in the entangled \
       design every trademark dispute breaks machine and mailbox \
       service; the separated design confines disputes to the brand \
       directory (spillover = 0).";
    run;
    sweep = None;
  }
