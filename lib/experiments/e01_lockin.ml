(* E1 — Provider lock-in from IP addressing (§V-A1).

   The addressing scheme sets the renumbering (switching) cost; the
   market model turns that cost into prices, churn and surplus. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Market = Tussle_econ.Market
module Address = Tussle_naming.Address

let schemes =
  [
    ("portable PI space", Address.Portable { prefixes = 1 });
    ("DHCP + dynamic DNS", Address.Dynamic { hosts = 20 });
    ("provider-based, 1 static host", Address.Provider_based { static_hosts = 1 });
    ("provider-based, 3 static hosts", Address.Provider_based { static_hosts = 3 });
    ("provider-based, 6 static hosts", Address.Provider_based { static_hosts = 6 });
  ]

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "addressing scheme"; "switch cost"; "markup"; "churn"; "consumer surplus" ]
  in
  let rows =
    List.map
      (fun (name, scheme) ->
        let cost = Address.switching_cost scheme in
        (* population scale: the lock-in margin is demonstrated on 10^5
           consumers (ROADMAP "million-actor hot path"); the SoA market
           loop makes this cheaper than the old n=600 run *)
        let cfg =
          {
            Market.default_config with
            Market.switching_cost = cost;
            Market.n_consumers = 100_000;
          }
        in
        let r = Market.run (Rng.create 1001) cfg in
        Table.add_row t
          [
            name;
            Printf.sprintf "%.1f" cost;
            Printf.sprintf "%.2f" r.Market.mean_markup;
            Table.fmt_pct r.Market.churn_rate;
            Printf.sprintf "%.0f" r.Market.consumer_surplus;
          ];
        (cost, r))
      schemes
  in
  (* shape: as switching cost rises, markup rises and surplus falls *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let markups = List.map (fun (_, r) -> r.Market.mean_markup) sorted in
  let surpluses = List.map (fun (_, r) -> r.Market.consumer_surplus) sorted in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && non_increasing rest
    | _ -> true
  in
  let cheap_markup = List.hd markups in
  let dear_markup = List.nth markups (List.length markups - 1) in
  let ok =
    non_decreasing markups && non_increasing surpluses
    && dear_markup > cheap_markup +. 0.5
  in
  (Table.render t, ok)

(* ---------- statistical sweep surface ----------

   One replicate is the same five-scheme market comparison at a
   reduced population (2,000 consumers — the lock-in margin is a
   per-consumer quantity, so the verdict does not need the 10^5
   showcase scale) under a per-seed Rng, so the sweep driver can judge
   "markup rises / surplus falls with switching cost" across seeds
   instead of on seed 1001 alone.  Metrics are paired per seed: every
   scheme sees the same consumer draw. *)

let sweep_schemes =
  [
    ("portable", Address.Portable { prefixes = 1 });
    ("dynamic", Address.Dynamic { hosts = 20 });
    ("pb1", Address.Provider_based { static_hosts = 1 });
    ("pb3", Address.Provider_based { static_hosts = 3 });
    ("pb6", Address.Provider_based { static_hosts = 6 });
  ]

let probe ~seed =
  List.concat_map
    (fun (key, scheme) ->
      let cfg =
        {
          Market.default_config with
          Market.switching_cost = Address.switching_cost scheme;
          Market.n_consumers = 2_000;
        }
      in
      let r = Market.run (Rng.create seed) cfg in
      [
        ("markup_" ^ key, r.Market.mean_markup);
        ("surplus_" ^ key, r.Market.consumer_surplus);
      ])
    sweep_schemes

let judge sample =
  let module T = Tussle_prelude.Stats.Test in
  let paired_greater claim a b =
    {
      Experiment.claim;
      test = "paired t, greater";
      result = T.paired ~alternative:T.Greater (sample a) (sample b);
    }
  in
  [
    paired_greater "markup(pb6) > markup(portable)" "markup_pb6"
      "markup_portable";
    paired_greater "markup(pb6) > markup(pb1)" "markup_pb6" "markup_pb1";
    paired_greater "surplus(portable) > surplus(pb6)" "surplus_portable"
      "surplus_pb6";
  ]

let experiment =
  {
    Experiment.id = "E1";
    title = "Provider lock-in from IP addressing";
    paper_claim =
      "\"Either a customer is locked into his provider by the \
       provider-based addresses, or he obtains a separate block of \
       addresses...  The Internet design should incorporate mechanisms \
       that make it easy for a host to change addresses\" — portable / \
       dynamic addressing restores churn and consumer surplus; \
       provider-based addressing converts renumbering cost into margin.";
    run;
    sweep = Some { Experiment.probe; judge };
  }
