(* E8 — Information exposure and policy levers: BGP vs OSPF (§IV-C). *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Topology = Tussle_netsim.Topology
module Linkstate = Tussle_routing.Linkstate
module Pathvector = Tussle_routing.Pathvector
module Visibility = Tussle_routing.Visibility

let run () =
  let rng = Rng.create 1008 in
  let tt =
    Topology.two_tier rng ~transits:4 ~accesses:8 ~hosts_per_access:2
      ~multihoming:2
  in
  let g = tt.Topology.graph in
  let total = Graph.edge_count g in
  let plain = Graph.map_edges g (fun (e, _) -> e) in
  let ls = Linkstate.compute plain ~metric:`Hops in
  let pv = Pathvector.compute g in
  (* exposure from three vantage points: a stub host, an access ISP, a
     transit *)
  let host = List.hd tt.Topology.hosts in
  let access = List.hd tt.Topology.accesses in
  let transit = List.hd tt.Topology.transits in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "protocol"; "observer"; "links visible"; "policy levers" ]
  in
  let ls_levers = string_of_int (Visibility.linkstate_policy_levers ls) in
  let pv_levers = string_of_int (Visibility.pathvector_policy_levers g) in
  Table.add_row t
    [ "link-state"; "any node";
      Table.fmt_pct (Visibility.linkstate_exposure ls ~total_links:total);
      ls_levers ];
  let pv_at label node =
    Table.add_row t
      [ "path-vector"; label;
        Table.fmt_pct (Visibility.pathvector_exposure_at pv ~node ~total_links:total);
        pv_levers ]
  in
  pv_at "stub host" host;
  pv_at "access ISP" access;
  pv_at "transit ISP" transit;
  let exp_at node = Visibility.pathvector_exposure_at pv ~node ~total_links:total in
  let ok =
    Visibility.linkstate_exposure ls ~total_links:total = 1.0
    && exp_at host < 1.0
    && exp_at access < 1.0
    && exp_at transit < 1.0
    && Visibility.linkstate_policy_levers ls = 0
    && Visibility.pathvector_policy_levers g > 0
    && Pathvector.reachability_ratio pv = 1.0
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E8";
    title = "Routing visibility: link-state exposes, path-vector conceals";
    paper_claim =
      "\"A link-state routing protocol requires that everyone export his \
       link costs, while a path vector protocol makes it harder to see \
       what the internal choices are ... BGP has a different character \
       than a protocol such as OSPF\" — same topology, full reachability \
       under both, but only path-vector offers per-neighbour export \
       policy, and it reveals strictly less to every observer.";
    run;
    sweep = None;
  }
