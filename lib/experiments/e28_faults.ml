(* E28 — Tussle under faults (§VI-A): covert vs. revealing failures on
   a shared path, and transport resilience across a seeded sweep of
   fault plans.

   Everything is derived from [Tussle_fault.Seed] (the CLI/bench
   [--fault-seed] flag): the same seed reproduces the sweep
   byte-for-byte, a different seed draws different plans — the
   determinism CI's fault-battery smoke pins down. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Pool = Tussle_prelude.Pool
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Link = Tussle_netsim.Link
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Traffic = Tussle_netsim.Traffic
module Transport = Tussle_netsim.Transport
module Diagnosis = Tussle_netsim.Diagnosis
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject
module Seed = Tussle_fault.Seed

let line_forwarding ~node ~target _ =
  if target > node then Some (node + 1)
  else if target < node then Some (node - 1)
  else None

(* ---------- part A: localizing an injected middlebox failure ---------- *)

let diagnose ~fault_seed ~covert =
  let net =
    Net.create (Topology.to_links (Topology.line 6)) line_forwarding
  in
  let engine = Engine.create () in
  Inject.install ~seed:fault_seed
    ~plan:[ Plan.Middlebox_break { node = 3; w = Plan.always; covert } ]
    engine net;
  let gen = Traffic.create (Rng.create (fault_seed + 1)) in
  let make ~target =
    Traffic.next_packet gen ~app:Packet.File_sharing ~src:0 ~dst:target
      ~created:(Engine.now engine) ()
  in
  let probe = Diagnosis.net_probe net engine ~make in
  Diagnosis.localize ~probe ~path:[ 0; 1; 2; 3; 4; 5 ]

let verdict_string = function
  | Diagnosis.Clean -> "path clean"
  | Diagnosis.Blocked_at (name, node) ->
    Printf.sprintf "device %S confessed at node %d" name node
  | Diagnosis.Blocked_between (a, b) ->
    Printf.sprintf "bracketed between nodes %d and %d" a b
  | Diagnosis.Unreachable_at_start -> "dead at the first hop"

(* ---------- part B: transport goodput under a fault-plan sweep ---------- *)

(* slow enough that a 1500-byte packet costs 6 ms of wire time, so a
   200-packet transfer genuinely overlaps the fault windows *)
let sweep_edge = { Topology.latency = 0.005; bandwidth_bps = 2e6 }
let sweep_packets = 200
let sweep_size = 8
let plan_horizon = 10.0

type sweep_result = {
  index : int;
  episodes : int;
  status : Transport.status;
  retransmissions : int;
  fault_drops : int;
  goodput : float;
  drained : bool;
}

(* One transfer 0 -> 3 over a 4-node line.  [plan = None] is the
   healthy baseline every faulted run is measured against. *)
let run_transfer ~item_seed ~plan =
  let net =
    Net.create
      (Topology.to_links (Topology.line ~edge:sweep_edge 4))
      line_forwarding
  in
  let engine = Engine.create () in
  let episodes =
    match plan with
    | None -> 0
    | Some p ->
      Inject.install ~seed:(item_seed + 17) ~plan:p engine net;
      List.length p
  in
  let gen = Traffic.create (Rng.create (item_seed + 2)) in
  let conn =
    Transport.start ~rto_backoff:2.0 ~rto_max:2.0 ~rto_jitter:0.1
      ~jitter_rng:(Rng.create (item_seed + 3))
      ~max_retries:12 engine net gen ~src:0 ~dst:3
      ~total_packets:sweep_packets
  in
  (* the horizon is a hang guard only: backoff + max_retries must end
     the transfer (completed or abandoned) long before it *)
  Engine.run ~until:600.0 engine;
  let fault_drops =
    List.fold_left
      (fun acc (reason, n) ->
        match reason with
        | "link-down" | "fault-loss" | "corrupted" -> acc + n
        | _ -> acc)
      0
      (Net.losses_by_reason net)
  in
  {
    index = 0;
    episodes;
    status = Transport.status conn;
    retransmissions = Transport.retransmissions conn;
    fault_drops;
    goodput = Transport.goodput conn ~now:(Engine.now engine);
    drained = Engine.pending engine = 0;
  }

(* Every plan opens with a deterministic mid-flight outage of the
   middle hop (so each run exercises the retransmission path), then
   adds seeded random episodes over the whole line. *)
let sweep_plan rng =
  let fixed = Plan.Link_down { u = 1; v = 2; w = Plan.window 0.2 0.9 } in
  fixed
  :: Plan.random rng
       ~links:[ (0, 1); (1, 2); (2, 3) ]
       ~horizon:plan_horizon ~episodes:3

let status_string = function
  | Transport.Completed -> "completed"
  | Transport.Abandoned -> "abandoned"
  | Transport.Active -> "still active (BUG)"

let run () =
  let fault_seed = Seed.get () in
  (* part A *)
  let revealing = diagnose ~fault_seed ~covert:false in
  let covert = diagnose ~fault_seed ~covert:true in
  let ta =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right ]
      [ "injected failure mode"; "diagnosis"; "probes" ]
  in
  List.iter
    (fun (label, (r : Diagnosis.report)) ->
      Table.add_row ta
        [ label; verdict_string r.Diagnosis.verdict;
          string_of_int r.Diagnosis.probes_used ])
    [ ("revealing (device confesses)", revealing);
      ("covert (silent drop)", covert) ];
  (* part B *)
  let plan_rng = Rng.create fault_seed in
  let items =
    List.init sweep_size (fun k ->
        (k, fault_seed + (1009 * (k + 1)), sweep_plan plan_rng))
  in
  let healthy =
    run_transfer ~item_seed:(fault_seed + 7) ~plan:None
  in
  let faulted =
    Pool.map
      (fun (k, item_seed, plan) ->
        { (run_transfer ~item_seed ~plan:(Some plan)) with index = k })
      items
  in
  let tb =
    Table.create
      ~aligns:
        [ Table.Right; Table.Right; Table.Left; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      [ "plan"; "episodes"; "outcome"; "retx"; "fault drops";
        "goodput (pkt/s)"; "% of healthy" ]
  in
  List.iter
    (fun r ->
      Table.add_row tb
        [ string_of_int r.index; string_of_int r.episodes;
          status_string r.status; string_of_int r.retransmissions;
          string_of_int r.fault_drops; Printf.sprintf "%.1f" r.goodput;
          Printf.sprintf "%.1f" (100.0 *. r.goodput /. healthy.goodput) ])
    faulted;
  let mean_goodput =
    List.fold_left (fun acc r -> acc +. r.goodput) 0.0 faulted
    /. float_of_int sweep_size
  in
  let body =
    Printf.sprintf
      "%s\n\
       Sweep of %d seeded fault plans (fault seed %d), each a transfer \
       of %d packets\nover a 4-node line with a deterministic mid-flight \
       outage plus 3 random\nepisodes; healthy baseline goodput %.1f \
       pkt/s:\n\n\
       %s\n\
       mean goodput under faults: %.1f pkt/s (%.1f%% of healthy)\n"
      (Table.render ta) sweep_size fault_seed sweep_packets healthy.goodput
      (Table.render tb) mean_goodput
      (100.0 *. mean_goodput /. healthy.goodput)
  in
  let ok =
    (* §VI-A: a revealing failure is localized exactly in one probe; a
       covert one costs a sweep and yields only a bracket *)
    (match revealing.Diagnosis.verdict with
    | Diagnosis.Blocked_at (name, 3) -> name = Plan.broken_device_name
    | _ -> false)
    && revealing.Diagnosis.probes_used = 1
    && (match covert.Diagnosis.verdict with
       | Diagnosis.Blocked_between (2, 3) -> true
       | _ -> false)
    && covert.Diagnosis.probes_used > revealing.Diagnosis.probes_used
    (* the baseline must be clean and the harness must never hang:
       every faulted run drains the engine with a terminal outcome *)
    && healthy.status = Transport.Completed
    && healthy.fault_drops = 0
    && List.for_all
         (fun r -> r.drained && r.status <> Transport.Active)
         faulted
    (* graceful degradation is quantified, not assumed: the forced
       outage makes every run retransmit and lose packets to faults,
       and the sweep's mean goodput sits below the healthy baseline *)
    && List.for_all
         (fun r -> r.retransmissions > 0 && r.fault_drops > 0)
         faulted
    && mean_goodput < healthy.goodput
  in
  (body, ok)

let experiment =
  {
    Experiment.id = "E28";
    title = "Tussle under faults: diagnosis and resilient transport";
    paper_claim =
      "\"Failures of transparency will occur — design what happens then\" \
       (§VI-A): when failures are first-class inputs, a revealing device \
       is still localized exactly in one probe while a covert one is \
       only ever bracketed at higher probe cost, and a transport with \
       backoff-paced retransmission and a give-up budget degrades \
       gracefully under injected link faults — measurably lower goodput, \
       but never a hung engine.";
    run;
    sweep = None;
  }
