(** Common shape of a reproduction experiment.

    Every experiment renders one table (the paper has no numbered
    tables or figures; each experiment operationalizes one qualitative
    claim from the text — see DESIGN.md's experiment index) and checks
    its own expected shape, so the harness can report
    paper-claim-holds / does-not-hold mechanically.

    Experiments are self-contained: each [run] builds its own [Rng] and
    [Engine] and touches no shared mutable state, which is what lets
    the registry execute the battery across domains (see
    {!Tussle_prelude.Pool}). *)

type verdict = {
  claim : string;
      (** human-readable hypothesis, e.g. "markup(pb6) > markup(portable)" *)
  test : string;  (** which test produced it, e.g. "paired t, greater" *)
  result : Tussle_prelude.Stats.Test.result;
}

type sweep = {
  probe : seed:int -> (string * float) list;
      (** one {e cheap} seeded run returning named scalar metrics — the
          unit the sweep driver fans across seeds on [Pool.map].  Must
          be deterministic in [seed] alone (build a fresh [Rng] from
          it, touch no shared state) and return the same metric names
          in the same order for every seed. *)
  judge : (string -> float array) -> verdict list;
      (** statistical verdicts over the collected samples.  The
          accessor maps a metric name (as returned by [probe]) to its
          per-seed samples in run order — paired tests rely on that
          ordering.  Raises [Not_found] on an unknown name. *)
}
(** A statistical sweep surface: how to run one seeded replicate and
    how to judge the accumulated samples.  Experiments with [sweep =
    Some _] can be promoted from a one-seed shape check to a
    "held with p < alpha across N seeds" verdict by [tussle sweep]. *)

type t = {
  id : string;  (** "E1" ... "E29" *)
  title : string;
  paper_claim : string;  (** the sentence from the paper being tested *)
  run : unit -> string * bool;
      (** rendered table(s) and whether the expected shape held *)
  sweep : sweep option;
      (** statistical sweep surface; [None] for shape-check-only
          experiments *)
}

type status =
  | Held  (** the shape check matched the paper's qualitative claim *)
  | Violated  (** the experiment ran but the shape check failed *)
  | Failed of string  (** [run] raised; the payload is the exception *)

type outcome = {
  exp_id : string;
  exp_title : string;
  output : string;
      (** the fully rendered block: header, body (or failure report),
          footer — ready to print verbatim *)
  status : status;
  wall_s : float;  (** wall clock of this [run] (monotonic) *)
  events_executed : int;
      (** engine events attributed to this run via the domain-local
          [engine.events_executed] counter delta; 0 while
          {!Tussle_obs.Metrics} is disabled *)
  allocated_bytes : float;
      (** [Gc.allocated_bytes] delta of the running domain (approximate
          under parallelism) *)
}

val run : ?timeout_s:float -> t -> outcome
(** Run with fault isolation: an uncaught exception becomes
    [Failed msg] with a ["FAILED (uncaught: ...)"] body (plus backtrace
    when [Printexc.record_backtrace] is on) instead of propagating, so
    one broken experiment cannot abort a battery.  Every run fills the
    outcome's wall-clock/events/allocation telemetry and, when
    {!Tussle_obs.Trace} is enabled, records an ["experiment"] span
    tagged with the experiment id.

    [?timeout_s] arms the per-experiment watchdog (off by default, and
    with it off this function is exactly the historical synchronous
    run).  The experiment then executes in a freshly spawned domain
    while the caller polls; if it has not produced an outcome within
    [timeout_s] seconds of wall clock, the caller stops waiting and
    returns a [Failed "timeout: ..."] outcome whose body starts with
    ["FAILED (timeout"] and whose [wall_s] records the elapsed wait —
    partial telemetry for a run that never finished.  The runaway
    domain is {e abandoned}, not killed (OCaml domains cannot be killed
    safely): it keeps its core busy until it finishes on its own or the
    process exits, but the battery carries on.  Raises
    [Invalid_argument] on a non-positive or non-finite [timeout_s]. *)

val held : outcome -> bool
(** [held o] iff [o.status = Held]. *)

val render : t -> string * bool
(** Run and wrap with a header/footer.  The bool is the shape check.
    Unlike {!run}, exceptions propagate. *)
