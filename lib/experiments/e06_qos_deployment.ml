(* E6 — The QoS deployment post-mortem as an investment game (§VII). *)

module Table = Tussle_prelude.Table
module Investment = Tussle_econ.Investment

let run () =
  let prm = Investment.default_params in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "value flow"; "consumer choice"; "deployment"; "welfare" ]
  in
  let outcomes = Investment.matrix_22 prm in
  List.iter
    (fun ({ Investment.value_flow; consumer_choice }, o) ->
      Table.add_row t
        [
          (if value_flow then "yes" else "no");
          (if consumer_choice then "yes" else "no");
          Table.fmt_pct o.Investment.deployment_rate;
          Printf.sprintf "%.0f" o.Investment.total_welfare;
        ])
    outcomes;
  let rate vf cc =
    let _, o =
      List.find
        (fun ({ Investment.value_flow; consumer_choice }, _) ->
          value_flow = vf && consumer_choice = cc)
        outcomes
    in
    o.Investment.deployment_rate
  in
  let ok =
    rate false false = 0.0 && rate true false = 0.0 && rate false true = 0.0
    && rate true true = 1.0
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E6";
    title = "QoS deployment: greed and fear must both be wired";
    paper_claim =
      "\"One can thus see the failure of QoS deployment as a failure \
       first to design any value-transfer mechanism to give the \
       providers the possibility of being rewarded for making the \
       investment (greed), and second, a failure to couple the design to \
       a mechanism whereby the user can exercise choice to select the \
       provider who offered the service (competitive fear).\"";
    run;
    sweep = None;
  }
