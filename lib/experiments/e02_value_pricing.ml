(* E2 — Value pricing vs tunneling (§V-A2). *)

module Table = Tussle_prelude.Table
module Value_pricing = Tussle_econ.Value_pricing

let run () =
  let pop = Value_pricing.default_population in
  let prm = Value_pricing.default_params in
  let adoptions = [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  let sweep = Value_pricing.sweep pop prm ~adoptions in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "tunnel adoption"; "home price"; "business price"; "price gap";
        "producer revenue"; "consumer surplus" ]
  in
  List.iter
    (fun (a, o) ->
      Table.add_row t
        [
          Table.fmt_pct a;
          Printf.sprintf "%.2f" o.Value_pricing.price_home;
          Printf.sprintf "%.2f" o.Value_pricing.price_business;
          Printf.sprintf "%.2f" o.Value_pricing.discrimination_gap;
          Printf.sprintf "%.0f" o.Value_pricing.revenue;
          Printf.sprintf "%.0f" o.Value_pricing.consumer_surplus;
        ])
    sweep;
  let first = snd (List.hd sweep) in
  let last = snd (List.nth sweep (List.length sweep - 1)) in
  let ok =
    first.Value_pricing.discrimination_gap > 0.5
    && last.Value_pricing.revenue < first.Value_pricing.revenue
    && last.Value_pricing.consumer_surplus > first.Value_pricing.consumer_surplus
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E2";
    title = "Value pricing vs tunneling";
    paper_claim =
      "\"Customers who wish to sidestep this restriction can respond by \
       ... tunneling to disguise the port numbers being used.  The design \
       and deployment of tunnels ... shifts the balance of power from the \
       producer to the consumer\" — as masking spreads, price \
       discrimination collapses and surplus moves to consumers.";
    run;
    sweep = None;
  }
