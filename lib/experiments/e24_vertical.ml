(* E24 — Vertical integration vs innovation (§V-C): separating the two
   tussles. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Vertical = Tussle_econ.Vertical

let regime_name = function
  | Vertical.Separated -> "structural separation"
  | Vertical.Integrated -> "integration + foreclosure"
  | Vertical.Integrated_nondiscrimination -> "integration + nondiscrimination rule"

let run () =
  let p = Vertical.default_params in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left; Table.Right;
                Table.Right ]
      [ "regime"; "own share"; "rival share"; "innovator survives?";
        "platform profit"; "consumer surplus" ]
  in
  let results =
    List.map
      (fun regime ->
        let o = Vertical.run (Rng.create 1024) p regime in
        Table.add_row t
          [
            regime_name regime;
            Table.fmt_pct o.Vertical.own_share;
            Table.fmt_pct o.Vertical.rival_share;
            (if o.Vertical.rival_survives then "yes" else "no");
            Printf.sprintf "%.0f" o.Vertical.platform_profit;
            Printf.sprintf "%.0f" o.Vertical.consumer_surplus;
          ];
        (regime, o))
      [ Vertical.Separated; Vertical.Integrated;
        Vertical.Integrated_nondiscrimination ]
  in
  let get r = List.assoc r results in
  let sep = get Vertical.Separated in
  let int_ = get Vertical.Integrated in
  let rule = get Vertical.Integrated_nondiscrimination in
  let ok =
    (* separation: the innovator thrives *)
    sep.Vertical.rival_survives
    && sep.Vertical.rival_share > 0.2
    (* unconstrained integration: foreclosure pays and kills the rival *)
    && (not int_.Vertical.rival_survives)
    && int_.Vertical.platform_profit > sep.Vertical.platform_profit
    && int_.Vertical.consumer_surplus < sep.Vertical.consumer_surplus
    (* the rule separates the tussles: integration persists, the
       innovator survives, consumers keep the separation-level surplus *)
    && rule.Vertical.rival_survives
    && rule.Vertical.own_share > 0.0
    && Float.abs (rule.Vertical.consumer_surplus -. sep.Vertical.consumer_surplus)
       < 1e-9
    && rule.Vertical.platform_profit > sep.Vertical.platform_profit
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E24";
    title = "Vertical integration vs innovation: separable tussles";
    paper_claim =
      "\"Vertical integration ... requires the removal of certain forms \
       of openness ... However, vertical integration has nothing to do \
       with a desire to block innovation ... it would be wise to \
       separate the tussle of vertical integration, about which many \
       feel great passion, from the desire to sustain innovation\" — \
       unconstrained foreclosure kills the innovating rival for profit; \
       a nondiscrimination rule lets integration and innovation coexist \
       at separation-level consumer surplus.";
    run;
    sweep = None;
  }
