(* E29 — Self-healing routing: availability and convergence under
   link failure.

   PR 4 made faults injectable; this experiment measures what routing
   does about them.  The same ring, the same traffic, the same
   mid-run Link_down — under four control planes: no fault (healthy
   baseline), static tables (PR 4's world: the outage drains into
   link-down drops until the plan restores the link), a self-healing
   link-state control plane (hello-timeout detection + delayed SPF,
   {!Tussle_routing.Selfheal}), and overlay failover (end systems
   detect at probe speed and source-route around the hole).  Part B
   sweeps seeded random outages and compares static vs self-healing
   availability and convergence time. *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Pool = Tussle_prelude.Pool
module Engine = Tussle_netsim.Engine
module Net = Tussle_netsim.Net
module Topology = Tussle_netsim.Topology
module Traffic = Tussle_netsim.Traffic
module Linkstate = Tussle_routing.Linkstate
module Selfheal = Tussle_routing.Selfheal
module Overlay = Tussle_routing.Overlay
module Plan = Tussle_fault.Plan
module Inject = Tussle_fault.Inject
module Seed = Tussle_fault.Seed

let nodes = 6
let src = 0
let dst = 3
let edge = { Topology.latency = 0.005; bandwidth_bps = 1e7 }
let packets = 120
let send_interval = 0.025
let first_send = 0.05

(* off the hello grid (hellos fire at multiples of 50 ms), so
   detection timing never depends on same-timestamp event order *)
let outage = Plan.window 0.48 2.63

let heal_until = 4.0
let guard_horizon = 600.0
let heal_config = { Selfheal.default_config with metric = `Hops }

type mode = Healthy | Static | Heal | Relay

let mode_name = function
  | Healthy -> "healthy (no fault)"
  | Static -> "static tables"
  | Heal -> "self-healing"
  | Relay -> "overlay failover"

type run_stats = {
  delivered : int;
  injected : int;
  link_down_drops : int;
  reconvergences : int;
  convergence_s : float option;
      (* first table swap after the fault opened, relative to it *)
  drained : bool;
}

let fresh_links () = Topology.to_links (Topology.ring ~edge nodes)

(* The link the fault targets is read off the static table's actual
   chosen path, not hardcoded — robust to Dijkstra tie-breaks. *)
let primary_path () =
  let static = Linkstate.compute_live (fresh_links ()) ~metric:`Hops in
  match Linkstate.path static ~src ~dst with
  | Some p -> p
  | None -> failwith "E29: ring must connect src and dst"

let rec adjacent_pairs = function
  | a :: (b :: _ as rest) -> (a, b) :: adjacent_pairs rest
  | _ -> []

let run_mode ~seed ~plan ~fault_at mode =
  let links = fresh_links () in
  let static = Linkstate.compute_live links ~metric:`Hops in
  let net = Net.create links (Linkstate.forwarding static) in
  let engine = Engine.create () in
  let heal =
    match mode with
    | Heal ->
      Some (Selfheal.attach ~config:heal_config ~until:heal_until engine net)
    | _ -> None
  in
  if plan <> [] then Inject.install ~seed ~plan engine net;
  let gen = Traffic.create (Rng.create (seed + 1)) in
  let candidates =
    List.filter (fun n -> n <> src && n <> dst) (List.init nodes Fun.id)
  in
  let send engine =
    let source_route =
      match mode with
      | Relay -> (
        (* the overlay measures ground-truth liveness of the static
           path at send time and detours through the first relay with
           both legs alive — per-packet, no control-plane lag *)
        let can_reach a b = Overlay.path_alive static links ~src:a ~dst:b in
        match Overlay.failover_waypoints ~can_reach ~candidates ~src ~dst with
        | Some waypoints -> waypoints
        | None -> [])
      | _ -> []
    in
    Net.inject net engine
      (Traffic.next_packet gen ~source_route ~src ~dst
         ~created:(Engine.now engine) ())
  in
  for k = 0 to packets - 1 do
    ignore
      (Engine.schedule engine
         (first_send +. (send_interval *. float_of_int k))
         send)
  done;
  Engine.run ~until:guard_horizon engine;
  {
    delivered = Net.delivered_count net;
    injected = Net.injected_count net;
    link_down_drops =
      Option.value ~default:0
        (List.assoc_opt "link-down" (Net.losses_by_reason net));
    reconvergences =
      (match heal with Some h -> Selfheal.reconvergences h | None -> 0);
    convergence_s =
      (match heal with
      | Some h -> (
        match Selfheal.reconvergence_times h with
        | t :: _ -> Some (t -. fault_at)
        | [] -> None)
      | None -> None);
    drained = Engine.pending engine = 0;
  }

let ratio_of ~healthy r =
  100.0 *. float_of_int r.delivered /. float_of_int healthy.delivered

(* ---------- part B: seeded Link_down sweep, static vs self-heal ---------- *)

type sweep_item = {
  index : int;
  item_seed : int;
  link : int * int;
  w : Plan.window;
}

type sweep_result = {
  item : sweep_item;
  static_r : run_stats;
  heal_r : run_stats;
}

let draw_items ~fault_seed ~count path_pairs =
  let rng = Rng.create fault_seed in
  List.init count (fun k ->
      let link = Rng.choice_list rng path_pairs in
      let from_s = Rng.uniform rng 0.3 0.9 in
      let until_s = from_s +. Rng.uniform rng 0.8 1.6 in
      {
        index = k;
        item_seed = fault_seed + (1013 * (k + 1));
        link;
        w = Plan.window from_s until_s;
      })

let run_item item =
  let u, v = item.link in
  let plan = [ Plan.Link_down { u; v; w = item.w } ] in
  let fault_at = item.w.Plan.from_s in
  {
    item;
    static_r = run_mode ~seed:item.item_seed ~plan ~fault_at Static;
    heal_r = run_mode ~seed:item.item_seed ~plan ~fault_at Heal;
  }

let pct x = Printf.sprintf "%.1f" x

let run () =
  let fault_seed = Seed.get () in
  let path = primary_path () in
  let path_pairs = adjacent_pairs path in
  let fu, fv = List.hd path_pairs in
  (* part A: one deterministic outage, four control planes *)
  let plan = [ Plan.Link_down { u = fu; v = fv; w = outage } ] in
  let fault_at = outage.Plan.from_s in
  let modes = [ Healthy; Static; Heal; Relay ] in
  let results =
    List.map
      (fun mode ->
        let plan = if mode = Healthy then [] else plan in
        (mode, run_mode ~seed:(fault_seed + 7) ~plan ~fault_at mode))
      modes
  in
  let healthy = List.assoc Healthy results in
  let ta =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Left ]
      [ "control plane"; "delivered"; "% of healthy"; "link-down drops";
        "reconv"; "convergence" ]
  in
  List.iter
    (fun (mode, r) ->
      Table.add_row ta
        [ mode_name mode;
          Printf.sprintf "%d/%d" r.delivered r.injected;
          pct (ratio_of ~healthy r);
          string_of_int r.link_down_drops;
          string_of_int r.reconvergences;
          (match r.convergence_s with
          | Some c -> Printf.sprintf "%.3f s" c
          | None -> "-") ])
    results;
  (* part B *)
  let items = draw_items ~fault_seed ~count:6 path_pairs in
  let sweep = Pool.map run_item items in
  let tb =
    Table.create
      ~aligns:
        [ Table.Right; Table.Left; Table.Left; Table.Right; Table.Right;
          Table.Right ]
      [ "outage"; "link"; "window"; "static %"; "self-heal %";
        "convergence" ]
  in
  List.iter
    (fun s ->
      let u, v = s.item.link in
      Table.add_row tb
        [ string_of_int s.item.index;
          Printf.sprintf "%d-%d" u v;
          Printf.sprintf "[%.2f, %.2f)" s.item.w.Plan.from_s
            s.item.w.Plan.until_s;
          pct (ratio_of ~healthy s.static_r);
          pct (ratio_of ~healthy s.heal_r);
          (match s.heal_r.convergence_s with
          | Some c -> Printf.sprintf "%.3f s" c
          | None -> "-") ])
    sweep;
  let mean f =
    List.fold_left (fun acc s -> acc +. f s) 0.0 sweep
    /. float_of_int (List.length sweep)
  in
  let mean_static = mean (fun s -> ratio_of ~healthy s.static_r) in
  let mean_heal = mean (fun s -> ratio_of ~healthy s.heal_r) in
  let body =
    Printf.sprintf
      "A %d-packet flow %d -> %d on a %d-ring; primary path %s loses \
       link %d-%d\nfor %s of simulated time (fault seed %d):\n\n\
       %s\n\
       Sweep of 6 seeded outages on the primary path, static vs \
       self-healing\n(hello %.0f ms x %d missed + %.0f ms recompute):\n\n\
       %s\n\
       mean availability: static %.1f%%, self-healing %.1f%% of healthy\n"
      packets src dst nodes
      (String.concat "-" (List.map string_of_int path))
      fu fv
      (Printf.sprintf "[%.2f, %.2f)" outage.Plan.from_s outage.Plan.until_s)
      fault_seed (Table.render ta) (heal_config.Selfheal.hello_interval *. 1000.0)
      heal_config.Selfheal.hellos_missed
      (heal_config.Selfheal.recompute_delay *. 1000.0)
      (Table.render tb) mean_static mean_heal
  in
  let static_r = List.assoc Static results in
  let heal_r = List.assoc Heal results in
  let relay_r = List.assoc Relay results in
  let ok =
    (* the healthy baseline is perfect and every run drains *)
    healthy.delivered = packets
    && healthy.link_down_drops = 0
    && List.for_all (fun (_, r) -> r.drained && r.injected = packets) results
    (* static routing collapses: the outage eats over half the flow *)
    && ratio_of ~healthy static_r < 50.0
    (* self-healing restores >= 90% of healthy delivery, converging in
       under half a second, and re-converges again on restore *)
    && ratio_of ~healthy heal_r >= 90.0
    && heal_r.reconvergences >= 2
    && (match heal_r.convergence_s with
       | Some c -> c > 0.0 && c < 0.5
       | None -> false)
    (* the overlay gets there too, without touching the control plane *)
    && ratio_of ~healthy relay_r >= 90.0
    (* and the sweep generalizes both claims across seeds *)
    && List.for_all
         (fun s ->
           s.static_r.drained && s.heal_r.drained
           && ratio_of ~healthy s.heal_r > ratio_of ~healthy s.static_r)
         sweep
    && mean_heal >= 90.0
  in
  (body, ok)

(* ---------- statistical sweep surface ----------

   One replicate draws one random outage on the primary path (same
   derivation as part B's [draw_items], but from the sweep's per-run
   seed) and runs the {e same} outage under static tables and under
   self-healing — so availability metrics are paired per seed.
   Availability is delivered/offered (the healthy baseline delivers
   all [packets], asserted by the shape check, so normalizing by the
   offered count is the same ratio without a third run). *)

let probe ~seed =
  let path_pairs = adjacent_pairs (primary_path ()) in
  let rng = Rng.create seed in
  let u, v = Rng.choice_list rng path_pairs in
  let from_s = Rng.uniform rng 0.3 0.9 in
  let until_s = from_s +. Rng.uniform rng 0.8 1.6 in
  let plan = [ Plan.Link_down { u; v; w = Plan.window from_s until_s } ] in
  let static_r = run_mode ~seed ~plan ~fault_at:from_s Static in
  let heal_r = run_mode ~seed ~plan ~fault_at:from_s Heal in
  let availability r = 100.0 *. float_of_int r.delivered /. float_of_int packets in
  [
    ("availability_static", availability static_r);
    ("availability_heal", availability heal_r);
    ( "availability_gap",
      availability heal_r -. availability static_r );
    (* 0.0 when the control plane never reconverged (cannot happen for
       outages this long, but the metric must stay finite) *)
    ("heal_convergence_s", Option.value ~default:0.0 heal_r.convergence_s);
  ]

let judge sample =
  let module T = Tussle_prelude.Stats.Test in
  [
    {
      Experiment.claim = "availability(heal) > availability(static)";
      test = "paired t, greater";
      result =
        T.paired ~alternative:T.Greater
          (sample "availability_heal")
          (sample "availability_static");
    };
    {
      Experiment.claim = "availability(heal) > availability(static), unpaired";
      test = "welch t, greater";
      result =
        T.two_sample ~alternative:T.Greater
          (sample "availability_heal")
          (sample "availability_static");
    };
    {
      Experiment.claim = "mean heal availability > 80% of offered";
      test = "one-sample t, greater";
      result =
        T.one_sample ~alternative:T.Greater ~mean:80.0
          (sample "availability_heal");
    };
  ]

let experiment =
  {
    Experiment.id = "E29";
    title = "Self-healing routing: availability under failure";
    paper_claim =
      "\"Design for variation in outcome ... rigidity and imposed \
       solutions are not the path\" (§IV) and \"failures of transparency \
       will occur — design what happens then\" (§VI-A): a network whose \
       control plane can shift its choices at run time — detecting a dead \
       link and re-converging around it — keeps delivering where static \
       tables drain the same outage into black-hole drops; end-system \
       overlays reach the same availability from the edge, without the \
       network's cooperation.";
    run;
    sweep = Some { Experiment.probe; judge };
  }
