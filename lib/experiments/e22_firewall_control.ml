(* E22 — Who sets the firewall policy?  Designing the space, not the
   answer (§V-B). *)

module Table = Tussle_prelude.Table
module Packet = Tussle_netsim.Packet
module Fc = Tussle_trust.Firewall_control

let user_node = 7
let other_node = 8
let game_port = Packet.default_port Packet.Game

let user_game_packet id src =
  Packet.make ~app:Packet.Game ~id ~src ~dst:42 ~created:0.0 ()

(* admin blocks the new application's port for everyone *)
let admin_block table ~visible =
  match
    Fc.add_rule table Fc.Admin ~allow:false ~visible
      { Fc.any with Fc.sel_port = Some game_port }
  with
  | Ok _ -> ()
  | Error `Beyond_authority -> assert false

(* the user asks for a pinhole over its own traffic *)
let user_pinhole table =
  Fc.add_rule table (Fc.End_user user_node) ~allow:true
    { Fc.any with Fc.sel_src = Some user_node; sel_port = Some game_port }

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right ]
      [ "regime"; "user's new app"; "others' new app"; "rule transparency" ]
  in
  let report name table =
    let mine = Fc.permits table (user_game_packet 0 user_node) in
    let theirs = Fc.permits table (user_game_packet 1 other_node) in
    Table.add_row t
      [
        name;
        (if mine then "flows" else "blocked");
        (if theirs then "flows" else "blocked");
        Table.fmt_pct (Fc.rule_transparency table ~user:user_node);
      ];
    (mine, theirs)
  in
  (* 1: admin-only authority: the pinhole request cannot win *)
  let admin_only = Fc.create ~users_may_override:false () in
  admin_block admin_only ~visible:true;
  (match user_pinhole admin_only with Ok _ | Error _ -> ());
  let mine1, theirs1 = report "admin in charge" admin_only in
  (* 2: the MIDCOM space: users rule their own traffic *)
  let midcom = Fc.create ~users_may_override:true () in
  admin_block midcom ~visible:true;
  (match user_pinhole midcom with Ok _ -> () | Error _ -> assert false);
  let mine2, theirs2 = report "user controls own traffic (MIDCOM)" midcom in
  (* 3: covert admin rule: same enforcement, zero visibility *)
  let covert = Fc.create ~users_may_override:false () in
  admin_block covert ~visible:false;
  let mine3, _ = report "admin in charge, rules hidden" covert in
  (* authority boundary: the user cannot legislate for others *)
  let overreach =
    Fc.add_rule midcom (Fc.End_user user_node) ~allow:true
      { Fc.any with Fc.sel_src = Some other_node }
  in
  let footer =
    Printf.sprintf
      "\nuser requesting control over someone else's traffic: %s\n\
       covert regime's enforcement point reveals itself: %b\n"
      (match overreach with
      | Error `Beyond_authority -> "refused (beyond authority)"
      | Ok _ -> "GRANTED (bug)")
      (Tussle_netsim.Middlebox.reveals_presence (Fc.middlebox covert))
  in
  let ok =
    (not mine1) && (not theirs1) (* admin veto binds everyone *)
    && mine2
    && (not theirs2) (* pinhole is scoped to the requester *)
    && (not mine3)
    && Fc.rule_transparency admin_only ~user:user_node = 1.0
    && Fc.rule_transparency covert ~user:user_node = 0.0
    && overreach = Error `Beyond_authority
    && not (Tussle_netsim.Middlebox.reveals_presence (Fc.middlebox covert))
  in
  (Table.render t ^ footer, ok)

let experiment =
  {
    Experiment.id = "E22";
    title = "Firewall control: who is in charge, and can you read the rules?";
    paper_claim =
      "\"Who gets to set the policy in the firewall? ... There is no \
       single answer, and we better not think we are going to design \
       it.  All we can design is the space for the tussle ... should \
       that end user be able to download and examine these rules? ... \
       there is no obvious way to enforce this requirement, so it \
       becomes a courtesy\" — the same rule table supports admin-rule, \
       user-pinhole and covert regimes; authority is bounded (users \
       only rule their own traffic) and visibility is measurable.";
    run;
    sweep = None;
  }
