(* E17 — IP traceback: design for an uncooperative network (§II-B). *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Traceback = Tussle_trust.Traceback

let run () =
  let path = [ 101; 102; 103; 104; 105; 106; 107; 108 ] in
  let p = 0.2 in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "attack packets observed"; "path accuracy"; "exact reconstruction" ]
  in
  let trials = 30 in
  let accuracies =
    List.map
      (fun packets ->
        let accs =
          List.init trials (fun k ->
              let rng = Rng.create (1017 + k) in
              let obs = Traceback.simulate rng ~path ~p ~packets in
              let guess = Traceback.reconstruct obs in
              Traceback.accuracy ~truth:path ~guess)
        in
        let mean =
          List.fold_left ( +. ) 0.0 accs /. float_of_int trials
        in
        let exact =
          float_of_int (List.length (List.filter (fun a -> a = 1.0) accs))
          /. float_of_int trials
        in
        Table.add_row t
          [ string_of_int packets; Table.fmt_pct mean; Table.fmt_pct exact ];
        (packets, mean))
      [ 10; 100; 1_000; 10_000; 100_000 ]
  in
  let first = snd (List.hd accuracies) in
  let last = snd (List.nth accuracies (List.length accuracies - 1)) in
  let rec non_decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 0.05 && non_decreasing rest
    | _ -> true
  in
  let ok = first < 0.9 && last > 0.99 && non_decreasing accuracies in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E17";
    title = "IP traceback: locating an attacker who will not cooperate";
    paper_claim =
      "\"Savage makes the point that for each of these functions there \
       exist alternative approaches ... that allow for solutions in an \
       uncooperative network\" (citing practical network support for IP \
       traceback) — probabilistic packet marking lets the victim \
       reconstruct the attack path from enough packets, with no help \
       from the attacker or intermediate sources.";
    run;
    sweep = None;
  }
