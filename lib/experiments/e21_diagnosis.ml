(* E21 — Fault isolation when transparency fails (§VI-A): revealing vs
   covert devices. *)

module Table = Tussle_prelude.Table
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Diagnosis = Tussle_netsim.Diagnosis

let path = [ 0; 1; 2; 3; 4; 5 ]

let line_forwarding ~node ~target _ =
  if target > node then Some (node + 1)
  else if target < node then Some (node - 1)
  else None

let fresh_id = ref 0

let make_net regime =
  let net = Net.create (Topology.to_links (Topology.line 6)) line_forwarding in
  (match regime with
  | `Clean -> ()
  | `Revealing ->
    Net.add_middlebox net 3
      (Middlebox.port_filter ~reveals_presence:true ~blocked:[ 6881 ] ())
  | `Covert ->
    Net.add_middlebox net 3
      (Middlebox.port_filter ~reveals_presence:false ~blocked:[ 6881 ] ()));
  net

let diagnose regime =
  let net = make_net regime in
  let engine = Engine.create () in
  let make ~target =
    incr fresh_id;
    Packet.make ~app:Packet.File_sharing ~id:!fresh_id ~src:0 ~dst:target
      ~created:(Engine.now engine) ()
  in
  let probe = Diagnosis.net_probe net engine ~make in
  Diagnosis.localize ~probe ~path

let verdict_string = function
  | Diagnosis.Clean -> "path clean"
  | Diagnosis.Blocked_at (name, node) ->
    Printf.sprintf "device %S confessed at node %d" name node
  | Diagnosis.Blocked_between (a, b) ->
    Printf.sprintf "bracketed between nodes %d and %d" a b
  | Diagnosis.Unreachable_at_start -> "dead at the first hop"

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right ]
      [ "on-path device"; "diagnosis"; "probes" ]
  in
  let results =
    List.map
      (fun (name, regime) ->
        let r = diagnose regime in
        Table.add_row t
          [ name; verdict_string r.Diagnosis.verdict;
            string_of_int r.Diagnosis.probes_used ];
        (regime, r))
      [
        ("none (transparent)", `Clean);
        ("filter that reveals its presence", `Revealing);
        ("covert filter", `Covert);
      ]
  in
  let get regime = List.assq regime results in
  let clean = get `Clean and revealing = get `Revealing and covert = get `Covert in
  let ok =
    clean.Diagnosis.verdict = Diagnosis.Clean
    && clean.Diagnosis.probes_used = 1
    (* the courteous device yields exact localization in one probe *)
    && (match revealing.Diagnosis.verdict with
       | Diagnosis.Blocked_at ("port-filter", 3) -> true
       | _ -> false)
    && revealing.Diagnosis.probes_used = 1
    (* the covert device costs more probes and yields only a bracket *)
    && (match covert.Diagnosis.verdict with
       | Diagnosis.Blocked_between (2, 3) -> true
       | _ -> false)
    && covert.Diagnosis.probes_used > revealing.Diagnosis.probes_used
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E21";
    title = "Fault isolation: courteous devices vs covert ones";
    paper_claim =
      "\"Failures of transparency will occur — design what happens then \
       ... Tools for fault isolation and error reporting would help ... \
       some devices that impair transparency may intentionally give no \
       error information or even reveal their presence, and that must \
       be taken into account in design of diagnostic tools\" — a \
       revealing device is localized exactly in one probe; a covert one \
       costs a probe sweep and is only ever bracketed.";
    run;
    sweep = None;
  }
