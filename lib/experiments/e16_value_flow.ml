(* E16 — The value-flow protocol in action (§IV-C): compensation flows
   hop-by-hop with the data, escrow refunds failures, and bilateral
   settlement nets the books — with conservation checked throughout. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Pathvector = Tussle_routing.Pathvector
module Payment = Tussle_econ.Payment

let carriage_price = 0.25

let run () =
  let rng = Rng.create 1016 in
  let tt =
    Topology.two_tier rng ~transits:3 ~accesses:4 ~hosts_per_access:2
      ~multihoming:2
  in
  let pv = Pathvector.compute tt.Topology.graph in
  let plain = Graph.map_edges tt.Topology.graph (fun (e, _) -> e) in
  let net = Net.create (Topology.to_links plain) (Pathvector.forwarding pv) in
  let n_nodes = Graph.node_count plain in
  let ledger = Payment.create ~parties:n_nodes ~initial:10.0 in
  let supply0 = Payment.total_supply ledger in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.split rng) in
  let hosts = Array.of_list tt.Topology.hosts in
  let n = Array.length hosts in
  (* every host escrows payment for carriage along its chosen path, then
     sends; on delivery the escrow is captured to the on-path providers,
     on loss it is refunded *)
  let escrows = Hashtbl.create 16 in
  let sent = ref 0 and paid_ok = ref 0 and refunded = ref 0 in
  for i = 0 to n - 1 do
    let src = hosts.(i) and dst = hosts.((i + 3) mod n) in
    if src <> dst then begin
      match Pathvector.as_path pv ~src ~dst with
      | None -> ()
      | Some path ->
        let providers = List.filter (fun hop -> hop <> dst) path in
        let hops = List.map (fun p -> (p, carriage_price)) providers in
        (match Payment.authorize ledger ~payer:src ~hops with
        | Error (`Insufficient _) -> ()
        | Ok escrow ->
          incr sent;
          let p = Traffic.next_packet gen ~src ~dst ~created:0.0 () in
          Hashtbl.replace escrows p.Packet.id escrow;
          Net.inject net engine p)
    end
  done;
  Engine.run engine;
  List.iter
    (fun ((p : Packet.t), outcome) ->
      match Hashtbl.find_opt escrows p.Packet.id with
      | None -> ()
      | Some escrow -> begin
        match outcome with
        | Net.Delivered _ ->
          ignore (Payment.capture ledger escrow);
          incr paid_ok
        | Net.Lost _ ->
          Payment.refund ledger escrow;
          incr refunded
      end)
    (Net.outcomes net);
  let supply1 = Payment.total_supply ledger in
  let transfers = Payment.log ledger in
  let settlements = Payment.settle_bilateral ledger in
  let provider_earnings node = Payment.balance ledger node -. 10.0 in
  let transit_earned =
    List.fold_left (fun acc tr -> acc +. provider_earnings tr) 0.0
      tt.Topology.transits
  in
  let access_earned =
    List.fold_left (fun acc a -> acc +. provider_earnings a) 0.0
      tt.Topology.accesses
  in
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right ] [ "value-flow ledger"; "" ]
  in
  Table.add_row t [ "packets sent (escrowed)"; string_of_int !sent ];
  Table.add_row t [ "delivered -> captured"; string_of_int !paid_ok ];
  Table.add_row t [ "lost -> refunded"; string_of_int !refunded ];
  Table.add_row t [ "hop transfers recorded"; string_of_int (List.length transfers) ];
  Table.add_row t
    [ "bilateral settlements"; string_of_int (List.length settlements) ];
  Table.add_row t [ "transit ISPs earned"; Printf.sprintf "%.2f" transit_earned ];
  Table.add_row t [ "access ISPs earned"; Printf.sprintf "%.2f" access_earned ];
  Table.add_row t
    [ "money conserved";
      (if Float.abs (supply1 -. supply0) < 1e-9 then "yes" else "NO") ];
  let ok =
    !sent > 0
    && !paid_ok = !sent (* this topology delivers everything *)
    && !refunded = 0
    && transfers <> []
    && List.length settlements <= List.length transfers
    && transit_earned > 0.0
    && access_earned > 0.0
    && Float.abs (supply1 -. supply0) < 1e-9
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E16";
    title = "A value-flow protocol: compensation moves with the data";
    paper_claim =
      "\"Whatever the compensation, recognize that it must flow, just as \
       much as data must flow.  Sometimes this happens outside the \
       system, sometimes within a protocol.  If this 'value flow' \
       requires a protocol, design it\" — escrowed per-hop carriage \
       payments captured on delivery and refunded on loss, with every \
       exchange of value visible in the ledger and bilateral settlement \
       netting the books.";
    run;
    sweep = None;
  }
