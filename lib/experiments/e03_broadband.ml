(* E3 — Residential broadband competition (§V-A3). *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Market = Tussle_econ.Market

let scenarios =
  [
    ("monopoly (one wire)", 1);
    ("duopoly (telco + cable)", 2);
    ("4 ISPs", 4);
    ("open-access fiber, 8 ISPs", 8);
    ("5000 dialup ISPs (proxy: 16)", 16);
  ]

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "market structure"; "price"; "benchmark c+t/n"; "HHI"; "consumer surplus" ]
  in
  let rows =
    List.map
      (fun (name, n) ->
        (* population scale: market power is demonstrated on 10^5
           consumers (ROADMAP "million-actor hot path") *)
        let cfg =
          {
            Market.default_config with
            Market.n_providers = n;
            Market.n_consumers = 100_000;
          }
        in
        let r = Market.run (Rng.create 1003) cfg in
        Table.add_row t
          [
            name;
            Printf.sprintf "%.2f" r.Market.mean_price;
            Printf.sprintf "%.2f" (Market.salop_price cfg);
            Printf.sprintf "%.3f" r.Market.hhi;
            Printf.sprintf "%.0f" r.Market.consumer_surplus;
          ];
        r)
      scenarios
  in
  let price i = (List.nth rows i).Market.mean_price in
  let surplus i = (List.nth rows i).Market.consumer_surplus in
  let hhi i = (List.nth rows i).Market.hhi in
  let ok =
    price 1 > price 3 (* duopoly dearer than open access *)
    && surplus 1 < surplus 3
    && hhi 1 > hhi 3
    && price 0 >= price 1 (* monopoly at the top *)
  in
  (Table.render t, ok)

(* ---------- statistical sweep surface ----------

   The table above runs four market structures at showcase scale on a
   single seed; the probe re-runs the interesting ones (monopoly,
   duopoly, 4 ISPs, open-access 8) at sweep scale under a per-seed Rng
   so the driver can judge "duopoly gouges relative to open access"
   with a p-value across seeds instead of on seed 1003 alone.  Metrics
   are paired per seed: every structure sees the same consumer draw. *)

let sweep_structures =
  [ ("mono", 1); ("duo", 2); ("isp4", 4); ("open8", 8) ]

let probe ~seed =
  List.concat_map
    (fun (key, n) ->
      let cfg =
        {
          Market.default_config with
          Market.n_providers = n;
          Market.n_consumers = 2_000;
        }
      in
      let r = Market.run (Rng.create seed) cfg in
      [
        ("price_" ^ key, r.Market.mean_price);
        ("hhi_" ^ key, r.Market.hhi);
        ("surplus_" ^ key, r.Market.consumer_surplus);
      ])
    sweep_structures

let judge sample =
  let module T = Tussle_prelude.Stats.Test in
  let paired_greater claim a b =
    {
      Experiment.claim;
      test = "paired t, greater";
      result = T.paired ~alternative:T.Greater (sample a) (sample b);
    }
  in
  [
    paired_greater "price(duo) > price(open8)" "price_duo" "price_open8";
    paired_greater "hhi(duo) > hhi(open8)" "hhi_duo" "hhi_open8";
    paired_greater "surplus(open8) > surplus(duo)" "surplus_open8"
      "surplus_duo";
  ]

let experiment =
  {
    Experiment.id = "E3";
    title = "Residential broadband access competition";
    paper_claim =
      "\"A pessimistic outcome ... is that the average residential \
       customer will have two choices ... This loss of choice and \
       competition is viewed with great alarm ... fiber installed by a \
       neutral party such as a municipality can be a platform for \
       competitors\" — duopoly prices well above the open-access \
       outcome; concentration (HHI) falls as entry opens.";
    run;
    sweep = Some { Experiment.probe; judge };
  }
