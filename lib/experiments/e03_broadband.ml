(* E3 — Residential broadband competition (§V-A3). *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Market = Tussle_econ.Market

let scenarios =
  [
    ("monopoly (one wire)", 1);
    ("duopoly (telco + cable)", 2);
    ("4 ISPs", 4);
    ("open-access fiber, 8 ISPs", 8);
    ("5000 dialup ISPs (proxy: 16)", 16);
  ]

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "market structure"; "price"; "benchmark c+t/n"; "HHI"; "consumer surplus" ]
  in
  let rows =
    List.map
      (fun (name, n) ->
        (* population scale: market power is demonstrated on 10^5
           consumers (ROADMAP "million-actor hot path") *)
        let cfg =
          {
            Market.default_config with
            Market.n_providers = n;
            Market.n_consumers = 100_000;
          }
        in
        let r = Market.run (Rng.create 1003) cfg in
        Table.add_row t
          [
            name;
            Printf.sprintf "%.2f" r.Market.mean_price;
            Printf.sprintf "%.2f" (Market.salop_price cfg);
            Printf.sprintf "%.3f" r.Market.hhi;
            Printf.sprintf "%.0f" r.Market.consumer_surplus;
          ];
        r)
      scenarios
  in
  let price i = (List.nth rows i).Market.mean_price in
  let surplus i = (List.nth rows i).Market.consumer_surplus in
  let hhi i = (List.nth rows i).Market.hhi in
  let ok =
    price 1 > price 3 (* duopoly dearer than open access *)
    && surplus 1 < surplus 3
    && hhi 1 > hhi 3
    && price 0 >= price 1 (* monopoly at the top *)
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E3";
    title = "Residential broadband access competition";
    paper_claim =
      "\"A pessimistic outcome ... is that the average residential \
       customer will have two choices ... This loss of choice and \
       competition is viewed with great alarm ... fiber installed by a \
       neutral party such as a municipality can be a platform for \
       competitors\" — duopoly prices well above the open-access \
       outcome; concentration (HHI) falls as entry opens.";
    run;
    sweep = None;
  }
