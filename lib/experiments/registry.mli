(** The experiment registry: every paper claim the harness regenerates.

    The battery is embarrassingly parallel — each experiment builds its
    own [Rng]/[Engine] and renders into its own buffer — so the runner
    fans it out over OCaml 5 domains via {!Tussle_prelude.Pool} while
    printing results strictly in registry order.  Output is
    byte-identical for any domain count. *)

val all : Experiment.t list
(** E1 through E27 in order. *)

val find : string -> Experiment.t option
(** Lookup by id (case-insensitive, e.g. "e4" or "E4"). *)

val run_list : ?domains:int -> Experiment.t list -> Experiment.outcome list
(** Run a batch of experiments on [domains] domains (default
    {!Tussle_prelude.Pool.default_domains}; [~domains:1] is strictly
    sequential in the calling domain) and return their outcomes in
    input order.  Fault-isolated: a raising experiment yields a
    [Failed] outcome instead of killing the batch. *)

val run_all : ?domains:int -> unit -> bool
(** Run and print every experiment to stdout in registry order;
    [true] iff every shape check held (a [Failed] experiment counts as
    not holding). *)

val run_battery :
  ?domains:int -> unit -> bool * Experiment.outcome list * float
(** Like {!run_all} but also returns the outcomes (for report
    building) and the battery wall clock in seconds.  The whole run is
    wrapped in a ["battery"] span when tracing is enabled. *)

val run_one : string -> (Experiment.outcome, string) result
(** Print one experiment by id (fault-isolated like {!run_all}) and
    return its outcome. *)

val report :
  ?label:string ->
  domains:int ->
  wall_s:float ->
  Experiment.outcome list ->
  Tussle_obs.Report.t
(** Assemble the structured battery report from outcomes plus the
    current {!Tussle_prelude.Pool.last_stats} and
    {!Tussle_obs.Metrics.snapshot}.  Call it right after the battery,
    before anything else touches the pool or the metric sinks. *)
