(** The experiment registry: every paper claim the harness regenerates.

    The battery is embarrassingly parallel — each experiment builds its
    own [Rng]/[Engine] and renders into its own buffer — so the runner
    fans it out over OCaml 5 domains via {!Tussle_prelude.Pool} while
    printing results strictly in registry order.  Output is
    byte-identical for any domain count. *)

val all : Experiment.t list
(** E1 through E28 in order. *)

val hang_probe : Experiment.t
(** "E99": a deliberately-hung toy experiment ({e not} part of {!all})
    whose [run] never returns — the fixture tests and CI use to check
    that the watchdog converts a runaway experiment into a
    [FAILED (timeout)] outcome without killing the battery.  Only run
    it with [?timeout_s] armed. *)

val sweepables : unit -> Experiment.t list
(** The experiments exposing a statistical {!Experiment.sweep}
    surface, in registry order — what [tussle sweep] runs by
    default. *)

val find : string -> Experiment.t option
(** Lookup by id (case-insensitive, e.g. "e4" or "E4"); also resolves
    the {!hang_probe} ("E99"). *)

val run_list :
  ?domains:int ->
  ?timeout_s:float ->
  Experiment.t list ->
  Experiment.outcome list
(** Run a batch of experiments on [domains] domains (default
    {!Tussle_prelude.Pool.default_domains}; [~domains:1] is strictly
    sequential in the calling domain) and return their outcomes in
    input order.  Fault-isolated: a raising experiment yields a
    [Failed] outcome instead of killing the batch, and with
    [?timeout_s] set each experiment additionally runs under the
    watchdog of {!Experiment.run} — a runaway one becomes
    [FAILED (timeout)] while the rest of the batch carries on. *)

val run_all : ?domains:int -> ?timeout_s:float -> unit -> bool
(** Run and print every experiment to stdout in registry order;
    [true] iff every shape check held (a [Failed] experiment counts as
    not holding). *)

val run_battery :
  ?domains:int ->
  ?timeout_s:float ->
  unit ->
  bool * Experiment.outcome list * float
(** Like {!run_all} but also returns the outcomes (for report
    building) and the battery wall clock in seconds.  The whole run is
    wrapped in a ["battery"] span when tracing is enabled. *)

val run_one : ?timeout_s:float -> string -> (Experiment.outcome, string) result
(** Print one experiment by id (fault-isolated and watchdog-guarded
    like {!run_all}) and return its outcome. *)

val report :
  ?label:string ->
  domains:int ->
  wall_s:float ->
  Experiment.outcome list ->
  Tussle_obs.Report.t
(** Assemble the structured battery report from outcomes plus the
    current {!Tussle_prelude.Pool.last_stats} and
    {!Tussle_obs.Metrics.snapshot}.  Call it right after the battery,
    before anything else touches the pool or the metric sinks. *)
