(* E4 — Competitive wide-area access via source routing (§V-A4).

   Two transit providers: one honors QoS, the other strips it.  Under
   provider-controlled routing the user cannot steer toward the honest
   one; with loose source routes but no payment the transits refuse the
   traffic; with payment, choice works and the QoS-honoring transit wins
   the traffic. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Pathvector = Tussle_routing.Pathvector
module Sourceroute = Tussle_routing.Sourceroute

type regime = Provider_routing | User_routing_unpaid | User_routing_paid

let regime_name = function
  | Provider_routing -> "provider-controlled routing"
  | User_routing_unpaid -> "user source routes, no payment"
  | User_routing_paid -> "user source routes + payment"

(* Path-vector tie-breaking prefers the lowest-id transit, so transit 0
   is the providers' default choice; the QoS-honoring one is transit 1 —
   reachable only if the user can steer. *)
let honest_transit = 1

let run_regime tt pv regime =
  let plain = Graph.map_edges tt.Topology.graph (fun (e, _) -> e) in
  let links = Topology.to_links plain in
  let net = Net.create links (Pathvector.forwarding pv) in
  let paid = regime = User_routing_paid in
  List.iter
    (fun tr ->
      Net.add_middlebox net tr (Sourceroute.refusal_middlebox ~paid);
      if tr <> honest_transit then
        Net.add_middlebox net tr (Middlebox.qos_stripper ~honor:(fun _ -> false) ()))
    tt.Topology.transits;
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 42) in
  let hosts = Array.of_list tt.Topology.hosts in
  let n = Array.length hosts in
  let sent = ref 0 in
  for i = 0 to n - 1 do
    let src = hosts.(i) and dst = hosts.((i + (n / 2)) mod n) in
    if src <> dst then begin
      incr sent;
      let source_route =
        match regime with
        | Provider_routing -> []
        | User_routing_unpaid | User_routing_paid ->
          Sourceroute.waypoints_via ~transit:honest_transit
      in
      Net.inject net engine
        (Traffic.next_packet gen ~qos:Packet.Premium ~source_route ~src ~dst
           ~created:0.0 ())
    end
  done;
  Engine.run engine;
  let delivered = ref 0 and intact = ref 0 in
  List.iter
    (fun (_, o) ->
      match o with
      | Net.Delivered { degraded; _ } ->
        incr delivered;
        if not degraded then incr intact
      | Net.Lost _ -> ())
    (Net.outcomes net);
  let f x = float_of_int x /. float_of_int !sent in
  (f !delivered, f !intact)

let run () =
  let rng = Rng.create 1004 in
  let tt =
    Topology.two_tier rng ~transits:2 ~accesses:4 ~hosts_per_access:3
      ~multihoming:2
  in
  let pv = Pathvector.compute tt.Topology.graph in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "regime"; "delivered"; "premium honored" ]
  in
  let results =
    List.map
      (fun regime ->
        let delivered, intact = run_regime tt pv regime in
        Table.add_row t
          [ regime_name regime; Table.fmt_pct delivered; Table.fmt_pct intact ];
        (regime, delivered, intact))
      [ Provider_routing; User_routing_unpaid; User_routing_paid ]
  in
  let get r = List.find (fun (x, _, _) -> x = r) results in
  let _, d_prov, i_prov = get Provider_routing in
  let _, d_unpaid, _ = get User_routing_unpaid in
  let _, d_paid, i_paid = get User_routing_paid in
  let ok =
    d_prov > 0.99 (* provider routing delivers... *)
    && i_prov < 0.9 (* ...but some traffic rides the QoS-stripping transit *)
    && d_unpaid < 0.5 (* unpaid source routes are refused *)
    && d_paid > 0.99
    && i_paid > 0.99 (* paid choice: delivered AND honored *)
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E4";
    title = "Competitive wide-area access (source routing + payment)";
    paper_claim =
      "\"The Internet should support a mechanism for choice such as \
       source routing ... service providers do not like loose source \
       routes, because ISPs do not receive any benefit when they carry \
       traffic directed by a source route ... The design for \
       provider-level source routing must incorporate a recognition of \
       the need for payment.\"";
    run;
    sweep = None;
  }
