(* E19 — Scoring the paper's designs against its own principles (§IV):
   choice, visibility, tussle isolation, value flow. *)

module Table = Tussle_prelude.Table
module Actor = Tussle_core.Actor
module Metrics = Tussle_core.Metrics

let cp name holder alternatives reveals =
  {
    Metrics.cp_name = name;
    holder;
    alternatives;
    reveals_presence = reveals;
  }

(* The deployed DNS: one namespace for machines, mail and brands; the
   registrar is the only choice point; disputes are resolved invisibly. *)
let deployed_dns =
  {
    Metrics.design_name = "deployed DNS";
    control_points = [ cp "registrar" Actor.Content_provider 1 false ];
    value_flows = [ (Actor.User, Actor.Content_provider) ];
    service_flows = [ (Actor.User, Actor.Content_provider) ];
    module_map =
      {
        Metrics.modules =
          [ ("dns", [ "machine-naming"; "mailbox-naming"; "brand-expression" ]) ];
        contested = [ "brand-expression" ];
      };
  }

(* The paper's fix: separate directories, competing registrars, visible
   dispute handling. *)
let separated_naming =
  {
    Metrics.design_name = "separated naming";
    control_points = [ cp "registrar" Actor.Content_provider 5 true ];
    value_flows = [ (Actor.User, Actor.Content_provider) ];
    service_flows = [ (Actor.User, Actor.Content_provider) ];
    module_map =
      {
        Metrics.modules =
          [
            ("machine-names", [ "machine-naming" ]);
            ("mailboxes", [ "mailbox-naming" ]);
            ("brand-directory", [ "brand-expression" ]);
          ];
        contested = [ "brand-expression" ];
      };
  }

(* Provider-controlled routing: the user has no wide-area choice and no
   payment flows for the choices made. *)
let provider_routing =
  {
    Metrics.design_name = "provider routing (BGP as deployed)";
    control_points = [ cp "route-selection" Actor.Isp 1 false ];
    value_flows = [];
    service_flows = [ (Actor.User, Actor.Isp) ];
    module_map =
      {
        Metrics.modules = [ ("routing", [ "path-selection"; "packet-carriage" ]) ];
        contested = [ "path-selection" ];
      };
  }

(* The paper's proposal: user source routing with payment, fault
   reporting, separate carriage. *)
let source_routing_paid =
  {
    Metrics.design_name = "source routing + payment";
    control_points = [ cp "route-selection" Actor.User 3 true ];
    value_flows = [ (Actor.User, Actor.Isp) ];
    service_flows = [ (Actor.User, Actor.Isp) ];
    module_map =
      {
        Metrics.modules =
          [ ("route-choice", [ "path-selection" ]);
            ("forwarding", [ "packet-carriage" ]) ];
        contested = [ "path-selection" ];
      };
  }

(* Closed QoS: the ISP turns QoS on only for the applications it sells;
   app identity and service quality are entangled. *)
let closed_qos =
  {
    Metrics.design_name = "closed QoS (ISP-bundled)";
    control_points = [ cp "qos-activation" Actor.Isp 1 false ];
    value_flows = [ (Actor.User, Actor.Isp) ];
    service_flows = [ (Actor.User, Actor.Isp); (Actor.Content_provider, Actor.Isp) ];
    module_map =
      {
        Metrics.modules = [ ("service", [ "qos-selection"; "app-identity" ]) ];
        contested = [ "qos-selection"; "app-identity" ];
      };
  }

(* Open QoS with ToS bits: the user sets the bits; what application runs
   is modularized away from what service is requested. *)
let open_qos =
  {
    Metrics.design_name = "open QoS (explicit ToS bits)";
    control_points = [ cp "qos-activation" Actor.User 3 true ];
    value_flows = [ (Actor.User, Actor.Isp); (Actor.Content_provider, Actor.Isp) ];
    service_flows = [ (Actor.User, Actor.Isp); (Actor.Content_provider, Actor.Isp) ];
    module_map =
      {
        Metrics.modules =
          [ ("qos", [ "qos-selection" ]); ("apps", [ "app-identity" ]) ];
        contested = [ "qos-selection" ];
      };
  }

let pairs =
  [
    (deployed_dns, separated_naming);
    (provider_routing, source_routing_paid);
    (closed_qos, open_qos);
  ]

let run () =
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "design"; "choice"; "visibility"; "isolation"; "value flow"; "overall" ]
  in
  let score d =
    let s = Metrics.score d in
    Table.add_row t
      [
        d.Metrics.design_name;
        Printf.sprintf "%.2f" s.Metrics.choice;
        Printf.sprintf "%.2f" s.Metrics.visibility;
        Printf.sprintf "%.2f" s.Metrics.isolation;
        Printf.sprintf "%.2f" s.Metrics.value_flow;
        Printf.sprintf "%.2f" s.Metrics.overall;
      ];
    s
  in
  let ok =
    List.for_all
      (fun (bad, good) ->
        let sb = score bad in
        let sg = score good in
        sg.Metrics.overall > sb.Metrics.overall)
      pairs
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E19";
    title = "Scoring designs against the paper's own principles";
    paper_claim =
      "§IV: design for choice, make the consequences of choice visible, \
       modularize along tussle boundaries, and let value flow where \
       service flows.  For each tussle space the paper discusses, the \
       design it advocates outscores the deployed one on exactly those \
       axes.";
    run;
    sweep = None;
  }
