(* E9 — End-to-end encryption vs peeking, and the escalation that
   follows (§VI-A).

   Part 1: packets cross an inspecting middlebox; as encryption adoption
   rises, the fraction of traffic the observer can classify falls to
   zero — "peeking is irresistible ... the ultimate defense of the
   end-to-end mode is end-to-end encryption."

   Part 2: the provider's counter-move (refuse or surcharge encrypted
   traffic) is priced under competition and under monopoly. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Linkstate = Tussle_routing.Linkstate
module Escalation = Tussle_econ.Escalation

let classify_run ~adoption =
  let rng = Rng.create 1009 in
  let g = Topology.line 5 in
  let ls = Linkstate.compute g ~metric:`Hops in
  let net = Net.create (Topology.to_links g) (Linkstate.forwarding ls) in
  (* an observer in the middle tries to read application identity *)
  let readable = ref 0 and inspected = ref 0 in
  let observer =
    Middlebox.make ~reveals_presence:false ~name:"observer" (fun p ->
        incr inspected;
        (match Packet.visible_app p with
        | Some _ -> incr readable
        | None -> ());
        Middlebox.Forward)
  in
  Net.add_middlebox net 2 observer;
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.split rng) in
  let apps = [| Packet.Web; Packet.Mail; Packet.Voip; Packet.File_sharing |] in
  Traffic.constant_flow gen engine net ~interval:0.001 ~count:400
    ~make:(fun gen ~created ->
      let encrypted = Rng.bernoulli rng adoption in
      Traffic.next_packet gen ~app:(Rng.choice rng apps) ~encrypted ~src:0
        ~dst:4 ~created ());
  Engine.run engine;
  ( float_of_int !readable /. float_of_int !inspected,
    Net.delivery_ratio net )

let part1 () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "encryption adoption"; "traffic classifiable"; "delivery" ]
  in
  let readable_at =
    List.map
      (fun adoption ->
        let readable, delivery = classify_run ~adoption in
        Table.add_row t
          [ Table.fmt_pct adoption; Table.fmt_pct readable;
            Table.fmt_pct delivery ];
        readable)
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  let first = List.hd readable_at
  and last = List.nth readable_at (List.length readable_at - 1) in
  (Table.render t, first > 0.99 && last < 0.01)

let part2 () =
  let base competitive =
    {
      Escalation.n_users = 1000.0;
      enc_fraction = 0.3;
      base_price = 5.0;
      service_value = 8.0;
      privacy_value = 2.0;
      inspection_value = 1.0;
      competitive;
    }
  in
  let grid = [ 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Left ]
      [ "market"; "ISP best response"; "ISP profit"; "encryption survives?" ]
  in
  let describe = function
    | Escalation.Carry -> "carry encrypted traffic"
    | Escalation.Refuse -> "refuse encrypted traffic"
    | Escalation.Surcharge s -> Printf.sprintf "surcharge %.1f" s
  in
  let row name p =
    let policy, profit = Escalation.best_policy p ~surcharge_grid:grid in
    let survives = Escalation.encryption_survives p ~surcharge_grid:grid in
    Table.add_row t
      [ name; describe policy; Printf.sprintf "%.0f" profit;
        (if survives then "yes" else "no") ];
    (policy, survives)
  in
  let comp_policy, comp_survives = row "competitive" (base true) in
  let mono_policy, mono_survives = row "monopoly" (base false) in
  let _, cheap_survives =
    row "monopoly, privacy barely valued"
      { (base false) with Escalation.privacy_value = 0.2 }
  in
  let ok =
    comp_policy = Escalation.Carry && comp_survives
    && mono_policy <> Escalation.Carry && mono_survives
    && not cheap_survives
  in
  (Table.render t, ok)

let run () =
  let t1, ok1 = part1 () in
  let t2, ok2 = part2 () in
  (t1 ^ "\n" ^ t2, ok1 && ok2)

let experiment =
  {
    Experiment.id = "E9";
    title = "Encryption defeats peeking; competition disciplines the backlash";
    paper_claim =
      "\"If there is information visible in the packet, there is no way \
       to keep an intermediate node from looking at it.  So the ultimate \
       defense of the end-to-end mode is end-to-end encryption ... In \
       the U.S., competition would probably discipline a provider that \
       tried to block encryption.  But a conservative government with a \
       state-run monopoly ISP might.\"";
    run;
    sweep = None;
  }
