(* E12 — Actor-network churn, freezing, and collision (§II-A, §II-C). *)

module Rng = Tussle_prelude.Rng
module Table = Tussle_prelude.Table
module Actor_network = Tussle_core.Actor_network

let run () =
  let cfg =
    {
      Actor_network.default_config with
      Actor_network.steps = 300;
      (* solidification takes decades, not quarters: slow halflife so the
         contrast between churned and static networks is visible *)
      commitment_halflife = 60.0;
    }
  in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "new-actor arrival rate"; "population"; "alignment"; "rigidity" ]
  in
  let finals =
    List.map
      (fun rate ->
        let snaps =
          Actor_network.run (Rng.create 1012)
            { cfg with Actor_network.arrival_rate = rate }
        in
        let last = List.nth snaps (List.length snaps - 1) in
        Table.add_row t
          [
            Printf.sprintf "%.2f" rate;
            string_of_int last.Actor_network.population;
            Printf.sprintf "%.3f" last.Actor_network.alignment;
            Printf.sprintf "%.3f" last.Actor_network.rigidity;
          ];
        (rate, last.Actor_network.rigidity))
      [ 0.0; 0.05; 0.2; 0.5; 1.0; 2.0 ]
  in
  (* collision: a solidified incumbent network lands mid-run *)
  let snaps =
    Actor_network.collides (Rng.create 1012) cfg ~incumbent_size:40
      ~incumbent_position:0.9
  in
  let align k =
    (List.find (fun s -> s.Actor_network.step = k) snaps).Actor_network.alignment
  in
  let t2 =
    Table.create ~aligns:[ Table.Left; Table.Right ]
      [ "collision with a solidified incumbent (VoIP vs telephony)"; "alignment" ]
  in
  Table.add_row t2 [ "just before the collision"; Printf.sprintf "%.3f" (align 149) ];
  Table.add_row t2 [ "just after"; Printf.sprintf "%.3f" (align 151) ];
  Table.add_row t2
    [ "end of run"; Printf.sprintf "%.3f" (align cfg.Actor_network.steps) ];
  let frozen = List.assoc 0.0 finals in
  let churning = List.assoc 2.0 finals in
  let rec non_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a +. 0.05 >= b && non_increasing rest
    | _ -> true
  in
  let ok =
    frozen > 0.9 (* no arrivals: the network freezes *)
    && churning < 0.7 (* churn keeps it changeable *)
    && non_increasing finals (* rigidity broadly falls with churn *)
    && align 151 < align 149 -. 0.05 (* collisions break alignment *)
  in
  (Table.render t ^ "\n" ^ Table.render t2, ok)

let experiment =
  {
    Experiment.id = "E12";
    title = "Churn keeps the actor network changeable; its end means freezing";
    paper_claim =
      "\"It is that the new applications bring new actors to the actor \
       network, which keeps the actor network from becoming frozen ... \
       When new applications and user groups cease to come to the \
       Internet, and the set of actors ... becomes fixed ... this will \
       imply a freezing of the actor network, and a freezing of the \
       Internet.  So we should look for a time when innovation slows, \
       not just as a signal but also as a pre-condition.\"";
    run;
    sweep = None;
  }
