(* E5 — Trust: firewalls, protection, and collateral damage (§V-B).

   Sweep the attacker fraction under three protection regimes and
   measure both sides of the trade: attacks landed and legitimate
   traffic collateral-damaged. *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Engine = Tussle_netsim.Engine
module Packet = Tussle_netsim.Packet
module Topology = Tussle_netsim.Topology
module Middlebox = Tussle_netsim.Middlebox
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Linkstate = Tussle_routing.Linkstate
module Trust_graph = Tussle_trust.Trust_graph

type regime = Open | Port_filter | Trust_mediated

let regime_name = function
  | Open -> "open"
  | Port_filter -> "port-filter"
  | Trust_mediated -> "trust-mediated"

type outcome = { attack_rate : float; collateral : float }
(* attack_rate: attacks landed / attacks sent;
   collateral: legit traffic lost / legit sent *)

let run_cell ~seed ~attacker_fraction regime =
  let rng = Rng.create seed in
  let tt =
    Topology.two_tier rng ~transits:2 ~accesses:4 ~hosts_per_access:5
      ~multihoming:1
  in
  let plain = Graph.map_edges tt.Topology.graph (fun (e, _) -> e) in
  let ls = Linkstate.compute plain ~metric:`Hops in
  let net = Net.create (Topology.to_links plain) (Linkstate.forwarding ls) in
  let hosts = Array.of_list tt.Topology.hosts in
  let n = Array.length hosts in
  let attacker = Array.map (fun _ -> Rng.bernoulli rng attacker_fraction) hosts in
  (* web of trust among good parties, anchored in the provider graph *)
  let tg = Trust_graph.create (Graph.node_count plain) in
  Array.iteri
    (fun i h ->
      if not attacker.(i) then begin
        let a = tt.Topology.access_of_host h in
        Trust_graph.add_mutual tg h a 0.95;
        List.iter
          (fun tr -> Trust_graph.add_mutual tg a tr 0.95)
          (tt.Topology.transit_of_access a)
      end)
    hosts;
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 -> if t1 < t2 then Trust_graph.add_mutual tg t1 t2 0.95)
        tt.Topology.transits)
    tt.Topology.transits;
  let admits ~src ~dst = Trust_graph.trusts ~max_depth:6 tg ~threshold:0.5 dst src in
  List.iter
    (fun a ->
      match regime with
      | Open -> ()
      | Port_filter ->
        Net.add_middlebox net a
          (Middlebox.port_filter ~blocked:[ Packet.default_port Packet.Attack ] ())
      | Trust_mediated ->
        Net.add_middlebox net a (Middlebox.trust_firewall ~admits ()))
    tt.Topology.accesses;
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.split rng) in
  let good_hosts =
    Array.of_list (List.filteri (fun i _ -> not attacker.(i)) (Array.to_list hosts))
  in
  let attacks_sent = ref 0 and legit_sent = ref 0 in
  if Array.length good_hosts >= 2 then
    for i = 0 to n - 1 do
      for _ = 1 to 5 do
        let src = hosts.(i) in
        if attacker.(i) then begin
          let dst = hosts.(Rng.int rng n) in
          if dst <> src then begin
            incr attacks_sent;
            let tunneled = Rng.bernoulli rng 0.5 in
            Net.inject net engine
              (Traffic.next_packet gen ~app:Packet.Attack ~tunneled ~src ~dst
                 ~created:(Engine.now engine) ())
          end
        end
        else begin
          let dst = Rng.choice rng good_hosts in
          if dst <> src then begin
            incr legit_sent;
            (* 30% is a new application on an uncommon port that happens to
               collide with the blocked one: the innovation canary *)
            let app = if Rng.bernoulli rng 0.3 then Packet.Game else Packet.Web in
            let port =
              if app = Packet.Game then Packet.default_port Packet.Attack
              else Packet.default_port app
            in
            Net.inject net engine
              (Traffic.next_packet gen ~app ~port ~src ~dst
                 ~created:(Engine.now engine) ())
          end
        end
      done
    done;
  Engine.run engine;
  let attacks_landed = ref 0 and legit_ok = ref 0 in
  List.iter
    (fun ((p : Packet.t), o) ->
      match o with
      | Net.Delivered _ ->
        if p.Packet.app = Packet.Attack then incr attacks_landed
        else incr legit_ok
      | Net.Lost _ -> ())
    (Net.outcomes net);
  let safe a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  {
    attack_rate = safe !attacks_landed !attacks_sent;
    collateral = 1.0 -. safe !legit_ok !legit_sent;
  }

let run () =
  let fractions = [ 0.1; 0.2; 0.4 ] in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right ]
      [ "attacker share"; "regime"; "attacks landing"; "legit collateral" ]
  in
  let cells = ref [] in
  List.iter
    (fun frac ->
      List.iter
        (fun regime ->
          let o = run_cell ~seed:1005 ~attacker_fraction:frac regime in
          cells := ((frac, regime), o) :: !cells;
          Table.add_row t
            [
              Table.fmt_pct frac;
              regime_name regime;
              Table.fmt_pct o.attack_rate;
              Table.fmt_pct o.collateral;
            ])
        [ Open; Port_filter; Trust_mediated ])
    fractions;
  let get frac regime = List.assoc (frac, regime) !cells in
  let ok =
    List.for_all
      (fun frac ->
        let op = get frac Open
        and pf = get frac Port_filter
        and tm = get frac Trust_mediated in
        (* open: everything lands, nothing collateral *)
        op.attack_rate > 0.99 && op.collateral < 0.01
        (* port filter: blocks some attacks but tunneled ones land, and
           the new application is collateral damage *)
        && pf.attack_rate < op.attack_rate
        && pf.attack_rate > 0.2
        && pf.collateral > 0.1
        (* trust-mediated: blocks attacks with no legit collateral *)
        && tm.attack_rate < 0.01
        && tm.collateral < 0.01)
      fractions
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E5";
    title = "Trust-mediated transparency vs port filtering";
    paper_claim =
      "\"Firewalls that provide trust-mediated transparency must be \
       designed so that they apply constraints based on who is \
       communicating, as well as (or instead of) what protocols are \
       being run\" — identity-based admission blocks attacks without the \
       collateral damage that port blocking inflicts on new \
       applications, and tunneling does not defeat it.";
    run;
    sweep = None;
  }
