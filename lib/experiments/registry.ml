let all =
  [
    E01_lockin.experiment;
    E02_value_pricing.experiment;
    E03_broadband.experiment;
    E04_source_routing.experiment;
    E05_trust_firewall.experiment;
    E06_qos_deployment.experiment;
    E07_name_isolation.experiment;
    E08_visibility.experiment;
    E09_encryption.experiment;
    E10_ontology.experiment;
    E11_game_battery.experiment;
    E12_actor_network.experiment;
    E13_intermediary.experiment;
    E14_congestion.experiment;
    E15_multicast.experiment;
    E16_value_flow.experiment;
    E17_traceback.experiment;
    E18_steganography.experiment;
    E19_scorecard.experiment;
    E20_caching.experiment;
    E21_diagnosis.experiment;
    E22_firewall_control.experiment;
    E23_guidelines.experiment;
    E24_vertical.experiment;
    E25_nat.experiment;
    E26_dns_perversion.experiment;
    E27_transport.experiment;
    E28_faults.experiment;
    E29_selfheal.experiment;
    E30_verified_heal.experiment;
  ]

(* Deliberately-hung toy experiment (outside [all]): spins forever at a
   GC-safe point so tests and CI can check that the watchdog turns a
   runaway run into FAILED (timeout) without killing the battery.  Only
   ever run it with [?timeout_s] armed. *)
let hang_probe =
  {
    Experiment.id = "E99";
    title = "watchdog hang probe (never terminates on its own)";
    paper_claim =
      "none — a test fixture, not a paper claim: a deliberately-hung \
       experiment that the per-experiment watchdog must convert into a \
       FAILED (timeout) outcome while the rest of the battery carries on.";
    run =
      (fun () ->
        while true do
          Domain.cpu_relax ()
        done;
        ("unreachable", false));
    sweep = None;
  }

let sweepables () =
  List.filter (fun e -> e.Experiment.sweep <> None) all

let find id =
  let wanted = String.lowercase_ascii id in
  List.find_opt
    (fun e -> String.lowercase_ascii e.Experiment.id = wanted)
    (all @ [ hang_probe ])

(* Each experiment renders into its own buffer inside a worker domain
   (experiments share no mutable state); the caller prints the buffers
   in registry order, so the battery's output is byte-identical however
   many domains run it. *)
let run_list ?domains ?timeout_s experiments =
  Tussle_prelude.Pool.map ?domains
    (fun e -> Experiment.run ?timeout_s e)
    experiments

let run_battery ?domains ?timeout_s () =
  let wall0 = Tussle_obs.Clock.now_s () in
  let outcomes =
    Tussle_obs.Trace.with_span ~cat:"battery" "battery" (fun () ->
        run_list ?domains ?timeout_s all)
  in
  List.iter
    (fun o ->
      print_string o.Experiment.output;
      print_newline ())
    outcomes;
  let ok = List.for_all Experiment.held outcomes in
  Printf.printf "=== %d experiments, shape checks %s ===\n" (List.length all)
    (if ok then "ALL HOLD" else "SOME FAILED");
  (ok, outcomes, Tussle_obs.Clock.now_s () -. wall0)

let run_all ?domains ?timeout_s () =
  let ok, _, _ = run_battery ?domains ?timeout_s () in
  ok

let run_one ?timeout_s id =
  match find id with
  | None -> Error (Printf.sprintf "unknown experiment %S" id)
  | Some e ->
    let o = Experiment.run ?timeout_s e in
    print_string o.Experiment.output;
    Ok o

(* ---------- battery report ---------- *)

let report ?(label = "battery") ~domains ~wall_s outcomes =
  let exp_of_outcome (o : Experiment.outcome) =
    let status, detail =
      match o.Experiment.status with
      | Experiment.Held -> ("held", "")
      | Experiment.Violated -> ("violated", "")
      | Experiment.Failed msg -> ("failed", msg)
    in
    {
      Tussle_obs.Report.id = o.Experiment.exp_id;
      title = o.Experiment.exp_title;
      status;
      detail;
      wall_s = o.Experiment.wall_s;
      events_executed = o.Experiment.events_executed;
      allocated_bytes = o.Experiment.allocated_bytes;
    }
  in
  let pool =
    Option.map
      (fun (s : Tussle_prelude.Pool.stats) ->
        {
          Tussle_obs.Report.workers = s.Tussle_prelude.Pool.workers;
          tasks = s.Tussle_prelude.Pool.tasks;
          busy_s = s.Tussle_prelude.Pool.busy_s;
          pool_wall_s = s.Tussle_prelude.Pool.wall_s;
        })
      (Tussle_prelude.Pool.last_stats ())
  in
  let metrics = Tussle_obs.Metrics.snapshot () in
  Tussle_obs.Report.make ~label ?pool ~metrics ~domains ~wall_s
    (List.map exp_of_outcome outcomes)
