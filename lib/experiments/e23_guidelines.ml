(* E23 — Application design guidelines (§VI-A): the advice, executable. *)

module Table = Tussle_prelude.Table
module Guidelines = Tussle_core.Guidelines

(* a middling design: encrypted and open, but the operator controls the
   in-network features and the mediators are hard-wired *)
let platform_chat =
  {
    Guidelines.app_name = "platform-chat";
    server_choices = 3;
    third_party_mediators_selectable = false;
    supports_e2e_encryption = true;
    user_controls_in_network_features = false;
    interfaces_open = true;
    value_flow_designed = true;
    identity_framework = false;
    contested_functions_separated = true;
    failure_reporting = true;
    anonymous_mode_honest = true;
  }

let run () =
  let designs =
    [
      Guidelines.open_design_reference;
      platform_chat;
      Guidelines.walled_garden_reference;
    ]
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Left ]
      [ "application design"; "guidelines passed"; "violations" ]
  in
  let scored =
    List.map
      (fun d ->
        let violations = Guidelines.lint d in
        let ids =
          String.concat " "
            (List.map
               (fun v -> v.Guidelines.guideline.Guidelines.g_id)
               violations)
        in
        Table.add_row t
          [
            d.Guidelines.app_name;
            Printf.sprintf "%.0f/10" (10.0 *. Guidelines.score d);
            (if ids = "" then "-" else ids);
          ];
        (d.Guidelines.app_name, Guidelines.score d, violations))
      designs
  in
  let sample_advice =
    match Guidelines.lint Guidelines.walled_garden_reference with
    | v :: _ -> Format.asprintf "e.g. %a" Guidelines.pp_violation v
    | [] -> "(no violations)"
  in
  let footer = "\n" ^ sample_advice ^ "\n" in
  let score_of name =
    let _, s, _ = List.find (fun (n, _, _) -> n = name) scored in
    s
  in
  let violations_of name =
    let _, _, v = List.find (fun (n, _, _) -> n = name) scored in
    v
  in
  let ok =
    score_of "federated-mail" = 1.0
    && List.length (violations_of "walled-garden-messenger") = 9
    && score_of "platform-chat" > score_of "walled-garden-messenger"
    && score_of "platform-chat" < 1.0
    (* the linter names the G2 mediator-choice failure for platform-chat *)
    && List.exists
         (fun v -> v.Guidelines.guideline.Guidelines.g_id = "G2")
         (violations_of "platform-chat")
  in
  (Table.render t ^ footer, ok)

let experiment =
  {
    Experiment.id = "E23";
    title = "Application design guidelines: the paper's advice as a linter";
    paper_claim =
      "\"If application designers want to preserve choice and end user \
       empowerment, they should be given advice about how to design \
       applications to achieve this goal ... we should generate \
       'application design guidelines' that would help designers avoid \
       pitfalls, and deal with the tussles of success\" — ten guidelines \
       distilled from the text, checked mechanically against declarative \
       application designs, each violation carrying its recommendation.";
    run;
    sweep = None;
  }
