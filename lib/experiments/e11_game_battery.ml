(* E11 — The game-theoretic taxonomy of tussle (§II-B, §V-D): purely
   conflicting games, coordination games, and the repeated play that
   turns adversaries into partners. *)

module Table = Tussle_prelude.Table
module Normal_form = Tussle_gametheory.Normal_form
module Zerosum = Tussle_gametheory.Zerosum
module Nash = Tussle_gametheory.Nash
module Repeated = Tussle_gametheory.Repeated
module Auction = Tussle_gametheory.Auction

let battery () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "tussle game"; "character"; "pure equilibria"; "all equilibria" ]
  in
  let row name character g =
    let pure = List.length (Normal_form.pure_nash g) in
    let all = List.length (Nash.support_enumeration g) in
    Table.add_row t [ name; character; string_of_int pure; string_of_int all ];
    (pure, all)
  in
  let mp = row "matching pennies" "purely conflicting (zero-sum)" Normal_form.matching_pennies in
  let co = row "pure coordination" "common goal, coordination risk" Normal_form.pure_coordination in
  let bs = row "battle of sexes" "different but not adverse" Normal_form.battle_of_sexes in
  let pd = row "prisoner's dilemma" "individually rational ruin" Normal_form.prisoners_dilemma in
  let pg = row "ISP peering" "PD in business clothes" Normal_form.peering_game in
  (t, mp, co, bs, pd, pg)

let run () =
  let t, (mp_pure, mp_all), (co_pure, _), (bs_pure, bs_all), (pd_pure, pd_all),
      (pg_pure, _) =
    battery ()
  in
  (* zero-sum: fictitious play converges to the game value *)
  let zs =
    Zerosum.solve ~iterations:20_000 (Normal_form.row_matrix Normal_form.matching_pennies)
  in
  let t2 =
    Table.create ~aligns:[ Table.Left; Table.Right ]
      [ "zero-sum solver (matching pennies)"; "value" ]
  in
  Table.add_row t2 [ "minimax value (theory)"; "0" ];
  Table.add_row t2
    [ "fictitious play estimate"; Printf.sprintf "%.4f" (Zerosum.value_estimate zs) ];
  Table.add_row t2 [ "bracket width"; Printf.sprintf "%.4f" (Zerosum.gap zs) ];
  (* repeated peering *)
  let one_shot = Normal_form.pure_nash Normal_form.peering_game in
  let repeated =
    Repeated.play ~rounds:200 Normal_form.peering_game Repeated.tit_for_tat
      Repeated.tit_for_tat
  in
  let t3 =
    Table.create ~aligns:[ Table.Left; Table.Right ]
      [ "peering game"; "cooperation rate" ]
  in
  Table.add_row t3 [ "one-shot equilibrium"; "0.00 (refuse, refuse)" ];
  Table.add_row t3
    [ "repeated, tit-for-tat";
      Printf.sprintf "%.2f" (Repeated.cooperation_rate repeated) ];
  (* the tussle-free mechanism: Vickrey truthfulness *)
  let truthful =
    Auction.truthful_is_dominant ~auction:Auction.second_price ~valuation:7.0
      ~bidder:0
      ~others:[ { Auction.bidder = 1; amount = 5.0 }; { Auction.bidder = 2; amount = 9.0 } ]
      ~deviations:[ 0.0; 3.0; 5.0; 6.0; 8.0; 9.5; 20.0 ]
  in
  let t4 =
    Table.create ~aligns:[ Table.Left; Table.Left ]
      [ "mechanism design (Vickrey)"; "result" ]
  in
  Table.add_row t4
    [ "truthful bidding dominant?"; (if truthful then "yes" else "no") ];
  let ok =
    mp_pure = 0 && mp_all = 1 (* only the mixed one *)
    && co_pure = 2
    && bs_pure = 2 && bs_all = 3
    && pd_pure = 1 && pd_all = 1
    && pg_pure = 1
    && Float.abs (Zerosum.value_estimate zs) < 0.01
    && one_shot = [ (1, 1) ]
    && Repeated.cooperation_rate repeated > 0.99
    && truthful
  in
  ( Table.render t ^ "\n" ^ Table.render t2 ^ "\n" ^ Table.render t3 ^ "\n"
    ^ Table.render t4,
    ok )

let experiment =
  {
    Experiment.id = "E11";
    title = "The game-theory substrate: from zero-sum to tussle-free mechanisms";
    paper_claim =
      "\"A game ... can range from purely conflicting games (so called \
       zero-sum games) ... to coordination games ... Vickrey showed \
       how to construct rules of a game that guaranteed tussle-free \
       actor networks ... revolving around revealing truthful \
       information\" — and §V-D: repeated interaction is what disciplines \
       parties whose interests are different but not adverse.";
    run;
    sweep = None;
  }
