(* E27 — The congestion tussle again, this time with real packets,
   queues and retransmission timers (§II-B; companion to E14's fluid
   model). *)

module Rng = Tussle_prelude.Rng
module Graph = Tussle_prelude.Graph
module Table = Tussle_prelude.Table
module Engine = Tussle_netsim.Engine
module Link = Tussle_netsim.Link
module Net = Tussle_netsim.Net
module Traffic = Tussle_netsim.Traffic
module Transport = Tussle_netsim.Transport

(* two senders (0, 1) share the 2 Mb/s bottleneck 2 -> 3 *)
let shared_bottleneck_net () =
  let g = Graph.create 4 in
  let fast () =
    Link.make ~queue_capacity:64 ~latency:0.001 ~bandwidth_bps:1e8 ()
  in
  Graph.add_undirected g 0 2 (fast ());
  Graph.add_undirected g 1 2 (fast ());
  Graph.add_undirected g 2 3
    (Link.make ~queue_capacity:8 ~latency:0.005 ~bandwidth_bps:2e6 ());
  let forwarding ~node ~target _ =
    if node = target then None
    else if node = 2 then Some target
    else if target = 3 || target = 2 then Some 2
    else Some target
  in
  Net.create g forwarding

let horizon = 30.0

let run_pair b_behaviour =
  let net = shared_bottleneck_net () in
  let engine = Engine.create () in
  let gen = Traffic.create (Rng.create 1027) in
  let a = Transport.start engine net gen ~src:0 ~dst:3 ~total_packets:100_000 in
  let b =
    Transport.start ~behaviour:b_behaviour engine net gen ~src:1 ~dst:3
      ~total_packets:100_000
  in
  Engine.run ~until:horizon engine;
  ( Transport.goodput a ~now:horizon,
    Transport.goodput b ~now:horizon,
    Transport.losses a,
    Transport.losses b )

let run () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "flow B's behaviour"; "A goodput (pkt/s)"; "B goodput (pkt/s)";
        "A losses"; "B losses" ]
  in
  let ga_fair, gb_fair, la_fair, lb_fair = run_pair Transport.Compliant in
  Table.add_row t
    [ "compliant (plays by the rules)";
      Printf.sprintf "%.1f" ga_fair; Printf.sprintf "%.1f" gb_fair;
      string_of_int la_fair; string_of_int lb_fair ];
  let ga_war, gb_war, la_war, lb_war = run_pair Transport.Aggressive in
  Table.add_row t
    [ "aggressive (ignores congestion)";
      Printf.sprintf "%.1f" ga_war; Printf.sprintf "%.1f" gb_war;
      string_of_int la_war; string_of_int lb_war ];
  let fair_ratio = Float.max ga_fair gb_fair /. Float.min ga_fair gb_fair in
  let ok =
    (* two compliant flows share within a small factor *)
    ga_fair > 0.0 && gb_fair > 0.0 && fair_ratio < 3.0
    (* the aggressive endpoint takes the link and starves the honest
       one — at real queues and timers, same verdict as the fluid model *)
    && gb_war > 2.0 *. ga_war
    && ga_war < 0.5 *. ga_fair
    && lb_war > lb_fair
  in
  (Table.render t, ok)

let experiment =
  {
    Experiment.id = "E27";
    title = "The congestion tussle at packet level (closed-loop transport)";
    paper_claim =
      "\"TCP congestion control 'works' when and only when the majority \
       of end-systems both participate and follow a common set of \
       rules\" (§II-B) — replayed with real packets, drop-tail queues, \
       ACK clocking and retransmission timers instead of E14's fluid \
       model: two rule-followers share the bottleneck; one endpoint \
       that ignores congestion takes the link.";
    run;
    sweep = None;
  }
