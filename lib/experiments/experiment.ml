module Metrics = Tussle_obs.Metrics
module Trace = Tussle_obs.Trace
module Clock = Tussle_obs.Clock

type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> string * bool;
}

type status = Held | Violated | Failed of string

type outcome = {
  exp_id : string;
  exp_title : string;
  output : string;
  status : status;
  wall_s : float;
  events_executed : int;
  allocated_bytes : float;
}

let header t =
  Printf.sprintf "## %s — %s\n\nPaper claim: %s\n\n" t.id t.title t.paper_claim

let footer ok =
  Printf.sprintf "\nshape check: %s\n"
    (if ok then "HOLDS (matches the paper's qualitative claim)"
     else "DOES NOT HOLD")

let render t =
  let body, ok = t.run () in
  (header t ^ body ^ footer ok, ok)

let held o = o.status = Held

(* Same handle Engine accumulates into (interned by name): the
   local-count delta around a synchronous run attributes engine events
   to this experiment even while other domains run concurrently. *)
let m_engine_events = Metrics.counter "engine.events_executed"
let m_experiments = Metrics.counter "experiments.run"

let run t =
  Trace.with_span ~cat:"experiment" ~args:[ ("id", t.id) ] "experiment"
  @@ fun () ->
  Metrics.incr m_experiments;
  let events0 = Metrics.local_count m_engine_events in
  let alloc0 = Gc.allocated_bytes () in
  let wall0 = Clock.now_s () in
  let finish status output =
    {
      exp_id = t.id;
      exp_title = t.title;
      output;
      status;
      wall_s = Clock.now_s () -. wall0;
      events_executed = Metrics.local_count m_engine_events - events0;
      allocated_bytes = Gc.allocated_bytes () -. alloc0;
    }
  in
  match t.run () with
  | body, ok ->
    finish (if ok then Held else Violated) (header t ^ body ^ footer ok)
  | exception e ->
    let msg = Printexc.to_string e in
    let bt = Printexc.get_backtrace () in
    let body =
      Printf.sprintf "FAILED (uncaught: %s)\n%s" msg
        (if bt = "" then "(no backtrace: Printexc.record_backtrace off)\n"
         else bt)
    in
    finish (Failed msg) (header t ^ body)
