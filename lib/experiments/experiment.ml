module Metrics = Tussle_obs.Metrics
module Trace = Tussle_obs.Trace
module Clock = Tussle_obs.Clock

type verdict = {
  claim : string;
  test : string;
  result : Tussle_prelude.Stats.Test.result;
}

type sweep = {
  probe : seed:int -> (string * float) list;
  judge : (string -> float array) -> verdict list;
}

type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> string * bool;
  sweep : sweep option;
}

type status = Held | Violated | Failed of string

type outcome = {
  exp_id : string;
  exp_title : string;
  output : string;
  status : status;
  wall_s : float;
  events_executed : int;
  allocated_bytes : float;
}

let header t =
  Printf.sprintf "## %s — %s\n\nPaper claim: %s\n\n" t.id t.title t.paper_claim

let footer ok =
  Printf.sprintf "\nshape check: %s\n"
    (if ok then "HOLDS (matches the paper's qualitative claim)"
     else "DOES NOT HOLD")

let render t =
  let body, ok = t.run () in
  (header t ^ body ^ footer ok, ok)

let held o = o.status = Held

(* Same handle Engine accumulates into (interned by name): the
   local-count delta around a synchronous run attributes engine events
   to this experiment even while other domains run concurrently. *)
let m_engine_events = Metrics.counter "engine.events_executed"
let m_experiments = Metrics.counter "experiments.run"

let run_sync t =
  Trace.with_span ~cat:"experiment" ~args:[ ("id", t.id) ] "experiment"
  @@ fun () ->
  Metrics.incr m_experiments;
  let events0 = Metrics.local_count m_engine_events in
  let alloc0 = Gc.allocated_bytes () in
  let wall0 = Clock.now_s () in
  let finish status output =
    {
      exp_id = t.id;
      exp_title = t.title;
      output;
      status;
      wall_s = Clock.now_s () -. wall0;
      events_executed = Metrics.local_count m_engine_events - events0;
      allocated_bytes = Gc.allocated_bytes () -. alloc0;
    }
  in
  match t.run () with
  | body, ok ->
    finish (if ok then Held else Violated) (header t ^ body ^ footer ok)
  | exception e ->
    let msg = Printexc.to_string e in
    let bt = Printexc.get_backtrace () in
    let body =
      Printf.sprintf "FAILED (uncaught: %s)\n%s" msg
        (if bt = "" then "(no backtrace: Printexc.record_backtrace off)\n"
         else bt)
    in
    finish (Failed msg) (header t ^ body)

(* ---------- watchdog ---------- *)

(* Coarse poll: the watchdog guards against experiments hung for
   seconds, so millisecond resolution is plenty and the waiting domain
   stays off the CPU the experiment is using. *)
let poll_interval_s = 0.002

let timeout_outcome t ~elapsed ~limit =
  let msg = Printf.sprintf "timeout: exceeded the %gs watchdog" limit in
  let body =
    Printf.sprintf
      "FAILED (%s)\n\
       The run was abandoned after %.3fs wall clock; its domain may\n\
       still be executing and is reclaimed when the process exits.\n"
      msg elapsed
  in
  {
    exp_id = t.id;
    exp_title = t.title;
    output = header t ^ body;
    status = Failed msg;
    wall_s = elapsed;
    (* the runaway domain owns the events/allocation counters; only the
       wall clock is observable from outside *)
    events_executed = 0;
    allocated_bytes = 0.0;
  }

let run_watched ~timeout_s t =
  if not (timeout_s > 0.0 && Float.is_finite timeout_s) then
    invalid_arg "Experiment.run: timeout_s must be positive and finite";
  let slot = Atomic.make None in
  let wall0 = Clock.now_s () in
  let child = Domain.spawn (fun () -> Atomic.set slot (Some (run_sync t))) in
  let deadline = wall0 +. timeout_s in
  let rec wait () =
    match Atomic.get slot with
    | Some o ->
      Domain.join child;
      o
    | None ->
      if Clock.now_s () >= deadline then begin
        (* last look, so a photo-finish completion is not discarded *)
        match Atomic.get slot with
        | Some o ->
          Domain.join child;
          o
        | None ->
          timeout_outcome t ~elapsed:(Clock.now_s () -. wall0) ~limit:timeout_s
      end
      else begin
        Unix.sleepf poll_interval_s;
        wait ()
      end
  in
  wait ()

let run ?timeout_s t =
  match timeout_s with
  | None -> run_sync t
  | Some limit -> run_watched ~timeout_s:limit t
