type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> string * bool;
}

type status = Held | Violated | Failed of string

type outcome = {
  exp_id : string;
  exp_title : string;
  output : string;
  status : status;
}

let header t =
  Printf.sprintf "## %s — %s\n\nPaper claim: %s\n\n" t.id t.title t.paper_claim

let footer ok =
  Printf.sprintf "\nshape check: %s\n"
    (if ok then "HOLDS (matches the paper's qualitative claim)"
     else "DOES NOT HOLD")

let render t =
  let body, ok = t.run () in
  (header t ^ body ^ footer ok, ok)

let held o = o.status = Held

let run t =
  match t.run () with
  | body, ok ->
    {
      exp_id = t.id;
      exp_title = t.title;
      output = header t ^ body ^ footer ok;
      status = (if ok then Held else Violated);
    }
  | exception e ->
    let msg = Printexc.to_string e in
    let bt = Printexc.get_backtrace () in
    let body =
      Printf.sprintf "FAILED (uncaught: %s)\n%s" msg
        (if bt = "" then "(no backtrace: Printexc.record_backtrace off)\n"
         else bt)
    in
    { exp_id = t.id; exp_title = t.title; output = header t ^ body;
      status = Failed msg }
