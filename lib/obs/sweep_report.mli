(** The [tussle.sweep-report/1] artifact emitted by [tussle sweep]:
    per-metric samples across seeds with mean/stddev/confidence
    interval, plus statistical verdicts (t-test results judged against
    an alpha).

    Unlike the battery report there is deliberately {e no}
    [generated_at] or other wall-clock field: the sweep contract is
    byte-identical output across [--domains] and across repeated runs
    at the same seed, so the artifact derives from (seed, config)
    alone. *)

type metric = {
  name : string;
  samples : float array;  (** one per run, in run order *)
  mean : float;
  stddev : float;  (** sample (n-1) standard deviation *)
  ci_lo : float;
  ci_hi : float;  (** 95% Student-t interval for the mean *)
}

type verdict = {
  claim : string;  (** human-readable hypothesis, e.g. "markup(pb6) > markup(portable)" *)
  test : string;  (** which test produced it, e.g. "paired t, greater" *)
  statistic : float;
  df : float;
  pvalue : float;
  alpha : float;
  pass : bool;  (** [pvalue < alpha] *)
}

type exp = {
  id : string;
  title : string;
  runs : int;
  metrics : metric list;
  verdicts : verdict list;
}

type t = {
  label : string;
  sweep_seed : int;
  runs : int;
  experiments : exp list;
}
(** Note there is no [domains] field either: the artifact must be
    byte-identical however many domains ran the sweep. *)

val schema_tag : string
(** ["tussle.sweep-report/1"] *)

val make : ?label:string -> sweep_seed:int -> runs:int -> exp list -> t

val to_json : t -> Json.t
(** Includes a [summary] object (experiment/verdict/passed counts)
    recomputed from the payload.  Non-finite verdict statistics are
    encoded as the strings ["inf"]/["-inf"]/["nan"] so they survive
    the JSON layer (which renders non-finite floats as [null]). *)

val of_json : Json.t -> (t, string) result
(** Structural parse back into {!t}; fails with a message naming the
    first offending field. *)

val write : string -> t -> unit
(** Atomic write of [to_json] (pretty-printed), via {!Json.to_file}. *)

val validate : Json.t -> (unit, string) result
(** Structural schema check: tag, field presence and types, summary
    counts consistent with the listed verdicts, per-metric [n]
    matching its sample array, per-experiment [runs] matching the
    sweep's, and each verdict's [pass] flag agreeing with
    [pvalue < alpha].  Numeric {e consistency} of samples vs
    mean/CI is the chaos layer's report invariant, not this check. *)

val summary : t -> string
(** Deterministic human-readable rendering (metric table + PASS/FAIL
    verdict lines). *)

val count_verdicts : t -> int * int
(** [(total, passed)] across all experiments. *)
