(* Per-domain event rings merged at export time (same discipline as
   Trace: plain mutable cells behind Domain.DLS, a mutex only around
   ring registration, reset, and export). *)

type event = {
  seq : int;
  sim_t : float;
  flow : int;
  kind : string;
  node : int;
  peer : int;
  detail : string;
  value : float;
}

let enabled_flag = Atomic.make false
let capacity = Atomic.make 65536

(* Transfer flow ids: -2, -3, ...  (-1 is the control-plane flow, and
   non-negative ids belong to packets.)  Only drawn while enabled, so
   the disabled hot path never touches the atomic. *)
let flow_counter = Atomic.make (-2)

let control_flow = -1

let new_flow () = Atomic.fetch_and_add flow_counter (-1)

let enable ?capacity:(cap = 65536) () =
  Atomic.set capacity (max 1 cap);
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

type ring = {
  buf : event option array;
  mutable next : int; (* slot for the next write *)
  mutable written : int; (* total pushed since last reset *)
}

let registry_mutex = Mutex.create ()
let rings : ring list ref = ref []

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let new_ring () =
  let r =
    { buf = Array.make (Atomic.get capacity) None; next = 0; written = 0 }
  in
  locked (fun () -> rings := r :: !rings);
  r

let ring_key = Domain.DLS.new_key new_ring

let emit ~sim_t ~flow ~node ~peer ~detail ~value kind =
  if enabled () then begin
    let r = Domain.DLS.get ring_key in
    r.buf.(r.next) <-
      Some { seq = r.written; sim_t; flow; kind; node; peer; detail; value };
    r.next <- (r.next + 1) mod Array.length r.buf;
    r.written <- r.written + 1
  end

let reset () =
  Atomic.set flow_counter (-2);
  locked (fun () ->
      List.iter
        (fun r ->
          Array.fill r.buf 0 (Array.length r.buf) None;
          r.next <- 0;
          r.written <- 0)
        !rings)

let events () =
  let collected =
    locked (fun () ->
        List.concat_map
          (fun r -> Array.to_list r.buf |> List.filter_map Fun.id)
          !rings)
  in
  List.sort
    (fun a b ->
      match compare a.sim_t b.sim_t with
      | 0 -> compare a.seq b.seq
      | c -> c)
    collected

let dropped () =
  locked (fun () ->
      List.fold_left
        (fun acc r -> acc + max 0 (r.written - Array.length r.buf))
        0 !rings)
