(* Sweep report: the `tussle.sweep-report/1` artifact emitted by
   `tussle sweep`.  Same discipline as the battery report (schema tag,
   atomic write, validator in the [let*]/[require] style) with one
   deliberate difference: no [generated_at] or any other wall-clock
   field — the sweep's contract is byte-identical output across
   --domains and across repeated runs at the same seed, so everything
   in the artifact must derive from (seed, config) alone. *)

type metric = {
  name : string;
  samples : float array;  (* one per run, in run order *)
  mean : float;
  stddev : float;  (* sample (n-1) stddev *)
  ci_lo : float;
  ci_hi : float;  (* 95% Student-t interval for the mean *)
}

type verdict = {
  claim : string;
  test : string;  (* e.g. "paired t, greater" *)
  statistic : float;
  df : float;
  pvalue : float;
  alpha : float;
  pass : bool;
}

type exp = {
  id : string;
  title : string;
  runs : int;
  metrics : metric list;
  verdicts : verdict list;
}

(* No [domains] (and no [generated_at]): the artifact must be
   byte-identical however many domains ran the sweep. *)
type t = {
  label : string;
  sweep_seed : int;
  runs : int;
  experiments : exp list;
}

let schema_tag = "tussle.sweep-report/1"

let make ?(label = "sweep") ~sweep_seed ~runs experiments =
  { label; sweep_seed; runs; experiments }

let count_verdicts t =
  List.fold_left
    (fun (total, passed) e ->
      List.fold_left
        (fun (total, passed) v -> (total + 1, if v.pass then passed + 1 else passed))
        (total, passed) e.verdicts)
    (0, 0) t.experiments

(* Degenerate sweeps can produce an infinite t statistic (zero spread,
   nonzero difference).  The JSON layer renders non-finite floats as
   null, which would destroy the value — encode them as tagged
   strings instead so the artifact round-trips. *)
let stat_to_json f =
  if Float.is_finite f then Json.Float f
  else if Float.is_nan f then Json.Str "nan"
  else Json.Str (if f > 0.0 then "inf" else "-inf")

let stat_of_json = function
  | Json.Str "inf" -> Some infinity
  | Json.Str "-inf" -> Some neg_infinity
  | Json.Str "nan" -> Some Float.nan
  | j -> Json.to_float j

let metric_to_json m =
  Json.Obj
    [
      ("name", Json.Str m.name);
      ("n", Json.Int (Array.length m.samples));
      ("mean", Json.Float m.mean);
      ("stddev", Json.Float m.stddev);
      ("ci_lo", Json.Float m.ci_lo);
      ("ci_hi", Json.Float m.ci_hi);
      ( "samples",
        Json.List (Array.to_list (Array.map (fun x -> Json.Float x) m.samples)) );
    ]

let verdict_to_json v =
  Json.Obj
    [
      ("claim", Json.Str v.claim);
      ("test", Json.Str v.test);
      ("statistic", stat_to_json v.statistic);
      ("df", Json.Float v.df);
      ("pvalue", Json.Float v.pvalue);
      ("alpha", Json.Float v.alpha);
      ("pass", Json.Bool v.pass);
    ]

let exp_to_json e =
  Json.Obj
    [
      ("id", Json.Str e.id);
      ("title", Json.Str e.title);
      ("runs", Json.Int e.runs);
      ("metrics", Json.List (List.map metric_to_json e.metrics));
      ("verdicts", Json.List (List.map verdict_to_json e.verdicts));
    ]

let to_json t =
  let total, passed = count_verdicts t in
  Json.Obj
    [
      ("schema", Json.Str schema_tag);
      ("label", Json.Str t.label);
      ("sweep_seed", Json.Int t.sweep_seed);
      ("runs", Json.Int t.runs);
      ( "summary",
        Json.Obj
          [
            ("experiments", Json.Int (List.length t.experiments));
            ("verdicts", Json.Int total);
            ("passed", Json.Int passed);
          ] );
      ("experiments", Json.List (List.map exp_to_json t.experiments));
    ]

let write path t = Json.to_file path (to_json t)

(* ---------- parsing ---------- *)

let ( let* ) r f = Result.bind r f

let require name extract node =
  match Json.member name node with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match extract v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let map_result f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let metric_of_json j =
  let* name = require "name" Json.to_str j in
  let* n = require "n" Json.to_int j in
  let* mean = require "mean" Json.to_float j in
  let* stddev = require "stddev" Json.to_float j in
  let* ci_lo = require "ci_lo" Json.to_float j in
  let* ci_hi = require "ci_hi" Json.to_float j in
  let* samples = require "samples" Json.to_list j in
  let* samples =
    map_result
      (fun s ->
        match Json.to_float s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "metric %S: non-number sample" name))
      samples
  in
  let samples = Array.of_list samples in
  if Array.length samples <> n then
    Error (Printf.sprintf "metric %S: n=%d but %d samples" name n (Array.length samples))
  else Ok { name; samples; mean; stddev; ci_lo; ci_hi }

let verdict_of_json j =
  let* claim = require "claim" Json.to_str j in
  let* test = require "test" Json.to_str j in
  let* statistic = require "statistic" stat_of_json j in
  let* df = require "df" Json.to_float j in
  let* pvalue = require "pvalue" Json.to_float j in
  let* alpha = require "alpha" Json.to_float j in
  let* pass =
    require "pass" (function Json.Bool b -> Some b | _ -> None) j
  in
  Ok { claim; test; statistic; df; pvalue; alpha; pass }

let exp_of_json j =
  let* id = require "id" Json.to_str j in
  let* title = require "title" Json.to_str j in
  let* runs = require "runs" Json.to_int j in
  let* metrics = require "metrics" Json.to_list j in
  let* metrics = map_result metric_of_json metrics in
  let* verdicts = require "verdicts" Json.to_list j in
  let* verdicts = map_result verdict_of_json verdicts in
  Ok { id; title; runs; metrics; verdicts }

let of_json json =
  let* schema = require "schema" Json.to_str json in
  let* () =
    if schema = schema_tag then Ok ()
    else Error (Printf.sprintf "unknown schema %S (expected %S)" schema schema_tag)
  in
  let* label = require "label" Json.to_str json in
  let* sweep_seed = require "sweep_seed" Json.to_int json in
  let* runs = require "runs" Json.to_int json in
  let* exps = require "experiments" Json.to_list json in
  let* experiments = map_result exp_of_json exps in
  Ok { label; sweep_seed; runs; experiments }

(* ---------- validation ---------- *)

let validate json =
  let* t = of_json json in
  let* () = if t.runs >= 2 then Ok () else Error "runs must be >= 2" in
  let* summary = require "summary" Option.some json in
  let* s_exps = require "experiments" Json.to_int summary in
  let* s_verdicts = require "verdicts" Json.to_int summary in
  let* s_passed = require "passed" Json.to_int summary in
  let* () =
    if List.length t.experiments = s_exps then Ok ()
    else
      Error
        (Printf.sprintf "summary.experiments=%d but %d listed" s_exps
           (List.length t.experiments))
  in
  let total, passed = count_verdicts t in
  let* () =
    if total = s_verdicts && passed = s_passed then Ok ()
    else Error "summary verdict counts do not match experiment verdicts"
  in
  map_result
    (fun (e : exp) ->
      let* () =
        if e.runs = t.runs then Ok ()
        else
          Error
            (Printf.sprintf "experiment %s: runs=%d but sweep runs=%d" e.id
               e.runs t.runs)
      in
      map_result
        (fun (v : verdict) ->
          if v.pass = (v.pvalue < v.alpha) then Ok ()
          else
            Error
              (Printf.sprintf
                 "experiment %s: verdict %S pass flag disagrees with p=%g \
                  alpha=%g"
                 e.id v.claim v.pvalue v.alpha))
        e.verdicts)
    t.experiments
  |> Result.map (fun _ -> ())

(* ---------- rendering ---------- *)

let summary t =
  let buf = Buffer.create 1024 in
  let total, passed = count_verdicts t in
  Buffer.add_string buf
    (Printf.sprintf "## Sweep report: %s (seed %d, %d runs)\n\n" t.label
       t.sweep_seed t.runs);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s  [%d runs]\n" e.id e.title e.runs);
      List.iter
        (fun m ->
          Buffer.add_string buf
            (Printf.sprintf "  metric %-28s mean %12.6f  sd %10.6f  95%% CI [%12.6f, %12.6f]\n"
               m.name m.mean m.stddev m.ci_lo m.ci_hi))
        e.metrics;
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "  %s %s (%s): t=%s df=%.1f p=%s (alpha %g)\n"
               (if v.pass then "PASS" else "FAIL")
               v.claim v.test
               (if Float.is_finite v.statistic then
                  Printf.sprintf "%.4f" v.statistic
                else Printf.sprintf "%f" v.statistic)
               v.df
               (if v.pvalue < 1e-12 then Printf.sprintf "%.3e" v.pvalue
                else Printf.sprintf "%.6f" v.pvalue)
               v.alpha))
        e.verdicts)
    t.experiments;
  Buffer.add_string buf
    (Printf.sprintf "\n%d verdict%s: %d passed, %d failed\n" total
       (if total = 1 then "" else "s")
       passed (total - passed));
  Buffer.contents buf
