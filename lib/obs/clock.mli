(** Monotonic time source for telemetry.

    Timestamps come from [CLOCK_MONOTONIC] (via bechamel's noalloc
    stub), so spans and wall-clock measurements are immune to NTP
    steps.  The epoch is arbitrary (boot time); only differences and
    orderings are meaningful. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. *)

val now_s : unit -> float
(** {!now_ns} in seconds ([float]); keeps sub-microsecond precision
    for intervals up to days, which is all telemetry needs. *)

val ns_to_us : int64 -> float
(** Nanoseconds to microseconds (the unit Chrome trace events use). *)
