let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9
let ns_to_us ns = Int64.to_float ns *. 1e-3
