(** Structured per-battery report: machine-readable JSON plus a human
    summary table.

    Schema (["tussle.battery-report/1"]):
    {v
    { "schema": "tussle.battery-report/1",
      "label": "battery",
      "generated_at": <unix epoch seconds>,
      "domains": <requested domain count>,
      "wall_s": <whole-battery wall clock>,
      "summary": {"total": N, "held": H, "violated": V, "failed": F},
      "experiments": [
        {"id": "E1", "title": "...", "status": "held"|"violated"|"failed",
         "detail": "<failure message or empty>",
         "wall_s": <float>, "events_executed": <int>,
         "allocated_bytes": <float>}, ... ],
      "pool": {                      // absent when stats were not recorded
        "workers": W, "tasks": [int], "busy_s": [float],
        "wall_s": <float>, "imbalance": <float>},
      "metrics": {
        "<name>": {"type": "counter", "value": <int>}
                | {"type": "gauge", "last": f, "max": f, "sets": n}
                | {"type": "histogram", "count": n, "sum": f,
                   "buckets": [[index, count], ...]}, ... } }
    v}

    [pool.imbalance] is [(max busy - min busy) / max busy] over
    workers — 0 is a perfectly balanced battery, values near 1 mean
    one worker carried the run (queue-wait imbalance). *)

type exp = {
  id : string;
  title : string;
  status : string;  (** ["held"], ["violated"] or ["failed"] *)
  detail : string;  (** failure message, [""] otherwise *)
  wall_s : float;
  events_executed : int;
      (** engine events attributed to this experiment (0 when metrics
          were disabled during the run) *)
  allocated_bytes : float;
      (** GC allocation delta of the running domain — approximate
          under parallelism *)
}

type pool = {
  workers : int;
  tasks : int array;  (** items executed per worker *)
  busy_s : float array;  (** time spent inside items per worker *)
  pool_wall_s : float;  (** wall clock of the whole [Pool.map] *)
}

type t = {
  label : string;
  generated_at : float;  (** unix epoch seconds *)
  domains : int;
  wall_s : float;
  experiments : exp list;
  pool : pool option;
  metrics : (string * Metrics.value) list;
}

val make :
  ?label:string ->
  ?pool:pool ->
  ?metrics:(string * Metrics.value) list ->
  domains:int ->
  wall_s:float ->
  exp list ->
  t
(** [label] defaults to ["battery"]; [generated_at] is stamped from
    the system clock. *)

val imbalance : pool -> float

val to_json : t -> Json.t

val write : string -> t -> unit

val summary : t -> string
(** Human-readable: one table row per experiment (status, wall,
    events, allocation), totals line, pool balance line. *)

val validate : Json.t -> (unit, string) result
(** Check a parsed JSON value against the schema above: schema tag,
    required fields with the right types, and summary counts
    consistent with the experiment list.  Used by [tussle report FILE]
    and the CI smoke script. *)
