(** The [tussle.search-report/1] artifact emitted by [tussle search]:
    what the adversarial search over fault-plan space evaluated, the
    coverage frontier it grew, and every invariant violation it found
    (already shrunk to a 1-minimal reproducer).

    Like the sweep report there is deliberately {e no} wall-clock or
    domain-count field: the search contract is byte-identical output
    across [--domains] and across repeated runs at the same seed, so
    the artifact derives from (seed, config) alone. *)

type finding = {
  scenario : string;  (** chaos {!Tussle_chaos.Scenario.t} name *)
  seed : int;  (** injection seed the violation reproduces with *)
  found_episodes : int;  (** plan size as found, before shrinking *)
  minimal_plan : string;  (** 1-minimal reproducer in [Plan.to_string] form *)
  invariants : string list;  (** names of the violated invariants *)
  corpus_file : string;  (** persisted path; [""] when not persisted *)
}

type t = {
  label : string;
  backend : string;  (** ["mutate"] or ["exhaust"] today *)
  search_seed : int;
  budget : int;
  runs : int;  (** plans actually evaluated *)
  seeded : int;  (** corpus + fresh-draw candidates that primed the search *)
  space : int;  (** bounded-exhaustive box size; [0] for open-ended backends *)
  certified : bool;  (** whole box enumerated and came back clean *)
  frontier : int list;
      (** cumulative distinct behavior signatures after each batch;
          non-decreasing by construction *)
  corpus_added : int;  (** findings persisted as {e new} corpus files *)
  corpus_dir : string;  (** [""] when persistence was disabled *)
  findings : finding list;
}

val schema_tag : string
(** ["tussle.search-report/1"] *)

val make :
  ?label:string ->
  ?corpus_dir:string ->
  backend:string ->
  search_seed:int ->
  budget:int ->
  runs:int ->
  seeded:int ->
  space:int ->
  certified:bool ->
  frontier:int list ->
  corpus_added:int ->
  finding list ->
  t

val frontier_size : t -> int
(** Final coverage frontier: the last [frontier] entry, or [0]. *)

val to_json : t -> Json.t
(** Includes a [summary] object (runs / frontier / violations /
    corpus_added) recomputed from the payload. *)

val of_json : Json.t -> (t, string) result
(** Structural parse back into {!t}; fails with a message naming the
    first offending field. *)

val write : string -> t -> unit
(** Atomic write of [to_json] (pretty-printed), via {!Json.to_file}. *)

val validate : Json.t -> (unit, string) result
(** Structural schema check: tag, field presence and types, summary
    counts consistent with the payload, a certified report carrying no
    findings, and every finding naming a scenario, a non-empty minimal
    plan, and at least one violated invariant.  Backend semantics
    (budget accounting, frontier monotonicity, corpus hashes) are the
    chaos layer's search-report invariants, not this check. *)

val summary : t -> string
(** Deterministic human-readable rendering (header, coverage line,
    one block per finding with the minimal plan inlined). *)
