type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- serializer ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* Shortest representation that round-trips; %.17g always does,
       but prefer the readable form when it is exact. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) t =
  let buf = Buffer.create 1024 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) x)
        xs;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape buf k;
          Buffer.add_string buf (if minify then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Write-to-temp + rename: a crashed or watchdogged run can leave a
   stale [.tmp] behind but never a truncated artifact at [path]. *)
let to_file path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     output_string oc (to_string t);
     output_char oc '\n'
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* ---------- parser ---------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            (* Encode the code point as UTF-8; surrogate halves are
               stored as-is (we never emit them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "bad escape");
          loop ()
        end
        | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    let floaty =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lexeme
    in
    if floaty then
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
