(** Span-based tracing with Chrome trace-event export.

    Each domain records completed spans into its own fixed-capacity
    ring buffer (oldest spans are overwritten; {!dropped} reports how
    many).  Timestamps come from {!Clock} (monotonic).  {!to_chrome}
    merges every domain's ring into a Chrome trace-event JSON object
    — open the written file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto} — with one complete ("ph":
    "X") event per span, the recording domain as the tid, and span
    args as the event's [args].

    Like {!Metrics}, tracing is off by default, the disabled path is a
    flag check, and recording never changes what instrumented code
    prints.  Spans that are still open when tracing is disabled (or
    that were begun while it was disabled) are discarded on [end]. *)

val enable : ?capacity:int -> unit -> unit
(** Start recording.  [capacity] (default 65536) bounds each domain's
    ring; it takes effect for rings created after the call. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and drop counts; keeps tracing
    enabled/disabled as it was. *)

type span
(** An open span.  Values are cheap; a span begun while tracing is
    disabled is a no-op token. *)

val begin_span : ?cat:string -> ?args:(string * string) list -> string -> span

val end_span : span -> unit
(** Record the span into the calling domain's ring.  End a span on the
    domain that began it (spans never migrate in this codebase; a
    migrated span would be attributed to the ending domain). *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f ()] in a span, recording it whether
    [f] returns or raises (the exception is re-raised with its
    backtrace). *)

type event = {
  name : string;
  cat : string;
  args : (string * string) list;
  ts_ns : int64;  (** span start, monotonic *)
  dur_ns : int64;
  domain : int;  (** [Domain.self] of the recording domain *)
}

val events : unit -> event list
(** All recorded spans, merged across domains, sorted by start time
    (ties: longer span first, so parents precede children). *)

val dropped : unit -> int
(** Spans lost to ring overwrite since the last {!reset}. *)

val to_chrome : unit -> Json.t
(** The merged spans as a Chrome trace-event JSON object
    ([{"traceEvents": [...], "displayTimeUnit": "ms"}]). *)

val write_chrome : string -> unit
(** [to_chrome] to a file. *)
