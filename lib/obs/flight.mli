(** Flow-level flight recorder: the causal lifecycle of every packet
    and transfer, replayable into a narrative.

    {!Metrics} says {e what} happened per experiment; [Flight] records
    {e why} an individual packet died or a transfer gave up.  The
    instrumented subsystems ([Net], [Link], [Transport], [Middlebox],
    [Selfheal], fault injection) emit one {!event} per causal step —
    inject, per-hop forward with queue depth, middlebox transform,
    drop with its reason, retransmission-timer decision, deliver /
    abandon, fault-episode open/close, control-plane reconvergence —
    keyed by a {e flow id}.

    Discipline matches {!Metrics} and {!Trace}: off by default; the
    disabled path is one atomic load and a branch at each call site
    (callers guard with {!enabled} before building any argument, so
    nothing is allocated); events land in per-domain ring buffers
    (bounded memory — the newest events win) behind [Domain.DLS], with
    a mutex only around ring registration, {!reset} and {!events}.

    Flow-id namespaces: non-negative ids are packet ids (the
    [Packet.t.id] the traffic generator assigned); {!control_flow}
    ([-1]) is the control-plane/fault stream; ids [<= -2] (from
    {!new_flow}) name transfers.  One [Flight.events] stream therefore
    interleaves data plane, transport decisions, and control plane in
    simulated-time order. *)

type event = {
  seq : int;  (** per-domain push index; total order within a domain *)
  sim_t : float;  (** simulated engine time of the step *)
  flow : int;  (** packet id, transfer id ([<= -2]), or {!control_flow} *)
  kind : string;  (** step kind, e.g. ["inject"], ["hop"], ["drop"] *)
  node : int;  (** primary location (node, or link endpoint u); -1 n/a *)
  peer : int;  (** link endpoint v / associated id; -1 when n/a *)
  detail : string;  (** reason label, middlebox name, episode text, … *)
  value : float;  (** queue depth, RTO, latency, attempt count, … *)
}

val enable : ?capacity:int -> unit -> unit
(** Switch the recorder on.  [capacity] (default 65536) sizes each
    {e new} per-domain ring; rings already registered keep their size. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Clear every ring and restart the {!new_flow} counter.  Call before
    a replay so the stream contains exactly that run. *)

val control_flow : int
(** [-1]: the flow id shared by control-plane and fault-episode events. *)

val new_flow : unit -> int
(** Fresh transfer flow id: [-2, -3, ...] per {!reset}.  Callers
    should only draw one while {!enabled}; disabled transfers carry
    {!control_flow} and emit nothing. *)

val emit :
  sim_t:float ->
  flow:int ->
  node:int ->
  peer:int ->
  detail:string ->
  value:float ->
  string ->
  unit
(** [emit ~sim_t ~flow ~node ~peer ~detail ~value kind] records one
    causal step in the calling domain's ring.  No-op while disabled —
    but call sites must still guard with {!enabled} so argument
    construction costs nothing on the disabled path. *)

val events : unit -> event list
(** Every retained event, merged across domains, ordered by
    [(sim_t, seq)].  In a single-domain run (how [tussle explain]
    replays) this is exactly emission order. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!reset}. *)
