type exp = {
  id : string;
  title : string;
  status : string;
  detail : string;
  wall_s : float;
  events_executed : int;
  allocated_bytes : float;
}

type pool = {
  workers : int;
  tasks : int array;
  busy_s : float array;
  pool_wall_s : float;
}

type t = {
  label : string;
  generated_at : float;
  domains : int;
  wall_s : float;
  experiments : exp list;
  pool : pool option;
  metrics : (string * Metrics.value) list;
}

let schema_tag = "tussle.battery-report/1"

let make ?(label = "battery") ?pool ?(metrics = []) ~domains ~wall_s experiments
    =
  {
    label;
    generated_at = Unix.gettimeofday ();
    domains;
    wall_s;
    experiments;
    pool;
    metrics;
  }

let imbalance p =
  if Array.length p.busy_s = 0 then 0.0
  else
    let hi = Array.fold_left max neg_infinity p.busy_s in
    let lo = Array.fold_left min infinity p.busy_s in
    if hi <= 0.0 then 0.0 else (hi -. lo) /. hi

let count_status experiments =
  List.fold_left
    (fun (h, v, f) e ->
      match e.status with
      | "held" -> (h + 1, v, f)
      | "violated" -> (h, v + 1, f)
      | _ -> (h, v, f + 1))
    (0, 0, 0) experiments

let metric_value_to_json = function
  | Metrics.Count n -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int n) ]
  | Metrics.Level { last; max_; sets } ->
    Json.Obj
      [
        ("type", Json.Str "gauge");
        ("last", Json.Float last);
        ("max", Json.Float max_);
        ("sets", Json.Int sets);
      ]
  | Metrics.Dist { count; sum; buckets; p50; p90; p99 } ->
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int count);
        ("sum", Json.Float sum);
        ("p50", Json.Float p50);
        ("p90", Json.Float p90);
        ("p99", Json.Float p99);
        ( "buckets",
          Json.List
            (List.map
               (fun (i, n) -> Json.List [ Json.Int i; Json.Int n ])
               buckets) );
      ]

let to_json t =
  let held, violated, failed = count_status t.experiments in
  let exp_json e =
    Json.Obj
      [
        ("id", Json.Str e.id);
        ("title", Json.Str e.title);
        ("status", Json.Str e.status);
        ("detail", Json.Str e.detail);
        ("wall_s", Json.Float e.wall_s);
        ("events_executed", Json.Int e.events_executed);
        ("allocated_bytes", Json.Float e.allocated_bytes);
      ]
  in
  let base =
    [
      ("schema", Json.Str schema_tag);
      ("label", Json.Str t.label);
      ("generated_at", Json.Float t.generated_at);
      ("domains", Json.Int t.domains);
      ("wall_s", Json.Float t.wall_s);
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int (List.length t.experiments));
            ("held", Json.Int held);
            ("violated", Json.Int violated);
            ("failed", Json.Int failed);
          ] );
      ("experiments", Json.List (List.map exp_json t.experiments));
    ]
  in
  let pool_field =
    match t.pool with
    | None -> []
    | Some p ->
      [
        ( "pool",
          Json.Obj
            [
              ("workers", Json.Int p.workers);
              ("tasks", Json.List (Array.to_list (Array.map (fun n -> Json.Int n) p.tasks)));
              ( "busy_s",
                Json.List (Array.to_list (Array.map (fun s -> Json.Float s) p.busy_s)) );
              ("wall_s", Json.Float p.pool_wall_s);
              ("imbalance", Json.Float (imbalance p));
            ] );
      ]
  in
  let metrics_field =
    match t.metrics with
    | [] -> []
    | ms ->
      [ ("metrics", Json.Obj (List.map (fun (n, v) -> (n, metric_value_to_json v)) ms)) ]
  in
  Json.Obj (base @ pool_field @ metrics_field)

let write path t = Json.to_file path (to_json t)

let summary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "## Battery report: %s (%d domain%s, %.2fs wall)\n\n"
       t.label t.domains
       (if t.domains = 1 then "" else "s")
       t.wall_s);
  Buffer.add_string buf
    (Printf.sprintf "%-5s %-9s %10s %12s %12s\n" "id" "status" "wall_s"
       "events" "alloc_mb");
  Buffer.add_string buf (String.make 52 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-5s %-9s %10.3f %12d %12.2f\n" e.id e.status
           e.wall_s e.events_executed
           (e.allocated_bytes /. 1048576.0)))
    t.experiments;
  let held, violated, failed = count_status t.experiments in
  Buffer.add_string buf
    (Printf.sprintf "\n%d experiments: %d held, %d violated, %d failed\n"
       (List.length t.experiments) held violated failed);
  (match t.pool with
  | None -> ()
  | Some p ->
    let tasks =
      String.concat ";" (Array.to_list (Array.map string_of_int p.tasks))
    in
    let busy =
      String.concat ";"
        (Array.to_list (Array.map (Printf.sprintf "%.2f") p.busy_s))
    in
    Buffer.add_string buf
      (Printf.sprintf
         "pool: %d worker%s, tasks [%s], busy [%s]s, wall %.2fs, imbalance \
          %.1f%%\n"
         p.workers
         (if p.workers = 1 then "" else "s")
         tasks busy p.pool_wall_s
         (100.0 *. imbalance p)));
  Buffer.contents buf

(* ---------- validation ---------- *)

let validate json =
  let ( let* ) r f = Result.bind r f in
  let require name extract node =
    match Json.member name node with
    | None -> Error (Printf.sprintf "missing field %S" name)
    | Some v -> (
      match extract v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))
  in
  let* schema = require "schema" Json.to_str json in
  let* () =
    if schema = schema_tag then Ok ()
    else Error (Printf.sprintf "unknown schema %S (expected %S)" schema schema_tag)
  in
  let* _label = require "label" Json.to_str json in
  let* _at = require "generated_at" Json.to_float json in
  let* domains = require "domains" Json.to_int json in
  let* () = if domains >= 1 then Ok () else Error "domains must be >= 1" in
  let* _wall = require "wall_s" Json.to_float json in
  let* summary = require "summary" Option.some json in
  let* total = require "total" Json.to_int summary in
  let* held = require "held" Json.to_int summary in
  let* violated = require "violated" Json.to_int summary in
  let* failed = require "failed" Json.to_int summary in
  let* exps = require "experiments" Json.to_list json in
  let* () =
    if List.length exps = total then Ok ()
    else
      Error
        (Printf.sprintf "summary.total=%d but %d experiments listed" total
           (List.length exps))
  in
  let* statuses =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* id = require "id" Json.to_str e in
        let* status = require "status" Json.to_str e in
        let* _ = require "title" Json.to_str e in
        let* _ = require "detail" Json.to_str e in
        let* _ = require "wall_s" Json.to_float e in
        let* _ = require "events_executed" Json.to_int e in
        let* _ = require "allocated_bytes" Json.to_float e in
        match status with
        | "held" | "violated" | "failed" -> Ok (status :: acc)
        | s -> Error (Printf.sprintf "experiment %s: unknown status %S" id s))
      (Ok []) exps
  in
  let n s = List.length (List.filter (String.equal s) statuses) in
  let* () =
    if n "held" = held && n "violated" = violated && n "failed" = failed then
      Ok ()
    else Error "summary counts do not match experiment statuses"
  in
  match Json.member "pool" json with
  | None -> Ok ()
  | Some p ->
    let* workers = require "workers" Json.to_int p in
    let* tasks = require "tasks" Json.to_list p in
    let* busy = require "busy_s" Json.to_list p in
    let* _ = require "imbalance" Json.to_float p in
    if List.length tasks = workers && List.length busy = workers then Ok ()
    else Error "pool arrays do not match worker count"
