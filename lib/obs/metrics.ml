(* Per-domain sinks merged at report time.

   Hot path: [Domain.DLS.get] + a plain mutable cell write.  Cold
   paths (handle creation, first touch of a sink in a new domain,
   snapshot/reset) serialize on [registry_mutex].  The enabled flag is
   the only atomic the hot path reads. *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* ---------- metric definitions (global, interned by name) ---------- *)

type kind = Kcounter | Kgauge | Khistogram

type counter = int (* definition id *)
type gauge = int
type histogram = int

let registry_mutex = Mutex.create ()
let defs : (string * kind) list ref = ref [] (* newest first *)
let def_count = ref 0
let by_name : (string, int * kind) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let define name kind =
  locked (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some (id, k) when k = kind -> id
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Metrics: %S already defined with another kind" name)
      | None ->
        let id = !def_count in
        incr def_count;
        defs := (name, kind) :: !defs;
        Hashtbl.add by_name name (id, kind);
        id)

let counter name = define name Kcounter
let gauge name = define name Kgauge
let histogram name = define name Khistogram

(* ---------- buckets ---------- *)

let bucket_count = 64
let bucket_base = 1e-9

let bucket_index v =
  if not (v >= bucket_base) then 0 (* negatives and NaN too *)
  else
    let _, e = Float.frexp (v /. bucket_base) in
    (* v/base = m * 2^e with m in [0.5, 1), so v in [base*2^(e-1), base*2^e) *)
    min (bucket_count - 1) e

let bucket_upper i = bucket_base *. Float.ldexp 1.0 i

(* ---------- per-domain sinks ---------- *)

type gauge_cell = { mutable last : float; mutable max_ : float; mutable sets : int }

type hist_cell = { counts : int array; mutable count : int; mutable sum : float }

type sink = {
  mutable counters : int array; (* indexed by definition id *)
  mutable gauges : gauge_cell option array;
  mutable hists : hist_cell option array;
}

let sinks : sink list ref = ref []

let new_sink () =
  let s =
    {
      counters = Array.make 8 0;
      gauges = Array.make 8 None;
      hists = Array.make 8 None;
    }
  in
  locked (fun () -> sinks := s :: !sinks);
  s

let sink_key = Domain.DLS.new_key new_sink

let grow_int a n =
  let b = Array.make (max n (2 * Array.length a)) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_opt a n =
  let b = Array.make (max n (2 * Array.length a)) None in
  Array.blit a 0 b 0 (Array.length a);
  b

let incr_by id by =
  let s = Domain.DLS.get sink_key in
  if id >= Array.length s.counters then s.counters <- grow_int s.counters (id + 1);
  s.counters.(id) <- s.counters.(id) + by

let add c by = if enabled () then incr_by c by
let incr c = add c 1

let local_count c =
  let s = Domain.DLS.get sink_key in
  if c >= Array.length s.counters then 0 else s.counters.(c)

let set g v =
  if enabled () then begin
    let s = Domain.DLS.get sink_key in
    if g >= Array.length s.gauges then s.gauges <- grow_opt s.gauges (g + 1);
    match s.gauges.(g) with
    | None -> s.gauges.(g) <- Some { last = v; max_ = v; sets = 1 }
    | Some cell ->
      cell.last <- v;
      if v > cell.max_ then cell.max_ <- v;
      cell.sets <- cell.sets + 1
  end

let observe h v =
  if enabled () then begin
    let s = Domain.DLS.get sink_key in
    if h >= Array.length s.hists then s.hists <- grow_opt s.hists (h + 1);
    let cell =
      match s.hists.(h) with
      | Some c -> c
      | None ->
        let c = { counts = Array.make bucket_count 0; count = 0; sum = 0.0 } in
        s.hists.(h) <- Some c;
        c
    in
    let b = bucket_index v in
    cell.counts.(b) <- cell.counts.(b) + 1;
    cell.count <- cell.count + 1;
    cell.sum <- cell.sum +. v
  end

(* ---------- snapshot / reset ---------- *)

type value =
  | Count of int
  | Level of { last : float; max_ : float; sets : int }
  | Dist of {
      count : int;
      sum : float;
      buckets : (int * int) list;
      p50 : float;
      p90 : float;
      p99 : float;
    }

(* Percentile estimate from the log2 buckets: the upper bound of the
   bucket where the cumulative count first reaches q*count.  An upper
   bound (not a midpoint) so the estimate is conservative: the true
   quantile is never above it by construction. *)
let percentile_of_buckets ~count buckets q =
  if count = 0 then 0.0
  else begin
    let target = q *. float_of_int count in
    let rec go cum = function
      | [] -> 0.0
      | (i, n) :: rest ->
        let cum = cum +. float_of_int n in
        if cum >= target then bucket_upper i else go cum rest
    in
    go 0.0 buckets
  end

let snapshot () =
  locked (fun () ->
      let all_sinks = !sinks in
      let named = List.rev !defs in
      List.mapi
        (fun id (name, kind) ->
          let v =
            match kind with
            | Kcounter ->
              Count
                (List.fold_left
                   (fun acc s ->
                     acc
                     + (if id < Array.length s.counters then s.counters.(id)
                        else 0))
                   0 all_sinks)
            | Kgauge ->
              let last = ref 0.0 and max_ = ref neg_infinity and sets = ref 0 in
              List.iter
                (fun s ->
                  if id < Array.length s.gauges then
                    match s.gauges.(id) with
                    | Some c when c.sets > 0 ->
                      if !sets = 0 then last := c.last;
                      if c.max_ > !max_ then max_ := c.max_;
                      sets := !sets + c.sets
                    | _ -> ())
                all_sinks;
              if !sets = 0 then Level { last = 0.0; max_ = 0.0; sets = 0 }
              else Level { last = !last; max_ = !max_; sets = !sets }
            | Khistogram ->
              let buckets = Array.make bucket_count 0 in
              let count = ref 0 and sum = ref 0.0 in
              List.iter
                (fun s ->
                  if id < Array.length s.hists then
                    match s.hists.(id) with
                    | Some c ->
                      Array.iteri
                        (fun i n -> buckets.(i) <- buckets.(i) + n)
                        c.counts;
                      count := !count + c.count;
                      sum := !sum +. c.sum
                    | None -> ())
                all_sinks;
              let nonempty = ref [] in
              for i = bucket_count - 1 downto 0 do
                if buckets.(i) > 0 then nonempty := (i, buckets.(i)) :: !nonempty
              done;
              let pct = percentile_of_buckets ~count:!count !nonempty in
              Dist
                {
                  count = !count;
                  sum = !sum;
                  buckets = !nonempty;
                  p50 = pct 0.50;
                  p90 = pct 0.90;
                  p99 = pct 0.99;
                }
          in
          (name, v))
        named
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.counters 0 (Array.length s.counters) 0;
          Array.iteri
            (fun i -> function
              | Some _ -> s.gauges.(i) <- None
              | None -> ())
            s.gauges;
          Array.iteri
            (fun i -> function
              | Some _ -> s.hists.(i) <- None
              | None -> ())
            s.hists)
        !sinks)

let render snap =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %-10s %s\n" "metric" "kind" "value");
  Buffer.add_string buf (String.make 72 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, v) ->
      let kind, rendered =
        match v with
        | Count n -> ("counter", string_of_int n)
        | Level { last; max_; sets } ->
          ( "gauge",
            Printf.sprintf "last=%g max=%g sets=%d" last max_ sets )
        | Dist { count; sum; p50; p90; p99; _ } ->
          ( "histogram",
            if count = 0 then "empty"
            else
              Printf.sprintf "count=%d sum=%g mean=%g p50<=%g p90<=%g p99<=%g"
                count sum
                (sum /. float_of_int count)
                p50 p90 p99 )
      in
      Buffer.add_string buf (Printf.sprintf "%-40s %-10s %s\n" name kind rendered))
    snap;
  Buffer.contents buf
