(* Search report: the `tussle.search-report/1` artifact emitted by
   `tussle search`.  Same discipline as the sweep report: schema tag,
   atomic write, validator in the [let*]/[require] style, and no
   wall-clock or domain-count field anywhere — the search's contract
   is byte-identical output across --domains and across repeated runs
   at the same seed, so everything derives from (seed, config) alone. *)

type finding = {
  scenario : string;
  seed : int;  (* injection seed the violation reproduces with *)
  found_episodes : int;  (* plan size as found, before shrinking *)
  minimal_plan : string;  (* 1-minimal reproducer, Plan.to_string *)
  invariants : string list;  (* names of the violated invariants *)
  corpus_file : string;  (* persisted path; "" when not persisted *)
}

type t = {
  label : string;
  backend : string;
  search_seed : int;
  budget : int;
  runs : int;  (* plans actually evaluated *)
  seeded : int;  (* corpus + fresh-draw candidates that primed the search *)
  space : int;  (* bounded-exhaustive box size; 0 for open-ended backends *)
  certified : bool;  (* whole box enumerated and came back clean *)
  frontier : int list;  (* cumulative distinct behavior signatures, per batch *)
  corpus_added : int;  (* findings persisted as NEW corpus files *)
  corpus_dir : string;  (* "" when persistence was disabled *)
  findings : finding list;
}

let schema_tag = "tussle.search-report/1"

let make ?(label = "search") ?(corpus_dir = "") ~backend ~search_seed ~budget
    ~runs ~seeded ~space ~certified ~frontier ~corpus_added findings =
  {
    label;
    backend;
    search_seed;
    budget;
    runs;
    seeded;
    space;
    certified;
    frontier;
    corpus_added;
    corpus_dir;
    findings;
  }

let frontier_size t =
  match List.rev t.frontier with [] -> 0 | last :: _ -> last

let finding_to_json f =
  Json.Obj
    [
      ("scenario", Json.Str f.scenario);
      ("seed", Json.Int f.seed);
      ("found_episodes", Json.Int f.found_episodes);
      ("minimal_plan", Json.Str f.minimal_plan);
      ("invariants", Json.List (List.map (fun n -> Json.Str n) f.invariants));
      ("corpus_file", Json.Str f.corpus_file);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_tag);
      ("label", Json.Str t.label);
      ("backend", Json.Str t.backend);
      ("search_seed", Json.Int t.search_seed);
      ("budget", Json.Int t.budget);
      ("runs", Json.Int t.runs);
      ("seeded", Json.Int t.seeded);
      ("space", Json.Int t.space);
      ("certified", Json.Bool t.certified);
      ("frontier", Json.List (List.map (fun n -> Json.Int n) t.frontier));
      ("corpus_dir", Json.Str t.corpus_dir);
      ( "summary",
        Json.Obj
          [
            ("runs", Json.Int t.runs);
            ("frontier", Json.Int (frontier_size t));
            ("violations", Json.Int (List.length t.findings));
            ("corpus_added", Json.Int t.corpus_added);
          ] );
      ("findings", Json.List (List.map finding_to_json t.findings));
    ]

let write path t = Json.to_file path (to_json t)

(* ---------- parsing ---------- *)

let ( let* ) r f = Result.bind r f

let require name extract node =
  match Json.member name node with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match extract v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let map_result f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let finding_of_json j =
  let* scenario = require "scenario" Json.to_str j in
  let* seed = require "seed" Json.to_int j in
  let* found_episodes = require "found_episodes" Json.to_int j in
  let* minimal_plan = require "minimal_plan" Json.to_str j in
  let* invariants = require "invariants" Json.to_list j in
  let* invariants =
    map_result
      (fun n ->
        match Json.to_str n with
        | Some s -> Ok s
        | None -> Error "finding: non-string invariant name")
      invariants
  in
  let* corpus_file = require "corpus_file" Json.to_str j in
  Ok { scenario; seed; found_episodes; minimal_plan; invariants; corpus_file }

let of_json json =
  let* schema = require "schema" Json.to_str json in
  let* () =
    if schema = schema_tag then Ok ()
    else
      Error (Printf.sprintf "unknown schema %S (expected %S)" schema schema_tag)
  in
  let* label = require "label" Json.to_str json in
  let* backend = require "backend" Json.to_str json in
  let* search_seed = require "search_seed" Json.to_int json in
  let* budget = require "budget" Json.to_int json in
  let* runs = require "runs" Json.to_int json in
  let* seeded = require "seeded" Json.to_int json in
  let* space = require "space" Json.to_int json in
  let* certified =
    require "certified" (function Json.Bool b -> Some b | _ -> None) json
  in
  let* frontier = require "frontier" Json.to_list json in
  let* frontier =
    map_result
      (fun n ->
        match Json.to_int n with
        | Some i -> Ok i
        | None -> Error "frontier: non-integer entry")
      frontier
  in
  let* corpus_dir = require "corpus_dir" Json.to_str json in
  let* findings = require "findings" Json.to_list json in
  let* findings = map_result finding_of_json findings in
  let* summary = require "summary" Option.some json in
  let* corpus_added = require "corpus_added" Json.to_int summary in
  Ok
    {
      label;
      backend;
      search_seed;
      budget;
      runs;
      seeded;
      space;
      certified;
      frontier;
      corpus_added;
      corpus_dir;
      findings;
    }

(* ---------- validation ---------- *)

let validate json =
  let* t = of_json json in
  let* summary = require "summary" Option.some json in
  let* s_runs = require "runs" Json.to_int summary in
  let* s_frontier = require "frontier" Json.to_int summary in
  let* s_violations = require "violations" Json.to_int summary in
  let* s_added = require "corpus_added" Json.to_int summary in
  let* () =
    if t.budget >= 1 then Ok ()
    else Error (Printf.sprintf "budget must be >= 1 (got %d)" t.budget)
  in
  let* () =
    if t.runs >= 0 then Ok ()
    else Error (Printf.sprintf "runs must be >= 0 (got %d)" t.runs)
  in
  let* () =
    if s_runs = t.runs then Ok ()
    else Error (Printf.sprintf "summary.runs=%d but runs=%d" s_runs t.runs)
  in
  let* () =
    if s_frontier = frontier_size t then Ok ()
    else
      Error
        (Printf.sprintf "summary.frontier=%d but frontier ends at %d" s_frontier
           (frontier_size t))
  in
  let* () =
    if s_violations = List.length t.findings then Ok ()
    else
      Error
        (Printf.sprintf "summary.violations=%d but %d findings listed"
           s_violations (List.length t.findings))
  in
  let* () =
    if s_added >= 0 && s_added <= List.length t.findings then Ok ()
    else
      Error
        (Printf.sprintf "summary.corpus_added=%d vs %d findings" s_added
           (List.length t.findings))
  in
  let* () =
    if t.certified && t.findings <> [] then
      Error "certified search cannot carry findings"
    else Ok ()
  in
  map_result
    (fun (f : finding) ->
      if f.scenario = "" then Error "finding with empty scenario name"
      else if f.minimal_plan = "" then
        Error
          (Printf.sprintf "finding %s: empty minimal plan (nothing to replay)"
             f.scenario)
      else if f.invariants = [] then
        Error
          (Printf.sprintf "finding %s: no violated invariant named" f.scenario)
      else Ok ())
    t.findings
  |> Result.map (fun _ -> ())

(* ---------- rendering ---------- *)

let summary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "## Search report: %s [%s] (seed %d, budget %d)\n\n" t.label
       t.backend t.search_seed t.budget);
  Buffer.add_string buf
    (Printf.sprintf "%d plans evaluated (%d seeded), %d behavior signatures\n"
       t.runs t.seeded (frontier_size t));
  if t.space > 0 then
    Buffer.add_string buf
      (Printf.sprintf "box: %d plans; %s\n" t.space
         (if t.certified then "CERTIFIED clean (whole box enumerated)"
          else "box not exhausted within budget"));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf
           "\nVIOLATION %s seed=%d (found with %d episode%s)\n  invariants: %s\n"
           f.scenario f.seed f.found_episodes
           (if f.found_episodes = 1 then "" else "s")
           (String.concat ", " f.invariants));
      String.split_on_char '\n' f.minimal_plan
      |> List.iter (fun line ->
             Buffer.add_string buf (Printf.sprintf "  | %s\n" line));
      if f.corpus_file <> "" then
        Buffer.add_string buf (Printf.sprintf "  corpus: %s\n" f.corpus_file))
    t.findings;
  Buffer.add_string buf
    (Printf.sprintf "\n%d violation%s, %d new corpus entr%s\n"
       (List.length t.findings)
       (if List.length t.findings = 1 then "" else "s")
       t.corpus_added
       (if t.corpus_added = 1 then "y" else "ies"));
  Buffer.contents buf
