(** Minimal JSON tree, serializer, and parser.

    The container has no yojson, so telemetry carries its own: enough
    JSON to emit Chrome traces and battery reports and to parse them
    back for validation (tests, [tussle report FILE], CI).  Strings
    are escaped per RFC 8259; non-finite floats serialize as [null]
    (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; [minify:false] (default) pretty-prints with 2-space
    indents so committed reports diff cleanly. *)

val to_file : string -> t -> unit
(** [to_string ~minify:false] plus a trailing newline, written
    atomically: the bytes go to [path ^ ".tmp"] first and are renamed
    over [path] only once complete, so a crashed or watchdogged run
    never leaves a truncated artifact (a stale [.tmp] at worst). *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the subset we emit (all of JSON minus
    [\uXXXX] surrogate pairs, which decode as-is into the string).
    Numbers without [.], [e] or [E] become [Int]; others [Float].
    Errors carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-[Obj]. *)

val to_int : t -> int option
(** [Int n] and integral [Float] both yield [Some n]. *)

val to_float : t -> float option
(** [Float] or [Int] as a float. *)

val to_str : t -> string option

val to_list : t -> t list option
