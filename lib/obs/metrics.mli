(** Named counters, gauges, and log-bucketed histograms, domain-safe.

    Design: every domain writes to its own private sink (plain mutable
    cells reached through [Domain.DLS] — no atomics, no locks on the
    hot path); {!snapshot} merges the per-domain sinks at report time.
    The only synchronized paths are metric creation and first-touch
    sink registration, both cold.

    Telemetry is off by default and the disabled path is near zero
    cost: one atomic load and a branch per operation, no allocation.
    Enabling or disabling never changes what instrumented code prints
    — metrics only accumulate state read by {!snapshot}.

    A snapshot taken while worker domains are still mutating their
    sinks cannot crash (cells are word-sized) but may be stale; take
    it at a quiescent point (e.g. after [Pool.map] has joined), which
    is what the battery runners do. *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every sink's data (counters, gauges, histograms) without
    invalidating handles or per-domain sink registrations.  Intended
    for tests and for reusing one process for several batteries. *)

(** {1 Handles}

    Handles are interned by name: creating the same name twice returns
    the same handle; reusing a name with a different metric kind
    raises [Invalid_argument].  Creation is cheap but takes a lock —
    create handles at module initialization, not on hot paths. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit

val local_count : counter -> int
(** The calling domain's own cell for [c] — not merged.  Reading it
    before and after a synchronous block of work attributes counts to
    that block even while other domains run concurrently (how the
    battery attributes [engine.events_executed] per experiment). *)

val set : gauge -> float -> unit
(** Record an observation; the sink keeps the latest value and the
    maximum.  Across domains, gauges merge by maximum (they are used
    as high-water marks). *)

val observe : histogram -> float -> unit
(** Add a sample to its logarithmic bucket (see {!bucket_index}). *)

(** {1 Buckets}

    Histograms are log2-bucketed over non-negative samples with a
    fixed base of 1e-9 (so second-valued samples bucket from 1ns up):
    bucket [0] holds samples in [\[0, 1e-9)], bucket [i >= 1] holds
    [\[1e-9 * 2^(i-1), 1e-9 * 2^i)], and the top bucket (index 63)
    additionally absorbs everything at or above its lower bound. *)

val bucket_count : int
(** 64. *)

val bucket_index : float -> int
(** Bucket for a sample; negative and NaN samples land in bucket 0. *)

val bucket_upper : int -> float
(** Exclusive upper bound of bucket [i]: [1e-9 * 2^i] (the top
    bucket's nominal bound; it is unbounded in practice). *)

(** {1 Snapshot} *)

type value =
  | Count of int
  | Level of { last : float; max_ : float; sets : int }
      (** merged gauge: [max_] over all domains; [last]/[sets] are
          merged best-effort ([last] from an arbitrary sink that set
          it, [sets] summed) *)
  | Dist of {
      count : int;
      sum : float;
      buckets : (int * int) list;
      p50 : float;
      p90 : float;
      p99 : float;
    }
      (** merged histogram; [buckets] lists [(index, count)] for
          non-empty buckets, ascending.  [p50]/[p90]/[p99] are
          conservative percentile estimates from the log2 buckets:
          each is the {e upper bound} of the bucket where the
          cumulative count first reaches that quantile (0 when the
          histogram is empty), so the true quantile never exceeds
          the reported value. *)

val snapshot : unit -> (string * value) list
(** Merge every domain's sink, sorted by metric name.  Metrics that
    were created but never touched are included with zero values. *)

val render : (string * value) list -> string
(** Human-readable table of a snapshot (counters and gauges one per
    line; histograms as count/sum/mean). *)
