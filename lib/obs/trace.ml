(* Per-domain span rings merged at export time (same discipline as
   Metrics: plain mutable cells behind Domain.DLS, a mutex only around
   ring registration and export). *)

type event = {
  name : string;
  cat : string;
  args : (string * string) list;
  ts_ns : int64;
  dur_ns : int64;
  domain : int;
}

let enabled_flag = Atomic.make false
let capacity = Atomic.make 65536

let enable ?capacity:(cap = 65536) () =
  Atomic.set capacity (max 1 cap);
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

type ring = {
  buf : event option array;
  mutable next : int; (* slot for the next write *)
  mutable written : int; (* total pushed since last reset *)
}

let registry_mutex = Mutex.create ()
let rings : ring list ref = ref []

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let new_ring () =
  let r = { buf = Array.make (Atomic.get capacity) None; next = 0; written = 0 } in
  locked (fun () -> rings := r :: !rings);
  r

let ring_key = Domain.DLS.new_key new_ring

let push ev =
  let r = Domain.DLS.get ring_key in
  r.buf.(r.next) <- Some ev;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.written <- r.written + 1

type span = {
  sp_name : string;
  sp_cat : string;
  sp_args : (string * string) list;
  sp_t0 : int64; (* -1 when the span was begun while disabled *)
}

let disabled_span = { sp_name = ""; sp_cat = ""; sp_args = []; sp_t0 = -1L }

let begin_span ?(cat = "") ?(args = []) name =
  if not (enabled ()) then disabled_span
  else { sp_name = name; sp_cat = cat; sp_args = args; sp_t0 = Clock.now_ns () }

let end_span sp =
  if sp.sp_t0 >= 0L && enabled () then
    let t1 = Clock.now_ns () in
    push
      {
        name = sp.sp_name;
        cat = sp.sp_cat;
        args = sp.sp_args;
        ts_ns = sp.sp_t0;
        dur_ns = Int64.max 0L (Int64.sub t1 sp.sp_t0);
        domain = (Domain.self () :> int);
      }

let with_span ?cat ?args name f =
  if not (enabled ()) then f ()
  else begin
    let sp = begin_span ?cat ?args name in
    match f () with
    | v ->
      end_span sp;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      end_span sp;
      Printexc.raise_with_backtrace e bt
  end

let reset () =
  locked (fun () ->
      List.iter
        (fun r ->
          Array.fill r.buf 0 (Array.length r.buf) None;
          r.next <- 0;
          r.written <- 0)
        !rings)

let events () =
  let collected =
    locked (fun () ->
        List.concat_map
          (fun r ->
            Array.to_list r.buf |> List.filter_map Fun.id)
          !rings)
  in
  List.sort
    (fun a b ->
      match Int64.compare a.ts_ns b.ts_ns with
      | 0 -> Int64.compare b.dur_ns a.dur_ns
      | c -> c)
    collected

let dropped () =
  locked (fun () ->
      List.fold_left
        (fun acc r -> acc + max 0 (r.written - Array.length r.buf))
        0 !rings)

let to_chrome () =
  let evs = events () in
  let trace_events =
    List.map
      (fun e ->
        let fields =
          [
            ("name", Json.Str e.name);
            ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
            ("ph", Json.Str "X");
            ("ts", Json.Float (Clock.ns_to_us e.ts_ns));
            ("dur", Json.Float (Clock.ns_to_us e.dur_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int e.domain);
          ]
        in
        let fields =
          if e.args = [] then fields
          else
            fields
            @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.args)) ]
        in
        Json.Obj fields)
      evs
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_spans", Json.Int (dropped ())) ]);
    ]

let write_chrome path = Json.to_file path (to_chrome ())
