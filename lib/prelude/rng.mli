(** Deterministic pseudo-random number generation.

    All randomness in the framework flows through this module so that every
    simulation and experiment is reproducible bit-for-bit from an explicit
    seed.  The generator is SplitMix64 (Steele, Lea & Flood 2014): fast,
    64-bit, splittable, and good enough for simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use to give subsystems their own streams without sharing state. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate by Box–Muller.  Consumes exactly the draws of its
    two uniforms, in a fixed (compiler-independent) order, so streams
    that interleave [gaussian] with other draws are reproducible. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate ([rate > 0]). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto deviate: heavy-tailed, used for willingness-to-pay and flow
    sizes. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument] on an
    empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] samples an index proportionally to the
    non-negative weights [w].  An index with zero weight is never
    returned (in particular not a zero-weight trailing index, even
    under float rounding).  Raises [Invalid_argument] if all weights
    are zero or [w] is empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Shuffled copy of a list. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements without replacement.
    Raises [Invalid_argument] if [k] exceeds the array length. *)
