(** Mutable binary-heap priority queue (min-heap by a user-supplied key).

    Used as the event queue of the discrete-event simulator and as the
    frontier of shortest-path searches.  Ties are broken by insertion
    order (FIFO among equal keys), which discrete-event simulation
    requires for determinism.

    The heap is struct-of-arrays (parallel key/seq/payload arrays): a
    push is three array writes and allocates nothing, and the
    [min_key]/[min_seq]/[pop_min] accessors let a hot loop drain the
    queue without building option/tuple cells.  Popped payload slots
    are cleared so the heap never retains a popped value. *)

type 'a t

val create : unit -> 'a t
(** Empty queue with float keys. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val push_tagged : 'a t -> float -> 'a -> int
(** Like {!push}, and returns the insertion sequence number assigned to
    the element: 0 for the first push on this queue, then 1, 2, ...
    The seq is the FIFO tie-break among equal keys, so it doubles as a
    cheap unique handle for the pushed element (the engine uses it as
    the event id). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, FIFO among ties. *)

val min_key : 'a t -> float
(** Key of the minimum element without removal.  Raises
    [Invalid_argument] on an empty queue. *)

val min_seq : 'a t -> int
(** Insertion seq of the minimum element without removal (the value
    {!push_tagged} returned for it).  Raises [Invalid_argument] on an
    empty queue. *)

val pop_min : 'a t -> 'a
(** Remove the minimum element and return its payload alone (no
    option/tuple allocation); read [min_key]/[min_seq] first if the key
    or seq is needed.  Raises [Invalid_argument] on an empty queue. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-key element without removal. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Non-destructive drain: all elements in pop order. *)
