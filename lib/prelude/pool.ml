(* Fixed-size domain pool.

   Distribution is a chunked queue: the input lives in an array and an
   atomic cursor hands out chunk-sized index ranges to whichever worker
   asks next.  There are no per-worker deques and no stealing — for
   coarse-grained items (each experiment runs a whole simulation) a
   single fetch-and-add per chunk is contention-free in practice, and
   it keeps the scheduler trivially deterministic to reason about:
   results land in per-index slots, so output order is input order. *)

let default_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min n 8)

let map ?domains f xs =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.map: domains must be >= 1";
  let input = Array.of_list xs in
  let n = Array.length input in
  let workers = min requested n in
  if workers <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* A few chunks per worker: big enough to amortize the atomic,
       small enough that a slow chunk cannot strand the tail. *)
    let chunk = max 1 (n / (4 * workers)) in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            results.(i) <-
              Some
                (match f input.(i) with
                | y -> Ok y
                | exception e -> Error (e, Printexc.get_raw_backtrace ()))
          done;
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    (* Re-raise the earliest failure only after every domain is joined,
       so a raising item never strands a running worker. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok y) -> y | Some (Error _) | None -> assert false)
         results)
  end
