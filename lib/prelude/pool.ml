(* Fixed-size domain pool.

   Distribution is a chunked queue: the input lives in an array and an
   atomic cursor hands out chunk-sized index ranges to whichever worker
   asks next.  There are no per-worker deques and no stealing — for
   coarse-grained items (each experiment runs a whole simulation) a
   single fetch-and-add per chunk is contention-free in practice, and
   it keeps the scheduler trivially deterministic to reason about:
   results land in per-index slots, so output order is input order.

   Telemetry: when Tussle_obs is enabled, each worker counts its tasks
   and busy time into plain per-worker slots (no sharing — slot w is
   written only by worker w) and the whole map publishes a [stats]
   record via [last_stats]; each item also runs under a "pool.task"
   span when tracing.  With telemetry disabled the fast path is the
   original loop, untouched. *)

module Metrics = Tussle_obs.Metrics
module Trace = Tussle_obs.Trace
module Clock = Tussle_obs.Clock

let default_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min n 8)

let domains_of_string s =
  match int_of_string_opt (String.trim s) with
  | None ->
    Error (Printf.sprintf "invalid domain count %S (expected an integer)" s)
  | Some d when d < 1 ->
    Error (Printf.sprintf "domain count must be >= 1 (got %d)" d)
  | Some d -> Ok d

type stats = {
  workers : int;
  tasks : int array;
  busy_s : float array;
  wall_s : float;
}

let last_stats_slot : stats option Atomic.t = Atomic.make None
let last_stats () = Atomic.get last_stats_slot

let m_tasks = Metrics.counter "pool.tasks"
let m_maps = Metrics.counter "pool.maps"
let m_task_run = Metrics.histogram "pool.task_run_s"

let map ?domains f xs =
  let requested =
    match domains with Some d -> d | None -> default_domains ()
  in
  if requested < 1 then invalid_arg "Pool.map: domains must be >= 1";
  let observing = Metrics.enabled () || Trace.enabled () in
  let input = Array.of_list xs in
  let n = Array.length input in
  let workers = min requested n in
  if workers <= 1 then
    if not observing then List.map f xs
    else begin
      (* Sequential fallback, instrumented the same way so --seq
         batteries still produce pool stats and task spans. *)
      let wall0 = Clock.now_s () in
      let busy = ref 0.0 in
      Metrics.incr m_maps;
      let run_item i x =
        Trace.with_span ~cat:"pool"
          ~args:[ ("index", string_of_int i) ]
          "pool.task"
        @@ fun () ->
        let t0 = Clock.now_s () in
        let y = f x in
        let dt = Clock.now_s () -. t0 in
        busy := !busy +. dt;
        Metrics.incr m_tasks;
        Metrics.observe m_task_run dt;
        y
      in
      let ys = List.mapi run_item xs in
      Atomic.set last_stats_slot
        (Some
           {
             workers = 1;
             tasks = [| n |];
             busy_s = [| !busy |];
             wall_s = Clock.now_s () -. wall0;
           });
      ys
    end
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* A few chunks per worker: big enough to amortize the atomic,
       small enough that a slow chunk cannot strand the tail. *)
    let chunk = max 1 (n / (4 * workers)) in
    let wall0 = if observing then Clock.now_s () else 0.0 in
    let tasks = if observing then Array.make workers 0 else [||] in
    let busy_s = if observing then Array.make workers 0.0 else [||] in
    let run_item w i =
      (* Slot [i] is written exactly once; per-worker telemetry slots
         are private to worker [w]. *)
      results.(i) <-
        Some
          (match
             if not observing then f input.(i)
             else
               Trace.with_span ~cat:"pool"
                 ~args:[ ("index", string_of_int i) ]
                 "pool.task"
               @@ fun () ->
               let t0 = Clock.now_s () in
               let y = f input.(i) in
               let dt = Clock.now_s () -. t0 in
               tasks.(w) <- tasks.(w) + 1;
               busy_s.(w) <- busy_s.(w) +. dt;
               Metrics.incr m_tasks;
               Metrics.observe m_task_run dt;
               y
           with
          | y -> Ok y
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    let worker w () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            run_item w i
          done;
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      Array.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1)))
    in
    worker 0 ();
    Array.iter Domain.join helpers;
    if observing then begin
      Metrics.incr m_maps;
      Atomic.set last_stats_slot
        (Some { workers; tasks; busy_s; wall_s = Clock.now_s () -. wall0 })
    end;
    (* Re-raise the earliest failure only after every domain is joined,
       so a raising item never strands a running worker. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok y) -> y | Some (Error _) | None -> assert false)
         results)
  end
